// Package repro is a from-scratch Go reproduction of "Pathfinder:
// High-Resolution Control-Flow Attacks Exploiting the Conditional Branch
// Predictor" (Yavarzadeh et al., ASPLOS 2024).
//
// The repository models the Intel conditional branch predictor the paper
// reverse engineers (path history register + pattern history tables),
// executes victim programs on a simulated machine with speculative
// execution and a shared data cache, and implements the paper's attack
// primitives and case studies on top: Read/Write PHR, Read/Write PHT,
// Extended Read PHR, the Pathfinder control-flow recovery tool, secret
// image recovery from a JPEG decoder's IDCT control flow, and AES key
// recovery through high-resolution Spectre poisoning.
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// bench_test.go for the benchmarks that regenerate every table and figure
// of the paper's evaluation.
package repro
