module pathfinder

go 1.24
