// Command deltabench regenerates BENCH_delta.json: the three costs the
// differential-snapshot layer attacks, each measured full-fat versus
// delta. Restore: the warm per-trial rewind on the real AES path, flat
// full-copy versus dirty-tracked. Wire: a warm fetch between same-arch
// grid cells, full PFSN blob versus PFWD delta frame. Store: the on-disk
// footprint of an AES grid sweep, full blobs versus delta chains — with
// the delta-on and delta-off sweep reports compared byte for byte.
//
//	go run ./cmd/deltabench -min-speedup 3 -min-wire-ratio 5 -min-store-ratio 5 -o BENCH_delta.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathfinder/internal/aes"
	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/snapstore"
	"pathfinder/internal/wire"
)

type benchReport struct {
	Description     string  `json:"description"`
	RestoreIters    int     `json:"restore_iters"`
	RestoreFullNS   int64   `json:"restore_full_ns"`
	RestoreDirtyNS  int64   `json:"restore_dirty_ns"`
	RestoreSpeedup  float64 `json:"restore_speedup"`
	WireFullBytes   int     `json:"wire_full_bytes"`
	WireDeltaBytes  int     `json:"wire_delta_bytes"`
	WireRatio       float64 `json:"wire_ratio"`
	StoreFullBytes  int64   `json:"store_full_bytes"`
	StoreDeltaBytes int64   `json:"store_delta_bytes"`
	StoreRatio      float64 `json:"store_ratio"`
	ByteIdentical   bool    `json:"byte_identical"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("deltabench", flag.ContinueOnError)
	iters := fs.Int("iters", 200, "timed restore repetitions per path")
	trials := fs.Int("trials", 6, "oracle-query trials per grid cell in the store phase")
	nseeds := fs.Int("seeds", 2, "number of base seeds in the store-phase grid")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless the dirty-tracked restore is at least this many times faster than the flat copy (0 = report only)")
	minWire := fs.Float64("min-wire-ratio", 0, "fail unless the PFWD delta is at least this many times smaller than the full blob (0 = report only)")
	minStore := fs.Float64("min-store-ratio", 0, "fail unless delta chains shrink the on-disk grid at least this many times (0 = report only)")
	out := fs.String("o", "", "output path (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *iters <= 0 || *trials <= 0 || *nseeds <= 0 {
		return fmt.Errorf("-iters, -trials and -seeds must all be positive")
	}

	rep := benchReport{
		Description: "Differential-snapshot costs on the AES path: warm per-trial restore " +
			"(flat full copy vs dirty-tracked), warm-fetch wire bytes (full PFSN blob vs " +
			"PFWD delta between noise-sibling phase-1 states), and on-disk footprint of an " +
			"arch x seed x noise grid (full blobs vs bounded delta chains), with delta " +
			"on/off sweep reports compared byte for byte. " +
			"Regenerate with: go run ./cmd/deltabench -o BENCH_delta.json",
		RestoreIters: *iters,
	}

	// Phase 1 — restore. Build the real AES per-trial shape: phase-1
	// control-flow recovery on a primary machine, Fork+Warm(2) on a trial
	// machine, snapshot, then repeatedly run a trial and rewind. The full
	// path forgets restore-sync before every rewind (the cost every trial
	// paid before dirty tracking); the dirty path keeps it, so each rewind
	// copies only what its trial touched.
	key := []byte("pathfinder-aes16")
	primary := cpu.New(cpu.Options{Arch: bpu.AlderLake, Seed: 1})
	a, err := attack.NewAESAttack(primary, append([]byte(nil), key...))
	if err != nil {
		return err
	}
	if err := a.RecoverControlFlow(); err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}
	tm := cpu.New(cpu.Options{Arch: bpu.AlderLake, Seed: 2})
	ta, err := a.Fork(tm)
	if err != nil {
		return err
	}
	if err := ta.Warm(2); err != nil {
		return fmt.Errorf("warm: %w", err)
	}
	snap := tm.Snapshot()
	var pt aes.Block
	for i := range pt {
		pt[i] = byte(i * 17)
	}
	trial := func(i int) error {
		tm.Reseed(int64(100 + i))
		_, _, err := ta.LeakReducedRound(pt, i%9)
		return err
	}
	measure := func(forget bool) (int64, error) {
		tm.RestoreFrom(snap) // establish restore-sync
		var total time.Duration
		for i := 0; i < *iters; i++ {
			if err := trial(i); err != nil {
				return 0, err
			}
			if forget {
				tm.ForgetRestoreSync()
			}
			t0 := time.Now()
			tm.RestoreFrom(snap)
			total += time.Since(t0)
		}
		return total.Nanoseconds() / int64(*iters), nil
	}
	if rep.RestoreFullNS, err = measure(true); err != nil {
		return fmt.Errorf("full restore: %w", err)
	}
	if rep.RestoreDirtyNS, err = measure(false); err != nil {
		return fmt.Errorf("dirty restore: %w", err)
	}
	rep.RestoreSpeedup = float64(rep.RestoreFullNS) / float64(rep.RestoreDirtyNS)

	// Phase 2 — wire. Two noise-sibling phase-1 states: the adjacent cells
	// of a noise sweep, which is exactly what a cluster warm fetch moves
	// between workers mid-sweep — the requester holds the previous noise
	// point's state and the holder answers with a PFWD delta against it.
	sibling := cpu.New(cpu.Options{Arch: bpu.AlderLake, Seed: 1, Noise: 0.02})
	sa, err := attack.NewAESAttack(sibling, append([]byte(nil), key...))
	if err != nil {
		return err
	}
	if err := sa.RecoverControlFlow(); err != nil {
		return fmt.Errorf("sibling phase 1: %w", err)
	}
	baseBlob, err := primary.Snapshot().MarshalBinary()
	if err != nil {
		return err
	}
	targetBlob, err := sibling.Snapshot().MarshalBinary()
	if err != nil {
		return err
	}
	delta := wire.EncodeDelta(baseBlob, targetBlob)
	if got, err := wire.DecodeDelta(baseBlob, delta); err != nil {
		return fmt.Errorf("delta round trip: %w", err)
	} else if !bytes.Equal(got, targetBlob) {
		return fmt.Errorf("delta round trip diverged")
	}
	rep.WireFullBytes = len(targetBlob)
	rep.WireDeltaBytes = len(delta)
	rep.WireRatio = float64(rep.WireFullBytes) / float64(rep.WireDeltaBytes)

	// Phase 3 — store. An arch x seed x noise AES grid spilled to two fresh
	// stores, delta chains off then on; the footprint ratio is the on-disk
	// saving and the two reports must be byte-identical (delta persistence
	// is correctness-neutral). The noise axis is where chains earn their
	// keep: noise points share a training prefix, so their checkpoints
	// delta to a few dozen bytes.
	archs := []bpu.Config{bpu.AlderLake, bpu.Skylake}
	seeds := make([]int64, *nseeds)
	for i := range seeds {
		seeds[i] = int64(101 + i)
	}
	noises := []float64{0, 0.02, 0.04, 0.06}
	grid := func(deltaOn bool) ([]byte, int64, error) {
		dir, err := os.MkdirTemp("", "deltabench-store-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(dir)
		st, err := snapstore.Open(dir, snapstore.DefaultMaxBytes)
		if err != nil {
			return nil, 0, err
		}
		harness.ResetWarmCache()
		harness.SetStoreDeltaEnabled(deltaOn)
		harness.SetSnapStore(st)
		defer harness.SetSnapStore(nil)
		defer harness.SetStoreDeltaEnabled(true)
		// Parallelism 1 keeps the spill order — and with it the delta-chain
		// shapes and the footprint ratio — deterministic across machines.
		repo, err := harness.AESGridSweep(context.Background(),
			harness.Options{Seed: seeds[0], Planner: harness.PlannerOn, Parallelism: 1},
			*trials, archs, seeds, noises)
		if err != nil {
			return nil, 0, err
		}
		raw, err := json.Marshal(repo)
		if err != nil {
			return nil, 0, err
		}
		_, _, _, _, bytes, _ := st.Stats()
		return raw, bytes, nil
	}
	rawFull, fullBytes, err := grid(false)
	if err != nil {
		return fmt.Errorf("store grid (full): %w", err)
	}
	rawDelta, deltaBytes, err := grid(true)
	if err != nil {
		return fmt.Errorf("store grid (delta): %w", err)
	}
	rep.StoreFullBytes = fullBytes
	rep.StoreDeltaBytes = deltaBytes
	rep.StoreRatio = float64(fullBytes) / float64(deltaBytes)
	rep.ByteIdentical = bytes.Equal(rawFull, rawDelta)
	if !rep.ByteIdentical {
		return fmt.Errorf("delta-on and delta-off sweep reports diverged: delta persistence must be correctness-neutral")
	}

	switch {
	case *minSpeedup > 0 && rep.RestoreSpeedup < *minSpeedup:
		return fmt.Errorf("dirty restore speedup %.2fx is below the %.2fx floor (full %dns, dirty %dns)",
			rep.RestoreSpeedup, *minSpeedup, rep.RestoreFullNS, rep.RestoreDirtyNS)
	case *minWire > 0 && rep.WireRatio < *minWire:
		return fmt.Errorf("wire ratio %.2fx is below the %.2fx floor (full %dB, delta %dB)",
			rep.WireRatio, *minWire, rep.WireFullBytes, rep.WireDeltaBytes)
	case *minStore > 0 && rep.StoreRatio < *minStore:
		return fmt.Errorf("store ratio %.2fx is below the %.2fx floor (full %dB, delta %dB)",
			rep.StoreRatio, *minStore, rep.StoreFullBytes, rep.StoreDeltaBytes)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "restore %dns -> %dns (%.2fx), wire %dB -> %dB (%.2fx), store %dB -> %dB (%.2fx), byte-identical %v\n",
		rep.RestoreFullNS, rep.RestoreDirtyNS, rep.RestoreSpeedup,
		rep.WireFullBytes, rep.WireDeltaBytes, rep.WireRatio,
		rep.StoreFullBytes, rep.StoreDeltaBytes, rep.StoreRatio, rep.ByteIdentical)
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
