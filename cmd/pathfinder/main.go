// Command pathfinder runs the §6 control-flow recovery tool against a
// chosen victim and prints the recovered path, per-branch outcomes and
// loop trip counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/victim"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pathfinder", flag.ContinueOnError)
	kind := fs.String("victim", "loop", "victim program: loop | randomcfg | aes")
	trips := fs.Int("trips", 120, "loop trip count (loop victim)")
	segments := fs.Int("segments", 8, "structure size (randomcfg victim)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *kind == "aes" {
		res, err := harness.Fig6PathfinderAES(ctx, harness.Options{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recovered runtime CFG (Figure 6):\n%s\n", res.CFGDump)
		fmt.Fprintf(out, "block sequence: %v\n", res.BlockSequence)
		fmt.Fprintf(out, "aesenc loop executes %d times\n", res.LoopIterations)
		return nil
	}

	var v core.Victim
	switch *kind {
	case "loop":
		v = victim.PatternedLoop(*trips, victim.RandomPattern(*trips, *seed))
	case "randomcfg":
		v = victim.RandomCFG(*seed, *segments)
	default:
		return fmt.Errorf("unknown victim %q", *kind)
	}
	m := cpu.New(cpu.Options{Seed: *seed})
	rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recovered %d steps (complete=%v), %d extension doublets, %d oracle probes\n",
		len(rec.Path.Steps), rec.Path.Complete, len(rec.Ext), rec.Probes)
	cfg, err := pathfinder.Build(rec.CaptureProgram)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "block sequence: %v\n", rec.Path.BlockSequence(cfg, rec.Entry, rec.Final))
	fmt.Fprintln(out, "conditional branch outcomes (execution order):")
	line := 0
	for _, s := range rec.Path.Outcomes() {
		fmt.Fprintf(out, " %s", s)
		line++
		if line%8 == 0 {
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintln(out)
	return nil
}
