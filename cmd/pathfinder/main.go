// Command pathfinder runs the §6 control-flow recovery tool against a
// chosen victim and prints the recovered path, per-branch outcomes and
// loop trip counts.
package main

import (
	"flag"
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/victim"
)

func main() {
	kind := flag.String("victim", "loop", "victim program: loop | randomcfg | aes")
	trips := flag.Int("trips", 120, "loop trip count (loop victim)")
	segments := flag.Int("segments", 8, "structure size (randomcfg victim)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if *kind == "aes" {
		res, err := harness.Fig6PathfinderAES(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered runtime CFG (Figure 6):\n%s\n", res.CFGDump)
		fmt.Printf("block sequence: %v\n", res.BlockSequence)
		fmt.Printf("aesenc loop executes %d times\n", res.LoopIterations)
		return
	}

	var v core.Victim
	switch *kind {
	case "loop":
		v = victim.PatternedLoop(*trips, victim.RandomPattern(*trips, *seed))
	case "randomcfg":
		v = victim.RandomCFG(*seed, *segments)
	default:
		log.Fatalf("unknown victim %q", *kind)
	}
	m := cpu.New(cpu.Options{Seed: *seed})
	rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d steps (complete=%v), %d extension doublets, %d oracle probes\n",
		len(rec.Path.Steps), rec.Path.Complete, len(rec.Ext), rec.Probes)
	cfg, err := pathfinder.Build(rec.CaptureProgram)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block sequence: %v\n", rec.Path.BlockSequence(cfg, rec.Entry, rec.Final))
	fmt.Println("conditional branch outcomes (execution order):")
	line := 0
	for _, s := range rec.Path.Outcomes() {
		fmt.Printf(" %s", s)
		line++
		if line%8 == 0 {
			fmt.Println()
		}
	}
	fmt.Println()
}
