package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunLoopVictim(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-victim", "loop", "-trips", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "recovered") || !strings.Contains(got, "block sequence:") {
		t.Fatalf("unexpected output:\n%s", got)
	}
}

func TestRunRandomCFGVictim(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-victim", "randomcfg", "-segments", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "complete=true") {
		t.Fatalf("recovery incomplete:\n%s", out.String())
	}
}

func TestRunUnknownVictim(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-victim", "nope"}, &out); err == nil {
		t.Fatal("unknown victim accepted")
	}
}
