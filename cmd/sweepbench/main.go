// Command sweepbench regenerates BENCH_sweep.json: wall-clock of a
// cold-process AES grid sweep down three execution paths — the naive cell
// loop, the shared-prefix planner, and the planner backed by a pre-warmed
// persistent snapshot store. Each measured run starts from an empty
// in-process warm cache, simulating a freshly started daemon, and every
// path must produce byte-identical reports.
//
//	go run ./cmd/sweepbench -trials 6 -seeds 3 -runs 2 -o BENCH_sweep.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathfinder/internal/bpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/snapstore"
)

type phaseReport struct {
	Name      string `json:"name"`
	Runs      int    `json:"runs"`
	AvgNS     int64  `json:"avg_ns"`
	BestNS    int64  `json:"best_ns"`
	StoreHits uint64 `json:"store_hits"`
}

type benchReport struct {
	Description    string        `json:"description"`
	Trials         int           `json:"trials"`
	Archs          []string      `json:"archs"`
	Seeds          []int64       `json:"seeds"`
	Runs           int           `json:"runs"`
	Phases         []phaseReport `json:"phases"`
	SpeedupPlanner float64       `json:"speedup_planner"`
	SpeedupStore   float64       `json:"speedup_store_warm"`
	ByteIdentical  bool          `json:"byte_identical"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweepbench", flag.ContinueOnError)
	trials := fs.Int("trials", 6, "oracle-query trials per grid cell")
	nseeds := fs.Int("seeds", 3, "number of base seeds in the grid")
	runs := fs.Int("runs", 2, "measured cold-process repetitions per phase")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless the store-warm path is at least this many times faster than the naive path (0 = report only)")
	out := fs.String("o", "", "output path (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 || *nseeds <= 0 || *runs <= 0 {
		return fmt.Errorf("-trials, -seeds and -runs must all be positive")
	}

	archs := []bpu.Config{bpu.AlderLake, bpu.Skylake}
	seeds := make([]int64, *nseeds)
	for i := range seeds {
		seeds[i] = int64(101 + i)
	}
	noises := []float64{0}

	// grid runs one simulated cold process: the in-process warm cache is
	// emptied first, so all training state comes from compute or — when a
	// store is installed — from disk.
	grid := func(mode harness.PlannerMode) ([]byte, time.Duration, error) {
		harness.ResetWarmCache()
		opts := harness.Options{Seed: seeds[0], Planner: mode}
		t0 := time.Now()
		rep, err := harness.AESGridSweep(context.Background(), opts, *trials, archs, seeds, noises)
		elapsed := time.Since(t0)
		if err != nil {
			return nil, 0, err
		}
		raw, err := json.Marshal(rep)
		return raw, elapsed, err
	}

	measure := func(name string, mode harness.PlannerMode) (phaseReport, []byte, error) {
		ph := phaseReport{Name: name, Runs: *runs}
		harness.ResetSnapStoreStats()
		var canonical []byte
		var best time.Duration
		var total time.Duration
		for r := 0; r < *runs; r++ {
			raw, elapsed, err := grid(mode)
			if err != nil {
				return ph, nil, fmt.Errorf("%s run %d: %w", name, r, err)
			}
			if canonical == nil {
				canonical = raw
			} else if !bytes.Equal(canonical, raw) {
				return ph, nil, fmt.Errorf("%s run %d: report bytes diverged", name, r)
			}
			total += elapsed
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		hits, _ := harness.SnapStoreStats()
		ph.AvgNS = total.Nanoseconds() / int64(*runs)
		ph.BestNS = best.Nanoseconds()
		ph.StoreHits = hits
		return ph, canonical, nil
	}

	// Phase 1: the naive path — no planner, no store.
	harness.SetSnapStore(nil)
	naive, rawNaive, err := measure("naive", harness.PlannerOff)
	if err != nil {
		return err
	}

	// Phase 2: the planner alone — shared prefixes are trained once per
	// process, but nothing survives the simulated restart.
	planner, rawPlanner, err := measure("planner", harness.PlannerOn)
	if err != nil {
		return err
	}

	// Phase 3: planner + persistent store. One unmeasured priming run fills
	// the store; the measured cold processes then restore their training
	// prefixes from disk.
	storeDir, err := os.MkdirTemp("", "sweepbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	st, err := snapstore.Open(storeDir, snapstore.DefaultMaxBytes)
	if err != nil {
		return err
	}
	harness.SetSnapStore(st)
	defer harness.SetSnapStore(nil)
	if _, _, err := grid(harness.PlannerOn); err != nil {
		return fmt.Errorf("priming run: %w", err)
	}
	warm, rawWarm, err := measure("planner+store-warm", harness.PlannerOn)
	if err != nil {
		return err
	}

	identical := bytes.Equal(rawNaive, rawPlanner) && bytes.Equal(rawNaive, rawWarm)
	if !identical {
		return fmt.Errorf("execution paths disagree: the three phases must produce byte-identical reports")
	}

	archNames := make([]string, len(archs))
	for i, a := range archs {
		archNames[i] = a.Name
	}
	rep := benchReport{
		Description: "Cold-process AES grid sweep (arch x seed, noise 0) down three paths: " +
			"naive cell loop, shared-prefix sweep planner, and planner backed by a " +
			"pre-warmed persistent snapshot store. Every measured run starts from an " +
			"empty warm cache; speedup_store_warm is naive avg / store-warm avg. " +
			"Regenerate with: go run ./cmd/sweepbench -o BENCH_sweep.json",
		Trials: *trials, Archs: archNames, Seeds: seeds, Runs: *runs,
		Phases:         []phaseReport{naive, planner, warm},
		SpeedupPlanner: float64(naive.AvgNS) / float64(planner.AvgNS),
		SpeedupStore:   float64(naive.AvgNS) / float64(warm.AvgNS),
		ByteIdentical:  identical,
	}
	if *minSpeedup > 0 && rep.SpeedupStore < *minSpeedup {
		return fmt.Errorf("store-warm speedup %.2fx is below the %.2fx floor", rep.SpeedupStore, *minSpeedup)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "naive %.1fms, planner %.1fms (%.2fx), store-warm %.1fms (%.2fx), byte-identical %v\n",
		float64(naive.AvgNS)/1e6, float64(planner.AvgNS)/1e6, rep.SpeedupPlanner,
		float64(warm.AvgNS)/1e6, rep.SpeedupStore, identical)
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
