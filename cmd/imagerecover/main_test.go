package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-size", "16", "-images", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "flag accuracy") || !strings.Contains(got, "edge corr") {
		t.Fatalf("missing Figure 7 table:\n%s", got)
	}
}
