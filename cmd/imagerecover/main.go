// Command imagerecover runs the §8 secret-image recovery over the
// synthetic evaluation set and prints the Figure 7 table plus ASCII
// renderings of original, edge map and recovery.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pathfinder/internal/harness"
	"pathfinder/internal/media"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("imagerecover", flag.ContinueOnError)
	size := fs.Int("size", 16, "secret image edge length in pixels")
	quality := fs.Int("quality", 60, "JPEG quality 1..100")
	images := fs.Int("images", 15, "how many of the 15 test images to attack")
	seed := fs.Int64("seed", 29, "deterministic seed")
	show := fs.Bool("show", false, "print ASCII art per image")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rep, err := harness.Fig7ImageRecovery(ctx, harness.Options{Seed: *seed}, *size, *quality, *images)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-12s %-16s %-14s %s\n", "image", "taken branches", "flag accuracy", "edge corr")
	set := media.TestSet(*size)
	for i, r := range rep.Images {
		fmt.Fprintf(out, "%-12s %-16d %-14.3f %.2f\n", r.Name, r.TakenBranches, r.FlagAccuracy, r.EdgeCorrelation)
		if *show {
			fmt.Fprintf(out, "\noriginal:\n%s\nrecovered complexity map:\n%s\n",
				set[i].Image.ASCII(1), r.Recovered.ASCII(1))
		}
	}
	return nil
}
