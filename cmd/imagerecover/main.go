// Command imagerecover runs the §8 secret-image recovery over the
// synthetic evaluation set and prints the Figure 7 table plus ASCII
// renderings of original, edge map and recovery.
package main

import (
	"flag"
	"fmt"
	"log"

	"pathfinder/internal/harness"
	"pathfinder/internal/media"
)

func main() {
	size := flag.Int("size", 16, "secret image edge length in pixels")
	quality := flag.Int("quality", 60, "JPEG quality 1..100")
	images := flag.Int("images", 15, "how many of the 15 test images to attack")
	seed := flag.Int64("seed", 29, "deterministic seed")
	show := flag.Bool("show", false, "print ASCII art per image")
	flag.Parse()

	rows, err := harness.Fig7ImageRecovery(*size, *quality, *images, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-16s %-14s %s\n", "image", "taken branches", "flag accuracy", "edge corr")
	set := media.TestSet(*size)
	for i, r := range rows {
		fmt.Printf("%-12s %-16d %-14.3f %.2f\n", r.Name, r.TakenBranches, r.FlagAccuracy, r.EdgeCorrelation)
		if *show {
			fmt.Printf("\noriginal:\n%s\nrecovered complexity map:\n%s\n",
				set[i].Image.ASCII(1), r.Recovered.ASCII(1))
		}
	}
}
