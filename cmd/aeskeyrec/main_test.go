package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trials", "16"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "stolen reduced-round ciphertext bytes") {
		t.Fatalf("missing theft summary:\n%s", got)
	}
	if !strings.Contains(got, "full AES-128 key recovered from skip-loop leaks: true") {
		t.Fatalf("key recovery failed:\n%s", got)
	}
}
