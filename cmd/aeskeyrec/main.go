// Command aeskeyrec runs the §9 evaluation: reduced-round ciphertext theft
// at every loop iteration under noise, and full AES-128 key recovery.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pathfinder/internal/harness"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aeskeyrec", flag.ContinueOnError)
	trials := fs.Int("trials", 120, "oracle queries at random early-exit rounds")
	noise := fs.Float64("noise", 0.015, "probability a transient window collapses")
	seed := fs.Int64("seed", 31, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := harness.AESLeakEval(ctx, harness.Options{Seed: *seed}, *trials, *noise)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stolen reduced-round ciphertext bytes matching ground truth: %d/%d (%.2f%%)\n",
		res.ByteSuccesses, res.TotalBytes, 100*res.SuccessRate)
	fmt.Fprintf(out, "paper reports 98.43%% on hardware\n")
	fmt.Fprintf(out, "full AES-128 key recovered from skip-loop leaks: %v\n", res.KeyRecovered)
	return nil
}
