// Command aeskeyrec runs the §9 evaluation: reduced-round ciphertext theft
// at every loop iteration under noise, and full AES-128 key recovery.
package main

import (
	"flag"
	"fmt"
	"log"

	"pathfinder/internal/harness"
)

func main() {
	trials := flag.Int("trials", 120, "oracle queries at random early-exit rounds")
	noise := flag.Float64("noise", 0.015, "probability a transient window collapses")
	seed := flag.Int64("seed", 31, "deterministic seed")
	flag.Parse()

	res, err := harness.AESLeakEval(*trials, *noise, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stolen reduced-round ciphertext bytes matching ground truth: %d/%d (%.2f%%)\n",
		res.ByteSuccesses, res.TotalBytes, 100*res.SuccessRate)
	fmt.Printf("paper reports 98.43%% on hardware\n")
	fmt.Printf("full AES-128 key recovered from skip-loop leaks: %v\n", res.KeyRecovered)
}
