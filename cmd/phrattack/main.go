// Command phrattack demonstrates the §4 primitives: it writes chosen
// values into the PHR and PHTs, reads them back, and prints the Figure 4
// misprediction-rate signature.
package main

import (
	"flag"
	"fmt"
	"log"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/phr"
)

func main() {
	trials := flag.Int("trials", 3, "random PHR write/read round trips")
	doublets := flag.Int("doublets", 48, "doublets verified per trial")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	fmt.Println("--- Write_PHR / Read_PHR round trips (§4.2 evaluation) ---")
	ok, err := harness.ReadPHRRandomEval(*trials, *doublets, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d/%d random PHR values read back exactly (first %d doublets)\n\n", ok, *trials, *doublets)

	fmt.Println("--- Figure 4 signature (50% iff X == P) ---")
	rows, err := harness.Fig4ReadDoublet(4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("doublet %d: X=0:%.2f X=1:%.2f X=2:%.2f X=3:%.2f  (true P=%d)\n",
			r.Doublet, r.Rates[0], r.Rates[1], r.Rates[2], r.Rates[3], r.True)
	}

	fmt.Println("\n--- Write_PHT / Read_PHT counter round trip (§4.3/4.4) ---")
	m := cpu.New(cpu.Options{Seed: *seed})
	reg := phr.New(m.Arch().PHRSize)
	reg.SetDoublet(5, 3)
	pc := uint64(0x00cd_9c80)
	if err := core.WritePHT(m, pc, reg, false); err != nil {
		log.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		if _, err := core.RunAliased(m, pc, reg, []bool{true}); err != nil {
			log.Fatal(err)
		}
	}
	mis, err := core.ReadPHT(m, pc, reg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primed strongly-not-taken; after 3 taken instances the probe mispredicts %d/4 times\n", mis)
}
