// Command phrattack demonstrates the §4 primitives: it writes chosen
// values into the PHR and PHTs, reads them back, and prints the Figure 4
// misprediction-rate signature.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/phr"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("phrattack", flag.ContinueOnError)
	trials := fs.Int("trials", 3, "random PHR write/read round trips")
	doublets := fs.Int("doublets", 48, "doublets verified per trial")
	seed := fs.Int64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintln(out, "--- Write_PHR / Read_PHR round trips (§4.2 evaluation) ---")
	rep, err := harness.ReadPHRRandomEval(ctx, harness.Options{Seed: *seed}, *trials, *doublets)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d/%d random PHR values read back exactly (first %d doublets)\n\n", rep.Successes, *trials, *doublets)

	fmt.Fprintln(out, "--- Figure 4 signature (50% iff X == P) ---")
	fig4, err := harness.Fig4ReadDoublet(ctx, harness.Options{}, 4)
	if err != nil {
		return err
	}
	for _, r := range fig4.Rows {
		fmt.Fprintf(out, "doublet %d: X=0:%.2f X=1:%.2f X=2:%.2f X=3:%.2f  (true P=%d)\n",
			r.Doublet, r.Rates[0], r.Rates[1], r.Rates[2], r.Rates[3], r.True)
	}

	fmt.Fprintln(out, "\n--- Write_PHT / Read_PHT counter round trip (§4.3/4.4) ---")
	m := cpu.New(cpu.Options{Seed: *seed})
	reg := phr.New(m.Arch().PHRSize)
	reg.SetDoublet(5, 3)
	pc := uint64(0x00cd_9c80)
	if err := core.WritePHT(m, pc, reg, false); err != nil {
		return err
	}
	for k := 1; k <= 3; k++ {
		if _, err := core.RunAliased(m, pc, reg, []bool{true}); err != nil {
			return err
		}
	}
	mis, err := core.ReadPHT(m, pc, reg, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "primed strongly-not-taken; after 3 taken instances the probe mispredicts %d/4 times\n", mis)
	return nil
}
