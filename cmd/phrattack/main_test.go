package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-trials", "1", "-doublets", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1/1 random PHR values read back exactly") {
		t.Fatalf("PHR round trip failed:\n%s", got)
	}
	if !strings.Contains(got, "Figure 4 signature") || !strings.Contains(got, "doublet 0:") {
		t.Fatalf("missing Figure 4 section:\n%s", got)
	}
	if !strings.Contains(got, "mispredicts") {
		t.Fatalf("missing PHT round-trip section:\n%s", got)
	}
}
