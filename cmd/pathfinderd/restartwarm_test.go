package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRestartWarmSweepResume is the warm-restart acceptance scenario on the
// real binary: run an aes_grid sweep against a daemon with a persistent
// snapshot store, SIGKILL the daemon, restart it on the same data directory,
// and rerun the identical sweep. The second life must serve its training
// prefixes from the snapshot store (no graceful shutdown ran — only the
// store's atomic per-entry writes persist anything) and produce a
// byte-identical report.
func TestRestartWarmSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long test: builds and runs the real binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "pathfinderd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	// -result-cache 0 so the second life actually re-executes the sweep
	// instead of replaying a journaled result.
	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-data-dir", dataDir, "-result-cache", "0")
		var out syncBuffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if m := addrRE.FindStringSubmatch(out.String()); m != nil {
				if !strings.Contains(out.String(), "snapshot store at ") {
					cmd.Process.Kill()
					t.Fatalf("daemon came up without a snapshot store; output:\n%s", out.String())
				}
				return cmd, m[1]
			}
			time.Sleep(10 * time.Millisecond)
		}
		cmd.Process.Kill()
		t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		return nil, ""
	}

	const sweep = `{"experiment":"aes_grid","params":{"trials":4,"seeds":[101,102,103]},"timeout_ms":300000}`
	runSweep := func(base string) json.RawMessage {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(sweep))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, raw)
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if st := waitState(t, base, v.ID, 120*time.Second, "done", "failed"); st != "done" {
			t.Fatalf("sweep job ended %s", st)
		}
		resp, err = http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var done struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(raw, &done); err != nil {
			t.Fatal(err)
		}
		if len(done.Result) == 0 {
			t.Fatalf("done job has no result:\n%s", raw)
		}
		return done.Result
	}

	// First life trains the three seed prefixes and spills them to disk.
	cmd, base := start()
	first := runSweep(base)
	if puts := scrapeCounter(t, base, `pathfinderd_snapshot_store_ops_total{op="put"}`); puts < 3 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("store puts = %d after the first sweep, want >= 3 (one per seed prefix)", puts)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Second life: a cold process, an empty warm cache, the same store dir.
	cmd2, base2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	second := runSweep(base2)

	hits := scrapeCounter(t, base2, `pathfinderd_warmcache_store_requests_total{result="hit"}`)
	if hits < 3 {
		t.Errorf("warm-cache store hits = %d after restart, want >= 3 (every seed prefix restored from disk)", hits)
	}
	if string(first) != string(second) {
		t.Errorf("report changed across a warm restart:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// scrapeCounter pulls one sample value from the daemon's /metrics.
func scrapeCounter(t *testing.T, base, sample string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(raw), "\n") {
		rest, ok := strings.CutPrefix(line, sample)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			t.Fatalf("parsing sample %q: %v", line, err)
		}
		return n
	}
	t.Fatalf("sample %s missing from exposition:\n%s", sample, raw)
	return 0
}
