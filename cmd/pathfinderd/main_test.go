package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read daemon output while run is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestResilienceFlagValidation: the cluster-resilience knobs reject
// nonsense at startup instead of misbehaving at runtime, and the chaos
// injector refuses roles whose RPCs it cannot fault.
func TestResilienceFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"chaos-standalone", []string{"-chaos", "drop_request=0.5"}, "-chaos only applies"},
		{"chaos-bad-spec", []string{"-role", "coordinator", "-chaos", "bogus"}, "-chaos"},
		{"chaos-bad-prob", []string{"-role", "coordinator", "-chaos", "drop_request=1.5"}, "-chaos"},
		{"rpc-heartbeat", []string{"-rpc-timeout-heartbeat", "0s"}, "-rpc-timeout-heartbeat"},
		{"rpc-control", []string{"-rpc-timeout-control", "-1s"}, "-rpc-timeout-control"},
		{"rpc-fetch", []string{"-rpc-timeout-fetch", "0s"}, "-rpc-timeout-fetch"},
		{"rpc-fetch-per-mb", []string{"-rpc-timeout-fetch-per-mb", "0s"}, "-rpc-timeout-fetch-per-mb"},
		{"hedge-delay", []string{"-hedge-delay", "0s"}, "-hedge-delay"},
		{"retry-budget", []string{"-retry-budget", "0"}, "-retry-budget"},
		{"retry-burst", []string{"-retry-burst", "-1"}, "-retry-burst"},
		{"breaker-threshold", []string{"-peer-breaker-threshold", "0"}, "-peer-breaker-threshold"},
		{"breaker-cooldown", []string{"-peer-breaker-cooldown", "0s"}, "-peer-breaker-cooldown"},
		{"degraded-after", []string{"-degraded-after", "-1s"}, "-degraded-after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: err %v, want mention of %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestDaemonSmoke boots the daemon on an ephemeral port, submits a job
// through the real HTTP surface, then verifies graceful shutdown.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out) }()

	addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		cancel()
		t.Fatalf("daemon never reported its address; output:\n%s", out.String())
	}
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig4","params":{"doublets":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	jobDeadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var got struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || got.State == "cancelled" {
			t.Fatalf("job ended %s: %s", got.State, body)
		}
		if time.Now().After(jobDeadline) {
			t.Fatalf("job stuck in state %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM path: cancelling the root context must drain and exit nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained and stopped") {
		t.Fatalf("missing drain confirmation; output:\n%s", out.String())
	}
}
