package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read daemon output while run is writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonSmoke boots the daemon on an ephemeral port, submits a job
// through the real HTTP surface, then verifies graceful shutdown.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out) }()

	addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		cancel()
		t.Fatalf("daemon never reported its address; output:\n%s", out.String())
	}
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"fig4","params":{"doublets":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}

	jobDeadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var got struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || got.State == "cancelled" {
			t.Fatalf("job ended %s: %s", got.State, body)
		}
		if time.Now().After(jobDeadline) {
			t.Fatalf("job stuck in state %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM path: cancelling the root context must drain and exit nil.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained and stopped") {
		t.Fatalf("missing drain confirmation; output:\n%s", out.String())
	}
}
