package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/service"
)

// TestPprofMuxServesProfiles pins the private mux: the index and the
// individual profile endpoints respond on it.
func TestPprofMuxServesProfiles(t *testing.T) {
	srv := httptest.NewServer(pprofMux())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d %s", path, resp.StatusCode, body)
		}
	}
}

// TestPublicAPIHasNoPprof is the leak check: the service's public handler
// must not expose the profiling routes, with or without a pprof listener
// configured elsewhere in the process.
func TestPublicAPIHasNoPprof(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on the public API: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDaemonPprofListener boots the daemon with -pprof-addr and verifies
// the profiling surface answers on its own listener while the API listener
// 404s it — the two muxes never share routes.
func TestDaemonPprofListener(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0", "-workers", "1"}, &out)
	}()
	defer cancel()

	apiRE := regexp.MustCompile(`pathfinderd listening on (http://[0-9.:]+)`)
	pprofRE := regexp.MustCompile(`pprof listening on (http://[0-9.:]+)/debug/pprof/`)
	var api, prof string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if m, p := apiRE.FindStringSubmatch(s), pprofRE.FindStringSubmatch(s); m != nil && p != nil {
			api, prof = m[1], p[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if api == "" || prof == "" {
		t.Fatalf("daemon never reported both addresses; output:\n%s", out.String())
	}

	status := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(prof + "/debug/pprof/"); got != http.StatusOK {
		t.Errorf("pprof listener /debug/pprof/: %d, want 200", got)
	}
	if got := status(api + "/debug/pprof/"); got != http.StatusNotFound {
		t.Errorf("API listener /debug/pprof/: %d, want 404", got)
	}
	if got := status(api + "/healthz"); got != http.StatusOK {
		t.Errorf("API listener /healthz: %d, want 200", got)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v; output:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit; output:\n%s", out.String())
	}
}

// TestPprofAddrValidation rejects a pprof listener colliding with the API
// address up front.
func TestPprofAddrValidation(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-addr", ":8321", "-pprof-addr", ":8321"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-pprof-addr") {
		t.Fatalf("colliding addresses accepted: %v", err)
	}
}
