package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The distributed-execution acceptance scenario on real binaries: a sweep
// sharded across a coordinator and two workers must render the exact bytes
// the standalone daemon renders, and must still render them when a worker
// is SIGKILLed mid-sweep and its leases migrate.

const clusterSweep = `{"experiment":"aes",` +
	`"params":{"trials":2,"noise":-1},` +
	`"sweep":{"archs":["alderlake","skylake"],"seeds":[1,2,3,4,5,6]}}`

// buildDaemon compiles the binary once per test into tmp.
func buildDaemon(t *testing.T, tmp string) string {
	t.Helper()
	bin := filepath.Join(tmp, "pathfinderd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary with args and waits for its address line.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return cmd, m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("daemon never reported its address; output:\n%s", out.String())
	return nil, ""
}

func stopDaemon(cmd *exec.Cmd) {
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}
}

// submitBatch posts body to base and returns the batch ID.
func submitBatch(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d %s", resp.StatusCode, raw)
	}
	var v struct {
		Batch string `json:"batch"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v.Batch
}

// fetchReport polls the canonical report until the batch completes.
func fetchReport(t *testing.T, base, batch string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/batch/" + batch + "/report")
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return raw
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("batch %s never completed on %s", batch, base)
	return nil
}

// metricValue scrapes one un-labeled or exact-labeled sample from /metrics.
func metricValue(t *testing.T, base, metric string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` ([0-9.e+-]+)$`)
	if m := re.FindStringSubmatch(string(raw)); m != nil {
		var v float64
		fmt.Sscanf(m[1], "%g", &v)
		return v
	}
	return 0
}

func TestClusterBinariesMatchStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("long test: builds and runs real binaries")
	}
	tmp := t.TempDir()
	bin := buildDaemon(t, tmp)

	// Reference bytes from the standalone daemon.
	sa, saBase := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "2")
	want := fetchReport(t, saBase, submitBatch(t, saBase, clusterSweep), 120*time.Second)
	stopDaemon(sa)

	// The same sweep sharded over a coordinator and two workers.
	coord, coordBase := startDaemon(t, bin,
		"-role", "coordinator", "-addr", "127.0.0.1:0",
		"-dispatch-interval", "20ms", "-lease-ttl", "2s")
	defer stopDaemon(coord)
	w0, _ := startDaemon(t, bin,
		"-role", "worker", "-addr", "127.0.0.1:0", "-coordinator", coordBase,
		"-node-name", "w0", "-heartbeat", "50ms", "-workers", "2")
	defer stopDaemon(w0)
	// w1 runs with the chaos injector armed: its outbound RPCs suffer
	// latency spikes and occasional request loss, which the report bytes
	// must not notice.
	w1, w1Base := startDaemon(t, bin,
		"-role", "worker", "-addr", "127.0.0.1:0", "-coordinator", coordBase,
		"-node-name", "w1", "-heartbeat", "50ms", "-workers", "2",
		"-chaos", "seed=11,drop_request=0.05,latency=0.2:1ms:5ms")
	defer stopDaemon(w1)

	got := fetchReport(t, coordBase, submitBatch(t, coordBase, clusterSweep), 180*time.Second)
	if !bytes.Equal(got, want) {
		t.Errorf("cluster report diverges from standalone:\ngot:  %s\nwant: %s", got, want)
	}

	// The sweep holds one warm-shareable group per arch; every trial after a
	// group's first lookup restores instead of re-warming, so each worker
	// that ran anything shows warm-cache hits: training demonstrably skipped.
	hits := metricValue(t, w1Base, `pathfinderd_worker_warm_cache_total{outcome="hit"}`)
	assigns := metricValue(t, w1Base, "pathfinderd_worker_assignments_total")
	if assigns > 0 && hits == 0 {
		t.Errorf("worker w1 accepted %v assignments but recorded zero warm-cache hits", assigns)
	}
}

func TestClusterWorkerSIGKILLConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("long test: builds and runs real binaries")
	}
	tmp := t.TempDir()
	bin := buildDaemon(t, tmp)

	sa, saBase := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-workers", "2")
	want := fetchReport(t, saBase, submitBatch(t, saBase, clusterSweep), 120*time.Second)
	stopDaemon(sa)

	// Aggressive lease timing so the kill recovers within test patience.
	coord, coordBase := startDaemon(t, bin,
		"-role", "coordinator", "-addr", "127.0.0.1:0",
		"-dispatch-interval", "20ms", "-lease-ttl", "500ms", "-max-assigns", "5")
	defer stopDaemon(coord)
	w0, _ := startDaemon(t, bin,
		"-role", "worker", "-addr", "127.0.0.1:0", "-coordinator", coordBase,
		"-node-name", "w0", "-heartbeat", "50ms", "-workers", "2")
	defer stopDaemon(w0)
	w1, _ := startDaemon(t, bin,
		"-role", "worker", "-addr", "127.0.0.1:0", "-coordinator", coordBase,
		"-node-name", "w1", "-heartbeat", "50ms", "-workers", "2")

	batch := submitBatch(t, coordBase, clusterSweep)

	// Kill w1 without ceremony once it holds work; its leases must lapse and
	// migrate to w0.
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, coordBase, `pathfinderd_cluster_assignments_total{worker="w1"}`) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("w1 never got an assignment")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := w1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	w1.Wait()

	got := fetchReport(t, coordBase, batch, 180*time.Second)
	if !bytes.Equal(got, want) {
		t.Errorf("post-SIGKILL cluster report diverges from standalone:\ngot:  %s\nwant: %s", got, want)
	}
	if n := metricValue(t, coordBase, "pathfinderd_cluster_lease_reassignments_total"); n < 1 {
		t.Logf("note: kill landed between assignments (reassignments=%v); convergence still verified", n)
	}
}
