// Command pathfinderd serves the experiment-orchestration API: a worker
// pool of simulators drains a bounded job queue, and an HTTP/JSON surface
// submits jobs, runs µarch sweeps, reports results, and exposes metrics.
//
//	pathfinderd -addr :8321 -workers 4
//	curl -s localhost:8321/v1/experiments
//	curl -s -XPOST localhost:8321/v1/jobs -d '{"experiment":"fig4","params":{"seed":7}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pathfinder/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pathfinderd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8321", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 256, "bounded job-queue depth")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "default per-job timeout")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := slog.New(slog.NewTextHandler(out, nil))
	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *jobTimeout,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pathfinderd listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(out, "pathfinderd drained and stopped")
	return nil
}
