// Command pathfinderd serves the experiment-orchestration API: a worker
// pool of simulators drains a bounded job queue, and an HTTP/JSON surface
// submits jobs, runs µarch sweeps, reports results, and exposes metrics.
//
// It runs in one of three roles. Standalone (the default) is the single-node
// service. A coordinator owns the cluster job table and shards sweeps across
// workers; a worker joins a coordinator, executes assignments on its local
// pool, and exchanges content-addressed warm snapshots with its peers.
//
//	pathfinderd -addr :8321 -workers 4
//	pathfinderd -role coordinator -addr :8321
//	pathfinderd -role worker -addr :8322 -coordinator http://coord:8321 -node-name w0
//	curl -s localhost:8321/v1/experiments
//	curl -s -XPOST localhost:8321/v1/jobs -d '{"experiment":"fig4","params":{"seed":7}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pathfinder/internal/chaosnet"
	"pathfinder/internal/cluster"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pathfinderd", flag.ContinueOnError)
	fs.SetOutput(out)
	role := fs.String("role", "standalone", "process role: standalone | coordinator | worker")
	addr := fs.String("addr", ":8321", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 256, "bounded job-queue depth")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "default per-job timeout")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs on shutdown")
	dataDir := fs.String("data-dir", "", "directory for the durable job journal (empty = in-memory only)")
	maxAttempts := fs.Int("max-attempts", 1, "per-job attempt budget (1 = no retries)")
	retryBackoff := fs.Duration("retry-backoff", 500*time.Millisecond, "base backoff before a failed job is retried")
	resultCache := fs.Int("result-cache", 256, "result-cache capacity in entries (0 = disabled)")
	snapDir := fs.String("snap-store", "", `persistent warm-snapshot store directory (default: <data-dir>/snapshots when -data-dir is set; "off" disables)`)
	snapMax := fs.Int64("snap-store-max", snapstore.DefaultMaxBytes, "snapshot-store size cap in bytes before LRU eviction")
	storeDelta := fs.Bool("store-delta", true, "persist warm snapshots as delta chains against their planner-prefix base (false = full blobs, pre-delta behavior)")
	fetchDelta := fs.Bool("fetch-delta", true, "worker: advertise locally held snapshot bases on warm fetches so holders can answer with PFWD deltas (false = always fetch full blobs)")
	pprofAddr := fs.String("pprof-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	// Cluster flags. -coordinator, -self-url, -node-name and -heartbeat
	// shape a worker; -lease-ttl, -dispatch-interval, -max-assigns and
	// -max-inflight shape a coordinator.
	coordURL := fs.String("coordinator", "", "worker: coordinator base URL (required for -role worker)")
	selfURL := fs.String("self-url", "", "worker: URL peers reach this node at (default: derived from the listener)")
	nodeName := fs.String("node-name", "", "worker: stable cluster-unique name (default: hostname-port)")
	heartbeat := fs.Duration("heartbeat", time.Second, "worker: heartbeat interval")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "coordinator: assignment lease; jobs on silent workers requeue after this")
	dispatchEvery := fs.Duration("dispatch-interval", 50*time.Millisecond, "coordinator: scheduling tick")
	maxAssigns := fs.Int("max-assigns", 3, "coordinator: accepted assignments one job may consume before failing")
	maxInflight := fs.Int("max-inflight", 4, "coordinator: max leases per worker")
	// Resilience flags: per-RPC-class deadlines for intra-cluster calls,
	// worker-side retry budget and fetch hedging, coordinator-side peer
	// breakers and degraded-mode shedding, and the deterministic chaos
	// fault injector for drills.
	rpcHeartbeat := fs.Duration("rpc-timeout-heartbeat", 2*time.Second, "cluster: deadline for heartbeats and result pushes")
	rpcControl := fs.Duration("rpc-timeout-control", 5*time.Second, "cluster: deadline for assignments, snapshot lookups and peer reports")
	rpcFetch := fs.Duration("rpc-timeout-fetch", 10*time.Second, "cluster: snapshot-fetch deadline before response headers arrive")
	rpcFetchPerMB := fs.Duration("rpc-timeout-fetch-per-mb", 2*time.Second, "cluster: snapshot-fetch deadline extension per MB of advertised body")
	hedgeDelay := fs.Duration("hedge-delay", 50*time.Millisecond, "worker: wait on the first warm-fetch leg before racing a second holder")
	retryRate := fs.Float64("retry-budget", 2, "worker: shared retry budget refill rate in tokens/second")
	retryBurst := fs.Float64("retry-burst", 0, "worker: retry budget burst capacity (0 = 2x -retry-budget)")
	breakerThreshold := fs.Int("peer-breaker-threshold", 3, "coordinator: consecutive assignment failures before a worker is quarantined")
	breakerCooldown := fs.Duration("peer-breaker-cooldown", 5*time.Second, "coordinator: quarantine time before a probe assignment is admitted")
	degradedAfter := fs.Duration("degraded-after", 0, "coordinator: run jobs in-process after pending work has starved this long with no assignable worker (0 = off)")
	chaosSpec := fs.String("chaos", "", `deterministic fault injection on outbound cluster RPCs, e.g. "seed=7,drop_request=0.1,latency=0.2:1ms:10ms" (drills/testing; empty = off)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject nonsense before it turns into a zero-worker deadlock or an
	// unbounded queue: every knob below has no meaningful negative or zero
	// interpretation (workers keeps 0 = GOMAXPROCS).
	switch {
	case *workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", *workers)
	case *queue <= 0:
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	case *jobTimeout <= 0:
		return fmt.Errorf("-job-timeout must be positive, got %s", *jobTimeout)
	case *drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %s", *drainTimeout)
	case *maxAttempts <= 0:
		return fmt.Errorf("-max-attempts must be positive, got %d", *maxAttempts)
	case *retryBackoff <= 0:
		return fmt.Errorf("-retry-backoff must be positive, got %s", *retryBackoff)
	case *resultCache < 0:
		return fmt.Errorf("-result-cache must be >= 0 (0 disables), got %d", *resultCache)
	case *snapMax <= 0:
		return fmt.Errorf("-snap-store-max must be positive, got %d", *snapMax)
	case *heartbeat <= 0:
		return fmt.Errorf("-heartbeat must be positive, got %s", *heartbeat)
	case *leaseTTL <= 0:
		return fmt.Errorf("-lease-ttl must be positive, got %s", *leaseTTL)
	case *dispatchEvery <= 0:
		return fmt.Errorf("-dispatch-interval must be positive, got %s", *dispatchEvery)
	case *maxAssigns <= 0:
		return fmt.Errorf("-max-assigns must be positive, got %d", *maxAssigns)
	case *maxInflight <= 0:
		return fmt.Errorf("-max-inflight must be positive, got %d", *maxInflight)
	case *rpcHeartbeat <= 0:
		return fmt.Errorf("-rpc-timeout-heartbeat must be positive, got %s", *rpcHeartbeat)
	case *rpcControl <= 0:
		return fmt.Errorf("-rpc-timeout-control must be positive, got %s", *rpcControl)
	case *rpcFetch <= 0:
		return fmt.Errorf("-rpc-timeout-fetch must be positive, got %s", *rpcFetch)
	case *rpcFetchPerMB <= 0:
		return fmt.Errorf("-rpc-timeout-fetch-per-mb must be positive, got %s", *rpcFetchPerMB)
	case *hedgeDelay <= 0:
		return fmt.Errorf("-hedge-delay must be positive, got %s", *hedgeDelay)
	case *retryRate <= 0:
		return fmt.Errorf("-retry-budget must be positive, got %g", *retryRate)
	case *retryBurst < 0:
		return fmt.Errorf("-retry-burst must be >= 0 (0 derives from -retry-budget), got %g", *retryBurst)
	case *breakerThreshold <= 0:
		return fmt.Errorf("-peer-breaker-threshold must be positive, got %d", *breakerThreshold)
	case *breakerCooldown <= 0:
		return fmt.Errorf("-peer-breaker-cooldown must be positive, got %s", *breakerCooldown)
	case *degradedAfter < 0:
		return fmt.Errorf("-degraded-after must be >= 0 (0 disables), got %s", *degradedAfter)
	// Port 0 is exempt: two ephemeral binds always land on distinct ports.
	case *pprofAddr != "" && *pprofAddr == *addr && !strings.HasSuffix(*addr, ":0"):
		return fmt.Errorf("-pprof-addr must differ from -addr: profiling stays off the public API listener")
	}
	switch *role {
	case "standalone", "coordinator":
		if *coordURL != "" {
			return fmt.Errorf("-coordinator only applies to -role worker")
		}
	case "worker":
		if *coordURL == "" {
			return fmt.Errorf("-role worker requires -coordinator")
		}
	default:
		return fmt.Errorf("-role must be standalone, coordinator or worker, got %q", *role)
	}
	if *chaosSpec != "" && *role == "standalone" {
		return fmt.Errorf("-chaos only applies to cluster roles: it faults coordinator/worker RPCs")
	}
	var chaosNet *chaosnet.Network
	if *chaosSpec != "" {
		ccfg, err := chaosnet.ParseSpec(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		chaosNet = chaosnet.New(ccfg)
	}
	rpcTimeouts := cluster.RPCTimeouts{
		Heartbeat:  *rpcHeartbeat,
		Control:    *rpcControl,
		FetchBase:  *rpcFetch,
		FetchPerMB: *rpcFetchPerMB,
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger := slog.New(slog.NewTextHandler(out, nil))

	// The snapshot store persists warm training state across restarts, so a
	// relaunched daemon resumes sweeps with disk hits instead of retraining.
	// Coordinators never simulate, so they skip it.
	harness.SetStoreDeltaEnabled(*storeDelta)
	var snaps *snapstore.Store
	if storeDir := *snapDir; storeDir != "off" && *role != "coordinator" {
		if storeDir == "" && *dataDir != "" {
			storeDir = filepath.Join(*dataDir, "snapshots")
		}
		if storeDir != "" {
			st, err := snapstore.Open(storeDir, *snapMax)
			if err != nil {
				return fmt.Errorf("snapshot store: %w", err)
			}
			harness.SetSnapStore(st)
			snaps = st
			fmt.Fprintf(out, "snapshot store at %s (cap %d bytes)\n", st.Dir(), *snapMax)
		}
	}

	// Role-specific setup: each branch yields the API handler plus a drain
	// function; listening and shutdown are shared below.
	var (
		handler http.Handler
		drain   func(context.Context) error
		started func(ln net.Addr) error // post-listen hook (worker join)
	)
	switch *role {
	case "coordinator":
		var coordClient *http.Client
		if chaosNet != nil {
			coordClient = chaosNet.Client("coordinator", nil)
			fmt.Fprintf(out, "chaos fault injection armed: %s\n", *chaosSpec)
		}
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Logger:               logger,
			LeaseTTL:             *leaseTTL,
			DispatchEvery:        *dispatchEvery,
			MaxAssigns:           *maxAssigns,
			MaxInflightPerWorker: *maxInflight,
			DefaultTimeout:       *jobTimeout,
			DataDir:              *dataDir,
			Timeouts:             rpcTimeouts,
			PeerBreakerThreshold: *breakerThreshold,
			PeerBreakerCooldown:  *breakerCooldown,
			DegradedAfter:        *degradedAfter,
			HTTPClient:           coordClient,
		})
		if err != nil {
			return err
		}
		handler = coord.Handler()
		drain = coord.Shutdown

	default: // standalone and worker both run a local service
		svc, err := service.Open(service.Config{
			Workers:         *workers,
			QueueDepth:      *queue,
			DefaultTimeout:  *jobTimeout,
			Logger:          logger,
			DataDir:         *dataDir,
			MaxAttempts:     *maxAttempts,
			RetryBackoff:    *retryBackoff,
			ResultCacheSize: *resultCache,
		})
		if err != nil {
			return err
		}
		if *role == "standalone" {
			handler = svc.Handler()
			drain = svc.Shutdown
			break
		}
		var wk *cluster.Worker
		// The worker's handler is built before the listener exists; the
		// self URL and default node name need the bound port, so the worker
		// itself is constructed in the post-listen hook.
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if wk == nil {
				http.Error(w, "worker still joining", http.StatusServiceUnavailable)
				return
			}
			wk.Handler().ServeHTTP(w, r)
		})
		started = func(a net.Addr) error {
			self := *selfURL
			if self == "" {
				self = "http://" + reachableHostPort(a)
			}
			name := *nodeName
			if name == "" {
				host, err := os.Hostname()
				if err != nil || host == "" {
					host = "worker"
				}
				_, port, _ := net.SplitHostPort(a.String())
				name = host + "-" + port
			}
			var workerClient *http.Client
			if chaosNet != nil {
				workerClient = chaosNet.Client(name, nil)
				fmt.Fprintf(out, "chaos fault injection armed: %s\n", *chaosSpec)
			}
			w, err := cluster.NewWorker(cluster.WorkerConfig{
				Name:           name,
				Coordinator:    *coordURL,
				SelfURL:        self,
				Heartbeat:      *heartbeat,
				Logger:         logger,
				SnapStore:      snaps,
				NoDeltaFetch:   !*fetchDelta,
				Timeouts:       rpcTimeouts,
				HedgeDelay:     *hedgeDelay,
				RetryPerSecond: *retryRate,
				RetryBurst:     *retryBurst,
				HTTPClient:     workerClient,
			}, svc)
			if err != nil {
				return err
			}
			w.Start()
			wk = w
			fmt.Fprintf(out, "worker %s joined %s as %s\n", name, *coordURL, self)
			return nil
		}
		drain = func(dctx context.Context) error {
			if wk != nil {
				wk.Stop()
			}
			return svc.Shutdown(dctx)
		}
	}

	// The pprof endpoints get their own listener and mux: the public API
	// handler never gains /debug/pprof/ routes, so profiling can be bound
	// to localhost while the API faces the network.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv = &http.Server{Handler: pprofMux()}
		fmt.Fprintf(out, "pprof listening on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = pprofSrv.Serve(pln) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pathfinderd listening on http://%s\n", ln.Addr())
	if started != nil {
		if err := started(ln.Addr()); err != nil {
			ln.Close()
			return err
		}
	}

	srv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("pprof shutdown: %w", err)
		}
	}
	if err := drain(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(out, "pathfinderd drained and stopped")
	return nil
}

// reachableHostPort rewrites a listener address into something peers can
// dial: the unspecified host (":8322" binds [::] or 0.0.0.0) becomes
// loopback, which is correct for the single-machine clusters the default
// serves — multi-host deployments pass -self-url.
func reachableHostPort(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// pprofMux registers the net/http/pprof handlers on a private mux instead
// of http.DefaultServeMux, so nothing else sharing the process default mux
// ever inherits the profiling routes.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
