// Command pathfinderd serves the experiment-orchestration API: a worker
// pool of simulators drains a bounded job queue, and an HTTP/JSON surface
// submits jobs, runs µarch sweeps, reports results, and exposes metrics.
//
//	pathfinderd -addr :8321 -workers 4
//	curl -s localhost:8321/v1/experiments
//	curl -s -XPOST localhost:8321/v1/jobs -d '{"experiment":"fig4","params":{"seed":7}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathfinder/internal/service"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pathfinderd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8321", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 256, "bounded job-queue depth")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "default per-job timeout")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "max wait for in-flight jobs on shutdown")
	dataDir := fs.String("data-dir", "", "directory for the durable job journal (empty = in-memory only)")
	maxAttempts := fs.Int("max-attempts", 1, "per-job attempt budget (1 = no retries)")
	retryBackoff := fs.Duration("retry-backoff", 500*time.Millisecond, "base backoff before a failed job is retried")
	resultCache := fs.Int("result-cache", 256, "result-cache capacity in entries (0 = disabled)")
	pprofAddr := fs.String("pprof-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Reject nonsense before it turns into a zero-worker deadlock or an
	// unbounded queue: every knob below has no meaningful negative or zero
	// interpretation (workers keeps 0 = GOMAXPROCS).
	switch {
	case *workers < 0:
		return fmt.Errorf("-workers must be >= 0 (0 selects GOMAXPROCS), got %d", *workers)
	case *queue <= 0:
		return fmt.Errorf("-queue must be positive, got %d", *queue)
	case *jobTimeout <= 0:
		return fmt.Errorf("-job-timeout must be positive, got %s", *jobTimeout)
	case *drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive, got %s", *drainTimeout)
	case *maxAttempts <= 0:
		return fmt.Errorf("-max-attempts must be positive, got %d", *maxAttempts)
	case *retryBackoff <= 0:
		return fmt.Errorf("-retry-backoff must be positive, got %s", *retryBackoff)
	case *resultCache < 0:
		return fmt.Errorf("-result-cache must be >= 0 (0 disables), got %d", *resultCache)
	// Port 0 is exempt: two ephemeral binds always land on distinct ports.
	case *pprofAddr != "" && *pprofAddr == *addr && !strings.HasSuffix(*addr, ":0"):
		return fmt.Errorf("-pprof-addr must differ from -addr: profiling stays off the public API listener")
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger := slog.New(slog.NewTextHandler(out, nil))
	svc, err := service.Open(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultTimeout:  *jobTimeout,
		Logger:          logger,
		DataDir:         *dataDir,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *retryBackoff,
		ResultCacheSize: *resultCache,
	})
	if err != nil {
		return err
	}

	// The pprof endpoints get their own listener and mux: the public API
	// handler never gains /debug/pprof/ routes, so profiling can be bound
	// to localhost while the API faces the network.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv = &http.Server{Handler: pprofMux()}
		fmt.Fprintf(out, "pprof listening on http://%s/debug/pprof/\n", pln.Addr())
		go func() { _ = pprofSrv.Serve(pln) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pathfinderd listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("pprof shutdown: %w", err)
		}
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(out, "pathfinderd drained and stopped")
	return nil
}

// pprofMux registers the net/http/pprof handlers on a private mux instead
// of http.DefaultServeMux, so nothing else sharing the process default mux
// ever inherits the profiling routes.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
