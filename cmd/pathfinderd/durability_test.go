package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFlagValidation: every sizing or timing knob with no meaningful
// negative or zero interpretation must be rejected before the daemon binds
// a socket or opens a journal.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"zero queue", []string{"-queue", "0"}, "-queue"},
		{"negative queue", []string{"-queue", "-5"}, "-queue"},
		{"zero job timeout", []string{"-job-timeout", "0s"}, "-job-timeout"},
		{"negative job timeout", []string{"-job-timeout", "-1m"}, "-job-timeout"},
		{"zero drain timeout", []string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{"zero max attempts", []string{"-max-attempts", "0"}, "-max-attempts"},
		{"negative max attempts", []string{"-max-attempts", "-2"}, "-max-attempts"},
		{"zero retry backoff", []string{"-retry-backoff", "0s"}, "-retry-backoff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error mentioning %s", tc.args, err, tc.want)
			}
		})
	}
	// Workers 0 stays valid (GOMAXPROCS) — prove it by pairing it with an
	// invalid flag that is checked later in the switch.
	var out bytes.Buffer
	err := run(context.Background(), []string{"-workers", "0", "-queue", "0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-queue") {
		t.Fatalf("run = %v, want the -queue error (not a -workers one)", err)
	}
}

// TestKillAndRestartRecovery is the crash-recovery acceptance scenario on
// the real binary: submit jobs to a durable daemon, SIGKILL it mid-work so
// no graceful path runs, restart it on the same data directory, and require
// every journaled job to reach a terminal state with no lost or duplicated
// IDs.
func TestKillAndRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long test: builds and runs the real binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "pathfinderd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	start := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-data-dir", dataDir, "-max-attempts", "2", "-retry-backoff", "10ms")
		var out syncBuffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrRE := regexp.MustCompile(`listening on (http://[0-9.:]+)`)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if m := addrRE.FindStringSubmatch(out.String()); m != nil {
				return cmd, m[1]
			}
			time.Sleep(10 * time.Millisecond)
		}
		cmd.Process.Kill()
		t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		return nil, ""
	}

	// First life: one worker, three multi-second jobs, so the SIGKILL lands
	// with one job mid-run and two still queued.
	cmd, base := start()
	var ids []string
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"experiment":"aes_noise","params":{"seed":%d,"trials":32}}`, i+1)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			cmd.Process.Kill()
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			cmd.Process.Kill()
			t.Fatalf("submit: %d %s", resp.StatusCode, raw)
		}
		var v struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			cmd.Process.Kill()
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Wait for the first job to start so the journal holds a start record,
	// then kill without ceremony.
	killedMidRun := waitState(t, base, ids[0], 15*time.Second, "running", "done") == "running"
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit error expected after SIGKILL

	// Second life: recovery must finish everything the journal promised.
	cmd2, base2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	for _, id := range ids {
		state := waitState(t, base2, id, 120*time.Second, "done", "failed")
		if state != "done" {
			t.Errorf("job %s ended %s after restart, want done", id, state)
		}
	}
	if killedMidRun {
		// The kill caught job 1 running, so its crashed first attempt is on
		// the journal and the recovery run is attempt two.
		resp, err := http.Get(base2 + "/v1/jobs/" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v struct {
			Attempts int `json:"attempts"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if v.Attempts != 2 {
			t.Errorf("mid-run job recovered with attempts=%d, want 2:\n%s", v.Attempts, raw)
		}
	}

	// No duplicated or lost IDs: the table holds exactly the three jobs and
	// a fresh submission continues the sequence.
	resp, err := http.Get(base2 + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var listing struct {
		Total int `json:"total"`
		Jobs  []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Total != 3 {
		t.Fatalf("job table holds %d jobs after restart, want 3:\n%s", listing.Total, raw)
	}
	seen := map[string]bool{}
	for _, j := range listing.Jobs {
		if seen[j.ID] {
			t.Fatalf("duplicated job ID %s after restart", j.ID)
		}
		seen[j.ID] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("job %s lost across restart", id)
		}
	}
	resp, err = http.Post(base2+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var fresh struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "job-000004" {
		t.Fatalf("post-restart submit got %s, want job-000004 (sequence must resume)", fresh.ID)
	}
}

// waitState polls a job until it reaches one of the wanted states and
// returns the state it landed in.
func waitState(t *testing.T, base, id string, timeout time.Duration, want ...string) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last := ""
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var v struct {
				State string `json:"state"`
			}
			if json.Unmarshal(raw, &v) == nil {
				last = v.State
				for _, w := range want {
					if v.State == w {
						return v.State
					}
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in state %q waiting for %v", id, last, want)
	return ""
}
