package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: pathfinder/internal/phr
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkUpdate-8   	     100	        32.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFold-8     	     100	        29.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pathfinder/internal/phr	0.011s
pkg: pathfinder/internal/cache
BenchmarkAccess/construct-8 	     100	    150000 ns/op	 1146880 B/op	       2 allocs/op
BenchmarkAccess/hot-8       	     100	        17.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingBaseline = `{
  "tolerance_pct": 25,
  "benchmarks": {
    "pathfinder/internal/phr.BenchmarkUpdate": {"ns_per_op": 31.6, "allocs_per_op": 0},
    "pathfinder/internal/phr.BenchmarkFold": {"ns_per_op": 28.6, "allocs_per_op": 0},
    "pathfinder/internal/cache.BenchmarkAccess/hot": {"ns_per_op": 15.0, "allocs_per_op": 0}
  }
}`

func TestParseBenchOutputKeysAndSuffixes(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["pathfinder/internal/phr.BenchmarkUpdate"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped or pkg not tracked; keys: %v", keys(got))
	}
	if m.NsPerOp != 32.0 || m.AllocsPerOp != 0 || !m.allocsKnown {
		t.Fatalf("BenchmarkUpdate parsed as %+v", m)
	}
	sub, ok := got["pathfinder/internal/cache.BenchmarkAccess/construct"]
	if !ok || sub.AllocsPerOp != 2 {
		t.Fatalf("sub-benchmark parsed as %+v (present=%v)", sub, ok)
	}
}

func TestParseBenchOutputRepeatsKeepBestNsWorstAllocs(t *testing.T) {
	run := `pkg: p
BenchmarkX-8 	100	50.0 ns/op	0 B/op	0 allocs/op
BenchmarkX-8 	100	40.0 ns/op	16 B/op	1 allocs/op
BenchmarkX-8 	100	60.0 ns/op	0 B/op	0 allocs/op
`
	got, err := parseBenchOutput(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	m := got["p.BenchmarkX"]
	if m.NsPerOp != 40.0 {
		t.Errorf("ns/op = %v, want the fastest repeat 40.0", m.NsPerOp)
	}
	if m.AllocsPerOp != 1 {
		t.Errorf("allocs/op = %v, want the worst repeat 1", m.AllocsPerOp)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-baseline", writeBaseline(t, passingBaseline),
	}, strings.NewReader(sampleRun), &out)
	if err != nil {
		t.Fatalf("gate failed on within-tolerance run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no alloc regressions") {
		t.Errorf("missing success summary:\n%s", out.String())
	}
	// The sub-benchmark with no baseline entry is noted, not failed.
	if !strings.Contains(out.String(), "note pathfinder/internal/cache.BenchmarkAccess/construct") {
		t.Errorf("ungated benchmark not reported:\n%s", out.String())
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	base := `{"tolerance_pct": 25, "benchmarks": {
		"pathfinder/internal/phr.BenchmarkUpdate": {"ns_per_op": 20.0, "allocs_per_op": 0}}}`
	var out strings.Builder
	err := run([]string{"-baseline", writeBaseline(t, base)}, strings.NewReader(sampleRun), &out)
	if err == nil {
		t.Fatalf("32 ns/op vs 20 ns/op baseline passed a 25%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL pathfinder/internal/phr.BenchmarkUpdate") {
		t.Errorf("failure not attributed:\n%s", out.String())
	}
}

func TestGateFailsOnAnyAllocRegression(t *testing.T) {
	// ns/op is fine (well inside tolerance), but the run reports 2 allocs
	// where the baseline has 0 — must fail regardless of the time band.
	base := `{"tolerance_pct": 25, "benchmarks": {
		"p.BenchmarkY": {"ns_per_op": 100.0, "allocs_per_op": 0}}}`
	runText := "pkg: p\nBenchmarkY-8 	100	99.0 ns/op	64 B/op	2 allocs/op\n"
	var out strings.Builder
	err := run([]string{"-baseline", writeBaseline(t, base)}, strings.NewReader(runText), &out)
	if err == nil {
		t.Fatalf("alloc regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "any alloc increase fails") {
		t.Errorf("alloc failure not attributed:\n%s", out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := `{"tolerance_pct": 25, "benchmarks": {
		"p.BenchmarkGone": {"ns_per_op": 10.0, "allocs_per_op": 0}}}`
	var out strings.Builder
	err := run([]string{"-baseline", writeBaseline(t, base)}, strings.NewReader(sampleRun), &out)
	if err == nil {
		t.Fatalf("missing gated benchmark passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from run") {
		t.Errorf("missing-benchmark failure not attributed:\n%s", out.String())
	}
}

func TestToleranceFlagOverridesBaseline(t *testing.T) {
	// 32.0 vs 31.6 is +1.3%: passes at 25%, fails at 1%.
	var out strings.Builder
	err := run([]string{
		"-baseline", writeBaseline(t, passingBaseline), "-tolerance", "1",
	}, strings.NewReader(sampleRun), &out)
	if err == nil {
		t.Fatalf("1%% override did not tighten the gate:\n%s", out.String())
	}
}

func keys(m map[string]Measurement) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
