// Command benchgate compares a `go test -bench` run against a committed
// baseline and fails on regressions, so a hot-path slowdown breaks CI
// instead of landing silently.
//
//	go test -run='^$' -bench=. -benchmem -benchtime=100x ./internal/... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -input bench.txt
//
// The gate is asymmetric on purpose:
//
//   - ns/op may drift up to the tolerance band (default 25%) before
//     failing — wall-clock numbers wobble across runs and runners.
//   - allocs/op must not increase at all. Allocation counts are exact and
//     host-independent, so any increase is a real code change.
//
// A baseline entry whose benchmark is missing from the run also fails:
// renaming or deleting a gated benchmark must be a deliberate baseline
// edit, never a silent drop of coverage. Benchmarks present in the run but
// absent from the baseline are reported as ungated, not failed, so new
// benchmarks can land before their numbers settle.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file. Keys of Benchmarks are
// "import/path.BenchmarkName" with the GOMAXPROCS suffix stripped.
type Baseline struct {
	Description  string                    `json:"description,omitempty"`
	TolerancePct float64                   `json:"tolerance_pct"`
	Benchmarks   map[string]BaselineResult `json:"benchmarks"`
}

// BaselineResult is the reference numbers for one benchmark.
type BaselineResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Measurement is one parsed benchmark line. allocsKnown distinguishes a
// run without -benchmem (no allocs column) from a measured zero.
type Measurement struct {
	NsPerOp     float64
	AllocsPerOp int64
	allocsKnown bool
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(out)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	inputPath := fs.String("input", "-", "go test -bench output to check (- = stdin)")
	tolerance := fs.Float64("tolerance", -1, "ns/op tolerance percent (-1 = use the baseline file's)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	tol := base.TolerancePct
	if *tolerance >= 0 {
		tol = *tolerance
	}

	in := stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	failures, report := gate(base, measured, tol)
	for _, line := range report {
		fmt.Fprintln(out, line)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Fprintf(out, "benchgate: %d benchmark(s) within %.0f%% ns/op tolerance, no alloc regressions\n",
		len(base.Benchmarks), tol)
	return nil
}

func loadBaseline(path string) (*Baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in baseline", path)
	}
	if base.TolerancePct <= 0 {
		base.TolerancePct = 25
	}
	return &base, nil
}

// benchLine matches one result line. The trailing -N GOMAXPROCS suffix is
// stripped so baselines stay portable across worker shapes; sub-benchmark
// names keep their slashes.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9]+) allocs/op)?`)

// parseBenchOutput reads `go test -bench` text, tracking the current
// "pkg:" header so results are keyed "import/path.BenchmarkName". A
// benchmark that appears several times (e.g. -count > 1) keeps its fastest
// ns/op and its worst allocs/op: noise should not fail the gate, real
// allocation growth should.
func parseBenchOutput(r io.Reader) (map[string]Measurement, error) {
	results := make(map[string]Measurement)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		meas := Measurement{NsPerOp: ns}
		if m[4] != "" {
			allocs, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			meas.AllocsPerOp = allocs
			meas.allocsKnown = true
		}
		key := m[1]
		if pkg != "" {
			key = pkg + "." + m[1]
		}
		if prev, ok := results[key]; ok {
			if prev.NsPerOp < meas.NsPerOp {
				meas.NsPerOp = prev.NsPerOp
			}
			if prev.allocsKnown && prev.AllocsPerOp > meas.AllocsPerOp {
				meas.AllocsPerOp = prev.AllocsPerOp
			}
			meas.allocsKnown = meas.allocsKnown || prev.allocsKnown
		}
		results[key] = meas
	}
	return results, sc.Err()
}

// gate checks every baseline entry against the run and returns the failure
// keys plus a human-readable report (one line per gated benchmark, sorted).
func gate(base *Baseline, measured map[string]Measurement, tolerancePct float64) (failures, report []string) {
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, key := range keys {
		want := base.Benchmarks[key]
		got, ok := measured[key]
		if !ok {
			failures = append(failures, key)
			report = append(report, fmt.Sprintf("FAIL %s: missing from run (gated benchmark removed or renamed?)", key))
			continue
		}
		delta := 100 * (got.NsPerOp - want.NsPerOp) / want.NsPerOp
		switch {
		case delta > tolerancePct:
			failures = append(failures, key)
			report = append(report, fmt.Sprintf("FAIL %s: %.1f ns/op vs baseline %.1f (%+.1f%% > %.0f%% tolerance)",
				key, got.NsPerOp, want.NsPerOp, delta, tolerancePct))
		case got.allocsKnown && got.AllocsPerOp > want.AllocsPerOp:
			failures = append(failures, key)
			report = append(report, fmt.Sprintf("FAIL %s: %d allocs/op vs baseline %d (any alloc increase fails)",
				key, got.AllocsPerOp, want.AllocsPerOp))
		default:
			report = append(report, fmt.Sprintf("ok   %s: %.1f ns/op (%+.1f%%), %d allocs/op",
				key, got.NsPerOp, delta, got.AllocsPerOp))
		}
	}

	// Ungated benchmarks are informational: new benchmarks may land before
	// their baseline entry, but the gate says so rather than hiding it.
	var extra []string
	for k := range measured {
		if _, ok := base.Benchmarks[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		report = append(report, fmt.Sprintf("note %s: not in baseline (ungated)", k))
	}
	return failures, report
}
