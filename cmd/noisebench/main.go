// Command noisebench regenerates BENCH_noise.json: the §9 robustness sweep
// of AES byte-theft accuracy over rising PHR-pollution intensity, run under
// the calibrated default fault profile.
//
//	go run ./cmd/noisebench -trials 24 -o BENCH_noise.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pathfinder/internal/harness"
	"pathfinder/internal/snapstore"
)

type report struct {
	Description string                   `json:"description"`
	Trials      int                      `json:"trials"`
	Noise       float64                  `json:"noise"`
	Seed        int64                    `json:"seed"`
	DurationMS  int64                    `json:"duration_ms"`
	Sweep       harness.NoiseSweepReport `json:"sweep"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("noisebench", flag.ContinueOnError)
	trials := fs.Int("trials", 24, "oracle-query trials per intensity point")
	noise := fs.Float64("noise", 0.015, "baseline probe-noise rate passed to the AES evaluation")
	seed := fs.Int64("seed", 1, "root seed for the sweep")
	out := fs.String("o", "", "output path (empty = stdout)")
	snapDir := fs.String("snap-store", "", "persistent warm-snapshot store directory; reruns restore training state from disk (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", *trials)
	}
	if *snapDir != "" {
		st, err := snapstore.Open(*snapDir, snapstore.DefaultMaxBytes)
		if err != nil {
			return fmt.Errorf("snapshot store: %w", err)
		}
		harness.SetSnapStore(st)
	}

	t0 := time.Now()
	sweep, err := harness.AESNoiseSweep(context.Background(),
		harness.Options{Seed: *seed}, *trials, *noise, nil)
	if err != nil {
		return err
	}
	rep := report{
		Description: "AES byte-theft accuracy vs PHR-pollution intensity (per-taken-branch " +
			"burst hazard), all other injectors held at the default fault profile. " +
			"The zero-pollution point is the clean §9 baseline; accuracy must decay " +
			"monotonically as context-switch pressure rises. Regenerate with: " +
			"go run ./cmd/noisebench -trials 24 -o BENCH_noise.json",
		Trials:     *trials,
		Noise:      *noise,
		Seed:       *seed,
		DurationMS: time.Since(t0).Milliseconds(),
		Sweep:      *sweep,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	for _, p := range sweep.Points {
		fmt.Fprintf(stdout, "pollution=%.4g rate=%.4f key_recovered=%v\n",
			p.PHRPollutionProb, p.Result.SuccessRate, p.Result.KeyRecovered)
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
