package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesParsableSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) sweep")
	}
	out := filepath.Join(t.TempDir(), "noise.json")
	var stdout bytes.Buffer
	if err := run([]string{"-trials", "1", "-o", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Trials != 1 || len(rep.Sweep.Points) != 5 {
		t.Fatalf("trials=%d points=%d, want 1 and the 5 default intensities",
			rep.Trials, len(rep.Sweep.Points))
	}
	if rep.Sweep.Points[0].PHRPollutionProb != 0 {
		t.Fatalf("first point pollution = %g, want the clean baseline 0",
			rep.Sweep.Points[0].PHRPollutionProb)
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("missing confirmation line; stdout:\n%s", stdout.String())
	}
}

func TestRunRejectsBadTrials(t *testing.T) {
	var stdout bytes.Buffer
	err := run([]string{"-trials", "0"}, &stdout)
	if err == nil || !strings.Contains(err.Error(), "-trials") {
		t.Fatalf("run = %v, want a -trials error", err)
	}
}
