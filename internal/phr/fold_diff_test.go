package phr

import (
	"testing"
)

// The tests in this file pin the hot-path implementations — the table-driven
// Footprint, the word-streaming foldFull/FoldMix, and the incremental
// FoldCache — against deliberately naive references that mirror the
// pre-optimization per-chunk code.

// refExtract returns up to 32 bits starting at bit offset o, clipped at
// limit (the old Reg.extract helper).
func refExtract(r *Reg, o, n, limit int) uint32 {
	if o+n > limit {
		n = limit - o
	}
	w := o / 64
	sh := uint(o % 64)
	v := r.w[w] >> sh
	if sh+uint(n) > 64 && w+1 < maxWords {
		v |= r.w[w+1] << (64 - sh)
	}
	return uint32(v) & uint32(1<<uint(n)-1)
}

// refFold is the original per-chunk Fold.
func refFold(r *Reg, histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	bits := 2 * histLen
	mask := uint32(1)<<width - 1
	var acc uint32
	for o := 0; o < bits; o += width {
		acc ^= refExtract(r, o, width, bits) & mask
	}
	return acc & mask
}

// refFoldMix is the original per-chunk FoldMix.
func refFoldMix(r *Reg, histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	bits := 2 * histLen
	mask := uint32(1)<<width - 1
	var acc uint32
	for o := 0; o < bits; o += width {
		acc = ((acc<<3 | acc>>(uint(width)-3)) & mask) ^ (refExtract(r, o, width, bits) & mask)
	}
	return acc & mask
}

// table1FoldPairs returns the (size, histLen, width) triples the Table 1
// configurations exercise: the 8-bit tagged-table index folds per history
// length and the 16-bit IBP fold over the full window, for both the
// 194-doublet Alder/Raptor Lake register and the 93-doublet Skylake one.
type foldPair struct{ size, histLen, width int }

func table1FoldPairs() []foldPair {
	var out []foldPair
	for _, size := range []int{194, 93} {
		hists := []int{34, 66, 194}
		if size == 93 {
			hists = []int{24, 46, 93}
		}
		for _, h := range hists {
			out = append(out, foldPair{size, h, 8})
			out = append(out, foldPair{size, h, 12})
		}
		out = append(out, foldPair{size, size, 16})
	}
	return out
}

func TestFootprintTableMatchesSlow(t *testing.T) {
	g := newTestRng(0x5eed)
	for i := 0; i < 200000; i++ {
		b, tgt := g.next(), g.next()
		if got, want := Footprint(b, tgt), footprintSlow(b, tgt); got != want {
			t.Fatalf("Footprint(%#x, %#x) = %#x, want %#x", b, tgt, got, want)
		}
	}
	// Exhaustive over the bits that matter for the branch half.
	for b := uint64(0); b < 1<<16; b += 7 {
		for tg := uint64(0); tg < 64; tg++ {
			if got, want := Footprint(b, tg), footprintSlow(b, tg); got != want {
				t.Fatalf("Footprint(%#x, %#x) = %#x, want %#x", b, tg, got, want)
			}
		}
	}
}

func TestFoldStreamingMatchesRef(t *testing.T) {
	g := newTestRng(42)
	for _, size := range []int{8, 93, 100, 194} {
		r := New(size)
		for step := 0; step < 300; step++ {
			r.Update(uint16(g.next()))
			for h := 1; h <= size; h += 13 {
				for w := 1; w <= 32; w++ {
					if got, want := r.foldFull(h, w), refFold(r, h, w); got != want {
						t.Fatalf("size=%d h=%d w=%d foldFull=%#x ref=%#x", size, h, w, got, want)
					}
					if w > 2 {
						if got, want := r.FoldMix(h, w), refFoldMix(r, h, w); got != want {
							t.Fatalf("size=%d h=%d w=%d FoldMix=%#x ref=%#x", size, h, w, got, want)
						}
					}
				}
			}
		}
	}
}

// TestFoldMix12LaneFold pins the 48-bit lane-grouped tag fold against the
// generic chunk stream for every history length at the tag width.
func TestFoldMix12LaneFold(t *testing.T) {
	g := newTestRng(7)
	for _, size := range []int{8, 93, 100, 194} {
		r := New(size)
		for step := 0; step < 200; step++ {
			r.Update(uint16(g.next()))
			for h := 1; h <= size; h++ {
				if got, want := r.foldMix12(h), r.foldMixFull(h, 12); got != want {
					t.Fatalf("size=%d h=%d foldMix12=%#x foldMixFull=%#x", size, h, got, want)
				}
			}
		}
	}
}

// TestFoldCacheIncremental replays long random branch streams and checks the
// cached Fold values against the naive reference after every update, for all
// Table 1 (histLen, width) pairs. Mixing in ReverseUpdates exercises the
// reverse incremental formula, and occasional structural mutations exercise
// invalidation.
func TestFoldCacheIncremental(t *testing.T) {
	for _, p := range table1FoldPairs() {
		g := newTestRng(uint64(p.size*1000 + p.histLen*10 + p.width))
		r := New(p.size)
		var fps []uint16
		var tops []Doublet
		for step := 0; step < 8000; step++ {
			switch {
			case len(fps) > 0 && g.next()%5 == 0:
				// Undo a real update so the recovered top doublet is exact.
				fp := fps[len(fps)-1]
				top := tops[len(tops)-1]
				fps, tops = fps[:len(fps)-1], tops[:len(tops)-1]
				r.ReverseUpdate(fp, top)
			case g.next()%97 == 0:
				r.SetDoublet(int(g.next()%uint64(p.size)), Doublet(g.next())&3)
				fps, tops = fps[:0], tops[:0] // history no longer invertible
			default:
				fp := uint16(g.next())
				tops = append(tops, r.Doublet(p.size-1))
				fps = append(fps, fp)
				r.Update(fp)
			}
			if got, want := r.Fold(p.histLen, p.width), refFold(r, p.histLen, p.width); got != want {
				t.Fatalf("size=%d histLen=%d width=%d step=%d: cached fold %#x, ref %#x",
					p.size, p.histLen, p.width, step, got, want)
			}
		}
	}
}

// TestFoldCacheManyWindows drives more simultaneous (histLen, width) pairs
// than the cache has slots, forcing round-robin eviction, and also checks
// reverse updates with synthetic (unknown) top doublets as the pathfinder
// search issues them.
func TestFoldCacheManyWindows(t *testing.T) {
	g := newTestRng(7)
	r := New(194)
	pairs := [][2]int{{34, 8}, {66, 8}, {194, 8}, {194, 16}, {50, 12}, {93, 9}}
	for step := 0; step < 3000; step++ {
		if g.next()%3 == 0 {
			r.ReverseUpdate(uint16(g.next()), Doublet(g.next())&3)
		} else {
			r.Update(uint16(g.next()))
		}
		for _, p := range pairs {
			if got, want := r.Fold(p[0], p[1]), refFold(r, p[0], p[1]); got != want {
				t.Fatalf("h=%d w=%d step=%d: cached fold %#x, ref %#x", p[0], p[1], step, got, want)
			}
		}
	}
}

// TestFoldCacheCloneCopy checks the cache survives Clone/CopyFrom as a plain
// value copy: clones diverge independently and stay correct.
func TestFoldCacheCloneCopy(t *testing.T) {
	g := newTestRng(99)
	r := New(194)
	for i := 0; i < 50; i++ {
		r.Update(uint16(g.next()))
	}
	r.Fold(66, 8) // populate cache
	c := r.Clone()
	c.Update(uint16(g.next()))
	r.ReverseUpdate(uint16(g.next()), 2)
	if got, want := c.Fold(66, 8), refFold(c, 66, 8); got != want {
		t.Fatalf("clone fold %#x, ref %#x", got, want)
	}
	if got, want := r.Fold(66, 8), refFold(r, 66, 8); got != want {
		t.Fatalf("original fold %#x, ref %#x", got, want)
	}
	d := New(194)
	d.CopyFrom(c)
	d.Update(uint16(g.next()))
	if got, want := d.Fold(66, 8), refFold(d, 66, 8); got != want {
		t.Fatalf("CopyFrom fold %#x, ref %#x", got, want)
	}
}

func TestAppendDoublets(t *testing.T) {
	g := newTestRng(3)
	r := New(93)
	for i := 0; i < 200; i++ {
		r.Update(uint16(g.next()))
	}
	buf := make([]Doublet, 0, 93)
	buf = r.AppendDoublets(buf)
	want := r.Doublets()
	if len(buf) != len(want) {
		t.Fatalf("AppendDoublets len %d, want %d", len(buf), len(want))
	}
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("doublet %d: %d != %d", i, buf[i], want[i])
		}
	}
	// Reuse must not reallocate.
	p0 := &buf[0]
	buf = r.AppendDoublets(buf[:0])
	if &buf[0] != p0 {
		t.Fatal("AppendDoublets reallocated a sufficient buffer")
	}
}

type testRng struct{ s uint64 }

func newTestRng(seed uint64) *testRng { return &testRng{s: seed} }

func (r *testRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}
