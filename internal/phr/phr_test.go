package phr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFootprintZero(t *testing.T) {
	// Branch with low 16 address bits zero and target low 6 bits zero has a
	// zero footprint (this is the basis of the Shift_PHR macro).
	cases := []struct{ b, tgt uint64 }{
		{0x0000, 0x0000},
		{0x7fff0000, 0x12340000 + 0x40}, // only high bits set
		{0xdead0000, 0xbeef0000 + 0xc0},
		{0x10000, 0x40},
	}
	for _, c := range cases {
		if f := Footprint(c.b, c.tgt); f != 0 {
			t.Errorf("Footprint(%#x, %#x) = %#x, want 0", c.b, c.tgt, f)
		}
	}
}

func TestFootprintDoublet0ControlledByT0T1(t *testing.T) {
	// With branch address low bits zero, T0 and T1 set exactly doublet 0:
	// bit1 = B3^T0 = T0, bit0 = B4^T1 = T1.
	for t0 := uint64(0); t0 < 2; t0++ {
		for t1 := uint64(0); t1 < 2; t1++ {
			tgt := t0 | t1<<1
			f := Footprint(0, tgt)
			wantD0 := uint16(t0<<1 | t1)
			if f&3 != wantD0 {
				t.Errorf("T0=%d T1=%d: doublet0 = %d, want %d", t0, t1, f&3, wantD0)
			}
			if f>>2 != 0 {
				t.Errorf("T0=%d T1=%d: footprint %#x has bits outside doublet 0", t0, t1, f)
			}
		}
	}
}

func TestFootprintBitPositions(t *testing.T) {
	// Each branch-address bit lands exactly where Figure 2 says.
	wantPos := map[uint]uint{ // branch bit -> footprint bit
		12: 15, 13: 14, 5: 13, 6: 12, 7: 11, 8: 10, 9: 9, 10: 8,
		0: 7, 1: 6, 2: 5, 11: 4, 14: 3, 15: 2, 3: 1, 4: 0,
	}
	for bbit, fbit := range wantPos {
		f := Footprint(1<<bbit, 0)
		if f != 1<<fbit {
			t.Errorf("branch bit %d: footprint %#x, want bit %d set", bbit, f, fbit)
		}
	}
	wantTgt := map[uint]uint{2: 7, 3: 6, 4: 5, 5: 4, 0: 1, 1: 0}
	for tbit, fbit := range wantTgt {
		f := Footprint(0, 1<<tbit)
		if f != 1<<fbit {
			t.Errorf("target bit %d: footprint %#x, want bit %d set", tbit, f, fbit)
		}
	}
}

func TestFootprintHighBitsIgnored(t *testing.T) {
	if err := quick.Check(func(b, tgt uint64) bool {
		return Footprint(b, tgt) == Footprint(b&0xffff, tgt&0x3f)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateMatchesBitFormula(t *testing.T) {
	// For a PHR small enough to pack into a uint64, doublet-wise Update must
	// equal the paper's bit formula PHR' = (PHR<<2) ^ footprint.
	const size = 16 // 32 bits
	pack := func(r *Reg) uint64 {
		var v uint64
		for i := 0; i < size; i++ {
			v |= uint64(r.Doublet(i)) << (2 * i)
		}
		return v
	}
	rng := rand.New(rand.NewSource(1))
	r := New(size)
	var ref uint64
	for n := 0; n < 10_000; n++ {
		fp := uint16(rng.Uint32())
		r.Update(fp)
		ref = (ref<<2 ^ uint64(fp)) & (1<<(2*size) - 1)
		if pack(r) != ref {
			t.Fatalf("step %d: packed %#x != ref %#x", n, pack(r), ref)
		}
	}
}

func TestShiftAndClear(t *testing.T) {
	r := New(194)
	r.SetDoublet(0, 3)
	r.SetDoublet(1, 1)
	r.Shift(2)
	if r.Doublet(2) != 3 || r.Doublet(3) != 1 || r.Doublet(0) != 0 || r.Doublet(1) != 0 {
		t.Fatalf("shift misplaced doublets: %v", r.Doublets()[:5])
	}
	r.Shift(191)
	if r.Doublet(193) != 3 || !func() bool { // everything else zero
		for i := 0; i < 193; i++ {
			if r.Doublet(i) != 0 {
				return false
			}
		}
		return true
	}() {
		t.Fatalf("shift to top failed: top=%d", r.Doublet(193))
	}
	r.Shift(1)
	if !r.IsZero() {
		t.Fatal("shifting past size must clear")
	}
	r.SetDoublet(5, 2)
	r.Shift(194)
	if !r.IsZero() {
		t.Fatal("Shift(size) must clear (Clear_PHR == Shift_PHR[194])")
	}
}

func TestReverseUpdateInvertsUpdate(t *testing.T) {
	if err := quick.Check(func(seed int64, fp uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(64)
		for i := 0; i < r.Size(); i++ {
			r.SetDoublet(i, Doublet(rng.Intn(4)))
		}
		before := r.Clone()
		top := before.Doublet(before.Size() - 1)
		r.Update(fp)
		r.ReverseUpdate(fp, top)
		return r.Equal(before)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSetDoubletsRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := make([]Doublet, 194)
		for i := range ds {
			ds[i] = Doublet(rng.Intn(4))
		}
		r := New(194)
		r.SetDoublets(ds)
		got := r.Doublets()
		for i := range ds {
			if got[i] != ds[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFoldDistinguishesHistories(t *testing.T) {
	// Folding must map equal registers equally and, overwhelmingly, unequal
	// low histories to unequal folds for at least one (histLen,width) probe.
	r1 := New(194)
	r2 := New(194)
	r1.SetDoublet(0, 1)
	if r1.Fold(34, 8) == r2.Fold(34, 8) {
		t.Error("fold ignored doublet 0")
	}
	r2.SetDoublet(0, 1)
	if r1.Fold(34, 8) != r2.Fold(34, 8) {
		t.Error("fold not deterministic")
	}
	// Doublets beyond histLen must not affect the fold.
	r2.SetDoublet(40, 3)
	if r1.Fold(34, 8) != r2.Fold(34, 8) {
		t.Error("fold leaked doublets beyond histLen")
	}
	if r1.Fold(66, 8) == r2.Fold(66, 8) {
		t.Error("longer fold must see doublet 40")
	}
}

func TestFoldWidth(t *testing.T) {
	r := New(194)
	for i := 0; i < 194; i++ {
		r.SetDoublet(i, 3)
	}
	for _, w := range []int{1, 5, 8, 9, 13, 16, 32} {
		if v := r.Fold(194, w); uint64(v) >= uint64(1)<<w {
			t.Errorf("Fold width %d overflowed: %#x", w, v)
		}
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	a := New(93)
	b := New(93)
	a.SetDoublet(17, 2)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom failed")
	}
	b.SetDoublet(17, 1)
	if a.Equal(b) {
		t.Fatal("Equal false negative")
	}
	c := New(194)
	if a.Equal(c) {
		t.Fatal("Equal must compare sizes")
	}
}

// TestCopyFromSizeMismatchPanics pins the documented contract: copying
// history between registers of different PHR depths — Raptor/Alder Lake's
// 194 doublets vs Skylake's 93, in either direction — must panic rather
// than silently truncate or zero-extend.
func TestCopyFromSizeMismatchPanics(t *testing.T) {
	mustPanic := func(name string, dst, src *Reg) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: CopyFrom(%d <- %d) did not panic", name, dst.Size(), src.Size())
			}
		}()
		dst.CopyFrom(src)
	}
	raptor, skylake := New(194), New(93)
	for i := 0; i < 93; i++ {
		skylake.SetDoublet(i, Doublet(i)&3)
	}
	mustPanic("widen", raptor, skylake)
	mustPanic("truncate", skylake, raptor)
	// Same size still works, and leaves gen moving.
	other := New(93)
	g := other.Gen()
	other.CopyFrom(skylake)
	if !other.Equal(skylake) || other.Gen() == g {
		t.Fatal("same-size CopyFrom broken")
	}
}

func TestUpdateShiftsOutOldHistory(t *testing.T) {
	r := New(93) // Skylake-sized
	r.SetDoublet(92, 3)
	r.Update(0)
	if r.Doublet(92) != 0 {
		t.Fatal("top doublet must be shifted out")
	}
}

func TestStringCompact(t *testing.T) {
	r := New(194)
	if s := r.String(); s != "PHR[0*194]" {
		t.Fatalf("zero PHR string: %q", s)
	}
	r.SetDoublet(0, 3)
	if s := r.String(); s != "PHR[0*193 3]" {
		t.Fatalf("PHR string: %q", s)
	}
}

func BenchmarkUpdate(b *testing.B) {
	r := New(194)
	for i := 0; i < b.N; i++ {
		r.Update(uint16(i))
	}
}

func BenchmarkFold(b *testing.B) {
	r := New(194)
	for i := 0; i < 194; i++ {
		r.SetDoublet(i, Doublet(i)&3)
	}
	for i := 0; i < b.N; i++ {
		_ = r.Fold(194, 9)
	}
}
