// Package phr models the Path History Register (PHR) of the conditional
// branch predictor in modern Intel CPUs, as reverse engineered by Half&Half
// (Yavarzadeh et al., S&P 2023) and used by Pathfinder (ASPLOS 2024).
//
// The PHR records the history of the last N taken branches (N = 194 on
// Alder/Raptor Lake, 93 on Skylake), conditional or unconditional. A taken
// branch updates the PHR in two steps: a leftward shift by two bits, then an
// XOR of a 16-bit "branch footprint" derived from the branch address and its
// target address into the low 16 bits:
//
//	PHR_new = (PHR_old << 2) ^ footprint
//
// Because the shift distance is two bits, even and odd bit positions never
// mix, and the PHR is best understood as a shift register of N two-bit
// "doublets". Doublet(0) is the least significant (most recent) doublet.
//
// Internally the register is bit-packed into 64-bit words: attack workloads
// execute hundreds of millions of predicted branches, and the PHT index/tag
// folds over this register are the hot path of the whole simulator.
package phr

import (
	"fmt"
	"strings"
)

// Doublet is a two-bit PHR element. Valid values are 0..3.
type Doublet = uint8

// History is the read surface the predictor structures need from a path
// history register. Both the packed production register (*Reg) and the
// deliberately naive reference register (refmodel.PHR) satisfy it, which is
// what lets either implementation back the PHTs and the CBP and makes the
// two differentially testable against each other.
type History interface {
	// Size returns the register length in doublets.
	Size() int
	// Gen returns a counter that changes on every mutation; predictor
	// structures use (value identity, Gen) pairs to memoize fold results.
	Gen() uint64
	// Doublet returns doublet i (0 = most recent).
	Doublet(i int) Doublet
	// Fold XOR-folds the lowest histLen doublets into width bits.
	Fold(histLen, width int) uint32
	// FoldMix is the tag fold: like Fold but rotating between chunks.
	FoldMix(histLen, width int) uint32
}

// FootprintDoublets is the number of doublets occupied by a branch
// footprint (16 bits = 8 doublets).
const FootprintDoublets = 8

// Footprint computes the 16-bit branch footprint from a branch instruction
// address and its target address, following the bit layout of Figure 2 of
// the Pathfinder paper. Sixteen bits of the branch address (B0..B15, bits
// 15:0) and six bits of the target address (T0..T5, bits 5:0) are combined;
// positions are listed from bit 15 down to bit 0:
//
//	B12 B13 B5 B6 B7 B8 B9 B10 B0^T2 B1^T3 B2^T4 B11^T5 B14 B15 B3^T0 B4^T1
//
// Consequences used throughout the attack primitives:
//   - a branch whose address has its low 16 bits zero and whose target has
//     its low 6 bits zero has a zero footprint (pure PHR shift), and
//   - doublet 0 of the footprint (bits 1:0) is (B3^T0, B4^T1), so with an
//     otherwise-zero branch, target bits T0 and T1 choose doublet 0 freely.
//
// Every output bit is the XOR of independent branch-address and
// target-address bits, so the shuffle separates: Footprint(b, t) =
// Footprint(b, 0) ^ Footprint(0, t). The two contributions are precomputed
// into lookup tables at init (64K entries for the branch half, 64 for the
// target half), turning the per-taken-branch bit shuffle into two loads and
// an XOR.
func Footprint(branchAddr, targetAddr uint64) uint16 {
	return footB[branchAddr&0xffff] ^ footT[targetAddr&0x3f]
}

var (
	footB [1 << 16]uint16
	footT [1 << 6]uint16
)

func init() {
	for a := range footB {
		footB[a] = footprintSlow(uint64(a), 0)
	}
	for t := range footT {
		footT[t] = footprintSlow(0, uint64(t))
	}
}

// footprintSlow is the literal Figure 2 bit shuffle. It seeds the lookup
// tables and pins them in the differential tests.
func footprintSlow(branchAddr, targetAddr uint64) uint16 {
	b := func(i uint) uint16 { return uint16(branchAddr>>i) & 1 }
	t := func(i uint) uint16 { return uint16(targetAddr>>i) & 1 }
	var f uint16
	f |= b(12) << 15
	f |= b(13) << 14
	f |= b(5) << 13
	f |= b(6) << 12
	f |= b(7) << 11
	f |= b(8) << 10
	f |= b(9) << 9
	f |= b(10) << 8
	f |= (b(0) ^ t(2)) << 7
	f |= (b(1) ^ t(3)) << 6
	f |= (b(2) ^ t(4)) << 5
	f |= (b(11) ^ t(5)) << 4
	f |= b(14) << 3
	f |= b(15) << 2
	f |= (b(3) ^ t(0)) << 1
	f |= (b(4) ^ t(1)) << 0
	return f
}

// maxWords covers 194 doublets = 388 bits.
const maxWords = 7

// foldSlots is the number of (histLen, width) fold values a register caches.
// The Table 1 configs need at most four live folds per register: one 8-bit
// index fold per tagged table (three history lengths) plus the 16-bit IBP
// fold over the full window.
const foldSlots = 4

// foldOpsCap bounds the deferred-update ring. Attack write/clear chains are
// hundreds of taken branches between fold reads; once the ring fills the
// cache gives up (invalidates) so chain-heavy code pays only a counter check
// per branch and the next Fold recomputes from scratch. Branch-at-a-time
// victim code reads folds every branch, so its ring depth stays at one.
const foldOpsCap = 8

// foldEntry is one incrementally maintained Fold(histLen, width) value.
type foldEntry struct {
	valid   bool
	histLen int32 // clamped to the register size
	width   int32
	val     uint32
	posB    uint8  // (2*histLen) % width: fold position of the outgoing low top bit
	posB1   uint8  // (2*histLen + 1) % width
	fpMask  uint16 // footprint bits inside the history window
}

// foldOp is one deferred Update/ReverseUpdate. The doublets the incremental
// formulas need are captured at mutation time (they may be shifted out of
// the register before the op is replayed).
type foldOp struct {
	fp   uint16
	rev  bool
	low  uint8            // reverse only: low doublet after footprint removal
	tops [foldSlots]uint8 // per slot: outgoing (fwd) / incoming (rev) window-top doublet
}

// Reg is a PHR of a fixed doublet length. The zero value is not usable; use
// New. Clone gives an independent copy; Equal compares contents.
//
// Attached to every register is a FoldCache: up to foldSlots incrementally
// maintained Fold results. Update and ReverseUpdate append O(1) deferred ops
// instead of forcing an immediate re-fold of up to seven words; the next
// Fold call replays pending ops against each cached entry. Structural
// mutators (SetDoublet, Shift, Clear, ...) invalidate the cache. All cache
// state lives in value arrays so Clone and CopyFrom stay plain copies.
type Reg struct {
	w       [maxWords]uint64
	size    int    // doublets
	topMask uint64 // valid-bit mask for the highest word in use
	gen     uint64 // bumped on every mutation; lets predictors memoize folds

	folds    [foldSlots]foldEntry
	ops      [foldOpsCap]foldOp
	nops     int
	nvalid   int
	nextSlot int // round-robin eviction cursor

	// Content-keyed fold memoization. contents assigns a small integer
	// identity to recently seen register contents (one full-window compare
	// per mutation, memoized by gen); cvals is a direct-mapped cache of
	// Fold/FoldMix results keyed by (content id, histLen, width, kind).
	// Fold values are pure functions of content, so entries never need
	// invalidation — a stale entry simply stops matching. This is what
	// makes hot loops cheap: once a loop's footprint sequence has filled
	// the history window the register content is periodic, every content
	// in the cycle is already in the cache, and each fold costs a content
	// probe instead of streaming up to seven words. All of it is value
	// state, like folds, so Clone stays a plain copy; CopyFrom does not
	// copy it (ids are register-local).
	contents    [contentSlots]contentEntry
	nextContent int
	lastSlot    int    // slot of the last content match, probed first
	contentSeq  uint64 // id generator; ids are never reused within a Reg
	lastGen     uint64 // gen at which lastCID was established
	lastCID     uint64 // content id of the current content; 0 = unknown
	cvals       [cvalSlots]cvalEntry
}

// contentSlots is the number of distinct register contents tracked. It
// covers loops with up to contentSlots taken branches per iteration; longer
// cycles degrade gracefully to recomputation.
const contentSlots = 16

// cvalSlots sizes the direct-mapped fold-result cache: six live
// (histLen, width, kind) combinations per content for the Table 1 configs
// (three index folds, three tag folds), times the content cycle length.
const cvalSlots = 64

// contentEntry names one register content: a full window image and its id.
type contentEntry struct {
	id uint64 // 0 = empty
	w  [maxWords]uint64
}

// cvalEntry is one memoized fold result for (content, histLen, width, kind).
type cvalEntry struct {
	cid uint64 // content id; 0 = empty
	key uint32 // histLen<<8 | width<<1 | kind (1 = FoldMix, 0 = Fold)
	val uint32
}

// eqWords compares two window images with an early exit on the low words,
// where histories diverge first; inlining this beats a memequal call on the
// hot path.
func eqWords(a, b *[maxWords]uint64) bool {
	return a[0] == b[0] && a[1] == b[1] && a[2] == b[2] && a[3] == b[3] &&
		a[4] == b[4] && a[5] == b[5] && a[6] == b[6]
}

// ContentID returns a register-local identity for the current content:
// equal results name equal contents, and an id is never reused for a
// different content within one register (ids from different registers are
// unrelated). Unseen contents are registered on the fly, cycling through a
// fixed number of slots. Predictor structures use (register, ContentID)
// pairs to memoize values that are pure functions of history content —
// unlike Gen-keyed memos these keep hitting across mutations whenever a
// loop returns the register to a content already seen.
//
// The result is memoized per gen. A fresh gen probes the slot of the last
// match first (loops revisit contents in cycle order, so this is almost
// always right), then scans.
func (r *Reg) ContentID() uint64 {
	if r.lastGen == r.gen && r.lastCID != 0 {
		return r.lastCID
	}
	if c := &r.contents[r.lastSlot]; c.id != 0 && eqWords(&c.w, &r.w) {
		r.lastGen, r.lastCID = r.gen, c.id
		return c.id
	}
	if c := &r.contents[(r.lastSlot+1)%contentSlots]; c.id != 0 && eqWords(&c.w, &r.w) {
		r.lastSlot = (r.lastSlot + 1) % contentSlots
		r.lastGen, r.lastCID = r.gen, c.id
		return c.id
	}
	for i := range r.contents {
		c := &r.contents[i]
		if c.id != 0 && eqWords(&c.w, &r.w) {
			r.lastSlot = i
			r.lastGen, r.lastCID = r.gen, c.id
			return c.id
		}
	}
	r.contentSeq++
	id := r.contentSeq
	r.contents[r.nextContent] = contentEntry{id: id, w: r.w}
	r.lastSlot = r.nextContent
	r.nextContent = (r.nextContent + 1) % contentSlots
	r.lastGen, r.lastCID = r.gen, id
	return id
}

// cvalIndex hashes a (content id, fold key) pair into the direct-mapped
// result cache.
func cvalIndex(cid uint64, key uint32) int {
	h := (cid ^ uint64(key)<<40) * 0x9e3779b97f4a7c15
	return int(h >> 58) & (cvalSlots - 1)
}

var _ History = (*Reg)(nil)

// New returns an all-zero PHR with capacity for size doublets.
// Size must be at least FootprintDoublets and at most 194 * 2.
func New(size int) *Reg {
	if size < FootprintDoublets || 2*size > 64*maxWords {
		panic(fmt.Sprintf("phr: unsupported size %d", size))
	}
	topMask := ^uint64(0)
	if rem := uint(2*size) % 64; rem != 0 {
		topMask = 1<<rem - 1
	}
	return &Reg{size: size, topMask: topMask}
}

// Size returns the PHR length in doublets.
func (r *Reg) Size() int { return r.size }

// Gen returns a counter that changes on every mutation of the register.
// Predictor structures use (pointer, Gen) pairs to memoize fold results.
func (r *Reg) Gen() uint64 { return r.gen }

// words returns the number of 64-bit words in use.
func (r *Reg) words() int { return (2*r.size + 63) / 64 }

// mask clears bits at and above 2*size in the top word. Words beyond
// words() are never written by the mutators, so only the top word in use
// needs masking (with the precomputed topMask).
func (r *Reg) mask() {
	r.w[r.words()-1] &= r.topMask
}

// Doublet returns doublet i (0 = most recent). It panics if i is out of
// range, mirroring slice semantics.
func (r *Reg) Doublet(i int) Doublet {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("phr: doublet %d out of range [0,%d)", i, r.size))
	}
	b := 2 * uint(i)
	return Doublet(r.w[b/64]>>(b%64)) & 3
}

// SetDoublet sets doublet i to v (low two bits used).
func (r *Reg) SetDoublet(i int, v Doublet) {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("phr: doublet %d out of range [0,%d)", i, r.size))
	}
	r.invalidateFolds()
	b := 2 * uint(i)
	r.w[b/64] = r.w[b/64]&^(3<<(b%64)) | uint64(v&3)<<(b%64)
	r.gen++
}

// Clear resets the PHR to all zeros, the state produced by shifting in Size
// zero-footprint taken branches.
func (r *Reg) Clear() {
	r.invalidateFolds()
	r.w = [maxWords]uint64{}
	r.gen++
}

// Shift shifts the PHR left by n doublets, discarding the n oldest doublets
// and zero-filling the newest positions. Shift(Size()) is equivalent to
// Clear. n must be non-negative.
func (r *Reg) Shift(n int) {
	if n < 0 {
		panic("phr: negative shift")
	}
	if n >= r.size {
		r.Clear()
		return
	}
	r.invalidateFolds()
	bits := 2 * uint(n)
	wordShift := int(bits / 64)
	bitShift := bits % 64
	nw := r.words()
	for i := nw - 1; i >= 0; i-- {
		var v uint64
		if i-wordShift >= 0 {
			v = r.w[i-wordShift] << bitShift
			if bitShift != 0 && i-wordShift-1 >= 0 {
				v |= r.w[i-wordShift-1] >> (64 - bitShift)
			}
		}
		r.w[i] = v
	}
	r.mask()
	r.gen++
}

// Update applies one taken-branch update: shift left one doublet, then XOR
// the footprint into the low 8 doublets. The shift is unrolled for the
// modeled register sizes (7 words on Alder/Raptor Lake, 3 on Skylake); this
// is the single hottest operation in the simulator — once per taken branch.
func (r *Reg) Update(footprint uint16) {
	if r.nvalid != 0 {
		r.pushOp(footprint, false, 0)
	}
	w := &r.w
	switch r.words() {
	case maxWords:
		w[6] = w[6]<<2 | w[5]>>62
		w[5] = w[5]<<2 | w[4]>>62
		w[4] = w[4]<<2 | w[3]>>62
		w[3] = w[3]<<2 | w[2]>>62
		w[2] = w[2]<<2 | w[1]>>62
		w[1] = w[1]<<2 | w[0]>>62
	case 3:
		w[2] = w[2]<<2 | w[1]>>62
		w[1] = w[1]<<2 | w[0]>>62
	default:
		for i := r.words() - 1; i > 0; i-- {
			w[i] = w[i]<<2 | w[i-1]>>62
		}
	}
	w[0] = w[0]<<2 ^ uint64(footprint)
	r.mask()
	r.gen++
}

// UpdateBranch is shorthand for Update(Footprint(branchAddr, targetAddr)).
func (r *Reg) UpdateBranch(branchAddr, targetAddr uint64) {
	r.Update(Footprint(branchAddr, targetAddr))
}

// ReverseUpdate undoes one Update with the given footprint. The doublet that
// was shifted out of the top during the forward update cannot be recovered
// from the register itself; the caller supplies it as top (use 0 when
// unknown and track the ambiguity separately).
func (r *Reg) ReverseUpdate(footprint uint16, top Doublet) {
	if r.nvalid != 0 {
		r.pushOp(footprint, true, top)
	}
	r.w[0] ^= uint64(footprint)
	nw := r.words()
	for i := 0; i < nw-1; i++ {
		r.w[i] = r.w[i]>>2 | r.w[i+1]<<62
	}
	r.w[nw-1] >>= 2
	r.gen++
	r.mask()
	// Set the recovered top doublet in place; unlike SetDoublet this must
	// not invalidate the fold cache (the deferred op already accounts for
	// the incoming doublet). Gen advances twice, matching the historical
	// Update-then-SetDoublet sequence.
	b := 2 * uint(r.size-1)
	r.w[b/64] = r.w[b/64]&^(3<<(b%64)) | uint64(top&3)<<(b%64)
	r.gen++
}

// Clone returns an independent copy of the PHR.
func (r *Reg) Clone() *Reg {
	c := *r
	return &c
}

// CopyFrom overwrites this PHR with the contents of src. Both registers
// must have the same size: copying between machines with different PHR
// depths (Raptor/Alder Lake's 194 doublets vs Skylake's 93) has no single
// correct semantics — truncating silently would discard the oldest history
// one machine's tagged tables still fold — so CopyFrom panics on a size
// mismatch rather than guessing. Callers moving history across
// architectures must resample doublet-by-doublet via Doublet/SetDoublet
// and decide explicitly which end to drop.
func (r *Reg) CopyFrom(src *Reg) {
	if r.size != src.size {
		panic(fmt.Sprintf("phr: size mismatch %d != %d", r.size, src.size))
	}
	r.w = src.w
	r.folds = src.folds
	r.ops = src.ops
	r.nops = src.nops
	r.nvalid = src.nvalid
	r.nextSlot = src.nextSlot
	r.gen++
}

// Equal reports whether two PHRs have identical size and contents.
func (r *Reg) Equal(o *Reg) bool {
	return r.size == o.size && r.w == o.w
}

// IsZero reports whether every doublet is zero.
func (r *Reg) IsZero() bool {
	return r.w == [maxWords]uint64{}
}

// Words returns the packed bit representation, a comparable value usable
// as a map key for registers of equal size.
func (r *Reg) Words() [7]uint64 { return r.w }

// Doublets returns a copy of the doublet contents, index 0 most recent.
func (r *Reg) Doublets() []Doublet {
	return r.AppendDoublets(make([]Doublet, 0, r.size))
}

// AppendDoublets appends the doublet contents (index 0 most recent) to dst
// and returns the extended slice. Hot loops pass a reused buffer
// (dst[:0]-style) to keep the read allocation-free.
func (r *Reg) AppendDoublets(dst []Doublet) []Doublet {
	for i := 0; i < r.size; i++ {
		b := 2 * uint(i)
		dst = append(dst, Doublet(r.w[b/64]>>(b%64))&3)
	}
	return dst
}

// SetDoublets loads the PHR from a doublet slice (index 0 most recent).
// Extra input doublets are ignored; missing ones are zero-filled.
func (r *Reg) SetDoublets(ds []Doublet) {
	r.invalidateFolds()
	r.w = [maxWords]uint64{}
	for i := 0; i < r.size && i < len(ds); i++ {
		b := 2 * uint(i)
		r.w[b/64] |= uint64(ds[i]&3) << (b % 64)
	}
	r.gen++
}

// Fold XOR-folds the lowest histLen doublets of the PHR into a value of the
// given bit width: the packed 2*histLen-bit history is split into width-bit
// chunks (LSB first) that are XORed together. This is the history
// compression used to index the pattern history tables.
//
// Results are served from the register's incremental FoldCache when
// possible: each cached (histLen, width) value is advanced in O(1) per
// pending Update/ReverseUpdate instead of re-folding the packed words.
//
// The exact folding polynomial of Intel's hardware is not public; any fold
// with good mixing preserves the collision properties the attacks rely on
// (identical (PC, PHR) pairs collide, different PHRs almost never do). See
// DESIGN.md §1.
func (r *Reg) Fold(histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	if width <= 0 || width > 32 {
		panic("phr: fold width out of range")
	}
	if histLen < 1 || width < 3 {
		// Degenerate parameters: no incremental form worth keeping.
		return r.foldFull(histLen, width)
	}
	// Content-keyed fast path first: it needs no op replay, so in steady
	// loop state the deferred-op ring fills, the incremental entries give
	// up, and taken branches stop paying pushOp entirely.
	cid := r.ContentID()
	key := uint32(histLen)<<8 | uint32(width)<<1
	ce := &r.cvals[cvalIndex(cid, key)]
	if ce.cid == cid && ce.key == key {
		return ce.val
	}
	if r.nops > 0 {
		r.flushOps()
	}
	for s := range r.folds {
		e := &r.folds[s]
		if e.valid && int(e.histLen) == histLen && int(e.width) == width {
			*ce = cvalEntry{cid: cid, key: key, val: e.val}
			return e.val
		}
	}
	v := r.foldFull(histLen, width)
	r.installFold(histLen, width, v)
	*ce = cvalEntry{cid: cid, key: key, val: v}
	return v
}

// foldFull recomputes Fold from the packed words. Beyond the byte-fold
// special case, arbitrary widths stream whole words through a bit buffer
// instead of extracting each width-bit chunk separately.
func (r *Reg) foldFull(histLen, width int) uint32 {
	bits := 2 * histLen
	if width == 8 {
		// Fast path for the index folds: XOR of all bytes.
		var acc uint64
		full := bits / 64
		for i := 0; i < full && i < maxWords; i++ {
			acc ^= r.w[i]
		}
		if rem := uint(bits % 64); rem != 0 {
			acc ^= r.w[full] & (1<<rem - 1)
		}
		acc ^= acc >> 32
		acc ^= acc >> 16
		acc ^= acc >> 8
		return uint32(acc) & 0xff
	}
	w := uint(width)
	mask := uint64(1)<<w - 1
	var acc, buf uint64
	var nb uint
	rem := bits
	for i := range r.w {
		if rem <= 0 {
			break
		}
		word := r.w[i]
		n := 64
		if rem < 64 {
			word &= 1<<uint(rem) - 1
			n = rem
		}
		rem -= n
		// Feed the word in 32-bit halves so buf (< width unflushed bits,
		// width <= 32) never overflows 64 bits.
		buf |= (word & 0xffffffff) << nb
		if n < 32 {
			nb += uint(n)
		} else {
			nb += 32
		}
		for nb >= w {
			acc ^= buf & mask
			buf >>= w
			nb -= w
		}
		if n > 32 {
			buf |= (word >> 32) << nb
			nb += uint(n - 32)
			for nb >= w {
				acc ^= buf & mask
				buf >>= w
				nb -= w
			}
		}
	}
	if nb > 0 {
		acc ^= buf & mask
	}
	return uint32(acc)
}

// FoldMix is like Fold but rotates the accumulator by three bits between
// chunks. The rotation makes the tag fold linearly independent from the
// plain index fold over the same history window, so (index, tag) pairs
// carry close to their nominal combined entropy. Hardware similarly uses
// two distinct hash functions for index and tag.
//
// The chunk rotation makes FoldMix order-dependent, so unlike Fold it has
// no O(1) incremental form under the <<2 register shift; it is computed by
// streaming words and memoized in the content-keyed cache (see contentID):
// a fold value is a pure function of register content, so any recurrence of
// a content — in particular the periodic contents of every hot loop —
// serves from the cache without touching the words.
func (r *Reg) FoldMix(histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	if width <= 2 || width > 32 {
		panic("phr: fold width out of range")
	}
	if histLen < 1 {
		return r.foldMixValue(histLen, width)
	}
	cid := r.ContentID()
	key := uint32(histLen)<<8 | uint32(width)<<1 | 1
	e := &r.cvals[cvalIndex(cid, key)]
	if e.cid == cid && e.key == key {
		return e.val
	}
	v := r.foldMixValue(histLen, width)
	*e = cvalEntry{cid: cid, key: key, val: v}
	return v
}

func (r *Reg) foldMixValue(histLen, width int) uint32 {
	if width == 12 {
		return r.foldMix12(histLen)
	}
	return r.foldMixFull(histLen, width)
}

// foldMix12 computes FoldMix(histLen, 12) — the tag-fold width of every
// tagged table — in 48-bit lane groups instead of chunk at a time. The
// rotate-by-3 applied between 12-bit chunks has period four (4*3 = 12), so
// chunk k's total rotation depends only on k mod 4: chunks sharing a
// residue can be XOR-folded first and rotated once. Four adjacent chunks
// are 48 consecutive bits, so the grouped fold is a plain XOR of 48-bit
// windows of the packed register, followed by one rotation per lane. The
// result is bit-identical to foldMixFull(histLen, 12); the differential
// test pins that.
// mix12Rot[b][j] is the foldMix12 lane rotation 3*((b-j) mod 4) for
// b = (full-1+p) mod 4.
var mix12Rot = [4][4]uint{
	{0, 9, 6, 3},
	{3, 0, 9, 6},
	{6, 3, 0, 9},
	{9, 6, 3, 0},
}

func (r *Reg) foldMix12(histLen int) uint32 {
	bits := 2 * histLen
	full := bits / 12  // complete 12-bit chunks
	fb := full * 12    // bits covered by complete chunks
	pbits := bits - fb // trailing partial chunk width
	var t uint64       // four 12-bit lanes; lane j folds chunks with k%4 == j
	for off := 0; off < fb; off += 48 {
		wi, sh := off/64, uint(off%64)
		win := r.w[wi] >> sh
		if sh > 16 && wi+1 < maxWords {
			win |= r.w[wi+1] << (64 - sh)
		}
		n := fb - off
		if n > 48 {
			n = 48
		}
		t ^= win & (1<<uint(n) - 1)
	}
	// The generic stream applies one rotation per chunk after the chunk is
	// XORed in, plus one for the partial chunk: chunk k ends up rotated by
	// 3*((full - 1 - k + p) mod 4) bits, where p records the partial step.
	// The per-lane rotations depend only on (full - 1 + p) mod 4, so they
	// come from a static table instead of four mod chains.
	p := 0
	if pbits > 0 {
		p = 1
	}
	rots := &mix12Rot[(full-1+p)&3]
	var acc uint32
	for j := 0; j < 4; j++ {
		lane := uint32(t>>(12*j)) & 0xfff
		rot := rots[j]
		acc ^= (lane<<rot | lane>>(12-rot)) & 0xfff
	}
	if pbits > 0 {
		wi, sh := fb/64, uint(fb%64)
		part := r.w[wi] >> sh
		if int(sh)+pbits > 64 && wi+1 < maxWords {
			part |= r.w[wi+1] << (64 - sh)
		}
		acc ^= uint32(part) & (1<<uint(pbits) - 1)
	}
	return acc
}

func (r *Reg) foldMixFull(histLen, width int) uint32 {
	bits := 2 * histLen
	w := uint(width)
	mask := uint64(1)<<w - 1
	var acc, buf uint64
	var nb uint
	rem := bits
	for i := range r.w {
		if rem <= 0 {
			break
		}
		word := r.w[i]
		n := 64
		if rem < 64 {
			word &= 1<<uint(rem) - 1
			n = rem
		}
		rem -= n
		buf |= (word & 0xffffffff) << nb
		if n < 32 {
			nb += uint(n)
		} else {
			nb += 32
		}
		for nb >= w {
			acc = ((acc<<3 | acc>>(w-3)) & mask) ^ (buf & mask)
			buf >>= w
			nb -= w
		}
		if n > 32 {
			buf |= (word >> 32) << nb
			nb += uint(n - 32)
			for nb >= w {
				acc = ((acc<<3 | acc>>(w-3)) & mask) ^ (buf & mask)
				buf >>= w
				nb -= w
			}
		}
	}
	if nb > 0 {
		acc = ((acc<<3 | acc>>(w-3)) & mask) ^ buf
	}
	return uint32(acc)
}

// invalidateFolds drops every cached fold and pending op; called by the
// structural mutators whose effect on a fold is not O(1).
func (r *Reg) invalidateFolds() {
	if r.nvalid == 0 && r.nops == 0 {
		return
	}
	for s := range r.folds {
		r.folds[s].valid = false
	}
	r.nvalid = 0
	r.nops = 0
}

// pushOp defers one Update (rev=false) or ReverseUpdate (rev=true) for the
// cached folds, capturing the window-top doublet each entry will need. A
// full ring means a fold-free run of branches long enough that incremental
// replay would cost more than recomputing, so the cache gives up instead.
func (r *Reg) pushOp(fp uint16, rev bool, top Doublet) {
	if r.nops == foldOpsCap {
		r.invalidateFolds()
		return
	}
	op := &r.ops[r.nops]
	op.fp, op.rev = fp, rev
	if rev {
		op.low = uint8(r.w[0]^uint64(fp)) & 3
	}
	for s := range r.folds {
		e := &r.folds[s]
		if !e.valid {
			continue
		}
		h := int(e.histLen)
		if !rev {
			// h-1 is in range by construction (folds only cache
			// 1 <= histLen <= size), so read the doublet unchecked.
			b := 2 * uint(h-1)
			op.tops[s] = Doublet(r.w[b/64]>>(b%64)) & 3
			continue
		}
		// Reverse: the doublet entering the top of the window. For a
		// full-size window it is the caller-supplied recovered doublet;
		// otherwise it is the next doublet up in the register (with the
		// footprint removed when the window is shorter than 8 doublets).
		switch {
		case h == r.size:
			op.tops[s] = top & 3
		case h < FootprintDoublets:
			op.tops[s] = uint8((r.w[0]^uint64(fp))>>(2*uint(h))) & 3
		default:
			op.tops[s] = r.Doublet(h)
		}
	}
	r.nops++
}

// flushOps replays the deferred ops against every valid fold entry.
func (r *Reg) flushOps() {
	for i := 0; i < r.nops; i++ {
		op := &r.ops[i]
		for s := range r.folds {
			e := &r.folds[s]
			if !e.valid {
				continue
			}
			w := uint(e.width)
			mask := uint32(1)<<w - 1
			top := uint32(op.tops[s])
			fp := foldFP(op.fp&e.fpMask, w, mask)
			if !op.rev {
				// F' = rotl2(F) ^ outgoing-top bits ^ fold(fp).
				v := (e.val<<2 | e.val>>(w-2)) & mask
				v ^= (top & 1) << e.posB
				v ^= (top >> 1 & 1) << e.posB1
				e.val = v ^ fp
			} else {
				// F' = rotr2(F ^ fold(fp) ^ low bits ^ incoming-top bits).
				v := e.val ^ fp ^ uint32(op.low&3)
				v ^= (top & 1) << e.posB
				v ^= (top >> 1 & 1) << e.posB1
				e.val = (v>>2 | v<<(w-2)) & mask
			}
		}
	}
	r.nops = 0
}

// foldFP folds a footprint's contribution into a width-bit chunk. A 16-bit
// footprint spans at most two chunks once w >= 8 and one chunk once w >= 16,
// so the common fold widths (8 for indices, 12 for tags) reduce to closed
// forms; the loop remains for narrow widths.
func foldFP(fp uint16, w uint, mask uint32) uint32 {
	v := uint32(fp)
	switch {
	case w >= 16:
		return v & mask
	case w >= 8:
		return (v ^ v>>w) & mask
	}
	var acc uint32
	for v != 0 {
		acc ^= v & mask
		v >>= w
	}
	return acc
}

// installFold caches a freshly computed fold, evicting round-robin when all
// slots are live.
func (r *Reg) installFold(histLen, width int, val uint32) {
	slot := -1
	for s := range r.folds {
		if !r.folds[s].valid {
			slot = s
			break
		}
	}
	if slot < 0 {
		slot = r.nextSlot
		r.nextSlot = (r.nextSlot + 1) % foldSlots
	} else {
		r.nvalid++
	}
	b := 2 * histLen
	fpMask := uint16(0xffff)
	if b < 16 {
		fpMask = uint16(1)<<uint(b) - 1
	}
	r.folds[slot] = foldEntry{
		valid:   true,
		histLen: int32(histLen),
		width:   int32(width),
		val:     val,
		posB:    uint8(b % width),
		posB1:   uint8((b + 1) % width),
		fpMask:  fpMask,
	}
}

// String renders the PHR as doublets from most significant (oldest) to
// least significant (most recent). Runs of zeros are compressed.
func (r *Reg) String() string {
	var sb strings.Builder
	sb.WriteString("PHR[")
	zeros := 0
	for i := r.size - 1; i >= 0; i-- {
		v := r.Doublet(i)
		if v == 0 {
			zeros++
			continue
		}
		if zeros > 0 {
			fmt.Fprintf(&sb, "0*%d ", zeros)
			zeros = 0
		}
		fmt.Fprintf(&sb, "%d", v)
		if i > 0 {
			sb.WriteByte(' ')
		}
	}
	if zeros > 0 {
		fmt.Fprintf(&sb, "0*%d", zeros)
	}
	sb.WriteString("]")
	return sb.String()
}
