// Package phr models the Path History Register (PHR) of the conditional
// branch predictor in modern Intel CPUs, as reverse engineered by Half&Half
// (Yavarzadeh et al., S&P 2023) and used by Pathfinder (ASPLOS 2024).
//
// The PHR records the history of the last N taken branches (N = 194 on
// Alder/Raptor Lake, 93 on Skylake), conditional or unconditional. A taken
// branch updates the PHR in two steps: a leftward shift by two bits, then an
// XOR of a 16-bit "branch footprint" derived from the branch address and its
// target address into the low 16 bits:
//
//	PHR_new = (PHR_old << 2) ^ footprint
//
// Because the shift distance is two bits, even and odd bit positions never
// mix, and the PHR is best understood as a shift register of N two-bit
// "doublets". Doublet(0) is the least significant (most recent) doublet.
//
// Internally the register is bit-packed into 64-bit words: attack workloads
// execute hundreds of millions of predicted branches, and the PHT index/tag
// folds over this register are the hot path of the whole simulator.
package phr

import (
	"fmt"
	"strings"
)

// Doublet is a two-bit PHR element. Valid values are 0..3.
type Doublet = uint8

// History is the read surface the predictor structures need from a path
// history register. Both the packed production register (*Reg) and the
// deliberately naive reference register (refmodel.PHR) satisfy it, which is
// what lets either implementation back the PHTs and the CBP and makes the
// two differentially testable against each other.
type History interface {
	// Size returns the register length in doublets.
	Size() int
	// Gen returns a counter that changes on every mutation; predictor
	// structures use (value identity, Gen) pairs to memoize fold results.
	Gen() uint64
	// Doublet returns doublet i (0 = most recent).
	Doublet(i int) Doublet
	// Fold XOR-folds the lowest histLen doublets into width bits.
	Fold(histLen, width int) uint32
	// FoldMix is the tag fold: like Fold but rotating between chunks.
	FoldMix(histLen, width int) uint32
}

// FootprintDoublets is the number of doublets occupied by a branch
// footprint (16 bits = 8 doublets).
const FootprintDoublets = 8

// Footprint computes the 16-bit branch footprint from a branch instruction
// address and its target address, following the bit layout of Figure 2 of
// the Pathfinder paper. Sixteen bits of the branch address (B0..B15, bits
// 15:0) and six bits of the target address (T0..T5, bits 5:0) are combined;
// positions are listed from bit 15 down to bit 0:
//
//	B12 B13 B5 B6 B7 B8 B9 B10 B0^T2 B1^T3 B2^T4 B11^T5 B14 B15 B3^T0 B4^T1
//
// Consequences used throughout the attack primitives:
//   - a branch whose address has its low 16 bits zero and whose target has
//     its low 6 bits zero has a zero footprint (pure PHR shift), and
//   - doublet 0 of the footprint (bits 1:0) is (B3^T0, B4^T1), so with an
//     otherwise-zero branch, target bits T0 and T1 choose doublet 0 freely.
func Footprint(branchAddr, targetAddr uint64) uint16 {
	b := func(i uint) uint16 { return uint16(branchAddr>>i) & 1 }
	t := func(i uint) uint16 { return uint16(targetAddr>>i) & 1 }
	var f uint16
	f |= b(12) << 15
	f |= b(13) << 14
	f |= b(5) << 13
	f |= b(6) << 12
	f |= b(7) << 11
	f |= b(8) << 10
	f |= b(9) << 9
	f |= b(10) << 8
	f |= (b(0) ^ t(2)) << 7
	f |= (b(1) ^ t(3)) << 6
	f |= (b(2) ^ t(4)) << 5
	f |= (b(11) ^ t(5)) << 4
	f |= b(14) << 3
	f |= b(15) << 2
	f |= (b(3) ^ t(0)) << 1
	f |= (b(4) ^ t(1)) << 0
	return f
}

// maxWords covers 194 doublets = 388 bits.
const maxWords = 7

// Reg is a PHR of a fixed doublet length. The zero value is not usable; use
// New. Clone gives an independent copy; Equal compares contents.
type Reg struct {
	w    [maxWords]uint64
	size int    // doublets
	gen  uint64 // bumped on every mutation; lets predictors memoize folds
}

var _ History = (*Reg)(nil)

// New returns an all-zero PHR with capacity for size doublets.
// Size must be at least FootprintDoublets and at most 194 * 2.
func New(size int) *Reg {
	if size < FootprintDoublets || 2*size > 64*maxWords {
		panic(fmt.Sprintf("phr: unsupported size %d", size))
	}
	return &Reg{size: size}
}

// Size returns the PHR length in doublets.
func (r *Reg) Size() int { return r.size }

// Gen returns a counter that changes on every mutation of the register.
// Predictor structures use (pointer, Gen) pairs to memoize fold results.
func (r *Reg) Gen() uint64 { return r.gen }

// words returns the number of 64-bit words in use.
func (r *Reg) words() int { return (2*r.size + 63) / 64 }

// mask clears bits at and above 2*size in the top word.
func (r *Reg) mask() {
	bits := 2 * r.size
	top := bits / 64
	rem := uint(bits % 64)
	if rem != 0 {
		r.w[top] &= 1<<rem - 1
		top++
	}
	for i := top; i < maxWords; i++ {
		r.w[i] = 0
	}
}

// Doublet returns doublet i (0 = most recent). It panics if i is out of
// range, mirroring slice semantics.
func (r *Reg) Doublet(i int) Doublet {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("phr: doublet %d out of range [0,%d)", i, r.size))
	}
	b := 2 * uint(i)
	return Doublet(r.w[b/64]>>(b%64)) & 3
}

// SetDoublet sets doublet i to v (low two bits used).
func (r *Reg) SetDoublet(i int, v Doublet) {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("phr: doublet %d out of range [0,%d)", i, r.size))
	}
	b := 2 * uint(i)
	r.w[b/64] = r.w[b/64]&^(3<<(b%64)) | uint64(v&3)<<(b%64)
	r.gen++
}

// Clear resets the PHR to all zeros, the state produced by shifting in Size
// zero-footprint taken branches.
func (r *Reg) Clear() {
	r.w = [maxWords]uint64{}
	r.gen++
}

// Shift shifts the PHR left by n doublets, discarding the n oldest doublets
// and zero-filling the newest positions. Shift(Size()) is equivalent to
// Clear. n must be non-negative.
func (r *Reg) Shift(n int) {
	if n < 0 {
		panic("phr: negative shift")
	}
	if n >= r.size {
		r.Clear()
		return
	}
	bits := 2 * uint(n)
	wordShift := int(bits / 64)
	bitShift := bits % 64
	nw := r.words()
	for i := nw - 1; i >= 0; i-- {
		var v uint64
		if i-wordShift >= 0 {
			v = r.w[i-wordShift] << bitShift
			if bitShift != 0 && i-wordShift-1 >= 0 {
				v |= r.w[i-wordShift-1] >> (64 - bitShift)
			}
		}
		r.w[i] = v
	}
	r.mask()
	r.gen++
}

// Update applies one taken-branch update: shift left one doublet, then XOR
// the footprint into the low 8 doublets.
func (r *Reg) Update(footprint uint16) {
	nw := r.words()
	for i := nw - 1; i > 0; i-- {
		r.w[i] = r.w[i]<<2 | r.w[i-1]>>62
	}
	r.w[0] = r.w[0]<<2 ^ uint64(footprint)
	r.mask()
	r.gen++
}

// UpdateBranch is shorthand for Update(Footprint(branchAddr, targetAddr)).
func (r *Reg) UpdateBranch(branchAddr, targetAddr uint64) {
	r.Update(Footprint(branchAddr, targetAddr))
}

// ReverseUpdate undoes one Update with the given footprint. The doublet that
// was shifted out of the top during the forward update cannot be recovered
// from the register itself; the caller supplies it as top (use 0 when
// unknown and track the ambiguity separately).
func (r *Reg) ReverseUpdate(footprint uint16, top Doublet) {
	r.w[0] ^= uint64(footprint)
	nw := r.words()
	for i := 0; i < nw-1; i++ {
		r.w[i] = r.w[i]>>2 | r.w[i+1]<<62
	}
	r.w[nw-1] >>= 2
	r.gen++
	r.mask()
	r.SetDoublet(r.size-1, top)
}

// Clone returns an independent copy of the PHR.
func (r *Reg) Clone() *Reg {
	c := *r
	return &c
}

// CopyFrom overwrites this PHR with the contents of src. Both registers
// must have the same size: copying between machines with different PHR
// depths (Raptor/Alder Lake's 194 doublets vs Skylake's 93) has no single
// correct semantics — truncating silently would discard the oldest history
// one machine's tagged tables still fold — so CopyFrom panics on a size
// mismatch rather than guessing. Callers moving history across
// architectures must resample doublet-by-doublet via Doublet/SetDoublet
// and decide explicitly which end to drop.
func (r *Reg) CopyFrom(src *Reg) {
	if r.size != src.size {
		panic(fmt.Sprintf("phr: size mismatch %d != %d", r.size, src.size))
	}
	r.w = src.w
	r.gen++
}

// Equal reports whether two PHRs have identical size and contents.
func (r *Reg) Equal(o *Reg) bool {
	return r.size == o.size && r.w == o.w
}

// IsZero reports whether every doublet is zero.
func (r *Reg) IsZero() bool {
	return r.w == [maxWords]uint64{}
}

// Words returns the packed bit representation, a comparable value usable
// as a map key for registers of equal size.
func (r *Reg) Words() [7]uint64 { return r.w }

// Doublets returns a copy of the doublet contents, index 0 most recent.
func (r *Reg) Doublets() []Doublet {
	out := make([]Doublet, r.size)
	for i := range out {
		out[i] = r.Doublet(i)
	}
	return out
}

// SetDoublets loads the PHR from a doublet slice (index 0 most recent).
// Extra input doublets are ignored; missing ones are zero-filled.
func (r *Reg) SetDoublets(ds []Doublet) {
	r.w = [maxWords]uint64{}
	for i := 0; i < r.size && i < len(ds); i++ {
		b := 2 * uint(i)
		r.w[b/64] |= uint64(ds[i]&3) << (b % 64)
	}
	r.gen++
}

// Fold XOR-folds the lowest histLen doublets of the PHR into a value of the
// given bit width: the packed 2*histLen-bit history is split into width-bit
// chunks (LSB first) that are XORed together. This is the history
// compression used to index the pattern history tables.
//
// The exact folding polynomial of Intel's hardware is not public; any fold
// with good mixing preserves the collision properties the attacks rely on
// (identical (PC, PHR) pairs collide, different PHRs almost never do). See
// DESIGN.md §1.
func (r *Reg) Fold(histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	if width <= 0 || width > 32 {
		panic("phr: fold width out of range")
	}
	bits := 2 * histLen
	if width == 8 {
		// Fast path for the index folds: XOR of all bytes.
		var acc uint64
		full := bits / 64
		for i := 0; i < full; i++ {
			acc ^= r.w[i]
		}
		if rem := uint(bits % 64); rem != 0 {
			acc ^= r.w[full] & (1<<rem - 1)
		}
		acc ^= acc >> 32
		acc ^= acc >> 16
		acc ^= acc >> 8
		return uint32(acc) & 0xff
	}
	mask := uint32(1)<<width - 1
	var acc uint32
	for o := 0; o < bits; o += width {
		acc ^= r.extract(o, width, bits) & mask
	}
	return acc & mask
}

// extract returns up to 32 bits starting at bit offset o, clipped at limit.
func (r *Reg) extract(o, n, limit int) uint32 {
	if o+n > limit {
		n = limit - o
	}
	w := o / 64
	sh := uint(o % 64)
	v := r.w[w] >> sh
	if sh+uint(n) > 64 && w+1 < maxWords {
		v |= r.w[w+1] << (64 - sh)
	}
	return uint32(v) & uint32(1<<uint(n)-1)
}

// FoldMix is like Fold but rotates the accumulator by three bits between
// chunks. The rotation makes the tag fold linearly independent from the
// plain index fold over the same history window, so (index, tag) pairs
// carry close to their nominal combined entropy. Hardware similarly uses
// two distinct hash functions for index and tag.
func (r *Reg) FoldMix(histLen, width int) uint32 {
	if histLen > r.size {
		histLen = r.size
	}
	if width <= 2 || width > 32 {
		panic("phr: fold width out of range")
	}
	bits := 2 * histLen
	mask := uint32(1)<<width - 1
	var acc uint32
	for o := 0; o < bits; o += width {
		acc = ((acc<<3 | acc>>(uint(width)-3)) & mask) ^ (r.extract(o, width, bits) & mask)
	}
	return acc & mask
}

// String renders the PHR as doublets from most significant (oldest) to
// least significant (most recent). Runs of zeros are compressed.
func (r *Reg) String() string {
	var sb strings.Builder
	sb.WriteString("PHR[")
	zeros := 0
	for i := r.size - 1; i >= 0; i-- {
		v := r.Doublet(i)
		if v == 0 {
			zeros++
			continue
		}
		if zeros > 0 {
			fmt.Fprintf(&sb, "0*%d ", zeros)
			zeros = 0
		}
		fmt.Fprintf(&sb, "%d", v)
		if i > 0 {
			sb.WriteByte(' ')
		}
	}
	if zeros > 0 {
		fmt.Fprintf(&sb, "0*%d", zeros)
	}
	sb.WriteString("]")
	return sb.String()
}
