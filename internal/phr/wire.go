package phr

import (
	"fmt"

	"pathfinder/internal/wire"
)

// Wire codec for the register, used by the cpu.Snapshot binary encoding.
// Only the observable content travels — size plus the words in use. Fold
// memos, pending fold ops and the generation counter are derived or
// process-local state: a decoded register starts with an empty fold cache
// exactly like a freshly built one, and the cpu restore path goes through
// CopyFrom, which bumps the destination's generation itself.

// EncodeWire appends the register's observable content to w.
func (r *Reg) EncodeWire(w *wire.Writer) {
	w.U32(uint32(r.size))
	for i := 0; i < r.words(); i++ {
		w.U64(r.w[i])
	}
}

// DecodeWire reads a register from rd, replacing r with a memo-clean
// register holding the decoded content.
func (r *Reg) DecodeWire(rd *wire.Reader) {
	size := int(rd.U32())
	if rd.Err() != nil {
		return
	}
	if size < FootprintDoublets || 2*size > 64*maxWords {
		rd.Fail(fmt.Errorf("phr: wire size %d unsupported", size))
		return
	}
	fresh := New(size)
	for i := 0; i < fresh.words(); i++ {
		fresh.w[i] = rd.U64()
	}
	if rd.Err() != nil {
		return
	}
	if fresh.w[fresh.words()-1]&^fresh.topMask != 0 {
		rd.Fail(fmt.Errorf("phr: wire top word has bits beyond size %d", size))
		return
	}
	*r = *fresh
}
