package trace

import (
	"fmt"
	"strings"

	"pathfinder/internal/bpu"
)

// ImplState is one side of a divergence report: what the implementation
// predicted at the diverging step and its complete state afterwards.
type ImplState struct {
	Name       string
	Prediction bpu.Prediction
	PHR        string
	CBP        string
}

// Divergence pinpoints the first step at which two implementations
// disagreed, with full state dumps from both sides.
type Divergence struct {
	Step   int    // index into the stream
	Branch Branch // the stimulus at that step
	Reason string // what disagreed: prediction fields or PHR contents
	A, B   ImplState
}

// String renders the report the differential tests print on failure.
func (d *Divergence) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "divergence at step %d: %s\n", d.Step, d.Reason)
	fmt.Fprintf(&sb, "stimulus: pc=%#x target=%#x cond=%v taken=%v\n",
		d.Branch.PC, d.Branch.Target, d.Branch.Cond, d.Branch.Taken)
	for _, s := range []ImplState{d.A, d.B} {
		fmt.Fprintf(&sb, "--- %s ---\n", s.Name)
		fmt.Fprintf(&sb, "prediction: taken=%v provider=%d alt=%v\n",
			s.Prediction.Taken, s.Prediction.Provider, s.Prediction.AltTaken)
		fmt.Fprintf(&sb, "%s\n", s.PHR)
		sb.WriteString(s.CBP)
	}
	return sb.String()
}

// Diff replays the stream through both implementations in lockstep and
// returns the first divergence, or nil if they agree on every step. Each
// conditional branch must produce an identical Prediction (direction,
// provider, and alternate), and after every branch the two history
// registers must hold identical doublets.
func Diff(a, b Impl, stream []Branch) *Divergence {
	if a.H.Size() != b.H.Size() {
		return &Divergence{Reason: fmt.Sprintf("PHR sizes differ: %d vs %d", a.H.Size(), b.H.Size()),
			A: ImplState{Name: a.Name}, B: ImplState{Name: b.Name}}
	}
	for i, br := range stream {
		var pa, pb bpu.Prediction
		if br.Cond {
			pa = a.CBP.Predict(br.PC, a.H)
			pb = b.CBP.Predict(br.PC, b.H)
			a.CBP.Update(br.PC, a.H, br.Taken, pa)
			b.CBP.Update(br.PC, b.H, br.Taken, pb)
		}
		if br.Taken {
			a.H.UpdateBranch(br.PC, br.Target)
			b.H.UpdateBranch(br.PC, br.Target)
		}
		reason := ""
		switch {
		case pa != pb:
			reason = fmt.Sprintf("predictions differ: %+v vs %+v", pa, pb)
		case !histEqual(a, b):
			reason = "history registers differ"
		}
		if reason != "" {
			return &Divergence{
				Step: i, Branch: br, Reason: reason,
				A: ImplState{Name: a.Name, Prediction: pa, PHR: histString(a.H), CBP: a.CBP.DumpState()},
				B: ImplState{Name: b.Name, Prediction: pb, PHR: histString(b.H), CBP: b.CBP.DumpState()},
			}
		}
	}
	return nil
}

// histEqual compares the two registers doublet by doublet.
func histEqual(a, b Impl) bool {
	n := a.H.Size()
	for i := 0; i < n; i++ {
		if a.H.Doublet(i) != b.H.Doublet(i) {
			return false
		}
	}
	return true
}
