package trace

import (
	"strings"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/phr"
	"pathfinder/internal/refmodel"
)

// TestDifferentialRandom100k is the acceptance bar for the verification
// subsystem: 100k random branches through the production model and the
// oracle, in lockstep, on every Table 1 microarchitecture, with zero
// divergences in predictions, providers, alternates, or PHR contents.
func TestDifferentialRandom100k(t *testing.T) {
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	for i, cfg := range bpu.Configs() {
		cfg := cfg
		seed := uint64(7777 + 13*i)
		t.Run(strings.ReplaceAll(cfg.Name, " ", ""), func(t *testing.T) {
			if d := Diff(NewModel(cfg), NewOracle(cfg), RandomStream(seed, n)); d != nil {
				t.Fatalf("model diverged from oracle:\n%s", d)
			}
		})
	}
}

// TestDifferentialAdversarialStream drives the footprint-sensitive shapes
// the attacks rely on — zero-footprint branches (low 16 PC bits and low 6
// target bits clear), single-doublet writes via target bits T0/T1, and a
// long unconditional chain that must flush every live doublet — through
// both implementations.
func TestDifferentialAdversarialStream(t *testing.T) {
	cfg := bpu.RaptorLake
	var stream []Branch
	// A conditional branch under an initially zero PHR.
	probe := Branch{PC: 0x40_0000, Target: 0x40_1000, Cond: true}
	for round := 0; round < 50; round++ {
		taken := round%3 != 0
		probe.Taken = taken
		stream = append(stream, probe)
		// Write one chosen doublet: zero-footprint branch except T0/T1.
		stream = append(stream, Branch{PC: 0x80_0000, Target: 0xc0_0000 | uint64(round&3)})
		// Pure shifts.
		for i := 0; i < 5; i++ {
			stream = append(stream, Branch{PC: 0x100_0000, Target: 0x140_0000})
		}
		if round == 25 {
			// Overflow the PHR window entirely.
			for i := 0; i < cfg.PHRSize+5; i++ {
				stream = append(stream, Branch{PC: 0x200_0000, Target: 0x240_0000})
			}
		}
	}
	if d := Diff(NewModel(cfg), NewOracle(cfg), stream); d != nil {
		t.Fatalf("model diverged from oracle:\n%s", d)
	}
}

// buggyPHR seeds an intentional model bug: footprint bits 0 and 1 swapped,
// i.e. a misreading of Figure 2 where (B3^T0) and (B4^T1) trade places.
type buggyPHR struct{ *refmodel.PHR }

func (b buggyPHR) UpdateBranch(branchAddr, targetAddr uint64) {
	f := refmodel.Footprint(branchAddr, targetAddr)
	swapped := f&^3 | (f&1)<<1 | (f>>1)&1
	b.PHR.Update(swapped)
}

// TestSeededBugCaught proves the differential runner actually bites: the
// mutated implementation must be flagged, with a report naming the first
// diverging step and carrying full state dumps from both sides.
func TestSeededBugCaught(t *testing.T) {
	cfg := bpu.AlderLake
	mutant := NewOracle(cfg)
	mutant.Name = "refmodel(mutated)"
	mutant.H = buggyPHR{mutant.H.(*refmodel.PHR)}
	d := Diff(NewModel(cfg), mutant, RandomStream(5150, 50_000))
	if d == nil {
		t.Fatal("differential runner missed an intentionally seeded footprint bug")
	}
	report := d.String()
	for _, want := range []string{"divergence at step", "stimulus:", "--- bpu ---", "--- refmodel(mutated) ---", "PHR["} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if d.A.CBP == "" || d.B.CBP == "" {
		t.Error("divergence report is missing a predictor state dump")
	}
	if d.A.PHR == d.B.PHR && d.A.Prediction == d.B.Prediction {
		t.Errorf("report shows no visible difference between the two sides:\n%s", report)
	}
}

// TestSeededCounterBugCaught seeds a different class of bug — a predictor
// whose provider training moves counters the wrong way — and checks it is
// caught through the prediction comparison rather than the PHR one.
func TestSeededCounterBugCaught(t *testing.T) {
	cfg := bpu.AlderLake
	mutant := NewOracle(cfg)
	mutant.Name = "refmodel(inverted)"
	mutant.CBP = invertedCBP{mutant.CBP.(*refmodel.CBP)}
	d := Diff(NewModel(cfg), mutant, RandomStream(61, 50_000))
	if d == nil {
		t.Fatal("differential runner missed an inverted-training bug")
	}
	if !strings.Contains(d.Reason, "predictions differ") {
		t.Fatalf("expected a prediction divergence, got: %s", d.Reason)
	}
}

// invertedCBP trains with the opposite outcome.
type invertedCBP struct{ *refmodel.CBP }

func (c invertedCBP) Update(pc uint64, h phr.History, taken bool, p bpu.Prediction) {
	c.CBP.Update(pc, h, !taken, p)
}

func TestDiffSizeMismatch(t *testing.T) {
	d := Diff(NewModel(bpu.AlderLake), NewOracle(bpu.Skylake), RandomStream(1, 10))
	if d == nil || !strings.Contains(d.Reason, "PHR sizes differ") {
		t.Fatalf("size mismatch not reported: %v", d)
	}
}
