package trace

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathfinder/internal/bpu"
)

// update regenerates the golden traces:
//
//	go test ./internal/trace -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden traces in testdata/")

func TestTraceRoundTrip(t *testing.T) {
	events := Replay(NewModel(bpu.AlderLake), RandomStream(3, 500))
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip changed length: %d != %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d changed in round trip: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadAllSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	events, err := ReadAll(strings.NewReader("\n" + `{"pc":1,"tg":2,"c":true,"t":true,"p":true,"pv":-1}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].PC != 1 || !events[0].Cond {
		t.Fatalf("unexpected events: %+v", events)
	}
	if _, err := ReadAll(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line not rejected")
	}
}

// goldenPath maps a microarchitecture to its checked-in trace.
func goldenPath(cfg bpu.Config) string {
	slug := strings.ReplaceAll(strings.ToLower(cfg.Name), " ", "")
	return filepath.Join("testdata", fmt.Sprintf("golden_%s.jsonl", slug))
}

// TestGoldenTraces replays each checked-in stimulus through the production
// model and requires bit-identical predictions. The golden files embed
// stimulus and response together, so any behavioral drift in phr, pht, or
// bpu — footprint layout, fold polynomial, allocation policy — fails here
// with the exact step that moved.
func TestGoldenTraces(t *testing.T) {
	const goldenLen = 2000
	for i, cfg := range bpu.Configs() {
		cfg := cfg
		t.Run(strings.ReplaceAll(cfg.Name, " ", ""), func(t *testing.T) {
			path := goldenPath(cfg)
			if *update {
				events := Replay(NewModel(cfg), RandomStream(uint64(1000+i), goldenLen))
				var buf bytes.Buffer
				if err := WriteAll(&buf, events); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			want, err := ReadAll(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != goldenLen {
				t.Fatalf("golden trace has %d events, want %d", len(want), goldenLen)
			}
			got := Replay(NewModel(cfg), Stimulus(want))
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d: recorded %+v, golden %+v", j, got[j], want[j])
				}
			}
		})
	}
}

func TestRandomStreamDeterministic(t *testing.T) {
	a, b := RandomStream(9, 300), RandomStream(9, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at %d: %+v != %+v", i, a[i], b[i])
		}
	}
	c := RandomStream(10, 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}
