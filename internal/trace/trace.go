// Package trace records and replays deterministic branch traces through
// the modeled conditional branch predictors, and differentially verifies
// the production implementation (internal/bpu, internal/phr, internal/pht)
// against the naive oracle (internal/refmodel).
//
// A trace is compact JSONL: one event per line carrying the stimulus (PC,
// target, conditional flag, resolved direction) and the model's response
// (predicted direction, provider component). Because every event embeds
// its stimulus, a golden trace checked into testdata/ is simultaneously
// the input stream and the expected output: the golden tests re-run the
// stimulus and require bit-identical predictions, pinning predictor
// behavior across refactors of the packed model.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Branch is one stimulus: a branch reaching retirement. Unconditional
// branches (Cond false) are always taken and only shift the PHR;
// conditional branches are predicted and trained, and update the PHR only
// when taken (§2.2).
type Branch struct {
	PC     uint64
	Target uint64
	Cond   bool
	Taken  bool
}

// Event is one trace line: the stimulus plus the predictor's response.
// Field names are abbreviated to keep 100k-branch traces small.
type Event struct {
	PC       uint64 `json:"pc"`
	Target   uint64 `json:"tg"`
	Cond     bool   `json:"c,omitempty"`
	Taken    bool   `json:"t,omitempty"`
	Pred     bool   `json:"p,omitempty"`
	Provider int    `json:"pv"` // component index; -1 is the base predictor
}

// Branch extracts the stimulus part of an event.
func (e Event) Branch() Branch {
	return Branch{PC: e.PC, Target: e.Target, Cond: e.Cond, Taken: e.Taken}
}

// WriteAll writes events as JSONL.
func WriteAll(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadAll parses a JSONL trace, skipping blank lines.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return events, nil
}

// Stimulus extracts the branch stream from a recorded trace.
func Stimulus(events []Event) []Branch {
	out := make([]Branch, len(events))
	for i, e := range events {
		out[i] = e.Branch()
	}
	return out
}
