package trace

import (
	"fmt"

	"pathfinder/internal/bpu"
	"pathfinder/internal/phr"
	"pathfinder/internal/refmodel"
)

// HistReg is the mutable path-history surface a replay drives: the read
// interface the predictors fold over, plus the taken-branch update.
// *phr.Reg (production) and *refmodel.PHR (oracle) both satisfy it.
type HistReg interface {
	phr.History
	UpdateBranch(branchAddr, targetAddr uint64)
}

var (
	_ HistReg = (*phr.Reg)(nil)
	_ HistReg = (*refmodel.PHR)(nil)
)

// Impl pairs one predictor implementation with its history register.
type Impl struct {
	Name string
	CBP  bpu.Predictor
	H    HistReg
}

// NewModel builds a fresh production implementation (packed PHR, memoized
// tables) for the given microarchitecture.
func NewModel(cfg bpu.Config) Impl {
	return Impl{Name: "bpu", CBP: bpu.NewCBP(cfg), H: phr.New(cfg.PHRSize)}
}

// NewOracle builds a fresh reference implementation (doublet-slice PHR,
// map-backed tables) for the given microarchitecture.
func NewOracle(cfg bpu.Config) Impl {
	return Impl{Name: "refmodel", CBP: refmodel.New(cfg), H: refmodel.NewPHR(cfg.PHRSize)}
}

// Step feeds one branch through the implementation — predict and train if
// conditional, shift the PHR if taken — and returns the recorded event.
func (im Impl) Step(b Branch) Event {
	ev := Event{PC: b.PC, Target: b.Target, Cond: b.Cond, Taken: b.Taken, Provider: -1}
	if b.Cond {
		p := im.CBP.Predict(b.PC, im.H)
		im.CBP.Update(b.PC, im.H, b.Taken, p)
		ev.Pred = p.Taken
		ev.Provider = p.Provider
	} else {
		ev.Pred = true // unconditional branches are trivially "predicted" taken
	}
	if b.Taken {
		im.H.UpdateBranch(b.PC, b.Target)
	}
	return ev
}

// Replay runs the whole stream and returns the recorded trace.
func Replay(im Impl, stream []Branch) []Event {
	out := make([]Event, len(stream))
	for i, b := range stream {
		out[i] = im.Step(b)
	}
	return out
}

// histString renders any history register in the shared PHR[...] shape.
func histString(h phr.History) string {
	type stringer interface{ String() string }
	if s, ok := h.(stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("PHR(size=%d)", h.Size())
}
