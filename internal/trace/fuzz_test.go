package trace

import (
	"bytes"
	"testing"

	"pathfinder/internal/bpu"
)

// FuzzCBPDifferential lets the fuzzer choose the branch interleaving and
// direction sequence (via DecodeStream) and the microarchitecture, then
// requires the production model and the oracle to agree on every step.
// Run locally with:
//
//	go test ./internal/trace -run='^$' -fuzz=FuzzCBPDifferential -fuzztime=30s
func FuzzCBPDifferential(f *testing.F) {
	f.Add([]byte{0}, uint8(0))
	f.Add([]byte{1, 1, 2, 0, 3, 1, 250, 0}, uint8(1))
	f.Add(bytes.Repeat([]byte{7, 1, 7, 0}, 64), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, arch uint8) {
		if len(data) > 1<<14 {
			return // bound per-input work; long streams are the 100k test's job
		}
		cfg := bpu.Configs()[int(arch)%3]
		stream := DecodeStream(data)
		if d := Diff(NewModel(cfg), NewOracle(cfg), stream); d != nil {
			t.Fatalf("model diverged from oracle:\n%s", d)
		}
	})
}

// FuzzTraceRoundTrip checks that any recorded trace survives the JSONL
// encoding unchanged: stimulus and response both.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(64))
	f.Add(uint64(0), uint16(0))
	f.Add(^uint64(0), uint16(999))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16) {
		events := Replay(NewModel(bpu.Skylake), RandomStream(seed, int(n%2048)))
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(events) {
			t.Fatalf("length changed: %d != %d", len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("event %d changed: %+v != %+v", i, got[i], events[i])
			}
		}
	})
}
