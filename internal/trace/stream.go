package trace

// Deterministic branch-stream generation: the golden traces, the
// differential tests, and the fuzz harness all synthesize stimulus from
// seeds or fuzz bytes through this file, so a failure reproduces from its
// seed alone.

// splitmix64 is the repo's standard tiny deterministic generator.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// site is one synthetic branch location.
type site struct {
	pc     uint64
	target uint64
	cond   bool
	bias   uint64 // taken threshold out of 1<<16 (conditional sites only)
}

// makeSites lays out a working set of branch sites. Addresses exercise the
// full 16 PC bits the tagged tables see, plus higher bits so base-table
// aliasing across pages occurs; targets vary the low 6 bits that feed the
// footprint.
func makeSites(rng *splitmix64, nCond, nUncond int) []site {
	sites := make([]site, 0, nCond+nUncond)
	for i := 0; i < nCond+nUncond; i++ {
		pc := rng.next() & 0x3_ffff_ffff &^ 1 // keep within a 16 GiB text segment
		target := pc ^ (rng.next() & 0xffff)
		s := site{pc: pc, target: target, cond: i < nCond}
		if s.cond {
			// Biases cluster near the rails with a flat middle: strongly
			// biased branches train deep table entries, coin flips churn
			// allocations and usefulness counters.
			switch rng.next() % 4 {
			case 0:
				s.bias = 1 << 14 // mostly not-taken
			case 1:
				s.bias = 3 << 14 // mostly taken
			default:
				s.bias = rng.next() & 0xffff
			}
		}
		sites = append(sites, s)
	}
	return sites
}

// RandomStream synthesizes n branches over a deterministic working set of
// 48 conditional and 16 unconditional sites derived from seed.
func RandomStream(seed uint64, n int) []Branch {
	rng := &splitmix64{s: seed*0x9e3779b97f4a7c15 + 1}
	sites := makeSites(rng, 48, 16)
	out := make([]Branch, 0, n)
	for len(out) < n {
		s := sites[rng.next()%uint64(len(sites))]
		b := Branch{PC: s.pc, Target: s.target, Cond: s.cond, Taken: true}
		if s.cond {
			b.Taken = rng.next()&0xffff < s.bias
		}
		out = append(out, b)
	}
	return out
}

// DecodeStream maps arbitrary bytes (the fuzz corpus) onto a branch
// stream: each byte pair selects a site from a small fixed working set and
// the branch outcome, so the fuzzer controls the interleaving and the
// direction sequence while addresses stay in a trained regime.
func DecodeStream(data []byte) []Branch {
	rng := &splitmix64{s: 0x5eed}
	sites := makeSites(rng, 24, 8)
	out := make([]Branch, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		s := sites[int(data[i])%len(sites)]
		b := Branch{PC: s.pc, Target: s.target, Cond: s.cond, Taken: true}
		if s.cond {
			b.Taken = data[i+1]&1 == 1
		}
		out = append(out, b)
	}
	return out
}
