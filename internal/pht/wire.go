package pht

import (
	"fmt"

	"pathfinder/internal/wire"
)

// Wire codec for the saved table states, used by the cpu.Snapshot binary
// encoding. The format mirrors Hash: base counters verbatim, tagged tables
// as sparse (set, way, entry) triples so mostly-empty tables stay small on
// the wire.

// EncodeWire appends the saved base table to w.
func (s *BaseState) EncodeWire(w *wire.Writer) {
	w.U32(uint32(len(s.ctr)))
	for _, c := range s.ctr {
		w.U8(uint8(c))
	}
}

// DecodeWire reads a saved base table from r, replacing s.
func (s *BaseState) DecodeWire(r *wire.Reader) {
	n := r.Len(1 << 24)
	if cap(s.ctr) < n {
		s.ctr = make([]Counter, n)
	}
	s.ctr = s.ctr[:n]
	for i := range s.ctr {
		s.ctr[i] = Counter(r.U8())
	}
}

// EncodeWire appends the saved tagged table to w: history length, then a
// count of valid entries followed by (set, way, tag, ctr, useful) tuples in
// set-major order.
func (s *TaggedState) EncodeWire(w *wire.Writer) {
	w.U32(uint32(s.histLen))
	valid := 0
	for set := range s.sets {
		for way := range s.sets[set] {
			if s.sets[set][way].Valid {
				valid++
			}
		}
	}
	w.U32(uint32(valid))
	for set := range s.sets {
		for way := range s.sets[set] {
			e := &s.sets[set][way]
			if !e.Valid {
				continue
			}
			w.U16(uint16(set))
			w.U8(uint8(way))
			w.U32(e.Tag)
			w.U8(uint8(e.Ctr))
			w.U8(e.Useful)
		}
	}
}

// DecodeWire reads a saved tagged table from r, replacing s. Invalid
// entries decode as zero values, exactly what Hash treats as absent.
func (s *TaggedState) DecodeWire(r *wire.Reader) {
	s.histLen = int(r.U32())
	s.sets = [Sets][Ways]Entry{}
	n := r.Len(Sets * Ways)
	for i := 0; i < n; i++ {
		set := int(r.U16())
		way := int(r.U8())
		if r.Err() != nil {
			return
		}
		if set >= Sets || way >= Ways {
			r.Fail(fmt.Errorf("pht: wire entry at set %d way %d out of geometry", set, way))
			return
		}
		e := &s.sets[set][way]
		e.Valid = true
		e.Tag = r.U32()
		e.Ctr = Counter(r.U8())
		e.Useful = r.U8()
	}
}
