// Package pht implements the pattern history tables (PHTs) of the Intel
// conditional branch predictor as reconstructed by Half&Half and Pathfinder
// (Figure 3 of the paper): a base predictor indexed by the low 13 bits of
// the branch PC, and three 512-set × 4-way tagged tables indexed by a 9-bit
// function of folded path history (PHR) and PC bit 5, with tags formed from
// a longer fold of the PHR combined with the PC.
//
// Every entry carries a 3-bit saturating counter (Observation 2 of the
// paper) predicting taken when the counter is in the upper half.
//
// Only *conditional* branches read and update the PHTs; unconditional
// branches update the PHR but never touch these tables. That asymmetry is
// load-bearing for the attacks (e.g. Shift_PHR/Write_PHR macros built from
// unconditional branches leave the PHTs untouched, and 194+ consecutive
// unconditional branches defeat Extended Read PHR).
package pht

import (
	"fmt"
	"strings"

	"pathfinder/internal/phr"
)

// CounterBits is the saturating-counter width (Observation 2).
const CounterBits = 3

// CounterMax is the largest counter value.
const CounterMax = 1<<CounterBits - 1

// Counter is an n-bit saturating counter. Values 0..CounterMax; values in
// the upper half predict taken.
type Counter uint8

// Taken reports the counter's prediction.
func (c Counter) Taken() bool { return c >= 1<<(CounterBits-1) }

// Update returns the counter after observing one branch outcome.
func (c Counter) Update(taken bool) Counter {
	if taken {
		if c < CounterMax {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// WeakFor returns the weakest counter state that still predicts the given
// direction; new tagged entries are initialised to it.
func WeakFor(taken bool) Counter {
	if taken {
		return 1 << (CounterBits - 1)
	}
	return 1<<(CounterBits-1) - 1
}

// BaseIndexBits is the PC width indexing the base predictor (PC[12:0]).
const BaseIndexBits = 13

// baseBankShift groups base counters into 64-entry banks for dirty
// tracking: 8192 counters → 128 banks → two bitmap words. A trial trains a
// handful of PCs, so a dirty-aware restore copies a few 64-byte banks
// instead of the whole array.
const baseBankShift = 6

// BaseTable is the PC-indexed base (local) predictor, Table 0 in Figure 3.
type BaseTable struct {
	ctr []Counter

	// dirty has one bit per 64-counter bank, raised by Update/Reset and
	// consumed (and cleared) by RestoreDirty. Conservative superset of banks
	// differing from the last restored state.
	dirty [(1 << BaseIndexBits) >> baseBankShift / 64]uint64
}

// NewBase returns a base predictor with all counters at the weak not-taken
// boundary value.
func NewBase() *BaseTable {
	b := &BaseTable{ctr: make([]Counter, 1<<BaseIndexBits)}
	for i := range b.ctr {
		b.ctr[i] = WeakFor(false)
	}
	return b
}

// Index maps a branch PC to its base-table slot.
func (b *BaseTable) Index(pc uint64) uint32 {
	return uint32(pc) & (1<<BaseIndexBits - 1)
}

// Predict returns the base prediction for pc.
func (b *BaseTable) Predict(pc uint64) bool { return b.ctr[b.Index(pc)].Taken() }

// Counter returns the raw counter for pc, for tests and Read PHT probes.
func (b *BaseTable) Counter(pc uint64) Counter { return b.ctr[b.Index(pc)] }

// Update trains the base counter for pc with one outcome.
func (b *BaseTable) Update(pc uint64, taken bool) {
	i := b.Index(pc)
	bank := i >> baseBankShift
	b.dirty[bank>>6] |= 1 << (bank & 63)
	b.ctr[i] = b.ctr[i].Update(taken)
}

// Reset returns every counter to the weak not-taken state (used by the
// mitigation experiments; on hardware this costs ~100k branches, §10.2).
func (b *BaseTable) Reset() {
	for i := range b.dirty {
		b.dirty[i] = ^uint64(0)
	}
	for i := range b.ctr {
		b.ctr[i] = WeakFor(false)
	}
}

// Dump renders every counter that has moved off the reset value, one per
// line, for differential-divergence reports. The reset state dumps empty.
func (b *BaseTable) Dump() string {
	var sb strings.Builder
	for i, c := range b.ctr {
		if c != WeakFor(false) {
			fmt.Fprintf(&sb, "  base[%#x] ctr=%d\n", i, c)
		}
	}
	return sb.String()
}

// Tagged-table geometry from Figure 3.
const (
	Sets      = 512
	Ways      = 4
	IndexBits = 9  // 8 folded-history bits + PC[5]
	TagBits   = 12 // fold of PHR mixed with PC low bits
	UsefulMax = 3  // 2-bit usefulness counter for replacement
)

// Entry is one way of a tagged table.
type Entry struct {
	Valid  bool
	Tag    uint32
	Ctr    Counter
	Useful uint8
}

// TaggedTable is one of the history-indexed components (Tables 1-3 in
// Figure 3). HistLen is the number of PHR doublets folded into its index
// and tag: 34, 66 and 194 on Alder/Raptor Lake.
type TaggedTable struct {
	HistLen int
	sets    [Sets][Ways]Entry

	// Fold memoization: predictors look up the same (pc, history) several
	// times per branch (predict, update, allocate); the folds dominate the
	// simulator's hot path.
	memoReg phr.History
	memoGen uint64
	memoPC  uint64
	memoIdx uint32
	memoTag uint32
	memoOK  bool

	// locMemos is the concrete-path memo: (index, tag) pairs keyed by
	// (register, content id, pc), direct-mapped by PC. Content ids recur
	// every loop iteration (unlike gens, which move on every mutation), so
	// in steady loop state locateReg serves from here without folding at
	// all. Entries are pure functions of their key and so never need
	// invalidation; Reset clears them only for hygiene.
	locMemos [locSlots]locMemo

	// dirty has one bit per set. A set is marked when an entry pointer
	// escapes via lookupAt (the bpu layer mutates Ctr/Useful through it),
	// when allocateAt touches it (a failed allocation still decrements
	// usefulness), and on the bulk mutators. RestoreDirty copies only the
	// marked sets.
	dirty [Sets / 64]uint64
}

// locSlots sizes the per-table locate memo: loops with up to locSlots
// conditional branches (mapping distinctly) fold each branch's index and
// tag once per content cycle.
const locSlots = 8

type locMemo struct {
	reg *phr.Reg // nil = empty
	cid uint64
	pc  uint64
	idx uint32
	tag uint32
}

// NewTagged returns an empty tagged table over histLen doublets of history.
func NewTagged(histLen int) *TaggedTable {
	if histLen <= 0 {
		panic(fmt.Sprintf("pht: non-positive history length %d", histLen))
	}
	return &TaggedTable{HistLen: histLen}
}

// Index computes the 9-bit set index: eight bits of folded history plus
// PC bit 5 (Figure 3). Only PC bits 15:0 ever participate in tagged-table
// addressing, which is what lets an attacker branch at a different page
// alias a victim branch with equal low address bits.
func (t *TaggedTable) Index(pc uint64, h phr.History) uint32 {
	fold := h.Fold(t.HistLen, 8)
	return fold | (uint32(pc>>5)&1)<<8
}

// Tag computes the entry tag from a longer history fold mixed with the low
// PC bits.
func (t *TaggedTable) Tag(pc uint64, h phr.History) uint32 {
	fold := h.FoldMix(t.HistLen, TagBits)
	p := uint32(pc) & 0xffff
	return (fold ^ p ^ p>>7) & (1<<TagBits - 1)
}

// locate returns the (index, tag) pair for (pc, h), memoizing the folds.
func (t *TaggedTable) locate(pc uint64, h phr.History) (uint32, uint32) {
	if t.memoOK && t.memoReg == h && t.memoGen == h.Gen() && t.memoPC == pc {
		return t.memoIdx, t.memoTag
	}
	idx, tag := t.Index(pc, h), t.Tag(pc, h)
	t.memoReg, t.memoGen, t.memoPC = h, h.Gen(), pc
	t.memoIdx, t.memoTag, t.memoOK = idx, tag, true
	return idx, tag
}

// locateReg is locate specialized to the concrete *phr.Reg: the fold calls
// devirtualize, and the memo is keyed by content id rather than gen, so it
// keeps hitting across register mutations whenever a loop returns the
// history to a content already located. It sits under every
// predict/update/allocate on the simulator hot path.
func (t *TaggedTable) locateReg(pc uint64, r *phr.Reg) (uint32, uint32) {
	cid := r.ContentID()
	m := &t.locMemos[(pc>>2^pc>>9)&(locSlots-1)]
	if m.reg == r && m.cid == cid && m.pc == pc {
		return m.idx, m.tag
	}
	idx := r.Fold(t.HistLen, 8) | (uint32(pc>>5)&1)<<8
	p := uint32(pc) & 0xffff
	tag := (r.FoldMix(t.HistLen, TagBits) ^ p ^ p>>7) & (1<<TagBits - 1)
	*m = locMemo{reg: r, cid: cid, pc: pc, idx: idx, tag: tag}
	return idx, tag
}

// Lookup finds the entry matching (pc, h). It returns the entry pointer and
// true on a tag hit.
func (t *TaggedTable) Lookup(pc uint64, h phr.History) (*Entry, bool) {
	idx, tag := t.locate(pc, h)
	return t.lookupAt(idx, tag)
}

// LookupReg is Lookup specialized to the concrete *phr.Reg.
func (t *TaggedTable) LookupReg(pc uint64, r *phr.Reg) (*Entry, bool) {
	idx, tag := t.locateReg(pc, r)
	return t.lookupAt(idx, tag)
}

func (t *TaggedTable) lookupAt(idx, tag uint32) (*Entry, bool) {
	si := idx & (Sets - 1)
	set := &t.sets[si]
	for w := range set {
		if set[w].Valid && set[w].Tag == tag {
			// The returned pointer escapes to the bpu layer, which trains
			// Ctr/Useful through it; a hit must therefore be assumed a write.
			t.dirty[si>>6] |= 1 << (si & 63)
			return &set[w], true
		}
	}
	return nil, false
}

// Allocate inserts a fresh weak entry for (pc, h) in the given direction.
// It prefers an invalid way, then a way with Useful==0 (lowest index wins,
// keeping the model deterministic). If every way is useful it decrements
// all usefulness counters and allocates nothing, per TAGE replacement.
// It reports whether an entry was inserted.
func (t *TaggedTable) Allocate(pc uint64, h phr.History, taken bool) bool {
	idx, tag := t.locate(pc, h)
	return t.allocateAt(idx, tag, taken)
}

// AllocateReg is Allocate specialized to the concrete *phr.Reg.
func (t *TaggedTable) AllocateReg(pc uint64, r *phr.Reg, taken bool) bool {
	idx, tag := t.locateReg(pc, r)
	return t.allocateAt(idx, tag, taken)
}

func (t *TaggedTable) allocateAt(idx, tag uint32, taken bool) bool {
	si := idx & (Sets - 1)
	t.dirty[si>>6] |= 1 << (si & 63) // a failed allocate still decays Useful
	set := &t.sets[si]
	victim := -1
	for w := range set {
		if !set[w].Valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		for w := range set {
			if set[w].Useful == 0 {
				victim = w
				break
			}
		}
	}
	if victim < 0 {
		for w := range set {
			if set[w].Useful > 0 {
				set[w].Useful--
			}
		}
		return false
	}
	set[victim] = Entry{Valid: true, Tag: tag, Ctr: WeakFor(taken)}
	return true
}

// DecayUseful halves every usefulness counter — the periodic TAGE aging
// that keeps long-lived entries evictable.
func (t *TaggedTable) DecayUseful() {
	for i := range t.dirty {
		t.dirty[i] = ^uint64(0)
	}
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w].Useful >>= 1
		}
	}
}

// Reset invalidates every entry (PHT flush mitigation, §10.2).
func (t *TaggedTable) Reset() {
	for i := range t.dirty {
		t.dirty[i] = ^uint64(0)
	}
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = Entry{}
		}
	}
	t.memoOK = false
	t.locMemos = [locSlots]locMemo{}
}

// Dump renders every valid entry as "set/way tag ctr useful", one per line,
// in set order, for differential-divergence reports.
func (t *TaggedTable) Dump() string {
	var sb strings.Builder
	for s := range t.sets {
		for w := range t.sets[s] {
			e := t.sets[s][w]
			if e.Valid {
				fmt.Fprintf(&sb, "  set %3d way %d tag=%#03x ctr=%d useful=%d\n", s, w, e.Tag, e.Ctr, e.Useful)
			}
		}
	}
	return sb.String()
}

// Occupancy returns the number of valid entries, for diagnostics and the
// mitigation-cost experiments.
func (t *TaggedTable) Occupancy() int {
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].Valid {
				n++
			}
		}
	}
	return n
}
