package pht

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathfinder/internal/phr"
)

func TestCounterSaturation(t *testing.T) {
	c := Counter(0)
	for i := 0; i < 20; i++ {
		c = c.Update(true)
	}
	if c != CounterMax {
		t.Fatalf("counter saturated at %d, want %d", c, CounterMax)
	}
	for i := 0; i < 20; i++ {
		c = c.Update(false)
	}
	if c != 0 {
		t.Fatalf("counter floor %d, want 0", c)
	}
}

func TestCounterThreshold(t *testing.T) {
	// 3-bit counter: 0..3 predict not-taken, 4..7 predict taken.
	for v := Counter(0); v <= CounterMax; v++ {
		want := v >= 4
		if v.Taken() != want {
			t.Errorf("Counter(%d).Taken() = %v, want %v", v, v.Taken(), want)
		}
	}
}

func TestCounterStepsToFlip(t *testing.T) {
	// From strong not-taken, exactly 4 taken updates are needed before the
	// counter predicts taken -- the basis of the Read PHT probe decoding
	// ("4 mispredictions indicates strongly not-taken").
	c := Counter(0)
	steps := 0
	for !c.Taken() {
		c = c.Update(true)
		steps++
	}
	if steps != 4 {
		t.Fatalf("flips after %d steps, want 4", steps)
	}
}

func TestWeakFor(t *testing.T) {
	if !WeakFor(true).Taken() || WeakFor(false).Taken() {
		t.Fatal("WeakFor direction wrong")
	}
	if WeakFor(true).Update(false).Taken() || !WeakFor(false).Update(true).Taken() {
		t.Fatal("WeakFor not weak")
	}
}

func TestBaseAliasing(t *testing.T) {
	b := NewBase()
	// Two PCs equal in the low 13 bits share a base entry (BranchScope-style
	// aliasing); differing low bits do not.
	pcA := uint64(0x0000_1abc)
	pcB := uint64(0xffff_3abc) // same low 13 bits (0x1abc & 0x1fff == 0x1abc)
	if b.Index(pcA) != b.Index(pcB) {
		t.Fatalf("expected base collision: %#x vs %#x", b.Index(pcA), b.Index(pcB))
	}
	for i := 0; i < 8; i++ {
		b.Update(pcA, true)
	}
	if !b.Predict(pcB) {
		t.Fatal("aliased PC did not observe training")
	}
	if b.Predict(0x0abd) {
		t.Fatal("unrelated PC affected")
	}
}

func TestTaggedAliasingLow16(t *testing.T) {
	tt := NewTagged(194)
	h := phr.New(194)
	h.SetDoublet(3, 2)
	h.SetDoublet(100, 1)
	// Attacker at a different page but same low 16 bits must produce the
	// same index and tag -- the aliasing requirement of the attacks (§5).
	pcV := uint64(0x0040_ac40)
	pcA := uint64(0x0050_ac40)
	if tt.Index(pcV, h) != tt.Index(pcA, h) || tt.Tag(pcV, h) != tt.Tag(pcA, h) {
		t.Fatal("low-16-bit aliasing broken")
	}
}

func TestTaggedPHRSensitivity(t *testing.T) {
	tt := NewTagged(194)
	pc := uint64(0xac40)
	a := phr.New(194)
	b := phr.New(194)
	b.SetDoublet(193, 1) // differ only in the topmost doublet
	if tt.Index(pc, a) == tt.Index(pc, b) && tt.Tag(pc, a) == tt.Tag(pc, b) {
		t.Fatal("table 3 must distinguish PHRs differing at doublet 193")
	}
	short := NewTagged(34)
	if short.Index(pc, a) != short.Index(pc, b) || short.Tag(pc, a) != short.Tag(pc, b) {
		t.Fatal("table 1 must NOT see doublet 193 (only 34 doublets folded)")
	}
}

func TestAllocateLookupRoundTrip(t *testing.T) {
	tt := NewTagged(66)
	h := phr.New(194)
	h.SetDoublet(0, 3)
	pc := uint64(0x1234)
	if _, hit := tt.Lookup(pc, h); hit {
		t.Fatal("hit in empty table")
	}
	if !tt.Allocate(pc, h, true) {
		t.Fatal("allocation failed in empty table")
	}
	e, hit := tt.Lookup(pc, h)
	if !hit {
		t.Fatal("miss after allocate")
	}
	if !e.Ctr.Taken() || e.Ctr != WeakFor(true) {
		t.Fatalf("new entry counter %d, want weak taken", e.Ctr)
	}
	// Mutating through the returned pointer is visible on re-lookup.
	e.Ctr = e.Ctr.Update(true)
	e2, _ := tt.Lookup(pc, h)
	if e2.Ctr != WeakFor(true)+1 {
		t.Fatal("entry mutation lost")
	}
}

func TestAllocateReplacement(t *testing.T) {
	tt := NewTagged(34)
	h := phr.New(194)
	// Fill all four ways of one set with useful entries by varying PC bits
	// that change the tag but not the index (index uses only folded history
	// and PC[5]).
	idx := tt.Index(0, h)
	filled := 0
	for pc := uint64(0); filled < Ways && pc < 1<<16; pc += 0x40 { // keep PC[5]=0
		if tt.Index(pc, h) != idx {
			continue
		}
		if _, hit := tt.Lookup(pc, h); hit {
			continue
		}
		if tt.Allocate(pc, h, false) {
			e, _ := tt.Lookup(pc, h)
			e.Useful = 2
			filled++
		}
	}
	if filled != Ways {
		t.Skipf("could not fill set (filled %d)", filled)
	}
	// All ways useful: allocation must fail once and age the set.
	if tt.Allocate(0x9000, h, true) {
		t.Fatal("allocation should fail when all ways useful")
	}
	if tt.Allocate(0x9000, h, true) {
		t.Fatal("still one aging round away")
	}
	if !tt.Allocate(0x9000, h, true) {
		t.Fatal("allocation should succeed after usefulness decay")
	}
}

func TestResetClearsState(t *testing.T) {
	tt := NewTagged(194)
	h := phr.New(194)
	tt.Allocate(0x40, h, true)
	if tt.Occupancy() != 1 {
		t.Fatal("occupancy")
	}
	tt.Reset()
	if tt.Occupancy() != 0 {
		t.Fatal("reset did not clear")
	}
	b := NewBase()
	b.Update(0x40, true)
	b.Update(0x40, true)
	b.Reset()
	if b.Counter(0x40) != WeakFor(false) {
		t.Fatal("base reset")
	}
}

func TestIndexTagWidths(t *testing.T) {
	tt := NewTagged(194)
	if err := quick.Check(func(pc uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := phr.New(194)
		for i := 0; i < 194; i++ {
			h.SetDoublet(i, uint8(rng.Intn(4)))
		}
		return tt.Index(pc, h) < 1<<IndexBits && tt.Tag(pc, h) < 1<<TagBits
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTagCollisionRate(t *testing.T) {
	// Random distinct PHRs should essentially never produce the same
	// (index, tag) pair for the full-history table: the property that makes
	// the Extended Read PHR test unambiguous.
	tt := NewTagged(194)
	rng := rand.New(rand.NewSource(7))
	pc := uint64(0xac40)
	type key struct{ i, t uint32 }
	seen := map[key]bool{}
	collisions := 0
	const trials = 5000
	for n := 0; n < trials; n++ {
		h := phr.New(194)
		for i := 0; i < 194; i++ {
			h.SetDoublet(i, uint8(rng.Intn(4)))
		}
		k := key{tt.Index(pc, h), tt.Tag(pc, h)}
		if seen[k] {
			collisions++
		}
		seen[k] = true
	}
	// 21 bits of (index,tag) over 5000 draws: expect a few birthday
	// collisions, but far below 1%.
	if collisions > trials/100 {
		t.Fatalf("%d/%d tag collisions, hash too weak", collisions, trials)
	}
}

func BenchmarkTaggedLookup(b *testing.B) {
	tt := NewTagged(194)
	h := phr.New(194)
	for i := 0; i < 194; i++ {
		h.SetDoublet(i, uint8(i&3))
	}
	tt.Allocate(0xac40, h, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.Lookup(0xac40, h)
	}
}
