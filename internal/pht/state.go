package pht

import "math/bits"

// Snapshot state for the checkpoint layer (internal/cpu.Machine.Snapshot):
// flat copies of the base and tagged tables with no per-entry allocation.
// Save reuses the destination's backing storage, Restore panics on a
// geometry mismatch, and Hash chains an FNV-1a style fold so a whole
// machine snapshot gets one cheap equality key.

// BaseState is a saved BaseTable: the full counter array.
type BaseState struct {
	ctr []Counter
}

// Save copies the table's counters into dst, reusing dst's storage.
func (b *BaseTable) Save(dst *BaseState) {
	dst.ctr = append(dst.ctr[:0], b.ctr...)
}

// Restore overwrites the table's counters from a saved state. The state
// must come from a table of identical geometry.
func (b *BaseTable) Restore(s *BaseState) {
	if len(s.ctr) != len(b.ctr) {
		panic("pht: restore base state with mismatched geometry")
	}
	copy(b.ctr, s.ctr)
	b.dirty = [len(b.dirty)]uint64{}
}

// RestoreDirty copies only the 64-counter banks whose dirty bit is raised,
// then clears the bits. Correct only when every clean bank already matches
// s (the cpu layer's snapshot-hash sync check guarantees this); then it is
// bit-identical to a full Restore.
func (b *BaseTable) RestoreDirty(s *BaseState) {
	if len(s.ctr) != len(b.ctr) {
		panic("pht: restore base state with mismatched geometry")
	}
	for wi, w := range b.dirty {
		for w != 0 {
			bank := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			lo := bank << baseBankShift
			copy(b.ctr[lo:lo+1<<baseBankShift], s.ctr[lo:lo+1<<baseBankShift])
		}
		b.dirty[wi] = 0
	}
}

// Hash folds the saved counters into h.
func (s *BaseState) Hash(h uint64) uint64 {
	for i := 0; i < len(s.ctr); i += 8 {
		var w uint64
		for j := i; j < i+8 && j < len(s.ctr); j++ {
			w = w<<8 | uint64(s.ctr[j])
		}
		h = mix(h, w)
	}
	return h
}

// TaggedState is a saved TaggedTable: the entry array, copied as one value
// assignment. The fold memo is deliberately absent — it is derived state,
// and Restore invalidates it on the destination.
type TaggedState struct {
	histLen int
	sets    [Sets][Ways]Entry
}

// Save copies the table's entries into dst.
func (t *TaggedTable) Save(dst *TaggedState) {
	dst.histLen = t.HistLen
	dst.sets = t.sets
}

// Restore overwrites the table's entries from a saved state and drops the
// fold memo (it may describe a (pc, history) pair from the other timeline).
func (t *TaggedTable) Restore(s *TaggedState) {
	if s.histLen != t.HistLen {
		panic("pht: restore tagged state with mismatched history length")
	}
	t.sets = s.sets
	t.memoOK = false
	t.dirty = [Sets / 64]uint64{}
}

// RestoreDirty copies only the sets whose dirty bit is raised, then clears
// the bits; the fold memo drops exactly as in Restore (locMemos survive —
// they are pure functions of their keys). Correct only when every clean set
// already matches s, per the cpu layer's snapshot-hash sync check.
func (t *TaggedTable) RestoreDirty(s *TaggedState) {
	if s.histLen != t.HistLen {
		panic("pht: restore tagged state with mismatched history length")
	}
	for wi, w := range t.dirty {
		for w != 0 {
			si := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			t.sets[si] = s.sets[si]
		}
		t.dirty[wi] = 0
	}
	t.memoOK = false
}

// Hash folds the saved entries into h. Invalid ways fold as zero so tables
// that differ only in dead tag bits hash identically to their Dump.
func (s *TaggedState) Hash(h uint64) uint64 {
	h = mix(h, uint64(s.histLen))
	for set := range s.sets {
		for w := range s.sets[set] {
			e := &s.sets[set][w]
			if !e.Valid {
				continue
			}
			h = mix(h, uint64(set)<<32|uint64(w))
			h = mix(h, uint64(e.Tag)<<16|uint64(e.Ctr)<<8|uint64(e.Useful))
		}
	}
	return h
}

// mix is one FNV-1a style step over a 64-bit word.
func mix(h, w uint64) uint64 {
	return (h ^ w) * 0x100000001b3
}
