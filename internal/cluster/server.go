package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pathfinder/internal/service"
)

// Handler returns the coordinator's HTTP API: the client-facing routes
// mirror the standalone service's surface (same paths, same JSON shapes, so
// sweep scripts work unchanged against either), plus the worker-facing
// control plane under /v1/cluster/ and the /cluster/status rollup.
//
//	GET  /healthz                  liveness
//	GET  /metrics                  Prometheus text exposition
//	GET  /v1/experiments           registry listing
//	POST /v1/jobs                  submit one job
//	GET  /v1/jobs                  list jobs (?state=, ?batch=, ?experiment=)
//	GET  /v1/jobs/{id}             one job with its result
//	POST /v1/jobs/{id}/cancel      cancel a pending or running job
//	POST /v1/batch                 submit a sweep or an explicit job list
//	GET  /v1/batch/{id}            batch rollup
//	GET  /v1/batch/{id}/report     canonical report (byte-identical to standalone)
//	GET  /cluster/status           worker directory + job rollup
//	POST /v1/cluster/heartbeat     worker liveness/progress (worker-facing)
//	POST /v1/cluster/results       terminal results (worker-facing)
//	GET  /v1/cluster/snapshots     warm-key holder lookup, ranked (worker-facing)
//	POST /v1/cluster/report-peer   worker-observed peer failure (worker-facing)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"role":    "coordinator",
			"workers": len(st.Workers),
			"pending": st.Pending,
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, c.metrics.Expose(c.gauges()))
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": c.reg.List()})
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req service.SubmitRequest
		if !readJSON(w, r, &req) {
			return
		}
		v, err := c.Submit(req.Experiment, req.Params, "", time.Duration(req.TimeoutMS)*time.Millisecond)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		jobs := c.List(service.ListFilter{
			State:      service.State(q.Get("state")),
			Batch:      q.Get("batch"),
			Experiment: q.Get("experiment"),
		})
		writeJSON(w, http.StatusOK, map[string]any{"total": len(jobs), "jobs": jobs})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := c.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		v, err := c.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req service.BatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		timeout := time.Duration(req.TimeoutMS) * time.Millisecond
		var (
			batch string
			views []JobView
			err   error
		)
		switch {
		case len(req.Jobs) > 0 && req.Sweep != nil:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "use either jobs or sweep, not both"})
			return
		case len(req.Jobs) > 0:
			c.mu.Lock()
			c.seq++
			batch = fmt.Sprintf("cbatch-%06d", c.seq)
			c.mu.Unlock()
			for _, jr := range req.Jobs {
				jt := timeout
				if jr.TimeoutMS > 0 {
					jt = time.Duration(jr.TimeoutMS) * time.Millisecond
				}
				var v JobView
				v, err = c.Submit(jr.Experiment, jr.Params, batch, jt)
				if err != nil {
					break
				}
				views = append(views, v)
			}
		default:
			var archs []string
			var seeds []int64
			if req.Sweep != nil {
				archs, seeds = req.Sweep.Archs, req.Sweep.Seeds
			}
			batch, views, err = c.SubmitSweep(req.Experiment, req.Params, archs, seeds, timeout)
		}
		if err != nil && len(views) == 0 {
			writeErr(w, err)
			return
		}
		resp := map[string]any{"batch": batch, "total": len(views), "jobs": views}
		if err != nil {
			resp["error"] = err.Error()
		}
		writeJSON(w, http.StatusAccepted, resp)
	})

	mux.HandleFunc("GET /v1/batch/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		jobs := c.List(service.ListFilter{Batch: id})
		if len(jobs) == 0 {
			writeErr(w, service.ErrNotFound)
			return
		}
		byState := make(map[service.State]int, 5)
		for _, st := range service.States() {
			byState[st] = 0
		}
		for _, j := range jobs {
			byState[j.State]++
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"batch": id, "total": len(jobs), "by_state": byState, "jobs": jobs,
		})
	})

	mux.HandleFunc("GET /v1/batch/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		jobs := c.List(service.ListFilter{Batch: id})
		if len(jobs) == 0 {
			writeErr(w, service.ErrNotFound)
			return
		}
		// Strip down to the service views: the canonical report must not see
		// (and could not render differently anyway) cluster-only fields.
		views := make([]service.JobView, len(jobs))
		for i, j := range jobs {
			views[i] = j.JobView
		}
		service.ServeReport(w, service.BuildReport(views))
	})

	mux.HandleFunc("GET /cluster/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})

	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var hb Heartbeat
		if !readJSON(w, r, &hb) {
			return
		}
		if hb.Worker == "" || hb.Addr == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "heartbeat needs worker and addr"})
			return
		}
		writeJSON(w, http.StatusOK, c.handleHeartbeat(hb))
	})

	mux.HandleFunc("POST /v1/cluster/results", func(w http.ResponseWriter, r *http.Request) {
		var p ResultsPush
		if !readJSON(w, r, &p) {
			return
		}
		writeJSON(w, http.StatusOK, c.handleResults(p))
	})

	mux.HandleFunc("GET /v1/cluster/snapshots", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing key parameter"})
			return
		}
		holders := c.locateSnapshots(key, r.URL.Query().Get("from"))
		if len(holders) == 0 {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "no live holder for key"})
			return
		}
		writeJSON(w, http.StatusOK, SnapshotLocations{Holders: holders})
	})

	mux.HandleFunc("POST /v1/cluster/report-peer", func(w http.ResponseWriter, r *http.Request) {
		var pr PeerReport
		if !readJSON(w, r, &pr) {
			return
		}
		if pr.Peer == "" || pr.Class == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "peer report needs peer and class"})
			return
		}
		c.handlePeerReport(pr)
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})

	return mux
}

// readJSON / writeJSON / writeErr mirror the service package's helpers (the
// service keeps them unexported; the duplication is smaller than the
// coupling an export would add).
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, service.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, service.ErrFinished):
		status = http.StatusConflict
	default:
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
