package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/harness"
	"pathfinder/internal/service"
)

// The cluster benchmark: the same AES sweep standalone and sharded over 2
// and 4 workers, plus the micro-cost of fetching a peer's warm snapshot
// over HTTP versus the cold/warm job-level cost of training it.

var benchSweep = service.BatchRequest{
	Experiment: "aes",
	Params:     service.Params{Trials: 8, Noise: -1},
	Sweep: &service.Sweep{
		Archs: []string{"alderlake", "skylake"},
		Seeds: []int64{1, 2, 3, 4, 5, 6},
	},
}

// runBenchStandalone executes the sweep on one service and returns wall time.
func runBenchStandalone(t *testing.T) time.Duration {
	t.Helper()
	harness.ResetWarmCache()
	svc := service.New(service.Config{Workers: 4, QueueDepth: 64})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	start := time.Now()
	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, srv.URL+"/v1/batch", benchSweep, &resp); st != http.StatusAccepted {
		t.Fatalf("standalone batch: status %d", st)
	}
	waitReport(t, srv.URL, resp.Batch)
	return time.Since(start)
}

// startBenchNode is startWorkerNode with a bench-grade heartbeat: the
// 20ms cadence the scheduler tests use for snappy lease renewal costs
// ~100 control POSTs per worker per second, which on a shared host drowns
// the per-shape signal the bench is after. 60ms is still 16× faster than
// the production default and well inside the test lease TTL.
func startBenchNode(t *testing.T, coordURL, name string, svcCfg service.Config) *node {
	t.Helper()
	svcCfg.Registry = service.NewRegistry()
	n := &node{svc: service.New(svcCfg)}
	n.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		n.w.Handler().ServeHTTP(rw, r)
	}))
	var err error
	n.w, err = NewWorker(WorkerConfig{
		Name:        name,
		Coordinator: coordURL,
		SelfURL:     n.srv.URL,
		Heartbeat:   60 * time.Millisecond,
	}, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	n.w.Start()
	t.Cleanup(func() {
		n.w.Stop()
		n.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = n.svc.Shutdown(ctx)
	})
	return n
}

// runBenchCluster executes the sweep on an n-worker in-process cluster.
// Total sim capacity is held at 4 lanes regardless of n — the nodes share
// one host, so scaling lanes with n would just oversubscribe the machine;
// keeping capacity fixed makes the n-worker columns measure what changes
// with cluster size (dispatch, heartbeats, transport), not core contention.
func runBenchCluster(t *testing.T, n int) time.Duration {
	t.Helper()
	harness.ResetWarmCache()
	// The inflight cap must not bind: each 6-job arch group affinity-routes
	// to one holder, and a cap below the group size turns the sweep tail
	// into done-ack round trips instead of sim work.
	_, csrv := startCoord(t, CoordinatorConfig{Registry: service.NewRegistry(), MaxInflightPerWorker: 12})
	lanes := 4 / n
	if lanes < 1 {
		lanes = 1
	}
	for i := 0; i < n; i++ {
		startBenchNode(t, csrv.URL, fmt.Sprintf("bench-w%d", i),
			service.Config{Workers: lanes, QueueDepth: 64})
	}
	waitWorkers(t, csrv.URL, n)
	start := time.Now()
	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, csrv.URL+"/v1/batch", benchSweep, &resp); st != http.StatusAccepted {
		t.Fatalf("cluster batch: status %d", st)
	}
	waitReport(t, csrv.URL, resp.Batch)
	return time.Since(start)
}

// TestEmitClusterBenchArtifact writes BENCH_cluster.json at the repo root.
// Gated behind an environment variable so regular test runs stay fast:
//
//	PATHFINDER_EMIT_CLUSTER_BENCH=1 go test ./internal/cluster -run TestEmitClusterBenchArtifact -count=1
//
// Caveat recorded in the artifact: in-process "nodes" share one machine, so
// the cluster columns measure scheduling + transport overhead and scaling
// shape, not cross-host speedup.
func TestEmitClusterBenchArtifact(t *testing.T) {
	if os.Getenv("PATHFINDER_EMIT_CLUSTER_BENCH") == "" {
		t.Skip("set PATHFINDER_EMIT_CLUSTER_BENCH=1 to emit BENCH_cluster.json")
	}

	// Best-of-3 per configuration: on a shared (often single-core) CI host
	// the sweep wall time is ±10% noisy, and the minimum is the cleanest
	// estimate of the scheduling+transport overhead each shape adds.
	bestOf := func(runs int, f func() time.Duration) time.Duration {
		best := f()
		for i := 1; i < runs; i++ {
			if d := f(); d < best {
				best = d
			}
		}
		return best
	}
	standalone := bestOf(3, func() time.Duration { return runBenchStandalone(t) })
	cluster2 := bestOf(3, func() time.Duration { return runBenchCluster(t, 2) })
	cluster4 := bestOf(3, func() time.Duration { return runBenchCluster(t, 4) })

	// Job-level cold-vs-warm: on a fresh single-worker cluster the first job
	// of a warm group trains; the second (affinity-routed, same group)
	// restores the shared snapshot.
	harness.ResetWarmCache()
	_, csrv := startCoord(t, CoordinatorConfig{Registry: service.NewRegistry()})
	n := startWorkerNode(t, csrv.URL, "bench-cold", service.NewRegistry(), service.Config{Workers: 2})
	waitWorkers(t, csrv.URL, 1)
	timeJob := func(seed int64) time.Duration {
		var v JobView
		start := time.Now()
		postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
			Experiment: "aes", Params: service.Params{Trials: 8, Noise: -1, Seed: seed},
		}, &v)
		done := waitJobDone(t, csrv.URL, v.ID)
		if done.State != service.StateDone {
			t.Fatalf("bench job seed %d: %s (%s)", seed, done.State, done.Error)
		}
		return time.Since(start)
	}
	coldJob := timeJob(901)
	warmJob := timeJob(902)

	// Micro-cost of the full snapshot exchange: locate via the coordinator,
	// fetch from the holder, decode, hash-verify.
	var warmKey harness.WarmStateKey
	found := false
	for _, s := range harness.WarmSnapshots() {
		if strings.HasPrefix(s.Key.Kind, "aes-warm") {
			warmKey, found = s.Key, true
			break
		}
	}
	if !found {
		t.Fatal("no aes-warm snapshot cached after the bench jobs")
	}
	peer, err := NewWorker(WorkerConfig{
		Name: "bench-peer", Coordinator: csrv.URL, SelfURL: "http://bench-peer.invalid",
	}, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	const fetches = 20
	fetchStart := time.Now()
	for i := 0; i < fetches; i++ {
		if _, ok := peer.fetchWarm(warmKey); !ok {
			t.Fatal("bench snapshot fetch failed")
		}
	}
	fetchNS := time.Since(fetchStart).Nanoseconds() / fetches

	artifact := map[string]any{
		"benchmark":            "12-job AES sweep (trials=8, noise=0) standalone vs in-process cluster; snapshot fetch vs re-train",
		"sweep_jobs":           12,
		"trials":               8,
		"standalone_ns":        standalone.Nanoseconds(),
		"cluster2_ns":          cluster2.Nanoseconds(),
		"cluster4_ns":          cluster4.Nanoseconds(),
		"cold_job_ns":          coldJob.Nanoseconds(),
		"warm_affinity_job_ns": warmJob.Nanoseconds(),
		"snapshot_fetch_ns":    fetchNS,
		"note": "best of 3 runs per configuration, total sim capacity fixed at 4 lanes across cluster shapes; " +
			"in-process nodes share one host and one warm cache, so cluster columns measure " +
			"scheduling+transport overhead and scaling shape, not cross-host speedup; " +
			"cold_job trains phase-1 + per-trial warm state, warm_affinity_job restores it; " +
			"snapshot_fetch_ns is the full locate+HTTP fetch+decode+hash-verify round trip",
	}
	raw, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_cluster.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, raw)
}
