package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// RPC failure classes, fed into the per-peer breakers and the metrics
// surface. A peer that times out, resets connections, serves 5xx, or ships
// corrupt snapshots is sick in different ways; the classes keep the
// distinction observable even though all of them trip the same breaker.
const (
	rpcFailTimeout   = "timeout"
	rpcFailTransport = "transport"
	rpcFailHTTP      = "http"
	rpcFailCorrupt   = "corrupt"
)

// classifyRPCFailure buckets one failed RPC.
func classifyRPCFailure(err error, status int) string {
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return rpcFailTimeout
		}
		var ne interface{ Timeout() bool }
		if errors.As(err, &ne) && ne.Timeout() {
			return rpcFailTimeout
		}
		return rpcFailTransport
	}
	if status >= 500 {
		return rpcFailHTTP
	}
	return rpcFailTransport
}

// RPCTimeouts are the per-RPC-class context deadlines replacing the old
// flat 10s client timeout: heartbeats are small and frequent (short),
// assign/done/locate control RPCs carry bounded JSON (medium), and snapshot
// fetches scale with the blob — FetchBase covers connection + headers, and
// FetchPerMB extends the deadline once the Content-Length is known.
type RPCTimeouts struct {
	Heartbeat time.Duration // heartbeat + result push; <=0 means 2s
	Control   time.Duration // assign, locate, peer reports; <=0 means 5s
	FetchBase time.Duration // snapshot fetch before headers; <=0 means 10s
	FetchPerMB time.Duration // fetch deadline extension per MB of body; <=0 means 2s
}

// withDefaults fills zero fields.
func (t RPCTimeouts) withDefaults() RPCTimeouts {
	if t.Heartbeat <= 0 {
		t.Heartbeat = 2 * time.Second
	}
	if t.Control <= 0 {
		t.Control = 5 * time.Second
	}
	if t.FetchBase <= 0 {
		t.FetchBase = 10 * time.Second
	}
	if t.FetchPerMB <= 0 {
		t.FetchPerMB = 2 * time.Second
	}
	return t
}

// fetchDeadline sizes a snapshot-fetch deadline to its blob: base plus the
// per-MB extension, rounded up to whole MBs. Unknown lengths (<0) get one
// MB's worth of slack.
func (t RPCTimeouts) fetchDeadline(contentLength int64) time.Duration {
	mbs := int64(1)
	if contentLength > 0 {
		mbs = (contentLength + (1 << 20) - 1) >> 20
	}
	return t.FetchBase + time.Duration(mbs)*t.FetchPerMB
}

// retryBudget is a token bucket shared by every retried RPC a node makes:
// each retry (not first attempts) spends one token. When the bucket is dry
// the retry is skipped, so a partitioned node degrades to one attempt per
// RPC instead of amplifying a sick network with retry storms.
type retryBudget struct {
	mu         sync.Mutex
	tokens     float64
	max        float64
	refillPerS float64
	last       time.Time
	now        func() time.Time

	spent  uint64
	denied uint64
}

// newRetryBudget builds a bucket holding `burst` tokens refilling at
// `perSecond` tokens/s. perSecond <= 0 disables retries entirely (an empty,
// never-refilling budget); burst <= 0 means 2×perSecond.
func newRetryBudget(perSecond, burst float64, now func() time.Time) *retryBudget {
	if now == nil {
		now = time.Now
	}
	if burst <= 0 {
		burst = 2 * perSecond
	}
	return &retryBudget{
		tokens:     burst,
		max:        burst,
		refillPerS: perSecond,
		last:       now(),
		now:        now,
	}
}

// take spends one retry token; false means the budget is exhausted.
func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.refillPerS > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.refillPerS
		if b.tokens > b.max {
			b.tokens = b.max
		}
	}
	b.last = now
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// stats returns the cumulative spend/deny counters.
func (b *retryBudget) stats() (spent, denied uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.denied
}

// defaultHTTPClient is the transport both cluster roles fall back to when
// the caller injects none: http.DefaultTransport's keep-alive pool widened
// past its per-host idle limit of 2, so per-tick assignment batches,
// heartbeats and snapshot fetches reuse TCP connections instead of
// re-dialing — with several workers behind one coordinator the default
// pool churns connections badly enough to show up in sweep wall time.
func defaultHTTPClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 128
	tr.MaxIdleConnsPerHost = 16
	return &http.Client{Transport: tr}
}

// drainBody discards and closes a response body so the transport can reuse
// the connection; nil-safe.
func drainBody(resp *http.Response) {
	if resp == nil || resp.Body == nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
