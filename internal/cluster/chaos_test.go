package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/chaosnet"
	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
)

// The chaos-convergence harness: real coordinator+worker topologies wired
// through one chaosnet.Network, asserting that the cluster's resilience
// machinery (per-peer breakers, retry budgets, hedged fetches, lease
// reassignment, degraded-mode shedding) preserves the byte-identity
// contract under partitions, loss, duplication and corruption.
//
// The chaos fabric covers the intra-cluster links only (coordinator ↔
// workers, worker ↔ worker); the test's own client polls the coordinator
// over a clean connection, standing in for an operator outside the blast
// radius.

func hostport(baseURL string) string {
	return strings.TrimPrefix(baseURL, "http://")
}

// startChaosNode mirrors startWorkerNode with the node's HTTP client routed
// through the chaos fabric. The host:port → name mapping is registered
// before the worker starts, so every request the node ever sends is
// attributed to its topology name.
func startChaosNode(t *testing.T, net *chaosnet.Network, coordURL, name string, reg *service.Registry, wcfg WorkerConfig) *node {
	t.Helper()
	n := &node{svc: service.New(service.Config{Registry: reg, Workers: 2, QueueDepth: 32})}
	n.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		n.w.Handler().ServeHTTP(rw, r)
	}))
	net.SetName(hostport(n.srv.URL), name)
	wcfg.Name = name
	wcfg.Coordinator = coordURL
	wcfg.SelfURL = n.srv.URL
	if wcfg.Heartbeat == 0 {
		wcfg.Heartbeat = 20 * time.Millisecond
	}
	wcfg.HTTPClient = net.Client(name, nil)
	var err error
	n.w, err = NewWorker(wcfg, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	n.w.Start()
	t.Cleanup(func() {
		n.w.Stop()
		n.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = n.svc.Shutdown(ctx)
	})
	return n
}

// standaloneReport runs one batch on a fresh standalone service and returns
// the canonical report bytes — the reference every chaos topology must hit.
func standaloneReport(t *testing.T, req service.BatchRequest) []byte {
	t.Helper()
	svc := service.New(service.Config{Registry: ctestRegistry(), Workers: 2, QueueDepth: 32})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, srv.URL+"/v1/batch", req, &resp); st != http.StatusAccepted {
		t.Fatalf("standalone batch submit: status %d", st)
	}
	return waitReport(t, srv.URL, resp.Batch)
}

// waitFor polls cond until it holds, failing the test after 10s. The chaos
// tests need it because some effects (peer reports, duplicate results)
// complete asynchronously after the observable success path returns.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var chaosSweepReq = service.BatchRequest{
	Experiment: "ctest",
	Sweep: &service.Sweep{
		Archs: []string{"alderlake", "skylake"},
		Seeds: []int64{1, 2, 3, 4, 5, 6},
	},
}

// TestChaosSweepConvergence is the headline acceptance criterion: a
// coordinator+2-worker grid sweep run under scripted directional
// partitions, >=10% per-link request/response loss, latency spikes,
// duplicated deliveries, resets and response corruption still renders a
// report byte-identical to the standalone service, with every job finishing
// exactly once.
func TestChaosSweepConvergence(t *testing.T) {
	want := standaloneReport(t, chaosSweepReq)

	net := chaosnet.New(chaosnet.Config{
		Seed: 42,
		Base: chaosnet.Profile{
			DropRequestProb:  0.12,
			DropResponseProb: 0.10,
			LatencyProb:      0.20,
			LatencyMin:       time.Millisecond,
			LatencyMax:       8 * time.Millisecond,
			DuplicateProb:    0.05,
			ResetProb:        0.05,
			CorruptProb:      0.03,
			TruncateProb:     0.02,
		},
		Schedule: []chaosnet.Rule{
			// Assignment requests 2-4 to w0 hit a partition window: three
			// consecutive failures on the link, opening w0's breaker and
			// exercising quarantine + inflight requeue mid-sweep.
			{From: "coord", To: "w0", FirstReq: 2, LastReq: 4, Partition: true},
			// w1's control plane (heartbeats, result pushes) loses a window
			// too; the worker must ride it out on retries and resends.
			{From: "w1", To: "coord", FirstReq: 3, LastReq: 5, Partition: true},
		},
	})

	_, csrv := startCoord(t, CoordinatorConfig{
		HTTPClient:          net.Client("coord", nil),
		MaxAssigns:          100, // chaos-driven requeues must never exhaust a job
		PeerBreakerCooldown: 300 * time.Millisecond,
	})
	net.SetName(hostport(csrv.URL), "coord")
	startChaosNode(t, net, csrv.URL, "w0", ctestRegistry(), WorkerConfig{})
	startChaosNode(t, net, csrv.URL, "w1", ctestRegistry(), WorkerConfig{})
	waitWorkers(t, csrv.URL, 2)

	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, csrv.URL+"/v1/batch", chaosSweepReq, &resp); st != http.StatusAccepted {
		t.Fatalf("cluster batch submit: status %d", st)
	}
	got := waitReport(t, csrv.URL, resp.Batch)
	if !bytes.Equal(got, want) {
		t.Errorf("chaos sweep report diverges from standalone:\ngot:  %s\nwant: %s", got, want)
	}
	var rep service.Report
	if err := json.Unmarshal(got, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total != 12 || rep.ByState[service.StateDone] != 12 {
		t.Errorf("total %d, by_state %v; want 12 jobs all done", rep.Total, rep.ByState)
	}

	// The chaos actually fired: the scripted partition window is hit
	// deterministically (the first dispatch pass sends w0 at least four
	// assignments), and the probabilistic faults land across the hundreds
	// of control-plane requests a sweep generates.
	stats := net.Stats()
	if stats[chaosnet.FaultPartition] < 3 {
		t.Errorf("partition faults = %d, want >= 3 (scripted window)", stats[chaosnet.FaultPartition])
	}
	var injected uint64
	for _, k := range []chaosnet.FaultKind{
		chaosnet.FaultDropReq, chaosnet.FaultDropResp, chaosnet.FaultLatency,
		chaosnet.FaultDuplicate, chaosnet.FaultReset,
	} {
		injected += stats[k]
	}
	if injected < 3 {
		t.Errorf("probabilistic faults injected = %d (%s), want >= 3", injected, chaosnet.Describe(stats))
	}

	// The scripted window quarantined w0 (three consecutive assignment
	// failures), and the resilience surface reports it.
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_quarantines_total"); n < 1 {
		t.Errorf("quarantines = %v, want >= 1", n)
	}
	t.Logf("chaos faults injected: %s", chaosnet.Describe(stats))
}

// TestChaosPartitionLeaseReassignment is the partitioned-not-killed case:
// a worker holding a job loses both link directions, the lease expires and
// the job is reassigned and finishes exactly once on the survivor; when the
// partition heals, the stale worker's late done result is idempotently
// ignored.
func TestChaosPartitionLeaseReassignment(t *testing.T) {
	release := make(chan struct{})
	gateReg := func(blocking bool) *service.Registry {
		r := ctestRegistry()
		if err := r.Register(service.Experiment{
			Name:        "gate",
			Description: "blocks on one worker until released",
			Run: func(ctx context.Context, p service.Params) (any, cpu.Counters, error) {
				if blocking {
					select {
					case <-release:
					case <-ctx.Done():
						return nil, cpu.Counters{}, ctx.Err()
					}
				}
				return struct {
					Seed int64 `json:"seed"`
				}{p.Seed}, cpu.Counters{}, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		return r
	}

	net := chaosnet.New(chaosnet.Config{Seed: 1}) // manual partitions only
	_, csrv := startCoord(t, CoordinatorConfig{
		Registry:     gateReg(false),
		LeaseTTL:     150 * time.Millisecond,
		WorkerExpiry: 250 * time.Millisecond,
		HTTPClient:   net.Client("coord", nil),
	})
	net.SetName(hostport(csrv.URL), "coord")
	// Sorted-name tie-breaking pins the first assignment onto "a-part".
	wedged := startChaosNode(t, net, csrv.URL, "a-part", gateReg(true), WorkerConfig{})
	startChaosNode(t, net, csrv.URL, "b-live", gateReg(false), WorkerConfig{})
	waitWorkers(t, csrv.URL, 2)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "gate", Params: service.Params{Seed: 7},
	}, &v)
	waitFor(t, "a-part to hold the job", func() bool {
		return len(wedged.svc.List(service.ListFilter{})) > 0
	})

	// Cut both directions: the worker keeps running (unlike a crash) but
	// can neither heartbeat nor receive anything.
	net.SetPartition("a-part", "coord", true)
	net.SetPartition("coord", "a-part", true)

	done := waitJobDone(t, csrv.URL, v.ID)
	if done.State != service.StateDone {
		t.Fatalf("job state %s (%s), want done", done.State, done.Error)
	}
	if done.Worker != "b-live" {
		t.Errorf("job finished on %q, want reassignment to b-live", done.Worker)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_lease_reassignments_total"); n < 1 {
		t.Errorf("lease reassignments = %v, want >= 1", n)
	}

	// Let the partitioned copy finish too — a genuine duplicate done, not a
	// relayed cancellation — then heal and require it to be swallowed.
	close(release)
	waitFor(t, "the partitioned copy to finish locally", func() bool {
		for _, lv := range wedged.svc.List(service.ListFilter{Experiment: "gate"}) {
			if lv.State == service.StateDone {
				return true
			}
		}
		return false
	})
	dup0 := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_duplicate_results_total")
	net.SetPartition("a-part", "coord", false)
	net.SetPartition("coord", "a-part", false)
	waitFor(t, "the late duplicate done to be ignored", func() bool {
		return scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_duplicate_results_total") > dup0
	})

	// Exactly one terminal result mutated the job, and the credited worker
	// did not change under the late report.
	var final JobView
	getJSON(t, csrv.URL+"/v1/jobs/"+v.ID, &final)
	if final.State != service.StateDone || final.Worker != "b-live" {
		t.Errorf("after heal: state %s on %q, want done on b-live", final.State, final.Worker)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", `pathfinderd_cluster_results_total{state="done"}`); n != 1 {
		t.Errorf("done results = %v, want exactly 1", n)
	}
}

// chaosHolder builds an unstarted worker whose persistent snapshot store
// holds the given snapshot, served over its real HTTP handler — a snapshot
// holder without the weight of live heartbeats or training.
func chaosHolder(t *testing.T, name, key string, snap *cpu.Snapshot) *httptest.Server {
	t.Helper()
	st, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	st.Save(key, snap, nil)
	svc := service.New(service.Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	w, err := NewWorker(WorkerConfig{
		Name: name, Coordinator: "http://coord.invalid", SelfURL: "http://" + name + ".invalid",
		SnapStore: st,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// advertiseHolder registers a holder with the coordinator by posting a
// heartbeat on its behalf, pinning the worker directory and warm-key index
// without a live heartbeat loop.
func advertiseHolder(t *testing.T, coordURL, name, addr, key, hash string) {
	t.Helper()
	var reply HeartbeatReply
	if st := postJSON(t, coordURL+"/v1/cluster/heartbeat", Heartbeat{
		Worker: name, Addr: addr, Capacity: 1,
		WarmKeys: []WarmAd{{Key: key, Hash: hash}},
	}, &reply); st != http.StatusOK {
		t.Fatalf("heartbeat for %s: status %d", name, st)
	}
}

// TestChaosHedgedFetchWins: the first warm-fetch leg loses its response in
// flight (the holder served it — the drop is downstream), the hedge leg
// retries and delivers, and the win is visible on the worker's metrics.
func TestChaosHedgedFetchWins(t *testing.T) {
	m := cpu.New(cpu.Options{Seed: 11})
	snap := m.Snapshot()
	const key = "chaos-hedge|Alder Lake|194|0000000000000abc|11|0"
	hash := fmt.Sprintf("%016x", snap.Hash())

	net := chaosnet.New(chaosnet.Config{
		Seed: 5,
		Schedule: []chaosnet.Rule{
			// Exactly the first fetch on the w1→w0 link loses its response.
			{From: "w1", To: "w0", FirstReq: 1, LastReq: 1,
				Profile: &chaosnet.Profile{DropResponseProb: 1}},
		},
	})
	_, csrv := startCoord(t, CoordinatorConfig{})
	net.SetName(hostport(csrv.URL), "coord")
	w0srv := chaosHolder(t, "w0", key, snap)
	net.SetName(hostport(w0srv.URL), "w0")
	advertiseHolder(t, csrv.URL, "w0", w0srv.URL, key, hash)

	svc := service.New(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	w1, err := NewWorker(WorkerConfig{
		Name: "w1", Coordinator: csrv.URL, SelfURL: "http://w1.invalid",
		HTTPClient: net.Client("w1", nil),
		HedgeDelay: 20 * time.Millisecond,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	w1srv := httptest.NewServer(w1.Handler())
	defer w1srv.Close()

	wk, err := harness.ParseWarmStateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w1.fetchWarm(wk)
	if !ok {
		t.Fatal("hedged fetch failed outright; the hedge leg should have delivered")
	}
	if got.Hash() != snap.Hash() {
		t.Fatalf("fetched snapshot hash %#x, want %#x", got.Hash(), snap.Hash())
	}
	if n := scrapeMetric(t, w1srv.URL+"/metrics", `pathfinderd_worker_hedge_total{outcome="win"}`); n < 1 {
		t.Errorf("hedge wins = %v, want >= 1", n)
	}
	if n := net.Stats()[chaosnet.FaultDropResp]; n < 1 {
		t.Errorf("drop_response faults = %d, want >= 1", n)
	}
	// Drop-response semantics: the holder served both legs — the first
	// response died in transit, not on the server.
	if n := scrapeMetric(t, w0srv.URL+"/metrics", "pathfinderd_worker_snapshot_serves_total"); n < 2 {
		t.Errorf("holder serves = %v, want >= 2 (dropped leg reached it)", n)
	}
}

// TestChaosCorruptFetchMarksPeerAndFailsOver is the transport-edge
// corruption satellite: every snapshot byte stream from one holder is
// corrupted in flight, the fetching worker rejects it against the wire
// envelope, counts warm_fetch_corrupt, reports the peer — quarantining it —
// and the hedge leg retries the next holder successfully.
func TestChaosCorruptFetchMarksPeerAndFailsOver(t *testing.T) {
	m := cpu.New(cpu.Options{Seed: 13})
	snap := m.Snapshot()
	const key = "chaos-corrupt|Alder Lake|194|0000000000000abc|13|0"
	hash := fmt.Sprintf("%016x", snap.Hash())

	net := chaosnet.New(chaosnet.Config{
		Seed: 9,
		Schedule: []chaosnet.Rule{
			// Everything w0 sends w1 arrives damaged.
			{From: "w1", To: "w0", Profile: &chaosnet.Profile{CorruptProb: 1}},
		},
	})
	_, csrv := startCoord(t, CoordinatorConfig{
		PeerBreakerThreshold: 1, // one corruption report quarantines the peer
	})
	net.SetName(hostport(csrv.URL), "coord")
	w0srv := chaosHolder(t, "w0", key, snap)
	w2srv := chaosHolder(t, "w2", key, snap)
	net.SetName(hostport(w0srv.URL), "w0")
	net.SetName(hostport(w2srv.URL), "w2")
	// w0 heartbeats last: freshest-first ranking (ties broken by name) pins
	// it as the primary leg, so the corrupt link is always tried first.
	advertiseHolder(t, csrv.URL, "w2", w2srv.URL, key, hash)
	advertiseHolder(t, csrv.URL, "w0", w0srv.URL, key, hash)

	svc := service.New(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	w1, err := NewWorker(WorkerConfig{
		Name: "w1", Coordinator: csrv.URL, SelfURL: "http://w1.invalid",
		HTTPClient: net.Client("w1", nil),
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	w1srv := httptest.NewServer(w1.Handler())
	defer w1srv.Close()

	corrupt0 := harness.WarmFetchCorrupt()
	wk, err := harness.ParseWarmStateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w1.fetchWarm(wk)
	if !ok {
		t.Fatal("fetch failed outright; the clean holder should have delivered")
	}
	if got.Hash() != snap.Hash() {
		t.Fatalf("fetched snapshot hash %#x, want %#x", got.Hash(), snap.Hash())
	}
	if n := net.Stats()[chaosnet.FaultCorrupt]; n < 1 {
		t.Fatalf("corrupt faults = %d, want >= 1", n)
	}

	// The corrupt delivery is accounted (counter + metric) and the peer
	// report lands at the coordinator, which quarantines w0 and stops
	// offering it as a holder. The report is posted from the losing fetch
	// leg's goroutine, so poll rather than assert immediately.
	waitFor(t, "warm_fetch_corrupt to be counted", func() bool {
		return harness.WarmFetchCorrupt() > corrupt0
	})
	waitFor(t, "w0 to be quarantined", func() bool {
		var sv StatusView
		getJSON(t, csrv.URL+"/cluster/status", &sv)
		for _, ws := range sv.Workers {
			if ws.Name == "w0" {
				return ws.Quarantined
			}
		}
		return false
	})
	if n := scrapeMetric(t, w1srv.URL+"/metrics", "pathfinderd_worker_warm_fetch_corrupt_total"); n < 1 {
		t.Errorf("worker warm_fetch_corrupt = %v, want >= 1", n)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", `pathfinderd_cluster_peer_reports_total{class="corrupt"}`); n < 1 {
		t.Errorf("peer reports (corrupt) = %v, want >= 1", n)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_quarantines_total"); n < 1 {
		t.Errorf("quarantines = %v, want >= 1", n)
	}

	var locs SnapshotLocations
	st := getJSON(t, csrv.URL+"/v1/cluster/snapshots?key="+url.QueryEscape(key)+"&from=w1", &locs)
	if st != http.StatusOK || len(locs.Holders) != 1 || locs.Holders[0].Worker != "w2" {
		t.Errorf("post-quarantine holders = %+v (status %d), want exactly w2", locs.Holders, st)
	}
}

// TestChaosDegradedModeConvergence: with its only worker fully partitioned,
// the coordinator quarantines it and sheds the sweep to in-process
// execution — byte-identical to standalone — then recovers the worker
// through a probe once the partition heals.
func TestChaosDegradedModeConvergence(t *testing.T) {
	want := standaloneReport(t, sweepReq)

	net := chaosnet.New(chaosnet.Config{Seed: 3})
	_, csrv := startCoord(t, CoordinatorConfig{
		HTTPClient:          net.Client("coord", nil),
		DegradedAfter:       200 * time.Millisecond,
		PeerBreakerCooldown: time.Second,
		MaxAssigns:          20,
	})
	net.SetName(hostport(csrv.URL), "coord")
	startChaosNode(t, net, csrv.URL, "w0", ctestRegistry(), WorkerConfig{})
	waitWorkers(t, csrv.URL, 1)

	net.SetPartition("coord", "w0", true)
	net.SetPartition("w0", "coord", true)

	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, csrv.URL+"/v1/batch", sweepReq, &resp); st != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", st)
	}
	got := waitReport(t, csrv.URL, resp.Batch)
	if !bytes.Equal(got, want) {
		t.Errorf("degraded-mode report diverges from standalone:\ngot:  %s\nwant: %s", got, want)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_degraded_runs_total"); n != 6 {
		t.Errorf("degraded runs = %v, want 6", n)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_degraded"); n != 1 {
		t.Errorf("degraded gauge = %v, want 1 while shedding", n)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_quarantines_total"); n < 1 {
		t.Errorf("quarantines = %v, want >= 1", n)
	}

	// Heal. The worker rejoins on its next heartbeat; once the breaker
	// cooldown lapses a probe assignment lands on it, closing the breaker
	// and ending degraded mode. Early submissions may still run in-process
	// — keep submitting until one executes on the worker.
	net.SetPartition("coord", "w0", false)
	net.SetPartition("w0", "coord", false)

	recovered := false
	deadline := time.Now().Add(15 * time.Second)
	for !recovered && time.Now().Before(deadline) {
		var v JobView
		postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
			Experiment: "ctest", Params: service.Params{Arch: "alderlake", Seed: 99},
		}, &v)
		done := waitJobDone(t, csrv.URL, v.ID)
		recovered = done.Worker == "w0"
	}
	if !recovered {
		t.Fatal("no job returned to the healed worker; probe recovery failed")
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_probes_total"); n < 1 {
		t.Errorf("probes = %v, want >= 1", n)
	}
	var sv StatusView
	getJSON(t, csrv.URL+"/cluster/status", &sv)
	if sv.Degraded {
		t.Error("coordinator still degraded after the worker recovered")
	}
	for _, ws := range sv.Workers {
		if ws.Name == "w0" && ws.Quarantined {
			t.Error("w0 still quarantined after a successful probe")
		}
	}
}

var chaosFuzzReq = service.BatchRequest{
	Experiment: "ctest",
	Sweep: &service.Sweep{
		Archs: []string{"alderlake", "skylake"},
		Seeds: []int64{1, 2},
	},
}

var (
	chaosRefOnce sync.Once
	chaosRef     []byte
)

func chaosFuzzReference(t *testing.T) []byte {
	chaosRefOnce.Do(func() {
		chaosRef = standaloneReport(t, chaosFuzzReq)
	})
	if chaosRef == nil {
		t.Fatal("standalone reference report unavailable")
	}
	return chaosRef
}

// FuzzChaosSchedule: arbitrary bounded fault schedules — probabilistic loss
// up to 25% per kind plus one scripted finite partition window on a random
// link — must never break report byte-identity or deadlock the coordinator
// (waitReport's deadline doubles as the deadlock detector).
func FuzzChaosSchedule(f *testing.F) {
	f.Add(int64(1), byte(12), byte(10), byte(8), byte(4), byte(3), byte(2), byte(0), byte(1), byte(2))
	f.Add(int64(7), byte(25), byte(0), byte(0), byte(0), byte(0), byte(0), byte(3), byte(4), byte(3))
	f.Add(int64(99), byte(5), byte(20), byte(15), byte(10), byte(8), byte(9), byte(1), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, seed int64, dropReq, dropResp, lat, reset, dup, corrupt, link, first, span byte) {
		base := chaosnet.Profile{
			DropRequestProb:  float64(dropReq%26) / 100,
			DropResponseProb: float64(dropResp%26) / 100,
			LatencyProb:      float64(lat%21) / 100,
			LatencyMax:       5 * time.Millisecond,
			ResetProb:        float64(reset%16) / 100,
			DuplicateProb:    float64(dup%16) / 100,
			CorruptProb:      float64(corrupt%11) / 100,
		}
		// The partition window is bounded by request index, so every link
		// always heals: unbounded partitions would make loss of liveness
		// correct behaviour and the fuzz target meaningless.
		links := [][2]string{{"coord", "w0"}, {"coord", "w1"}, {"w0", "coord"}, {"w1", "coord"}}
		pick := links[int(link)%len(links)]
		fr := 1 + int(first%6)
		rule := chaosnet.Rule{
			From: pick[0], To: pick[1], Partition: true,
			FirstReq: fr, LastReq: fr + int(span%4),
		}

		net := chaosnet.New(chaosnet.Config{Seed: seed, Base: base, Schedule: []chaosnet.Rule{rule}})
		_, csrv := startCoord(t, CoordinatorConfig{
			HTTPClient:          net.Client("coord", nil),
			MaxAssigns:          100,
			LeaseTTL:            300 * time.Millisecond,
			PeerBreakerCooldown: 200 * time.Millisecond,
		})
		net.SetName(hostport(csrv.URL), "coord")
		startChaosNode(t, net, csrv.URL, "w0", ctestRegistry(), WorkerConfig{})
		startChaosNode(t, net, csrv.URL, "w1", ctestRegistry(), WorkerConfig{})

		var resp struct {
			Batch string `json:"batch"`
		}
		if st := postJSON(t, csrv.URL+"/v1/batch", chaosFuzzReq, &resp); st != http.StatusAccepted {
			t.Fatalf("batch submit: status %d", st)
		}
		got := waitReport(t, csrv.URL, resp.Batch)
		if want := chaosFuzzReference(t); !bytes.Equal(got, want) {
			t.Errorf("report diverges under chaos (%s):\ngot:  %s\nwant: %s",
				chaosnet.Describe(net.Stats()), got, want)
		}
		var rep service.Report
		if err := json.Unmarshal(got, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Total != 4 || rep.ByState[service.StateDone] != 4 {
			t.Errorf("total %d, by_state %v; want 4 jobs all done", rep.Total, rep.ByState)
		}
	})
}
