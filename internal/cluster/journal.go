package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/service"
)

// The coordinator journal: an append-only JSONL write-ahead log of cluster
// job transitions, mirroring the service journal's shape and recovery
// philosophy. Every submission, assignment, requeue and terminal result is
// recorded before it is acknowledged, so a coordinator crash loses no
// accepted work: on restart, terminal jobs are restored intact and
// everything else re-enters the pending queue. Workers keep resending
// unacked results across the restart, so jobs that finished during the
// outage converge without re-execution; jobs reassigned redundantly produce
// identical bytes anyway — the drivers are deterministic — and the first
// terminal result wins.
type coordRecord struct {
	Op   string    `json:"op"` // submit | assign | requeue | finish
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// submit
	Experiment string          `json:"experiment,omitempty"`
	Params     *service.Params `json:"params,omitempty"`
	Batch      string          `json:"batch,omitempty"`
	TimeoutMS  int64           `json:"timeout_ms,omitempty"`

	// assign | requeue
	Worker string `json:"worker,omitempty"`
	Reason string `json:"reason,omitempty"`

	// finish
	State  service.State   `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Stats  *cpu.Counters   `json:"stats,omitempty"`
}

// Coordinator journal operations.
const (
	copSubmit  = "submit"
	copAssign  = "assign"
	copRequeue = "requeue"
	copFinish  = "finish"
)

// coordJournal serializes appends; the coordinator additionally appends
// while holding its state lock, so journal order matches transition order.
type coordJournal struct {
	mu sync.Mutex
	f  *os.File
}

func openCoordJournal(path string) (*coordJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening coordinator journal: %w", err)
	}
	return &coordJournal{f: f}, nil
}

func (j *coordJournal) append(rec coordRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(raw, '\n'))
	return err
}

func (j *coordJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// replayedCoordJob reconstructs one cluster job from its journal records.
type replayedCoordJob struct {
	id         string
	experiment string
	params     service.Params
	batch      string
	timeout    time.Duration
	submitted  time.Time

	finished bool
	finState service.State
	finErr   string
	result   json.RawMessage
	stats    cpu.Counters
	finTime  time.Time
}

// replayCoordJournal reads the journal at path, reconstructing jobs in
// submission order plus the highest sequence number used by a job or batch
// ID. Corrupt lines — the tail of a mid-append crash — are skipped with a
// warning, never an error. Assignment records restore nothing: a crash
// invalidates every lease, so non-terminal jobs re-enter pending unassigned
// with a fresh assignment budget.
func replayCoordJournal(path string, log *slog.Logger) (jobs []*replayedCoordJob, maxSeq uint64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: reading coordinator journal: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*replayedCoordJob)
	bumpSeq := func(id, prefix string) {
		var n uint64
		if _, err := fmt.Sscanf(id, prefix+"-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec coordRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			log.Warn("coordinator journal: skipping corrupt record", "line", line, "err", err)
			continue
		}
		switch rec.Op {
		case copSubmit:
			if rec.Job == "" || rec.Experiment == "" {
				log.Warn("coordinator journal: skipping bare submit", "line", line)
				continue
			}
			if _, dup := byID[rec.Job]; dup {
				log.Warn("coordinator journal: skipping duplicate submit", "line", line, "job", rec.Job)
				continue
			}
			r := &replayedCoordJob{
				id:         rec.Job,
				experiment: rec.Experiment,
				batch:      rec.Batch,
				timeout:    time.Duration(rec.TimeoutMS) * time.Millisecond,
				submitted:  rec.Time,
			}
			if rec.Params != nil {
				r.params = *rec.Params
			}
			byID[rec.Job] = r
			jobs = append(jobs, r)
			bumpSeq(rec.Job, "cjob")
			if rec.Batch != "" {
				bumpSeq(rec.Batch, "cbatch")
			}
		case copAssign, copRequeue:
			if byID[rec.Job] == nil {
				log.Warn("coordinator journal: skipping stray record", "line", line, "op", rec.Op, "job", rec.Job)
			}
		case copFinish:
			r := byID[rec.Job]
			if r == nil || r.finished {
				log.Warn("coordinator journal: skipping stray finish", "line", line, "job", rec.Job)
				continue
			}
			if !terminal(rec.State) {
				log.Warn("coordinator journal: skipping non-terminal finish", "line", line, "job", rec.Job, "state", string(rec.State))
				continue
			}
			r.finished = true
			r.finState = rec.State
			r.finErr = rec.Error
			r.result = rec.Result
			r.finTime = rec.Time
			if rec.Stats != nil {
				r.stats = *rec.Stats
			}
		default:
			log.Warn("coordinator journal: skipping unknown op", "line", line, "op", rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		log.Warn("coordinator journal: stopped before end of file", "line", line, "err", err)
	}
	return jobs, maxSeq, nil
}
