package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/service"
)

// CoordinatorConfig tunes a Coordinator. The zero value is usable: default
// lease and dispatch timing, the standard registry, a discarding logger,
// and no persistence.
type CoordinatorConfig struct {
	Registry *service.Registry // experiment registry; nil means NewRegistry()
	Logger   *slog.Logger      // nil discards
	Clock    func() time.Time  // test hook; nil means time.Now

	// LeaseTTL is how long an assignment stays owned without a heartbeat
	// listing the job. <=0 means 10s.
	LeaseTTL time.Duration
	// WorkerExpiry is how long after its last heartbeat a worker is still
	// assignable. <=0 means 3×LeaseTTL.
	WorkerExpiry time.Duration
	// DispatchEvery is the scheduling tick. <=0 means 50ms. Submissions,
	// results and heartbeats additionally kick the dispatcher immediately.
	DispatchEvery time.Duration
	// MaxAssigns bounds how many accepted assignments one job may consume
	// (initial assignment plus lease-expiry reassignments) before it is
	// finalized failed. <=0 means 3.
	MaxAssigns int
	// MaxInflightPerWorker bounds the leases one worker may hold — the
	// coordinator-side queue bound that keeps a sweep from piling onto one
	// node. <=0 means 4.
	MaxInflightPerWorker int
	// MaxPending bounds the unassigned queue. <=0 means 4096.
	MaxPending int
	// DefaultTimeout is the per-job timeout when a submission names none.
	// <=0 means 2 minutes.
	DefaultTimeout time.Duration

	// DataDir enables the coordinator journal: every job transition is
	// appended to <DataDir>/coordinator.jsonl and replayed on startup.
	DataDir string

	// HTTPClient performs assignments; nil uses a plain client (per-RPC
	// deadlines come from Timeouts, not a flat client timeout).
	HTTPClient *http.Client

	// Timeouts are the per-RPC-class context deadlines for coordinator→
	// worker calls. Zero fields take the documented defaults.
	Timeouts RPCTimeouts

	// PeerBreakerThreshold is the consecutive assignment-path failures
	// (transport errors, timeouts, 5xx, reported corrupt snapshots — not
	// 429 backpressure) after which a worker's breaker opens and the worker
	// is quarantined: skipped by the scheduler, its in-flight leases
	// requeued immediately. <=0 means 3.
	PeerBreakerThreshold int
	// PeerBreakerCooldown is how long a quarantined worker waits before the
	// scheduler admits one probe assignment. <=0 means 5s.
	PeerBreakerCooldown time.Duration

	// DegradedAfter is how long the pending queue may sit with no
	// assignable worker before the coordinator sheds to degraded mode and
	// runs pending jobs in-process (deterministic drivers make the results
	// byte-identical to worker execution). <=0 disables degraded mode.
	DegradedAfter time.Duration
}

// workerState is one worker's live record, built entirely from heartbeats.
type workerState struct {
	name      string
	addr      string
	lastSeen  time.Time
	inflight  map[string]struct{} // cluster job IDs under lease here
	queue     int
	capacity  int
	saturated bool              // last assignment got 429; cleared by the next heartbeat
	warm      map[string]string // warm key → snapshot content hash
}

// clusterJob is the coordinator's mutable job record, guarded by
// Coordinator.mu past the immutable header.
type clusterJob struct {
	id         string
	experiment string
	params     service.Params // resolved
	batch      string
	timeout    time.Duration

	state           service.State
	submitted       time.Time
	started         time.Time
	finished        time.Time
	assignedTo      string
	leaseExpiry     time.Time
	assigns         int // accepted assignments consumed
	workerAttempts  int // attempts the finishing worker reported
	result          json.RawMessage
	errMsg          string
	stats           cpu.Counters
	cancelRequested bool
}

// view projects the job; caller holds Coordinator.mu.
func (j *clusterJob) view() JobView {
	v := JobView{JobView: service.JobView{
		ID:         j.id,
		Experiment: j.experiment,
		Params:     j.params,
		Batch:      j.batch,
		State:      j.state,
		Submitted:  j.submitted,
		Attempts:   j.workerAttempts,
		Result:     j.result,
		Error:      j.errMsg,
	}, Worker: j.assignedTo}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		if !j.started.IsZero() {
			v.DurationMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	if j.stats != (cpu.Counters{}) {
		s := j.stats
		v.SimStats = &s
	}
	return v
}

// Coordinator owns the cluster job table, the pending queue, the worker
// directory, and the dispatch loop that pushes assignments to workers.
type Coordinator struct {
	cfg     CoordinatorConfig
	reg     *service.Registry
	log     *slog.Logger
	now     func() time.Time
	client  *http.Client
	metrics *coordMetrics
	journal *coordJournal // nil without DataDir
	peers   *service.KeyedBreaker

	mu            sync.Mutex
	jobs          map[string]*clusterJob
	order         []string // submission order
	pending       []string // unassigned job IDs, FIFO
	workers       map[string]*workerState
	affinity      map[string]map[string]time.Time // warm group → worker → last success
	seq           uint64
	closed        bool
	starvedSince  time.Time // pending jobs but no assignable worker since
	degraded      bool      // currently shedding to in-process execution
	localInflight int       // jobs running in-process under degraded mode

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds a coordinator, replays its journal when DataDir is
// set, and starts the dispatch loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Registry == nil {
		cfg.Registry = service.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.WorkerExpiry <= 0 {
		cfg.WorkerExpiry = 3 * cfg.LeaseTTL
	}
	if cfg.DispatchEvery <= 0 {
		cfg.DispatchEvery = 50 * time.Millisecond
	}
	if cfg.MaxAssigns <= 0 {
		cfg.MaxAssigns = 3
	}
	if cfg.MaxInflightPerWorker <= 0 {
		cfg.MaxInflightPerWorker = 4
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Minute
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = defaultHTTPClient()
	}
	cfg.Timeouts = cfg.Timeouts.withDefaults()
	if cfg.PeerBreakerThreshold <= 0 {
		cfg.PeerBreakerThreshold = 3
	}
	if cfg.PeerBreakerCooldown <= 0 {
		cfg.PeerBreakerCooldown = 5 * time.Second
	}

	c := &Coordinator{
		cfg:      cfg,
		reg:      cfg.Registry,
		log:      cfg.Logger,
		now:      cfg.Clock,
		client:   cfg.HTTPClient,
		metrics:  newCoordMetrics(),
		peers:    service.NewKeyedBreaker("peer", cfg.PeerBreakerThreshold, cfg.PeerBreakerCooldown, cfg.Clock),
		jobs:     make(map[string]*clusterJob),
		workers:  make(map[string]*workerState),
		affinity: make(map[string]map[string]time.Time),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}

	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("cluster: creating data dir: %w", err)
		}
		path := filepath.Join(cfg.DataDir, "coordinator.jsonl")
		replayed, maxSeq, err := replayCoordJournal(path, cfg.Logger)
		if err != nil {
			return nil, err
		}
		if c.journal, err = openCoordJournal(path); err != nil {
			return nil, err
		}
		c.seq = maxSeq
		recovered := 0
		for _, r := range replayed {
			j := &clusterJob{
				id:         r.id,
				experiment: r.experiment,
				params:     r.params,
				batch:      r.batch,
				timeout:    r.timeout,
				submitted:  r.submitted,
			}
			if j.timeout <= 0 {
				j.timeout = cfg.DefaultTimeout
			}
			if r.finished {
				j.state = r.finState
				j.errMsg = r.finErr
				j.result = r.result
				j.stats = r.stats
				j.finished = r.finTime
				j.started = r.finTime
			} else {
				j.state = service.StatePending
				c.pending = append(c.pending, j.id)
				recovered++
			}
			c.jobs[j.id] = j
			c.order = append(c.order, j.id)
		}
		c.metrics.add(func(m *coordMetrics) { m.jobsRecovered += uint64(recovered) })
		c.log.Info("coordinator journal replayed", "jobs", len(replayed), "recovered", recovered)
	}

	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Shutdown stops admission and the dispatch loop. Workers keep running
// their in-flight jobs; their results land in the journal of the next
// coordinator incarnation via the worker resend loop.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: coordinator Shutdown called twice")
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		<-done
	}
	if c.journal != nil {
		if cerr := c.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// kickDispatch nudges the loop without blocking.
func (c *Coordinator) kickDispatch() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// loop is the scheduling goroutine: expire leases, then dispatch.
func (c *Coordinator) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.DispatchEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.kick:
		}
		c.expireLeases()
		c.dispatch()
	}
}

// appendJournal logs rather than fails, mirroring the service journal.
func (c *Coordinator) appendJournal(rec coordRecord) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(rec); err != nil {
		c.log.Warn("coordinator journal append failed", "op", rec.Op, "job", rec.Job, "err", err)
	}
}

// Submit validates against the registry, records the job and queues it for
// assignment. Mirrors service.Service.Submit semantics.
func (c *Coordinator) Submit(experiment string, p service.Params, batch string, timeout time.Duration) (JobView, error) {
	resolved, err := c.reg.Resolve(experiment, p)
	if err != nil {
		return JobView{}, err
	}
	if timeout <= 0 {
		timeout = c.cfg.DefaultTimeout
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return JobView{}, service.ErrDraining
	}
	if len(c.pending) >= c.cfg.MaxPending {
		c.mu.Unlock()
		return JobView{}, service.ErrQueueFull
	}
	c.seq++
	j := &clusterJob{
		id:         fmt.Sprintf("cjob-%06d", c.seq),
		experiment: experiment,
		params:     resolved,
		batch:      batch,
		timeout:    timeout,
		state:      service.StatePending,
		submitted:  c.now(),
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.pending = append(c.pending, j.id)
	c.appendJournal(coordRecord{
		Op: copSubmit, Job: j.id, Time: j.submitted,
		Experiment: experiment, Params: &resolved, Batch: batch,
		TimeoutMS: timeout.Milliseconds(),
	})
	v := j.view()
	c.mu.Unlock()

	c.metrics.add(func(m *coordMetrics) { m.submitted++ })
	c.kickDispatch()
	c.log.Info("cluster job submitted", "job", j.id, "experiment", experiment, "batch", batch)
	return v, nil
}

// SubmitSweep expands archs × seeds over base params into one batch,
// mirroring service.Service.SubmitSweep.
func (c *Coordinator) SubmitSweep(experiment string, base service.Params, archs []string, seeds []int64, timeout time.Duration) (string, []JobView, error) {
	if len(archs) == 0 {
		archs = []string{base.Arch}
	}
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	for _, a := range archs {
		if _, err := service.ArchConfig(a); err != nil {
			return "", nil, err
		}
	}
	if _, err := c.reg.Resolve(experiment, base); err != nil {
		return "", nil, err
	}
	if n := len(archs) * len(seeds); n > c.cfg.MaxPending {
		return "", nil, fmt.Errorf("%w: sweep of %d jobs exceeds pending bound %d", service.ErrQueueFull, n, c.cfg.MaxPending)
	}

	c.mu.Lock()
	c.seq++
	batch := fmt.Sprintf("cbatch-%06d", c.seq)
	c.mu.Unlock()

	views := make([]JobView, 0, len(archs)*len(seeds))
	for _, a := range archs {
		for _, seed := range seeds {
			p := base
			p.Arch = a
			p.Seed = seed
			v, err := c.Submit(experiment, p, batch, timeout)
			if err != nil {
				return batch, views, err
			}
			views = append(views, v)
		}
	}
	return batch, views, nil
}

// Get returns one job's view.
func (c *Coordinator) Get(id string) (JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobView{}, service.ErrNotFound
	}
	return j.view(), nil
}

// List returns matching jobs in submission order.
func (c *Coordinator) List(f service.ListFilter) []JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobView, 0, len(c.order))
	for _, id := range c.order {
		j := c.jobs[id]
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Batch != "" && j.batch != f.Batch {
			continue
		}
		if f.Experiment != "" && j.experiment != f.Experiment {
			continue
		}
		out = append(out, j.view())
	}
	return out
}

// Cancel aborts a job: an unassigned pending job finalizes immediately; an
// assigned job is cancelled on its worker through the next heartbeat reply
// and finalizes when the worker reports the cancelled result.
func (c *Coordinator) Cancel(id string) (JobView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobView{}, service.ErrNotFound
	}
	if terminal(j.state) {
		return j.view(), service.ErrFinished
	}
	j.cancelRequested = true
	if j.assignedTo == "" {
		c.finalizeLocked(j, service.StateCancelled, "", nil, cpu.Counters{}, 0)
	}
	return j.view(), nil
}

// finalizeLocked moves a job to a terminal state. Caller holds c.mu.
func (c *Coordinator) finalizeLocked(j *clusterJob, st service.State, errMsg string, result json.RawMessage, stats cpu.Counters, workerAttempts int) {
	j.state = st
	j.errMsg = errMsg
	j.result = result
	j.stats = stats
	j.workerAttempts = workerAttempts
	j.finished = c.now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	// assignedTo is kept: a terminal job's view shows which worker ran it
	// (the scheduler ignores terminal jobs, so the stale lease is inert).
	j.leaseExpiry = time.Time{}
	c.appendJournal(coordRecord{
		Op: copFinish, Job: j.id, Time: j.finished,
		State: st, Error: errMsg, Result: result, Stats: statsPtr(stats),
	})
}

func statsPtr(s cpu.Counters) *cpu.Counters {
	if s == (cpu.Counters{}) {
		return nil
	}
	return &s
}

// affinityGroup is the warm-routing key: jobs in the same group share
// trainable warm state (the harness warm cache keys per-trial snapshots by
// kind/arch/program/noise; within one experiment the program is fixed, so
// experiment + canonical arch + noise identifies the reusable state).
func affinityGroup(experiment string, p service.Params) string {
	arch := p.Arch
	if cfg, err := service.ArchConfig(p.Arch); err == nil {
		arch = cfg.Name
	}
	return fmt.Sprintf("%s|%s|%g", experiment, arch, p.Noise)
}

// noteAffinityLocked records a successful completion for warm routing.
func (c *Coordinator) noteAffinityLocked(j *clusterJob, worker string) {
	g := affinityGroup(j.experiment, j.params)
	byWorker := c.affinity[g]
	if byWorker == nil {
		byWorker = make(map[string]time.Time)
		c.affinity[g] = byWorker
	}
	byWorker[worker] = c.now()
}

// expireLeases requeues jobs whose lease lapsed and prunes workers that
// stopped heartbeating (requeuing their leases promptly rather than waiting
// for each lease to lapse on its own).
func (c *Coordinator) expireLeases() {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()

	for name, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.WorkerExpiry {
			continue
		}
		for id := range w.inflight {
			if j := c.jobs[id]; j != nil && !terminal(j.state) && j.assignedTo == name {
				c.requeueLocked(j, fmt.Sprintf("worker %s expired", name))
			}
		}
		delete(c.workers, name)
		c.log.Warn("worker expired", "worker", name, "last_seen", w.lastSeen)
	}
	for _, id := range c.order {
		j := c.jobs[id]
		// Degraded-mode jobs run in this process and hold no lease.
		if j.assignedTo == degradedWorker {
			continue
		}
		if j.assignedTo != "" && !terminal(j.state) && now.After(j.leaseExpiry) {
			c.requeueLocked(j, "lease expired")
		}
	}
}

// requeueLocked returns an assigned job to the pending queue — or finalizes
// it failed once the assignment budget is spent. Caller holds c.mu.
func (c *Coordinator) requeueLocked(j *clusterJob, reason string) {
	if w := c.workers[j.assignedTo]; w != nil {
		delete(w.inflight, j.id)
	}
	worker := j.assignedTo
	j.assignedTo = ""
	j.leaseExpiry = time.Time{}
	if j.assigns >= c.cfg.MaxAssigns {
		c.finalizeLocked(j, service.StateFailed,
			fmt.Sprintf("%s after %d assignment(s), budget %d exhausted", reason, j.assigns, c.cfg.MaxAssigns),
			nil, cpu.Counters{}, 0)
		return
	}
	j.state = service.StatePending
	j.started = time.Time{}
	// Requeue at the front: a reassigned job is older than anything pending.
	c.pending = append([]string{j.id}, c.pending...)
	c.appendJournal(coordRecord{Op: copRequeue, Job: j.id, Time: c.now(), Worker: worker, Reason: reason})
	c.metrics.add(func(m *coordMetrics) { m.reassigned++ })
	c.log.Warn("cluster job requeued", "job", j.id, "worker", worker, "reason", reason, "assigns", j.assigns)
}

// assignment is one dispatch decision, executed outside the lock.
type assignment struct {
	job    *clusterJob
	worker string
	addr   string
	req    RunRequest
}

// degradedWorker is the assignedTo marker for jobs the coordinator runs
// in-process under degraded mode.
const degradedWorker = "coordinator"

// dispatch drains the pending queue onto assignable workers. When no worker
// has been assignable for DegradedAfter while jobs wait, the coordinator
// sheds to degraded mode: pending jobs run in-process through the same
// registry the workers use, so their results (deterministic functions of
// the resolved params) are byte-identical to worker execution.
func (c *Coordinator) dispatch() {
	now := c.now()
	c.mu.Lock()
	var work []assignment
	var local []*clusterJob
	var remaining []string
	for _, id := range c.pending {
		j := c.jobs[id]
		if j == nil || j.state != service.StatePending || j.assignedTo != "" || terminal(j.state) {
			continue // cancelled or already handled
		}
		w := c.pickWorkerLocked(j, now)
		if w == nil {
			remaining = append(remaining, id)
			continue
		}
		j.assignedTo = w.name
		j.leaseExpiry = now.Add(c.cfg.LeaseTTL)
		w.inflight[j.id] = struct{}{}
		work = append(work, assignment{
			job:    j,
			worker: w.name,
			addr:   w.addr,
			req: RunRequest{
				ID:         j.id,
				Experiment: j.experiment,
				Params:     j.params,
				TimeoutMS:  j.timeout.Milliseconds(),
			},
		})
	}
	c.pending = remaining

	switch {
	case len(work) > 0:
		// At least one worker is taking jobs: leave degraded mode.
		c.starvedSince = time.Time{}
		c.degraded = false
	case len(remaining) == 0:
		c.starvedSince = time.Time{}
	default:
		if c.starvedSince.IsZero() {
			c.starvedSince = now
		}
		if c.cfg.DegradedAfter > 0 && now.Sub(c.starvedSince) >= c.cfg.DegradedAfter {
			c.degraded = true
			var rest []string
			for _, id := range c.pending {
				j := c.jobs[id]
				if j == nil || j.state != service.StatePending || j.assignedTo != "" {
					continue
				}
				if c.localInflight+len(local) >= c.cfg.MaxInflightPerWorker {
					rest = append(rest, id)
					continue
				}
				j.assignedTo = degradedWorker
				j.state = service.StateRunning
				j.started = now
				j.assigns++
				c.appendJournal(coordRecord{Op: copAssign, Job: j.id, Time: now, Worker: degradedWorker})
				local = append(local, j)
			}
			c.pending = rest
			c.localInflight += len(local)
		}
	}
	c.mu.Unlock()

	for _, j := range local {
		c.log.Warn("degraded mode: running job in-process", "job", j.id)
		go c.runLocal(j)
	}
	if len(work) == 0 {
		return
	}
	// One batched POST per destination worker, sent concurrently: a slow or
	// saturated worker no longer serializes the rest of the dispatch pass
	// behind its RPC, which is what made adding workers *slow down* sweeps.
	byWorker := make(map[string][]assignment)
	for _, a := range work {
		byWorker[a.worker] = append(byWorker[a.worker], a)
	}
	var wg sync.WaitGroup
	for _, batch := range byWorker {
		wg.Add(1)
		go func(batch []assignment) {
			defer wg.Done()
			c.sendAssignments(batch)
		}(batch)
	}
	wg.Wait()
}

// runLocal executes one job in-process — the degraded-mode path when every
// worker is partitioned or quarantined. The drivers are deterministic, so
// the result bytes match what any worker would have produced.
func (c *Coordinator) runLocal(j *clusterJob) {
	defer func() {
		c.mu.Lock()
		c.localInflight--
		c.mu.Unlock()
		c.kickDispatch()
	}()

	exp, ok := c.reg.Get(j.experiment)
	var (
		result any
		stats  cpu.Counters
		err    error
	)
	if !ok || exp.Run == nil {
		err = fmt.Errorf("experiment %q not runnable on the coordinator", j.experiment)
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
		func() {
			defer cancel()
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("experiment panicked: %v", r)
				}
			}()
			result, stats, err = exp.Run(ctx, j.params)
		}()
	}
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(result)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if terminal(j.state) {
		return
	}
	st := service.StateDone
	errMsg := ""
	if j.cancelRequested {
		st, raw = service.StateCancelled, nil
	} else if err != nil {
		st, errMsg, raw = service.StateFailed, err.Error(), nil
	}
	c.finalizeLocked(j, st, errMsg, raw, stats, 1)
	if st == service.StateDone {
		c.metrics.add(func(m *coordMetrics) { m.degradedRuns++ })
	}
	c.metrics.add(func(m *coordMetrics) { m.results[st]++ })
	c.log.Info("degraded-mode job finished", "job", j.id, "state", string(st))
}

// pickWorkerLocked selects the destination: least-loaded among the job's
// warm-group holders, else least-loaded overall, considering only workers
// whose peer breaker is closed. When no healthy worker is eligible, a
// quarantined worker whose cooldown has lapsed may be admitted as a single
// probe. Iteration is name-sorted so ties break deterministically. Caller
// holds c.mu.
func (c *Coordinator) pickWorkerLocked(j *clusterJob, now time.Time) *workerState {
	holders := c.affinity[affinityGroup(j.experiment, j.params)]

	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)

	eligible := func(w *workerState) bool {
		return now.Sub(w.lastSeen) <= c.cfg.WorkerExpiry && !w.saturated &&
			len(w.inflight) < c.cfg.MaxInflightPerWorker
	}

	var best, bestHolder *workerState
	for _, name := range names {
		w := c.workers[name]
		if !eligible(w) || c.peers.State(name) != service.BreakerClosed {
			continue
		}
		if best == nil || len(w.inflight) < len(best.inflight) {
			best = w
		}
		if _, isHolder := holders[name]; isHolder {
			if bestHolder == nil || len(w.inflight) < len(bestHolder.inflight) {
				bestHolder = w
			}
		}
	}
	if len(holders) > 0 && best != nil {
		if bestHolder != nil {
			c.metrics.add(func(m *coordMetrics) { m.affinityHits++ })
			return bestHolder
		}
		c.metrics.add(func(m *coordMetrics) { m.affinityMiss++ })
	}
	if best != nil {
		return best
	}
	// No healthy worker: see if a quarantined one has cooled down enough to
	// probe. Allow admits at most one probe per open breaker — a second job
	// in the same dispatch pass is rejected until the probe resolves.
	for _, name := range names {
		w := c.workers[name]
		if !eligible(w) || c.peers.State(name) == service.BreakerClosed {
			continue
		}
		if c.peers.Allow(name) == nil {
			c.metrics.add(func(m *coordMetrics) { m.probes++ })
			c.log.Info("probing quarantined worker", "worker", name, "job", j.id)
			return w
		}
	}
	return nil
}

// notePeerFailureLocked feeds one peer failure into the breaker and, when
// the breaker opens on this failure, quarantines the worker: its in-flight
// leases are requeued immediately rather than waiting for each lease to
// expire. Caller holds c.mu.
func (c *Coordinator) notePeerFailureLocked(name, class, reason string) {
	before := c.peers.State(name)
	c.peers.Record(name, false)
	if before == service.BreakerOpen || c.peers.State(name) != service.BreakerOpen {
		return
	}
	c.metrics.add(func(m *coordMetrics) { m.quarantines++ })
	if w := c.workers[name]; w != nil {
		for id := range w.inflight {
			if j := c.jobs[id]; j != nil && !terminal(j.state) && j.assignedTo == name {
				c.requeueLocked(j, fmt.Sprintf("worker %s quarantined (%s)", name, class))
			}
		}
	}
	c.log.Warn("worker quarantined", "worker", name, "class", class, "reason", reason)
}

// sendAssignments POSTs one dispatch tick's assignments for a single
// worker (every element targets the same address) as one batch under the
// control-RPC deadline, then settles each job: accepted assignments start
// their leases and count a breaker success; a Saturated rejection marks
// the worker saturated until its next heartbeat and requeues the job
// without touching the breaker — backpressure is load, not sickness; a
// transport error, timeout or 5xx fails the whole batch, requeues every
// job and feeds the worker's breaker exactly once, so one dead RPC carries
// the same breaker weight no matter how many jobs rode on it.
func (c *Coordinator) sendAssignments(batch []assignment) {
	worker, addr := batch[0].worker, batch[0].addr
	jobs := make([]RunRequest, len(batch))
	for i, a := range batch {
		jobs[i] = a.req
	}
	body, _ := json.Marshal(RunBatch{Jobs: jobs})
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeouts.Control)
	defer cancel()
	hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cluster/runs", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	status := 0
	var reply RunBatchReply
	if err == nil {
		status = resp.StatusCode
		if status < 300 {
			err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&reply)
		}
		resp.Body.Close()
	}

	c.mu.Lock()
	defer c.mu.Unlock()

	requeue := func(a assignment, saturated bool) {
		j := a.job
		if w := c.workers[worker]; w != nil {
			delete(w.inflight, j.id)
			if saturated {
				w.saturated = true
			}
		}
		if !terminal(j.state) && j.assignedTo == worker {
			j.assignedTo = ""
			j.leaseExpiry = time.Time{}
			c.pending = append([]string{j.id}, c.pending...)
		}
	}

	if err != nil || status >= 300 {
		saturated := status == http.StatusTooManyRequests
		for _, a := range batch {
			requeue(a, saturated)
		}
		if saturated {
			// The whole batch bounced as load (a proxy or the legacy single
			// surface): requeue without breaker feedback.
			c.metrics.add(func(m *coordMetrics) { m.backpressure += uint64(len(batch)) })
			c.log.Info("worker saturated, batch requeued", "worker", worker, "jobs", len(batch))
			return
		}
		class := classifyRPCFailure(err, status)
		c.metrics.add(func(m *coordMetrics) {
			m.assignErrors += uint64(len(batch))
			m.assignFailures[class]++
		})
		c.notePeerFailureLocked(worker, class, fmt.Sprintf("assignment batch of %d failed: status=%d err=%v", len(batch), status, err))
		c.log.Warn("assignment batch failed, jobs requeued", "worker", worker, "jobs", len(batch), "status", status, "class", class, "err", err)
		return
	}

	byID := make(map[string]RunResponse, len(reply.Results))
	for _, rr := range reply.Results {
		byID[rr.ID] = rr
	}
	for _, a := range batch {
		j := a.job
		rr := byID[j.id]
		switch {
		case rr.Accepted:
			c.peers.Record(worker, true)
			if terminal(j.state) || j.assignedTo != worker {
				continue // raced with a result or a concurrent requeue
			}
			j.assigns++
			c.appendJournal(coordRecord{Op: copAssign, Job: j.id, Time: c.now(), Worker: worker})
			c.metrics.add(func(m *coordMetrics) { m.assigned[worker]++ })
			c.log.Info("cluster job assigned", "job", j.id, "worker", worker, "assign", j.assigns)
		case rr.Saturated:
			requeue(a, true)
			c.metrics.add(func(m *coordMetrics) { m.backpressure++ })
			c.log.Info("worker saturated, job requeued", "job", j.id, "worker", worker)
		default:
			// Reachable but not accepting this job (rejected or missing from
			// the reply) — treat like backpressure, not sickness.
			requeue(a, false)
			c.metrics.add(func(m *coordMetrics) { m.assignErrors++ })
			c.log.Warn("assignment rejected, job requeued", "job", j.id, "worker", worker, "reason", rr.Error)
		}
	}
}

// handlePeerReport ingests one worker's complaint about a peer (today:
// corrupt snapshot bodies detected at the transport edge) and feeds it into
// the peer's breaker, exactly like a coordinator-observed failure.
func (c *Coordinator) handlePeerReport(pr PeerReport) {
	c.mu.Lock()
	c.metrics.add(func(m *coordMetrics) { m.peerReports[pr.Class]++ })
	c.notePeerFailureLocked(pr.Peer, pr.Class, fmt.Sprintf("reported by %s", pr.From))
	c.mu.Unlock()
	c.kickDispatch()
}

// handleHeartbeat ingests one worker heartbeat: refreshes the directory
// entry, renews the leases of every job the worker still reports, updates
// running-state progress, and returns the IDs the worker should cancel.
func (c *Coordinator) handleHeartbeat(hb Heartbeat) HeartbeatReply {
	now := c.now()
	c.mu.Lock()
	w := c.workers[hb.Worker]
	if w == nil {
		w = &workerState{name: hb.Worker, inflight: make(map[string]struct{})}
		c.workers[hb.Worker] = w
		c.log.Info("worker joined", "worker", hb.Worker, "addr", hb.Addr)
	}
	w.addr = hb.Addr
	w.lastSeen = now
	w.queue = hb.Queue
	w.capacity = hb.Capacity
	w.saturated = false
	w.warm = make(map[string]string, len(hb.WarmKeys))
	for _, ad := range hb.WarmKeys {
		w.warm[ad.Key] = ad.Hash
	}

	reported := make(map[string]service.State, len(hb.Jobs))
	for _, js := range hb.Jobs {
		reported[js.ID] = js.State
	}
	var cancels []string
	for id := range w.inflight {
		j := c.jobs[id]
		if j == nil || terminal(j.state) || j.assignedTo != hb.Worker {
			delete(w.inflight, id)
			continue
		}
		st, ok := reported[id]
		if !ok {
			// The worker does not (or does not yet) know this job — either
			// the assignment is still in flight or the worker restarted.
			// Leave the lease to expire on its own rather than guessing.
			continue
		}
		j.leaseExpiry = now.Add(c.cfg.LeaseTTL)
		if st == service.StateRunning && j.state == service.StatePending {
			j.state = service.StateRunning
			j.started = now
		}
		if j.cancelRequested {
			cancels = append(cancels, id)
		}
	}
	// Jobs the worker reports but no longer owns (lease lost, job finished
	// elsewhere): cancel them so the worker stops spending cycles.
	for id := range reported {
		j := c.jobs[id]
		if j == nil || terminal(j.state) || j.assignedTo != hb.Worker {
			cancels = append(cancels, id)
		}
	}
	c.mu.Unlock()

	c.metrics.add(func(m *coordMetrics) {
		m.heartbeats++
		m.cancelsRelayed += uint64(len(cancels))
	})
	c.kickDispatch()
	return HeartbeatReply{Cancel: cancels}
}

// handleResults ingests terminal results. Every ID is acked — even
// duplicates and strays — so workers always drop their mapping; only the
// first terminal result for a job mutates it.
func (c *Coordinator) handleResults(p ResultsPush) ResultsReply {
	reply := ResultsReply{Acked: make([]string, 0, len(p.Results))}
	c.mu.Lock()
	for _, r := range p.Results {
		reply.Acked = append(reply.Acked, r.ID)
		j := c.jobs[r.ID]
		if j == nil {
			continue
		}
		if terminal(j.state) {
			c.metrics.add(func(m *coordMetrics) { m.dupResults++ })
			continue
		}
		if !terminal(r.State) {
			continue
		}
		// A worker that lost the lease may still report: a done result is
		// always valid (the drivers are deterministic, so it is identical
		// to what the new owner will produce), but a stale owner's failure
		// or relayed cancellation must not clobber the live assignment.
		if j.assignedTo != p.Worker && r.State != service.StateDone {
			continue
		}
		if w := c.workers[p.Worker]; w != nil {
			delete(w.inflight, r.ID)
		}
		st := r.State
		if j.cancelRequested {
			st = service.StateCancelled
		}
		var stats cpu.Counters
		if r.Stats != nil {
			stats = *r.Stats
		}
		j.assignedTo = p.Worker // credit the worker that actually finished
		c.finalizeLocked(j, st, r.Error, r.Result, stats, r.Attempts)
		if st == service.StateDone {
			c.noteAffinityLocked(j, p.Worker)
		}
		c.metrics.add(func(m *coordMetrics) { m.results[st]++ })
		c.log.Info("cluster job finished", "job", j.id, "worker", p.Worker, "state", string(st))
	}
	c.mu.Unlock()
	c.kickDispatch()
	return reply
}

// locateSnapshots answers a warm-key lookup with up to two live,
// non-quarantined holders ranked freshest-heartbeat-first (names break
// ties), excluding the requester itself. Two holders feed the worker's
// hedged fetch; peers with an open breaker are never offered.
func (c *Coordinator) locateSnapshots(key, from string) []SnapshotLocation {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	type candidate struct {
		loc  SnapshotLocation
		seen time.Time
	}
	var cands []candidate
	for name, w := range c.workers {
		if name == from || now.Sub(w.lastSeen) > c.cfg.WorkerExpiry {
			continue
		}
		if c.peers.State(name) == service.BreakerOpen {
			continue
		}
		hash, ok := w.warm[key]
		if !ok {
			continue
		}
		cands = append(cands, candidate{
			loc:  SnapshotLocation{Worker: name, Addr: w.addr, Hash: hash},
			seen: w.lastSeen,
		})
	}
	sort.Slice(cands, func(i, k int) bool {
		if !cands[i].seen.Equal(cands[k].seen) {
			return cands[i].seen.After(cands[k].seen)
		}
		return cands[i].loc.Worker < cands[k].loc.Worker
	})
	if len(cands) > 2 {
		cands = cands[:2]
	}
	out := make([]SnapshotLocation, len(cands))
	for i, cd := range cands {
		out[i] = cd.loc
	}
	c.metrics.add(func(m *coordMetrics) {
		if len(out) > 0 {
			m.locateHits++
		} else {
			m.locateMisses++
		}
	})
	return out
}

// Status snapshots the cluster for /cluster/status.
func (c *Coordinator) Status() StatusView {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	sv := StatusView{Jobs: make(map[service.State]int, 5), Pending: len(c.pending), Degraded: c.degraded}
	for _, st := range service.States() {
		sv.Jobs[st] = 0
	}
	for _, j := range c.jobs {
		sv.Jobs[j.state]++
	}
	for _, name := range sortedKeys(c.workers) {
		w := c.workers[name]
		keys := sortedKeys(w.warm)
		brk := c.peers.State(name)
		sv.Workers = append(sv.Workers, WorkerStatus{
			Name:        name,
			Addr:        w.addr,
			LastSeenMS:  now.Sub(w.lastSeen).Milliseconds(),
			Inflight:    len(w.inflight),
			Queue:       w.queue,
			Capacity:    w.capacity,
			Saturated:   w.saturated,
			WarmKeys:    keys,
			Breaker:     brk,
			Quarantined: brk == service.BreakerOpen,
		})
	}
	return sv
}

// gauges samples the live state for /metrics.
func (c *Coordinator) gauges() coordGauges {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	g := coordGauges{
		inflight: make(map[string]int, len(c.workers)),
		breakers: make(map[string]int, len(c.workers)),
		jobs:     make(map[service.State]int, 5),
		pending:  len(c.pending),
		degraded: c.degraded,
	}
	for _, st := range service.States() {
		g.jobs[st] = 0
	}
	for _, j := range c.jobs {
		g.jobs[j.state]++
	}
	for name, w := range c.workers {
		g.inflight[name] = len(w.inflight)
		g.breakers[name] = c.peers.State(name)
		g.warmKeys += len(w.warm)
		if now.Sub(w.lastSeen) <= c.cfg.WorkerExpiry {
			g.workers++
		}
	}
	return g
}
