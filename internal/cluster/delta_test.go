package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
	"pathfinder/internal/wire"
)

// TestClusterSnapshotDeltaExchange drives the delta-negotiated snapshot
// exchange end to end: the requester advertises a base it holds, the
// holder answers with a PFWD delta frame (visibly smaller than the full
// blob), and the requester materializes it against its local base into a
// hash-verified snapshot.
func TestClusterSnapshotDeltaExchange(t *testing.T) {
	harness.ResetWarmCache()
	baseSnap := cpu.New(cpu.Options{Seed: 41}).Snapshot()
	targetSnap := cpu.New(cpu.Options{Seed: 42}).Snapshot()
	const baseKey = "delta-x|Alder Lake|194|0000000000000abc|41|0"
	const targetKey = "delta-x|Alder Lake|194|0000000000000abc|42|0"
	targetHash := fmt.Sprintf("%016x", targetSnap.Hash())

	_, csrv := startCoord(t, CoordinatorConfig{})

	// The holder can materialize both snapshots; the requester holds only
	// the base.
	st0, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	st0.Save(baseKey, baseSnap, nil)
	st0.Save(targetKey, targetSnap, nil)
	svc0 := service.New(service.Config{Workers: 1, QueueDepth: 4})
	w0, err := NewWorker(WorkerConfig{
		Name: "w0", Coordinator: "http://coord.invalid", SelfURL: "http://w0.invalid",
		SnapStore: st0,
	}, svc0)
	if err != nil {
		t.Fatal(err)
	}
	w0srv := httptest.NewServer(w0.Handler())
	defer w0srv.Close()
	advertiseHolder(t, csrv.URL, "w0", w0srv.URL, targetKey, targetHash)

	st1, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	st1.Save(baseKey, baseSnap, nil)
	svc1 := service.New(service.Config{Workers: 1, QueueDepth: 4})
	w1, err := NewWorker(WorkerConfig{
		Name: "w1", Coordinator: csrv.URL, SelfURL: "http://w1.invalid",
		SnapStore: st1,
	}, svc1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc0.Shutdown(ctx)
		_ = svc1.Shutdown(ctx)
	}()

	wk, err := harness.ParseWarmStateKey(targetKey)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w1.fetchWarm(wk)
	if !ok {
		t.Fatal("delta-negotiated fetch failed")
	}
	if got.Hash() != targetSnap.Hash() {
		t.Fatalf("fetched snapshot hash %#x, want %#x", got.Hash(), targetSnap.Hash())
	}
	if n := w1.m.deltaApplied.Load(); n != 1 {
		t.Errorf("requester delta_applied = %d, want 1", n)
	}
	if n := w1.m.deltaFallback.Load(); n != 0 {
		t.Errorf("requester delta_fallback = %d, want 0", n)
	}
	if n := scrapeMetric(t, w0srv.URL+"/metrics", `pathfinderd_worker_snapshot_delta_total{event="served"}`); n < 1 {
		t.Errorf("holder delta serves = %v, want >= 1", n)
	}

	// The wire saving is the point: the delta between two same-arch warm
	// states must be far smaller than the full encoding.
	baseBlob, err := baseSnap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	targetBlob, err := targetSnap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	delta := wire.EncodeDelta(baseBlob, targetBlob)
	if len(delta)*5 > len(targetBlob) {
		t.Errorf("delta %d bytes vs full %d: expected >=5x wire reduction", len(delta), len(targetBlob))
	}
}

// TestClusterCorruptDeltaFallsBackToFull: a holder serves a damaged PFWD
// frame; the requester rejects it against the delta envelope, reports the
// peer through the corrupt-delivery machinery, retries the same holder for
// the full blob, and the fetch still succeeds.
func TestClusterCorruptDeltaFallsBackToFull(t *testing.T) {
	harness.ResetWarmCache()
	baseSnap := cpu.New(cpu.Options{Seed: 43}).Snapshot()
	targetSnap := cpu.New(cpu.Options{Seed: 44}).Snapshot()
	const baseKey = "delta-corrupt|Alder Lake|194|0000000000000abc|43|0"
	const targetKey = "delta-corrupt|Alder Lake|194|0000000000000abc|44|0"
	baseHash := fmt.Sprintf("%016x", baseSnap.Hash())
	targetHash := fmt.Sprintf("%016x", targetSnap.Hash())

	baseBlob, err := baseSnap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fullBlob, err := targetSnap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	badDelta := wire.EncodeDelta(baseBlob, fullBlob)
	badDelta[len(badDelta)-3] ^= 0x40 // keep the magic, break the envelope hash
	if !wire.IsDelta(badDelta) {
		t.Fatal("corrupted frame no longer parses as a delta")
	}

	// A hand-rolled holder: delta requests get the damaged frame, the full
	// retry (no have= advertisement) gets the honest blob.
	var deltaServes, fullServes int
	var mu sync.Mutex
	holder := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if strings.Contains(r.URL.RawQuery, "have=") {
			deltaServes++
			rw.Header().Set(deltaBaseHeader, baseHash)
			_, _ = rw.Write(badDelta)
			return
		}
		fullServes++
		_, _ = rw.Write(fullBlob)
	}))
	defer holder.Close()

	_, csrv := startCoord(t, CoordinatorConfig{})
	advertiseHolder(t, csrv.URL, "w0", holder.URL, targetKey, targetHash)

	st1, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	st1.Save(baseKey, baseSnap, nil)
	svc1 := service.New(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc1.Shutdown(ctx)
	}()
	w1, err := NewWorker(WorkerConfig{
		Name: "w1", Coordinator: csrv.URL, SelfURL: "http://w1.invalid",
		SnapStore: st1,
	}, svc1)
	if err != nil {
		t.Fatal(err)
	}

	corrupt0 := harness.WarmFetchCorrupt()
	wk, err := harness.ParseWarmStateKey(targetKey)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w1.fetchWarm(wk)
	if !ok {
		t.Fatal("fetch failed outright; the full-blob retry should have delivered")
	}
	if got.Hash() != targetSnap.Hash() {
		t.Fatalf("fetched snapshot hash %#x, want %#x", got.Hash(), targetSnap.Hash())
	}
	mu.Lock()
	if deltaServes < 1 || fullServes < 1 {
		t.Errorf("holder saw %d delta and %d full requests, want >= 1 of each", deltaServes, fullServes)
	}
	mu.Unlock()
	if n := w1.m.deltaFallback.Load(); n < 1 {
		t.Errorf("delta_fallback = %d, want >= 1", n)
	}
	if n := w1.m.fetchCorrupt.Load(); n < 1 {
		t.Errorf("fetch_corrupt = %d, want >= 1", n)
	}
	if harness.WarmFetchCorrupt() <= corrupt0 {
		t.Error("corrupt delta was not counted by the harness corrupt counter")
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", `pathfinderd_cluster_peer_reports_total{class="corrupt"}`); n < 1 {
		t.Errorf("peer reports (corrupt) = %v, want >= 1", n)
	}
}

// TestDispatchBatchesAssignments: the coordinator sends one POST
// /v1/cluster/runs per destination worker per dispatch pass — not one
// POST per job — and never uses the legacy single-assignment route.
func TestDispatchBatchesAssignments(t *testing.T) {
	c, csrv := startCoord(t, CoordinatorConfig{Registry: ctestRegistry(), MaxInflightPerWorker: 8})

	// Submit the whole sweep before any worker joins, so the first dispatch
	// pass with a live worker sees every job pending at once.
	batch, views, err := c.SubmitSweep("ctest", service.Params{}, []string{"alderlake"}, []int64{1, 2, 3, 4, 5, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 6 {
		t.Fatalf("submitted %d jobs, want 6", len(views))
	}

	var mu sync.Mutex
	var singles, batchPosts, maxBatch int
	n := &node{svc: service.New(service.Config{Registry: ctestRegistry(), Workers: 2, QueueDepth: 32})}
	n.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/run" {
			mu.Lock()
			singles++
			mu.Unlock()
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/cluster/runs" {
			raw, _ := io.ReadAll(r.Body)
			var rb RunBatch
			_ = json.Unmarshal(raw, &rb)
			mu.Lock()
			batchPosts++
			if len(rb.Jobs) > maxBatch {
				maxBatch = len(rb.Jobs)
			}
			mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(raw))
		}
		n.w.Handler().ServeHTTP(rw, r)
	}))
	n.w, err = NewWorker(WorkerConfig{
		Name: "w0", Coordinator: csrv.URL, SelfURL: n.srv.URL,
		Heartbeat: 20 * time.Millisecond,
	}, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	n.w.Start()
	t.Cleanup(func() {
		n.w.Stop()
		n.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = n.svc.Shutdown(ctx)
	})

	report := waitReport(t, csrv.URL, batch)
	var rep service.Report
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ByState[service.StateDone] != 6 {
		t.Fatalf("by_state = %v, want 6 done", rep.ByState)
	}
	mu.Lock()
	defer mu.Unlock()
	if singles != 0 {
		t.Errorf("legacy /v1/cluster/run posts = %d, want 0", singles)
	}
	if batchPosts == 0 {
		t.Fatal("no batched assignment posts observed")
	}
	if maxBatch < 4 {
		t.Errorf("largest assignment batch carried %d jobs, want >= 4", maxBatch)
	}
}
