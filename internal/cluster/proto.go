// Package cluster distributes pathfinderd across nodes: a coordinator
// shards sweep batches over an HTTP/JSON control plane onto worker daemons,
// each of which wraps a full service.Service. Three mechanisms carry the
// design:
//
//   - Content-addressed snapshot exchange: workers advertise the warm-state
//     snapshots they hold (harness warm-cache entries, addressed by the
//     snapshot's own FNV-1a content hash) in every heartbeat, and a worker
//     that misses warm state fetches the identical snapshot from the peer
//     that trained it instead of re-training.
//   - Warm-affinity scheduling: the coordinator routes a job toward workers
//     that recently completed work in the same (experiment, arch, noise)
//     group — the workers whose warm caches the job will hit — falling back
//     to the least-loaded live worker, with bounded per-worker queues and
//     429 backpressure feeding a coordinator-side requeue.
//   - Lease-based ownership: every assignment carries a lease renewed by
//     worker heartbeats; a dead or wedged worker's leases expire and its
//     jobs are reassigned. Because every experiment driver is a
//     deterministic function of its resolved parameters, duplicate
//     executions from reassignment races produce identical results and the
//     first terminal result simply wins.
//
// The determinism contract is end-to-end: a batch report served by the
// coordinator is byte-identical to the standalone service's report for the
// same sweep, at any worker count, across worker crashes.
package cluster

import (
	"encoding/json"

	"pathfinder/internal/cpu"
	"pathfinder/internal/service"
)

// RunRequest is the coordinator→worker job assignment (POST
// /v1/cluster/run). Params arrive fully resolved — the coordinator owns
// validation and default-filling, so every worker runs exactly the same
// resolved work regardless of local registry defaults.
type RunRequest struct {
	ID         string         `json:"id"` // cluster job ID
	Experiment string         `json:"experiment"`
	Params     service.Params `json:"params"`
	TimeoutMS  int64          `json:"timeout_ms,omitempty"`
}

// RunResponse acknowledges an assignment. A worker that already holds the
// job replies Accepted without resubmitting, making assignment idempotent
// under coordinator retries. Saturated marks a rejection caused by a full
// local queue — backpressure the coordinator requeues without feeding the
// worker's breaker, as opposed to a malformed or unrunnable assignment.
type RunResponse struct {
	ID        string `json:"id"`
	Accepted  bool   `json:"accepted"`
	Saturated bool   `json:"saturated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// RunBatch carries every assignment one dispatch tick routed at one worker
// (POST /v1/cluster/runs): one request per destination per tick instead of
// one per job, so dispatch latency stays flat as sweeps and clusters grow.
type RunBatch struct {
	Jobs []RunRequest `json:"jobs"`
}

// RunBatchReply answers a RunBatch per job, in any order (jobs are matched
// back by ID). The batch itself always lands with 200 — per-job outcomes,
// including backpressure, live in the results.
type RunBatchReply struct {
	Results []RunResponse `json:"results"`
}

// Heartbeat is the worker→coordinator liveness and progress report (POST
// /v1/cluster/heartbeat). Listing a job ID renews its lease; the warm-key
// advertisements feed the coordinator's snapshot-location index.
type Heartbeat struct {
	Worker   string      `json:"worker"`
	Addr     string      `json:"addr"` // worker base URL, for assignments and peer fetches
	Queue    int         `json:"queue"`
	Capacity int         `json:"capacity"` // worker pool size
	Jobs     []JobStatus `json:"jobs,omitempty"`
	WarmKeys []WarmAd    `json:"warm_keys,omitempty"`
}

// JobStatus is one in-flight job's state as the worker sees it.
type JobStatus struct {
	ID    string        `json:"id"` // cluster job ID
	State service.State `json:"state"`
}

// WarmAd advertises one exchangeable warm-cache entry: the harness warm key
// (canonical string spelling) and the content hash of the snapshot behind
// it, which doubles as the snapshot's address on the serving worker
// (GET {addr}/snapshots/{hash}).
type WarmAd struct {
	Key  string `json:"key"`
	Hash string `json:"hash"` // %016x of cpu.Snapshot.Hash()
}

// HeartbeatReply carries coordinator→worker instructions piggybacked on the
// heartbeat: cluster job IDs the worker should cancel (client-cancelled, or
// reassigned elsewhere after a lease loss).
type HeartbeatReply struct {
	Cancel []string `json:"cancel,omitempty"`
}

// ResultsPush delivers terminal jobs worker→coordinator (POST
// /v1/cluster/results). The worker keeps resending a result until the
// coordinator acks its ID, so completions survive coordinator restarts.
type ResultsPush struct {
	Worker  string      `json:"worker"`
	Results []JobResult `json:"results"`
}

// JobResult is one terminal job outcome.
type JobResult struct {
	ID       string          `json:"id"` // cluster job ID
	State    service.State   `json:"state"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Stats    *cpu.Counters   `json:"stats,omitempty"`
	Attempts int             `json:"attempts,omitempty"` // worker-local attempts
}

// ResultsReply acks processed results; the worker drops its local mapping
// for every acked ID.
type ResultsReply struct {
	Acked []string `json:"acked"`
}

// SnapshotLocation is one live worker holding the snapshot for a warm key,
// and the content hash to fetch it under.
type SnapshotLocation struct {
	Worker string `json:"worker"`
	Addr   string `json:"addr"`
	Hash   string `json:"hash"`
}

// SnapshotLocations answers a warm-key lookup (GET /v1/cluster/snapshots):
// up to two healthy holders ranked freshest-heartbeat-first, feeding the
// worker's hedged fetch — leg one races the first holder, leg two the
// second (or the first again when only one exists).
type SnapshotLocations struct {
	Holders []SnapshotLocation `json:"holders"`
}

// PeerReport flags a sick peer worker→coordinator (POST
// /v1/cluster/report-peer): the reporter observed a failure class (e.g. a
// corrupt snapshot body) talking to the peer directly, which the
// coordinator folds into that peer's breaker and health metrics.
type PeerReport struct {
	From  string `json:"from"`
	Peer  string `json:"peer"`
	Class string `json:"class"`
}

// WorkerStatus is one worker's row in GET /cluster/status.
type WorkerStatus struct {
	Name        string   `json:"name"`
	Addr        string   `json:"addr"`
	LastSeenMS  int64    `json:"last_seen_ms"` // since last heartbeat
	Inflight    int      `json:"inflight"`     // leases held
	Queue       int      `json:"queue"`
	Capacity    int      `json:"capacity"`
	Saturated   bool     `json:"saturated,omitempty"`
	WarmKeys    []string `json:"warm_keys,omitempty"`
	Breaker     int      `json:"breaker"` // 0 closed, 1 half-open, 2 open
	Quarantined bool     `json:"quarantined,omitempty"`
}

// StatusView is the GET /cluster/status body.
type StatusView struct {
	Workers  []WorkerStatus        `json:"workers"`
	Jobs     map[service.State]int `json:"jobs"`
	Pending  int                   `json:"pending"`  // unassigned queue length
	Degraded bool                  `json:"degraded"` // coordinator running jobs in-process
}

// JobView is the coordinator's job projection: the service view plus the
// worker holding the lease. The embedded fields keep the JSON shape a
// superset of the standalone API's.
type JobView struct {
	service.JobView
	Worker string `json:"worker,omitempty"`
}

// terminal mirrors the service-internal state predicate.
func terminal(s service.State) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCancelled
}
