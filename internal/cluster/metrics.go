package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pathfinder/internal/service"
)

// coordMetrics is the coordinator's hand-rolled Prometheus surface,
// following the service package's stdlib-only exposition idiom. Gauges
// (workers, per-worker inflight, job states, pending queue) are sampled
// from live coordinator state at scrape time so a scrape always matches
// /cluster/status; everything here is the monotonic counters.
type coordMetrics struct {
	mu sync.Mutex

	submitted      uint64
	assigned       map[string]uint64 // by worker
	affinityHits   uint64            // routed onto a warm-group holder
	affinityMiss   uint64            // holders known but none assignable
	backpressure   uint64            // 429-triggered requeues
	reassigned     uint64            // lease-expiry requeues
	assignErrors   uint64            // transport/5xx assignment failures
	assignFailures map[string]uint64 // assignment failures by RPC class
	peerReports    map[string]uint64 // worker-reported peer failures by class
	quarantines    uint64            // peer breakers opened
	probes         uint64            // probe assignments to quarantined workers
	degradedRuns   uint64            // jobs completed in-process under degraded mode
	heartbeats     uint64
	results        map[service.State]uint64
	dupResults     uint64 // terminal results for already-terminal jobs
	locateHits     uint64 // snapshot lookups answered with a holder
	locateMisses   uint64
	jobsRecovered  uint64 // re-queued from the journal at startup
	cancelsRelayed uint64
}

func newCoordMetrics() *coordMetrics {
	return &coordMetrics{
		assigned:       make(map[string]uint64),
		assignFailures: make(map[string]uint64),
		peerReports:    make(map[string]uint64),
		results:        make(map[service.State]uint64),
	}
}

func (m *coordMetrics) add(f func(*coordMetrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
}

// coordGauges is the live state sampled at scrape time.
type coordGauges struct {
	workers  int
	inflight map[string]int // by worker
	breakers map[string]int // peer breaker state by worker
	jobs     map[service.State]int
	pending  int
	warmKeys int  // advertised snapshot entries across live workers
	degraded bool // coordinator shedding to in-process execution
}

// Expose renders the exposition text.
func (m *coordMetrics) Expose(g coordGauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP pathfinderd_cluster_workers live workers (heartbeat within the expiry window)\n")
	w("# TYPE pathfinderd_cluster_workers gauge\n")
	w("pathfinderd_cluster_workers %d\n", g.workers)

	w("# HELP pathfinderd_cluster_jobs cluster jobs by lifecycle state\n")
	w("# TYPE pathfinderd_cluster_jobs gauge\n")
	for _, st := range service.States() {
		w("pathfinderd_cluster_jobs{state=%q} %d\n", string(st), g.jobs[st])
	}

	w("# HELP pathfinderd_cluster_pending jobs waiting for assignment\n")
	w("# TYPE pathfinderd_cluster_pending gauge\n")
	w("pathfinderd_cluster_pending %d\n", g.pending)

	w("# HELP pathfinderd_cluster_worker_inflight leases held per worker\n")
	w("# TYPE pathfinderd_cluster_worker_inflight gauge\n")
	for _, name := range sortedKeys(g.inflight) {
		w("pathfinderd_cluster_worker_inflight{worker=%q} %d\n", name, g.inflight[name])
	}

	w("# HELP pathfinderd_cluster_warm_keys snapshot advertisements across live workers\n")
	w("# TYPE pathfinderd_cluster_warm_keys gauge\n")
	w("pathfinderd_cluster_warm_keys %d\n", g.warmKeys)

	w("# HELP pathfinderd_cluster_jobs_submitted_total cluster jobs accepted\n")
	w("# TYPE pathfinderd_cluster_jobs_submitted_total counter\n")
	w("pathfinderd_cluster_jobs_submitted_total %d\n", m.submitted)

	w("# HELP pathfinderd_cluster_assignments_total accepted assignments, by worker\n")
	w("# TYPE pathfinderd_cluster_assignments_total counter\n")
	for _, name := range sortedKeys(m.assigned) {
		w("pathfinderd_cluster_assignments_total{worker=%q} %d\n", name, m.assigned[name])
	}

	w("# HELP pathfinderd_cluster_affinity_total warm-affinity routing outcomes for jobs whose group has known holders\n")
	w("# TYPE pathfinderd_cluster_affinity_total counter\n")
	w("pathfinderd_cluster_affinity_total{outcome=\"hit\"} %d\n", m.affinityHits)
	w("pathfinderd_cluster_affinity_total{outcome=\"miss\"} %d\n", m.affinityMiss)

	w("# HELP pathfinderd_cluster_backpressure_requeues_total assignments bounced by worker 429s and requeued\n")
	w("# TYPE pathfinderd_cluster_backpressure_requeues_total counter\n")
	w("pathfinderd_cluster_backpressure_requeues_total %d\n", m.backpressure)

	w("# HELP pathfinderd_cluster_lease_reassignments_total jobs requeued after a lease expired\n")
	w("# TYPE pathfinderd_cluster_lease_reassignments_total counter\n")
	w("pathfinderd_cluster_lease_reassignments_total %d\n", m.reassigned)

	w("# HELP pathfinderd_cluster_assign_errors_total assignments that failed in transport or with a non-429 error\n")
	w("# TYPE pathfinderd_cluster_assign_errors_total counter\n")
	w("pathfinderd_cluster_assign_errors_total %d\n", m.assignErrors)

	w("# HELP pathfinderd_cluster_peer_breaker_state per-worker circuit breaker (0 closed, 1 half-open, 2 open)\n")
	w("# TYPE pathfinderd_cluster_peer_breaker_state gauge\n")
	for _, name := range sortedKeys(g.breakers) {
		w("pathfinderd_cluster_peer_breaker_state{worker=%q} %d\n", name, g.breakers[name])
	}

	w("# HELP pathfinderd_cluster_assign_failures_total assignment failures by RPC failure class\n")
	w("# TYPE pathfinderd_cluster_assign_failures_total counter\n")
	for _, class := range sortedKeys(m.assignFailures) {
		w("pathfinderd_cluster_assign_failures_total{class=%q} %d\n", class, m.assignFailures[class])
	}

	w("# HELP pathfinderd_cluster_peer_reports_total worker-reported peer failures by class\n")
	w("# TYPE pathfinderd_cluster_peer_reports_total counter\n")
	for _, class := range sortedKeys(m.peerReports) {
		w("pathfinderd_cluster_peer_reports_total{class=%q} %d\n", class, m.peerReports[class])
	}

	w("# HELP pathfinderd_cluster_quarantines_total peer breakers opened (worker quarantined, leases requeued)\n")
	w("# TYPE pathfinderd_cluster_quarantines_total counter\n")
	w("pathfinderd_cluster_quarantines_total %d\n", m.quarantines)

	w("# HELP pathfinderd_cluster_probes_total probe assignments admitted to quarantined workers\n")
	w("# TYPE pathfinderd_cluster_probes_total counter\n")
	w("pathfinderd_cluster_probes_total %d\n", m.probes)

	w("# HELP pathfinderd_cluster_degraded gauge: 1 while the coordinator is shedding jobs to in-process execution\n")
	w("# TYPE pathfinderd_cluster_degraded gauge\n")
	w("pathfinderd_cluster_degraded %d\n", boolGauge(g.degraded))

	w("# HELP pathfinderd_cluster_degraded_runs_total jobs completed in-process under degraded mode\n")
	w("# TYPE pathfinderd_cluster_degraded_runs_total counter\n")
	w("pathfinderd_cluster_degraded_runs_total %d\n", m.degradedRuns)

	w("# HELP pathfinderd_cluster_heartbeats_total heartbeats received\n")
	w("# TYPE pathfinderd_cluster_heartbeats_total counter\n")
	w("pathfinderd_cluster_heartbeats_total %d\n", m.heartbeats)

	w("# HELP pathfinderd_cluster_results_total terminal results received, by state\n")
	w("# TYPE pathfinderd_cluster_results_total counter\n")
	for _, st := range []service.State{service.StateDone, service.StateFailed, service.StateCancelled} {
		if n, ok := m.results[st]; ok {
			w("pathfinderd_cluster_results_total{state=%q} %d\n", string(st), n)
		}
	}

	w("# HELP pathfinderd_cluster_duplicate_results_total results for already-terminal jobs (reassignment races)\n")
	w("# TYPE pathfinderd_cluster_duplicate_results_total counter\n")
	w("pathfinderd_cluster_duplicate_results_total %d\n", m.dupResults)

	w("# HELP pathfinderd_cluster_snapshot_locates_total warm-key location lookups, by outcome\n")
	w("# TYPE pathfinderd_cluster_snapshot_locates_total counter\n")
	w("pathfinderd_cluster_snapshot_locates_total{outcome=\"hit\"} %d\n", m.locateHits)
	w("pathfinderd_cluster_snapshot_locates_total{outcome=\"miss\"} %d\n", m.locateMisses)

	w("# HELP pathfinderd_cluster_cancels_relayed_total cancellations relayed to workers via heartbeat replies\n")
	w("# TYPE pathfinderd_cluster_cancels_relayed_total counter\n")
	w("pathfinderd_cluster_cancels_relayed_total %d\n", m.cancelsRelayed)

	w("# HELP pathfinderd_cluster_jobs_recovered_total jobs re-queued from the coordinator journal at startup\n")
	w("# TYPE pathfinderd_cluster_jobs_recovered_total counter\n")
	w("pathfinderd_cluster_jobs_recovered_total %d\n", m.jobsRecovered)

	return b.String()
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
