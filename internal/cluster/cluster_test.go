package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
)

// ctestRegistry returns a registry extended with a fast, deterministic
// experiment: the scheduler tests need real job flow without simulator
// runtime.
func ctestRegistry() *service.Registry {
	r := service.NewRegistry()
	err := r.Register(service.Experiment{
		Name:        "ctest",
		Description: "cluster-test: deterministic function of (arch, seed)",
		Run: func(ctx context.Context, p service.Params) (any, cpu.Counters, error) {
			if err := ctx.Err(); err != nil {
				return nil, cpu.Counters{}, err
			}
			return struct {
				Arch  string `json:"arch"`
				Seed  int64  `json:"seed"`
				Value int64  `json:"value"`
			}{p.Arch, p.Seed, p.Seed*31 + int64(len(p.Arch))}, cpu.Counters{Runs: 1}, nil
		},
	})
	if err != nil {
		panic(err)
	}
	return r
}

// startCoord starts a coordinator with test-speed timing and serves it.
func startCoord(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = ctestRegistry()
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 500 * time.Millisecond
	}
	if cfg.DispatchEvery == 0 {
		cfg.DispatchEvery = 10 * time.Millisecond
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c, srv
}

// node is one in-process worker: a wrapped service plus its HTTP server.
type node struct {
	w   *Worker
	svc *service.Service
	srv *httptest.Server
}

// startWorkerNode builds a worker around a fresh service and joins it to
// the coordinator at coordURL.
func startWorkerNode(t *testing.T, coordURL, name string, reg *service.Registry, svcCfg service.Config) *node {
	t.Helper()
	svcCfg.Registry = reg
	if svcCfg.Workers == 0 {
		svcCfg.Workers = 2
	}
	if svcCfg.QueueDepth == 0 {
		svcCfg.QueueDepth = 32
	}
	n := &node{svc: service.New(svcCfg)}
	// The handler needs the worker, the worker needs the server URL: a lazy
	// handler breaks the cycle (no request arrives before Start anyway).
	n.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		n.w.Handler().ServeHTTP(rw, r)
	}))
	var err error
	n.w, err = NewWorker(WorkerConfig{
		Name:        name,
		Coordinator: coordURL,
		SelfURL:     n.srv.URL,
		Heartbeat:   20 * time.Millisecond,
	}, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	n.w.Start()
	t.Cleanup(func() {
		n.w.Stop()
		n.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = n.svc.Shutdown(ctx)
	})
	return n
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitReport polls the canonical report endpoint until the batch finishes.
func waitReport(t *testing.T, base, batch string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/batch/" + batch + "/report")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return raw
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("batch %s never completed", batch)
	return nil
}

// waitJobDone polls one job until terminal, returning its final view.
func waitJobDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if st := getJSON(t, base+"/v1/jobs/"+id, &v); st == http.StatusOK && terminal(v.State) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// waitWorkers polls /cluster/status until n workers have joined.
func waitWorkers(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var sv StatusView
		if st := getJSON(t, base+"/cluster/status", &sv); st == http.StatusOK && len(sv.Workers) >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d workers", n)
}

// scrapeMetric extracts one sample from a Prometheus text exposition.
func scrapeMetric(t *testing.T, url, metric string) float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + ` ([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(string(raw))
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: bad sample %q", metric, m[1])
	}
	return v
}

var sweepReq = service.BatchRequest{
	Experiment: "ctest",
	Sweep: &service.Sweep{
		Archs: []string{"alderlake", "skylake"},
		Seeds: []int64{1, 2, 3},
	},
}

// TestClusterSweepReportMatchesStandalone is the tentpole acceptance
// criterion: the coordinator's canonical batch report over 1, 2 and 4
// workers is byte-identical to the standalone service's report for the
// same sweep.
func TestClusterSweepReportMatchesStandalone(t *testing.T) {
	svc := service.New(service.Config{Registry: ctestRegistry(), Workers: 2, QueueDepth: 32})
	ssrv := httptest.NewServer(svc.Handler())
	defer ssrv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	var sresp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, ssrv.URL+"/v1/batch", sweepReq, &sresp); st != http.StatusAccepted {
		t.Fatalf("standalone batch submit: status %d", st)
	}
	want := waitReport(t, ssrv.URL, sresp.Batch)

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, csrv := startCoord(t, CoordinatorConfig{})
			for i := 0; i < workers; i++ {
				startWorkerNode(t, csrv.URL, fmt.Sprintf("w%d", i), ctestRegistry(), service.Config{})
			}
			var cresp struct {
				Batch string `json:"batch"`
			}
			if st := postJSON(t, csrv.URL+"/v1/batch", sweepReq, &cresp); st != http.StatusAccepted {
				t.Fatalf("cluster batch submit: status %d", st)
			}
			got := waitReport(t, csrv.URL, cresp.Batch)
			if !bytes.Equal(got, want) {
				t.Errorf("cluster report (%d workers) diverges from standalone:\ngot:  %s\nwant: %s",
					workers, got, want)
			}
		})
	}
}

// TestClusterAffinityRouting: after one job of a (experiment, arch, noise)
// group completes on a worker, subsequent jobs of the group route to that
// worker and the affinity-hit metric records it.
func TestClusterAffinityRouting(t *testing.T) {
	_, csrv := startCoord(t, CoordinatorConfig{MaxInflightPerWorker: 8})
	for i := 0; i < 3; i++ {
		startWorkerNode(t, csrv.URL, fmt.Sprintf("w%d", i), ctestRegistry(), service.Config{})
	}
	waitWorkers(t, csrv.URL, 3)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "ctest", Params: service.Params{Arch: "alderlake", Seed: 1},
	}, &v)
	first := waitJobDone(t, csrv.URL, v.ID)
	if first.Worker == "" {
		t.Fatal("finished job reports no worker")
	}

	for seed := int64(2); seed <= 5; seed++ {
		postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
			Experiment: "ctest", Params: service.Params{Arch: "alderlake", Seed: seed},
		}, &v)
		done := waitJobDone(t, csrv.URL, v.ID)
		if done.Worker != first.Worker {
			t.Errorf("seed %d ran on %s, want affinity to %s", seed, done.Worker, first.Worker)
		}
	}
	if hits := scrapeMetric(t, csrv.URL+"/metrics", `pathfinderd_cluster_affinity_total{outcome="hit"}`); hits < 4 {
		t.Errorf("affinity hits = %v, want >= 4", hits)
	}
}

// TestClusterBackpressure429Requeue: a worker with a tiny queue bounces
// excess assignments with 429; the coordinator requeues them and the whole
// burst still completes.
func TestClusterBackpressure429Requeue(t *testing.T) {
	release := make(chan struct{})
	gateReg := func(blocking bool) *service.Registry {
		r := ctestRegistry()
		if err := r.Register(service.Experiment{
			Name:        "gate",
			Description: "blocks until released",
			Run: func(ctx context.Context, p service.Params) (any, cpu.Counters, error) {
				if blocking {
					select {
					case <-release:
					case <-ctx.Done():
						return nil, cpu.Counters{}, ctx.Err()
					}
				}
				return struct {
					Seed int64 `json:"seed"`
				}{p.Seed}, cpu.Counters{}, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		return r
	}

	_, csrv := startCoord(t, CoordinatorConfig{Registry: gateReg(false), MaxInflightPerWorker: 6})
	startWorkerNode(t, csrv.URL, "w0", gateReg(true), service.Config{Workers: 1, QueueDepth: 1})
	waitWorkers(t, csrv.URL, 1)

	req := service.BatchRequest{Experiment: "gate", Jobs: make([]service.SubmitRequest, 6)}
	for i := range req.Jobs {
		req.Jobs[i] = service.SubmitRequest{Experiment: "gate", Params: service.Params{Seed: int64(i + 1)}}
	}
	var resp struct {
		Batch string `json:"batch"`
	}
	if st := postJSON(t, csrv.URL+"/v1/batch", req, &resp); st != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", st)
	}

	// Give the dispatcher time to hit the wall, then open the gate.
	deadline := time.Now().Add(10 * time.Second)
	for scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_backpressure_requeues_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("backpressure requeues never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	report := waitReport(t, csrv.URL, resp.Batch)
	var rep service.Report
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ByState[service.StateDone] != 6 {
		t.Errorf("by_state = %v, want 6 done", rep.ByState)
	}
}

// TestClusterLeaseReassignment: a worker that stops heartbeating while
// holding a job loses the lease; the job is reassigned to a live worker and
// completes there.
func TestClusterLeaseReassignment(t *testing.T) {
	gateReg := func(wedged bool) *service.Registry {
		r := ctestRegistry()
		if err := r.Register(service.Experiment{
			Name:        "gate",
			Description: "wedges on one worker only",
			Run: func(ctx context.Context, p service.Params) (any, cpu.Counters, error) {
				if wedged {
					<-ctx.Done()
					return nil, cpu.Counters{}, ctx.Err()
				}
				return struct {
					Seed int64 `json:"seed"`
				}{p.Seed}, cpu.Counters{}, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		return r
	}

	_, csrv := startCoord(t, CoordinatorConfig{
		Registry:     gateReg(false),
		LeaseTTL:     150 * time.Millisecond,
		WorkerExpiry: 250 * time.Millisecond,
	})
	// Sorted-name tie-breaking pins the first assignment onto "a-wedged".
	wedged := startWorkerNode(t, csrv.URL, "a-wedged", gateReg(true), service.Config{})
	startWorkerNode(t, csrv.URL, "b-live", gateReg(false), service.Config{})
	waitWorkers(t, csrv.URL, 2)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "gate", Params: service.Params{Seed: 7},
	}, &v)

	// Wait for the wedged worker to actually hold the job, then kill its
	// heartbeats (the simulated node death).
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := wedged.svc.List(service.ListFilter{}), error(nil)
		_ = err
		if len(got) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged worker never received the job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	wedged.w.Stop()

	done := waitJobDone(t, csrv.URL, v.ID)
	if done.State != service.StateDone {
		t.Fatalf("job state %s (%s), want done", done.State, done.Error)
	}
	if done.Worker != "b-live" {
		t.Errorf("job finished on %q, want reassignment to b-live", done.Worker)
	}
	if n := scrapeMetric(t, csrv.URL+"/metrics", "pathfinderd_cluster_lease_reassignments_total"); n < 1 {
		t.Errorf("lease reassignments = %v, want >= 1", n)
	}
}

// TestClusterSnapshotExchange drives the full content-addressed exchange
// over HTTP: a worker trains AES warm state, advertises it, and a peer
// resolves the key through the coordinator and fetches the snapshot,
// hash-verified end to end.
func TestClusterSnapshotExchange(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	_, csrv := startCoord(t, CoordinatorConfig{Registry: service.NewRegistry()})
	n := startWorkerNode(t, csrv.URL, "w0", service.NewRegistry(), service.Config{})
	waitWorkers(t, csrv.URL, 1)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "aes", Params: service.Params{Trials: 2, Noise: -1, Seed: 201},
	}, &v)
	if done := waitJobDone(t, csrv.URL, v.ID); done.State != service.StateDone {
		t.Fatalf("aes job state %s: %s", done.State, done.Error)
	}

	// The warm ad surfaces on the next heartbeat.
	var key string
	deadline := time.Now().Add(10 * time.Second)
	for key == "" {
		var sv StatusView
		getJSON(t, csrv.URL+"/cluster/status", &sv)
		for _, w := range sv.Workers {
			for _, k := range w.WarmKeys {
				if strings.HasPrefix(k, "aes-warm|") {
					key = k
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never advertised an aes-warm snapshot")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A second (peer) worker resolves the key and fetches the snapshot.
	peer, err := NewWorker(WorkerConfig{
		Name: "peer", Coordinator: csrv.URL, SelfURL: "http://peer.invalid",
	}, n.svc)
	if err != nil {
		t.Fatal(err)
	}
	wk, err := harness.ParseWarmStateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := peer.fetchWarm(wk)
	if !ok {
		t.Fatal("peer fetch failed")
	}
	local, ok := harness.LookupWarmSnapshot(wk)
	if !ok {
		t.Fatal("advertised snapshot missing from the local cache")
	}
	if snap.Hash() != local.Hash() {
		t.Fatalf("fetched snapshot hash %#x, want %#x", snap.Hash(), local.Hash())
	}
	if serves := scrapeMetric(t, n.srv.URL+"/metrics", "pathfinderd_worker_snapshot_serves_total"); serves < 1 {
		t.Errorf("snapshot serves = %v, want >= 1", serves)
	}
}

// TestClusterAESAffinitySkipsTraining: the second AES job of a warm group
// routes to the worker that trained the group and restores warm state
// instead of re-training.
func TestClusterAESAffinitySkipsTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	_, csrv := startCoord(t, CoordinatorConfig{Registry: service.NewRegistry()})
	startWorkerNode(t, csrv.URL, "w0", service.NewRegistry(), service.Config{})
	startWorkerNode(t, csrv.URL, "w1", service.NewRegistry(), service.Config{})
	waitWorkers(t, csrv.URL, 2)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "aes", Params: service.Params{Trials: 2, Noise: -1, Seed: 301},
	}, &v)
	first := waitJobDone(t, csrv.URL, v.ID)
	if first.State != service.StateDone {
		t.Fatalf("first aes job: %s (%s)", first.State, first.Error)
	}

	hits0, _ := harness.WarmCacheStats()
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "aes", Params: service.Params{Trials: 2, Noise: -1, Seed: 302},
	}, &v)
	second := waitJobDone(t, csrv.URL, v.ID)
	if second.State != service.StateDone {
		t.Fatalf("second aes job: %s (%s)", second.State, second.Error)
	}
	if second.Worker != first.Worker {
		t.Errorf("second job ran on %q, want affinity to %q", second.Worker, first.Worker)
	}
	// Warm restores happen at trial-group grain (one batch restore serves a
	// whole BatchSize group of trials), so a job contributes one hit per
	// group, not one per trial. The phase-1 key is seed-specific and misses
	// on every new job by design; the shared "aes-warm" snapshot hitting at
	// all is what proves the affinity-routed job restored instead of
	// re-warming.
	hits1, _ := harness.WarmCacheStats()
	if hits1 < hits0+1 {
		t.Errorf("warm hits %d -> %d; the affinity-routed job re-trained instead of restoring", hits0, hits1)
	}
	if hits := scrapeMetric(t, csrv.URL+"/metrics", `pathfinderd_cluster_affinity_total{outcome="hit"}`); hits < 1 {
		t.Errorf("affinity hits = %v, want >= 1", hits)
	}
}

// TestCoordinatorJournalRecovery: pending jobs submitted before a
// coordinator restart are replayed, re-dispatched and complete under the
// new incarnation, with ID sequences resuming past the replayed maximum.
func TestCoordinatorJournalRecovery(t *testing.T) {
	dir := t.TempDir()

	c1, err := NewCoordinator(CoordinatorConfig{Registry: ctestRegistry(), DataDir: dir, DispatchEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	batch, views, err := c1.SubmitSweep("ctest", service.Params{}, []string{"alderlake"}, []int64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("submitted %d jobs, want 3", len(views))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := c1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	c2, csrv := startCoord(t, CoordinatorConfig{Registry: ctestRegistry(), DataDir: dir})
	startWorkerNode(t, csrv.URL, "w0", ctestRegistry(), service.Config{})
	report := waitReport(t, csrv.URL, batch)
	var rep service.Report
	if err := json.Unmarshal(report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total != 3 || rep.ByState[service.StateDone] != 3 {
		t.Fatalf("recovered batch report: total %d, by_state %v", rep.Total, rep.ByState)
	}
	// Sequence numbers resume past the replayed jobs: no ID reuse.
	v, err := c2.Submit("ctest", service.Params{Seed: 9}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range views {
		if v.ID == old.ID {
			t.Fatalf("restarted coordinator reused job ID %s", v.ID)
		}
	}
}

// TestClusterCancelPropagates: cancelling an assigned job reaches the
// worker through the heartbeat reply and the job finalizes cancelled.
func TestClusterCancelPropagates(t *testing.T) {
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	gateReg := func(blocking bool) *service.Registry {
		r := ctestRegistry()
		if err := r.Register(service.Experiment{
			Name:        "gate",
			Description: "blocks until released or cancelled",
			Run: func(ctx context.Context, p service.Params) (any, cpu.Counters, error) {
				if blocking {
					select {
					case <-release:
					case <-ctx.Done():
						return nil, cpu.Counters{}, ctx.Err()
					}
				}
				return struct {
					Seed int64 `json:"seed"`
				}{p.Seed}, cpu.Counters{}, nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		return r
	}

	_, csrv := startCoord(t, CoordinatorConfig{Registry: gateReg(false)})
	startWorkerNode(t, csrv.URL, "w0", gateReg(true), service.Config{})
	waitWorkers(t, csrv.URL, 1)

	var v JobView
	postJSON(t, csrv.URL+"/v1/jobs", service.SubmitRequest{
		Experiment: "gate", Params: service.Params{Seed: 3},
	}, &v)

	// Wait until it is running on the worker, then cancel at the coordinator.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobView
		getJSON(t, csrv.URL+"/v1/jobs/"+v.ID, &cur)
		if cur.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := postJSON(t, csrv.URL+"/v1/jobs/"+v.ID+"/cancel", struct{}{}, nil); st != http.StatusOK {
		t.Fatalf("cancel: status %d", st)
	}
	done := waitJobDone(t, csrv.URL, v.ID)
	if done.State != service.StateCancelled {
		t.Errorf("state = %s, want cancelled", done.State)
	}
}

// TestWorkerAdvertisesAndServesStoreSnapshots: a worker given a persistent
// snapshot store advertises disk-resident keys the in-memory warm cache has
// never held, and serves their snapshot blobs to peers straight from disk —
// the property that makes warm affinity survive a daemon restart.
func TestWorkerAdvertisesAndServesStoreSnapshots(t *testing.T) {
	st, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{Seed: 7})
	snap := m.Snapshot()
	const key = "cluster-store-test|Alder Lake|194|0000000000000abc|7|0"
	st.Save(key, snap, nil)
	wantHash := fmt.Sprintf("%016x", snap.Hash())

	svc := service.New(service.Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	// The worker is never Started: advertisements and the snapshot routes
	// must work without a live heartbeat loop.
	w, err := NewWorker(WorkerConfig{
		Name: "disk", Coordinator: "http://coord.invalid", SelfURL: "http://self.invalid",
		SnapStore: st,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}

	found := false
	for _, ad := range w.advertisements() {
		if ad.Key == key {
			found = true
			if ad.Hash != wantHash {
				t.Errorf("advertised hash %s, want %s", ad.Hash, wantHash)
			}
		}
	}
	if !found {
		t.Fatal("disk-resident key missing from warm advertisements")
	}

	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	var index struct {
		Snapshots []struct {
			Key  string `json:"key"`
			Hash string `json:"hash"`
		} `json:"snapshots"`
	}
	getJSON(t, srv.URL+"/snapshots", &index)
	found = false
	for _, e := range index.Snapshots {
		found = found || e.Key == key
	}
	if !found {
		t.Fatal("disk-resident key missing from /snapshots index")
	}

	if _, ok := harness.LookupWarmSnapshot(harness.WarmStateKey{Kind: "cluster-store-test"}); ok {
		t.Fatal("test key unexpectedly resident in the warm cache")
	}
	resp, err := http.Get(srv.URL + "/snapshots/" + wantHash)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot download: status %d, err %v", resp.StatusCode, err)
	}
	got, err := cpu.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != snap.Hash() {
		t.Fatalf("served snapshot hash %#x, want %#x", got.Hash(), snap.Hash())
	}
}
