package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
	"pathfinder/internal/wire"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator; it must be unique per
	// cluster and stable across heartbeats.
	Name string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// SelfURL is this worker's advertised base URL — the address the
	// coordinator assigns jobs to and peers fetch snapshots from.
	SelfURL string
	// Heartbeat is the heartbeat/result-push interval. <=0 means 1s.
	Heartbeat time.Duration
	// SnapStore optionally backs the warm tier with the persistent on-disk
	// snapshot store: disk-resident keys are advertised to the coordinator
	// even before this process has warmed them, and peer snapshot downloads
	// are served straight from disk when the in-memory cache has evicted
	// the entry.
	SnapStore *snapstore.Store

	// Timeouts are the per-RPC-class context deadlines for worker→
	// coordinator and worker→peer calls, replacing a flat client timeout.
	// Zero fields take the documented defaults.
	Timeouts RPCTimeouts

	// RetryPerSecond and RetryBurst tune the shared retry-token budget:
	// every retried RPC (heartbeat, result push, fetch legs) spends one
	// token, so a partitioned worker degrades to single attempts instead of
	// amplifying a sick network. RetryPerSecond <=0 means 2; RetryBurst
	// <=0 means 2×RetryPerSecond.
	RetryPerSecond float64
	RetryBurst     float64

	// HedgeDelay is how long the warm-snapshot fetch waits on the first
	// holder before racing a second leg (the second-ranked holder, or the
	// same holder again when only one exists). <=0 means 50ms.
	HedgeDelay time.Duration

	// NoDeltaFetch disables delta negotiation on peer snapshot fetches:
	// this worker stops advertising locally-held base hashes, so holders
	// always answer with full blobs. Serving deltas to peers that ask is
	// unaffected.
	NoDeltaFetch bool

	Logger     *slog.Logger // nil discards
	HTTPClient *http.Client // nil uses a pooled keep-alive client (deadlines come from Timeouts)
}

// deltaBaseHeader names the requester-advertised base a snapshot reply was
// delta-encoded against; absent on full-blob replies.
const deltaBaseHeader = "X-Pathfinder-Delta-Base"

// maxHaveHashes caps the base hashes a fetch advertises (and a holder will
// consider) — enough to cover the warm keys of one sweep without growing
// request URLs unboundedly.
const maxHaveHashes = 16

// blobPool recycles snapshot encode buffers across the serve and
// delta-apply paths, so the ~MiB-scale encodings do not allocate per
// request.
var blobPool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<20); return &b }}

// workerMetrics are the worker-side cluster counters, appended to the
// wrapped service's /metrics exposition.
type workerMetrics struct {
	assignments    atomic.Uint64 // accepted assignments (single or batched)
	rejected       atomic.Uint64 // assignments bounced as saturated
	resultsPushed  atomic.Uint64
	snapshotServes atomic.Uint64 // peer snapshot downloads served
	heartbeatErrs  atomic.Uint64
	hedgeWins      atomic.Uint64 // warm fetches delivered by a non-primary leg
	hedgeLosses    atomic.Uint64 // hedge legs started but beaten by the primary
	fetchCorrupt   atomic.Uint64 // peer snapshots rejected by verification
	deltaServes    atomic.Uint64 // snapshots served as PFWD deltas against a requester-held base
	deltaApplied   atomic.Uint64 // peer deltas materialized against a local base
	deltaFallback  atomic.Uint64 // delta fetches that fell back to a full blob
}

// Worker wraps a full service.Service as one cluster execution node: it
// accepts assignments over HTTP, heartbeats progress and warm-key
// advertisements to the coordinator, pushes terminal results until acked,
// serves its warm snapshots to peers by content hash, and installs the
// harness warm-fetch hook that pulls missing warm state from peers.
type Worker struct {
	cfg    WorkerConfig
	svc    *service.Service
	log    *slog.Logger
	client *http.Client
	m      workerMetrics
	budget *retryBudget

	mu    sync.Mutex
	local map[string]string // cluster job ID → local job ID

	retrySeq atomic.Uint64 // deterministic jitter stream for retry delays

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWorker wraps svc. The worker does not own svc's lifecycle: callers
// shut the service down after stopping the worker.
func NewWorker(cfg WorkerConfig, svc *service.Service) (*Worker, error) {
	if cfg.Name == "" || cfg.Coordinator == "" || cfg.SelfURL == "" {
		return nil, fmt.Errorf("cluster: worker needs Name, Coordinator and SelfURL")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = defaultHTTPClient()
	}
	cfg.Timeouts = cfg.Timeouts.withDefaults()
	if cfg.RetryPerSecond <= 0 {
		cfg.RetryPerSecond = 2
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 50 * time.Millisecond
	}
	return &Worker{
		cfg:    cfg,
		svc:    svc,
		log:    cfg.Logger,
		client: cfg.HTTPClient,
		budget: newRetryBudget(cfg.RetryPerSecond, cfg.RetryBurst, nil),
		local:  make(map[string]string),
		stop:   make(chan struct{}),
	}, nil
}

// Start launches the heartbeat loop and installs the process-global warm
// fetch hook. (The hook is process-wide: with several in-process workers —
// a test-only arrangement — the last Start wins, which is harmless because
// every worker's hook resolves through the same coordinator.)
func (w *Worker) Start() {
	harness.SetWarmFetch(w.fetchWarm)
	w.wg.Add(1)
	go w.loop()
	w.log.Info("cluster worker started", "name", w.cfg.Name, "coordinator", w.cfg.Coordinator)
}

// Stop halts the heartbeat loop after a final result push, and removes the
// warm fetch hook. It does not shut down the wrapped service. Idempotent.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.wg.Wait()
		harness.SetWarmFetch(nil)
	})
}

func (w *Worker) loop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			w.tick() // final push so finished work isn't stranded until resend
			return
		case <-t.C:
			w.tick()
		}
	}
}

// tick pushes terminal results (resending until acked), then heartbeats.
func (w *Worker) tick() {
	w.mu.Lock()
	pairs := make(map[string]string, len(w.local))
	for cid, lid := range w.local {
		pairs[cid] = lid
	}
	w.mu.Unlock()

	var results []JobResult
	var live []JobStatus
	for cid, lid := range pairs {
		v, err := w.svc.Get(lid)
		if err != nil {
			results = append(results, JobResult{ID: cid, State: service.StateFailed,
				Error: fmt.Sprintf("local job %s vanished: %v", lid, err)})
			continue
		}
		if terminal(v.State) {
			results = append(results, JobResult{
				ID: cid, State: v.State, Result: v.Result, Error: v.Error,
				Stats: v.SimStats, Attempts: v.Attempts,
			})
		} else {
			live = append(live, JobStatus{ID: cid, State: v.State})
		}
	}

	if len(results) > 0 {
		var reply ResultsReply
		if err := w.post("/v1/cluster/results", w.cfg.Timeouts.Heartbeat, ResultsPush{Worker: w.cfg.Name, Results: results}, &reply); err != nil {
			w.m.heartbeatErrs.Add(1)
			w.log.Warn("result push failed, will resend", "err", err)
		} else {
			w.mu.Lock()
			for _, id := range reply.Acked {
				delete(w.local, id)
			}
			w.mu.Unlock()
			w.m.resultsPushed.Add(uint64(len(reply.Acked)))
		}
	}

	warmAds := w.advertisements()
	hb := Heartbeat{
		Worker:   w.cfg.Name,
		Addr:     w.cfg.SelfURL,
		Queue:    w.svc.QueueDepth(),
		Capacity: w.svc.Workers(),
		Jobs:     live,
		WarmKeys: warmAds,
	}
	var reply HeartbeatReply
	if err := w.post("/v1/cluster/heartbeat", w.cfg.Timeouts.Heartbeat, hb, &reply); err != nil {
		w.m.heartbeatErrs.Add(1)
		w.log.Warn("heartbeat failed", "err", err)
		return
	}
	for _, cid := range reply.Cancel {
		w.mu.Lock()
		lid, ok := w.local[cid]
		w.mu.Unlock()
		if !ok {
			continue
		}
		if _, err := w.svc.Cancel(lid); err != nil && !errors.Is(err, service.ErrFinished) {
			w.log.Warn("relayed cancel failed", "cluster_job", cid, "local_job", lid, "err", err)
		}
	}
}

// advertisements merges the in-memory warm cache with the persistent
// snapshot store into one warm-key advertisement list. Memory wins on a
// duplicate key (same content either way — store entries are the spilled
// snapshots), and disk-only keys let the coordinator route work at this
// worker across restarts, before anything is re-warmed.
func (w *Worker) advertisements() []WarmAd {
	ads := harness.WarmSnapshots()
	warmAds := make([]WarmAd, 0, len(ads))
	seen := make(map[string]bool, len(ads))
	for _, s := range ads {
		warmAds = append(warmAds, WarmAd{Key: s.Key.String(), Hash: fmt.Sprintf("%016x", s.Snap.Hash())})
		seen[s.Key.String()] = true
	}
	if w.cfg.SnapStore != nil {
		for _, e := range w.cfg.SnapStore.Entries() {
			if seen[e.Key] {
				continue
			}
			warmAds = append(warmAds, WarmAd{Key: e.Key, Hash: fmt.Sprintf("%016x", e.SnapHash)})
		}
	}
	return warmAds
}

// post sends one JSON request to the coordinator under the given RPC-class
// deadline, retrying once when the shared retry budget allows it. The retry
// delay uses the harness's deterministic backoff+jitter, seeded from a
// per-worker monotone counter.
func (w *Worker) post(path string, timeout time.Duration, body, reply any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for attempt := 1; ; attempt++ {
		err = w.postOnce(path, timeout, raw, reply)
		if err == nil {
			return nil
		}
		if attempt >= 2 || !w.budget.take() {
			return err
		}
		delay := (harness.Retry{Backoff: 25 * time.Millisecond}).Delay(attempt, int64(w.retrySeq.Add(1)))
		select {
		case <-w.stop:
			return err
		case <-time.After(delay):
		}
	}
}

func (w *Worker) postOnce(path string, timeout time.Duration, raw []byte, reply any) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("coordinator returned %s", resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(reply)
}

// fetchWarm is the harness warm-fetch hook: ask the coordinator who holds
// the key (up to two ranked holders), then hedge-fetch the snapshot —
// race the first holder against a delayed second leg, cancel the loser,
// verify the content hash, and report corrupt peers to the coordinator.
// Every failure declines the fetch — the caller trains locally, which is
// always correct, just slower; a sweep never wedges on fetch failures.
func (w *Worker) fetchWarm(key harness.WarmStateKey) (*cpu.Snapshot, bool) {
	q := url.Values{"key": {key.String()}, "from": {w.cfg.Name}}
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.Timeouts.Control)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/v1/cluster/snapshots?"+q.Encode(), nil)
	if err != nil {
		cancel()
		return nil, false
	}
	resp, err := w.client.Do(req)
	if err != nil {
		cancel()
		return nil, false
	}
	var locs SnapshotLocations
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&locs)
	resp.Body.Close()
	cancel()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	holders := locs.Holders[:0:len(locs.Holders)]
	for _, loc := range locs.Holders {
		if loc.Addr != "" && loc.Addr != w.cfg.SelfURL {
			holders = append(holders, loc)
		}
	}
	if len(holders) == 0 {
		return nil, false
	}
	snap, loc, ok := w.hedgedFetch(holders)
	if !ok {
		return nil, false
	}
	w.log.Info("warm snapshot fetched from peer", "peer", loc.Worker, "key", key.String())
	return snap, true
}

// hedgedFetch races up to two fetch legs: leg one to the first-ranked
// holder immediately, leg two after HedgeDelay (or immediately if leg one
// fails first) to the second holder — or the same holder again when only
// one exists, which retries past per-request faults. The first verified
// snapshot wins and the loser's context is cancelled.
func (w *Worker) hedgedFetch(holders []SnapshotLocation) (*cpu.Snapshot, SnapshotLocation, bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type legResult struct {
		snap *cpu.Snapshot
		loc  SnapshotLocation
		leg  int
		err  error
	}
	results := make(chan legResult, 2)
	launch := func(leg int, loc SnapshotLocation) {
		go func() {
			snap, err := w.fetchFromHolder(ctx, loc)
			results <- legResult{snap: snap, loc: loc, leg: leg, err: err}
		}()
	}

	second := holders[0]
	if len(holders) > 1 {
		second = holders[1]
	}
	launch(0, holders[0])
	started := 1
	hedge := time.NewTimer(w.cfg.HedgeDelay)
	defer hedge.Stop()

	failures := 0
	for {
		select {
		case r := <-results:
			if r.err == nil {
				if r.leg > 0 {
					w.m.hedgeWins.Add(1)
				} else if started > 1 {
					w.m.hedgeLosses.Add(1)
				}
				return r.snap, r.loc, true
			}
			failures++
			if started < 2 {
				// Primary failed before the hedge fired: launch the second
				// leg now, if the retry budget allows the extra request.
				hedge.Stop()
				if !w.budget.take() {
					return nil, SnapshotLocation{}, false
				}
				launch(1, second)
				started = 2
			} else if failures >= started {
				return nil, SnapshotLocation{}, false
			}
		case <-hedge.C:
			if started < 2 {
				launch(1, second)
				started = 2
			}
		}
	}
}

// fetchFromHolder downloads and verifies one snapshot. The download may
// arrive as a PFWD delta frame against a base this worker advertised; the
// delta is materialized against the local base before the usual
// verification. A delta that fails to apply is a corrupt delivery — it
// feeds the same peer-report machinery as a corrupt full blob — and
// triggers one full-blob retry from the same holder; a base that was
// evicted locally between advertising and applying is this worker's own
// churn, so that full retry is quiet. Verification failures (undecodable
// wire envelope, content-hash mismatch) count the corrupt metric and
// report the peer to the coordinator before failing the leg, so the hedge
// (or a later fetch) lands on a different holder.
func (w *Worker) fetchFromHolder(ctx context.Context, loc SnapshotLocation) (*cpu.Snapshot, error) {
	blob, deltaBase, err := w.getSnapshot(ctx, loc.Addr, loc.Hash, true)
	if err != nil {
		return nil, err
	}
	if wire.IsDelta(blob) {
		full, derr := w.applyDelta(blob, deltaBase)
		switch {
		case derr != nil:
			w.noteCorrupt(loc, derr)
			w.m.deltaFallback.Add(1)
			if blob, _, err = w.getSnapshot(ctx, loc.Addr, loc.Hash, false); err != nil {
				return nil, fmt.Errorf("full retry after corrupt delta from %s: %w", loc.Worker, err)
			}
		case full == nil:
			w.m.deltaFallback.Add(1)
			if blob, _, err = w.getSnapshot(ctx, loc.Addr, loc.Hash, false); err != nil {
				return nil, err
			}
		default:
			w.m.deltaApplied.Add(1)
			blob = full
		}
	}
	snap, err := cpu.DecodeSnapshot(blob)
	if err != nil {
		w.noteCorrupt(loc, err)
		return nil, fmt.Errorf("corrupt snapshot from %s: %w", loc.Worker, err)
	}
	if got := fmt.Sprintf("%016x", snap.Hash()); got != loc.Hash {
		err = fmt.Errorf("hash mismatch: want %s got %s", loc.Hash, got)
		w.noteCorrupt(loc, err)
		return nil, fmt.Errorf("corrupt snapshot from %s: %w", loc.Worker, err)
	}
	return snap, nil
}

// noteCorrupt accounts one corrupt peer delivery and flags the peer to the
// coordinator (best-effort — the local rejection alone already keeps the
// corruption out of the warm cache).
func (w *Worker) noteCorrupt(loc SnapshotLocation, err error) {
	harness.RecordWarmFetchCorrupt()
	w.m.fetchCorrupt.Add(1)
	w.log.Warn("peer snapshot rejected as corrupt", "peer", loc.Worker, "hash", loc.Hash, "err", err)
	var ack struct {
		OK bool `json:"ok"`
	}
	if perr := w.post("/v1/cluster/report-peer", w.cfg.Timeouts.Control,
		PeerReport{From: w.cfg.Name, Peer: loc.Worker, Class: rpcFailCorrupt}, &ack); perr != nil {
		w.log.Warn("peer report failed", "peer", loc.Worker, "err", perr)
	}
}

// applyDelta materializes a PFWD delta frame against the locally-held base
// the holder named. A nil, nil return means the base is no longer
// materializable here (evicted since it was advertised) — not a peer
// fault; an error means the frame itself is bad: envelope corruption, or a
// body that does not decode against the base it pins.
func (w *Worker) applyDelta(frame []byte, baseHash string) ([]byte, error) {
	if baseHash == "" {
		return nil, fmt.Errorf("delta frame without a %s header", deltaBaseHeader)
	}
	buf := blobPool.Get().(*[]byte)
	defer blobPool.Put(buf)
	base, ok := w.snapshotBlob(baseHash, (*buf)[:0])
	if cap(base) > cap(*buf) {
		*buf = base[:0]
	}
	if !ok {
		return nil, nil
	}
	return wire.DecodeDelta(base, frame)
}

// haveHashes lists up to maxHaveHashes content hashes of snapshots this
// worker can materialize locally (warm cache or persistent store) — the
// delta bases it advertises on a snapshot fetch.
func (w *Worker) haveHashes(exclude string) []string {
	ads := w.advertisements()
	out := make([]string, 0, len(ads))
	seen := map[string]bool{exclude: true}
	for _, a := range ads {
		if seen[a.Hash] {
			continue
		}
		seen[a.Hash] = true
		out = append(out, a.Hash)
		if len(out) >= maxHaveHashes {
			break
		}
	}
	return out
}

// snapshotBlob materializes the encoded snapshot with the given content
// hash by appending into buf: from the in-memory warm cache (encoded on
// the spot), or the persistent store's already-encoded sections.
func (w *Worker) snapshotBlob(hash string, buf []byte) ([]byte, bool) {
	for _, s := range harness.WarmSnapshots() {
		if fmt.Sprintf("%016x", s.Snap.Hash()) != hash {
			continue
		}
		blob, err := s.Snap.AppendBinary(buf)
		if err != nil {
			return nil, false
		}
		return blob, true
	}
	if w.cfg.SnapStore != nil {
		for _, e := range w.cfg.SnapStore.Entries() {
			if fmt.Sprintf("%016x", e.SnapHash) != hash {
				continue
			}
			blob, ok := w.cfg.SnapStore.LoadSnapshotBlob(e.Key)
			if !ok {
				break // entry vanished or failed verification under us
			}
			return append(buf, blob...), true
		}
	}
	return nil, false
}

// getSnapshot downloads one content-addressed snapshot blob from a peer
// under a deadline sized to the blob: FetchBase covers dialing and headers,
// then the deadline is extended per advertised MB once headers arrive.
// With delta negotiation on, the request advertises locally-held base
// hashes and the reply may be a PFWD delta frame; deltaBase relays which
// base the holder chose.
func (w *Worker) getSnapshot(parent context.Context, addr, hash string, allowDelta bool) (blob []byte, deltaBase string, err error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	timer := time.AfterFunc(w.cfg.Timeouts.FetchBase, cancel)
	defer timer.Stop()

	u := addr + "/snapshots/" + hash
	if allowDelta && !w.cfg.NoDeltaFetch {
		if have := w.haveHashes(hash); len(have) > 0 {
			u += "?have=" + strings.Join(have, ",")
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("peer returned %s", resp.Status)
	}
	timer.Reset(w.cfg.Timeouts.fetchDeadline(resp.ContentLength))
	blob, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	return blob, resp.Header.Get(deltaBaseHeader), err
}

// acceptAssignment admits one coordinator assignment into the wrapped
// service. The response distinguishes backpressure (Saturated — full local
// queue, requeued upstream without breaker feedback) from real rejection.
func (w *Worker) acceptAssignment(req RunRequest) RunResponse {
	if req.ID == "" {
		return RunResponse{Error: "missing job id"}
	}
	w.mu.Lock()
	_, dup := w.local[req.ID]
	w.mu.Unlock()
	if dup {
		// Idempotent re-assignment (coordinator retry): already accepted.
		return RunResponse{ID: req.ID, Accepted: true}
	}
	v, err := w.svc.Submit(req.Experiment, req.Params, "", time.Duration(req.TimeoutMS)*time.Millisecond)
	if err != nil {
		if errors.Is(err, service.ErrQueueFull) || errors.Is(err, service.ErrDraining) || errors.Is(err, service.ErrBreakerOpen) {
			w.m.rejected.Add(1)
			return RunResponse{ID: req.ID, Saturated: true, Error: err.Error()}
		}
		return RunResponse{ID: req.ID, Error: err.Error()}
	}
	w.mu.Lock()
	w.local[req.ID] = v.ID
	w.mu.Unlock()
	w.m.assignments.Add(1)
	w.log.Info("assignment accepted", "cluster_job", req.ID, "local_job", v.ID, "experiment", req.Experiment)
	return RunResponse{ID: req.ID, Accepted: true}
}

// Handler returns the worker's HTTP surface: the cluster control routes
// plus, as a fallback, the wrapped service's full API (so a worker is
// inspectable and even directly usable like a standalone daemon).
//
//	POST /v1/cluster/run    accept one assignment (429 on a full queue)
//	POST /v1/cluster/runs   accept one dispatch tick's assignment batch
//	GET  /snapshots         content-addressed snapshot index
//	GET  /snapshots/{hash}  one encoded snapshot blob (a PFWD delta frame
//	                        when the requester advertises a held base)
//	GET  /metrics           service metrics + worker cluster counters
//	...                     everything else: the embedded service API
func (w *Worker) Handler() http.Handler {
	svcHandler := w.svc.Handler()
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/cluster/run", func(rw http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if !readJSON(rw, r, &req) {
			return
		}
		rr := w.acceptAssignment(req)
		switch {
		case rr.Accepted:
			writeJSON(rw, http.StatusOK, rr)
		case rr.Saturated:
			writeJSON(rw, http.StatusTooManyRequests, map[string]any{"error": rr.Error})
		default:
			writeJSON(rw, http.StatusBadRequest, map[string]any{"error": rr.Error})
		}
	})

	mux.HandleFunc("POST /v1/cluster/runs", func(rw http.ResponseWriter, r *http.Request) {
		var batch RunBatch
		if !readJSON(rw, r, &batch) {
			return
		}
		reply := RunBatchReply{Results: make([]RunResponse, len(batch.Jobs))}
		for i, req := range batch.Jobs {
			reply.Results[i] = w.acceptAssignment(req)
		}
		writeJSON(rw, http.StatusOK, reply)
	})

	mux.HandleFunc("GET /snapshots", func(rw http.ResponseWriter, r *http.Request) {
		type entry struct {
			Key  string `json:"key"`
			Hash string `json:"hash"`
		}
		ads := w.advertisements()
		out := make([]entry, 0, len(ads))
		for _, a := range ads {
			out = append(out, entry{Key: a.Key, Hash: a.Hash})
		}
		writeJSON(rw, http.StatusOK, map[string]any{"total": len(out), "snapshots": out})
	})

	mux.HandleFunc("GET /snapshots/{hash}", func(rw http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		tbuf := blobPool.Get().(*[]byte)
		defer blobPool.Put(tbuf)
		blob, ok := w.snapshotBlob(hash, (*tbuf)[:0])
		if cap(blob) > cap(*tbuf) {
			*tbuf = blob[:0]
		}
		if !ok {
			writeJSON(rw, http.StatusNotFound, map[string]any{"error": "no snapshot with that hash"})
			return
		}
		// Delta negotiation: when the requester advertises bases it holds
		// and one is materializable here too, answer with a PFWD frame —
		// but only when the delta actually beats the full blob on the wire.
		if haveQ := r.URL.Query().Get("have"); haveQ != "" {
			have := strings.Split(haveQ, ",")
			if len(have) > maxHaveHashes {
				have = have[:maxHaveHashes]
			}
			for _, baseHash := range have {
				if baseHash == "" || baseHash == hash {
					continue
				}
				bbuf := blobPool.Get().(*[]byte)
				base, held := w.snapshotBlob(baseHash, (*bbuf)[:0])
				if cap(base) > cap(*bbuf) {
					*bbuf = base[:0]
				}
				if !held {
					blobPool.Put(bbuf)
					continue
				}
				dbuf := blobPool.Get().(*[]byte)
				delta := wire.AppendDelta((*dbuf)[:0], base, blob)
				if cap(delta) > cap(*dbuf) {
					*dbuf = delta[:0]
				}
				blobPool.Put(bbuf)
				if len(delta) < len(blob) {
					w.m.snapshotServes.Add(1)
					w.m.deltaServes.Add(1)
					rw.Header().Set("Content-Type", "application/octet-stream")
					rw.Header().Set(deltaBaseHeader, baseHash)
					rw.Header().Set("Content-Length", fmt.Sprint(len(delta)))
					_, _ = rw.Write(delta)
					blobPool.Put(dbuf)
					return
				}
				blobPool.Put(dbuf)
				break // a shared base exists but the delta does not pay; serve full
			}
		}
		w.m.snapshotServes.Add(1)
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.Header().Set("Content-Length", fmt.Sprint(len(blob)))
		_, _ = rw.Write(blob)
	})

	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		// The service exposition first, then the worker's cluster counters:
		// one scrape covers both layers.
		svcHandler.ServeHTTP(rw, r)
		warmHits, warmMisses := harness.WarmCacheStats()
		fetchHits, fetchMisses := harness.WarmFetchStats()
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_assignments_total cluster assignments accepted\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_assignments_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_assignments_total %d\n", w.m.assignments.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_rejected_total cluster assignments bounced with 429 backpressure\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_rejected_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_rejected_total %d\n", w.m.rejected.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_results_pushed_total terminal results acked by the coordinator\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_results_pushed_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_results_pushed_total %d\n", w.m.resultsPushed.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_snapshot_serves_total warm snapshots served to peers\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_snapshot_serves_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_snapshot_serves_total %d\n", w.m.snapshotServes.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_snapshot_delta_total delta-negotiated snapshot exchange events\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_snapshot_delta_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_snapshot_delta_total{event=\"served\"} %d\n", w.m.deltaServes.Load())
		fmt.Fprintf(rw, "pathfinderd_worker_snapshot_delta_total{event=\"applied\"} %d\n", w.m.deltaApplied.Load())
		fmt.Fprintf(rw, "pathfinderd_worker_snapshot_delta_total{event=\"fallback\"} %d\n", w.m.deltaFallback.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_warm_cache_total process warm-cache lookups, by outcome\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_warm_cache_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_warm_cache_total{outcome=\"hit\"} %d\n", warmHits)
		fmt.Fprintf(rw, "pathfinderd_worker_warm_cache_total{outcome=\"miss\"} %d\n", warmMisses)
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_warm_fetch_total peer warm-state fetches, by outcome\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_warm_fetch_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_warm_fetch_total{outcome=\"hit\"} %d\n", fetchHits)
		fmt.Fprintf(rw, "pathfinderd_worker_warm_fetch_total{outcome=\"miss\"} %d\n", fetchMisses)
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_warm_fetch_corrupt_total peer snapshots rejected by wire/hash verification\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_warm_fetch_corrupt_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_warm_fetch_corrupt_total %d\n", w.m.fetchCorrupt.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_hedge_total hedged warm-fetch outcomes: win = non-primary leg delivered\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_hedge_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_hedge_total{outcome=\"win\"} %d\n", w.m.hedgeWins.Load())
		fmt.Fprintf(rw, "pathfinderd_worker_hedge_total{outcome=\"loss\"} %d\n", w.m.hedgeLosses.Load())
		spent, denied := w.budget.stats()
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_retry_budget_total retry-budget tokens, by outcome\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_retry_budget_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_retry_budget_total{outcome=\"spent\"} %d\n", spent)
		fmt.Fprintf(rw, "pathfinderd_worker_retry_budget_total{outcome=\"denied\"} %d\n", denied)
	})

	mux.Handle("/", svcHandler)
	return mux
}
