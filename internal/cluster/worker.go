package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/service"
	"pathfinder/internal/snapstore"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator; it must be unique per
	// cluster and stable across heartbeats.
	Name string
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// SelfURL is this worker's advertised base URL — the address the
	// coordinator assigns jobs to and peers fetch snapshots from.
	SelfURL string
	// Heartbeat is the heartbeat/result-push interval. <=0 means 1s.
	Heartbeat time.Duration
	// SnapStore optionally backs the warm tier with the persistent on-disk
	// snapshot store: disk-resident keys are advertised to the coordinator
	// even before this process has warmed them, and peer snapshot downloads
	// are served straight from disk when the in-memory cache has evicted
	// the entry.
	SnapStore *snapstore.Store

	Logger     *slog.Logger // nil discards
	HTTPClient *http.Client // nil uses a 10s-timeout client
}

// workerMetrics are the worker-side cluster counters, appended to the
// wrapped service's /metrics exposition.
type workerMetrics struct {
	assignments    atomic.Uint64 // accepted /v1/cluster/run requests
	rejected       atomic.Uint64 // assignments bounced with 429
	resultsPushed  atomic.Uint64
	snapshotServes atomic.Uint64 // peer snapshot downloads served
	heartbeatErrs  atomic.Uint64
}

// Worker wraps a full service.Service as one cluster execution node: it
// accepts assignments over HTTP, heartbeats progress and warm-key
// advertisements to the coordinator, pushes terminal results until acked,
// serves its warm snapshots to peers by content hash, and installs the
// harness warm-fetch hook that pulls missing warm state from peers.
type Worker struct {
	cfg    WorkerConfig
	svc    *service.Service
	log    *slog.Logger
	client *http.Client
	m      workerMetrics

	mu    sync.Mutex
	local map[string]string // cluster job ID → local job ID

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewWorker wraps svc. The worker does not own svc's lifecycle: callers
// shut the service down after stopping the worker.
func NewWorker(cfg WorkerConfig, svc *service.Service) (*Worker, error) {
	if cfg.Name == "" || cfg.Coordinator == "" || cfg.SelfURL == "" {
		return nil, fmt.Errorf("cluster: worker needs Name, Coordinator and SelfURL")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Worker{
		cfg:    cfg,
		svc:    svc,
		log:    cfg.Logger,
		client: cfg.HTTPClient,
		local:  make(map[string]string),
		stop:   make(chan struct{}),
	}, nil
}

// Start launches the heartbeat loop and installs the process-global warm
// fetch hook. (The hook is process-wide: with several in-process workers —
// a test-only arrangement — the last Start wins, which is harmless because
// every worker's hook resolves through the same coordinator.)
func (w *Worker) Start() {
	harness.SetWarmFetch(w.fetchWarm)
	w.wg.Add(1)
	go w.loop()
	w.log.Info("cluster worker started", "name", w.cfg.Name, "coordinator", w.cfg.Coordinator)
}

// Stop halts the heartbeat loop after a final result push, and removes the
// warm fetch hook. It does not shut down the wrapped service. Idempotent.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.wg.Wait()
		harness.SetWarmFetch(nil)
	})
}

func (w *Worker) loop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			w.tick() // final push so finished work isn't stranded until resend
			return
		case <-t.C:
			w.tick()
		}
	}
}

// tick pushes terminal results (resending until acked), then heartbeats.
func (w *Worker) tick() {
	w.mu.Lock()
	pairs := make(map[string]string, len(w.local))
	for cid, lid := range w.local {
		pairs[cid] = lid
	}
	w.mu.Unlock()

	var results []JobResult
	var live []JobStatus
	for cid, lid := range pairs {
		v, err := w.svc.Get(lid)
		if err != nil {
			results = append(results, JobResult{ID: cid, State: service.StateFailed,
				Error: fmt.Sprintf("local job %s vanished: %v", lid, err)})
			continue
		}
		if terminal(v.State) {
			results = append(results, JobResult{
				ID: cid, State: v.State, Result: v.Result, Error: v.Error,
				Stats: v.SimStats, Attempts: v.Attempts,
			})
		} else {
			live = append(live, JobStatus{ID: cid, State: v.State})
		}
	}

	if len(results) > 0 {
		var reply ResultsReply
		if err := w.post("/v1/cluster/results", ResultsPush{Worker: w.cfg.Name, Results: results}, &reply); err != nil {
			w.m.heartbeatErrs.Add(1)
			w.log.Warn("result push failed, will resend", "err", err)
		} else {
			w.mu.Lock()
			for _, id := range reply.Acked {
				delete(w.local, id)
			}
			w.mu.Unlock()
			w.m.resultsPushed.Add(uint64(len(reply.Acked)))
		}
	}

	warmAds := w.advertisements()
	hb := Heartbeat{
		Worker:   w.cfg.Name,
		Addr:     w.cfg.SelfURL,
		Queue:    w.svc.QueueDepth(),
		Capacity: w.svc.Workers(),
		Jobs:     live,
		WarmKeys: warmAds,
	}
	var reply HeartbeatReply
	if err := w.post("/v1/cluster/heartbeat", hb, &reply); err != nil {
		w.m.heartbeatErrs.Add(1)
		w.log.Warn("heartbeat failed", "err", err)
		return
	}
	for _, cid := range reply.Cancel {
		w.mu.Lock()
		lid, ok := w.local[cid]
		w.mu.Unlock()
		if !ok {
			continue
		}
		if _, err := w.svc.Cancel(lid); err != nil && !errors.Is(err, service.ErrFinished) {
			w.log.Warn("relayed cancel failed", "cluster_job", cid, "local_job", lid, "err", err)
		}
	}
}

// advertisements merges the in-memory warm cache with the persistent
// snapshot store into one warm-key advertisement list. Memory wins on a
// duplicate key (same content either way — store entries are the spilled
// snapshots), and disk-only keys let the coordinator route work at this
// worker across restarts, before anything is re-warmed.
func (w *Worker) advertisements() []WarmAd {
	ads := harness.WarmSnapshots()
	warmAds := make([]WarmAd, 0, len(ads))
	seen := make(map[string]bool, len(ads))
	for _, s := range ads {
		warmAds = append(warmAds, WarmAd{Key: s.Key.String(), Hash: fmt.Sprintf("%016x", s.Snap.Hash())})
		seen[s.Key.String()] = true
	}
	if w.cfg.SnapStore != nil {
		for _, e := range w.cfg.SnapStore.Entries() {
			if seen[e.Key] {
				continue
			}
			warmAds = append(warmAds, WarmAd{Key: e.Key, Hash: fmt.Sprintf("%016x", e.SnapHash)})
		}
	}
	return warmAds
}

// post sends one JSON request to the coordinator.
func (w *Worker) post(path string, body, reply any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := w.client.Post(w.cfg.Coordinator+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("coordinator returned %s", resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(reply)
}

// fetchWarm is the harness warm-fetch hook: ask the coordinator who holds
// the key, pull the snapshot from that peer, and verify the content hash.
// Every failure declines the fetch — the caller trains locally, which is
// always correct, just slower.
func (w *Worker) fetchWarm(key harness.WarmStateKey) (*cpu.Snapshot, bool) {
	q := url.Values{"key": {key.String()}, "from": {w.cfg.Name}}
	resp, err := w.client.Get(w.cfg.Coordinator + "/v1/cluster/snapshots?" + q.Encode())
	if err != nil {
		return nil, false
	}
	var loc SnapshotLocation
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&loc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || loc.Addr == "" || loc.Addr == w.cfg.SelfURL {
		return nil, false
	}

	blob, err := w.getSnapshot(loc.Addr, loc.Hash)
	if err != nil {
		w.log.Warn("peer snapshot fetch failed", "peer", loc.Worker, "hash", loc.Hash, "err", err)
		return nil, false
	}
	snap, err := cpu.DecodeSnapshot(blob)
	if err != nil {
		w.log.Warn("peer snapshot rejected", "peer", loc.Worker, "hash", loc.Hash, "err", err)
		return nil, false
	}
	if got := fmt.Sprintf("%016x", snap.Hash()); got != loc.Hash {
		w.log.Warn("peer snapshot hash mismatch", "peer", loc.Worker, "want", loc.Hash, "got", got)
		return nil, false
	}
	w.log.Info("warm snapshot fetched from peer", "peer", loc.Worker, "key", key.String(), "bytes", len(blob))
	return snap, true
}

// getSnapshot downloads one content-addressed snapshot blob from a peer.
func (w *Worker) getSnapshot(addr, hash string) ([]byte, error) {
	resp, err := w.client.Get(addr + "/snapshots/" + hash)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer returned %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// Handler returns the worker's HTTP surface: the cluster control routes
// plus, as a fallback, the wrapped service's full API (so a worker is
// inspectable and even directly usable like a standalone daemon).
//
//	POST /v1/cluster/run    accept one assignment (429 on a full queue)
//	GET  /snapshots         content-addressed snapshot index
//	GET  /snapshots/{hash}  one encoded snapshot blob
//	GET  /metrics           service metrics + worker cluster counters
//	...                     everything else: the embedded service API
func (w *Worker) Handler() http.Handler {
	svcHandler := w.svc.Handler()
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/cluster/run", func(rw http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if !readJSON(rw, r, &req) {
			return
		}
		if req.ID == "" {
			writeJSON(rw, http.StatusBadRequest, map[string]any{"error": "missing job id"})
			return
		}
		w.mu.Lock()
		_, dup := w.local[req.ID]
		w.mu.Unlock()
		if dup {
			// Idempotent re-assignment (coordinator retry): already accepted.
			writeJSON(rw, http.StatusOK, RunResponse{ID: req.ID, Accepted: true})
			return
		}
		v, err := w.svc.Submit(req.Experiment, req.Params, "", time.Duration(req.TimeoutMS)*time.Millisecond)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, service.ErrQueueFull) || errors.Is(err, service.ErrDraining) || errors.Is(err, service.ErrBreakerOpen) {
				status = http.StatusTooManyRequests
				w.m.rejected.Add(1)
			}
			writeJSON(rw, status, map[string]any{"error": err.Error()})
			return
		}
		w.mu.Lock()
		w.local[req.ID] = v.ID
		w.mu.Unlock()
		w.m.assignments.Add(1)
		w.log.Info("assignment accepted", "cluster_job", req.ID, "local_job", v.ID, "experiment", req.Experiment)
		writeJSON(rw, http.StatusOK, RunResponse{ID: req.ID, Accepted: true})
	})

	mux.HandleFunc("GET /snapshots", func(rw http.ResponseWriter, r *http.Request) {
		type entry struct {
			Key  string `json:"key"`
			Hash string `json:"hash"`
		}
		ads := w.advertisements()
		out := make([]entry, 0, len(ads))
		for _, a := range ads {
			out = append(out, entry{Key: a.Key, Hash: a.Hash})
		}
		writeJSON(rw, http.StatusOK, map[string]any{"total": len(out), "snapshots": out})
	})

	mux.HandleFunc("GET /snapshots/{hash}", func(rw http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		for _, s := range harness.WarmSnapshots() {
			if fmt.Sprintf("%016x", s.Snap.Hash()) != hash {
				continue
			}
			blob, err := s.Snap.MarshalBinary()
			if err != nil {
				writeJSON(rw, http.StatusInternalServerError, map[string]any{"error": err.Error()})
				return
			}
			w.m.snapshotServes.Add(1)
			rw.Header().Set("Content-Type", "application/octet-stream")
			rw.Header().Set("Content-Length", fmt.Sprint(len(blob)))
			_, _ = rw.Write(blob)
			return
		}
		// Not in memory: fall back to the persistent store, which holds
		// already-encoded snapshot sections.
		if w.cfg.SnapStore != nil {
			for _, e := range w.cfg.SnapStore.Entries() {
				if fmt.Sprintf("%016x", e.SnapHash) != hash {
					continue
				}
				blob, ok := w.cfg.SnapStore.LoadSnapshotBlob(e.Key)
				if !ok {
					break // entry vanished or failed verification under us
				}
				w.m.snapshotServes.Add(1)
				rw.Header().Set("Content-Type", "application/octet-stream")
				rw.Header().Set("Content-Length", fmt.Sprint(len(blob)))
				_, _ = rw.Write(blob)
				return
			}
		}
		writeJSON(rw, http.StatusNotFound, map[string]any{"error": "no snapshot with that hash"})
	})

	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		// The service exposition first, then the worker's cluster counters:
		// one scrape covers both layers.
		svcHandler.ServeHTTP(rw, r)
		warmHits, warmMisses := harness.WarmCacheStats()
		fetchHits, fetchMisses := harness.WarmFetchStats()
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_assignments_total cluster assignments accepted\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_assignments_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_assignments_total %d\n", w.m.assignments.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_rejected_total cluster assignments bounced with 429 backpressure\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_rejected_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_rejected_total %d\n", w.m.rejected.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_results_pushed_total terminal results acked by the coordinator\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_results_pushed_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_results_pushed_total %d\n", w.m.resultsPushed.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_snapshot_serves_total warm snapshots served to peers\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_snapshot_serves_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_snapshot_serves_total %d\n", w.m.snapshotServes.Load())
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_warm_cache_total process warm-cache lookups, by outcome\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_warm_cache_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_warm_cache_total{outcome=\"hit\"} %d\n", warmHits)
		fmt.Fprintf(rw, "pathfinderd_worker_warm_cache_total{outcome=\"miss\"} %d\n", warmMisses)
		fmt.Fprintf(rw, "# HELP pathfinderd_worker_warm_fetch_total peer warm-state fetches, by outcome\n")
		fmt.Fprintf(rw, "# TYPE pathfinderd_worker_warm_fetch_total counter\n")
		fmt.Fprintf(rw, "pathfinderd_worker_warm_fetch_total{outcome=\"hit\"} %d\n", fetchHits)
		fmt.Fprintf(rw, "pathfinderd_worker_warm_fetch_total{outcome=\"miss\"} %d\n", fetchMisses)
	})

	mux.Handle("/", svcHandler)
	return mux
}
