// Package aes is a from-scratch implementation of AES-128/192/256 built
// around the round-level primitives of the AES-NI instruction set:
// EncRound (aesenc) and EncLastRound (aesenclast) operate on a 16-byte
// state exactly as the hardware instructions do, so the simulated victim
// of the Pathfinder §9 attack computes real ciphertexts and the leaked
// reduced-round values obey real AES algebra.
//
// The state is the standard FIPS-197 column-major block layout: byte i of
// the block is state row i%4, column i/4.
//
// Beyond encryption the package implements the attack-side cryptanalysis:
// recovery of reduced-round ciphertexts' ground truth (ReducedEncrypt),
// inversion of the AES-128 key schedule from any single round key, and
// differential recovery of the master key from "skip-loop" leaks
// (RecoverKeyFromLeaks), the analogue of the two-round key extraction of
// Shivakumar et al. used by the paper.
package aes

import "fmt"

// Block is a 16-byte AES state or key block.
type Block = [16]byte

var (
	sbox    [256]byte
	invSbox [256]byte
)

// gmul multiplies two elements of GF(2^8) modulo x^8+x^4+x^3+x+1.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// ginv returns the multiplicative inverse in GF(2^8), with ginv(0) = 0.
func ginv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 = a^-1 in GF(2^8).
	r := byte(1)
	x := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 != 0 {
			r = gmul(r, x)
		}
		x = gmul(x, x)
	}
	return r
}

func init() {
	// Build the S-box from first principles: multiplicative inverse
	// followed by the FIPS-197 affine transform.
	for i := 0; i < 256; i++ {
		x := ginv(byte(i))
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		invSbox[y] = byte(i)
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// SubBytes applies the S-box to every state byte.
func SubBytes(s Block) Block {
	for i := range s {
		s[i] = sbox[s[i]]
	}
	return s
}

// InvSubBytes applies the inverse S-box.
func InvSubBytes(s Block) Block {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
	return s
}

// SBox exposes the forward S-box for the cryptanalysis routines.
func SBox(b byte) byte { return sbox[b] }

// ShiftRows rotates row r of the state left by r.
func ShiftRows(s Block) Block {
	var o Block
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			o[r+4*c] = s[r+4*((c+r)%4)]
		}
	}
	return o
}

// InvShiftRows rotates row r right by r.
func InvShiftRows(s Block) Block {
	var o Block
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			o[r+4*((c+r)%4)] = s[r+4*c]
		}
	}
	return o
}

// MixColumns applies the MDS matrix to each column.
func MixColumns(s Block) Block {
	var o Block
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		o[4*c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		o[4*c+1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		o[4*c+2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		o[4*c+3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
	return o
}

// InvMixColumns applies the inverse MDS matrix.
func InvMixColumns(s Block) Block {
	var o Block
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		o[4*c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		o[4*c+1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		o[4*c+2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		o[4*c+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
	return o
}

// XorBlocks returns a ^ b.
func XorBlocks(a, b Block) Block {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// EncRound is the aesenc instruction: one full AES round.
func EncRound(state, roundKey Block) Block {
	return XorBlocks(MixColumns(ShiftRows(SubBytes(state))), roundKey)
}

// EncLastRound is the aesenclast instruction: the final round, without
// MixColumns.
func EncLastRound(state, roundKey Block) Block {
	return XorBlocks(ShiftRows(SubBytes(state)), roundKey)
}

// DecRound inverts EncRound (aesdec with the equivalent-inverse key is not
// modeled; DecRound takes the forward round key).
func DecRound(state, roundKey Block) Block {
	return InvSubBytes(InvShiftRows(InvMixColumns(XorBlocks(state, roundKey))))
}

// DecLastRound inverts EncLastRound.
func DecLastRound(state, roundKey Block) Block {
	return InvSubBytes(InvShiftRows(XorBlocks(state, roundKey)))
}

// RoundsForKeySize maps key bytes to round count (10/12/14).
func RoundsForKeySize(n int) (int, error) {
	switch n {
	case 16:
		return 10, nil
	case 24:
		return 12, nil
	case 32:
		return 14, nil
	}
	return 0, fmt.Errorf("aes: invalid key size %d", n)
}

// rcon returns the round constant word for iteration i (1-based).
func rcon(i int) byte {
	c := byte(1)
	for ; i > 1; i-- {
		c = gmul(c, 2)
	}
	return c
}

// ExpandKey derives the Nr+1 round keys from a 16/24/32-byte key.
func ExpandKey(key []byte) ([]Block, error) {
	nr, err := RoundsForKeySize(len(key))
	if err != nil {
		return nil, err
	}
	nk := len(key) / 4
	words := make([][4]byte, 4*(nr+1))
	for i := 0; i < nk; i++ {
		copy(words[i][:], key[4*i:4*i+4])
	}
	for i := nk; i < len(words); i++ {
		t := words[i-1]
		if i%nk == 0 {
			t = [4]byte{sbox[t[1]] ^ rcon(i/nk), sbox[t[2]], sbox[t[3]], sbox[t[0]]}
		} else if nk > 6 && i%nk == 4 {
			t = [4]byte{sbox[t[0]], sbox[t[1]], sbox[t[2]], sbox[t[3]]}
		}
		for j := 0; j < 4; j++ {
			words[i][j] = words[i-nk][j] ^ t[j]
		}
	}
	rks := make([]Block, nr+1)
	for r := range rks {
		for w := 0; w < 4; w++ {
			copy(rks[r][4*w:4*w+4], words[4*r+w][:])
		}
	}
	return rks, nil
}

// Encrypt runs the full cipher over one block with expanded round keys.
func Encrypt(rks []Block, plaintext Block) Block {
	state := XorBlocks(plaintext, rks[0])
	for r := 1; r < len(rks)-1; r++ {
		state = EncRound(state, rks[r])
	}
	return EncLastRound(state, rks[len(rks)-1])
}

// Decrypt inverts Encrypt.
func Decrypt(rks []Block, ciphertext Block) Block {
	state := DecLastRound(ciphertext, rks[len(rks)-1])
	for r := len(rks) - 2; r >= 1; r-- {
		state = DecRound(state, rks[r])
	}
	return XorBlocks(state, rks[0])
}

// ReducedEncrypt computes the value the looped AES-NI victim produces when
// its encryption loop is speculatively exited after n full rounds
// (0 <= n <= Nr-1): the whitened state goes through n aesenc rounds and
// then the aesenclast that the early exit path applies with round key n+1.
// For n == Nr-1 this is exactly the correct ciphertext. It is the ground
// truth the §9 evaluation compares stolen bytes against.
func ReducedEncrypt(rks []Block, plaintext Block, n int) (Block, error) {
	if n < 0 || n > len(rks)-2 {
		return Block{}, fmt.Errorf("aes: reduced round count %d out of range [0,%d]", n, len(rks)-2)
	}
	state := XorBlocks(plaintext, rks[0])
	for r := 1; r <= n; r++ {
		state = EncRound(state, rks[r])
	}
	return EncLastRound(state, rks[n+1]), nil
}
