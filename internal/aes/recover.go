package aes

import "fmt"

// LeakedPair is one oracle observation used by the key recovery: a known
// plaintext together with the transiently leaked "skip-loop" value
// L0 = aesenclast(P ^ k0, k1), obtained by poisoning the loop-entry bounds
// check of the looped AES victim (edge BB1 -> BB5 in Figure 6) so the whole
// encryption loop is speculatively bypassed.
type LeakedPair struct {
	Plaintext Block
	Leak      Block
}

// RecoverKeyFromLeaks recovers the AES-128 master key from skip-loop leaks
// for several known plaintexts (three or four suffice in practice).
//
// The algebra: L0 = ShiftRows(SubBytes(P ^ k0)) ^ k1, so for two
// observations with the same key,
//
//	InvShiftRows(L ^ L')[i] = S(P[i]^k0[i]) ^ S(P'[i]^k0[i])
//
// which is byte-local: every byte of k0 is found independently by testing
// all 256 candidates against each pair and intersecting the survivor sets.
// A single pair always retains at least the paired solution
// k0[i] ^ P[i] ^ P'[i]; pairs with distinct plaintext differences remove it.
//
// The optional fullCiphertext (with verify=true) arbitrates any residual
// ambiguity by trial encryption.
func RecoverKeyFromLeaks(obs []LeakedPair, fullCiphertext Block, verify bool) (Block, error) {
	if len(obs) < 2 {
		return Block{}, fmt.Errorf("aes: need at least 2 leaked pairs, have %d", len(obs))
	}
	// Candidate sets per key byte, filtered pair by pair against obs[0].
	var cands [16][]byte
	for i := 0; i < 16; i++ {
		for k := 0; k < 256; k++ {
			cands[i] = append(cands[i], byte(k))
		}
	}
	ref := obs[0]
	for _, o := range obs[1:] {
		delta := InvShiftRows(XorBlocks(ref.Leak, o.Leak))
		for i := 0; i < 16; i++ {
			var keep []byte
			for _, k := range cands[i] {
				if sbox[ref.Plaintext[i]^k]^sbox[o.Plaintext[i]^k] == delta[i] {
					keep = append(keep, k)
				}
			}
			cands[i] = keep
			if len(keep) == 0 {
				return Block{}, fmt.Errorf("aes: inconsistent leaks, no candidate for byte %d", i)
			}
		}
	}
	// Enumerate the (usually singleton) candidate product.
	total := 1
	for i := 0; i < 16; i++ {
		total *= len(cands[i])
		if total > 1<<16 {
			return Block{}, fmt.Errorf("aes: %d+ residual key candidates; provide more leaked pairs", total)
		}
	}
	var out Block
	found := 0
	var idx [16]int
	for {
		var key Block
		for i := 0; i < 16; i++ {
			key[i] = cands[i][idx[i]]
		}
		ok := true
		if verify {
			rks, err := ExpandKey(key[:])
			if err != nil {
				return Block{}, err
			}
			ok = Encrypt(rks, ref.Plaintext) == fullCiphertext
		}
		if ok {
			out = key
			found++
			if !verify && found > 1 {
				return Block{}, fmt.Errorf("aes: ambiguous key; provide more leaked pairs or a ciphertext to verify against")
			}
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < 16; i++ {
			idx[i]++
			if idx[i] < len(cands[i]) {
				break
			}
			idx[i] = 0
		}
		if i == 16 {
			break
		}
	}
	if found == 0 {
		return Block{}, fmt.Errorf("aes: no key candidate survived verification")
	}
	if verify && found > 1 {
		return Block{}, fmt.Errorf("aes: %d keys encrypt consistently; provide more data", found)
	}
	return out, nil
}

// InvertKeySchedule128 reconstructs the AES-128 master key from any single
// round key. It inverts the key schedule column recursion
//
//	rk[r][c0] = rk[r-1][c0] ^ SubWord(RotWord(rk[r-1][c3])) ^ Rcon(r)
//	rk[r][ci] = rk[r-1][ci] ^ rk[r][ci-1]    (i = 1..3)
//
// walking from the given round back to round 0. Combined with a leaked
// reduced-round ciphertext this turns knowledge of any round key into the
// master key, the step the paper's key-extraction algorithm relies on.
func InvertKeySchedule128(rk Block, round int) (Block, error) {
	if round < 0 || round > 10 {
		return Block{}, fmt.Errorf("aes: AES-128 round %d out of range", round)
	}
	cur := rk
	for r := round; r > 0; r-- {
		var prev Block
		// prev column i (i=3..1): prev[ci] = cur[ci] ^ cur[ci-1].
		for c := 3; c >= 1; c-- {
			for j := 0; j < 4; j++ {
				prev[4*c+j] = cur[4*c+j] ^ cur[4*(c-1)+j]
			}
		}
		// prev column 0 = cur[c0] ^ SubWord(RotWord(prev[c3])) ^ Rcon(r).
		t := [4]byte{
			sbox[prev[12+1]] ^ rcon(r),
			sbox[prev[12+2]],
			sbox[prev[12+3]],
			sbox[prev[12+0]],
		}
		for j := 0; j < 4; j++ {
			prev[j] = cur[j] ^ t[j]
		}
		cur = prev
	}
	return cur, nil
}
