package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

// FIPS-197 Appendix C known-answer vectors.
var fips = []struct {
	key  []byte
	pt   Block
	want Block
}{
	{
		key:  []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f},
		pt:   Block{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		want: Block{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a},
	},
	{
		key: []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
			0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17},
		pt:   Block{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		want: Block{0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d, 0x71, 0x91},
	},
	{
		key: []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
			0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f},
		pt:   Block{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		want: Block{0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49, 0x60, 0x89},
	},
}

func TestFIPSVectors(t *testing.T) {
	for _, v := range fips {
		rks, err := ExpandKey(v.key)
		if err != nil {
			t.Fatal(err)
		}
		if got := Encrypt(rks, v.pt); got != v.want {
			t.Errorf("key len %d: got % x want % x", len(v.key), got, v.want)
		}
		if back := Decrypt(rks, v.want); back != v.pt {
			t.Errorf("key len %d: decrypt got % x", len(v.key), back)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, klen := range []int{16, 24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, klen)
			rng.Read(key)
			var pt Block
			rng.Read(pt[:])
			rks, err := ExpandKey(key)
			if err != nil {
				t.Fatal(err)
			}
			std, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			var want Block
			std.Encrypt(want[:], pt[:])
			if got := Encrypt(rks, pt); got != want {
				t.Fatalf("klen %d mismatch vs stdlib", klen)
			}
		}
	}
}

func TestSboxProperties(t *testing.T) {
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Fatalf("sbox anchors wrong: %#x %#x", sbox[0x00], sbox[0x53])
	}
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatal("sbox not a permutation")
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatal("invSbox not inverse")
		}
	}
}

func TestRoundInverses(t *testing.T) {
	if err := quick.Check(func(s, k Block) bool {
		if DecRound(EncRound(s, k), k) != s {
			return false
		}
		if DecLastRound(EncLastRound(s, k), k) != s {
			return false
		}
		if InvShiftRows(ShiftRows(s)) != s {
			return false
		}
		if InvMixColumns(MixColumns(s)) != s {
			return false
		}
		return InvSubBytes(SubBytes(s)) == s
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncryptViaRoundPrimitivesMatchesAESNISemantics(t *testing.T) {
	// aesenc/aesenclast semantics: whiten + 9 EncRound + EncLastRound must
	// equal the cipher (this is what the ISA's AESENC instructions do).
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 16)
	rng.Read(key)
	rks, _ := ExpandKey(key)
	var pt Block
	rng.Read(pt[:])
	state := XorBlocks(pt, rks[0])
	for r := 1; r <= 9; r++ {
		state = EncRound(state, rks[r])
	}
	state = EncLastRound(state, rks[10])
	if state != Encrypt(rks, pt) {
		t.Fatal("round-primitive composition diverges from Encrypt")
	}
}

func TestReducedEncryptBounds(t *testing.T) {
	rks, _ := ExpandKey(make([]byte, 16))
	if _, err := ReducedEncrypt(rks, Block{}, -1); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := ReducedEncrypt(rks, Block{}, 10); err == nil {
		t.Fatal("n = Nr accepted")
	}
	full, err := ReducedEncrypt(rks, Block{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if full != Encrypt(rks, Block{}) {
		t.Fatal("ReducedEncrypt(Nr-1) must equal the true ciphertext")
	}
}

func TestReducedEncryptDiffersPerRound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	key := make([]byte, 16)
	rng.Read(key)
	rks, _ := ExpandKey(key)
	var pt Block
	rng.Read(pt[:])
	seen := map[Block]int{}
	for n := 0; n <= 9; n++ {
		c, err := ReducedEncrypt(rks, pt, n)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("rounds %d and %d produce identical values", prev, n)
		}
		seen[c] = n
	}
}

func TestInvertKeySchedule128(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		rks, _ := ExpandKey(key)
		for r := 0; r <= 10; r++ {
			got, err := InvertKeySchedule128(rks[r], r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:], key) {
				t.Fatalf("round %d: schedule inversion failed", r)
			}
		}
	}
	if _, err := InvertKeySchedule128(Block{}, 11); err == nil {
		t.Fatal("round 11 accepted")
	}
}

func TestRecoverKeyFromLeaks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		rks, _ := ExpandKey(key)
		var obs []LeakedPair
		var refCT Block
		for i := 0; i < 4; i++ {
			var pt Block
			rng.Read(pt[:])
			leak, err := ReducedEncrypt(rks, pt, 0) // skip-loop leak
			if err != nil {
				t.Fatal(err)
			}
			obs = append(obs, LeakedPair{Plaintext: pt, Leak: leak})
			if i == 0 {
				refCT = Encrypt(rks, pt)
			}
		}
		got, err := RecoverKeyFromLeaks(obs, refCT, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got[:], key) {
			t.Fatalf("trial %d: wrong key", trial)
		}
	}
}

func TestRecoverKeyRejectsGarbage(t *testing.T) {
	if _, err := RecoverKeyFromLeaks(nil, Block{}, false); err == nil {
		t.Fatal("empty observations accepted")
	}
	obs := []LeakedPair{
		{Plaintext: Block{1}, Leak: Block{2}},
		{Plaintext: Block{3}, Leak: Block{0xff, 0xee}},
		{Plaintext: Block{9, 9}, Leak: Block{0x55, 0x44, 0x33}},
	}
	if _, err := RecoverKeyFromLeaks(obs, Block{}, true); err == nil {
		t.Fatal("inconsistent leaks accepted")
	}
}

func TestRecoverKeyNoVerifyNeedsDistinctDeltas(t *testing.T) {
	// Without ciphertext verification, two pairs with the same plaintext
	// difference keep the paired spurious solution; three distinct
	// plaintexts resolve it.
	rng := rand.New(rand.NewSource(33))
	key := make([]byte, 16)
	rng.Read(key)
	rks, _ := ExpandKey(key)
	var obs []LeakedPair
	for i := 0; i < 4; i++ {
		var pt Block
		rng.Read(pt[:])
		leak, _ := ReducedEncrypt(rks, pt, 0)
		obs = append(obs, LeakedPair{Plaintext: pt, Leak: leak})
	}
	got, err := RecoverKeyFromLeaks(obs, Block{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], key) {
		t.Fatal("wrong key without verification")
	}
}

func TestGF(t *testing.T) {
	if gmul(0x57, 0x83) != 0xc1 { // FIPS-197 §4.2 example
		t.Fatalf("gmul: %#x", gmul(0x57, 0x83))
	}
	for i := 1; i < 256; i++ {
		if gmul(byte(i), ginv(byte(i))) != 1 {
			t.Fatalf("ginv(%#x) wrong", i)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	rks, _ := ExpandKey(make([]byte, 16))
	var pt Block
	for i := 0; i < b.N; i++ {
		pt = Encrypt(rks, pt)
	}
}

func BenchmarkRecoverKeyFromLeaks(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	key := make([]byte, 16)
	rng.Read(key)
	rks, _ := ExpandKey(key)
	var obs []LeakedPair
	for i := 0; i < 4; i++ {
		var pt Block
		rng.Read(pt[:])
		leak, _ := ReducedEncrypt(rks, pt, 0)
		obs = append(obs, LeakedPair{Plaintext: pt, Leak: leak})
	}
	ct := Encrypt(rks, obs[0].Plaintext)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverKeyFromLeaks(obs, ct, true); err != nil {
			b.Fatal(err)
		}
	}
}
