package chaosnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// runTraffic replays a fixed traffic order through a fresh Network and
// returns its event log: the shared fixture for determinism tests.
func runTraffic(t *testing.T, cfg Config, requests int) ([]Event, map[FaultKind]uint64) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "payload-payload-payload-payload")
	}))
	defer srv.Close()

	n := New(cfg)
	host := strings.TrimPrefix(srv.URL, "http://")
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	for i := 0; i < requests; i++ {
		resp, err := client.Get(srv.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return n.Events(), n.Stats()
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Seed: 42,
		Base: Profile{
			DropRequestProb:  0.2,
			DropResponseProb: 0.15,
			ResetProb:        0.1,
			DuplicateProb:    0.1,
			CorruptProb:      0.1,
			TruncateProb:     0.1,
		},
	}
	first, firstStats := runTraffic(t, cfg, 200)
	if len(first) == 0 {
		t.Fatal("expected faults to be injected at these probabilities")
	}
	for run := 0; run < 3; run++ {
		events, stats := runTraffic(t, cfg, 200)
		if !reflect.DeepEqual(events, first) {
			t.Fatalf("run %d: fault sequence diverged\nfirst: %v\n  got: %v", run, first, events)
		}
		if !reflect.DeepEqual(stats, firstStats) {
			t.Fatalf("run %d: stats diverged: %v vs %v", run, stats, firstStats)
		}
	}
	// A different seed must give a different sequence.
	cfg.Seed = 43
	other, _ := runTraffic(t, cfg, 200)
	if reflect.DeepEqual(other, first) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestPinnedFaultSequence pins the exact fault sequence for one
// (seed, profile, traffic) triple, so any PRNG or draw-order change is a
// visible, deliberate diff.
func TestPinnedFaultSequence(t *testing.T) {
	cfg := Config{
		Seed: 7,
		Base: Profile{DropRequestProb: 0.3, DropResponseProb: 0.3},
	}
	events, _ := runTraffic(t, cfg, 12)
	var got []string
	for _, e := range events {
		got = append(got, fmt.Sprintf("%d:%s", e.Req, e.Kind))
	}
	want := []string{
		"1:drop_request", "3:drop_request", "4:drop_request",
		"7:drop_request", "12:drop_response",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned fault sequence changed:\nwant %v\n got %v", want, got)
	}
}

func TestLinkStreamsIndependent(t *testing.T) {
	// The same request order on two different links must draw from
	// different streams, and the (src,dst) order must matter.
	a := newLinkRNG(1, "w0", "w1")
	b := newLinkRNG(1, "w1", "w0")
	c := newLinkRNG(1, "w0", "w1")
	if a.next() == b.next() {
		t.Fatal("directional links share a stream")
	}
	a2 := newLinkRNG(1, "w0", "w1")
	if a2.next() != c.next() {
		t.Fatal("same link derivation is not stable")
	}
}

func TestPartitionScheduleByRequestIndex(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{
		Seed: 1,
		Schedule: []Rule{
			{From: "src", To: "dst", FirstReq: 2, LastReq: 3, Partition: true},
		},
	})
	n.SetName(host, "dst")
	client := n.Client("src", nil)

	var results []bool
	for i := 0; i < 4; i++ {
		resp, err := client.Get(srv.URL)
		ok := err == nil
		if ok {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		} else if !errors.Is(err, ErrPartitioned) {
			// http.Client wraps the transport error; unwrap textually.
			if !strings.Contains(err.Error(), "link partitioned") {
				t.Fatalf("request %d: unexpected error %v", i+1, err)
			}
		}
		results = append(results, ok)
	}
	want := []bool{true, false, false, true}
	if !reflect.DeepEqual(results, want) {
		t.Fatalf("partition window wrong: want %v got %v", want, results)
	}
}

func TestManualPartitionToggle(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 1})
	n.SetName(host, "dst")
	client := n.Client("src", nil)

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("healthy link failed: %v", err)
	}
	n.SetPartition("src", "dst", true)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("partitioned link delivered a request")
	}
	// Wildcard partitions match too.
	n.SetPartition("src", "dst", false)
	n.SetPartition("*", "dst", true)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("wildcard partition did not apply")
	}
	n.SetPartition("*", "dst", false)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	resp.Body.Close()
}

func TestTimeWindowedPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	// Pin the clock so the window is exact.
	var elapsed time.Duration
	base := time.Unix(1000, 0)
	n := New(Config{
		Seed: 1,
		Now:  func() time.Time { return base.Add(elapsed) },
		Schedule: []Rule{
			{Start: 100 * time.Millisecond, End: 200 * time.Millisecond, Partition: true},
		},
	})
	n.SetName(host, "dst")
	client := n.Client("src", nil)

	check := func(at time.Duration, wantOK bool) {
		t.Helper()
		elapsed = at
		resp, err := client.Get(srv.URL)
		if (err == nil) != wantOK {
			t.Fatalf("at %v: ok=%v want %v (err=%v)", at, err == nil, wantOK, err)
		}
		if err == nil {
			resp.Body.Close()
		}
	}
	check(0, true)
	check(150*time.Millisecond, false)
	check(250*time.Millisecond, true)
}

func TestCorruptionFlipsBytes(t *testing.T) {
	payload := strings.Repeat("snapshot-bytes-", 32)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 3, Base: Profile{CorruptProb: 1}})
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("corrupted request errored: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == payload {
		t.Fatal("corruption fault did not change the body")
	}
	if len(body) != len(payload) {
		t.Fatalf("corruption changed length: %d vs %d", len(body), len(payload))
	}
	if n.Stats()[FaultCorrupt] != 1 {
		t.Fatalf("corrupt count = %d, want 1", n.Stats()[FaultCorrupt])
	}
}

func TestTruncationShortensBody(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 9, Base: Profile{TruncateProb: 1}})
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncated request errored: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) >= len(payload) {
		t.Fatalf("truncation did not shorten body: %d >= %d", len(body), len(payload))
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("ContentLength %d not rewritten to %d", resp.ContentLength, len(body))
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	var hits int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "echo:%s", body)
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 5, Base: Profile{DuplicateProb: 1}})
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatalf("duplicated request errored: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "echo:hello" {
		t.Fatalf("primary response corrupted by duplication: %q", body)
	}
	if hits != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits)
	}
	if n.Stats()[FaultDuplicate] != 1 {
		t.Fatalf("duplicate count = %d, want 1", n.Stats()[FaultDuplicate])
	}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 5, Base: Profile{DropRequestProb: 1}})
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("dropped request succeeded")
	}
	if hits != 0 {
		t.Fatalf("dropped request reached the server %d times", hits)
	}
}

func TestDropResponseReachesServer(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	n := New(Config{Seed: 5, Base: Profile{DropResponseProb: 1}})
	n.SetName(host, "dst")
	client := n.Client("src", nil)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("response-dropped request succeeded")
	}
	if hits != 1 {
		t.Fatalf("server saw %d deliveries, want 1 (request must land)", hits)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop_request=0.1,drop_response=0.05,latency=0.2:1ms:20ms,corrupt=0.01")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.Seed != 7 || cfg.Base.DropRequestProb != 0.1 || cfg.Base.DropResponseProb != 0.05 ||
		cfg.Base.CorruptProb != 0.01 || cfg.Base.LatencyProb != 0.2 ||
		cfg.Base.LatencyMin != time.Millisecond || cfg.Base.LatencyMax != 20*time.Millisecond {
		t.Fatalf("ParseSpec parsed wrong: %+v", cfg)
	}
	if c, err := ParseSpec(""); err != nil || c.Base.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v", c, err)
	}
	for _, bad := range []string{
		"nope", "seed=x", "drop_request=1.5", "latency=0.2", "latency=0.2:9ms:1ms", "bogus=1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted bad input", bad)
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(map[FaultKind]uint64{FaultReset: 2, FaultCorrupt: 1})
	if s != "corrupt=1 reset=2" {
		t.Fatalf("Describe = %q", s)
	}
}
