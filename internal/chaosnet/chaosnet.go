// Package chaosnet is the network sibling of internal/faultinject: a
// deterministic, seeded fault-injecting http.RoundTripper that models the
// ways a cluster's network fails — latency spikes, request and response
// drops, connection resets, duplicated deliveries, response truncation and
// corruption, and scripted directional partitions — while keeping every
// fault a replayable pure function of (seed, link, request order).
//
// The design mirrors faultinject's seed discipline: one Network owns a
// splitmix64 stream per directed link, derived from (seed, src, dst), so
// the fault sequence a link serves depends only on the traffic order on
// that link, never on what other links are doing or on goroutine
// scheduling elsewhere. A scripted Schedule layers time- and
// request-indexed windows on top — partitions and per-window profile
// overrides — and runtime Partition toggles give integration tests exact,
// clock-free control over link state.
//
// The cluster's resilience machinery (per-peer breakers, retry budgets,
// hedged fetches, lease-expiry reassignment, degraded-mode admission) is
// tested against this transport: the chaos-convergence harness asserts
// that a coordinator+workers sweep run under partitions, loss and
// corruption still renders report bytes identical to the standalone
// service — the same determinism contract faultinject pinned for
// predictor noise, extended from machine state to the network.
package chaosnet

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Profile sets the per-request fault probabilities of a link. The zero
// value injects nothing. Probabilities are evaluated in a fixed order
// (reset, drop-request, duplicate, latency, drop-response, corrupt,
// truncate) with one PRNG draw each, so a profile change never shifts
// which draw a later fault consumes within one request.
type Profile struct {
	// LatencyProb adds a uniform [LatencyMin, LatencyMax] delay before the
	// request is delivered. The sleep honours request-context cancellation.
	LatencyProb float64       `json:"latency_prob,omitempty"`
	LatencyMin  time.Duration `json:"latency_min,omitempty"`
	LatencyMax  time.Duration `json:"latency_max,omitempty"` // 0 means 20ms

	// ResetProb kills the connection before the request is delivered: the
	// caller sees a reset error and the server sees nothing.
	ResetProb float64 `json:"reset_prob,omitempty"`

	// DropRequestProb loses the request in flight: the server sees
	// nothing, the caller gets an error after any latency delay.
	DropRequestProb float64 `json:"drop_request_prob,omitempty"`

	// DropResponseProb delivers the request (the server-side effect
	// happens) but loses the response: the caller gets an error.
	DropResponseProb float64 `json:"drop_response_prob,omitempty"`

	// DuplicateProb delivers the request twice — the duplicate's response
	// is discarded — exercising server-side idempotency.
	DuplicateProb float64 `json:"duplicate_prob,omitempty"`

	// CorruptProb flips bytes in the response body (the headers survive),
	// modelling a peer serving a damaged blob.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`

	// TruncateProb cuts the response body short, modelling a torn
	// transfer. Content-Length is rewritten so the read "succeeds".
	TruncateProb float64 `json:"truncate_prob,omitempty"`
}

// Enabled reports whether any fault is armed.
func (p Profile) Enabled() bool {
	return p.LatencyProb > 0 || p.ResetProb > 0 || p.DropRequestProb > 0 ||
		p.DropResponseProb > 0 || p.DuplicateProb > 0 || p.CorruptProb > 0 || p.TruncateProb > 0
}

func (p Profile) latencyMax() time.Duration {
	if p.LatencyMax > 0 {
		return p.LatencyMax
	}
	return 20 * time.Millisecond
}

// Rule is one scripted schedule entry: a directional (src → dst) window,
// bounded by elapsed time since the Network started and/or by the link's
// request index, that either partitions the link or overrides its fault
// profile. The last matching rule wins.
type Rule struct {
	// From and To name the link ends; "" or "*" match any node.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// Start and End bound the window in elapsed time since the Network was
	// created. End == 0 means "forever".
	Start time.Duration `json:"start,omitempty"`
	End   time.Duration `json:"end,omitempty"`

	// FirstReq and LastReq bound the window by the link's 1-based request
	// counter — the clock-free way to script "drop the first fetch on this
	// link". 0 means unbounded.
	FirstReq int `json:"first_req,omitempty"`
	LastReq  int `json:"last_req,omitempty"`

	// Partition fails every request in the window with ErrPartitioned.
	Partition bool `json:"partition,omitempty"`

	// Profile, when non-nil, replaces the base profile inside the window.
	Profile *Profile `json:"profile,omitempty"`
}

func (r Rule) matches(src, dst string, elapsed time.Duration, reqIdx int) bool {
	if r.From != "" && r.From != "*" && r.From != src {
		return false
	}
	if r.To != "" && r.To != "*" && r.To != dst {
		return false
	}
	if elapsed < r.Start || (r.End > 0 && elapsed >= r.End) {
		return false
	}
	if r.FirstReq > 0 && reqIdx < r.FirstReq {
		return false
	}
	if r.LastReq > 0 && reqIdx > r.LastReq {
		return false
	}
	return true
}

// Config assembles a Network.
type Config struct {
	// Seed pins the fault streams; two Networks with equal Seed, Schedule
	// and per-link traffic order inject identical fault sequences.
	Seed int64

	// Base applies to every link outside scripted profile windows.
	Base Profile

	// Schedule is the scripted fault timeline.
	Schedule []Rule

	// Now is the clock used for time-indexed windows; nil means time.Now.
	// Tests pin it for replayable time windows; request-indexed rules and
	// the per-request fault draws never consult it.
	Now func() time.Time
}

// FaultKind labels one injected fault in events and counters.
type FaultKind string

const (
	FaultPartition FaultKind = "partition"
	FaultReset     FaultKind = "reset"
	FaultDropReq   FaultKind = "drop_request"
	FaultDropResp  FaultKind = "drop_response"
	FaultDuplicate FaultKind = "duplicate"
	FaultLatency   FaultKind = "latency"
	FaultCorrupt   FaultKind = "corrupt"
	FaultTruncate  FaultKind = "truncate"
)

// Event records one injected fault for replay assertions.
type Event struct {
	Src  string
	Dst  string
	Req  int // 1-based request index on the (Src, Dst) link
	Kind FaultKind
}

// Errors the transport returns. Callers treat both as ordinary transport
// failures; tests distinguish them.
var (
	ErrPartitioned = errors.New("chaosnet: link partitioned")
	ErrInjected    = errors.New("chaosnet: injected fault")
)

// linkState is one directed link's PRNG and request counter.
type linkState struct {
	rng  splitmix64
	reqs int
}

// Network is the shared fault fabric: every node's Transport draws from
// the same per-link streams, so a test wiring coordinator and workers
// through one Network scripts the whole topology.
type Network struct {
	cfg   Config
	start time.Time
	now   func() time.Time

	mu     sync.Mutex
	links  map[[2]string]*linkState
	names  map[string]string // host:port → node name
	manual map[[2]string]bool
	counts map[FaultKind]uint64
	events []Event
}

// New builds the fabric. The time origin for Start/End windows is New's
// call time (under Config.Now when set).
func New(cfg Config) *Network {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Network{
		cfg:    cfg,
		start:  now(),
		now:    now,
		links:  make(map[[2]string]*linkState),
		names:  make(map[string]string),
		manual: make(map[[2]string]bool),
		counts: make(map[FaultKind]uint64),
	}
}

// SetName maps a dialed host:port to a node name, so schedule rules can
// speak in topology names ("w0") instead of ephemeral test ports.
func (n *Network) SetName(hostport, name string) {
	n.mu.Lock()
	n.names[hostport] = name
	n.mu.Unlock()
}

// SetPartition toggles a manual directional partition, overriding the
// schedule: integration tests flip links down and up at exact protocol
// moments instead of racing a clock. "*" wildcards match as in Rule.
func (n *Network) SetPartition(src, dst string, down bool) {
	n.mu.Lock()
	if down {
		n.manual[[2]string{src, dst}] = true
	} else {
		delete(n.manual, [2]string{src, dst})
	}
	n.mu.Unlock()
}

func (n *Network) manualPartitionedLocked(src, dst string) bool {
	for key, down := range n.manual {
		if !down {
			continue
		}
		if (key[0] == "*" || key[0] == src) && (key[1] == "*" || key[1] == dst) {
			return true
		}
	}
	return false
}

// Stats returns the cumulative fault counts by kind.
func (n *Network) Stats() map[FaultKind]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[FaultKind]uint64, len(n.counts))
	for k, v := range n.counts {
		out[k] = v
	}
	return out
}

// Events returns a copy of every injected fault in injection order —
// the replay-determinism assertion surface.
func (n *Network) Events() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Event(nil), n.events...)
}

func (n *Network) record(src, dst string, req int, kind FaultKind) {
	n.mu.Lock()
	n.counts[kind]++
	n.events = append(n.events, Event{Src: src, Dst: dst, Req: req, Kind: kind})
	n.mu.Unlock()
}

// Transport returns the fault-injecting RoundTripper for requests sent by
// the named node. base nil means http.DefaultTransport.
func (n *Network) Transport(src string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{net: n, src: src, base: base}
}

// Client wraps Transport in an http.Client, the shape the cluster layer
// consumes.
func (n *Network) Client(src string, base http.RoundTripper) *http.Client {
	return &http.Client{Transport: n.Transport(src, base)}
}

type transport struct {
	net  *Network
	src  string
	base http.RoundTripper
}

// decision is the fault plan for one request, drawn under the Network
// lock so link streams never interleave.
type decision struct {
	dst        string
	req        int
	partition  bool
	reset      bool
	dropReq    bool
	dropResp   bool
	duplicate  bool
	latency    time.Duration
	corruptPos uint64 // draw reused for byte positions
	corrupt    bool
	truncate   bool
	truncFrac  uint64
}

// plan consumes the link's next request slot and draws its faults. Draw
// order is fixed — reset, dropReq, duplicate, latency(+magnitude),
// dropResp, corrupt(+positions), truncate(+fraction) — so a fixed seed
// and traffic order replay the identical fault sequence.
func (t *transport) plan(host string) decision {
	n := t.net
	n.mu.Lock()
	defer n.mu.Unlock()

	dst := host
	if name, ok := n.names[host]; ok {
		dst = name
	}
	key := [2]string{t.src, dst}
	link := n.links[key]
	if link == nil {
		link = &linkState{rng: newLinkRNG(n.cfg.Seed, t.src, dst)}
		n.links[key] = link
	}
	link.reqs++
	d := decision{dst: dst, req: link.reqs}

	elapsed := n.now().Sub(n.start)
	profile := n.cfg.Base
	partitioned := n.manualPartitionedLocked(t.src, dst)
	for _, r := range n.cfg.Schedule {
		if !r.matches(t.src, dst, elapsed, link.reqs) {
			continue
		}
		if r.Partition {
			partitioned = true
		}
		if r.Profile != nil {
			profile = *r.Profile
		}
	}
	if partitioned {
		d.partition = true
		return d
	}

	draw := func(p float64) bool { return p > 0 && link.rng.float() < p }
	d.reset = draw(profile.ResetProb)
	d.dropReq = draw(profile.DropRequestProb)
	d.duplicate = draw(profile.DuplicateProb)
	if draw(profile.LatencyProb) {
		lo, hi := profile.LatencyMin, profile.latencyMax()
		if hi < lo {
			hi = lo
		}
		span := uint64(hi - lo + 1)
		d.latency = lo + time.Duration(link.rng.next()%span)
	}
	d.dropResp = draw(profile.DropResponseProb)
	if draw(profile.CorruptProb) {
		d.corrupt = true
		d.corruptPos = link.rng.next()
	}
	if draw(profile.TruncateProb) {
		d.truncate = true
		d.truncFrac = link.rng.next()
	}
	return d
}

// RoundTrip injects the planned faults around the base transport.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.plan(req.URL.Host)
	n := t.net

	if d.partition {
		n.record(t.src, d.dst, d.req, FaultPartition)
		return nil, fmt.Errorf("%w: %s -> %s", ErrPartitioned, t.src, d.dst)
	}
	if d.reset {
		n.record(t.src, d.dst, d.req, FaultReset)
		return nil, fmt.Errorf("%w: connection reset %s -> %s", ErrInjected, t.src, d.dst)
	}
	if d.latency > 0 {
		n.record(t.src, d.dst, d.req, FaultLatency)
		timer := time.NewTimer(d.latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.dropReq {
		n.record(t.src, d.dst, d.req, FaultDropReq)
		return nil, fmt.Errorf("%w: request dropped %s -> %s", ErrInjected, t.src, d.dst)
	}

	// Requests with bodies cannot be replayed for the duplicate leg without
	// buffering; buffer once and feed both deliveries.
	var bodyBytes []byte
	if req.Body != nil && req.Body != http.NoBody {
		var err error
		bodyBytes, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(bytes.NewReader(bodyBytes))
	}
	if d.duplicate {
		n.record(t.src, d.dst, d.req, FaultDuplicate)
		dup := req.Clone(req.Context())
		if bodyBytes != nil {
			dup.Body = io.NopCloser(bytes.NewReader(bodyBytes))
		}
		if resp, err := t.base.RoundTrip(dup); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
			resp.Body.Close()
		}
		if bodyBytes != nil {
			req.Body = io.NopCloser(bytes.NewReader(bodyBytes))
		}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.dropResp {
		n.record(t.src, d.dst, d.req, FaultDropResp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped %s -> %s", ErrInjected, t.src, d.dst)
	}
	if d.corrupt || d.truncate {
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if d.corrupt && len(body) > 0 {
			n.record(t.src, d.dst, d.req, FaultCorrupt)
			// Flip a deterministic handful of bytes spread over the body.
			pos := d.corruptPos
			for i := 0; i < 4; i++ {
				body[pos%uint64(len(body))] ^= 0xa5
				pos = pos*0x9e3779b97f4a7c15 + 1
			}
		}
		if d.truncate && len(body) > 0 {
			n.record(t.src, d.dst, d.req, FaultTruncate)
			keep := int(d.truncFrac % uint64(len(body)))
			body = body[:keep]
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	}
	return resp, nil
}

// splitmix64 matches the simulator's PRNG, as in internal/faultinject.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *splitmix64) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// newLinkRNG derives the (seed, src, dst) stream, mirroring faultinject's
// (seed, salt) derivation with FNV-1a over the link names.
func newLinkRNG(seed int64, src, dst string) splitmix64 {
	h := fnv.New64a()
	io.WriteString(h, src)
	h.Write([]byte{0})
	io.WriteString(h, dst)
	return splitmix64{s: (uint64(seed)^h.Sum64()*0x9e3779b97f4a7c15)*2654435761 + 0x5afe}
}

// ParseSpec parses the pathfinderd -chaos flag: comma-separated key=value
// pairs over the Profile fields plus seed, e.g.
//
//	seed=7,drop_request=0.1,drop_response=0.05,latency=0.2:1ms:20ms,corrupt=0.01
//
// Probabilities are bare floats; latency is prob:min:max. An empty spec
// returns a zero Config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("chaosnet: bad spec field %q (want key=value)", field)
		}
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return 0, fmt.Errorf("chaosnet: %s wants a probability in [0,1], got %q", k, v)
			}
			return p, nil
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaosnet: bad seed %q", v)
			}
		case "reset":
			cfg.Base.ResetProb, err = prob()
		case "drop_request":
			cfg.Base.DropRequestProb, err = prob()
		case "drop_response":
			cfg.Base.DropResponseProb, err = prob()
		case "duplicate":
			cfg.Base.DuplicateProb, err = prob()
		case "corrupt":
			cfg.Base.CorruptProb, err = prob()
		case "truncate":
			cfg.Base.TruncateProb, err = prob()
		case "latency":
			parts := strings.Split(v, ":")
			if len(parts) != 3 {
				return cfg, fmt.Errorf("chaosnet: latency wants prob:min:max, got %q", v)
			}
			p, perr := strconv.ParseFloat(parts[0], 64)
			if perr != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("chaosnet: latency probability %q out of [0,1]", parts[0])
			}
			lo, loerr := time.ParseDuration(parts[1])
			hi, hierr := time.ParseDuration(parts[2])
			if loerr != nil || hierr != nil || lo < 0 || hi < lo {
				return cfg, fmt.Errorf("chaosnet: bad latency range %q", v)
			}
			cfg.Base.LatencyProb, cfg.Base.LatencyMin, cfg.Base.LatencyMax = p, lo, hi
		default:
			return cfg, fmt.Errorf("chaosnet: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Describe renders a profile for logs, fault kinds sorted.
func Describe(stats map[FaultKind]uint64) string {
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, stats[FaultKind(k)]))
	}
	return strings.Join(parts, " ")
}
