// Package victim provides the victim programs the paper attacks, compiled
// to the simulated ISA: the looped AES-NI encryption oracle of §9
// (Listing 1 / Figure 6), the libjpeg-style IDCT of §8 (Listing 2), kernel
// and SGX stubs for the attack-surface analysis of §7, and microbenchmarks
// for the Pathfinder evaluation of §6.
//
// Victim code only uses registers R0..R15; the attack harnesses in package
// core reserve R20 and above.
package victim

import (
	"fmt"

	"pathfinder/internal/aes"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
)

// Memory layout of the AES encryption oracle. The round keys and round
// count model the AES_KEY structure of Intel IPP; the probe pages model the
// oracle's base64-encoding tables, shared with the attacker (§9.2).
const (
	AESKeySchedule = 0x0020_0000 // 15 × 16-byte round keys
	AESRounds      = 0x0020_1000 // uint64: 10/12/14 (the flushable variable)
	AESPlaintext   = 0x0020_2000 // 16-byte input block
	AESCiphertext  = 0x0020_3000 // 16-byte output block
	// AESProbeBase is the bottom of 16 per-byte-position probe regions,
	// each 256 pages: the encoding gadget touches
	// AESProbeBase + pos*ProbeRegion + value*4096 for every output byte.
	AESProbeBase  = 0x1000_0000
	AESProbeSlot  = 4096
	AESProbeRange = 256 * AESProbeSlot
)

// AESVictim returns the looped AES encryption oracle. Its structure follows
// Figure 6: BB1 loads the round count and whitens the state, with a bounds
// check that skips the loop for single-round keys; BB3 is the aesenc loop;
// BB4 recomputes the round-key pointer from the loop counter; BB5 applies
// aesenclast, stores the ciphertext and runs the encoding gadget that
// touches ciphertext-dependent cache lines.
//
// Labels exported for the attack: aes_entry, aes_entrycheck (the BB1->BB5
// bounds check), aes_loopbr (the BB3 loop branch), aes_exit.
func AESVictim() core.Victim {
	return core.Victim{
		Entry: "aes_entry",
		Emit:  emitAES,
	}
}

func emitAES(a *isa.Assembler) {
	a.VariableStride()   // x86-like code density gives branch footprints entropy
	a.Label("aes_entry") // BB1
	a.MovI(isa.R2, AESKeySchedule)
	a.MovI(isa.R3, AESPlaintext)
	a.MovI(isa.R4, AESCiphertext)
	a.MovI(isa.R11, AESRounds)
	a.Ld(isa.R1, isa.R11, 0) // rcx <- key->rounds (flushed by the attacker)
	a.VLd(isa.V0, isa.R3, 0)
	a.VXor(isa.V0, isa.R2, 0) // whitening with rk[0]
	a.MovI(isa.R5, 1)         // rax = 1
	a.Label("aes_entrycheck")
	a.Br(isa.GEU, isa.R5, isa.R1, "aes_exit") // cmp rcx,1; jbe .exit

	a.Label("aes_loop") // BB3
	a.ShlI(isa.R6, isa.R5, 4)
	a.Add(isa.R7, isa.R2, isa.R6)
	a.AesEnc(isa.V0, isa.R7, 0) // aesenc xmm0, rk[i]
	a.AddI(isa.R5, isa.R5, 1)
	a.Label("aes_loopbr")
	a.Br(isa.LTU, isa.R5, isa.R1, "aes_loop") // jne .loop

	a.Label("aes_exit") // BB4+BB5
	a.ShlI(isa.R6, isa.R5, 4)
	a.Add(isa.R7, isa.R2, isa.R6)
	a.AesEncLast(isa.V0, isa.R7, 0) // aesenclast xmm0, rk[i]
	a.VSt(isa.R4, 0, isa.V0)
	// Post-processing "base64 encode" gadget: a table access per
	// ciphertext byte (Listing 3's sidechannel_send). Touching one page
	// per (position, value) pair is what Flush+Reload later reads out.
	a.MovI(isa.R9, AESProbeBase)
	for b := 0; b < 16; b++ {
		a.LdB(isa.R8, isa.R4, int64(b))
		a.ShlI(isa.R8, isa.R8, 12) // value * 4096
		a.Add(isa.R8, isa.R9, isa.R8)
		a.LdB(isa.R10, isa.R8, 0)
		if b < 15 {
			a.AddI(isa.R9, isa.R9, AESProbeRange)
		}
	}
	a.Ret()
}

// AESContext holds the oracle's key material for a run.
type AESContext struct {
	Key       []byte
	RoundKeys []aes.Block
}

// NewAESContext expands a key.
func NewAESContext(key []byte) (*AESContext, error) {
	rks, err := aes.ExpandKey(key)
	if err != nil {
		return nil, err
	}
	return &AESContext{Key: append([]byte(nil), key...), RoundKeys: rks}, nil
}

// Install writes the key schedule and round count into victim memory.
func (c *AESContext) Install(m *cpu.Machine) {
	for r, rk := range c.RoundKeys {
		m.Mem.Write128(AESKeySchedule+uint64(16*r), rk)
	}
	m.Mem.Write64(AESRounds, uint64(len(c.RoundKeys)-1))
}

// SetPlaintext writes the input block.
func (c *AESContext) SetPlaintext(m *cpu.Machine, pt aes.Block) {
	m.Mem.Write128(AESPlaintext, pt)
}

// Ciphertext reads the output block.
func (c *AESContext) Ciphertext(m *cpu.Machine) aes.Block {
	return m.Mem.Read128(AESCiphertext)
}

// Encrypt runs the oracle once on the machine (architectural result only).
func (c *AESContext) Encrypt(m *cpu.Machine, prog *isa.Program, pt aes.Block) (aes.Block, error) {
	c.SetPlaintext(m, pt)
	if err := m.Run(prog, "aes_entry"); err != nil {
		return aes.Block{}, err
	}
	return c.Ciphertext(m), nil
}

// ProbeSlot returns the cache-line address the gadget touches for byte
// position pos holding value v.
func ProbeSlot(pos int, v byte) uint64 {
	return AESProbeBase + uint64(pos)*AESProbeRange + uint64(v)*AESProbeSlot
}

// FlushProbe evicts all 16×256 probe slots.
func FlushProbe(m *cpu.Machine) {
	for pos := 0; pos < 16; pos++ {
		for v := 0; v < 256; v++ {
			m.Data.Flush(ProbeSlot(pos, byte(v)))
		}
	}
}

// ReadProbe reloads the probe slots and returns the leaked value per byte
// position; ok[i] reports whether exactly one slot of position i hit.
func ReadProbe(m *cpu.Machine) (vals [16]byte, ok [16]bool) {
	for pos := 0; pos < 16; pos++ {
		hits := 0
		for v := 0; v < 256; v++ {
			if m.Data.Contains(ProbeSlot(pos, byte(v))) {
				hits++
				vals[pos] = byte(v)
			}
		}
		ok[pos] = hits == 1
	}
	return vals, ok
}

// VerifyAESProgram checks that the emitted oracle computes correct AES for
// the installed context; used by tests and the quickstart example.
func VerifyAESProgram(m *cpu.Machine, prog *isa.Program, c *AESContext, pt aes.Block) error {
	got, err := c.Encrypt(m, prog, pt)
	if err != nil {
		return err
	}
	want := aes.Encrypt(c.RoundKeys, pt)
	if got != want {
		return fmt.Errorf("victim: AES mismatch: got % x want % x", got, want)
	}
	return nil
}
