package victim

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/jpeg"
)

// IDCTCoefBase is where the decoder's dequantized coefficient blocks live:
// block b's element (r, c) is the int64 at IDCTCoefBase + (b*64 + r*8+c)*8.
// In the threat model the victim process has already entropy-decoded the
// secret image; the IDCT stage's control flow is what leaks (§8).
const IDCTCoefBase = 0x0040_0000

// IDCTCheckLabels returns the labels of the 14 zero-check branches: 7 per
// pass, pass 0 (columns) then pass 1 (rows), k = 1..7 each.
func IDCTCheckLabels() (cols, rows [7]string) {
	for k := 1; k <= 7; k++ {
		cols[k-1] = fmt.Sprintf("idct_colchk%d", k)
		rows[k-1] = fmt.Sprintf("idct_rowchk%d", k)
	}
	return cols, rows
}

// IDCTVictim compiles the Listing-2 control flow over nblocks coefficient
// blocks: two passes per block, each iterating 8 columns/rows with the
// seven-term short-circuit zero check choosing the simple or complex
// computation. Branch directions depend only on the secret coefficients.
func IDCTVictim(nblocks int, coef []jpeg.Block) core.Victim {
	return core.Victim{
		Entry: "idct_entry",
		Emit:  func(a *isa.Assembler) { emitIDCT(a, nblocks) },
		Setup: func(m *cpu.Machine) { InstallCoefficients(m, coef) },
	}
}

// InstallCoefficients writes the dequantized blocks into victim memory.
func InstallCoefficients(m *cpu.Machine, coef []jpeg.Block) {
	for b := range coef {
		for i, v := range coef[b] {
			m.Mem.Write64(IDCTCoefBase+uint64((b*64+i)*8), uint64(int64(v)))
		}
	}
}

// Register use: R1 blk, R2 nblocks, R3 block base, R5 col/row index,
// R6 element pointer, R7 loaded coefficient, R12 zero, R13 constant 8.
func emitIDCT(a *isa.Assembler, nblocks int) {
	a.VariableStride() // x86-like code density gives branch footprints entropy
	a.Label("idct_entry")
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, int64(nblocks))
	a.MovI(isa.R12, 0)
	a.MovI(isa.R13, 8)
	a.MovI(isa.R14, IDCTCoefBase)
	a.Label("idct_blkloop")
	a.ShlI(isa.R3, isa.R1, 9) // 64 coefficients * 8 bytes
	a.Add(isa.R3, isa.R14, isa.R3)

	// Pass 1: columns. Element (r, c) at offset r*64 + c*8.
	a.MovI(isa.R5, 0)
	a.Label("idct_colloop")
	a.ShlI(isa.R6, isa.R5, 3)
	a.Add(isa.R6, isa.R3, isa.R6) // &coef[0][c]
	for k := 1; k <= 7; k++ {
		a.Ld(isa.R7, isa.R6, int64(64*k))
		a.Label(fmt.Sprintf("idct_colchk%d", k))
		a.Br(isa.NE, isa.R7, isa.R12, "idct_colcomplex")
	}
	// Simple computation: the column is constant.
	a.AddI(isa.R8, isa.R8, 1)
	a.Jmp("idct_colnext")
	a.Label("idct_colcomplex")
	a.AddI(isa.R9, isa.R9, 1)
	a.AddI(isa.R9, isa.R9, 1)
	a.Label("idct_colnext")
	a.AddI(isa.R5, isa.R5, 1)
	a.Label("idct_colback")
	a.Br(isa.LT, isa.R5, isa.R13, "idct_colloop")

	// Pass 2: rows. Element (r, c) at offset r*64 + c*8.
	a.MovI(isa.R5, 0)
	a.Label("idct_rowloop")
	a.ShlI(isa.R6, isa.R5, 6)
	a.Add(isa.R6, isa.R3, isa.R6) // &coef[r][0]
	for k := 1; k <= 7; k++ {
		a.Ld(isa.R7, isa.R6, int64(8*k))
		a.Label(fmt.Sprintf("idct_rowchk%d", k))
		a.Br(isa.NE, isa.R7, isa.R12, "idct_rowcomplex")
	}
	a.AddI(isa.R8, isa.R8, 1)
	a.Jmp("idct_rownext")
	a.Label("idct_rowcomplex")
	a.AddI(isa.R9, isa.R9, 1)
	a.AddI(isa.R9, isa.R9, 1)
	a.Label("idct_rownext")
	a.AddI(isa.R5, isa.R5, 1)
	a.Label("idct_rowback")
	a.Br(isa.LT, isa.R5, isa.R13, "idct_rowloop")

	a.AddI(isa.R1, isa.R1, 1)
	a.Label("idct_blkback")
	a.Br(isa.LT, isa.R1, isa.R2, "idct_blkloop")
	a.Ret()
}
