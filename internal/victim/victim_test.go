package victim

import (
	"testing"

	"pathfinder/internal/aes"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/jpeg"
)

func TestAESVictimMatchesReference(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i*31 + 7)
	}
	ctx, err := NewAESContext(key)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{})
	ctx.Install(m)
	prog, err := AESVictim().Build()
	if err != nil {
		t.Fatal(err)
	}
	var pt aes.Block
	for i := range pt {
		pt[i] = byte(200 - i)
	}
	if err := VerifyAESProgram(m, prog, ctx, pt); err != nil {
		t.Fatal(err)
	}
}

func TestProbeSlotLayout(t *testing.T) {
	seen := map[uint64]bool{}
	for pos := 0; pos < 16; pos++ {
		for v := 0; v < 256; v += 17 {
			a := ProbeSlot(pos, byte(v))
			if seen[a] {
				t.Fatal("probe slots collide")
			}
			seen[a] = true
		}
	}
	if ProbeSlot(1, 0)-ProbeSlot(0, 0) != AESProbeRange {
		t.Fatal("probe region stride")
	}
}

func TestFlushReadProbe(t *testing.T) {
	m := cpu.New(cpu.Options{})
	m.Data.Access(ProbeSlot(3, 0x7c))
	vals, ok := ReadProbe(m)
	if !ok[3] || vals[3] != 0x7c {
		t.Fatalf("probe readout: %v %v", vals[3], ok[3])
	}
	FlushProbe(m)
	_, ok = ReadProbe(m)
	if ok[3] {
		t.Fatal("flush left a hit")
	}
}

func TestKernelStubBranchCounts(t *testing.T) {
	a := isa.NewAssembler()
	a.Label("main")
	a.Syscall(4)
	a.Halt()
	EmitKernelStub(a, "__kernel_4", nil)
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{})
	m.RegisterKernelStub(4, "__kernel_4")
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	// §7.1: entry ~23 branch outcomes, exit ~7 (including the final RET).
	if got := m.Stats().TakenBranches; got != SyscallEntryBranches+SyscallExitBranches {
		t.Fatalf("stub executed %d taken branches, want %d", got, SyscallEntryBranches+SyscallExitBranches)
	}
}

func TestIDCTVictimBuilds(t *testing.T) {
	blocks := make([]jpeg.Block, 2)
	blocks[1][9] = 5
	v := IDCTVictim(2, blocks)
	prog, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{})
	v.Setup(m)
	if err := m.Run(prog, v.Entry); err != nil {
		t.Fatal(err)
	}
	cols, rows := IDCTCheckLabels()
	for _, l := range append(cols[:], rows[:]...) {
		if _, ok := prog.SymbolAddr(l); !ok {
			t.Fatalf("check label %s missing", l)
		}
	}
}

func TestPatternedLoopAndRandomCFGRun(t *testing.T) {
	v := PatternedLoop(40, RandomPattern(40, 3))
	prog, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{})
	v.Setup(m)
	if err := m.Run(prog, v.Entry); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		rv := RandomCFG(seed, 6)
		rp, err := rv.Build()
		if err != nil {
			t.Fatal(err)
		}
		mm := cpu.New(cpu.Options{})
		rv.Setup(mm)
		if err := mm.Run(rp, rv.Entry); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSecretBitVictimDirections(t *testing.T) {
	const addr = 0x00d0_0000
	v := SecretBitVictim(addr, 0x1234)
	prog, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	pc := prog.MustSymbol("sbit_branch")
	if pc&0xffff != 0x1234 {
		t.Fatalf("branch placed at %#x", pc)
	}
	for _, bit := range []byte{0, 1} {
		m := cpu.New(cpu.Options{})
		m.Mem.Write8(addr, bit)
		if err := m.Run(prog, v.Entry); err != nil {
			t.Fatal(err)
		}
		taken := m.Branch(pc).Taken
		if (bit == 1) != (taken == 1) {
			t.Fatalf("bit %d: taken %d", bit, taken)
		}
	}
}
