package victim

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/isa"
)

// Kernel and enclave stubs for the §7 attack-surface analysis. The paper
// measures that syscall entry introduces ~23 branch outcomes into the PHR
// and exit ~7 (§7.1); the stubs reproduce those counts with chains of taken
// jumps around a caller-selected payload.
const (
	SyscallEntryBranches = 23
	SyscallExitBranches  = 7 // includes the stub's final RET
)

// EmitKernelStub emits a syscall handler labelled `label` whose entry path
// executes SyscallEntryBranches-1 taken branches, then the payload, then
// SyscallExitBranches-1 more taken branches and a RET. Combined with the
// RET itself the PHR sees exactly the paper's entry/exit branch counts
// (the SYSCALL transfer, like Intel's, is not PHR-visible).
func EmitKernelStub(a *isa.Assembler, label string, payload func(a *isa.Assembler)) {
	a.Label(label)
	for i := 0; i < SyscallEntryBranches-1; i++ {
		a.Jmp(fmt.Sprintf("%s_e%d", label, i))
		a.Label(fmt.Sprintf("%s_e%d", label, i))
	}
	a.Jmp(label + "_body")
	a.Label(label + "_body")
	if payload != nil {
		payload(a)
	}
	for i := 0; i < SyscallExitBranches-2; i++ {
		a.Jmp(fmt.Sprintf("%s_x%d", label, i))
		a.Label(fmt.Sprintf("%s_x%d", label, i))
	}
	a.Jmp(label + "_ret")
	a.Label(label + "_ret")
	a.Ret()
}

// EmitEnclaveStub emits an SGX enclave entry with a payload; enclave
// transition code is shorter than the kernel's.
func EmitEnclaveStub(a *isa.Assembler, label string, payload func(a *isa.Assembler)) {
	a.Label(label)
	a.Jmp(label + "_body")
	a.Label(label + "_body")
	if payload != nil {
		payload(a)
	}
	a.Ret()
}

// SecretBitVictim builds a victim whose single conditional branch direction
// equals a secret bit stored at addr — the minimal cross-boundary leak
// target used by the Table 2 experiments. The branch is placed at pcLow in
// its 64 KiB frame so attacker aliases are easy to form.
func SecretBitVictim(addr uint64, pcLow uint64) core.Victim {
	return core.Victim{
		Entry: "sbit_entry",
		Emit: func(a *isa.Assembler) {
			a.Label("sbit_entry")
			a.MovI(isa.R1, int64(addr))
			a.LdB(isa.R2, isa.R1, 0)
			a.MovI(isa.R3, 1)
			a.Align(0x1_0000, pcLow)
			a.Label("sbit_branch")
			a.Br(isa.EQ, isa.R2, isa.R3, "sbit_after")
			a.Label("sbit_after")
			a.Ret()
		},
	}
}
