package victim

import (
	"fmt"
	"math/rand"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
)

// MicroDataAddr holds the data-dependent inputs of the microbenchmark
// victims.
const MicroDataAddr = 0x00e0_0000

// PatternedLoop returns a victim running `trips` loop iterations whose body
// branches on a per-iteration data byte — the workhorse for the §5
// Extended Read PHR evaluation (victims with a chosen number of taken
// branches and non-degenerate histories).
func PatternedLoop(trips int, pattern []byte) core.Victim {
	return core.Victim{
		Entry: "pl_entry",
		Emit: func(a *isa.Assembler) {
			a.VariableStride()
			a.Label("pl_entry")
			a.MovI(isa.R1, 0)
			a.MovI(isa.R2, int64(trips))
			a.MovI(isa.R5, MicroDataAddr)
			a.MovI(isa.R6, 1)
			a.Label("pl_loop")
			a.Add(isa.R3, isa.R5, isa.R1)
			a.LdB(isa.R4, isa.R3, 0)
			a.Label("pl_bit")
			a.Br(isa.EQ, isa.R4, isa.R6, "pl_one")
			a.Nop()
			a.Jmp("pl_join")
			a.Label("pl_one")
			a.Nop()
			a.Label("pl_join")
			a.AddI(isa.R1, isa.R1, 1)
			a.Label("pl_back")
			a.Br(isa.LT, isa.R1, isa.R2, "pl_loop")
			a.Ret()
		},
		Setup: func(m *cpu.Machine) { m.Mem.WriteBytes(MicroDataAddr, pattern) },
	}
}

// RandomPattern builds a deterministic pseudo-random bit pattern.
func RandomPattern(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(2))
	}
	return p
}

// RandomCFG returns a victim with a randomly generated control-flow
// structure — the "well-designed microbenchmarks, including challenging
// scenarios such as varying loop iterations, nested loops, and complex
// control flow graphs" of the §6 Pathfinder evaluation. The structure and
// the data it branches on are both derived from the seed; TotalData bytes
// at MicroDataAddr drive the data-dependent decisions.
func RandomCFG(seed int64, segments int) core.Victim {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	kinds := make([]int, segments)
	params := make([]int, segments)
	for i := range kinds {
		kinds[i] = rng.Intn(3)
		params[i] = 1 + rng.Intn(4)
	}
	return core.Victim{
		Entry: "rc_entry",
		Emit: func(a *isa.Assembler) {
			a.VariableStride()
			a.Label("rc_entry")
			a.MovI(isa.R10, MicroDataAddr)
			a.MovI(isa.R11, 0) // data cursor
			a.MovI(isa.R12, 1)
			for i, kind := range kinds {
				switch kind {
				case 0: // if/else on a data bit
					a.Add(isa.R3, isa.R10, isa.R11)
					a.LdB(isa.R4, isa.R3, 0)
					a.AddI(isa.R11, isa.R11, 1)
					a.And(isa.R4, isa.R4, isa.R12)
					a.Br(isa.EQ, isa.R4, isa.R12, fmt.Sprintf("rc_t%d", i))
					a.Nop()
					a.Jmp(fmt.Sprintf("rc_j%d", i))
					a.Label(fmt.Sprintf("rc_t%d", i))
					a.Nop()
					a.Label(fmt.Sprintf("rc_j%d", i))
				case 1: // loop with a data-dependent trip count 1..4
					a.Add(isa.R3, isa.R10, isa.R11)
					a.LdB(isa.R4, isa.R3, 0)
					a.AddI(isa.R11, isa.R11, 1)
					a.MovI(isa.R5, 3)
					a.And(isa.R4, isa.R4, isa.R5)
					a.AddI(isa.R4, isa.R4, 1)
					a.MovI(isa.R6, 0)
					a.Label(fmt.Sprintf("rc_l%d", i))
					a.AddI(isa.R6, isa.R6, 1)
					a.Br(isa.LT, isa.R6, isa.R4, fmt.Sprintf("rc_l%d", i))
				default: // nested fixed loop
					n := params[i]
					a.MovI(isa.R6, 0)
					a.MovI(isa.R7, int64(n))
					a.Label(fmt.Sprintf("rc_o%d", i))
					a.MovI(isa.R8, 0)
					a.Label(fmt.Sprintf("rc_i%d", i))
					a.AddI(isa.R8, isa.R8, 1)
					a.MovI(isa.R9, 2)
					a.Br(isa.LT, isa.R8, isa.R9, fmt.Sprintf("rc_i%d", i))
					a.AddI(isa.R6, isa.R6, 1)
					a.Br(isa.LT, isa.R6, isa.R7, fmt.Sprintf("rc_o%d", i))
				}
			}
			a.Ret()
		},
		Setup: func(m *cpu.Machine) { m.Mem.WriteBytes(MicroDataAddr, data) },
	}
}
