package media

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGrayBasics(t *testing.T) {
	g := NewGray(8, 4)
	g.Set(3, 2, 200)
	if g.At(3, 2) != 200 {
		t.Fatal("Set/At")
	}
	g.Fill(func(x, y int) byte { return byte(x + y) })
	if g.At(7, 3) != 10 {
		t.Fatal("Fill")
	}
	if len(g.ASCII(1)) == 0 {
		t.Fatal("ASCII empty")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []func(seed uint64) *Gray{
		func(s uint64) *Gray { return QRLike(24, 24, s) },
		func(s uint64) *Gray { return Logo(24, 24, s) },
		func(s uint64) *Gray { return Photo(24, 24, s) },
		func(s uint64) *Gray { return Captcha(24, 24, s) },
		func(s uint64) *Gray { return Checkerboard(24, 24, 8, s) },
		func(s uint64) *Gray { return Gradient(24, 24, s) },
		func(s uint64) *Gray { return Text(24, 24, s) },
	}
	for i, gen := range gens {
		a, b := gen(7), gen(7)
		for p := range a.Pix {
			if a.Pix[p] != b.Pix[p] {
				t.Fatalf("generator %d not deterministic", i)
			}
		}
		c := gen(8)
		diff := 0
		for p := range a.Pix {
			if a.Pix[p] != c.Pix[p] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatalf("generator %d ignores its seed", i)
		}
	}
}

func TestTestSetShape(t *testing.T) {
	set := TestSet(16)
	if len(set) != 15 {
		t.Fatalf("test set has %d images, want 15 (§8)", len(set))
	}
	seen := map[string]bool{}
	for _, e := range set {
		if seen[e.Name] {
			t.Fatalf("duplicate image name %s", e.Name)
		}
		seen[e.Name] = true
		if e.Image.W != 16 || e.Image.H != 16 {
			t.Fatalf("image %s has wrong size", e.Name)
		}
	}
}

func TestEdgeMap(t *testing.T) {
	// A vertical step edge produces a bright vertical line.
	g := NewGray(16, 16).Fill(func(x, y int) byte {
		if x < 8 {
			return 0
		}
		return 255
	})
	e := EdgeMap(g)
	if e.At(8, 8) < 100 {
		t.Fatalf("edge magnitude at the step: %d", e.At(8, 8))
	}
	if e.At(2, 8) != 0 || e.At(14, 8) != 0 {
		t.Fatal("flat regions must have zero gradient")
	}
}

func TestBlockMean(t *testing.T) {
	g := NewGray(16, 8).Fill(func(x, y int) byte {
		if x < 8 {
			return 10
		}
		return 210
	})
	means := BlockMean(g)
	if len(means) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(means))
	}
	if means[0] != 10 || means[1] != 210 {
		t.Fatalf("block means %v", means)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r, _ := Pearson(a, a); math.Abs(r-1) > 1e-9 {
		t.Fatalf("self correlation %f", r)
	}
	b := []float64{4, 3, 2, 1}
	if r, _ := Pearson(a, b); math.Abs(r+1) > 1e-9 {
		t.Fatalf("anti correlation %f", r)
	}
	if r, _ := Pearson(a, []float64{5, 5, 5, 5}); r != 0 {
		t.Fatalf("constant series correlation %f", r)
	}
	if _, err := Pearson(a, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := quick.Check(func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw)) // pixel-scale data, the documented domain
		for i, b := range raw {
			xs[i] = float64(b)
		}
		r, err := Pearson(xs, xs)
		if err != nil {
			return false
		}
		return r == 0 || math.Abs(r-1) < 1e-6
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
