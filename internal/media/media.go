// Package media provides the secret-image test set for the §8 image
// recovery attack: deterministic synthetic grayscale images spanning the
// complexity range of the paper's evaluation (QR codes, logos, photographs,
// captchas, ...), plus the edge-map reference and similarity metrics used
// to score recovered images.
package media

import (
	"fmt"
	"math"
	"strings"
)

// Gray is an 8-bit grayscale image.
type Gray struct {
	W, H int
	Pix  []byte // row-major, len W*H
}

// NewGray allocates a black image.
func NewGray(w, h int) *Gray {
	return &Gray{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y).
func (g *Gray) At(x, y int) byte { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray) Set(x, y int, v byte) { g.Pix[y*g.W+x] = v }

// Fill paints every pixel.
func (g *Gray) Fill(f func(x, y int) byte) *Gray {
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			g.Set(x, y, f(x, y))
		}
	}
	return g
}

// ASCII renders the image with a luminance ramp, downsampling by step.
func (g *Gray) ASCII(step int) string {
	if step < 1 {
		step = 1
	}
	ramp := []byte(" .:-=+*#%@")
	var b strings.Builder
	for y := 0; y < g.H; y += step {
		for x := 0; x < g.W; x += step {
			b.WriteByte(ramp[int(g.At(x, y))*len(ramp)/256%len(ramp)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// rng is the deterministic generator used by the synthetic images.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// dither adds a ±d deterministic perturbation; it models sensor noise and
// anti-aliasing, and keeps long runs of identical JPEG blocks (which push
// the PHR into its >window invariant-flow limitation) from occurring.
func dither(g *Gray, seed uint64, d int) *Gray {
	r := rng{s: seed}
	for i := range g.Pix {
		v := int(g.Pix[i]) + r.intn(2*d+1) - d
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		g.Pix[i] = byte(v)
	}
	return g
}

// QRLike draws a pseudo-random module grid with finder squares — the
// paper's scannable-QR example, at thumbnail scale.
func QRLike(w, h int, seed uint64) *Gray {
	g := NewGray(w, h)
	r := rng{s: seed*2654435761 + 17}
	mod := 4
	for y := 0; y < h; y += mod {
		for x := 0; x < w; x += mod {
			v := byte(255)
			if r.intn(2) == 0 {
				v = 0
			}
			for dy := 0; dy < mod && y+dy < h; dy++ {
				for dx := 0; dx < mod && x+dx < w; dx++ {
					g.Set(x+dx, y+dy, v)
				}
			}
		}
	}
	// Finder patterns in three corners.
	finder := func(cx, cy int) {
		for dy := 0; dy < 7; dy++ {
			for dx := 0; dx < 7; dx++ {
				x, y := cx+dx, cy+dy
				if x >= w || y >= h {
					continue
				}
				edge := dx == 0 || dy == 0 || dx == 6 || dy == 6
				core := dx >= 2 && dx <= 4 && dy >= 2 && dy <= 4
				if edge || core {
					g.Set(x, y, 0)
				} else {
					g.Set(x, y, 255)
				}
			}
		}
	}
	finder(0, 0)
	finder(w-7, 0)
	finder(0, h-7)
	return dither(g, seed, 3)
}

// Logo draws a ring and a diagonal bar on a light background.
func Logo(w, h int, seed uint64) *Gray {
	cx, cy := float64(w)/2, float64(h)/2
	rad := math.Min(cx, cy) * 0.7
	g := NewGray(w, h).Fill(func(x, y int) byte {
		dx, dy := float64(x)-cx, float64(y)-cy
		d := math.Hypot(dx, dy)
		if math.Abs(d-rad) < rad*0.25 {
			return 30
		}
		if math.Abs(dx-dy) < 2.5 {
			return 60
		}
		return 230
	})
	return dither(g, seed, 3)
}

// Photo synthesises a smooth value-noise "photograph".
func Photo(w, h int, seed uint64) *Gray {
	r := rng{s: seed ^ 0xabcdef}
	const grid = 8
	gw, gh := w/grid+2, h/grid+2
	lattice := make([]float64, gw*gh)
	for i := range lattice {
		lattice[i] = float64(r.intn(256))
	}
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	g := NewGray(w, h).Fill(func(x, y int) byte {
		fx, fy := float64(x)/grid, float64(y)/grid
		ix, iy := int(fx), int(fy)
		tx, ty := fx-float64(ix), fy-float64(iy)
		v00 := lattice[iy*gw+ix]
		v10 := lattice[iy*gw+ix+1]
		v01 := lattice[(iy+1)*gw+ix]
		v11 := lattice[(iy+1)*gw+ix+1]
		return byte(lerp(lerp(v00, v10, tx), lerp(v01, v11, tx), ty))
	})
	return dither(g, seed, 4)
}

// Captcha draws wavy digit-like strokes over a noisy background.
func Captcha(w, h int, seed uint64) *Gray {
	r := rng{s: seed + 99}
	g := NewGray(w, h).Fill(func(x, y int) byte { return byte(200 + r.intn(40)) })
	strokes := 3 + r.intn(3)
	for s := 0; s < strokes; s++ {
		phase := float64(r.intn(628)) / 100
		amp := float64(h) / 5
		base := float64(h)/2 + float64(r.intn(h/3)) - float64(h)/6
		for x := 0; x < w; x++ {
			y := int(base + amp*math.Sin(float64(x)/4+phase))
			for dy := -1; dy <= 1; dy++ {
				if y+dy >= 0 && y+dy < h {
					g.Set(x, y+dy, 20)
				}
			}
		}
	}
	return g
}

// Checkerboard alternates tiles.
func Checkerboard(w, h, tile int, seed uint64) *Gray {
	g := NewGray(w, h).Fill(func(x, y int) byte {
		if (x/tile+y/tile)%2 == 0 {
			return 240
		}
		return 15
	})
	return dither(g, seed, 3)
}

// Gradient ramps diagonally.
func Gradient(w, h int, seed uint64) *Gray {
	g := NewGray(w, h).Fill(func(x, y int) byte {
		return byte(255 * (x + y) / (w + h - 2))
	})
	return dither(g, seed, 2)
}

// Text draws horizontal bar-code-like glyph strokes.
func Text(w, h int, seed uint64) *Gray {
	r := rng{s: seed * 31}
	g := NewGray(w, h).Fill(func(x, y int) byte { return 245 })
	rows := h / 8
	for row := 0; row < rows; row++ {
		y0 := row*8 + 2
		x := 1
		for x < w-2 {
			runLen := 2 + r.intn(5)
			if r.intn(3) > 0 {
				for dx := 0; dx < runLen && x+dx < w-1; dx++ {
					for dy := 0; dy < 4 && y0+dy < h; dy++ {
						g.Set(x+dx, y0+dy, 25)
					}
				}
			}
			x += runLen + 1
		}
	}
	return dither(g, seed, 2)
}

// TestSet returns the named evaluation images — the stand-in for the
// paper's 15-image set (§8) at the given edge size.
func TestSet(size int) []struct {
	Name  string
	Image *Gray
} {
	mk := func(name string, g *Gray) struct {
		Name  string
		Image *Gray
	} {
		return struct {
			Name  string
			Image *Gray
		}{name, g}
	}
	out := []struct {
		Name  string
		Image *Gray
	}{
		mk("qr-1", QRLike(size, size, 1)),
		mk("qr-2", QRLike(size, size, 2)),
		mk("logo-1", Logo(size, size, 3)),
		mk("logo-2", Logo(size, size, 4)),
		mk("photo-1", Photo(size, size, 5)),
		mk("photo-2", Photo(size, size, 6)),
		mk("photo-3", Photo(size, size, 7)),
		mk("captcha-1", Captcha(size, size, 8)),
		mk("captcha-2", Captcha(size, size, 9)),
		mk("checker-1", Checkerboard(size, size, 8, 10)),
		mk("checker-2", Checkerboard(size, size, 4, 11)),
		mk("gradient-1", Gradient(size, size, 12)),
		mk("gradient-2", Gradient(size, size, 13)),
		mk("text-1", Text(size, size, 14)),
		mk("text-2", Text(size, size, 15)),
	}
	return out
}

// EdgeMap computes a Sobel gradient-magnitude image — the reference the
// paper compares recovered images against ("frequently exhibits a high
// similarity to the results of edge detection").
func EdgeMap(g *Gray) *Gray {
	out := NewGray(g.W, g.H)
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		if x >= g.W {
			x = g.W - 1
		}
		if y >= g.H {
			y = g.H - 1
		}
		return int(g.At(x, y))
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			gx := -at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1) +
				at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			m := math.Hypot(float64(gx), float64(gy)) / 4
			if m > 255 {
				m = 255
			}
			out.Set(x, y, byte(m))
		}
	}
	return out
}

// BlockMean downsamples an image to one value per 8×8 block.
func BlockMean(g *Gray) []float64 {
	bw, bh := (g.W+7)/8, (g.H+7)/8
	out := make([]float64, bw*bh)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			var sum, n float64
			for y := by * 8; y < (by+1)*8 && y < g.H; y++ {
				for x := bx * 8; x < (bx+1)*8 && x < g.W; x++ {
					sum += float64(g.At(x, y))
					n++
				}
			}
			out[by*bw+bx] = sum / n
		}
	}
	return out
}

// Pearson returns the correlation coefficient of two equal-length series.
// It returns 0 when either series is constant.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("media: series length mismatch %d vs %d", len(a), len(b))
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}
