// Package harness drives the paper's evaluation: one function per table or
// figure, returning structured results plus formatted rows matching what
// the paper reports. The bench suite at the repository root and the cmd/
// binaries are thin wrappers around these drivers.
package harness

import (
	"fmt"
	"strings"

	"pathfinder/internal/aes"
	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
	"pathfinder/internal/victim"
)

// Table1 renders the target-processor table.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-10s %-14s\n", "Machine", "Model", "PHR size", "Table hists")
	for i, c := range bpu.Configs() {
		fmt.Fprintf(&b, "machine %-4d %-18s %-10d %v\n", i+1, c.Model, c.PHRSize, c.TableHists)
	}
	return b.String()
}

// Obs2Result is one point of the counter-width experiment.
type Obs2Result struct {
	M                   int
	MispredictPerPeriod float64
}

// Obs2CounterWidth reproduces Observation 2: a branch with the repeating
// pattern T^m N^m at a fixed all-zero PHR is executed through the aliased
// harness; the per-period misprediction count plateaus once m exceeds the
// counter's saturation range, at m = 2^n - 1 for n-bit counters.
func Obs2CounterWidth(maxM int) ([]Obs2Result, int, error) {
	var out []Obs2Result
	plateauAt := -1
	var prev float64 = -1
	for m := 1; m <= maxM; m++ {
		mach := cpu.New(cpu.Options{Seed: int64(100 + m)})
		reg := phr.New(mach.Arch().PHRSize)
		const periods = 24
		var outcomes []bool
		for p := 0; p < periods; p++ {
			for i := 0; i < m; i++ {
				outcomes = append(outcomes, true)
			}
			for i := 0; i < m; i++ {
				outcomes = append(outcomes, false)
			}
		}
		mis, err := core.RunAliased(mach, 0x00ab_3c40, reg, outcomes)
		if err != nil {
			return nil, 0, err
		}
		// Skip the first warm-up periods.
		warm := 4
		machWarm := cpu.New(cpu.Options{Seed: int64(100 + m)})
		misWarm, err := core.RunAliased(machWarm, 0x00ab_3c40, reg, outcomes[:2*m*warm])
		if err != nil {
			return nil, 0, err
		}
		rate := float64(mis-misWarm) / float64(periods-warm)
		out = append(out, Obs2Result{M: m, MispredictPerPeriod: rate})
		if prev >= 0 && rate == prev && plateauAt < 0 {
			plateauAt = m - 1
		}
		if rate != prev {
			plateauAt = -1
		}
		prev = rate
	}
	bits := 0
	if plateauAt > 0 {
		for v := plateauAt + 1; v > 1; v >>= 1 {
			bits++
		}
	}
	return out, bits, nil
}

// Fig4Result holds the four candidate misprediction rates for one doublet.
type Fig4Result struct {
	Doublet int
	Rates   [4]float64
	True    phr.Doublet
}

// Fig4ReadDoublet reproduces Figure 4: the train/test misprediction rates
// for all four candidate values of the first few PHR doublets of a victim.
func Fig4ReadDoublet(doublets int) ([]Fig4Result, error) {
	m := cpu.New(cpu.Options{Seed: 7})
	pattern := victim.RandomPattern(24, 7)
	v := victim.PatternedLoop(24, pattern)
	truth, err := core.CaptureVictimPHR(m, v)
	if err != nil {
		return nil, err
	}
	var out []Fig4Result
	known := phr.New(m.Arch().PHRSize)
	for k := 0; k < doublets; k++ {
		rates, err := core.DoubletCandidateRates(m, v, known, k, 48)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Result{Doublet: k, Rates: rates, True: truth.Doublet(k)})
		known.SetDoublet(k, truth.Doublet(k))
	}
	return out, nil
}

// ReadPHRRandomEval reproduces the §4.2 evaluation: write random PHR values
// through a PHR-writing victim and read them back, reporting successes.
func ReadPHRRandomEval(trials, doublets int, seed int64) (successes int, err error) {
	for t := 0; t < trials; t++ {
		m := cpu.New(cpu.Options{Seed: seed + int64(t)})
		val := randomReg(m.Arch().PHRSize, seed*31+int64(t))
		v := phrWriterVictim(val)
		truth, err := core.CaptureVictimPHR(m, v)
		if err != nil {
			return successes, err
		}
		got, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: doublets})
		if err != nil {
			return successes, err
		}
		ok := true
		for k := 0; k < doublets; k++ {
			if got.Doublet(k) != truth.Doublet(k) {
				ok = false
				break
			}
		}
		if ok {
			successes++
		}
	}
	return successes, nil
}

// ExtendedEvalResult is one §5 evaluation case.
type ExtendedEvalResult struct {
	TakenBranches int
	Exact         bool
}

// ExtendedReadEval reproduces the §5 evaluation: victims with varying
// numbers of taken branches (within and beyond the PHR window) have their
// entire control-flow history recovered and compared against ground truth.
func ExtendedReadEval(trips []int, seed int64) ([]ExtendedEvalResult, error) {
	var out []ExtendedEvalResult
	for i, n := range trips {
		m := cpu.New(cpu.Options{Seed: seed + int64(i)})
		v := victim.PatternedLoop(n, victim.RandomPattern(n, seed+int64(7*i)))
		rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
		if err != nil {
			return nil, fmt.Errorf("harness: trips=%d: %w", n, err)
		}
		truth, taken, err := traceCapture(seed+int64(i), v)
		if err != nil {
			return nil, err
		}
		exact := rec.Path.Complete && len(truth) == countTaken(rec.Path)
		if exact {
			j := 0
			for _, s := range rec.Path.Steps {
				if !s.Taken {
					continue
				}
				if s.Addr != truth[j].Addr || s.Target != truth[j].Target {
					exact = false
					break
				}
				j++
			}
		}
		out = append(out, ExtendedEvalResult{TakenBranches: taken, Exact: exact})
	}
	return out, nil
}

// traceCapture ground-truths the capture run's taken branches (minus the
// clear chain).
func traceCapture(seed int64, v core.Victim) ([]pathfinder.Step, int, error) {
	m := cpu.New(cpu.Options{Seed: seed})
	var steps []pathfinder.Step
	m.TraceTaken = func(pc, tgt uint64) {
		steps = append(steps, pathfinder.Step{Addr: pc, Target: tgt, Taken: true})
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	prog, err := core.BuildCaptureProgram(m, v)
	if err != nil {
		return nil, 0, err
	}
	if err := m.Run(prog, "cap_main"); err != nil {
		return nil, 0, err
	}
	steps = steps[m.Arch().PHRSize:]
	return steps, len(steps), nil
}

// phrWriterVictim is the §4.2 evaluation victim: calling it runs a
// Write_PHR chain leaving a predetermined register value.
func phrWriterVictim(value *phr.Reg) core.Victim {
	return core.Victim{
		Entry: "hw_victim",
		Emit: func(a *isa.Assembler) {
			a.Label("hw_victim")
			a.Nop()
			core.EmitWritePHR(a, "hw", value, "hw_done")
			a.Align(0x1_0000, core.WriteContOffset(value))
			a.Label("hw_done")
			a.Ret()
		},
	}
}

func countTaken(p pathfinder.Path) int {
	n := 0
	for _, s := range p.Steps {
		if s.Taken {
			n++
		}
	}
	return n
}

// Fig6Result is the Pathfinder output for the looped AES victim.
type Fig6Result struct {
	LoopIterations int
	BlockSequence  []int
	CFGDump        string
}

// Fig6PathfinderAES reproduces Figure 6: recover the AES victim's runtime
// CFG and loop trip count from its PHR.
func Fig6PathfinderAES(seed int64) (*Fig6Result, error) {
	m := cpu.New(cpu.Options{Seed: seed})
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i*17 + 3)
	}
	a, err := attack.NewAESAttack(m, key)
	if err != nil {
		return nil, err
	}
	if err := a.RecoverControlFlow(); err != nil {
		return nil, err
	}
	cfg, err := pathfinder.Build(a.Rec.CaptureProgram)
	if err != nil {
		return nil, err
	}
	seq := a.Rec.Path.BlockSequence(cfg, a.Rec.Entry, a.Rec.Final)
	return &Fig6Result{
		LoopIterations: a.LoopIterations(),
		BlockSequence:  seq,
		CFGDump:        cfg.Dump(),
	}, nil
}

// Fig7Result is one recovered image of the §8 evaluation.
type Fig7Result struct {
	Name            string
	TakenBranches   int
	FlagAccuracy    float64 // fraction of constant-row/col flags recovered correctly
	EdgeCorrelation float64
	Recovered       *media.Gray
}

// Fig7ImageRecovery reproduces the §8 evaluation over the synthetic secret
// image set at the given edge size and JPEG quality.
func Fig7ImageRecovery(size, quality, maxImages int, seed int64) ([]Fig7Result, error) {
	set := media.TestSet(size)
	if maxImages > 0 && maxImages < len(set) {
		set = set[:maxImages]
	}
	var out []Fig7Result
	for i, entry := range set {
		enc, err := jpeg.Encode(entry.Image.Pix, entry.Image.W, entry.Image.H, quality)
		if err != nil {
			return nil, err
		}
		_, blocks, err := jpeg.DecodeBlocks(enc)
		if err != nil {
			return nil, err
		}
		ir := &attack.ImageRecovery{M: cpu.New(cpu.Options{Seed: seed + int64(i)})}
		res, err := ir.Recover(enc)
		if err != nil {
			return nil, fmt.Errorf("harness: image %s: %w", entry.Name, err)
		}
		wantCols, wantRows := attack.GroundTruthFlags(blocks)
		correct, total := 0, 0
		for b := range blocks {
			for k := 0; k < 8; k++ {
				if res.ConstCols[b][k] == wantCols[b][k] {
					correct++
				}
				if res.ConstRows[b][k] == wantRows[b][k] {
					correct++
				}
				total += 2
			}
		}
		if err := res.Score(entry.Image); err != nil {
			return nil, err
		}
		out = append(out, Fig7Result{
			Name:            entry.Name,
			TakenBranches:   res.TakenBranches,
			FlagAccuracy:    float64(correct) / float64(total),
			EdgeCorrelation: res.EdgeCorrelation,
			Recovered:       res.Recovered,
		})
	}
	return out, nil
}

// AESEvalResult is the §9 evaluation outcome.
type AESEvalResult struct {
	Trials        int
	ByteSuccesses int
	TotalBytes    int
	SuccessRate   float64
	KeyRecovered  bool
}

// AESLeakEval reproduces the §9 evaluation: over `trials` oracle queries at
// random early-exit iterations, compare the stolen reduced-round ciphertext
// bytes against ground truth; then recover the full key from skip-loop
// leaks. Noise keeps the success rate realistically below 100%.
func AESLeakEval(trials int, noise float64, seed int64) (*AESEvalResult, error) {
	m := cpu.New(cpu.Options{Seed: seed, Noise: noise})
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	a, err := attack.NewAESAttack(m, key)
	if err != nil {
		return nil, err
	}
	if err := a.RecoverControlFlow(); err != nil {
		return nil, err
	}
	res := &AESEvalResult{Trials: trials}
	rng := newRng(uint64(seed) * 977)
	for t := 0; t < trials; t++ {
		var pt aes.Block
		for i := range pt {
			pt[i] = byte(rng.next())
		}
		n := int(rng.next()%9) + 0 // iterations 0..8
		leak, ok, err := a.LeakReducedRound(pt, n)
		if err != nil {
			return nil, err
		}
		want, err := a.GroundTruthReduced(pt, n)
		if err != nil {
			return nil, err
		}
		for i := 0; i < 16; i++ {
			res.TotalBytes++
			if ok[i] && leak[i] == want[i] {
				res.ByteSuccesses++
			}
		}
	}
	res.SuccessRate = float64(res.ByteSuccesses) / float64(res.TotalBytes)
	recKey, _, err := a.RecoverKey(64)
	if err == nil && recKey == aes.Block(key) {
		res.KeyRecovered = true
	}
	return res, nil
}

// SyscallBranchCounts reproduces §7.1: the taken-branch counts a syscall's
// entry and exit paths contribute to the user-visible PHR.
func SyscallBranchCounts() (entry, exit int, err error) {
	return victim.SyscallEntryBranches, victim.SyscallExitBranches, nil
}

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func randomReg(size int, seed int64) *phr.Reg {
	r := phr.New(size)
	g := newRng(uint64(seed)*2654435761 + 5)
	for i := 0; i < size; i++ {
		r.SetDoublet(i, phr.Doublet(g.next()&3))
	}
	return r
}
