// Package harness drives the paper's evaluation: one function per table or
// figure, returning structured, JSON-serializable results plus aggregated
// simulator counters. The bench suite at the repository root, the cmd/
// binaries and the pathfinderd job service are thin wrappers around these
// drivers.
//
// Every driver takes a context.Context — long-running experiment loops
// check it between iterations and return ctx.Err() on cancellation — and an
// Options value selecting the modeled microarchitecture and the base seed.
// The zero Options reproduces each driver's historical behaviour (Alder
// Lake, the per-driver default seed), so recorded golden results don't move.
//
// The drivers whose iterations are independent (ReadPHRRandomEval,
// Fig7ImageRecovery, AESLeakEval) shard them across a bounded worker pool.
// Every trial runs on its own machine whose seed derives from the trial
// index alone, so a report is a pure function of (Options, arguments):
// byte-identical at every Parallelism level, including the sequential
// Parallelism: 1 path the determinism tests pin the pool against.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"pathfinder/internal/aes"
	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/faultinject"
	"pathfinder/internal/isa"
	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
	"pathfinder/internal/pathfinder"
	"pathfinder/internal/phr"
	"pathfinder/internal/refmodel"
	"pathfinder/internal/victim"
)

// Historical per-driver seeds, applied when Options.Seed is zero. They match
// the constants the drivers hard-coded (Obs2, Fig4) or the default the CLIs
// and benches passed before seeds became caller-supplied.
const (
	DefaultObs2Seed    = 100
	DefaultFig4Seed    = 7
	DefaultReadPHRSeed = 1
	DefaultFig5Seed    = 13
	DefaultFig6Seed    = 17
	DefaultFig7Seed    = 29
	DefaultAESSeed     = 31
)

// Options configure a driver run. The zero value preserves historical
// behaviour: the Alder Lake microarchitecture and the driver's default seed.
type Options struct {
	Arch bpu.Config // modeled microarchitecture; zero value means Alder Lake
	Seed int64      // base seed; 0 selects the driver's historical default

	// RefModel backs every machine the driver builds with the naive
	// internal/refmodel oracle instead of the production bpu.CBP. Slow —
	// the oracle recomputes every fold bit by bit — but because both
	// implementations are deterministic and drive the same seeds, a driver
	// must produce an identical report either way; the harness tests use
	// this for end-to-end differential validation.
	RefModel bool

	// Parallelism bounds the worker pool of the sharded drivers
	// (ReadPHRRandomEval, Fig7ImageRecovery, AESLeakEval): 0 selects
	// GOMAXPROCS, 1 forces the exact sequential path, higher values cap the
	// pool. Per-trial seeds depend only on the trial index, so the report is
	// byte-identical at every setting.
	Parallelism int

	// BatchSize is the trial-group grain of the sharded drivers: each worker
	// claims BatchSize consecutive trial indices at a time and runs them on
	// the lanes of one cpu.Batch, whose machines (PHRs with their fold
	// caches, harts, headers) live in shared structure-of-arrays arenas, with
	// warm-cache snapshot restore applied at batch grain. 0 selects the
	// auto-tuned default (defaultBatchSize), 1 degenerates to the per-trial
	// path. Per-trial work is a pure function of the trial index, so the
	// report is byte-identical at every setting — the BatchSize-invariance
	// tests pin that.
	BatchSize int

	// Faults arms the deterministic fault-injection layer (package
	// faultinject) on the machines the driver builds. Injector seeds derive
	// from the same index-derived machine seeds as everything else, so
	// fault-injected reports keep the Parallelism-invariance contract. A
	// nil or disabled profile changes nothing. AESLeakEval exempts its
	// primary machine — phase-1 control-flow recovery models the attacker's
	// offline profiling step — and faults only the per-trial machines.
	Faults *faultinject.Profile

	// Retry is the bounded-attempt policy for the fallible drivers; the
	// zero value selects the historical three immediate attempts.
	Retry Retry

	// WarmCache selects the warm-state cache policy (warmcache.go): the
	// checkpointed drivers snapshot trained machine state and restore it
	// instead of re-running training loops when an identically configured
	// phase has already run in this process. The zero value (Auto) keeps
	// the cache on unless the PATHFINDER_WARMCACHE environment variable
	// kills it; reports are byte-identical either way — the cache trades
	// time, never outcomes. RefModel runs always bypass the cache.
	WarmCache WarmCacheMode

	// Planner selects the sweep-planner policy (planner.go) for the grid
	// drivers (AESGridSweep, AESNoiseSweep): group cells by their shared
	// training prefix, train each distinct prefix once, and prefetch the
	// next group's checkpoint from the persistent snapshot store while the
	// current group executes. The zero value (Auto) follows the warm cache;
	// reports are byte-identical with the planner on or off.
	Planner PlannerMode
}

// workers resolves the worker-pool size for the sharded drivers.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// defaultBatchSize is the auto-tuned trial-group grain. Eight lanes keep a
// batch's arena (eight PHRs plus fold caches, ~20 KiB) comfortably inside L1
// while amortizing group claiming; because any grain yields a byte-identical
// report, the constant only trades scheduling overhead against load balance
// and can move freely. See EXPERIMENTS.md for the tuning recipe.
const defaultBatchSize = 8

// batchSize resolves the trial-group grain for the sharded drivers.
func (o Options) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return defaultBatchSize
}

// seed resolves the base seed against the driver's historical default.
func (o Options) seed(def int64) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return def
}

// cpu builds machine options for one run at the given derived seed.
func (o Options) cpu(seed int64) cpu.Options {
	co := cpu.Options{Arch: o.Arch, Seed: seed, Faults: o.Faults}
	if o.RefModel {
		co.NewPredictor = refmodel.NewPredictor
	}
	return co
}

// retryReseed spaces the machine seeds of successive retry attempts for the
// drivers that gained retries in the robustness pass; Fig7 keeps its
// original 1000-stride schedule so its recorded goldens stay valid.
const retryReseed = 1_000_003

// Table1 renders the target-processor table.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-10s %-14s\n", "Machine", "Model", "PHR size", "Table hists")
	for i, c := range bpu.Configs() {
		fmt.Fprintf(&b, "machine %-4d %-18s %-10d %v\n", i+1, c.Model, c.PHRSize, c.TableHists)
	}
	return b.String()
}

// Obs2Result is one point of the counter-width experiment.
type Obs2Result struct {
	M                   int     `json:"m"`
	MispredictPerPeriod float64 `json:"mispredicts_per_period"`
}

// Obs2Report is the full counter-width experiment outcome.
type Obs2Report struct {
	Points      []Obs2Result `json:"points"`
	CounterBits int          `json:"counter_bits"`
	Stats       cpu.Counters `json:"stats"`
}

// Obs2CounterWidth reproduces Observation 2: a branch with the repeating
// pattern T^m N^m at a fixed all-zero PHR is executed through the aliased
// harness; the per-period misprediction count plateaus once m exceeds the
// counter's saturation range, at m = 2^n - 1 for n-bit counters. The machine
// for pattern length m is seeded with base+m (base defaults to 100).
func Obs2CounterWidth(ctx context.Context, opts Options, maxM int) (*Obs2Report, error) {
	rep := &Obs2Report{}
	base := opts.seed(DefaultObs2Seed)
	plateauAt := -1
	var prev float64 = -1
	for m := 1; m <= maxM; m++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mach := cpu.New(opts.cpu(base + int64(m)))
		reg := phr.New(mach.Arch().PHRSize)
		const periods = 24
		var outcomes []bool
		for p := 0; p < periods; p++ {
			for i := 0; i < m; i++ {
				outcomes = append(outcomes, true)
			}
			for i := 0; i < m; i++ {
				outcomes = append(outcomes, false)
			}
		}
		mis, err := core.RunAliased(mach, 0x00ab_3c40, reg, outcomes)
		if err != nil {
			return nil, err
		}
		// Skip the first warm-up periods.
		warm := 4
		machWarm := cpu.New(opts.cpu(base + int64(m)))
		misWarm, err := core.RunAliased(machWarm, 0x00ab_3c40, reg, outcomes[:2*m*warm])
		if err != nil {
			return nil, err
		}
		rep.Stats.Add(mach.Stats())
		rep.Stats.Add(machWarm.Stats())
		rate := float64(mis-misWarm) / float64(periods-warm)
		rep.Points = append(rep.Points, Obs2Result{M: m, MispredictPerPeriod: rate})
		if prev >= 0 && rate == prev && plateauAt < 0 {
			plateauAt = m - 1
		}
		if rate != prev {
			plateauAt = -1
		}
		prev = rate
	}
	if plateauAt > 0 {
		for v := plateauAt + 1; v > 1; v >>= 1 {
			rep.CounterBits++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// Fig4Result holds the four candidate misprediction rates for one doublet.
type Fig4Result struct {
	Doublet int         `json:"doublet"`
	Rates   [4]float64  `json:"rates"`
	True    phr.Doublet `json:"true"`
}

// Fig4Report is the full Figure 4 candidate-rate matrix.
type Fig4Report struct {
	Rows  []Fig4Result `json:"rows"`
	Stats cpu.Counters `json:"stats"`
}

// Fig4ReadDoublet reproduces Figure 4: the train/test misprediction rates
// for all four candidate values of the first few PHR doublets of a victim.
func Fig4ReadDoublet(ctx context.Context, opts Options, doublets int) (*Fig4Report, error) {
	seed := opts.seed(DefaultFig4Seed)
	m := cpu.New(opts.cpu(seed))
	pattern := victim.RandomPattern(24, seed)
	v := victim.PatternedLoop(24, pattern)
	truth, err := core.CaptureVictimPHR(m, v)
	if err != nil {
		return nil, err
	}
	rep := &Fig4Report{}
	known := phr.New(m.Arch().PHRSize)
	for k := 0; k < doublets; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rates, err := core.DoubletCandidateRates(m, v, known, k, 48)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Fig4Result{Doublet: k, Rates: rates, True: truth.Doublet(k)})
		known.SetDoublet(k, truth.Doublet(k))
	}
	rep.Stats.Add(m.Stats())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// ReadPHRReport is the §4.2 random read/write round-trip outcome. Failures
// counts trials whose every retry attempt errored; they are excluded from
// Successes but keep the sweep alive (partial-result degradation).
type ReadPHRReport struct {
	Trials    int          `json:"trials"`
	Doublets  int          `json:"doublets"`
	Successes int          `json:"successes"`
	Failures  int          `json:"failures,omitempty"`
	Stats     cpu.Counters `json:"stats"`
}

// ReadPHRRandomEval reproduces the §4.2 evaluation: write random PHR values
// through a PHR-writing victim and read them back, reporting successes.
// Trials are independent — each runs on its own machine seeded by the trial
// index — and shard across the options' worker pool; per-trial outcomes
// merge in index order, so the report does not depend on Parallelism. A
// trial whose capture or read errors is retried on a reseeded machine under
// the options' Retry policy; exhausted trials count as Failures.
func ReadPHRRandomEval(ctx context.Context, opts Options, trials, doublets int) (*ReadPHRReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	seed := opts.seed(DefaultReadPHRSeed)
	rep := &ReadPHRReport{Trials: trials, Doublets: doublets}
	oks := make([]bool, trials)
	fails := make([]bool, trials)
	stats := make([]cpu.Counters, trials)
	bp := &batchPool{disabled: opts.RefModel, k: opts.batchSize()}
	err := shardGroups(ctx, opts.workers(), bp.k, trials, func(lo, hi int) error {
		b := bp.get(opts.cpu(seed))
		for t := lo; t < hi; t++ {
			j := t - lo
			rerr := opts.Retry.Do(ctx, seed+int64(t), func(attempt int) error {
				m := bp.lane(b, j, opts.cpu(seed+int64(t)+retryReseed*int64(attempt)))
				// The written value is the trial's identity: fixed across
				// attempts, only the machine seed is redrawn.
				val := randomReg(m.Arch().PHRSize, seed*31+int64(t))
				v := phrWriterVictim(val)
				truth, err := core.CaptureVictimPHR(m, v)
				if err != nil {
					stats[t].Add(m.Stats())
					return err
				}
				got, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: doublets})
				if err != nil {
					stats[t].Add(m.Stats())
					return err
				}
				stats[t].Add(m.Stats())
				ok := true
				for k := 0; k < doublets; k++ {
					if got.Doublet(k) != truth.Doublet(k) {
						ok = false
						break
					}
				}
				oks[t] = ok
				return nil
			})
			if rerr != nil {
				if ctx.Err() != nil {
					return rerr
				}
				fails[t] = true
			}
		}
		bp.put(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for t := 0; t < trials; t++ {
		rep.Stats.Add(stats[t])
		if oks[t] {
			rep.Successes++
		}
		if fails[t] {
			rep.Failures++
		}
	}
	return rep, nil
}

// ExtendedEvalResult is one §5 evaluation case. Err records a case whose
// every recovery attempt failed; its metrics are then zero and the sweep
// continues (partial-result degradation).
type ExtendedEvalResult struct {
	TakenBranches int    `json:"taken_branches"`
	Exact         bool   `json:"exact"`
	Err           string `json:"err,omitempty"`
}

// ExtendedReport is the full §5 evaluation outcome.
type ExtendedReport struct {
	Cases []ExtendedEvalResult `json:"cases"`
	Stats cpu.Counters         `json:"stats"`
}

// ExtendedReadEval reproduces the §5 evaluation: victims with varying
// numbers of taken branches (within and beyond the PHR window) have their
// entire control-flow history recovered and compared against ground truth.
// A case whose recovery errors is retried on a reseeded machine under the
// options' Retry policy; an exhausted case records its error and the sweep
// continues.
func ExtendedReadEval(ctx context.Context, opts Options, trips []int) (*ExtendedReport, error) {
	seed := opts.seed(DefaultFig5Seed)
	rep := &ExtendedReport{}
	var stepBuf []pathfinder.Step
	for i, n := range trips {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var res ExtendedEvalResult
		rerr := opts.Retry.Do(ctx, seed+int64(i), func(attempt int) error {
			aseed := seed + int64(i) + retryReseed*int64(attempt)
			m := cpu.New(opts.cpu(aseed))
			// The victim pattern is the case's identity: fixed across
			// attempts, only the machine seed is redrawn.
			v := victim.PatternedLoop(n, victim.RandomPattern(n, seed+int64(7*i)))
			rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
			if err != nil {
				rep.Stats.Add(m.Stats())
				return fmt.Errorf("harness: trips=%d: %w", n, err)
			}
			truth, taken, stats, err := traceCapture(opts, aseed, v, &stepBuf)
			if err != nil {
				rep.Stats.Add(m.Stats())
				return err
			}
			rep.Stats.Add(m.Stats())
			rep.Stats.Add(stats)
			exact := rec.Path.Complete && len(truth) == countTaken(rec.Path)
			if exact {
				j := 0
				for _, s := range rec.Path.Steps {
					if !s.Taken {
						continue
					}
					if s.Addr != truth[j].Addr || s.Target != truth[j].Target {
						exact = false
						break
					}
					j++
				}
			}
			res = ExtendedEvalResult{TakenBranches: taken, Exact: exact}
			return nil
		})
		if rerr != nil {
			if ctx.Err() != nil {
				return nil, rerr
			}
			res = ExtendedEvalResult{Err: rerr.Error()}
		}
		rep.Cases = append(rep.Cases, res)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// traceCapture ground-truths the capture run's taken branches (minus the
// clear chain). The trace is accumulated in *buf, which is reset, grown as
// needed and handed back for the next call, so an evaluation loop traces
// every victim into one reusable buffer; the returned slice views *buf and
// stays valid until the buffer's next use.
func traceCapture(opts Options, seed int64, v core.Victim, buf *[]pathfinder.Step) ([]pathfinder.Step, int, cpu.Counters, error) {
	m := cpu.New(opts.cpu(seed))
	steps := (*buf)[:0]
	m.TraceTaken = func(pc, tgt uint64) {
		steps = append(steps, pathfinder.Step{Addr: pc, Target: tgt, Taken: true})
	}
	if v.Setup != nil {
		v.Setup(m)
	}
	prog, err := core.BuildCaptureProgram(m, v)
	if err != nil {
		return nil, 0, cpu.Counters{}, err
	}
	if err := m.Run(prog, "cap_main"); err != nil {
		return nil, 0, cpu.Counters{}, err
	}
	*buf = steps
	steps = steps[m.Arch().PHRSize:]
	return steps, len(steps), m.Stats(), nil
}

// phrWriterVictim is the §4.2 evaluation victim: calling it runs a
// Write_PHR chain leaving a predetermined register value.
func phrWriterVictim(value *phr.Reg) core.Victim {
	return core.Victim{
		Entry: "hw_victim",
		Emit: func(a *isa.Assembler) {
			a.Label("hw_victim")
			a.Nop()
			core.EmitWritePHR(a, "hw", value, "hw_done")
			a.Align(0x1_0000, core.WriteContOffset(value))
			a.Label("hw_done")
			a.Ret()
		},
	}
}

func countTaken(p pathfinder.Path) int {
	n := 0
	for _, s := range p.Steps {
		if s.Taken {
			n++
		}
	}
	return n
}

// Fig6Result is the Pathfinder output for the looped AES victim.
type Fig6Result struct {
	LoopIterations int          `json:"loop_iterations"`
	BlockSequence  []int        `json:"block_sequence"`
	CFGDump        string       `json:"cfg_dump"`
	Stats          cpu.Counters `json:"stats"`
}

// Fig6PathfinderAES reproduces Figure 6: recover the AES victim's runtime
// CFG and loop trip count from its PHR. A failed recovery is retried on a
// reseeded machine under the options' Retry policy; the result is a single
// unit of work, so exhausting the budget returns the last error rather than
// a degraded report.
func Fig6PathfinderAES(ctx context.Context, opts Options) (*Fig6Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seed := opts.seed(DefaultFig6Seed)
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i*17 + 3)
	}
	var res *Fig6Result
	var stats cpu.Counters
	err := opts.Retry.Do(ctx, seed, func(attempt int) error {
		m := cpu.New(opts.cpu(seed + retryReseed*int64(attempt)))
		a, err := attack.NewAESAttack(m, key)
		if err != nil {
			return err
		}
		if err := a.RecoverControlFlow(); err != nil {
			stats.Add(m.Stats())
			return err
		}
		cfg, err := pathfinder.Build(a.Rec.CaptureProgram)
		if err != nil {
			stats.Add(m.Stats())
			return err
		}
		seq := a.Rec.Path.BlockSequence(cfg, a.Rec.Entry, a.Rec.Final)
		stats.Add(m.Stats())
		res = &Fig6Result{
			LoopIterations: a.LoopIterations(),
			BlockSequence:  seq,
			CFGDump:        cfg.Dump(),
			Stats:          stats,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig7Result is one recovered image of the §8 evaluation. Err is set when
// every recovery attempt for the image failed; its metrics are then zero and
// the sweep continues with the remaining images (partial recovery).
type Fig7Result struct {
	Name            string      `json:"name"`
	TakenBranches   int         `json:"taken_branches"`
	FlagAccuracy    float64     `json:"flag_accuracy"` // fraction of constant-row/col flags recovered correctly
	EdgeCorrelation float64     `json:"edge_correlation"`
	Recovered       *media.Gray `json:"-"`
	Err             string      `json:"err,omitempty"`
}

// Fig7Report is the full §8 evaluation outcome.
type Fig7Report struct {
	Images []Fig7Result `json:"images"`
	Stats  cpu.Counters `json:"stats"`
}

// Fig7ImageRecovery reproduces the §8 evaluation over the synthetic secret
// image set at the given edge size and JPEG quality. Images shard across the
// options' worker pool, each on machines seeded by the image index. An image
// whose extended read fails is retried on a reseeded machine under the
// options' Retry policy (predictor interference occasionally leaves a
// doublet below the read threshold — the §4.2 read is itself probabilistic
// — and a fresh machine seed redraws every training coin in the capture);
// if every attempt fails the sweep records the error in that image's result
// and continues instead of aborting.
func Fig7ImageRecovery(ctx context.Context, opts Options, size, quality, maxImages int) (*Fig7Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	seed := opts.seed(DefaultFig7Seed)
	set := media.TestSet(size)
	if maxImages > 0 && maxImages < len(set) {
		set = set[:maxImages]
	}
	rep := &Fig7Report{}
	results := make([]Fig7Result, len(set))
	stats := make([]cpu.Counters, len(set))
	bp := &batchPool{disabled: opts.RefModel, k: opts.batchSize()}
	err := shardGroups(ctx, opts.workers(), bp.k, len(set), func(lo, hi int) error {
		bat := bp.get(opts.cpu(seed))
		for i := lo; i < hi; i++ {
			entry := set[i]
			enc, err := jpeg.Encode(entry.Image.Pix, entry.Image.W, entry.Image.H, quality)
			if err != nil {
				return err
			}
			_, blocks, err := jpeg.DecodeBlocks(enc)
			if err != nil {
				return err
			}
			var res *attack.ImageResult
			rerr := opts.Retry.Do(ctx, seed+int64(i), func(attempt int) error {
				// The 1000-stride attempt reseed predates the shared Retry
				// policy; it is kept so the recorded goldens stay valid.
				tm := bp.lane(bat, i-lo, opts.cpu(seed+int64(i)+1000*int64(attempt)))
				ir := &attack.ImageRecovery{M: tm}
				res, err = ir.Recover(enc)
				stats[i].Add(tm.Stats())
				return err
			})
			if rerr != nil {
				if ctx.Err() != nil {
					return rerr
				}
				results[i] = Fig7Result{Name: entry.Name, Err: fmt.Sprintf("harness: image %s: %v", entry.Name, rerr)}
				continue
			}
			wantCols, wantRows := attack.GroundTruthFlags(blocks)
			correct, total := 0, 0
			for b := range blocks {
				for k := 0; k < 8; k++ {
					if res.ConstCols[b][k] == wantCols[b][k] {
						correct++
					}
					if res.ConstRows[b][k] == wantRows[b][k] {
						correct++
					}
					total += 2
				}
			}
			if err := res.Score(entry.Image); err != nil {
				return err
			}
			results[i] = Fig7Result{
				Name:            entry.Name,
				TakenBranches:   res.TakenBranches,
				FlagAccuracy:    float64(correct) / float64(total),
				EdgeCorrelation: res.EdgeCorrelation,
				Recovered:       res.Recovered,
			}
		}
		bp.put(bat)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range results {
		rep.Stats.Add(stats[i])
	}
	rep.Images = results
	return rep, nil
}

// AESEvalResult is the §9 evaluation outcome. FailedTrials counts trials
// whose every retry attempt errored; their 16 bytes still count toward
// TotalBytes (and therefore degrade SuccessRate), matching how a real
// attacker's failed oracle queries waste measurement budget.
type AESEvalResult struct {
	Trials        int          `json:"trials"`
	ByteSuccesses int          `json:"byte_successes"`
	TotalBytes    int          `json:"total_bytes"`
	SuccessRate   float64      `json:"success_rate"`
	FailedTrials  int          `json:"failed_trials,omitempty"`
	KeyRecovered  bool         `json:"key_recovered"`
	Stats         cpu.Counters `json:"stats"`
}

// aesEvalKey is the fixed AES key of the §9 evaluation (the FIPS-197
// appendix key). Its hash content-addresses the phase-1 checkpoint, so the
// sweep planner can compute a cell's prefix key without building a machine.
var aesEvalKey = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

// aesPhase1Key is the phase-1 checkpoint address AESLeakEval will compute
// under for these options, resolved exactly as the driver resolves them
// (zero arch means Alder Lake, zero seed the historical default). The key
// deliberately omits the fault profile — the primary machine is
// fault-exempt — so a noise-intensity ladder shares one recovery.
func aesPhase1Key(opts Options, noise float64) WarmStateKey {
	cfg := opts.Arch
	if cfg.PHRSize == 0 {
		cfg = bpu.AlderLake
	}
	return WarmStateKey{
		Kind:    "aes-phase1",
		Arch:    cfg.Name,
		PHRSize: cfg.PHRSize,
		Prog:    hashBytes(aesEvalKey),
		Seed:    opts.seed(DefaultAESSeed),
		Noise:   noise,
	}
}

// AESLeakEval reproduces the §9 evaluation: over `trials` oracle queries at
// random early-exit iterations, compare the stolen reduced-round ciphertext
// bytes against ground truth; then recover the full key from skip-loop
// leaks. Noise keeps the success rate realistically below 100%.
//
// Phase 1 (control-flow recovery) and the final key recovery run on the
// primary machine; the per-trial oracle queries run on forked attacks, each
// on a fresh machine seeded by the trial index, warmed with two unpoisoned
// capture runs, and shard across the options' worker pool. Plaintexts and
// early-exit counts for every trial are drawn from a single stream before
// sharding, so the report is byte-identical at every Parallelism level.
func AESLeakEval(ctx context.Context, opts Options, trials int, noise float64) (*AESEvalResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seed := opts.seed(DefaultAESSeed)
	co := opts.cpu(seed)
	co.Noise = noise
	// The primary machine models the attacker's offline profiling step
	// (phase-1 control-flow recovery and final key recovery): it is exempt
	// from fault injection so a noise profile degrades the per-trial
	// measurements, not the attacker's own preparation.
	co.Faults = nil
	m := cpu.New(co)
	key := append([]byte(nil), aesEvalKey...)
	a, err := attack.NewAESAttack(m, key)
	if err != nil {
		return nil, err
	}
	useWarm := opts.warmOn()
	if useWarm {
		// Phase-1 checkpoint: the primary machine's full configuration is
		// (arch, seed, noise, key); its fault profile is always nil (see
		// above), so the key deliberately omits Options.Faults and a noise
		// sweep's points all share one recovery. Concurrent callers
		// singleflight on the computation; later callers restore the
		// snapshot onto their own fresh machine and adopt the recovery —
		// bit-exact, because the snapshot captures every PRNG stream and
		// all predictor/cache state, and the driver rewrites every memory
		// value it later reads (plaintexts, probe flushes, PHT writes).
		k := warmKey{
			kind:    "aes-phase1",
			arch:    m.Arch().Name,
			phrSize: m.Arch().PHRSize,
			prog:    hashBytes(key),
			seed:    seed,
			noise:   noise,
		}
		e, werr := warm.do(k, func() (*warmEntry, error) {
			if err := a.RecoverControlFlow(); err != nil {
				return nil, err
			}
			return &warmEntry{snap: m.Snapshot(), rec: a.Rec}, nil
		})
		if werr != nil {
			return nil, werr
		}
		if a.Rec == nil { // cache hit: this machine did not run phase 1
			m.RestoreFrom(e.snap)
			if err := a.AdoptRecovery(e.rec); err != nil {
				return nil, err
			}
		}
	} else if err := a.RecoverControlFlow(); err != nil {
		return nil, err
	}
	res := &AESEvalResult{Trials: trials}
	rng := newRng(uint64(seed) * 977)
	pts := make([]aes.Block, trials)
	ns := make([]int, trials)
	for t := 0; t < trials; t++ {
		for i := range pts[t] {
			pts[t][i] = byte(rng.next())
		}
		ns[t] = int(rng.next() % 9) // iterations 0..8
	}
	// Per-trial warm sharing: after Fork+Warm(2) a trial machine's captured
	// state is provably seed-independent when nothing draws from a PRNG on
	// the way there — no transient-collapse noise (Noise == 0; the victim
	// has no RAND and collapse changes transient cache footprints), no
	// armed fault injector. One trial donates its post-warm snapshot and
	// the rest restore it, then Reseed to their own trial seed — which
	// reproduces a fresh machine's PRNG state exactly, because the fresh
	// path made zero draws. Outside that gate every trial warms itself.
	shareWarm := useWarm && noise == 0 && (opts.Faults == nil || !opts.Faults.Enabled())
	var warmK warmKey
	if shareWarm {
		warmK = warmKey{
			kind:    "aes-warm",
			arch:    m.Arch().Name,
			phrSize: m.Arch().PHRSize,
			prog:    a.Rec.CaptureProgram.Hash(),
		}
	}
	successes := make([]int, trials)
	fails := make([]bool, trials)
	stats := make([]cpu.Counters, trials)
	trialCPU := func(t, attempt int) cpu.Options {
		tco := opts.cpu(seed + 7919*int64(t+1) + retryReseed*int64(attempt))
		tco.Noise = noise
		return tco
	}
	bp := &batchPool{disabled: opts.RefModel, k: opts.batchSize()}
	err = shardGroups(ctx, opts.workers(), bp.k, trials, func(lo, hi int) error {
		b := bp.get(opts.cpu(seed))
		// Batch-grain warm restore: claim the shared post-warm snapshot once
		// per group, recycle every lane to its trial's options and fan the
		// snapshot across the batch; each trial then only Reseeds its lane.
		// getOrFetch consults the cluster fetch hook on a local miss, so a
		// worker whose peer already trained this exact warm state restores
		// the fetched snapshot instead of re-warming.
		var we *warmEntry
		if shareWarm && b != nil {
			if e, ok := warm.getOrFetch(warmK); ok {
				we = e
				// RecycleRestore instead of Recycle-then-restore: the fused
				// operation preserves each lane's restore-sync with the shared
				// snapshot, so from the second group on a lane rewinds by
				// copying only what its previous trial touched.
				for t := lo; t < hi; t++ {
					b.Lane(t-lo).RecycleRestore(trialCPU(t, 0), e.snap)
				}
			}
		}
		for t := lo; t < hi; t++ {
			j := t - lo
			rerr := opts.Retry.Do(ctx, seed+int64(t), func(attempt int) error {
				tco := trialCPU(t, attempt)
				// Attempt 0 of a warm group runs on the lane exactly as the
				// group entry prepared it; retries (and cold groups) rebuild
				// the lane from scratch.
				preRestored := we != nil && attempt == 0
				var tm *cpu.Machine
				if preRestored {
					tm = b.Lane(j)
				} else {
					tm = bp.lane(b, j, tco)
				}
				ta, err := a.Fork(tm)
				if err != nil {
					stats[t].Add(tm.Stats())
					return err
				}
				warmed := false
				if preRestored {
					tm.Reseed(tco.Seed)
					warmed = true
				} else if shareWarm {
					if e, ok := warm.getOrFetch(warmK); ok {
						tm.RestoreFrom(e.snap)
						tm.Reseed(tco.Seed)
						warmed = true
					}
				}
				if !warmed {
					if err := ta.Warm(2); err != nil {
						stats[t].Add(tm.Stats())
						return err
					}
					if shareWarm {
						warm.putIfAbsent(warmK, &warmEntry{snap: tm.Snapshot()})
					}
				}
				leak, ok, err := ta.LeakReducedRound(pts[t], ns[t])
				if err != nil {
					stats[t].Add(tm.Stats())
					return err
				}
				want, err := ta.GroundTruthReduced(pts[t], ns[t])
				if err != nil {
					stats[t].Add(tm.Stats())
					return err
				}
				n := 0
				for i := 0; i < 16; i++ {
					if ok[i] && leak[i] == want[i] {
						n++
					}
				}
				successes[t] = n
				stats[t].Add(tm.Stats())
				return nil
			})
			if rerr != nil {
				if ctx.Err() != nil {
					return rerr
				}
				fails[t] = true
			}
		}
		bp.put(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for t := 0; t < trials; t++ {
		res.TotalBytes += 16
		res.ByteSuccesses += successes[t]
		res.Stats.Add(stats[t])
		if fails[t] {
			res.FailedTrials++
		}
	}
	res.SuccessRate = float64(res.ByteSuccesses) / float64(res.TotalBytes)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recKey, _, err := a.RecoverKey(64)
	if err == nil && recKey == aes.Block(key) {
		res.KeyRecovered = true
	}
	res.Stats.Add(m.Stats())
	return res, nil
}

// NoisePoint is one intensity step of the AES noise sweep: the PHR
// pollution probability in force and the full §9 evaluation under it.
type NoisePoint struct {
	PHRPollutionProb float64       `json:"phr_pollution_prob"`
	Result           AESEvalResult `json:"result"`
}

// NoiseSweepReport is the AESNoiseSweep outcome. Profile records the base
// fault profile the sweep perturbed (everything except the swept pollution
// probability); Points are ordered by rising intensity.
type NoiseSweepReport struct {
	Profile faultinject.Profile `json:"profile"`
	Points  []NoisePoint        `json:"points"`
	Stats   cpu.Counters        `json:"stats"`
}

// DefaultNoiseIntensities is the standard PHR-pollution sweep: from no
// pollution through context-switch storms heavy enough to visibly erode the
// §9 byte-theft rate. The values are per-taken-branch hazard rates — a
// capture run retires a few hundred taken branches, so 1e-3 already means
// a burst lands inside most runs. Spacing is wide (≈4× steps) so the
// recorded degradation stays monotonic despite per-point sampling noise.
func DefaultNoiseIntensities() []float64 {
	return []float64{0, 0.0002, 0.001, 0.004, 0.02}
}

// AESNoiseSweep runs the §9 AES evaluation once per PHR-pollution intensity,
// holding every other injector of the base profile (Options.Faults, or
// faultinject.Default when unset) constant. It is the robustness
// counterpart of AESLeakEval: the paper reports 98.43% byte accuracy under
// its noise model, and this sweep records how that accuracy decays as
// context-switch pressure on the path history rises. Each point inherits
// the options' Parallelism, seeds and retry policy, so the report is
// byte-identical at every Parallelism level.
func AESNoiseSweep(ctx context.Context, opts Options, trials int, noise float64, intensities []float64) (*NoiseSweepReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	base := faultinject.Default()
	if opts.Faults != nil {
		base = *opts.Faults
	}
	if len(intensities) == 0 {
		intensities = DefaultNoiseIntensities()
	}
	rep := &NoiseSweepReport{Profile: base}
	// Every point shares one phase-1 prefix — the checkpoint key omits the
	// fault profile — so under the planner the whole ladder forms a single
	// group behind one recovery (trained once, or restored from the
	// persistent store). Each cell writes its own slot; the report is
	// assembled in intensity order, so planner routing is byte-neutral.
	prefix := aesPhase1Key(opts, noise)
	results := make([]AESEvalResult, len(intensities))
	cells := make([]SweepCell, len(intensities))
	for i, p := range intensities {
		prof := base.WithPollution(p, base.PHRPollutionBurst)
		o := opts
		o.Faults = &prof
		i := i
		cells[i] = SweepCell{
			Label:  fmt.Sprintf("aes-noise[p=%g]", p),
			Prefix: prefix,
			Run: func(ctx context.Context) error {
				res, err := AESLeakEval(ctx, o, trials, noise)
				if err != nil {
					return err
				}
				results[i] = *res
				return nil
			},
		}
	}
	var err error
	if opts.plannerOn() {
		err = RunSweep(ctx, cells)
	} else {
		err = runSweepNaive(ctx, cells)
	}
	if err != nil {
		return nil, err
	}
	for i, p := range intensities {
		rep.Points = append(rep.Points, NoisePoint{PHRPollutionProb: p, Result: results[i]})
		rep.Stats.Add(results[i].Stats)
	}
	return rep, nil
}

// AESGridPoint is one cell of the arch × seed × noise grid sweep.
type AESGridPoint struct {
	Arch   string        `json:"arch"`
	Seed   int64         `json:"seed"`
	Noise  float64       `json:"noise"`
	Result AESEvalResult `json:"result"`
}

// AESGridReport is the AESGridSweep outcome, points in arch-major grid
// order.
type AESGridReport struct {
	Points []AESGridPoint `json:"points"`
	Stats  cpu.Counters   `json:"stats"`
}

// AESGridSweep runs the §9 AES evaluation over a grid of
// microarchitectures, base seeds and noise levels — the batch shape the
// robustness studies sweep. Cells execute through the sweep planner: they
// are grouped by their phase-1 checkpoint address, each distinct checkpoint
// is trained once (or restored from the persistent snapshot store, which is
// what makes a repeated sweep in a fresh process fast), and the next
// group's checkpoint is prefetched from the store while the current group
// executes. Empty dimension slices default to the options' own arch and
// seed and noise 0. Each cell writes its own grid slot and the report is
// assembled in grid order, so the report is a pure function of (Options,
// arguments): byte-identical with the planner or the store on or off, at
// every Parallelism and BatchSize.
func AESGridSweep(ctx context.Context, opts Options, trials int, archs []bpu.Config, seeds []int64, noises []float64) (*AESGridReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(archs) == 0 {
		archs = []bpu.Config{opts.Arch}
	}
	if len(seeds) == 0 {
		seeds = []int64{opts.Seed}
	}
	if len(noises) == 0 {
		noises = []float64{0}
	}
	n := len(archs) * len(seeds) * len(noises)
	results := make([]AESEvalResult, n)
	points := make([]AESGridPoint, n)
	cells := make([]SweepCell, 0, n)
	i := 0
	for _, cfg := range archs {
		for _, s := range seeds {
			for _, nz := range noises {
				o := opts
				o.Arch = cfg
				o.Seed = s
				key := aesPhase1Key(o, nz)
				ci := i
				points[ci] = AESGridPoint{Arch: key.Arch, Seed: key.Seed, Noise: nz}
				cells = append(cells, SweepCell{
					Label:  fmt.Sprintf("aes[%s seed=%d noise=%g]", key.Arch, key.Seed, nz),
					Prefix: key,
					Run: func(ctx context.Context) error {
						res, err := AESLeakEval(ctx, o, trials, nz)
						if err != nil {
							return err
						}
						results[ci] = *res
						return nil
					},
				})
				i++
			}
		}
	}
	var err error
	if opts.plannerOn() {
		err = RunSweep(ctx, cells)
	} else {
		err = runSweepNaive(ctx, cells)
	}
	if err != nil {
		return nil, err
	}
	rep := &AESGridReport{Points: points}
	for ci := range points {
		rep.Points[ci].Result = results[ci]
		rep.Stats.Add(results[ci].Stats)
	}
	return rep, nil
}

// SyscallBranchCounts reproduces §7.1: the taken-branch counts a syscall's
// entry and exit paths contribute to the user-visible PHR.
func SyscallBranchCounts() (entry, exit int, err error) {
	return victim.SyscallEntryBranches, victim.SyscallExitBranches, nil
}

type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func randomReg(size int, seed int64) *phr.Reg {
	r := phr.New(size)
	g := newRng(uint64(seed)*2654435761 + 5)
	for i := 0; i < size; i++ {
		r.SetDoublet(i, phr.Doublet(g.next()&3))
	}
	return r
}
