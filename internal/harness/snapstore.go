package harness

import (
	"sync"
	"sync/atomic"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
)

// The snapshot-store spill tier: an optional persistent backing store for
// the process-global warm cache. When one is installed (pathfinderd and
// noisebench open internal/snapstore under their data directory), warm
// entries spill to disk as they are trained and a cache miss consults the
// store before recomputing — so a cold process (daemon restart, fresh
// cluster worker, new benchmark run) restores millisecond snapshots instead
// of re-running training phases.
//
// The tier is correctness-neutral for the same reason the in-memory cache
// is: entries are content-addressed by the full WarmStateKey, snapshots are
// immutable with copy-on-use restore, and the store verifies an FNV-1a
// payload hash plus the snapshot envelope's own content hash before
// anything is restored. A store hit is observationally identical to a local
// recompute, so reports stay byte-identical with the store installed or
// not — the planner invariance tests pin that.

// SnapStore is the persistent tier's contract. Keys are canonical
// WarmStateKey spellings (WarmStateKey.String). Load reports a verified
// entry or a miss — never a partially decoded one; Save must be atomic and
// tolerate concurrent callers (first writer wins). *snapstore.Store
// implements this natively.
type SnapStore interface {
	Load(key string) (*cpu.Snapshot, *core.ExtendedResult, bool)
	Save(key string, snap *cpu.Snapshot, rec *core.ExtendedResult)
	Stats() (hits, misses, puts, evictions uint64, bytes int64, entries int)
}

// DeltaSaver is the optional delta-persistence extension of SnapStore: a
// store implementing it can persist an entry as a delta against a base
// entry it already holds, falling back to a full blob on its own judgment
// (missing or corrupt base, chain too deep). *snapstore.Store implements
// it. The harness type-asserts rather than widening SnapStore so existing
// stores and test fakes keep working unchanged.
type DeltaSaver interface {
	SaveDelta(key string, snap *cpu.Snapshot, rec *core.ExtendedResult, baseKey string)
}

var (
	snapStoreMu sync.RWMutex
	snapStore   SnapStore

	// Harness-side consult counters: how many warm-cache misses the store
	// resolved versus passed through. Distinct from the store's own Stats —
	// these count only lookups driven by the cache, not peer serving.
	snapStoreHits   atomic.Uint64
	snapStoreMisses atomic.Uint64
)

// SetSnapStore installs (or, with nil, removes) the process-global snapshot
// store. Install before starting drivers; swapping mid-run is safe but
// leaves earlier entries only in whichever store received them. Delta-chain
// base tracking restarts with the new store (bases recorded against the old
// one are meaningless in it).
func SetSnapStore(s SnapStore) {
	snapStoreMu.Lock()
	snapStore = s
	snapStoreMu.Unlock()
	storeDeltaMu.Lock()
	clear(deltaBases)
	storeDeltaMu.Unlock()
}

// InstalledSnapStore returns the currently installed store, if any.
func InstalledSnapStore() SnapStore {
	snapStoreMu.RLock()
	defer snapStoreMu.RUnlock()
	return snapStore
}

// SnapStoreStats reports how many warm-cache misses the installed store
// resolved and how many it could not.
func SnapStoreStats() (hits, misses uint64) {
	return snapStoreHits.Load(), snapStoreMisses.Load()
}

// ResetSnapStoreStats zeroes the consult counters — test and benchmark
// isolation only.
func ResetSnapStoreStats() {
	snapStoreHits.Store(0)
	snapStoreMisses.Store(0)
}

// storeLoad consults the installed store for a warm-cache miss. It runs
// outside the cache lock (disk read plus decode) and only ever returns
// fully verified entries.
func storeLoad(key warmKey) (*warmEntry, bool) {
	s := InstalledSnapStore()
	if s == nil {
		return nil, false
	}
	snap, rec, ok := s.Load(exportKey(key).String())
	if !ok || snap == nil {
		snapStoreMisses.Add(1)
		return nil, false
	}
	snapStoreHits.Add(1)
	return &warmEntry{snap: snap, rec: rec}, true
}

var (
	// Delta-chain base selection: grid cells that share a warm-key "class"
	// (everything but seed and noise — same kind, arch, PHR size and
	// program) differ in a few PHT counters and the PHR tail, so each spill
	// records itself as the class's base and the next spill in the class
	// persists as a delta against it. The store bounds chain depth with
	// periodic full-blob anchors, so the harness can chain indefinitely.
	storeDeltaMu sync.Mutex
	storeDeltaOn = true
	deltaBases   = make(map[warmKey]warmKey)
)

// SetStoreDeltaEnabled toggles delta-chain persistence of warm entries
// (pathfinderd's -store-delta flag). Off means every spill is a full blob,
// exactly the pre-delta behavior. The setting is correctness-neutral either
// way; it trades on-disk bytes against a bounded base-resolution cost at
// load time.
func SetStoreDeltaEnabled(on bool) {
	storeDeltaMu.Lock()
	storeDeltaOn = on
	clear(deltaBases)
	storeDeltaMu.Unlock()
}

// storeDeltaClass is the chain-grouping key: the warm key with its per-cell
// axes (seed, noise) zeroed.
func storeDeltaClass(k warmKey) warmKey {
	k.seed, k.noise = 0, 0
	return k
}

// storeSpill persists a warm entry. Re-spilling a resident key is a cheap
// no-op (the store is first-writer-wins), so callers spill unconditionally
// after populating the in-memory cache. When the store can persist deltas,
// the entry is saved against its class's previous spill; concurrent spills
// of one class race benignly (a stale or missing base makes the store fall
// back to a full blob).
func storeSpill(key warmKey, e *warmEntry) {
	if e == nil || e.snap == nil {
		return
	}
	s := InstalledSnapStore()
	if s == nil {
		return
	}
	ks := exportKey(key).String()
	if ds, ok := s.(DeltaSaver); ok {
		storeDeltaMu.Lock()
		on := storeDeltaOn
		var base warmKey
		var hasBase bool
		if on {
			base, hasBase = deltaBases[storeDeltaClass(key)]
			deltaBases[storeDeltaClass(key)] = key
		}
		storeDeltaMu.Unlock()
		if on && hasBase && base != key {
			ds.SaveDelta(ks, e.snap, e.rec, exportKey(base).String())
			return
		}
	}
	s.Save(ks, e.snap, e.rec)
}
