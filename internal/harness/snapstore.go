package harness

import (
	"sync"
	"sync/atomic"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
)

// The snapshot-store spill tier: an optional persistent backing store for
// the process-global warm cache. When one is installed (pathfinderd and
// noisebench open internal/snapstore under their data directory), warm
// entries spill to disk as they are trained and a cache miss consults the
// store before recomputing — so a cold process (daemon restart, fresh
// cluster worker, new benchmark run) restores millisecond snapshots instead
// of re-running training phases.
//
// The tier is correctness-neutral for the same reason the in-memory cache
// is: entries are content-addressed by the full WarmStateKey, snapshots are
// immutable with copy-on-use restore, and the store verifies an FNV-1a
// payload hash plus the snapshot envelope's own content hash before
// anything is restored. A store hit is observationally identical to a local
// recompute, so reports stay byte-identical with the store installed or
// not — the planner invariance tests pin that.

// SnapStore is the persistent tier's contract. Keys are canonical
// WarmStateKey spellings (WarmStateKey.String). Load reports a verified
// entry or a miss — never a partially decoded one; Save must be atomic and
// tolerate concurrent callers (first writer wins). *snapstore.Store
// implements this natively.
type SnapStore interface {
	Load(key string) (*cpu.Snapshot, *core.ExtendedResult, bool)
	Save(key string, snap *cpu.Snapshot, rec *core.ExtendedResult)
	Stats() (hits, misses, puts, evictions uint64, bytes int64, entries int)
}

var (
	snapStoreMu sync.RWMutex
	snapStore   SnapStore

	// Harness-side consult counters: how many warm-cache misses the store
	// resolved versus passed through. Distinct from the store's own Stats —
	// these count only lookups driven by the cache, not peer serving.
	snapStoreHits   atomic.Uint64
	snapStoreMisses atomic.Uint64
)

// SetSnapStore installs (or, with nil, removes) the process-global snapshot
// store. Install before starting drivers; swapping mid-run is safe but
// leaves earlier entries only in whichever store received them.
func SetSnapStore(s SnapStore) {
	snapStoreMu.Lock()
	snapStore = s
	snapStoreMu.Unlock()
}

// InstalledSnapStore returns the currently installed store, if any.
func InstalledSnapStore() SnapStore {
	snapStoreMu.RLock()
	defer snapStoreMu.RUnlock()
	return snapStore
}

// SnapStoreStats reports how many warm-cache misses the installed store
// resolved and how many it could not.
func SnapStoreStats() (hits, misses uint64) {
	return snapStoreHits.Load(), snapStoreMisses.Load()
}

// ResetSnapStoreStats zeroes the consult counters — test and benchmark
// isolation only.
func ResetSnapStoreStats() {
	snapStoreHits.Store(0)
	snapStoreMisses.Store(0)
}

// storeLoad consults the installed store for a warm-cache miss. It runs
// outside the cache lock (disk read plus decode) and only ever returns
// fully verified entries.
func storeLoad(key warmKey) (*warmEntry, bool) {
	s := InstalledSnapStore()
	if s == nil {
		return nil, false
	}
	snap, rec, ok := s.Load(exportKey(key).String())
	if !ok || snap == nil {
		snapStoreMisses.Add(1)
		return nil, false
	}
	snapStoreHits.Add(1)
	return &warmEntry{snap: snap, rec: rec}, true
}

// storeSpill persists a warm entry. Re-spilling a resident key is a cheap
// no-op (the store is first-writer-wins), so callers spill unconditionally
// after populating the in-memory cache.
func storeSpill(key warmKey, e *warmEntry) {
	if e == nil || e.snap == nil {
		return
	}
	s := InstalledSnapStore()
	if s == nil {
		return
	}
	s.Save(exportKey(key).String(), e.snap, e.rec)
}
