package harness

import (
	"context"
	"errors"
	"testing"
)

// TestDriversHonorCancellation verifies every long-running driver unwinds
// with ctx.Err() when its context is already cancelled.
func TestDriversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		call func() error
	}{
		{"obs2", func() error { _, err := Obs2CounterWidth(ctx, Options{}, 12); return err }},
		{"fig4", func() error { _, err := Fig4ReadDoublet(ctx, Options{}, 4); return err }},
		{"readphr", func() error { _, err := ReadPHRRandomEval(ctx, Options{}, 2, 16); return err }},
		{"fig5", func() error { _, err := ExtendedReadEval(ctx, Options{}, []int{40}); return err }},
		{"fig6", func() error { _, err := Fig6PathfinderAES(ctx, Options{}); return err }},
		{"fig7", func() error { _, err := Fig7ImageRecovery(ctx, Options{}, 16, 60, 1); return err }},
		{"aes", func() error { _, err := AESLeakEval(ctx, Options{}, 8, 0); return err }},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
	}
}
