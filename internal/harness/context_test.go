package harness

import (
	"context"
	"errors"
	"testing"
)

// TestDriversHonorCancellation verifies every long-running driver unwinds
// with ctx.Err() when its context is already cancelled.
func TestDriversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name string
		call func() error
	}{
		{"obs2", func() error { _, err := Obs2CounterWidth(ctx, Options{}, 12); return err }},
		{"fig4", func() error { _, err := Fig4ReadDoublet(ctx, Options{}, 4); return err }},
		{"readphr", func() error { _, err := ReadPHRRandomEval(ctx, Options{}, 2, 16); return err }},
		{"fig5", func() error { _, err := ExtendedReadEval(ctx, Options{}, []int{40}); return err }},
		{"fig6", func() error { _, err := Fig6PathfinderAES(ctx, Options{}); return err }},
		{"fig7", func() error { _, err := Fig7ImageRecovery(ctx, Options{}, 16, 60, 1); return err }},
		{"aes", func() error { _, err := AESLeakEval(ctx, Options{}, 8, 0); return err }},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
	}
}

// countdownCtx reports itself cancelled starting from its Nth Err
// observation — a deterministic way to land a cancellation at an exact
// trial index of a sequential (Parallelism 1) sweep. Not safe for
// concurrent use; its Done channel never closes, which is fine because the
// zero Retry policy never sleeps.
type countdownCtx struct {
	context.Context
	remaining int
	fired     bool
}

func (c *countdownCtx) Err() error {
	if c.fired {
		return context.Canceled
	}
	c.remaining--
	if c.remaining <= 0 {
		c.fired = true
		return context.Canceled
	}
	return c.Context.Err()
}

// TestDriversCancelMidSweep verifies a context that dies partway through a
// sweep surfaces as ctx.Err() from every driver — never as a silently
// truncated report. The countdown lands the cancellation at a deterministic
// trial index on the sequential path.
func TestDriversCancelMidSweep(t *testing.T) {
	seq := Options{Parallelism: 1}
	cases := []struct {
		name string
		fire int // Err observations before the context dies
		call func(ctx context.Context) (any, error)
	}{
		{"obs2", 3, func(ctx context.Context) (any, error) { return Obs2CounterWidth(ctx, seq, 6) }},
		{"fig4", 2, func(ctx context.Context) (any, error) { return Fig4ReadDoublet(ctx, seq, 4) }},
		{"readphr", 3, func(ctx context.Context) (any, error) { return ReadPHRRandomEval(ctx, seq, 4, 12) }},
		{"fig5", 2, func(ctx context.Context) (any, error) { return ExtendedReadEval(ctx, seq, []int{20, 24, 28}) }},
	}
	for _, tc := range cases {
		ctx := &countdownCtx{Context: context.Background(), remaining: tc.fire}
		rep, err := tc.call(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
		if rep != nil && !isNilPtr(rep) {
			t.Errorf("%s: returned a report alongside cancellation", tc.name)
		}
	}
}

// isNilPtr unwraps the typed-nil-in-interface case of the driver returns.
func isNilPtr(v any) bool {
	switch p := v.(type) {
	case *Obs2Report:
		return p == nil
	case *Fig4Report:
		return p == nil
	case *ReadPHRReport:
		return p == nil
	case *ExtendedReport:
		return p == nil
	default:
		return false
	}
}
