package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"pathfinder/internal/cpu"
)

// shard runs fn(i) for every index in [0, n), fanned out across at most
// `workers` goroutines. fn must be independent across indices and write its
// results into per-index slots owned by the caller; shard itself imposes no
// ordering on completion, so deterministic reports come from merging those
// slots in index order afterwards.
//
// Error semantics match the sequential loop the pool replaces: the error of
// the lowest failing index wins (indices below a failure were dispatched
// before it and run to completion, so a lower failure always gets the chance
// to claim the slot), a context error takes precedence, and no new indices
// are dispatched after the first failure.
// machinePool recycles trial machines within one sharded driver call. The
// drivers build one short-lived machine per trial; recycling a worker's
// machine between trials (cpu.Machine.Recycle) makes the steady state
// allocation-free. Pooling is disabled when the driver runs on the refmodel
// oracle — a custom predictor's state cannot be reset generically — in which
// case get simply builds fresh machines.
//
// Recycling never weakens the determinism contract: a recycled machine is
// observationally identical to a fresh one, so which worker (and which pool
// slot) serves a trial cannot influence its outcome. The golden and
// Parallelism-invariance tests pin that equivalence end to end.
type machinePool struct {
	disabled bool
	pool     sync.Pool
}

func (p *machinePool) get(co cpu.Options) *cpu.Machine {
	if !p.disabled {
		if v := p.pool.Get(); v != nil {
			m := v.(*cpu.Machine)
			m.Recycle(co)
			return m
		}
	}
	return cpu.New(co)
}

func (p *machinePool) put(m *cpu.Machine) {
	if !p.disabled {
		p.pool.Put(m)
	}
}

func shard(ctx context.Context, workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		// A cancellation that lands during the final index must surface
		// exactly like the parallel path's post-wait check below — callers
		// rely on shard never returning nil for a dead context.
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
