package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"pathfinder/internal/cpu"
)

// batchPool recycles cpu.Batch lane groups across the trial groups of one
// sharded driver call. A worker that claims a group of BatchSize consecutive
// trial indices checks out one batch, runs trial lo+j on lane j (recycling
// the lane to the trial's options), and returns the batch when the group is
// done, so the steady state allocates nothing and all K lanes' hot state
// (PHRs with their fold caches, harts, machine headers) stays in the shared
// structure-of-arrays arenas cpu.NewBatch lays out.
//
// Pooling is disabled when the driver runs on the refmodel oracle — a custom
// predictor's state cannot be reset generically — in which case get returns
// nil and lane simply builds fresh machines.
//
// Reuse never weakens the determinism contract: a recycled lane is
// observationally identical to a fresh machine, and lanes share no state, so
// which batch (and which lane) serves a trial cannot influence its outcome.
// The golden, Parallelism-invariance and BatchSize-invariance tests pin that
// equivalence end to end.
type batchPool struct {
	disabled bool
	k        int
	pool     sync.Pool
}

// get checks out a K-lane batch, or returns nil when pooling is disabled.
func (p *batchPool) get(co cpu.Options) *cpu.Batch {
	if p.disabled {
		return nil
	}
	if v := p.pool.Get(); v != nil {
		return v.(*cpu.Batch)
	}
	return cpu.NewBatch(co, p.k)
}

// put returns a batch checked out by get.
func (p *batchPool) put(b *cpu.Batch) {
	if b != nil {
		p.pool.Put(b)
	}
}

// lane hands out lane j of b recycled to co — or a fresh machine per call
// when pooling is disabled (b == nil).
func (p *batchPool) lane(b *cpu.Batch, j int, co cpu.Options) *cpu.Machine {
	if b == nil {
		return cpu.New(co)
	}
	m := b.Lane(j)
	m.Recycle(co)
	return m
}

// shard runs fn(i) for every index in [0, n), fanned out across at most
// `workers` goroutines. It is shardGroups at group size 1; see there for the
// contract.
func shard(ctx context.Context, workers, n int, fn func(i int) error) error {
	return shardGroups(ctx, workers, 1, n, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// shardGroups runs fn(lo, hi) for every group of up to `group` consecutive
// indices covering [0, n), fanned out across at most `workers` goroutines.
// Workers claim whole groups atomically, so a driver can run each group's
// trials on the lanes of one cpu.Batch; fn must be independent across
// indices and write its results into per-index slots owned by the caller.
// shardGroups imposes no ordering on group completion, so deterministic
// reports come from merging those slots in index order afterwards — the
// report is byte-identical at every (workers, group) combination.
//
// Error semantics match the sequential loop the pool replaces: the error of
// the lowest failing group wins (groups below a failure were dispatched
// before it and run to completion, so a lower failure always gets the chance
// to claim the slot), a context error takes precedence, and no new groups
// are dispatched after the first failure.
func shardGroups(ctx context.Context, workers, group, n int, fn func(lo, hi int) error) error {
	if group < 1 {
		group = 1
	}
	groups := (n + group - 1) / group
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		for g := 0; g < groups; g++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := g * group
			hi := min(lo+group, n)
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		// A cancellation that lands during the final group must surface
		// exactly like the parallel path's post-wait check below — callers
		// rely on shardGroups never returning nil for a dead context.
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		errLo    = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				g := int(next.Add(1)) - 1
				if g >= groups {
					return
				}
				lo := g * group
				hi := min(lo+group, n)
				if err := fn(lo, hi); err != nil {
					mu.Lock()
					if lo < errLo {
						errLo, firstErr = lo, err
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}
