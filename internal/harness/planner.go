package harness

import (
	"context"
	"fmt"
	"sync/atomic"
)

// The sweep planner: shared-prefix execution ordering for grids of driver
// cells. A sweep — arch × seed grids, noise-intensity ladders — is a list
// of cells whose expensive training prefix (the phase-level warm-cache
// entry, e.g. the AES phase-1 control-flow recovery) is often shared
// between cells. Run naively in input order, each cell rediscovers the
// prefix through the warm cache; grouped, the distinct prefixes are trained
// (or restored from the persistent snapshot store) exactly once each, the
// remaining cells of the group fork from the cached checkpoint, and while
// one group executes the next group's prefix is prefetched from the store
// in the background — the disk read and wire decode overlap the current
// group's simulation instead of serializing in front of it.
//
// The planner never touches results: cells are required to be independent
// (each writes its own slot; the caller assembles the report in cell-index
// order), so regrouping is execution-order-neutral and reports stay
// byte-identical with the planner on or off — the grid invariance tests pin
// that. All actual sharing flows through the warm cache's existing
// content-addressed contract; the planner only arranges for the sharing to
// be maximal and the restores to be pipelined.

// PlannerMode selects the sweep-planner policy for grid drivers.
type PlannerMode int

// Planner modes. The zero value (PlannerAuto) follows the warm cache: the
// planner's grouping only pays off when prefixes can actually be cached.
// Explicit On/Off win; Off runs cells in plain input order.
const (
	PlannerAuto PlannerMode = iota
	PlannerOff
	PlannerOn
)

// plannerOn resolves the effective planner policy for this run.
func (o Options) plannerOn() bool {
	switch o.Planner {
	case PlannerOn:
		return true
	case PlannerOff:
		return false
	}
	return o.warmOn()
}

// SweepCell is one point of a sweep grid. Prefix is the content address of
// the cell's expensive training prefix — the warm-cache key its driver will
// compute under — or the zero key when the cell shares nothing. Run
// executes the cell; it must write its result into caller-owned storage
// keyed by cell identity, never by execution order.
type SweepCell struct {
	Label  string
	Prefix WarmStateKey
	Run    func(ctx context.Context) error
}

// SweepGroup is one shared-prefix batch of a plan: indices into the planned
// cell slice, in input order.
type SweepGroup struct {
	Prefix WarmStateKey
	Cells  []int
}

// SweepPlan is the grouped execution order for a cell list.
type SweepPlan struct {
	Cells  []SweepCell
	Groups []SweepGroup
}

// PlanSweep groups cells by their prefix key, preserving first-seen group
// order and input order within each group. Zero-prefix cells form singleton
// groups in place, so a sweep with nothing to share degenerates to input
// order exactly.
func PlanSweep(cells []SweepCell) *SweepPlan {
	p := &SweepPlan{Cells: cells}
	byPrefix := make(map[WarmStateKey]int)
	for i, c := range cells {
		if c.Prefix == (WarmStateKey{}) {
			p.Groups = append(p.Groups, SweepGroup{Cells: []int{i}})
			continue
		}
		gi, ok := byPrefix[c.Prefix]
		if !ok {
			gi = len(p.Groups)
			byPrefix[c.Prefix] = gi
			p.Groups = append(p.Groups, SweepGroup{Prefix: c.Prefix})
		}
		p.Groups[gi].Cells = append(p.Groups[gi].Cells, i)
	}
	return p
}

// Planner accounting, process-global like the warm cache it drives.
var (
	plannerGroups         atomic.Uint64 // groups executed
	plannerCells          atomic.Uint64 // cells executed under the planner
	plannerSharedCells    atomic.Uint64 // cells that reused a groupmate's prefix
	plannerPrefetchHits   atomic.Uint64 // background store prefetches that installed an entry
	plannerPrefetchMisses atomic.Uint64 // background prefetches the store could not serve
)

// PlannerStats reports cumulative sweep-planner counters: executed groups
// and cells, cells that rode a groupmate's prefix training, and background
// store-prefetch outcomes. Surfaced on the daemon's /metrics.
func PlannerStats() (groups, cells, shared, prefetchHits, prefetchMisses uint64) {
	return plannerGroups.Load(), plannerCells.Load(), plannerSharedCells.Load(),
		plannerPrefetchHits.Load(), plannerPrefetchMisses.Load()
}

// ResetPlannerStats zeroes the planner counters — test and benchmark
// isolation only.
func ResetPlannerStats() {
	plannerGroups.Store(0)
	plannerCells.Store(0)
	plannerSharedCells.Store(0)
	plannerPrefetchHits.Store(0)
	plannerPrefetchMisses.Store(0)
}

// prefetchPrefix pulls key's entry from the persistent store into the warm
// cache in the background, returning a channel closed when done. It is
// purely an optimization: a miss just means the owning group's first cell
// consults the store (or trains) itself.
func prefetchPrefix(key WarmStateKey) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		k := key.internal()
		if _, ok := warm.get(k); ok {
			return // already resident; nothing to overlap
		}
		if e, ok := storeLoad(k); ok {
			warm.putIfAbsent(k, e)
			plannerPrefetchHits.Add(1)
		} else {
			plannerPrefetchMisses.Add(1)
		}
	}()
	return done
}

// Run executes the plan: groups in plan order, cells of a group in input
// order, with a depth-1 pipeline that prefetches the next group's prefix
// from the persistent store while the current group executes. Cell
// parallelism lives inside each cell's driver (Options.Parallelism); the
// planner itself is sequential over cells, which is what keeps the grouped
// execution byte-identical to the naive order.
func (p *SweepPlan) Run(ctx context.Context) error {
	storeOn := InstalledSnapStore() != nil
	var next <-chan struct{}
	for gi, g := range p.Groups {
		if next != nil {
			<-next // this group's prefix prefetch, started last iteration
		}
		next = nil
		if storeOn && gi+1 < len(p.Groups) {
			if k := p.Groups[gi+1].Prefix; k != (WarmStateKey{}) {
				next = prefetchPrefix(k)
			}
		}
		plannerGroups.Add(1)
		for i, ci := range g.Cells {
			cell := p.Cells[ci]
			if err := ctx.Err(); err != nil {
				drain(next)
				return err
			}
			if err := cell.Run(ctx); err != nil {
				drain(next)
				if cell.Label != "" {
					return fmt.Errorf("harness: sweep cell %s: %w", cell.Label, err)
				}
				return err
			}
			plannerCells.Add(1)
			if i > 0 {
				plannerSharedCells.Add(1)
			}
		}
	}
	drain(next)
	return ctx.Err()
}

func drain(ch <-chan struct{}) {
	if ch != nil {
		<-ch
	}
}

// RunSweep plans and executes cells with shared-prefix grouping and
// pipelined warm restore.
func RunSweep(ctx context.Context, cells []SweepCell) error {
	return PlanSweep(cells).Run(ctx)
}

// runSweepNaive executes cells in plain input order — the PlannerOff path,
// kept explicit so on/off benchmarks compare real alternatives.
func runSweepNaive(ctx context.Context, cells []SweepCell) error {
	for _, cell := range cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cell.Run(ctx); err != nil {
			if cell.Label != "" {
				return fmt.Errorf("harness: sweep cell %s: %w", cell.Label, err)
			}
			return err
		}
	}
	return ctx.Err()
}
