package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func warmTestEntry(n uint64) *warmEntry {
	return &warmEntry{} // identity is all the cache tests need
}

func TestWarmCacheLRUEviction(t *testing.T) {
	c := newWarmCache(2)
	k := func(i int) warmKey { return warmKey{kind: "t", seed: int64(i)} }
	a, b, d := warmTestEntry(1), warmTestEntry(2), warmTestEntry(3)
	c.putIfAbsent(k(1), a)
	c.putIfAbsent(k(2), b)
	if _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is least recent
		t.Fatal("entry 1 missing before capacity reached")
	}
	c.putIfAbsent(k(3), d)
	if _, ok := c.get(k(2)); ok {
		t.Error("least-recently-used entry 2 survived eviction")
	}
	if e, ok := c.get(k(1)); !ok || e != a {
		t.Error("recently-used entry 1 was evicted")
	}
	if e, ok := c.get(k(3)); !ok || e != d {
		t.Error("newest entry 3 was evicted")
	}
}

func TestWarmCachePutIfAbsentKeepsFirst(t *testing.T) {
	c := newWarmCache(4)
	key := warmKey{kind: "t"}
	first, second := warmTestEntry(1), warmTestEntry(2)
	c.putIfAbsent(key, first)
	c.putIfAbsent(key, second)
	if e, _ := c.get(key); e != first {
		t.Error("putIfAbsent replaced an existing entry")
	}
}

func TestWarmCacheSingleflight(t *testing.T) {
	c := newWarmCache(4)
	key := warmKey{kind: "t"}
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*warmEntry, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.do(key, func() (*warmEntry, error) {
				computes.Add(1)
				<-release // hold the flight open so every caller joins it
				return warmTestEntry(0), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = e
		}(i)
	}
	// Wait until the one compute is in flight, then release it.
	for {
		c.mu.Lock()
		n := len(c.inflight)
		c.mu.Unlock()
		if n == 1 {
			break
		}
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, e := range results {
		if e != results[0] {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
}

func TestWarmCacheErrorsNotCached(t *testing.T) {
	c := newWarmCache(4)
	key := warmKey{kind: "t"}
	boom := errors.New("boom")
	if _, err := c.do(key, func() (*warmEntry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	ran := false
	e, err := c.do(key, func() (*warmEntry, error) { ran = true; return warmTestEntry(0), nil })
	if err != nil || e == nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if !ran {
		t.Fatal("failed computation was cached; retry did not run")
	}
}

func TestWarmCacheStats(t *testing.T) {
	c := newWarmCache(4)
	key := warmKey{kind: "t"}
	c.get(key)                // miss
	c.putIfAbsent(key, warmTestEntry(0))
	c.get(key)                // hit
	if _, err := c.do(key, func() (*warmEntry, error) { return nil, errors.New("unreachable") }); err != nil {
		t.Fatal(err)
	} // hit
	hits, misses := c.stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2 / 1", hits, misses)
	}
}

func TestWarmCacheModeResolution(t *testing.T) {
	cases := []struct {
		name string
		env  string
		opts Options
		want bool
	}{
		{"auto default on", "", Options{}, true},
		{"auto env kills", "off", Options{}, false},
		{"auto env kills 0", "0", Options{}, false},
		{"auto env kills FALSE", "FALSE", Options{}, false},
		{"explicit on beats env", "off", Options{WarmCache: WarmCacheOn}, true},
		{"explicit off", "", Options{WarmCache: WarmCacheOff}, false},
		{"refmodel always off", "", Options{RefModel: true, WarmCache: WarmCacheOn}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv("PATHFINDER_WARMCACHE", tc.env)
			if got := tc.opts.warmOn(); got != tc.want {
				t.Errorf("warmOn() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestAESWarmCacheByteIdentical is the cache half of the determinism
// contract: AESLeakEval must emit byte-identical reports with the warm-state
// cache off or on, cold or already populated, at every Parallelism level.
// noise = 0 exercises the per-trial snapshot sharing; noise = 0.015 takes
// the phase-1-only path (per-trial sharing is gated off under noise).
func TestAESWarmCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	for _, noise := range []float64{0, 0.015} {
		t.Run(fmt.Sprintf("noise=%v", noise), func(t *testing.T) {
			off, err := AESLeakEval(ctx, Options{Parallelism: 1, WarmCache: WarmCacheOff}, 4, noise)
			if err != nil {
				t.Fatal(err)
			}
			want := marshalReport(t, off)
			for _, w := range []int{1, 4, 0} {
				warm.reset()
				for _, state := range []string{"cold", "warm"} {
					rep, err := AESLeakEval(ctx, Options{Parallelism: w, WarmCache: WarmCacheOn}, 4, noise)
					if err != nil {
						t.Fatalf("parallelism %d (%s cache): %v", w, state, err)
					}
					if got := marshalReport(t, rep); got != want {
						t.Errorf("parallelism %d (%s cache) diverges from cache-off sequential:\ngot:  %s\nwant: %s",
							w, state, got, want)
					}
				}
				if hits, _ := warm.stats(); hits == 0 {
					t.Errorf("parallelism %d: second run never hit the warm cache", w)
				}
			}
		})
	}
}
