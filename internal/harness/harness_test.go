package harness

import (
	"context"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Core i9-13900KS", "Core i9-12900", "Core i7-6770HQ", "194", "93"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestObs2CounterWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	rep, err := Obs2CounterWidth(context.Background(), Options{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Points {
		t.Logf("m=%-3d mispredicts/period=%.2f", r.M, r.MispredictPerPeriod)
	}
	if rep.CounterBits != 3 {
		t.Fatalf("inferred counter width %d, want 3 (Observation 2)", rep.CounterBits)
	}
	if rep.Stats.Runs == 0 || rep.Stats.CondBranches == 0 {
		t.Fatalf("aggregated counters empty: %+v", rep.Stats)
	}
}

func TestFig4Rates(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	rep, err := Fig4ReadDoublet(context.Background(), Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		t.Logf("doublet %d true=%d rates=%v", r.Doublet, r.True, r.Rates)
		for x := 0; x < 4; x++ {
			if x == int(r.True) {
				if r.Rates[x] < 0.3 {
					t.Errorf("doublet %d: true candidate rate %.2f, want ~0.5", r.Doublet, r.Rates[x])
				}
			} else if r.Rates[x] > 0.2 {
				t.Errorf("doublet %d: wrong candidate %d rate %.2f, want ~0", r.Doublet, x, r.Rates[x])
			}
		}
	}
}

func TestReadPHRRandomEval(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	const trials = 5
	rep, err := ReadPHRRandomEval(context.Background(), Options{Seed: 3}, trials, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Successes != trials {
		t.Fatalf("%d/%d random PHR values read back", rep.Successes, trials)
	}
}

func TestExtendedReadEval(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	rep, err := ExtendedReadEval(context.Background(), Options{Seed: 5}, []int{40, 150, 220})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Cases {
		t.Logf("taken=%d exact=%v", r.TakenBranches, r.Exact)
		if !r.Exact {
			t.Errorf("case with %d taken branches not recovered exactly", r.TakenBranches)
		}
	}
}

func TestFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	res, err := Fig6PathfinderAES(context.Background(), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopIterations != 9 {
		t.Fatalf("loop iterations %d, want 9 (Figure 6)", res.LoopIterations)
	}
	if len(res.BlockSequence) < 4 {
		t.Fatalf("block sequence too short: %v", res.BlockSequence)
	}
}

func TestSyscallBranchCounts(t *testing.T) {
	entry, exit, err := SyscallBranchCounts()
	if err != nil {
		t.Fatal(err)
	}
	if entry != 23 || exit != 7 {
		t.Fatalf("entry=%d exit=%d, want 23/7 (§7.1)", entry, exit)
	}
}
