package harness

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update-golden regenerates the recorded driver reports under testdata/.
// The recorded files were captured before the hot-path overhaul landed, so
// these tests pin the overhauled fast paths (incremental folds, predecoded
// programs, patched attack templates, sharded drivers) to the exact
// pre-overhaul behaviour, counters included. One exception: golden_aesleak
// was re-captured when AESLeakEval's trials moved from a single shared
// machine to independent per-trial machines (the determinism contract that
// makes the report Parallelism-invariant). Its leak outcomes and recovered
// key match the pre-overhaul capture exactly; only the aggregate counters
// moved with the machine restructuring.
var updateGolden = flag.Bool("update-golden", false, "regenerate testdata golden driver reports")

func goldenCompare(t *testing.T, name string, report any) {
	t.Helper()
	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("report diverges from recorded golden %s\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenObs2(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := Obs2CounterWidth(context.Background(), Options{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_obs2.json", rep)
}

func TestGoldenFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := Fig4ReadDoublet(context.Background(), Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_fig4.json", rep)
}

func TestGoldenReadPHR(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := ReadPHRRandomEval(context.Background(), Options{}, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_readphr.json", rep)
}

func TestGoldenExtendedRead(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := ExtendedReadEval(context.Background(), Options{}, []int{40})
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_extread.json", rep)
}

func TestGoldenAESLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := AESLeakEval(context.Background(), Options{}, 8, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_aesleak.json", rep)
}

func TestGoldenFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := Fig7ImageRecovery(context.Background(), Options{}, 16, 70, 2)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_fig7.json", rep)
}
