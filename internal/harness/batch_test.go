package harness

import (
	"context"
	"runtime"
	"testing"

	"pathfinder/internal/faultinject"
)

// The batch half of the determinism contract: a report is a pure function of
// (Options, arguments), independent of BatchSize. The trial-group grain only
// decides which cpu.Batch lane serves a trial — never what the trial
// computes — so every BatchSize must reproduce the scalar-grain (BatchSize 1)
// report byte for byte at every Parallelism level. CI runs this file under
// -race, so any state leaking between the lanes of a shared batch arena
// surfaces here either as a report mismatch or as a data race.

// batchGrid is the K sweep the invariance tests run: scalar grain, a small
// explicit grain, the auto-tuned default, and the machine's GOMAXPROCS.
func batchGrid() []int {
	return []int{1, 4, 0, runtime.GOMAXPROCS(0)}
}

func TestReadPHRBatchSizeInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	base, err := ReadPHRRandomEval(ctx, Options{Parallelism: 1, BatchSize: 1}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, base)
	for _, k := range batchGrid() {
		for _, w := range []int{1, 4, 0} {
			rep, err := ReadPHRRandomEval(ctx, Options{Parallelism: w, BatchSize: k}, 3, 8)
			if err != nil {
				t.Fatalf("batch %d parallelism %d: %v", k, w, err)
			}
			if got := marshalReport(t, rep); got != want {
				t.Errorf("batch %d parallelism %d diverges from scalar-grain sequential:\ngot:  %s\nwant: %s",
					k, w, got, want)
			}
		}
	}
}

func TestFig7BatchSizeInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	base, err := Fig7ImageRecovery(ctx, Options{Parallelism: 1, BatchSize: 1}, 16, 70, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, base)
	// Fig7 images are the most expensive trials in the suite, so this driver
	// gets a trimmed grid: an odd explicit grain (groups of 3 over 2 images
	// exercise a partial trailing group) and the auto-tuned default, both at
	// Parallelism 2.
	for _, k := range []int{3, 0} {
		rep, err := Fig7ImageRecovery(ctx, Options{Parallelism: 2, BatchSize: k}, 16, 70, 2)
		if err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if got := marshalReport(t, rep); got != want {
			t.Errorf("batch %d diverges from scalar-grain sequential:\ngot:  %s\nwant: %s", k, got, want)
		}
	}
}

func TestAESBatchSizeInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	base, err := AESLeakEval(ctx, Options{Parallelism: 1, BatchSize: 1}, 6, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, base)
	for _, k := range batchGrid() {
		for _, w := range []int{1, 4, 0} {
			rep, err := AESLeakEval(ctx, Options{Parallelism: w, BatchSize: k}, 6, 0.015)
			if err != nil {
				t.Fatalf("batch %d parallelism %d: %v", k, w, err)
			}
			if got := marshalReport(t, rep); got != want {
				t.Errorf("batch %d parallelism %d diverges from scalar-grain sequential:\ngot:  %s\nwant: %s",
					k, w, got, want)
			}
		}
	}
}

// TestAESWarmCacheBatchSizeInvariant pins the batch-grain warm-start path:
// with noise 0 and the warm-state cache on, a whole trial group is restored
// from one shared snapshot via Batch.RestoreAll, then reseeded lane by lane.
// The report must still match the cache-off, scalar-grain sequential run at
// every BatchSize, with the cache cold and already populated.
func TestAESWarmCacheBatchSizeInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	off, err := AESLeakEval(ctx, Options{Parallelism: 1, BatchSize: 1, WarmCache: WarmCacheOff}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, off)
	for _, k := range batchGrid() {
		warm.reset()
		for _, state := range []string{"cold", "warm"} {
			rep, err := AESLeakEval(ctx, Options{BatchSize: k, WarmCache: WarmCacheOn}, 4, 0)
			if err != nil {
				t.Fatalf("batch %d (%s cache): %v", k, state, err)
			}
			if got := marshalReport(t, rep); got != want {
				t.Errorf("batch %d (%s cache) diverges from cache-off scalar-grain sequential:\ngot:  %s\nwant: %s",
					k, state, got, want)
			}
		}
		if hits, _ := warm.stats(); hits == 0 {
			t.Errorf("batch %d: second run never hit the warm cache", k)
		}
	}
}

// TestFaultedBatchSizeInvariant arms the full fault-injection profile and
// checks the grain sweep again on both retrying drivers: injector streams and
// per-attempt reseeds are pure functions of the trial index, so neither the
// lane a trial runs on nor the grain of its group can move a fault event.
func TestFaultedBatchSizeInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	prof := faultinject.Default().WithPollution(0.001, 8)
	opts := func(w, k int) Options {
		return Options{Parallelism: w, BatchSize: k, Faults: &prof}
	}
	t.Run("aes", func(t *testing.T) {
		base, err := AESLeakEval(ctx, opts(1, 1), 6, 0.015)
		if err != nil {
			t.Fatal(err)
		}
		want := marshalReport(t, base)
		for _, k := range batchGrid() {
			rep, err := AESLeakEval(ctx, opts(0, k), 6, 0.015)
			if err != nil {
				t.Fatalf("batch %d: %v", k, err)
			}
			if got := marshalReport(t, rep); got != want {
				t.Errorf("batch %d diverges from scalar-grain sequential:\ngot:  %s\nwant: %s", k, got, want)
			}
		}
	})
	t.Run("readphr", func(t *testing.T) {
		base, err := ReadPHRRandomEval(ctx, opts(1, 1), 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := marshalReport(t, base)
		for _, k := range batchGrid() {
			rep, err := ReadPHRRandomEval(ctx, opts(0, k), 3, 8)
			if err != nil {
				t.Fatalf("batch %d: %v", k, err)
			}
			if got := marshalReport(t, rep); got != want {
				t.Errorf("batch %d diverges from scalar-grain sequential:\ngot:  %s\nwant: %s", k, got, want)
			}
		}
	})
}
