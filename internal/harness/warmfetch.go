package harness

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pathfinder/internal/cpu"
)

// The warm-cache fetch hook: the cluster layer's bridge into the
// process-global warm-state cache. A worker that misses a per-trial warm
// snapshot can pull the identical, content-addressed snapshot a peer
// already trained instead of re-training — the snapshot contract (immutable,
// copy-on-use restore, byte-identical continuations) makes a fetched
// snapshot indistinguishable from a locally trained one, so reports stay
// byte-identical whether warm state was trained here, fetched, or absent.
//
// Only rec-free entries are exchanged: phase-level checkpoints (kind
// "aes-phase1") carry a driver-specific recovery artifact next to the
// snapshot and stay process-local. The exported surface therefore deals
// purely in (WarmStateKey, *cpu.Snapshot) pairs.

// WarmStateKey is the exported form of the warm cache's content address.
// String() is the canonical wire spelling used by heartbeat advertisements
// and fetch requests; ParseWarmStateKey inverts it.
type WarmStateKey struct {
	Kind    string  `json:"kind"`
	Arch    string  `json:"arch"`
	PHRSize int     `json:"phr_size"`
	Prog    uint64  `json:"prog"`
	Seed    int64   `json:"seed"`
	Noise   float64 `json:"noise"`
}

// String renders the canonical spelling: pipe-separated fields, hex for the
// content hash. No field of a real key contains '|' (kinds and arch names
// are identifier-like).
func (k WarmStateKey) String() string {
	return fmt.Sprintf("%s|%s|%d|%016x|%d|%g", k.Kind, k.Arch, k.PHRSize, k.Prog, k.Seed, k.Noise)
}

// ParseWarmStateKey inverts String.
func ParseWarmStateKey(s string) (WarmStateKey, error) {
	var k WarmStateKey
	parts := strings.Split(s, "|")
	if len(parts) != 6 || parts[0] == "" || parts[1] == "" {
		return k, fmt.Errorf("harness: malformed warm key %q", s)
	}
	k.Kind, k.Arch = parts[0], parts[1]
	var err error
	if k.PHRSize, err = strconv.Atoi(parts[2]); err != nil {
		return k, fmt.Errorf("harness: malformed warm key %q: %w", s, err)
	}
	if k.Prog, err = strconv.ParseUint(parts[3], 16, 64); err != nil {
		return k, fmt.Errorf("harness: malformed warm key %q: %w", s, err)
	}
	if k.Seed, err = strconv.ParseInt(parts[4], 10, 64); err != nil {
		return k, fmt.Errorf("harness: malformed warm key %q: %w", s, err)
	}
	if k.Noise, err = strconv.ParseFloat(parts[5], 64); err != nil {
		return k, fmt.Errorf("harness: malformed warm key %q: %w", s, err)
	}
	return k, nil
}

// internal key conversion.
func (k WarmStateKey) internal() warmKey {
	return warmKey{kind: k.Kind, arch: k.Arch, phrSize: k.PHRSize, prog: k.Prog, seed: k.Seed, noise: k.Noise}
}

func exportKey(k warmKey) WarmStateKey {
	return WarmStateKey{Kind: k.kind, Arch: k.arch, PHRSize: k.phrSize, Prog: k.prog, Seed: k.seed, Noise: k.noise}
}

// WarmFetcher resolves a warm-state miss from outside the process — the
// cluster worker installs one that asks the coordinator who holds the key
// and pulls the snapshot from that peer. It must return a snapshot whose
// training matches the key exactly (the codec's hash check plus the
// coordinator's index make violations structural, not probabilistic), or
// false to let the caller train locally. Fetchers run outside the cache
// lock and may block on the network; concurrent misses for the same key may
// fan out into concurrent fetches.
type WarmFetcher func(key WarmStateKey) (*cpu.Snapshot, bool)

// warmFetch is the installed hook plus its hit/miss accounting.
var (
	warmFetchMu      sync.RWMutex
	warmFetchFn      WarmFetcher
	warmFetchHits    atomic.Uint64 // misses resolved by the fetcher
	warmFetchMiss    atomic.Uint64 // misses the fetcher could not resolve
	warmFetchCorrupt atomic.Uint64 // peer snapshots rejected by wire/hash verification
)

// SetWarmFetch installs (or, with nil, removes) the process-global warm
// fetch hook. The hook only fires on opportunistic get misses — the
// blocking singleflight path never fetches, because its entries carry
// process-local recovery artifacts.
func SetWarmFetch(f WarmFetcher) {
	warmFetchMu.Lock()
	warmFetchFn = f
	warmFetchMu.Unlock()
}

// WarmFetchStats reports how many warm-cache misses the fetch hook
// resolved and how many it passed on.
func WarmFetchStats() (hits, misses uint64) {
	return warmFetchHits.Load(), warmFetchMiss.Load()
}

// RecordWarmFetchCorrupt counts one peer snapshot rejected at the transport
// edge — a wire envelope or content hash that failed verification. The
// fetcher calls this per rejected holder, before retrying the next one, so
// the counter measures corrupt deliveries rather than failed fetches.
func RecordWarmFetchCorrupt() {
	warmFetchCorrupt.Add(1)
}

// WarmFetchCorrupt reports how many peer snapshots failed verification.
func WarmFetchCorrupt() uint64 {
	return warmFetchCorrupt.Load()
}

// getOrFetch is get plus the spill and fetch tiers: on a local miss it
// consults the persistent snapshot store, then the cluster fetcher. A hit
// from either tier is installed in the in-memory cache (so later trials hit
// locally) and — via putIfAbsent's spill — a fetched snapshot also lands in
// the store, so peer-trained warm state survives this worker's restart.
func (c *warmCache) getOrFetch(key warmKey) (*warmEntry, bool) {
	if e, ok := c.get(key); ok {
		return e, true
	}
	if e, ok := storeLoad(key); ok {
		c.putIfAbsent(key, e)
		return e, true
	}
	warmFetchMu.RLock()
	f := warmFetchFn
	warmFetchMu.RUnlock()
	if f == nil {
		return nil, false
	}
	snap, ok := f(exportKey(key))
	if !ok || snap == nil {
		warmFetchMiss.Add(1)
		return nil, false
	}
	warmFetchHits.Add(1)
	e := &warmEntry{snap: snap}
	c.putIfAbsent(key, e)
	return e, true
}

// WarmSnapshot is one exchangeable warm-cache entry.
type WarmSnapshot struct {
	Key  WarmStateKey
	Snap *cpu.Snapshot
}

// WarmSnapshots lists every exchangeable (rec-free) entry currently in the
// process-global warm cache, most-recently-used first. Cluster workers
// advertise these keys in heartbeats and serve the snapshots to peers.
func WarmSnapshots() []WarmSnapshot {
	warm.mu.Lock()
	defer warm.mu.Unlock()
	out := make([]WarmSnapshot, 0, warm.order.Len())
	for ele := warm.order.Front(); ele != nil; ele = ele.Next() {
		key := ele.Value.(warmKey)
		it := warm.items[key]
		if it.e.rec != nil || it.e.snap == nil {
			continue // phase checkpoints with local artifacts are not exchangeable
		}
		out = append(out, WarmSnapshot{Key: exportKey(key), Snap: it.e.snap})
	}
	return out
}

// LookupWarmSnapshot returns the exchangeable snapshot cached under key,
// if any. Serving a peer's fetch is a read, not a use: it deliberately does
// not touch LRU recency.
func LookupWarmSnapshot(key WarmStateKey) (*cpu.Snapshot, bool) {
	k := key.internal()
	warm.mu.Lock()
	defer warm.mu.Unlock()
	it, ok := warm.items[k]
	if !ok || it.e.rec != nil || it.e.snap == nil {
		return nil, false
	}
	return it.e.snap, true
}

// InstallWarmSnapshot stores a fetched snapshot under key (first writer
// wins), making it available to subsequent trials and to peers.
func InstallWarmSnapshot(key WarmStateKey, snap *cpu.Snapshot) {
	if snap == nil {
		return
	}
	warm.putIfAbsent(key.internal(), &warmEntry{snap: snap})
}

// WarmCacheStats exposes the process-global warm cache's hit/miss counters
// — cluster workers surface them on /metrics, where "warm hits with zero
// training" is the observable proof that affinity routing worked.
func WarmCacheStats() (hits, misses uint64) {
	return warm.stats()
}

// ResetWarmFetchStats zeroes the fetch counters — test isolation only.
func ResetWarmFetchStats() {
	warmFetchHits.Store(0)
	warmFetchMiss.Store(0)
	warmFetchCorrupt.Store(0)
}

// ResetWarmCache empties the process-global warm cache and zeroes its
// counters — test and benchmark isolation only. In-process cluster
// benchmarks share one warm cache across every simulated node; resetting
// between phases keeps a later phase from inheriting the earlier phase's
// training.
func ResetWarmCache() {
	warm.reset()
}
