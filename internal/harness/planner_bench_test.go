package harness

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkPlanSweep measures grouping a 256-cell grid into 16 shared-prefix
// groups — the planner's pure-CPU cost before any cell executes. Gated in
// BENCH_baseline.json: planning must stay negligible next to one trial.
func BenchmarkPlanSweep(b *testing.B) {
	cells := make([]SweepCell, 256)
	for i := range cells {
		cells[i] = SweepCell{
			Label: fmt.Sprintf("cell-%d", i),
			Prefix: WarmStateKey{
				Kind: "aes-phase1", Arch: "Alder Lake", PHRSize: 194,
				Prog: uint64(i % 16), Seed: int64(i % 16),
			},
			Run: func(context.Context) error { return nil },
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := PlanSweep(cells); len(p.Groups) != 16 {
			b.Fatalf("groups = %d, want 16", len(p.Groups))
		}
	}
}
