package harness

import (
	"container/list"
	"os"
	"strings"
	"sync"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
)

// The warm-state cache: content-addressed machine snapshots shared across
// driver calls and across trials within one call, so repeated near-identical
// simulations skip their training phases.
//
// Two usage patterns share one bounded LRU:
//
//   - Blocking singleflight (do): phase-level checkpoints like the AES
//     phase-1 control-flow recovery. Concurrent callers with the same key
//     wait for the one computation instead of duplicating ~60% of the
//     evaluation's simulated work.
//   - Opportunistic sharing (get/putIfAbsent): per-trial warm-up state. A
//     trial that finds the donor snapshot restores it; one that does not
//     runs the ordinary warm-up and offers its own snapshot. Early trials
//     racing to populate do redundant warm-ups but never block, so the
//     sharded drivers keep their full parallelism.
//
// Correctness rests on the cpu.Snapshot contract: snapshots are immutable,
// restore is copy-on-use, and a restored machine is observationally
// identical to one that did the work itself. Every key includes the full
// configuration the captured state depends on — program/content hash,
// microarchitecture, seed phase — and entries are only shared where the
// captured state is provably independent of what the key omits (documented
// at each call site). Reports therefore stay byte-identical with the cache
// on or off, at every Parallelism level; the determinism tests pin exactly
// that.

// WarmCacheMode selects the warm-state cache policy for a driver run.
type WarmCacheMode int

// Warm-cache modes. The zero value (Auto) keeps the cache on, so zero
// Options preserve the default-on contract; the PATHFINDER_WARMCACHE
// environment variable ("off", "0", "false", "no") is Auto's kill switch.
// Explicit On/Off win over the environment.
const (
	WarmCacheAuto WarmCacheMode = iota
	WarmCacheOff
	WarmCacheOn
)

// warmCacheEnvOff reports whether the environment kills the cache.
func warmCacheEnvOff() bool {
	switch strings.ToLower(os.Getenv("PATHFINDER_WARMCACHE")) {
	case "off", "0", "false", "no":
		return true
	}
	return false
}

// warmOn resolves the effective cache policy for this run. The refmodel
// oracle always bypasses the cache: a custom predictor's state cannot be
// captured (cpu.Snapshot panics), mirroring the machine-pool rule.
func (o Options) warmOn() bool {
	if o.RefModel {
		return false
	}
	switch o.WarmCache {
	case WarmCacheOn:
		return true
	case WarmCacheOff:
		return false
	}
	return !warmCacheEnvOff()
}

// warmKey is the content address of one cached snapshot. All fields are
// comparable; zero fields mean "not applicable" for the entry kind.
type warmKey struct {
	kind    string // entry family, e.g. "aes-phase1", "aes-warm"
	arch    string // microarchitecture name
	phrSize int
	prog    uint64  // content hash: program hash or input-material hash
	seed    int64   // seed phase; 0 for seed-independent entries
	noise   float64 // transient-collapse probability baked into the state
}

// warmEntry is one cached checkpoint: the machine snapshot plus whatever
// derived artifacts the driver needs to resume from it.
type warmEntry struct {
	snap *cpu.Snapshot
	rec  *core.ExtendedResult // phase-1 recovery result, when applicable
}

// warmCall is an in-flight singleflight computation.
type warmCall struct {
	done chan struct{}
	e    *warmEntry
	err  error
}

// warmCache is a bounded LRU of warm entries with singleflight dedup.
type warmCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // most-recent first; values are warmKey
	items    map[warmKey]*warmItem
	inflight map[warmKey]*warmCall

	hits, misses uint64 // get/do lookups; for tests and diagnostics
}

type warmItem struct {
	e   *warmEntry
	ele *list.Element
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[warmKey]*warmItem),
		inflight: make(map[warmKey]*warmCall),
	}
}

// warm is the process-global cache. Snapshots are about a megabyte each
// (dominated by the cache-line array), so the default bound keeps the cache
// a few tens of megabytes at worst.
var warm = newWarmCache(32)

// get returns the cached entry for key, if present, marking it
// most-recently used.
func (c *warmCache) get(key warmKey) (*warmEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(it.ele)
	return it.e, true
}

// putIfAbsent stores e under key unless another entry got there first,
// evicting the least-recently-used entry when over capacity. The entry also
// spills to the persistent snapshot store (outside the cache lock — Save is
// disk I/O), so warm state trained or fetched in this process survives a
// restart; a re-spill of a resident key is a no-op.
func (c *warmCache) putIfAbsent(key warmKey, e *warmEntry) {
	c.mu.Lock()
	c.storeLocked(key, e)
	c.mu.Unlock()
	storeSpill(key, e)
}

func (c *warmCache) storeLocked(key warmKey, e *warmEntry) {
	if _, ok := c.items[key]; ok {
		return
	}
	c.items[key] = &warmItem{e: e, ele: c.order.PushFront(key)}
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(warmKey))
	}
}

// do returns the entry for key, computing it at most once across concurrent
// callers. compute runs without the cache lock held; concurrent callers
// with the same key block until it finishes. Errors are not cached — the
// next caller retries. The caller can tell whether its own compute ran by
// the side effects of compute itself.
//
// A miss consults the persistent snapshot store before computing — the
// singleflight also dedups store reads — and a successful compute spills
// there, so phase-level checkpoints survive process restarts.
func (c *warmCache) do(key warmKey, compute func() (*warmEntry, error)) (*warmEntry, error) {
	c.mu.Lock()
	if it, ok := c.items[key]; ok {
		c.hits++
		c.order.MoveToFront(it.ele)
		c.mu.Unlock()
		return it.e, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		return call.e, nil
	}
	c.misses++
	call := &warmCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	if e, ok := storeLoad(key); ok {
		call.e = e
	} else {
		call.e, call.err = compute()
		if call.err == nil {
			storeSpill(key, call.e)
		}
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.storeLocked(key, call.e)
	}
	c.mu.Unlock()
	close(call.done)
	return call.e, call.err
}

// stats returns cumulative lookup counters, for the cache's own tests.
func (c *warmCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// reset drops every entry and counter — test isolation only.
func (c *warmCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
	c.hits, c.misses = 0, 0
}

// hashBytes folds a byte string FNV-1a style, for content-addressing input
// material (e.g. an AES key) that is not a program.
func hashBytes(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, x := range b {
		h = (h ^ uint64(x)) * 0x100000001b3
	}
	return h
}
