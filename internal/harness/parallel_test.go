package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// The sharded drivers' determinism contract: a report is a pure function of
// (Options, arguments), independent of Parallelism. CI runs this file under
// -race, so any state shared between worker machines that could break the
// contract surfaces here either as a report mismatch or as a data race.

func marshalReport(t *testing.T, rep any) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestShardVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var visited [37]atomic.Bool
		err := shard(context.Background(), workers, len(visited), func(i int) error {
			if visited[i].Swap(true) {
				return fmt.Errorf("index %d visited twice", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visited {
			if !visited[i].Load() {
				t.Fatalf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
}

func TestShardLowestErrorWins(t *testing.T) {
	want := errors.New("boom 5")
	for _, workers := range []int{1, 4} {
		err := shard(context.Background(), workers, 64, func(i int) error {
			if i == 5 {
				return want
			}
			if i >= 20 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, want)
		}
	}
}

func TestShardContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := shard(ctx, 4, 8, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestReadPHRParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	base, err := ReadPHRRandomEval(context.Background(), Options{Parallelism: 1}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 3} {
		rep, err := ReadPHRRandomEval(context.Background(), Options{Parallelism: w}, 3, 8)
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		if got, want := marshalReport(t, rep), marshalReport(t, base); got != want {
			t.Errorf("parallelism %d diverges from sequential:\ngot:  %s\nwant: %s", w, got, want)
		}
	}
}

func TestFig7ParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	base, err := Fig7ImageRecovery(context.Background(), Options{Parallelism: 1}, 16, 70, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Fig7ImageRecovery(context.Background(), Options{Parallelism: 2}, 16, 70, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalReport(t, rep), marshalReport(t, base); got != want {
		t.Errorf("parallel report diverges from sequential:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestAESParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	base, err := AESLeakEval(context.Background(), Options{Parallelism: 1}, 6, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 4} {
		rep, err := AESLeakEval(context.Background(), Options{Parallelism: w}, 6, 0.015)
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		if got, want := marshalReport(t, rep), marshalReport(t, base); got != want {
			t.Errorf("parallelism %d diverges from sequential:\ngot:  %s\nwant: %s", w, got, want)
		}
	}
}

// TestGoldenParallelism1 pins the forced-sequential path of every sharded
// driver to the recorded golden reports (satellite of the determinism
// contract: Parallelism: 1 must reproduce the recorded behaviour exactly,
// while the default pool reproduces it via the invariance tests above).
func TestGoldenParallelism1(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	seq := Options{Parallelism: 1}
	rp, err := ReadPHRRandomEval(context.Background(), seq, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_readphr.json", rp)
	f7, err := Fig7ImageRecovery(context.Background(), seq, 16, 70, 2)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_fig7.json", f7)
	al, err := AESLeakEval(context.Background(), seq, 8, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "golden_aesleak.json", al)
}
