package harness

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetryDoSucceedsAfterFailures(t *testing.T) {
	var got []int
	err := Retry{}.Do(context.Background(), 1, func(attempt int) error {
		got = append(got, attempt)
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success on third attempt", err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("attempt sequence = %v, want [0 1 2]", got)
	}
}

func TestRetryDoExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry{Attempts: 2}.Do(context.Background(), 1, func(int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want the last attempt error", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want the configured budget of 2", calls)
	}
}

func TestRetryDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Retry{}.Do(ctx, 1, func(int) error { called = true; return nil })
	if !errors.Is(err, context.Canceled) || called {
		t.Fatalf("Do = %v (called=%v), want context.Canceled before any attempt", err, called)
	}

	// Cancellation between attempts must win over the retry budget.
	ctx2, cancel2 := context.WithCancel(context.Background())
	attempts := 0
	err = Retry{}.Do(ctx2, 1, func(int) error {
		attempts++
		cancel2()
		return errors.New("fail")
	})
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("Do = %v after %d attempts, want context.Canceled after 1", err, attempts)
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	r := Retry{Attempts: 5, Backoff: 100 * time.Millisecond}
	if d := r.Delay(0, 7); d != 0 {
		t.Fatalf("attempt 0 delay = %v, want 0", d)
	}
	if d := (Retry{}).Delay(3, 7); d != 0 {
		t.Fatalf("zero-backoff delay = %v, want 0", d)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		base := r.Backoff << uint(attempt-1)
		if max := 8 * r.Backoff; base > max {
			base = max
		}
		d1 := r.Delay(attempt, 42)
		d2 := r.Delay(attempt, 42)
		if d1 != d2 {
			t.Fatalf("attempt %d delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if d1 < lo || d1 > hi {
			t.Fatalf("attempt %d delay %v outside jitter band [%v, %v]", attempt, d1, lo, hi)
		}
	}
	if r.Delay(1, 1) == r.Delay(1, 2) {
		t.Fatal("distinct seeds drew identical jitter")
	}
	// The cap binds: far-out attempts never exceed 1.25 × MaxBackoff.
	capped := Retry{Attempts: 20, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if d := capped.Delay(15, 3); d > time.Duration(float64(4*time.Millisecond)*1.25) {
		t.Fatalf("capped delay = %v, want ≤ 5ms", d)
	}
}
