package harness

import "fmt"

// OptionsError reports an Options field whose value no driver can honour.
// It is the typed form the service layer matches on to map bad requests to
// HTTP 400 instead of a 500.
type OptionsError struct {
	Field  string // Options field name, e.g. "BatchSize"
	Value  int    // the rejected value
	Reason string // what the field accepts
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("harness: invalid Options.%s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects option values that used to be absorbed silently: a
// negative Parallelism fell through to GOMAXPROCS and a negative BatchSize
// to the auto-tuned default, masking caller bugs. The sharded drivers and
// the sweep planner validate up front and refuse to start; zero stays the
// documented "pick the default" sentinel for both fields.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return &OptionsError{Field: "Parallelism", Value: o.Parallelism,
			Reason: "must be >= 0 (0 selects GOMAXPROCS, 1 the sequential path)"}
	}
	if o.BatchSize < 0 {
		return &OptionsError{Field: "BatchSize", Value: o.BatchSize,
			Reason: "must be >= 0 (0 selects the auto-tuned default, 1 the per-trial path)"}
	}
	return nil
}
