package harness

import (
	"testing"

	"pathfinder/internal/aes"
	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/cpu"
	"pathfinder/internal/refmodel"
	"pathfinder/internal/trace"
)

// Differential validation of the checkpointing layer: a machine restored
// from a snapshot must be indistinguishable — branch by branch — from the
// machine that did the training itself, and both must keep agreeing with
// the internal/refmodel oracle. The stream-level test reuses the PR 2
// trace/differential runner; the driver-level test runs the §9 AES
// experiment workload end to end.

func TestSnapshotRestoreDifferentialVsOracle(t *testing.T) {
	for _, cfg := range []bpu.Config{bpu.AlderLake, bpu.RaptorLake} {
		t.Run(cfg.Name, func(t *testing.T) {
			stream := trace.RandomStream(0xdecaf, 6000)
			train, probe := stream[:4000], stream[4000:]

			// Train a machine's predictor unit and hart PHR through the
			// replay harness, then checkpoint it.
			mf := cpu.New(cpu.Options{Arch: cfg})
			fresh := trace.Impl{Name: "trained", CBP: mf.BPU.CBP, H: mf.Hart(0).PHR}
			trace.Replay(fresh, train)
			snap := mf.Snapshot()

			// Restored machine vs the freshly trained one, in lockstep over
			// the probe suffix.
			mr := cpu.New(cpu.Options{Arch: cfg})
			mr.RestoreFrom(snap)
			restored := trace.Impl{Name: "restored", CBP: mr.BPU.CBP, H: mr.Hart(0).PHR}
			if d := trace.Diff(fresh, restored, probe); d != nil {
				t.Fatalf("restored machine diverges from its trainer at step %d (%+v): %s",
					d.Step, d.Branch, d.Reason)
			}

			// A second restore vs the oracle trained from scratch on the same
			// prefix: the checkpoint must not perturb the bpu/refmodel parity.
			mr2 := cpu.New(cpu.Options{Arch: cfg})
			mr2.RestoreFrom(snap)
			restored2 := trace.Impl{Name: "restored", CBP: mr2.BPU.CBP, H: mr2.Hart(0).PHR}
			oracle := trace.NewOracle(cfg)
			trace.Replay(oracle, train)
			if d := trace.Diff(restored2, oracle, probe); d != nil {
				t.Fatalf("restored machine diverges from the oracle at step %d (%+v): %s",
					d.Step, d.Branch, d.Reason)
			}
		})
	}
}

func TestSnapshotRestoreAESDriverDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	opts := cpu.Options{Seed: 31}
	pt := aes.Block{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

	// The trainer runs phase 1 itself, checkpoints, then continues with one
	// unpoisoned capture run.
	m1 := cpu.New(opts)
	a1, err := attack.NewAESAttack(m1, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	snap := m1.Snapshot()

	// A fresh machine adopts the checkpoint (fork installs the victim
	// memory, restore rewinds the microarchitectural state) and runs the
	// identical continuation.
	m2 := cpu.New(opts)
	a2, err := a1.Fork(m2)
	if err != nil {
		t.Fatal(err)
	}
	m2.RestoreFrom(snap)

	a1.Ctx.SetPlaintext(m1, pt)
	a2.Ctx.SetPlaintext(m2, pt)
	if err := m1.Run(a1.Rec.CaptureProgram, "cap_main"); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(a2.Rec.CaptureProgram, "cap_main"); err != nil {
		t.Fatal(err)
	}
	if got, want := m2.Snapshot().Hash(), m1.Snapshot().Hash(); got != want {
		t.Fatalf("restored machine state %#x after capture run, trainer has %#x", got, want)
	}
	if got, want := m2.Stats(), m1.Stats(); got != want {
		t.Fatalf("restored machine counters %+v, trainer has %+v", got, want)
	}

	// The same workload on the refmodel oracle, freshly trained: every
	// prediction must agree, so the aggregated counters — cycles include the
	// mispredict penalty — must match both machines exactly.
	m3 := cpu.New(cpu.Options{Seed: 31, NewPredictor: refmodel.NewPredictor})
	a3, err := attack.NewAESAttack(m3, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := a3.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	a3.Ctx.SetPlaintext(m3, pt)
	if err := m3.Run(a3.Rec.CaptureProgram, "cap_main"); err != nil {
		t.Fatal(err)
	}
	if got, want := m3.Stats(), m2.Stats(); got != want {
		t.Fatalf("oracle counters %+v diverge from restored machine's %+v", got, want)
	}
}
