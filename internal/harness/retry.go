package harness

import (
	"context"
	"time"
)

// Retry is the bounded-attempt policy shared by the fallible drivers
// (ReadPHRRandomEval, ExtendedReadEval, Fig6PathfinderAES,
// Fig7ImageRecovery, AESLeakEval). A unit of work — one trial, one image,
// one evaluation case — that fails is re-run on a freshly reseeded machine
// up to Attempts times; a fresh seed redraws every training coin of the
// capture, which is what makes retrying a probabilistic read worthwhile.
// Units that exhaust their attempts degrade into partial results recorded
// in the report (Fig7Result.Err, ReadPHRReport.Failures, ...) instead of
// aborting the sweep; only context cancellation aborts.
//
// The zero value preserves historical behaviour: three attempts (the old
// Fig7-only constant) and no waiting between them — a deterministic
// simulator's failures are seed-bound, not time-bound, so immediate retries
// are the norm. Backoff exists for callers driving real shared resources
// (the pathfinderd job layer configures it for requeued jobs).
type Retry struct {
	// Attempts is the maximum number of tries per unit of work; 0 selects 3.
	Attempts int

	// Backoff is the wait before the second attempt; it doubles per further
	// attempt. 0 disables waiting entirely.
	Backoff time.Duration

	// MaxBackoff caps the grown backoff; 0 selects 8×Backoff.
	MaxBackoff time.Duration
}

// attempts resolves the attempt budget default.
func (r Retry) attempts() int {
	if r.Attempts > 0 {
		return r.Attempts
	}
	return 3
}

// Delay returns the wait before the given attempt (1-based over retries;
// attempt 0 never waits): exponential growth from Backoff, capped at
// MaxBackoff, with a deterministic ±25% jitter drawn from seed so a fleet
// of retrying units decorrelates without losing reproducibility.
func (r Retry) Delay(attempt int, seed int64) time.Duration {
	if r.Backoff <= 0 || attempt <= 0 {
		return 0
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = 8 * r.Backoff
	}
	d := r.Backoff
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	g := rng{s: uint64(seed)*0x9e3779b97f4a7c15 + uint64(attempt)}
	frac := float64(g.next()>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// Do runs fn(attempt) for attempt = 0, 1, ... until it succeeds or the
// budget is spent, waiting Delay between attempts. It returns nil on the
// first success, ctx.Err() as soon as the context dies, and otherwise the
// last attempt's error. fn derives its machine seed from the attempt index
// so the whole retry chain stays a pure function of (Options, arguments).
func (r Retry) Do(ctx context.Context, seed int64, fn func(attempt int) error) error {
	var err error
	for attempt := 0; attempt < r.attempts(); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if attempt > 0 {
			if werr := sleepCtx(ctx, r.Delay(attempt, seed)); werr != nil {
				return werr
			}
		}
		if err = fn(attempt); err == nil {
			return nil
		}
	}
	return err
}

// sleepCtx waits for d or until ctx dies, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
