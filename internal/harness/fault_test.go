package harness

import (
	"context"
	"testing"

	"pathfinder/internal/faultinject"
)

// TestFaultedAESParallelismInvariant pins the fault-injection determinism
// contract end to end: with every injector armed, the §9 AES evaluation
// report is byte-identical at Parallelism 1, 4 and GOMAXPROCS. Each trial
// machine seeds its injector from the trial index alone, so neither worker
// count nor scheduling order can move a single fault event.
func TestFaultedAESParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	prof := faultinject.Default().WithPollution(0.001, 8)
	opts := func(w int) Options {
		return Options{Parallelism: w, Faults: &prof}
	}
	base, err := AESLeakEval(context.Background(), opts(1), 6, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 0} {
		rep, err := AESLeakEval(context.Background(), opts(w), 6, 0.015)
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		if got, want := marshalReport(t, rep), marshalReport(t, base); got != want {
			t.Errorf("parallelism %d diverges from sequential:\ngot:  %s\nwant: %s", w, got, want)
		}
	}
}

// TestFaultedReadPHRParallelismInvariant covers the same contract on the
// retrying ReadPHR driver, whose per-attempt reseeds must also be pure
// functions of the trial index.
func TestFaultedReadPHRParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	prof := faultinject.Default()
	base, err := ReadPHRRandomEval(context.Background(), Options{Parallelism: 1, Faults: &prof}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 0} {
		rep, err := ReadPHRRandomEval(context.Background(), Options{Parallelism: w, Faults: &prof}, 3, 8)
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		if got, want := marshalReport(t, rep), marshalReport(t, base); got != want {
			t.Errorf("parallelism %d diverges from sequential:\ngot:  %s\nwant: %s", w, got, want)
		}
	}
}

// TestAESDefaultProfileBand pins the §9 robustness calibration: under the
// default noise profile the byte success rate stays in the paper's 96–100%
// band. The evaluation is deterministic, so this is a regression fence for
// the profile constants, not a flaky statistical assertion.
func TestAESDefaultProfileBand(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	prof := faultinject.Default()
	res, err := AESLeakEval(context.Background(), Options{Faults: &prof}, 24, 0.015)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate < 0.96 || res.SuccessRate > 1 {
		t.Errorf("default-profile byte success rate = %.4f, want within [0.96, 1.00]", res.SuccessRate)
	}
	if !res.KeyRecovered {
		t.Error("default-profile evaluation failed to recover the key")
	}
}

// TestAESNoiseSweepDegradesMonotonically checks the sweep's defining
// property: byte accuracy never improves as the PHR-pollution hazard rises.
// A reduced trial count keeps the test affordable; the committed
// BENCH_noise.json records the full-size sweep.
func TestAESNoiseSweepDegradesMonotonically(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rep, err := AESNoiseSweep(context.Background(), Options{}, 8, 0.015, []float64{0, 0.001, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("sweep returned %d points, want 3", len(rep.Points))
	}
	for i := 1; i < len(rep.Points); i++ {
		prev, cur := rep.Points[i-1], rep.Points[i]
		if cur.Result.SuccessRate > prev.Result.SuccessRate {
			t.Errorf("success rate rose with pollution: %.4f@%v -> %.4f@%v",
				prev.Result.SuccessRate, prev.PHRPollutionProb,
				cur.Result.SuccessRate, cur.PHRPollutionProb)
		}
	}
	if first := rep.Points[0].Result.SuccessRate; first < 0.9 {
		t.Errorf("pollution-free point degraded to %.4f", first)
	}
	if last := rep.Points[len(rep.Points)-1].Result.SuccessRate; last > 0.5 {
		t.Errorf("pollution storm point still at %.4f, want visible erosion", last)
	}
}
