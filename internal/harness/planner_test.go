package harness

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/snapstore"
)

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{}, {Parallelism: 4, BatchSize: 1}, {Parallelism: 1}} {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	cases := []struct {
		opts  Options
		field string
	}{
		{Options{Parallelism: -1}, "Parallelism"},
		{Options{BatchSize: -3}, "BatchSize"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		var oe *OptionsError
		if !errors.As(err, &oe) {
			t.Fatalf("Validate(%+v) = %v, want *OptionsError", tc.opts, err)
		}
		if oe.Field != tc.field {
			t.Errorf("rejected field %q, want %q", oe.Field, tc.field)
		}
	}
	// The sharded drivers must refuse to start rather than absorb the value.
	if _, err := AESLeakEval(context.Background(), Options{Parallelism: -2}, 1, 0); err == nil {
		t.Error("AESLeakEval accepted negative Parallelism")
	}
	if _, err := ReadPHRRandomEval(context.Background(), Options{BatchSize: -1}, 1, 1); err == nil {
		t.Error("ReadPHRRandomEval accepted negative BatchSize")
	}
	if _, err := AESGridSweep(context.Background(), Options{Parallelism: -1}, 1, nil, nil, nil); err == nil {
		t.Error("AESGridSweep accepted negative Parallelism")
	}
}

func TestPlanSweepGrouping(t *testing.T) {
	k := func(seed int64) WarmStateKey { return WarmStateKey{Kind: "t", Arch: "a", Seed: seed} }
	nop := func(context.Context) error { return nil }
	cells := []SweepCell{
		{Label: "a0", Prefix: k(1), Run: nop},
		{Label: "b0", Prefix: k(2), Run: nop},
		{Label: "free", Run: nop}, // zero prefix: singleton group in place
		{Label: "a1", Prefix: k(1), Run: nop},
		{Label: "b1", Prefix: k(2), Run: nop},
		{Label: "a2", Prefix: k(1), Run: nop},
	}
	p := PlanSweep(cells)
	want := [][]int{{0, 3, 5}, {1, 4}, {2}}
	if len(p.Groups) != len(want) {
		t.Fatalf("%d groups, want %d", len(p.Groups), len(want))
	}
	for gi, w := range want {
		g := p.Groups[gi]
		if len(g.Cells) != len(w) {
			t.Fatalf("group %d holds %v, want %v", gi, g.Cells, w)
		}
		for i := range w {
			if g.Cells[i] != w[i] {
				t.Fatalf("group %d holds %v, want %v", gi, g.Cells, w)
			}
		}
	}
	if p.Groups[0].Prefix != k(1) || p.Groups[1].Prefix != k(2) || p.Groups[2].Prefix != (WarmStateKey{}) {
		t.Fatal("group prefixes lost")
	}
}

// fakeSnapStore is an in-memory SnapStore for the cache-tier unit tests.
type fakeSnapStore struct {
	mu    sync.Mutex
	m     map[string]*warmEntry
	saves int
	loads int
}

func newFakeSnapStore() *fakeSnapStore { return &fakeSnapStore{m: make(map[string]*warmEntry)} }

func (f *fakeSnapStore) Load(key string) (*cpu.Snapshot, *core.ExtendedResult, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	e, ok := f.m[key]
	if !ok {
		return nil, nil, false
	}
	return e.snap, e.rec, true
}

func (f *fakeSnapStore) Save(key string, snap *cpu.Snapshot, rec *core.ExtendedResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.m[key]; ok {
		return
	}
	f.m[key] = &warmEntry{snap: snap, rec: rec}
	f.saves++
}

func (f *fakeSnapStore) Stats() (hits, misses, puts, evictions uint64, bytes int64, entries int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return 0, 0, uint64(f.saves), 0, 0, len(f.m)
}

// installFakeStore swaps in a fake store and resets every global the spill
// tier touches, restoring the world on cleanup.
func installFakeStore(t *testing.T) *fakeSnapStore {
	t.Helper()
	f := newFakeSnapStore()
	SetSnapStore(f)
	warm.reset()
	ResetSnapStoreStats()
	ResetPlannerStats()
	t.Cleanup(func() {
		SetSnapStore(nil)
		warm.reset()
		ResetSnapStoreStats()
		ResetPlannerStats()
	})
	return f
}

// TestWarmCacheStoreTier: the in-memory cache must spill to the installed
// store on both population paths and consult it on both miss paths.
func TestWarmCacheStoreTier(t *testing.T) {
	f := installFakeStore(t)
	snap := cpu.New(cpu.Options{Seed: 1}).Snapshot()
	key := warmKey{kind: "tier", arch: "a", seed: 9}

	// do: a computed entry spills.
	computes := 0
	if _, err := warm.do(key, func() (*warmEntry, error) {
		computes++
		return &warmEntry{snap: snap}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if f.saves != 1 {
		t.Fatalf("do spilled %d entries, want 1", f.saves)
	}

	// Cold cache, warm store: do must restore instead of recomputing.
	warm.reset()
	e, err := warm.do(key, func() (*warmEntry, error) {
		computes++
		return nil, errors.New("unreachable: store should have served this")
	})
	if err != nil || e == nil || e.snap == nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	if hits, _ := SnapStoreStats(); hits != 1 {
		t.Fatalf("store consult hits = %d, want 1", hits)
	}

	// putIfAbsent spills; getOrFetch consults the store before the fetcher.
	key2 := warmKey{kind: "tier", arch: "a", seed: 10}
	warm.putIfAbsent(key2, &warmEntry{snap: snap})
	if f.saves != 2 {
		t.Fatalf("putIfAbsent spilled %d entries total, want 2", f.saves)
	}
	warm.reset()
	SetWarmFetch(func(WarmStateKey) (*cpu.Snapshot, bool) {
		t.Error("fetcher consulted although the store holds the key")
		return nil, false
	})
	defer SetWarmFetch(nil)
	if _, ok := warm.getOrFetch(key2); !ok {
		t.Fatal("getOrFetch missed an entry the store holds")
	}
}

// TestRunSweepPrefetchPipeline: while group g executes, group g+1's prefix
// must be pulled from the store into the warm cache in the background, so
// the group's first cell starts from a resident entry.
func TestRunSweepPrefetchPipeline(t *testing.T) {
	f := installFakeStore(t)
	snap := cpu.New(cpu.Options{Seed: 2}).Snapshot()
	kA := WarmStateKey{Kind: "pf", Arch: "a", Seed: 1}
	kB := WarmStateKey{Kind: "pf", Arch: "a", Seed: 2}
	f.m[kB.String()] = &warmEntry{snap: snap} // only B is disk-resident

	sawResident := false
	cells := []SweepCell{
		{Label: "a", Prefix: kA, Run: func(context.Context) error { return nil }},
		{Label: "b", Prefix: kB, Run: func(context.Context) error {
			// The plan waits for B's prefetch before running this cell, so
			// the entry must already be in the in-memory cache.
			_, sawResident = warm.get(kB.internal())
			return nil
		}},
	}
	if err := RunSweep(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if !sawResident {
		t.Fatal("group B's prefix was not resident when its cell ran")
	}
	groups, ncells, shared, pfHits, _ := PlannerStats()
	if groups != 2 || ncells != 2 || shared != 0 {
		t.Fatalf("planner stats groups=%d cells=%d shared=%d", groups, ncells, shared)
	}
	if pfHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", pfHits)
	}
}

// TestRunSweepCellError: a failing cell aborts the sweep with its label.
func TestRunSweepCellError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	cells := []SweepCell{
		{Label: "ok", Run: func(context.Context) error { ran++; return nil }},
		{Label: "bad", Run: func(context.Context) error { return boom }},
		{Label: "never", Run: func(context.Context) error { ran++; return nil }},
	}
	err := RunSweep(context.Background(), cells)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran != 1 {
		t.Fatalf("%d cells ran after the failure, want sweep aborted", ran)
	}
}

// TestAESGridSweepPlannerStoreByteIdentical is the tentpole's determinism
// contract: the grid report is byte-identical with the planner and the
// persistent store in every on/off combination, at sequential and parallel
// Parallelism and at per-trial and auto BatchSize.
func TestAESGridSweepPlannerStoreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	archs := []bpu.Config{bpu.AlderLake, bpu.Skylake}
	seeds := []int64{31}
	const trials = 3

	run := func(t *testing.T, opts Options, store SnapStore) string {
		t.Helper()
		warm.reset()
		SetSnapStore(store)
		defer SetSnapStore(nil)
		rep, err := AESGridSweep(ctx, opts, trials, archs, seeds, nil)
		if err != nil {
			t.Fatal(err)
		}
		return marshalReport(t, rep)
	}

	want := run(t, Options{Parallelism: 1, WarmCache: WarmCacheOff, Planner: PlannerOff}, nil)

	dir := t.TempDir()
	openStore := func(t *testing.T) *snapstore.Store {
		s, err := snapstore.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	cases := []struct {
		name  string
		opts  Options
		store bool
	}{
		{"planner-on", Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, false},
		{"planner-on-store-cold", Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, true},
		{"planner-on-store-warm", Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, true},
		{"planner-off-store-warm", Options{WarmCache: WarmCacheOn, Planner: PlannerOff}, true},
		{"p1-batch1-store-warm", Options{Parallelism: 1, BatchSize: 1, WarmCache: WarmCacheOn, Planner: PlannerOn}, true},
		{"p4-store-warm", Options{Parallelism: 4, WarmCache: WarmCacheOn, Planner: PlannerOn}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s SnapStore
			if tc.store {
				s = openStore(t) // fresh Open each run: the cold-process path
			}
			if got := run(t, tc.opts, s); got != want {
				t.Errorf("report diverges from planner-off/store-off sequential baseline\ngot:  %s\nwant: %s", got, want)
			}
		})
	}

	// After the warm runs above, a cold process (fresh warm cache, fresh
	// store handle over the same directory) must resume from disk.
	warm.reset()
	ResetSnapStoreStats()
	s := openStore(t)
	SetSnapStore(s)
	defer SetSnapStore(nil)
	rep, err := AESGridSweep(ctx, Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, trials, archs, seeds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, rep); got != want {
		t.Error("cold-process store-warm report diverges")
	}
	if hits, _ := SnapStoreStats(); hits == 0 {
		t.Error("cold-process rerun never hit the snapshot store")
	}
}

// TestAESGridSweepStoreUsesDeltaChains: spilling a multi-seed grid through
// the real store must persist later cells of each warm-key class as delta
// entries (the tentpole's on-disk reduction), stay fully loadable, and
// degrade to all-full-blob spills when delta persistence is toggled off.
func TestAESGridSweepStoreUsesDeltaChains(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	archs := []bpu.Config{bpu.AlderLake}
	seeds := []int64{31, 32}

	sweep := func(t *testing.T, dir string) *snapstore.Store {
		t.Helper()
		s, err := snapstore.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		warm.reset()
		SetSnapStore(s)
		t.Cleanup(func() { SetSnapStore(nil) })
		if _, err := AESGridSweep(ctx, Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, 2, archs, seeds, nil); err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := sweep(t, t.TempDir())
	var full, delta int
	for _, e := range s.Entries() {
		if e.Delta {
			delta++
		} else {
			full++
		}
	}
	if full == 0 || delta == 0 {
		t.Fatalf("store holds %d full / %d delta entries; a two-seed grid must chain (full anchors plus deltas)", full, delta)
	}
	for _, e := range s.Entries() {
		if _, _, ok := s.Load(e.Key); !ok {
			t.Fatalf("entry %q unloadable (delta=%v base=%q)", e.Key, e.Delta, e.Base)
		}
	}

	SetStoreDeltaEnabled(false)
	defer SetStoreDeltaEnabled(true)
	s2 := sweep(t, t.TempDir())
	for _, e := range s2.Entries() {
		if e.Delta {
			t.Fatalf("entry %q stored as a delta with delta persistence disabled", e.Key)
		}
	}
}

// TestAESNoiseSweepPlannerByteIdentical: the ladder shares one phase-1
// prefix; routed through the planner it must reproduce the naive report.
func TestAESNoiseSweepPlannerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	intensities := []float64{0, 0.004}
	warm.reset()
	off, err := AESNoiseSweep(ctx, Options{Parallelism: 1, WarmCache: WarmCacheOff, Planner: PlannerOff}, 2, 0.015, intensities)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, off)
	warm.reset()
	on, err := AESNoiseSweep(ctx, Options{WarmCache: WarmCacheOn, Planner: PlannerOn}, 2, 0.015, intensities)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, on); got != want {
		t.Errorf("planner-routed noise sweep diverges:\ngot:  %s\nwant: %s", got, want)
	}
	if _, _, shared, _, _ := PlannerStats(); shared == 0 {
		t.Error("noise ladder shared no prefix cells under the planner")
	}
}

// TestAESLeakEvalStoreColdProcess: the §9 driver itself (no planner) must
// resume from the persistent store after a simulated process restart, with
// a byte-identical report and zero phase-1 retraining.
func TestAESLeakEvalStoreColdProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	dir := t.TempDir()
	warm.reset()
	ResetSnapStoreStats()
	s1, err := snapstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetSnapStore(s1)
	defer SetSnapStore(nil)
	first, err := AESLeakEval(ctx, Options{WarmCache: WarmCacheOn}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, first)

	// Simulated restart: empty warm cache, fresh store handle, same disk.
	warm.reset()
	ResetSnapStoreStats()
	s2, err := snapstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetSnapStore(s2)
	second, err := AESLeakEval(ctx, Options{WarmCache: WarmCacheOn}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, second); got != want {
		t.Errorf("store-resumed report diverges:\ngot:  %s\nwant: %s", got, want)
	}
	hits, _ := SnapStoreStats()
	if hits == 0 {
		t.Fatal("restarted run never hit the snapshot store")
	}
	if sh, _, _, _, _, _ := s2.Stats(); sh == 0 {
		t.Fatal("store-level stats recorded no hits")
	}
}
