package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
)

// TestWarmStateKeyRoundTrip: the canonical string spelling must invert
// exactly — it is the wire identity heartbeats and fetches agree on.
func TestWarmStateKeyRoundTrip(t *testing.T) {
	keys := []WarmStateKey{
		{Kind: "aes-warm", Arch: "Alder Lake", PHRSize: 194, Prog: 0xdeadbeefcafef00d},
		{Kind: "aes-phase1", Arch: "Skylake", PHRSize: 93, Prog: 1, Seed: -42, Noise: 0.015},
		{Kind: "x", Arch: "y", PHRSize: 0, Prog: 0, Seed: 0, Noise: 0},
	}
	for _, k := range keys {
		got, err := ParseWarmStateKey(k.String())
		if err != nil {
			t.Fatalf("parse %q: %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %q: got %+v, want %+v", k.String(), got, k)
		}
	}
	for _, bad := range []string{"", "a|b", "a|b|x|0|0|0", "a|b|1|zz|0|0", "|b|1|0|0|0"} {
		if _, err := ParseWarmStateKey(bad); err == nil {
			t.Errorf("ParseWarmStateKey(%q) accepted garbage", bad)
		}
	}
}

// TestWarmFetchHookResolvesMiss: a get miss with a fetcher installed pulls
// the snapshot, installs it locally, and subsequent gets hit without the
// fetcher.
func TestWarmFetchHookResolvesMiss(t *testing.T) {
	warm.reset()
	ResetWarmFetchStats()
	defer SetWarmFetch(nil)

	snap := trainedSnapshot(t, 3)
	key := warmKey{kind: "test-fetch", arch: "Alder Lake", phrSize: 194, prog: 7}
	var calls atomic.Int64
	SetWarmFetch(func(k WarmStateKey) (*cpu.Snapshot, bool) {
		calls.Add(1)
		if k != exportKey(key) {
			t.Errorf("fetcher asked for %+v, want %+v", k, exportKey(key))
			return nil, false
		}
		return snap, true
	})

	e, ok := warm.getOrFetch(key)
	if !ok || e.snap != snap {
		t.Fatal("getOrFetch did not resolve the miss through the fetcher")
	}
	if calls.Load() != 1 {
		t.Fatalf("fetcher ran %d times, want 1", calls.Load())
	}
	// Installed: the second lookup is a local hit, no fetch.
	if e2, ok := warm.getOrFetch(key); !ok || e2.snap != snap {
		t.Fatal("fetched entry was not installed locally")
	}
	if calls.Load() != 1 {
		t.Fatalf("local hit still called the fetcher (%d calls)", calls.Load())
	}
	hits, misses := WarmFetchStats()
	if hits != 1 || misses != 0 {
		t.Fatalf("fetch stats = %d/%d, want 1 hit / 0 misses", hits, misses)
	}
}

// TestWarmFetchHookDeclines: a declining fetcher counts a miss and the
// caller falls through to local training.
func TestWarmFetchHookDeclines(t *testing.T) {
	warm.reset()
	ResetWarmFetchStats()
	defer SetWarmFetch(nil)
	SetWarmFetch(func(WarmStateKey) (*cpu.Snapshot, bool) { return nil, false })
	if _, ok := warm.getOrFetch(warmKey{kind: "absent"}); ok {
		t.Fatal("declined fetch reported ok")
	}
	if hits, misses := WarmFetchStats(); hits != 0 || misses != 1 {
		t.Fatalf("fetch stats = %d/%d, want 0/1", hits, misses)
	}
}

// trainedSnapshot builds a small real snapshot for exchange tests.
func trainedSnapshot(t *testing.T, seed int64) *cpu.Snapshot {
	t.Helper()
	m := cpu.New(cpu.Options{Seed: seed})
	return m.Snapshot()
}

// TestWarmSnapshotsExportSkipsRecEntries: entries carrying process-local
// recovery artifacts must not be advertised or served to peers.
func TestWarmSnapshotsExportSkipsRecEntries(t *testing.T) {
	warm.reset()
	snap := trainedSnapshot(t, 5)
	plain := warmKey{kind: "aes-warm", arch: "Alder Lake", phrSize: 194, prog: 1}
	withRec := warmKey{kind: "aes-phase1", arch: "Alder Lake", phrSize: 194, prog: 2, seed: 9}
	warm.putIfAbsent(plain, &warmEntry{snap: snap})
	warm.putIfAbsent(withRec, &warmEntry{snap: snap, rec: &dummyRec})

	got := WarmSnapshots()
	if len(got) != 1 || got[0].Key != exportKey(plain) || got[0].Snap != snap {
		t.Fatalf("WarmSnapshots = %+v, want only the rec-free entry", got)
	}
	if _, ok := LookupWarmSnapshot(exportKey(withRec)); ok {
		t.Fatal("LookupWarmSnapshot served a rec-carrying entry")
	}
	if s, ok := LookupWarmSnapshot(exportKey(plain)); !ok || s != snap {
		t.Fatal("LookupWarmSnapshot missed the exchangeable entry")
	}

	// Install path: a peer-delivered snapshot becomes locally visible.
	inKey := WarmStateKey{Kind: "aes-warm", Arch: "Skylake", PHRSize: 93, Prog: 3}
	InstallWarmSnapshot(inKey, snap)
	if s, ok := LookupWarmSnapshot(inKey); !ok || s != snap {
		t.Fatal("InstallWarmSnapshot entry not visible to LookupWarmSnapshot")
	}
}

// TestAESFetchedWarmStateByteIdentical is the cross-process half of the
// determinism contract: an AES evaluation whose per-trial warm state
// arrives through the fetch hook (as it would from a cluster peer, via the
// wire codec) must produce a byte-identical report to one that trained
// locally.
func TestAESFetchedWarmStateByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	defer SetWarmFetch(nil)

	// Reference run: train everything locally, then steal the per-trial
	// warm snapshot it produced — round-tripped through the wire codec to
	// model a network transfer.
	warm.reset()
	SetWarmFetch(nil)
	want, err := AESLeakEval(ctx, Options{Parallelism: 1, WarmCache: WarmCacheOn}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := marshalReport(t, want)
	exported := WarmSnapshots()
	var donor *WarmSnapshot
	for i := range exported {
		if exported[i].Key.Kind == "aes-warm" {
			donor = &exported[i]
			break
		}
	}
	if donor == nil {
		t.Fatal("reference run left no exchangeable aes-warm snapshot")
	}
	blob, err := donor.Snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Fetched run: cold cache, hook serves the decoded peer snapshot.
	warm.reset()
	ResetWarmFetchStats()
	var fetched atomic.Int64
	SetWarmFetch(func(k WarmStateKey) (*cpu.Snapshot, bool) {
		if k != donor.Key {
			return nil, false
		}
		dec, err := cpu.DecodeSnapshot(blob)
		if err != nil {
			t.Errorf("decoding fetched snapshot: %v", err)
			return nil, false
		}
		fetched.Add(1)
		return dec, true
	})
	got, err := AESLeakEval(ctx, Options{Parallelism: 4, WarmCache: WarmCacheOn}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON := marshalReport(t, got); gotJSON != wantJSON {
		t.Errorf("fetched-warm-state report diverges:\ngot:  %s\nwant: %s", gotJSON, wantJSON)
	}
	if fetched.Load() == 0 {
		t.Error("fetch hook never served the per-trial warm snapshot")
	}
}

// TestWarmCacheSingleflightMixedKeys is satellite coverage: concurrent
// do/get/putIfAbsent over interleaved hit and miss keys must keep exactly
// one compute per key, deliver the same entry to every caller of a key, and
// stay race-free (run under -race in CI).
func TestWarmCacheSingleflightMixedKeys(t *testing.T) {
	c := newWarmCache(64)
	const keys, callers = 8, 12
	computes := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	entries := make([][]*warmEntry, keys)
	for k := range entries {
		entries[k] = make([]*warmEntry, callers)
	}
	release := make(chan struct{})
	for k := 0; k < keys; k++ {
		key := warmKey{kind: "mixed", seed: int64(k)}
		if k%2 == 0 { // pre-populated: every caller must hit, no compute
			c.putIfAbsent(key, warmTestEntry(uint64(k)))
		}
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				key := warmKey{kind: "mixed", seed: int64(k)}
				e, err := c.do(key, func() (*warmEntry, error) {
					computes[k].Add(1)
					<-release
					return warmTestEntry(uint64(k)), nil
				})
				if err != nil {
					t.Error(err)
				}
				entries[k][i] = e
			}(k, i)
		}
	}
	close(release)
	wg.Wait()
	for k := 0; k < keys; k++ {
		want := int64(1)
		if k%2 == 0 {
			want = 0
		}
		if got := computes[k].Load(); got != want {
			t.Errorf("key %d computed %d times, want %d", k, got, want)
		}
		for i := 1; i < callers; i++ {
			if entries[k][i] != entries[k][0] {
				t.Errorf("key %d caller %d got a different entry", k, i)
			}
		}
	}
}

// TestWarmCacheKillSwitchMidRun is satellite coverage: flipping the
// PATHFINDER_WARMCACHE kill switch between runs changes only whether the
// cache is consulted, never the report bytes.
func TestWarmCacheKillSwitchMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	ctx := context.Background()
	warm.reset()
	t.Setenv("PATHFINDER_WARMCACHE", "")
	on, err := AESLeakEval(ctx, Options{Parallelism: 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalReport(t, on)
	if hits, misses := warm.stats(); hits+misses == 0 {
		t.Fatal("cache-on run never consulted the cache")
	}

	t.Setenv("PATHFINDER_WARMCACHE", "off")
	warm.reset()
	off, err := AESLeakEval(ctx, Options{Parallelism: 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, off); got != want {
		t.Errorf("kill switch changed report bytes:\ngot:  %s\nwant: %s", got, want)
	}
	if hits, misses := warm.stats(); hits+misses != 0 {
		t.Fatalf("killed cache was still consulted (%d hits, %d misses)", hits, misses)
	}

	t.Setenv("PATHFINDER_WARMCACHE", "")
	warm.reset()
	back, err := AESLeakEval(ctx, Options{Parallelism: 2}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalReport(t, back); got != want {
		t.Errorf("re-enabled cache changed report bytes:\ngot:  %s\nwant: %s", got, want)
	}
}

// dummyRec marks an entry as carrying a process-local artifact.
var dummyRec core.ExtendedResult
