package harness

import (
	"context"
	"reflect"
	"testing"

	"pathfinder/internal/bpu"
)

// TestRefModelDriverParity is end-to-end differential validation: a whole
// experiment driver, run once on the production predictor and once on the
// internal/refmodel oracle, must produce byte-identical reports — points,
// inferred counter width, and every aggregated simulator counter (cycles
// include the mispredict penalty, so even one diverging prediction shows).
func TestRefModelDriverParity(t *testing.T) {
	ctx := context.Background()
	for _, arch := range []bpu.Config{bpu.AlderLake, bpu.Skylake} {
		fast, err := Obs2CounterWidth(ctx, Options{Arch: arch}, 4)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Obs2CounterWidth(ctx, Options{Arch: arch, RefModel: true}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Errorf("%s: driver reports diverge between implementations\nfast: %+v\nref:  %+v", arch.Name, fast, ref)
		}
	}
}

// TestRefModelReadPHRParity runs the §4.2 read/write round trip — a full
// attack primitive, Write_PHR chains and all — on the oracle and requires
// the identical report.
func TestRefModelReadPHRParity(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	ctx := context.Background()
	fast, err := ReadPHRRandomEval(ctx, Options{}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReadPHRRandomEval(ctx, Options{RefModel: true}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, ref) {
		t.Errorf("ReadPHR reports diverge between implementations\nfast: %+v\nref:  %+v", fast, ref)
	}
	if fast.Successes != 1 {
		t.Errorf("round trip failed even on the fast model: %+v", fast)
	}
}
