package cache

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := NewDefault()
	lat, hit := c.Access(0x1000)
	if hit || lat != MissLatency {
		t.Fatalf("first access: lat=%d hit=%v", lat, hit)
	}
	lat, hit = c.Access(0x1000)
	if !hit || lat != HitLatency {
		t.Fatalf("second access: lat=%d hit=%v", lat, hit)
	}
	// Same line, different byte.
	if _, hit = c.Access(0x1000 + LineSize - 1); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if _, hit = c.Access(0x1000 + LineSize); hit {
		t.Fatal("next line hit spuriously")
	}
}

func TestFlushEvicts(t *testing.T) {
	c := NewDefault()
	c.Access(0x4000)
	if !c.Contains(0x4000) {
		t.Fatal("line absent after access")
	}
	c.Flush(0x4007) // any byte within the line
	if c.Contains(0x4000) {
		t.Fatal("line present after flush")
	}
	if lat, _ := c.Access(0x4000); lat != MissLatency {
		t.Fatal("flush did not force a miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(1, 2) // one set, two ways
	c.Access(0 * LineSize)
	c.Access(1 * LineSize)
	c.Access(0 * LineSize) // refresh line 0
	c.Access(2 * LineSize) // evicts line 1 (LRU)
	if !c.Contains(0) || c.Contains(1*LineSize) || !c.Contains(2*LineSize) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestFlushAllAndStats(t *testing.T) {
	c := NewDefault()
	for i := uint64(0); i < 10; i++ {
		c.Access(i * LineSize)
	}
	c.FlushAll()
	for i := uint64(0); i < 10; i++ {
		if c.Contains(i * LineSize) {
			t.Fatal("FlushAll left a line")
		}
	}
	h, m, _ := c.Stats()
	if h != 0 || m != 10 {
		t.Fatalf("stats h=%d m=%d", h, m)
	}
}

func TestSetIndexingIsolation(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		c := NewDefault()
		addrA := uint64(a) * LineSize
		addrB := uint64(b) * LineSize
		c.Access(addrA)
		if addrA/LineSize == addrB/LineSize {
			return c.Contains(addrB)
		}
		// A single fill may only ever make its own line present.
		return !c.Contains(addrB)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProbeArrayRoundTrip(t *testing.T) {
	c := NewDefault()
	p := NewProbeArray(c, 0x10_0000)
	p.Flush()
	// Transmit the value 0x5a by touching its slot (what the transient
	// victim gadget does).
	c.Access(p.SlotAddr(0x5a))
	got, ok := p.ReloadOne()
	if !ok || got != 0x5a {
		t.Fatalf("recovered %#x ok=%v, want 0x5a", got, ok)
	}
}

func TestProbeArrayNoTransmission(t *testing.T) {
	c := NewDefault()
	p := NewProbeArray(c, 0x10_0000)
	p.Flush()
	if _, ok := p.ReloadOne(); ok {
		t.Fatal("reload found a hit with no transmission")
	}
}

func TestProbeArrayReloadPrimesSlots(t *testing.T) {
	// After one Reload pass every slot is cached, so a second Reload sees
	// all 256 values — the reason the receiver must Flush between rounds.
	c := NewDefault()
	p := NewProbeArray(c, 0x10_0000)
	p.Reload()
	if got := p.Reload(); len(got) != 256 {
		t.Fatalf("second reload saw %d hits, want 256", len(got))
	}
	p.Flush()
	if got := p.Reload(); len(got) != 0 {
		t.Fatalf("reload after flush saw %d hits", len(got))
	}
}

func TestProbeArraySlotsDistinctLines(t *testing.T) {
	p := NewProbeArray(NewDefault(), 0)
	seen := map[uint64]bool{}
	for v := 0; v < 256; v++ {
		l := p.SlotAddr(byte(v)) / LineSize
		if seen[l] {
			t.Fatal("probe slots share a cache line")
		}
		seen[l] = true
	}
}

// BenchmarkAccess separates one-time model construction from steady-state
// lookup cost. The two must not share a timed region: at small -benchtime
// (the CI gate runs 100x) an amortized NewDefault dominates and reports
// thousands of ns per "access", which is construction cost, not lookup cost.
func BenchmarkAccess(b *testing.B) {
	b.Run("construct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewDefault()
			c.Access(0) // keep the build from being dead-code eliminated
		}
	})
	b.Run("hot", func(b *testing.B) {
		c := NewDefault()
		c.Access(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(uint64(i) * LineSize % (1 << 20))
		}
	})
}

func TestEvictNth(t *testing.T) {
	c := New(4, 2)
	// Fill set 1, way 0 and way 1.
	c.Access(1 * LineSize)
	c.Access((4 + 1) * LineSize)
	// r selects set 1 (low bits) and way 1 (high bits).
	c.EvictNth(1 | 1<<32)
	if !c.Contains(1*LineSize) || c.Contains((4+1)*LineSize) {
		t.Fatal("EvictNth evicted the wrong way")
	}
	_, _, flushes := c.Stats()
	if flushes != 1 {
		t.Fatalf("EvictNth flushes = %d, want 1", flushes)
	}
	// Evicting an already-empty way is a no-op beyond the counter.
	c.EvictNth(1 | 1<<32)
	if !c.Contains(1 * LineSize) {
		t.Fatal("EvictNth on an empty way disturbed a neighbor")
	}
}
