package cache

import (
	"fmt"

	"pathfinder/internal/wire"
)

// Wire codec for the saved cache state, used by the cpu.Snapshot binary
// encoding. Lines are sparse on the wire — only valid (key != 0) lines are
// emitted, mirroring Hash — so a mostly-cold cache costs a few bytes.

// EncodeWire appends the saved cache to w.
func (s *State) EncodeWire(w *wire.Writer) {
	w.U32(uint32(s.sets))
	w.U32(uint32(s.ways))
	w.U64(s.tick)
	w.U64(s.hits)
	w.U64(s.misses)
	w.U64(s.flushes)
	live := 0
	for i := range s.lines {
		if s.lines[i].key != 0 {
			live++
		}
	}
	w.U32(uint32(live))
	for i := range s.lines {
		if s.lines[i].key == 0 {
			continue
		}
		w.U32(uint32(i))
		w.U64(s.lines[i].key)
		w.U64(s.lines[i].lru)
	}
}

// DecodeWire reads a saved cache from r, replacing s.
func (s *State) DecodeWire(r *wire.Reader) {
	s.sets = int(r.U32())
	s.ways = int(r.U32())
	s.tick = r.U64()
	s.hits = r.U64()
	s.misses = r.U64()
	s.flushes = r.U64()
	if r.Err() != nil {
		return
	}
	if s.sets < 0 || s.ways < 0 || s.sets*s.ways > 1<<26 {
		r.Fail(fmt.Errorf("cache: wire geometry %dx%d out of range", s.sets, s.ways))
		return
	}
	n := s.sets * s.ways
	if cap(s.lines) < n {
		s.lines = make([]line, n)
	}
	s.lines = s.lines[:n]
	clear(s.lines)
	live := r.Len(n)
	for k := 0; k < live; k++ {
		i := int(r.U32())
		if r.Err() != nil {
			return
		}
		if i >= n {
			r.Fail(fmt.Errorf("cache: wire line %d out of geometry %d", i, n))
			return
		}
		s.lines[i].key = r.U64()
		s.lines[i].lru = r.U64()
	}
}
