package cache

import "math/bits"

// State is a saved Cache for the checkpoint layer: one flat copy of every
// line plus the LRU clock and the cumulative counters. The clock is
// observable state — replacement decisions compare lru stamps — so a
// restored cache must get it back to stay cycle-accurate.
type State struct {
	sets, ways int
	tick       uint64
	hits       uint64
	misses     uint64
	flushes    uint64
	lines      []line // sets*ways, set-major
}

// Save copies the cache into dst, reusing dst's storage. New does not
// retain its backing array, so the copy walks the per-set slices.
func (c *Cache) Save(dst *State) {
	dst.sets, dst.ways = len(c.sets), c.ways
	dst.tick, dst.hits, dst.misses, dst.flushes = c.tick, c.hits, c.misses, c.flushes
	n := len(c.sets) * c.ways
	if cap(dst.lines) < n {
		dst.lines = make([]line, n)
	}
	dst.lines = dst.lines[:n]
	for i, set := range c.sets {
		copy(dst.lines[i*c.ways:(i+1)*c.ways], set)
	}
}

// Restore overwrites the cache from a saved state of identical geometry.
// Afterwards every set matches s, so all dirty bits clear.
func (c *Cache) Restore(s *State) {
	if s.sets != len(c.sets) || s.ways != c.ways {
		panic("cache: restore state with mismatched geometry")
	}
	c.tick, c.hits, c.misses, c.flushes = s.tick, s.hits, s.misses, s.flushes
	for i, set := range c.sets {
		copy(set, s.lines[i*c.ways:(i+1)*c.ways])
	}
	for i := range c.dirty {
		c.dirty[i] = 0
	}
}

// RestoreDirty overwrites only the sets whose dirty bit is raised, plus the
// clock and counters, then clears the bits. It is only correct when every
// clean set already matches s — i.e. the cache was last restored to (or
// snapshotted into) a state with identical bytes, a precondition the cpu
// layer enforces via its snapshot-hash sync check. Result is bit-identical
// to a full Restore at a fraction of the copying.
func (c *Cache) RestoreDirty(s *State) {
	if s.sets != len(c.sets) || s.ways != c.ways {
		panic("cache: restore state with mismatched geometry")
	}
	c.tick, c.hits, c.misses, c.flushes = s.tick, s.hits, s.misses, s.flushes
	for wi, w := range c.dirty {
		for w != 0 {
			si := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if si >= len(c.sets) {
				break
			}
			copy(c.sets[si], s.lines[si*c.ways:(si+1)*c.ways])
		}
		c.dirty[wi] = 0
	}
}

// Hash folds the saved cache into h (FNV-1a style, valid lines only).
func (s *State) Hash(h uint64) uint64 {
	mix := func(h, w uint64) uint64 { return (h ^ w) * 0x100000001b3 }
	h = mix(h, s.tick)
	for i := range s.lines {
		if s.lines[i].key == 0 {
			continue
		}
		h = mix(h, uint64(i))
		h = mix(h, s.lines[i].key)
		h = mix(h, s.lines[i].lru)
	}
	return h
}
