// Package cache models a set-associative data cache with the four
// properties the Spectre-style leakage in §9 of the Pathfinder paper
// requires: flushing a line (CLFLUSH), a measurable latency gap between
// hits and misses, state changes on transient loads, and persistence of
// that state across a pipeline squash.
//
// The default geometry is a 4 MiB, 16-way, 64-byte-line LLC-style cache
// backed by a flat-latency memory — Flush+Reload operates on the last-level
// cache, and the page-strided probe slots must land in distinct sets.
// Latencies are in model cycles.
package cache

// Geometry and latency defaults.
const (
	LineSize    = 64
	DefaultSets = 4096
	DefaultWays = 16

	HitLatency  = 4
	MissLatency = 300
)

// line packs one way into 16 bytes: key is the line address plus one, so
// zero means invalid and a lookup is a single comparison. The probe loops
// of the Flush+Reload attacks scan full sets far more often than they hit,
// making set-scan density the cache model's hottest property.
type line struct {
	key uint64 // line address + 1; 0 = invalid
	lru uint64
}

// Cache is a single-level set-associative cache. The zero value is not
// usable; call New.
type Cache struct {
	sets    [][]line
	setMask uint64
	ways    int
	tick    uint64

	hits, misses, flushes uint64

	// dirty holds one bit per set, raised whenever any line or LRU stamp in
	// that set may have changed. The bits are a conservative superset of
	// sets that differ from the last state this cache was restored to;
	// RestoreDirty copies only those sets and clears the bits. A trial's
	// footprint is a few dozen sets out of 4096, so this is what makes warm
	// restore proportional to work done instead of cache geometry.
	dirty []uint64
}

// New returns an empty cache with the given geometry. sets must be a power
// of two.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("cache: bad geometry")
	}
	c := &Cache{
		sets:    make([][]line, sets),
		setMask: uint64(sets - 1),
		ways:    ways,
		dirty:   make([]uint64, (sets+63)/64),
	}
	backing := make([]line, sets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// markDirty raises the dirty bit for set index si.
func (c *Cache) markDirty(si uint64) {
	c.dirty[si>>6] |= 1 << (si & 63)
}

// markAllDirty raises every dirty bit (bulk mutations: FlushAll, Reset).
func (c *Cache) markAllDirty() {
	for i := range c.dirty {
		c.dirty[i] = ^uint64(0)
	}
}

// NewDefault returns the default 32 KiB cache.
func NewDefault() *Cache { return New(DefaultSets, DefaultWays) }

func (c *Cache) locate(addr uint64) (set []line, key uint64) {
	lineAddr := addr / LineSize
	return c.sets[lineAddr&c.setMask], lineAddr + 1
}

// Access touches addr, returning the access latency in cycles and whether
// it hit. Misses allocate the line with LRU replacement.
func (c *Cache) Access(addr uint64) (latency int, hit bool) {
	c.tick++
	c.markDirty((addr / LineSize) & c.setMask) // hits move LRU stamps too
	set, key := c.locate(addr)
	for i := range set {
		if set[i].key == key {
			set[i].lru = c.tick
			c.hits++
			return HitLatency, true
		}
	}
	c.misses++
	victim := 0
	for i := range set {
		if set[i].key == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{key: key, lru: c.tick}
	return MissLatency, false
}

// Contains reports whether addr's line is cached, without touching LRU
// state (an oracle for tests; attackers must use timed accesses).
func (c *Cache) Contains(addr uint64) bool {
	set, key := c.locate(addr)
	for i := range set {
		if set[i].key == key {
			return true
		}
	}
	return false
}

// Flush evicts addr's line if present (CLFLUSH).
func (c *Cache) Flush(addr uint64) {
	c.flushes++
	c.markDirty((addr / LineSize) & c.setMask)
	set, key := c.locate(addr)
	for i := range set {
		if set[i].key == key {
			set[i] = line{}
		}
	}
}

// EvictNth invalidates one pseudo-randomly selected line: r's low bits pick
// the set, its high bits pick the way. It models co-resident cache pressure
// for the fault-injection layer — unlike Flush it needs no address, and it
// counts as a flush in the stats. Empty ways are a no-op, matching real
// eviction pressure landing on an invalid line.
func (c *Cache) EvictNth(r uint64) {
	c.flushes++
	c.markDirty(r & c.setMask)
	set := c.sets[r&c.setMask]
	set[(r>>32)%uint64(c.ways)] = line{}
}

// FlushAll empties the cache.
func (c *Cache) FlushAll() {
	c.markAllDirty()
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}

// Reset returns the cache to its as-built state: every line invalid and
// all counters (including the LRU clock) zero. Machine recycling uses it;
// attacks use Flush/FlushAll, which leave the counters alone.
func (c *Cache) Reset() {
	c.FlushAll()
	c.tick, c.hits, c.misses, c.flushes = 0, 0, 0, 0
}

// Stats returns cumulative hit/miss/flush counts.
func (c *Cache) Stats() (hits, misses, flushes uint64) {
	return c.hits, c.misses, c.flushes
}

// ProbeStride is the spacing of Flush+Reload probe slots: one page per
// possible byte value, defeating adjacent-line prefetching exactly as the
// 256-page array in §9 does.
const ProbeStride = 4096

// ProbeArray is a Flush+Reload covert-channel receiver over a 256-slot,
// page-strided array starting at Base. The transmitter (the victim's
// transient gadget) accesses Base + value*ProbeStride; the receiver times
// a reload of every slot and takes hits as transmitted values.
type ProbeArray struct {
	Base  uint64
	cache *Cache
}

// NewProbeArray binds a probe array at base to the cache shared with the
// victim.
func NewProbeArray(c *Cache, base uint64) *ProbeArray {
	return &ProbeArray{Base: base, cache: c}
}

// SlotAddr returns the address encoding a byte value.
func (p *ProbeArray) SlotAddr(value byte) uint64 {
	return p.Base + uint64(value)*ProbeStride
}

// Flush evicts all 256 slots (the Flush phase).
func (p *ProbeArray) Flush() {
	for v := 0; v < 256; v++ {
		p.cache.Flush(p.SlotAddr(byte(v)))
	}
}

// Reload times all 256 slots and returns the values whose slots hit (the
// Reload phase). Typically zero or one value per transmission.
func (p *ProbeArray) Reload() []byte {
	var got []byte
	for v := 0; v < 256; v++ {
		if lat, _ := p.cache.Access(p.SlotAddr(byte(v))); lat <= HitLatency {
			got = append(got, byte(v))
		}
	}
	return got
}

// ReloadOne returns the single hit value, or ok=false when zero or multiple
// slots hit (a corrupted transmission).
func (p *ProbeArray) ReloadOne() (byte, bool) {
	got := p.Reload()
	if len(got) == 1 {
		return got[0], true
	}
	return 0, false
}
