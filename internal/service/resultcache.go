package service

import (
	"container/list"
	"encoding/json"
	"sync"

	"pathfinder/internal/cpu"
)

// The result cache: every experiment driver is a deterministic function of
// its resolved parameters, so a finished job's marshaled result can serve
// any later job with the same canonical (experiment, params) key without
// re-simulating. A bounded LRU holds the results; an in-flight table
// deduplicates concurrent identical jobs onto one computation
// (singleflight). Journal replay repopulates the cache on startup, so a
// restarted daemon keeps its warm results.
//
// Only clean successes are cached. Failures, timeouts and cancellations are
// never stored — the next identical job runs for real — and a follower
// whose leader fails falls back to running the experiment itself.

// resultKey is the canonical content address of one job's work.
type resultKey struct {
	experiment string
	params     string // re-marshaled resolved-Params JSON
}

// resultKeyFor canonicalizes a job's identity. Registry.Resolve has already
// filled every defaulted field, and Go marshals struct fields in
// declaration order, so the JSON is a stable content address: two
// submissions that resolve to the same work produce the same key even when
// one spelled a default out and the other omitted it.
func resultKeyFor(experiment string, p Params) (resultKey, bool) {
	// Microarchitecture aliases ("", "alderlake", "Alder Lake") resolve to
	// one config; canonicalize to its Name so aliased submissions share an
	// entry. Unknown names never get here — Resolve rejected them at
	// submission.
	if cfg, err := ArchConfig(p.Arch); err == nil {
		p.Arch = cfg.Name
	}
	b, err := json.Marshal(p)
	if err != nil {
		return resultKey{}, false
	}
	return resultKey{experiment: experiment, params: string(b)}, true
}

// resultEntry is one cached outcome: the marshaled result plus the
// simulator counters the producing run accumulated (served verbatim, so a
// cache hit reports the same sim_stats the original job did).
type resultEntry struct {
	result json.RawMessage
	stats  cpu.Counters
}

// resultFlight is one in-flight computation; followers wait on done. entry
// stays nil when the leader did not produce a cacheable success.
type resultFlight struct {
	done  chan struct{}
	entry *resultEntry
}

// resultCache is the bounded LRU plus the singleflight table.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // most-recent first; values are resultKey
	items    map[resultKey]*resultItem
	inflight map[resultKey]*resultFlight
}

type resultItem struct {
	e   *resultEntry
	ele *list.Element
}

// newResultCache builds a cache bounded to capacity entries; capacity <= 0
// returns nil, the disabled cache.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[resultKey]*resultItem),
		inflight: make(map[resultKey]*resultFlight),
	}
}

// get returns the cached entry for key, marking it most-recently used.
func (c *resultCache) get(key resultKey) (*resultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(it.ele)
	return it.e, true
}

// put stores e under key (first writer wins), evicting the
// least-recently-used entry when over capacity.
func (c *resultCache) put(key resultKey, e *resultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, e)
}

func (c *resultCache) storeLocked(key resultKey, e *resultEntry) {
	if it, ok := c.items[key]; ok {
		// First writer wins on content (identical by determinism), but a
		// duplicate store is still a use: refresh recency, so the LRU order
		// — and therefore the eviction sequence — is a deterministic
		// function of the store/hit history alone.
		c.order.MoveToFront(it.ele)
		return
	}
	c.items[key] = &resultItem{e: e, ele: c.order.PushFront(key)}
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(resultKey))
	}
}

// begin joins or opens the singleflight for key: the first caller becomes
// the leader (leader == true) and must call finish; later callers get the
// existing flight to wait on.
func (c *resultCache) begin(key resultKey) (f *resultFlight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		return f, false
	}
	f = &resultFlight{done: make(chan struct{})}
	c.inflight[key] = f
	return f, true
}

// finish closes the leader's flight, caching e when non-nil and releasing
// every waiting follower.
func (c *resultCache) finish(key resultKey, f *resultFlight, e *resultEntry) {
	c.mu.Lock()
	delete(c.inflight, key)
	if e != nil {
		c.storeLocked(key, e)
	}
	c.mu.Unlock()
	f.entry = e
	close(f.done)
}

// len reports the number of cached entries, for the metrics gauge.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
