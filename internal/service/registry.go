package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pathfinder/internal/attack"
	"pathfinder/internal/bpu"
	"pathfinder/internal/cpu"
	"pathfinder/internal/faultinject"
	"pathfinder/internal/harness"
)

// Params are the caller-supplied knobs of a job, one typed superset across
// every experiment; each experiment reads the fields it understands and the
// registry fills zero fields from the experiment's defaults. The zero value
// of a field therefore means "use the default", matching the harness
// convention for seeds.
type Params struct {
	Arch     string  `json:"arch,omitempty"`     // alderlake | raptorlake | skylake ("" = alderlake)
	Seed     int64   `json:"seed,omitempty"`     // base seed; 0 = experiment default
	MaxM     int     `json:"max_m,omitempty"`    // obs2: longest T^m N^m pattern
	Doublets int     `json:"doublets,omitempty"` // fig4 / readphr: doublets read
	Trials   int     `json:"trials,omitempty"`   // readphr / aes: repetitions
	Trips    []int   `json:"trips,omitempty"`    // fig5: loop trip counts
	Size     int     `json:"size,omitempty"`     // fig7: image edge length
	Quality  int     `json:"quality,omitempty"`  // fig7: JPEG quality
	Images   int     `json:"images,omitempty"`   // fig7: test-set prefix length
	Noise    float64 `json:"noise,omitempty"`    // aes: transient-collapse probability (<0 = exactly zero)

	// BatchSize is the trial-group grain of the sharded drivers: each worker
	// claims this many consecutive trials and runs them on one cpu.Batch's
	// lanes. 0 selects the harness's auto-tuned default; any value yields a
	// byte-identical report, so it only tunes throughput.
	BatchSize int `json:"batch_size,omitempty"`

	// Faults arms the deterministic fault-injection layer for the job's
	// machines; nil leaves it off. aes_noise uses it as the sweep's base
	// profile (nil = faultinject.Default).
	Faults *faultinject.Profile `json:"faults,omitempty"`

	// Intensities are the aes_noise PHR-pollution hazard rates to sweep;
	// empty selects harness.DefaultNoiseIntensities.
	Intensities []float64 `json:"intensities,omitempty"`

	// Archs, Seeds and Noises are the aes_grid sweep dimensions — the grid
	// driver runs the §9 evaluation at every (arch, seed, noise) cell
	// through the shared-prefix sweep planner. Empty dimensions fall back
	// to the experiment defaults. Noises are literal transient-collapse
	// probabilities (0 means noiseless; no sentinel).
	Archs  []string  `json:"archs,omitempty"`
	Seeds  []int64   `json:"seeds,omitempty"`
	Noises []float64 `json:"noises,omitempty"`
}

// ArchConfig resolves a microarchitecture name to its Table 1 config. The
// empty string selects Alder Lake, mirroring cpu.Options.
func ArchConfig(name string) (bpu.Config, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "alderlake", "alder lake":
		return bpu.AlderLake, nil
	case "raptorlake", "raptor lake":
		return bpu.RaptorLake, nil
	case "skylake":
		return bpu.Skylake, nil
	}
	return bpu.Config{}, fmt.Errorf("unknown microarchitecture %q (want alderlake, raptorlake or skylake)", name)
}

// harnessOptions converts resolved params into driver options.
func (p Params) harnessOptions() (harness.Options, error) {
	arch, err := ArchConfig(p.Arch)
	if err != nil {
		return harness.Options{}, err
	}
	return harness.Options{Arch: arch, Seed: p.Seed, Faults: p.Faults, BatchSize: p.BatchSize}, nil
}

// EffectiveNoise maps the canonical noise field to the numeric probability
// drivers consume: the "<0 = exactly zero" sentinel becomes 0.
func (p Params) EffectiveNoise() float64 {
	if p.Noise < 0 {
		return 0
	}
	return p.Noise
}

// Runner executes one experiment. It must honor ctx cancellation, and
// returns a JSON-serializable result plus the aggregated simulator counters
// of every machine it built (zero if the driver does not expose them).
type Runner func(ctx context.Context, p Params) (result any, stats cpu.Counters, err error)

// Experiment is one registry entry.
type Experiment struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Defaults    Params `json:"defaults"`
	Run         Runner `json:"-"`
}

// Registry maps experiment names to specs. The zero value is unusable; use
// NewRegistry, which pre-registers the full DESIGN.md §3 experiment index.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Experiment
}

// Register adds or replaces an experiment spec.
func (r *Registry) Register(e Experiment) error {
	if e.Name == "" || e.Run == nil {
		return fmt.Errorf("service: experiment needs a name and a runner")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName[e.Name] = e
	return nil
}

// Get looks up an experiment by name.
func (r *Registry) Get(name string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byName[name]
	return e, ok
}

// List returns every registered experiment, sorted by name.
func (r *Registry) List() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve validates the experiment name and parameters and fills zero
// fields from the experiment defaults. Submissions fail fast here — an
// unknown experiment or microarchitecture never reaches the queue.
func (r *Registry) Resolve(name string, p Params) (Params, error) {
	e, ok := r.Get(name)
	if !ok {
		return p, fmt.Errorf("service: unknown experiment %q", name)
	}
	if _, err := ArchConfig(p.Arch); err != nil {
		return p, err
	}
	for _, a := range p.Archs {
		if _, err := ArchConfig(a); err != nil {
			return p, err
		}
	}
	d := e.Defaults
	if p.Arch == "" {
		p.Arch = d.Arch
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.MaxM == 0 {
		p.MaxM = d.MaxM
	}
	if p.Doublets == 0 {
		p.Doublets = d.Doublets
	}
	if p.Trials == 0 {
		p.Trials = d.Trials
	}
	if len(p.Trips) == 0 {
		p.Trips = d.Trips
	}
	if p.Size == 0 {
		p.Size = d.Size
	}
	if p.Quality == 0 {
		p.Quality = d.Quality
	}
	if p.Images == 0 {
		p.Images = d.Images
	}
	if p.BatchSize == 0 {
		p.BatchSize = d.BatchSize
	}
	// Zero means "use the default", so an explicitly noiseless run is
	// spelled with a negative value, canonicalized to -1. The sentinel
	// survives Resolve (rather than collapsing to 0) so resolving is
	// idempotent — the coordinator resolves for its canonical report and a
	// worker's service resolves the same params again, and both must agree.
	// EffectiveNoise maps it to the numeric probability at driver-call time.
	if p.Noise == 0 {
		p.Noise = d.Noise
	} else if p.Noise < 0 {
		p.Noise = -1
	}
	if p.Faults == nil {
		p.Faults = d.Faults
	}
	if len(p.Intensities) == 0 {
		p.Intensities = d.Intensities
	}
	if len(p.Archs) == 0 {
		p.Archs = d.Archs
	}
	if len(p.Seeds) == 0 {
		p.Seeds = d.Seeds
	}
	if len(p.Noises) == 0 {
		p.Noises = d.Noises
	}
	return p, nil
}

// NewRegistry builds a registry holding the full experiment index of
// DESIGN.md §3: every table and figure the repository reproduces, as a
// parameterized, JSON-serializable job spec.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]Experiment)}
	reg := func(e Experiment) {
		if err := r.Register(e); err != nil {
			panic(err)
		}
	}

	reg(Experiment{
		Name:        "table1",
		Description: "Table 1: target-processor inventory",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if err := ctx.Err(); err != nil {
				return nil, cpu.Counters{}, err
			}
			return struct {
				Configs  []bpu.Config `json:"configs"`
				Rendered string       `json:"rendered"`
			}{bpu.Configs(), harness.Table1()}, cpu.Counters{}, nil
		},
	})

	reg(Experiment{
		Name:        "obs2",
		Description: "Observation 2: saturating-counter width from T^m N^m mispredict plateau",
		Defaults:    Params{MaxM: 12},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.Obs2CounterWidth(ctx, opts, p.MaxM)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "fig4",
		Description: "Figure 4: Read_PHR candidate misprediction-rate signature",
		Defaults:    Params{Doublets: 4},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.Fig4ReadDoublet(ctx, opts, p.Doublets)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "readphr",
		Description: "§4.2: random PHR write/read round trips",
		Defaults:    Params{Trials: 3, Doublets: 48},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.ReadPHRRandomEval(ctx, opts, p.Trials, p.Doublets)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "fig5",
		Description: "§5: Extended Read PHR over victims within and beyond the PHR window",
		Defaults:    Params{Trips: []int{60, 150, 250, 400}},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.ExtendedReadEval(ctx, opts, p.Trips)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "fig6",
		Description: "Figure 6: Pathfinder runtime-CFG recovery of the looped AES victim",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			res, err := harness.Fig6PathfinderAES(ctx, opts)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return res, res.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "table2",
		Description: "Table 2: primitive practicality across user/kernel/SGX/SMT/IBPB/IBRS boundaries",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if err := ctx.Err(); err != nil {
				return nil, cpu.Counters{}, err
			}
			cells, err := attack.AttackSurface()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return struct {
				Cells    []attack.SurfaceCell `json:"cells"`
				Rendered string               `json:"rendered"`
			}{cells, attack.FormatSurface(cells)}, cpu.Counters{}, nil
		},
	})

	reg(Experiment{
		Name:        "fig7",
		Description: "Figure 7 / §8: secret-image recovery from IDCT control flow",
		Defaults:    Params{Size: 16, Quality: 60, Images: 2},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.Fig7ImageRecovery(ctx, opts, p.Size, p.Quality, p.Images)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "aes",
		Description: "§9: reduced-round ciphertext theft + AES-128 key recovery under noise",
		Defaults:    Params{Trials: 24, Noise: 0.015},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			res, err := harness.AESLeakEval(ctx, opts, p.Trials, p.EffectiveNoise())
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return res, res.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "aes_noise",
		Description: "§9 robustness: AES byte-theft accuracy swept over PHR-pollution intensity",
		Defaults:    Params{Trials: 24, Noise: 0.015},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			rep, err := harness.AESNoiseSweep(ctx, opts, p.Trials, p.EffectiveNoise(), p.Intensities)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "aes_grid",
		Description: "§9 batch: AES evaluation over an arch × seed × noise grid via the shared-prefix sweep planner",
		Defaults:    Params{Trials: 24, Archs: []string{"alderlake"}, Seeds: []int64{harness.DefaultAESSeed}, Noises: []float64{0}},
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			opts, err := p.harnessOptions()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			archs := make([]bpu.Config, 0, len(p.Archs))
			for _, name := range p.Archs {
				cfg, aerr := ArchConfig(name)
				if aerr != nil {
					return nil, cpu.Counters{}, aerr
				}
				archs = append(archs, cfg)
			}
			rep, err := harness.AESGridSweep(ctx, opts, p.Trials, archs, p.Seeds, p.Noises)
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return rep, rep.Stats, nil
		},
	})

	reg(Experiment{
		Name:        "mitigations",
		Description: "§10: software mitigation cost and effectiveness against the PHR leak",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if err := ctx.Err(); err != nil {
				return nil, cpu.Counters{}, err
			}
			rows, err := attack.EvaluateMitigations()
			if err != nil {
				return nil, cpu.Counters{}, err
			}
			return struct {
				Mitigations []attack.MitigationResult `json:"mitigations"`
			}{rows}, cpu.Counters{}, nil
		},
	})

	return r
}
