package service

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// submitSweep16 queues the benchmark workload: per µarch config one Table 2
// attack-surface job plus seven Figure 4 Read_PHR jobs with distinct seeds —
// 16 jobs total.
func submitSweep16(tb testing.TB, s *Service) {
	tb.Helper()
	for _, arch := range []string{"alderlake", "raptorlake"} {
		if _, err := s.Submit("table2", Params{Arch: arch}, "", 10*time.Minute); err != nil {
			tb.Fatal(err)
		}
		for seed := int64(1); seed <= 7; seed++ {
			if _, err := s.Submit("fig4", Params{Arch: arch, Seed: seed}, "", 10*time.Minute); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// runSweep16 executes the 16-job workload on a pool of the given size and
// returns the wall time from first submission to full drain.
func runSweep16(tb testing.TB, workers int) time.Duration {
	tb.Helper()
	s := New(Config{Workers: workers, QueueDepth: 32})
	start := time.Now()
	submitSweep16(tb, s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	c := s.StateCounts()
	if c[StateDone] != 16 {
		tb.Fatalf("sweep finished with states %v, want 16 done", c)
	}
	return elapsed
}

// nopResponseWriter discards the response; it isolates writeJSON's own
// allocations from recorder bookkeeping.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header       { return w.h }
func (nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (nopResponseWriter) WriteHeader(int)             {}

// BenchmarkWriteJSON measures the pooled response-encode path with a
// typical job-view payload.
func BenchmarkWriteJSON(b *testing.B) {
	w := nopResponseWriter{h: make(http.Header)}
	body := map[string]any{"total": 2, "jobs": []JobView{{ID: "job-000001", Experiment: "aes", State: StateDone}, {ID: "job-000002", Experiment: "fig4", State: StateRunning}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, body)
	}
}

// TestWriteJSONSteadyStateAllocs pins the pooling win: once the pool is
// primed, a writeJSON call must stay under the pre-pool allocation count
// (encoder + buffer + map iteration used to cost ~30).
func TestWriteJSONSteadyStateAllocs(t *testing.T) {
	w := nopResponseWriter{h: make(http.Header)}
	body := errorBody{Error: "queue full"}
	writeJSON(w, http.StatusServiceUnavailable, body) // prime the pool
	avg := testing.AllocsPerRun(200, func() {
		writeJSON(w, http.StatusServiceUnavailable, body)
	})
	if avg > 8 {
		t.Fatalf("writeJSON allocates %.1f objects per call at steady state, want <= 8", avg)
	}
}

func BenchmarkSweep16Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweep16(b, 1)
	}
}

func BenchmarkSweep16Pool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSweep16(b, runtime.GOMAXPROCS(0))
	}
}

// TestEmitBenchArtifact writes BENCH_service.json at the repo root. Gated
// behind an environment variable so regular test runs stay fast:
//
//	PATHFINDERD_EMIT_BENCH=1 go test ./internal/service -run TestEmitBenchArtifact
func TestEmitBenchArtifact(t *testing.T) {
	if os.Getenv("PATHFINDERD_EMIT_BENCH") == "" {
		t.Skip("set PATHFINDERD_EMIT_BENCH=1 to emit BENCH_service.json")
	}
	workers := runtime.GOMAXPROCS(0)
	seq := runSweep16(t, 1)
	pool := runSweep16(t, workers)

	artifact := struct {
		Benchmark    string  `json:"benchmark"`
		Jobs         int     `json:"jobs"`
		Workers      int     `json:"workers"`
		GOMAXPROCS   int     `json:"gomaxprocs"`
		SequentialNS int64   `json:"sequential_ns"`
		PoolNS       int64   `json:"pool_ns"`
		Speedup      float64 `json:"speedup"`
		Note         string  `json:"note"`
	}{
		Benchmark:    "16-job table2+fig4 sweep, 1 worker vs GOMAXPROCS workers",
		Jobs:         16,
		Workers:      workers,
		GOMAXPROCS:   workers,
		SequentialNS: seq.Nanoseconds(),
		PoolNS:       pool.Nanoseconds(),
		Speedup:      float64(seq) / float64(pool),
		Note:         "speedup tracks available cores; on a single-CPU host it is ~1x",
	}
	raw, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_service.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential %v, pool(%d) %v, speedup %.2fx -> %s", seq, workers, pool, artifact.Speedup, path)
}
