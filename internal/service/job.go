// Package service turns the harness experiment drivers into a job-oriented
// orchestration layer: a typed registry of every experiment in the DESIGN.md
// index, a bounded worker pool draining an in-memory queue, an HTTP/JSON
// API, and a /metrics observability surface aggregating simulator counters.
// cmd/pathfinderd is the daemon wrapping this package.
package service

import (
	"encoding/json"
	"time"

	"pathfinder/internal/cpu"
)

// State is a job's lifecycle position. Transitions:
//
//	pending → running → done | failed | cancelled
//	pending → cancelled                 (cancelled before a worker picked it up)
type State string

// Job states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every state in lifecycle order; /metrics emits one series
// per state so scrapes always expose all five counts, including zeros.
func States() []State {
	return []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled}
}

// job is the service-internal mutable record. All fields past the
// immutable header are guarded by Service.mu.
type job struct {
	id         string
	experiment string
	params     Params
	batch      string
	timeout    time.Duration

	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    json.RawMessage
	errMsg    string
	stats     cpu.Counters
	attempts  int    // worker pickups so far (including the current one)
	lastErr   string // error that parked the job on a retry timer

	// cancel aborts the in-flight run; non-nil only while running.
	cancel func()
	// cancelRequested pins the terminal state to cancelled even if the
	// runner manages to finish before observing ctx.Done().
	cancelRequested bool
}

// JobView is the immutable JSON projection of a job, safe to hand out
// after the service lock is released.
type JobView struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Params     Params          `json:"params"`
	Batch      string          `json:"batch,omitempty"`
	State      State           `json:"state"`
	Submitted  time.Time       `json:"submitted_at"`
	Started    *time.Time      `json:"started_at,omitempty"`
	Finished   *time.Time      `json:"finished_at,omitempty"`
	DurationMS int64           `json:"duration_ms,omitempty"`
	Attempts   int             `json:"attempts,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	SimStats   *cpu.Counters   `json:"sim_stats,omitempty"`
}

// view snapshots the job; the caller must hold Service.mu.
func (j *job) view() JobView {
	v := JobView{
		ID:         j.id,
		Experiment: j.experiment,
		Params:     j.params,
		Batch:      j.batch,
		State:      j.state,
		Submitted:  j.submitted,
		Attempts:   j.attempts,
		Result:     j.result,
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		v.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	if j.stats != (cpu.Counters{}) {
		s := j.stats
		v.SimStats = &s
	}
	return v
}

// terminal reports whether the state admits no further transitions.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}
