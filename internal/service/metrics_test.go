package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
	"pathfinder/internal/snapstore"
)

// TestHistogramBucketBoundaries pins which bucket an observation on an
// exact upper bound lands in: Prometheus buckets are le (inclusive upper),
// so a duration equal to a bound must count in that bound's bucket, and
// anything past the last bound goes to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		seconds float64
		bucket  int // expected index into counts
	}{
		{0, 0},
		{0.0005, 0},
		{0.001, 0},  // exactly the first bound: inclusive
		{0.0011, 1}, // just past it
		{0.005, 1},
		{0.01, 2},
		{0.05, 3},
		{0.1, 4},
		{0.5, 5},
		{1, 6},
		{5, 7},
		{10, 8},
		{30, 9},
		{60, 10},
		{120, 11},                        // exactly the last finite bound
		{120.0001, len(durationBuckets)}, // overflow bucket
		{3600, len(durationBuckets)},     // way past the end
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%gs", c.seconds), func(t *testing.T) {
			h := newHistogram()
			h.observe(c.seconds)
			for i, n := range h.counts {
				want := uint64(0)
				if i == c.bucket {
					want = 1
				}
				if n != want {
					t.Errorf("bucket %d count = %d, want %d", i, n, want)
				}
			}
			if h.n != 1 || h.sum != c.seconds {
				t.Errorf("n=%d sum=%g, want 1 and %g", h.n, h.sum, c.seconds)
			}
		})
	}
}

// TestHistogramExpositionCumulative checks the rendered histogram is
// cumulative and consistent: each le series includes every faster
// observation, +Inf equals the count, and the sum is exact.
func TestHistogramExpositionCumulative(t *testing.T) {
	m := newMetrics(2)
	durations := []time.Duration{
		500 * time.Microsecond, // bucket le=0.001
		time.Millisecond,       // le=0.001 (boundary)
		3 * time.Millisecond,   // le=0.005
		2 * time.Second,        // le=5
		10 * time.Minute,       // +Inf
	}
	for _, d := range durations {
		m.jobFinished("obs2", StateDone, d, cpu.Counters{})
	}
	exp := m.Expose(map[State]int{}, 0, nil, 0)

	bucket := func(le string) int {
		return metricValue(t, exp, fmt.Sprintf(`pathfinderd_job_duration_seconds_bucket{experiment="obs2",le="%s"}`, le))
	}
	for _, c := range []struct {
		le   string
		want int
	}{
		{"0.001", 2}, {"0.005", 3}, {"0.01", 3}, {"1", 3}, {"5", 4}, {"120", 4}, {"+Inf", 5},
	} {
		if got := bucket(c.le); got != c.want {
			t.Errorf("bucket le=%s = %d, want %d", c.le, got, c.want)
		}
	}
	if n := metricValue(t, exp, `pathfinderd_job_duration_seconds_count{experiment="obs2"}`); n != 5 {
		t.Errorf("count = %d, want 5", n)
	}
	// Bounds must render Prometheus-style: no trailing zeros, ints bare.
	for _, want := range []string{`le="0.001"`, `le="0.5"`, `le="1"`, `le="120"`} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if strings.Contains(exp, `le="1.000000"`) || strings.Contains(exp, `le="5e`) {
		t.Error("bucket bounds rendered in a non-Prometheus format")
	}
}

// TestMetricsPlannerAndSnapStoreScrape runs a shared-prefix sweep against an
// installed snapshot store and scrapes GET /metrics, pinning the planner and
// store series a dashboard would alert on. The snapshot-store section must be
// gated on a store actually being installed.
func TestMetricsPlannerAndSnapStoreScrape(t *testing.T) {
	harness.SetSnapStore(nil)
	harness.ResetPlannerStats()
	harness.ResetSnapStoreStats()

	s := New(Config{Workers: 1, QueueDepth: 4})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	scrape := func() string {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /metrics = %d, want 200", rec.Code)
		}
		return rec.Body.String()
	}

	if exp := scrape(); strings.Contains(exp, "pathfinderd_snapshot_store_ops_total") {
		t.Fatal("snapshot-store series exposed with no store installed")
	}

	st, err := snapstore.Open(t.TempDir(), snapstore.DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	harness.SetSnapStore(st)
	defer harness.SetSnapStore(nil)

	prefix := harness.WarmStateKey{Kind: "aes-phase1", Arch: "Alder Lake", PHRSize: 194, Prog: 0xabc, Seed: 1}
	cells := make([]harness.SweepCell, 3)
	for i := range cells {
		cells[i] = harness.SweepCell{
			Label:  fmt.Sprintf("cell-%d", i),
			Prefix: prefix,
			Run:    func(context.Context) error { return nil },
		}
	}
	if err := harness.RunSweep(context.Background(), cells); err != nil {
		t.Fatal(err)
	}

	exp := scrape()
	for sample, want := range map[string]int{
		"pathfinderd_sweep_planner_groups_total":       1,
		"pathfinderd_sweep_planner_cells_total":        3,
		"pathfinderd_sweep_planner_shared_cells_total": 2,
		"pathfinderd_snapshot_store_entries":           0,
	} {
		if got := metricValue(t, exp, sample); got != want {
			t.Errorf("%s = %d, want %d", sample, got, want)
		}
	}
	for _, sample := range []string{
		`pathfinderd_sweep_planner_prefetch_total{result="hit"}`,
		`pathfinderd_sweep_planner_prefetch_total{result="miss"}`,
		`pathfinderd_warmcache_store_requests_total{result="hit"}`,
		`pathfinderd_warmcache_store_requests_total{result="miss"}`,
		`pathfinderd_snapshot_store_ops_total{op="hit"}`,
		`pathfinderd_snapshot_store_ops_total{op="put"}`,
		`pathfinderd_snapshot_store_ops_total{op="evict"}`,
		"pathfinderd_snapshot_store_bytes",
	} {
		if !strings.Contains(exp, sample) {
			t.Errorf("exposition missing %s", sample)
		}
	}
}
