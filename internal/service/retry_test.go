package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/cpu"
)

// registerFlaky adds an experiment that fails its first `failures` runs and
// succeeds afterwards, counting calls.
func registerFlaky(t *testing.T, reg *Registry, name string, failures int, calls *atomic.Int64) {
	t.Helper()
	err := reg.Register(Experiment{
		Name:        name,
		Description: "test: fails the first N attempts",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			n := calls.Add(1)
			if n <= int64(failures) {
				return nil, cpu.Counters{}, fmt.Errorf("transient failure %d", n)
			}
			return map[string]int64{"attempt": n}, cpu.Counters{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestJobRetrySucceedsWithinBudget: a job whose runner fails twice under a
// 3-attempt budget must end done, with the attempts visible on the view and
// the retries on /metrics.
func TestJobRetrySucceedsWithinBudget(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, MaxAttempts: 3, RetryBackoff: time.Millisecond})
	defer shutdown(t, s)
	var calls atomic.Int64
	registerFlaky(t, s.Registry(), "flaky", 2, &calls)

	v, err := s.Submit("flaky", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "flaky job to finish", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State.terminal()
	})
	got, _ := s.Get(v.ID)
	if got.State != StateDone || got.Attempts != 3 {
		t.Fatalf("state=%s attempts=%d err=%q, want done after 3 attempts", got.State, got.Attempts, got.Error)
	}
	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if n := metricValue(t, exp, `pathfinderd_job_retries_total{experiment="flaky"}`); n != 2 {
		t.Fatalf("retries_total = %d, want 2", n)
	}
}

// TestJobRetryExhaustsBudget: permanent failure spends the whole budget and
// lands failed with the last error.
func TestJobRetryExhaustsBudget(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	defer shutdown(t, s)
	var calls atomic.Int64
	registerFlaky(t, s.Registry(), "doomed", 1<<30, &calls)

	v, err := s.Submit("doomed", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "doomed job to finish", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State.terminal()
	})
	got, _ := s.Get(v.ID)
	if got.State != StateFailed || got.Attempts != 2 || !strings.Contains(got.Error, "transient failure 2") {
		t.Fatalf("state=%s attempts=%d err=%q, want failed after 2 attempts with the last error", got.State, got.Attempts, got.Error)
	}
	if calls.Load() != 2 {
		t.Fatalf("runner called %d times, want exactly the budget of 2", calls.Load())
	}
}

// TestCancelWhileWaitingForRetry: cancelling a job parked on its backoff
// timer must finalize it cancelled and disarm the re-enqueue.
func TestCancelWhileWaitingForRetry(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16, MaxAttempts: 5, RetryBackoff: time.Hour})
	defer shutdown(t, s)
	var calls atomic.Int64
	registerFlaky(t, s.Registry(), "parked", 1<<30, &calls)

	v, err := s.Submit("parked", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "job to park on its retry timer", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State == StatePending && got.Attempts == 1
	})
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(v.ID)
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("runner re-ran after cancel: %d calls", calls.Load())
	}
}

// TestBreakerOpensAndRecovers drives the per-experiment circuit breaker
// through its full cycle: consecutive failures open it, submissions bounce
// with ErrBreakerOpen, the cooldown admits a probe, and a success closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	// The fake clock is read from worker goroutines, so guard it.
	var clockMu sync.Mutex
	clock := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	var healthy atomic.Bool
	s := New(Config{
		Workers: 1, QueueDepth: 16,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
		Clock: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return clock
		},
	})
	defer shutdown(t, s)
	err := s.Registry().Register(Experiment{
		Name:        "sick",
		Description: "test: fails until healed",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if healthy.Load() {
				return map[string]bool{"ok": true}, cpu.Counters{}, nil
			}
			return nil, cpu.Counters{}, errors.New("down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	submitAndWait := func() JobView {
		t.Helper()
		v, err := s.Submit("sick", Params{}, "", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, 10*time.Second, "job terminal", func() bool {
			got, err := s.Get(v.ID)
			return err == nil && got.State.terminal()
		})
		got, _ := s.Get(v.ID)
		return got
	}

	submitAndWait() // failure 1
	submitAndWait() // failure 2: threshold reached, breaker opens

	if _, err := s.Submit("sick", Params{}, "", time.Minute); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("submit with open breaker: err = %v, want ErrBreakerOpen", err)
	}
	if st := s.breaker.snapshot()["sick"]; st != breakerOpen {
		t.Fatalf("breaker state = %d, want open (%d)", st, breakerOpen)
	}
	// Other experiments are unaffected.
	if _, err := s.Submit("table1", Params{}, "", time.Minute); err != nil {
		t.Fatalf("healthy experiment rejected: %v", err)
	}

	// Cooldown passes; the heal takes and the probe closes the breaker.
	advance(11 * time.Second)
	healthy.Store(true)
	if got := submitAndWait(); got.State != StateDone {
		t.Fatalf("probe after cooldown: state=%s err=%q, want done", got.State, got.Error)
	}
	if st, ok := s.breaker.snapshot()["sick"]; ok {
		t.Fatalf("breaker still tracking healed experiment (state %d), want closed/forgotten", st)
	}
	if got := submitAndWait(); got.State != StateDone {
		t.Fatalf("post-recovery submit: state=%s, want done", got.State)
	}
}

// TestBreakerHalfOpenRejectsSecondProbe: while the single probe is in
// flight, further submissions stay rejected; a failing probe re-opens.
func TestBreakerHalfOpenRejectsSecondProbe(t *testing.T) {
	clock := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	b := newBreaker(1, 10*time.Second, func() time.Time { return clock })
	b.record("x", false) // opens at threshold 1
	if err := b.allow("x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	clock = clock.Add(11 * time.Second)
	if err := b.allow("x"); err != nil {
		t.Fatalf("cooldown probe rejected: %v", err)
	}
	if err := b.allow("x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second submission during half-open admitted: %v", err)
	}
	b.record("x", false) // probe failed: re-open, cooldown restarts
	if err := b.allow("x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted: %v", err)
	}
	clock = clock.Add(11 * time.Second)
	if err := b.allow("x"); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.record("x", true)
	if err := b.allow("x"); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
}

// TestRunRecoveredPanicPath: a panicking experiment must land the job in
// failed with the panic message, leave the worker alive for later jobs, and
// count on the panic failure-class metric.
func TestRunRecoveredPanicPath(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16})
	defer shutdown(t, s)
	err := s.Registry().Register(Experiment{
		Name:        "bomb",
		Description: "test: panics",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			panic("kaboom")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	v, err := s.Submit("bomb", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "panicking job to finish", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State.terminal()
	})
	got, _ := s.Get(v.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "experiment panicked: kaboom") {
		t.Fatalf("state=%s err=%q, want failed with the panic message", got.State, got.Error)
	}

	// The worker survived: a normal job still runs to completion.
	v2, err := s.Submit("table1", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "follow-up job to finish", func() bool {
		got, err := s.Get(v2.ID)
		return err == nil && got.State == StateDone
	})

	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if n := metricValue(t, exp, `pathfinderd_job_failures_total{experiment="bomb",class="panic"}`); n != 1 {
		t.Fatalf("panic failure class = %d, want 1", n)
	}
}

// TestCancelMetricsCounters pins the finished-by-state counters across the
// three Cancel shapes: queued (finalized immediately), running (runner
// unwinds), and finished (refused, counters untouched).
func TestCancelMetricsCounters(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16})
	defer shutdown(t, s)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	registerBlocker(t, s.Registry(), "blocker", started, release)

	running, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "running job to unwind cancelled", func() bool {
		got, err := s.Get(running.ID)
		return err == nil && got.State == StateCancelled
	})

	close(release)
	done, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "released job to finish", func() bool {
		got, err := s.Get(done.ID)
		return err == nil && got.State == StateDone
	})
	if _, err := s.Cancel(done.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel on finished job: err = %v, want ErrFinished", err)
	}

	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if n := metricValue(t, exp, `pathfinderd_jobs_finished_total{experiment="blocker",state="cancelled"}`); n != 2 {
		t.Fatalf("cancelled counter = %d, want 2 (queued + running)", n)
	}
	if n := metricValue(t, exp, `pathfinderd_jobs_finished_total{experiment="blocker",state="done"}`); n != 1 {
		t.Fatalf("done counter = %d, want 1 (the refused cancel must not recount)", n)
	}
	if n := metricValue(t, exp, `pathfinderd_jobs{state="cancelled"}`); n != 2 {
		t.Fatalf("cancelled gauge = %d, want 2", n)
	}
}
