package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
)

// durationBuckets are the latency histogram upper bounds in seconds.
// Experiments span ~1ms (table1) to minutes (full fig7), so the buckets
// cover five decades.
var durationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

// histogram is a fixed-bucket latency histogram (cumulative on exposition,
// per-bucket internally).
type histogram struct {
	counts []uint64 // len(durationBuckets)+1; last is +Inf
	sum    float64
	n      uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(durationBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(durationBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// Metrics aggregates service-level observability: job counts by state and
// experiment, queue/worker gauges, per-experiment latency histograms, and
// the simulated-machine counters (cycles, mispredicts, ...) summed over
// every finished job. Exposition is Prometheus text format, hand-rolled so
// the repo stays stdlib-only.
type Metrics struct {
	mu        sync.Mutex
	workers   int
	submitted map[string]uint64 // by experiment
	started   uint64
	finished  map[string]map[State]uint64 // by experiment, terminal state
	latency   map[string]*histogram       // by experiment
	retried   map[string]uint64           // by experiment
	failures  map[string]map[failureClass]uint64
	recovered uint64
	sim       cpu.Counters

	rcHits   map[string]uint64 // result-cache hits, by experiment
	rcMisses map[string]uint64 // result-cache misses, by experiment
	rcDedup  map[string]uint64 // jobs deduplicated onto an in-flight run
}

func newMetrics(workers int) *Metrics {
	return &Metrics{
		workers:   workers,
		submitted: make(map[string]uint64),
		finished:  make(map[string]map[State]uint64),
		latency:   make(map[string]*histogram),
		retried:   make(map[string]uint64),
		failures:  make(map[string]map[failureClass]uint64),
		rcHits:    make(map[string]uint64),
		rcMisses:  make(map[string]uint64),
		rcDedup:   make(map[string]uint64),
	}
}

func (m *Metrics) resultCacheHit(experiment string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rcHits[experiment]++
}

func (m *Metrics) resultCacheMiss(experiment string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rcMisses[experiment]++
}

func (m *Metrics) resultCacheDedup(experiment string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rcDedup[experiment]++
}

func (m *Metrics) jobSubmitted(experiment string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted[experiment]++
}

func (m *Metrics) jobStarted(string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.started++
}

func (m *Metrics) jobFinished(experiment string, st State, dur time.Duration, stats cpu.Counters) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byState := m.finished[experiment]
	if byState == nil {
		byState = make(map[State]uint64)
		m.finished[experiment] = byState
	}
	byState[st]++
	h := m.latency[experiment]
	if h == nil {
		h = newHistogram()
		m.latency[experiment] = h
	}
	h.observe(dur.Seconds())
	m.sim.Add(stats)
}

func (m *Metrics) jobRetried(experiment string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retried[experiment]++
}

func (m *Metrics) jobFailed(experiment string, class failureClass) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byClass := m.failures[experiment]
	if byClass == nil {
		byClass = make(map[failureClass]uint64)
		m.failures[experiment] = byClass
	}
	byClass[class]++
}

func (m *Metrics) jobsRecovered(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recovered += uint64(n)
}

// SimCounters returns the aggregated simulator counters.
func (m *Metrics) SimCounters() cpu.Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sim
}

// Expose renders the full exposition. Current state counts and the queue
// gauge come from the live job table so a scrape is always consistent with
// GET /v1/jobs.
func (m *Metrics) Expose(states map[State]int, queueDepth int, breakers map[string]int, resultEntries int) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP pathfinderd_jobs current number of jobs by lifecycle state\n")
	w("# TYPE pathfinderd_jobs gauge\n")
	for _, st := range States() {
		w("pathfinderd_jobs{state=%q} %d\n", string(st), states[st])
	}

	w("# HELP pathfinderd_queue_depth jobs waiting in the bounded queue\n")
	w("# TYPE pathfinderd_queue_depth gauge\n")
	w("pathfinderd_queue_depth %d\n", queueDepth)

	w("# HELP pathfinderd_workers size of the worker pool\n")
	w("# TYPE pathfinderd_workers gauge\n")
	w("pathfinderd_workers %d\n", m.workers)

	w("# HELP pathfinderd_jobs_submitted_total jobs accepted, by experiment\n")
	w("# TYPE pathfinderd_jobs_submitted_total counter\n")
	for _, exp := range sortedKeys(m.submitted) {
		w("pathfinderd_jobs_submitted_total{experiment=%q} %d\n", exp, m.submitted[exp])
	}

	w("# HELP pathfinderd_jobs_started_total jobs picked up by a worker\n")
	w("# TYPE pathfinderd_jobs_started_total counter\n")
	w("pathfinderd_jobs_started_total %d\n", m.started)

	w("# HELP pathfinderd_jobs_finished_total jobs reaching a terminal state, by experiment and state\n")
	w("# TYPE pathfinderd_jobs_finished_total counter\n")
	for _, exp := range sortedKeys(m.finished) {
		byState := m.finished[exp]
		for _, st := range States() {
			if n, ok := byState[st]; ok {
				w("pathfinderd_jobs_finished_total{experiment=%q,state=%q} %d\n", exp, string(st), n)
			}
		}
	}

	w("# HELP pathfinderd_job_retries_total failed attempts re-queued under the retry policy, by experiment\n")
	w("# TYPE pathfinderd_job_retries_total counter\n")
	for _, exp := range sortedKeys(m.retried) {
		w("pathfinderd_job_retries_total{experiment=%q} %d\n", exp, m.retried[exp])
	}

	w("# HELP pathfinderd_job_failures_total terminal failures by experiment and class\n")
	w("# TYPE pathfinderd_job_failures_total counter\n")
	for _, exp := range sortedKeys(m.failures) {
		byClass := m.failures[exp]
		for _, class := range []failureClass{failTimeout, failPanic, failError} {
			if n, ok := byClass[class]; ok {
				w("pathfinderd_job_failures_total{experiment=%q,class=%q} %d\n", exp, string(class), n)
			}
		}
	}

	w("# HELP pathfinderd_result_cache_hits_total jobs served from the result cache, by experiment\n")
	w("# TYPE pathfinderd_result_cache_hits_total counter\n")
	for _, exp := range sortedKeys(m.rcHits) {
		w("pathfinderd_result_cache_hits_total{experiment=%q} %d\n", exp, m.rcHits[exp])
	}

	w("# HELP pathfinderd_result_cache_misses_total jobs that missed the result cache, by experiment\n")
	w("# TYPE pathfinderd_result_cache_misses_total counter\n")
	for _, exp := range sortedKeys(m.rcMisses) {
		w("pathfinderd_result_cache_misses_total{experiment=%q} %d\n", exp, m.rcMisses[exp])
	}

	w("# HELP pathfinderd_result_cache_dedup_total jobs deduplicated onto an identical in-flight run, by experiment\n")
	w("# TYPE pathfinderd_result_cache_dedup_total counter\n")
	for _, exp := range sortedKeys(m.rcDedup) {
		w("pathfinderd_result_cache_dedup_total{experiment=%q} %d\n", exp, m.rcDedup[exp])
	}

	w("# HELP pathfinderd_result_cache_entries results currently held in the bounded LRU\n")
	w("# TYPE pathfinderd_result_cache_entries gauge\n")
	w("pathfinderd_result_cache_entries %d\n", resultEntries)

	w("# HELP pathfinderd_jobs_recovered_total jobs re-queued from the journal at startup\n")
	w("# TYPE pathfinderd_jobs_recovered_total counter\n")
	w("pathfinderd_jobs_recovered_total %d\n", m.recovered)

	w("# HELP pathfinderd_breaker_state per-experiment circuit breaker (0 closed, 1 half-open, 2 open)\n")
	w("# TYPE pathfinderd_breaker_state gauge\n")
	for _, exp := range sortedKeys(breakers) {
		w("pathfinderd_breaker_state{experiment=%q} %d\n", exp, breakers[exp])
	}

	w("# HELP pathfinderd_job_duration_seconds wall time per finished job\n")
	w("# TYPE pathfinderd_job_duration_seconds histogram\n")
	for _, exp := range sortedKeys(m.latency) {
		h := m.latency[exp]
		cum := uint64(0)
		for i, ub := range durationBuckets {
			cum += h.counts[i]
			w("pathfinderd_job_duration_seconds_bucket{experiment=%q,le=%q} %d\n", exp, trimFloat(ub), cum)
		}
		cum += h.counts[len(durationBuckets)]
		w("pathfinderd_job_duration_seconds_bucket{experiment=%q,le=\"+Inf\"} %d\n", exp, cum)
		w("pathfinderd_job_duration_seconds_sum{experiment=%q} %g\n", exp, h.sum)
		w("pathfinderd_job_duration_seconds_count{experiment=%q} %d\n", exp, h.n)
	}

	sim := []struct {
		name string
		v    uint64
	}{
		{"instructions", m.sim.Instructions},
		{"cycles", m.sim.Cycles},
		{"cond_branches", m.sim.CondBranches},
		{"taken_branches", m.sim.TakenBranches},
		{"mispredicts", m.sim.Mispredicts},
		{"transient_instrs", m.sim.TransientInstrs},
		{"runs", m.sim.Runs},
	}
	w("# HELP pathfinderd_sim_events_total simulated-machine counters aggregated over finished jobs\n")
	w("# TYPE pathfinderd_sim_events_total counter\n")
	for _, c := range sim {
		w("pathfinderd_sim_events_total{event=%q} %d\n", c.name, c.v)
	}

	// Sweep-planner and snapshot-store telemetry lives in process-global
	// harness counters (the warm cache is shared across jobs), so it is read
	// live at scrape time rather than accumulated per job here.
	groups, cells, shared, pfHits, pfMisses := harness.PlannerStats()
	w("# HELP pathfinderd_sweep_planner_groups_total shared-prefix groups executed by the sweep planner\n")
	w("# TYPE pathfinderd_sweep_planner_groups_total counter\n")
	w("pathfinderd_sweep_planner_groups_total %d\n", groups)
	w("# HELP pathfinderd_sweep_planner_cells_total sweep cells executed under the planner\n")
	w("# TYPE pathfinderd_sweep_planner_cells_total counter\n")
	w("pathfinderd_sweep_planner_cells_total %d\n", cells)
	w("# HELP pathfinderd_sweep_planner_shared_cells_total cells that reused a group's shared warm prefix instead of retraining\n")
	w("# TYPE pathfinderd_sweep_planner_shared_cells_total counter\n")
	w("pathfinderd_sweep_planner_shared_cells_total %d\n", shared)
	w("# HELP pathfinderd_sweep_planner_prefetch_total pipelined prefix prefetches from the snapshot store, by result\n")
	w("# TYPE pathfinderd_sweep_planner_prefetch_total counter\n")
	w("pathfinderd_sweep_planner_prefetch_total{result=\"hit\"} %d\n", pfHits)
	w("pathfinderd_sweep_planner_prefetch_total{result=\"miss\"} %d\n", pfMisses)

	whits, wmisses := harness.SnapStoreStats()
	w("# HELP pathfinderd_warmcache_store_requests_total warm-cache lookups that fell through to the snapshot store, by result\n")
	w("# TYPE pathfinderd_warmcache_store_requests_total counter\n")
	w("pathfinderd_warmcache_store_requests_total{result=\"hit\"} %d\n", whits)
	w("pathfinderd_warmcache_store_requests_total{result=\"miss\"} %d\n", wmisses)

	if st := harness.InstalledSnapStore(); st != nil {
		hits, misses, puts, evictions, bytes, entries := st.Stats()
		w("# HELP pathfinderd_snapshot_store_ops_total on-disk snapshot store operations, by op\n")
		w("# TYPE pathfinderd_snapshot_store_ops_total counter\n")
		w("pathfinderd_snapshot_store_ops_total{op=\"hit\"} %d\n", hits)
		w("pathfinderd_snapshot_store_ops_total{op=\"miss\"} %d\n", misses)
		w("pathfinderd_snapshot_store_ops_total{op=\"put\"} %d\n", puts)
		w("pathfinderd_snapshot_store_ops_total{op=\"evict\"} %d\n", evictions)
		w("# HELP pathfinderd_snapshot_store_bytes bytes resident in the snapshot store\n")
		w("# TYPE pathfinderd_snapshot_store_bytes gauge\n")
		w("pathfinderd_snapshot_store_bytes %d\n", bytes)
		w("# HELP pathfinderd_snapshot_store_entries snapshots resident in the snapshot store\n")
		w("# TYPE pathfinderd_snapshot_store_entries gauge\n")
		w("pathfinderd_snapshot_store_entries %d\n", entries)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// trimFloat renders a bucket bound the way Prometheus clients do (no
// trailing zeros, no scientific notation in this range).
func trimFloat(f float64) string {
	if f == math.Trunc(f) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
