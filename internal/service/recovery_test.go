package service

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/cpu"
)

// echoRegistry returns a registry with a trivial "echo" experiment that
// reports the seed it ran with.
func echoRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	err := reg.Register(Experiment{
		Name:        "echo",
		Description: "test: returns its seed",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if err := ctx.Err(); err != nil {
				return nil, cpu.Counters{}, err
			}
			return map[string]int64{"seed": p.Seed}, cpu.Counters{Runs: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestCrashRecovery pre-seeds a journal with the exact state a SIGKILL
// leaves behind — a finished job, a job mid-run, a queued job, a job whose
// crash consumed its last attempt, and a torn tail line — then Opens the
// service on it and verifies every journaled job is accounted for with no
// lost or duplicated IDs.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		// job 1 finished before the crash: must restore terminal, result intact.
		`{"op":"submit","job":"job-000001","experiment":"echo","params":{"seed":11},"timeout_ms":60000,"time":"2026-08-06T12:00:00Z"}`,
		`{"op":"start","job":"job-000001","attempt":1,"time":"2026-08-06T12:00:01Z"}`,
		`{"op":"finish","job":"job-000001","state":"done","result":{"seed":11},"time":"2026-08-06T12:00:02Z"}`,
		// job 2 was running when the process died: one start journaled.
		`{"op":"submit","job":"job-000002","experiment":"echo","params":{"seed":22},"timeout_ms":60000,"time":"2026-08-06T12:00:03Z"}`,
		`{"op":"start","job":"job-000002","attempt":1,"time":"2026-08-06T12:00:04Z"}`,
		// job 3 never left the queue.
		`{"op":"submit","job":"job-000003","experiment":"echo","params":{"seed":33},"timeout_ms":60000,"time":"2026-08-06T12:00:05Z"}`,
		// job 4 crashed on its second and final attempt.
		`{"op":"submit","job":"job-000004","experiment":"echo","params":{"seed":44},"timeout_ms":60000,"time":"2026-08-06T12:00:06Z"}`,
		`{"op":"start","job":"job-000004","attempt":1,"time":"2026-08-06T12:00:07Z"}`,
		`{"op":"retry","job":"job-000004","attempt":1,"error":"transient","time":"2026-08-06T12:00:08Z"}`,
		`{"op":"start","job":"job-000004","attempt":2,"time":"2026-08-06T12:00:09Z"}`,
		// torn tail from the crash itself.
		`{"op":"submit","job":"job-0000`,
	)

	s, err := Open(Config{
		Workers: 2, QueueDepth: 16, DataDir: dir, MaxAttempts: 2,
		RetryBackoff: time.Millisecond, Registry: echoRegistry(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	waitFor(t, 10*time.Second, "recovered jobs to finish", func() bool {
		for _, id := range []string{"job-000002", "job-000003"} {
			v, err := s.Get(id)
			if err != nil || !v.State.terminal() {
				return false
			}
		}
		return true
	})

	v1, err := s.Get("job-000001")
	if err != nil || v1.State != StateDone || string(v1.Result) != `{"seed":11}` {
		t.Fatalf("finished job not restored intact: %+v, err=%v", v1, err)
	}
	v2, _ := s.Get("job-000002")
	if v2.State != StateDone || v2.Attempts != 2 {
		t.Fatalf("mid-run job: state=%s attempts=%d, want done on its second attempt", v2.State, v2.Attempts)
	}
	if string(v2.Result) != `{"seed":22}` {
		t.Fatalf("mid-run job re-ran with wrong params: %s", v2.Result)
	}
	v3, _ := s.Get("job-000003")
	if v3.State != StateDone || v3.Attempts != 1 {
		t.Fatalf("queued job: state=%s attempts=%d, want done first try", v3.State, v3.Attempts)
	}
	v4, _ := s.Get("job-000004")
	if v4.State != StateFailed || !strings.Contains(v4.Error, "exhausted the attempt budget") {
		t.Fatalf("budget-exhausted job: state=%s err=%q, want failed on recovery", v4.State, v4.Error)
	}

	// Sequence numbers resume past the replayed maximum: no ID reuse.
	v5, err := s.Submit("echo", Params{Seed: 55}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if v5.ID != "job-000005" {
		t.Fatalf("post-recovery submit got ID %s, want job-000005", v5.ID)
	}
	if got := len(s.List(ListFilter{})); got != 5 {
		t.Fatalf("job table holds %d jobs, want 5 (4 recovered + 1 new)", got)
	}

	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if n := metricValue(t, exp, "pathfinderd_jobs_recovered_total"); n != 2 {
		t.Fatalf("recovered_total = %d, want 2 (jobs 2 and 3)", n)
	}
}

// TestRecoveryAcrossRestart is the same contract end to end with a real
// first life: run jobs under one durable Service, shut down with work still
// queued (simulating at least the pending half of a crash), reopen on the
// same directory, and require the second life to see every job.
func TestRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := Open(Config{Workers: 1, QueueDepth: 16, DataDir: dir, Registry: echoRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := s1.Submit("echo", Params{Seed: int64(i + 1)}, "", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	waitFor(t, 10*time.Second, "first life to finish its jobs", func() bool {
		for _, id := range ids {
			v, err := s1.Get(id)
			if err != nil || v.State != StateDone {
				return false
			}
		}
		return true
	})
	shutdown(t, s1)

	s2, err := Open(Config{Workers: 1, QueueDepth: 16, DataDir: dir, Registry: echoRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	for i, id := range ids {
		v, err := s2.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across restart: %v", id, err)
		}
		if v.State != StateDone || !strings.Contains(string(v.Result), `"seed"`) {
			t.Fatalf("job %s: state=%s result=%s, want restored done", id, v.State, v.Result)
		}
		if want := fmt.Sprintf(`{"seed":%d}`, i+1); string(v.Result) != want {
			t.Fatalf("job %s result %s, want %s", id, v.Result, want)
		}
	}
	v, err := s2.Submit("echo", Params{Seed: 9}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-000004" {
		t.Fatalf("second-life submit got %s, want job-000004", v.ID)
	}
}
