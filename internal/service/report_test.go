package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBuildReportCanonical: rows are sorted by (experiment, params), arch
// names are canonicalized, and volatile fields (IDs, timestamps, attempts)
// never appear — so reports are comparable across schedulers.
func TestBuildReportCanonical(t *testing.T) {
	jobs := []JobView{
		{ID: "job-9", Experiment: "fig4", Params: Params{Arch: "skylake", Seed: 2}, State: StateDone, Attempts: 3},
		{ID: "job-1", Experiment: "aes", Params: Params{Arch: "Alder Lake", Seed: 1}, State: StateDone},
		{ID: "job-5", Experiment: "aes", Params: Params{Arch: "alderlake", Seed: 1}, State: StateFailed, Error: "boom"},
	}
	rep := BuildReport(jobs)
	if rep.Total != 3 {
		t.Fatalf("total = %d, want 3", rep.Total)
	}
	if rep.Rows[0].Experiment != "aes" || rep.Rows[2].Experiment != "fig4" {
		t.Errorf("rows not sorted by experiment: %v", rep.Rows)
	}
	// "Alder Lake" and "alderlake" canonicalize identically, so the two aes
	// rows sort by the same params key and the report never leaks spelling.
	if rep.Rows[0].Params.Arch != rep.Rows[1].Params.Arch {
		t.Errorf("arch spelling not canonicalized: %q vs %q",
			rep.Rows[0].Params.Arch, rep.Rows[1].Params.Arch)
	}
	if !rep.Complete() {
		t.Error("report with only terminal rows should be complete")
	}

	// Shuffled input renders byte-identically.
	perm := []JobView{jobs[2], jobs[0], jobs[1]}
	a, err := BuildReport(jobs).Render()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport(perm).Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("report bytes depend on input order")
	}
}

func TestReportCompletePending(t *testing.T) {
	rep := BuildReport([]JobView{{Experiment: "aes", State: StateRunning}})
	if rep.Complete() {
		t.Error("running job should leave the report incomplete")
	}
}

// TestResolveIdempotent: resolving already-resolved params is a no-op, the
// property the cluster relies on (the coordinator and a worker's service
// both resolve the same submission).
func TestResolveIdempotent(t *testing.T) {
	r := NewRegistry()
	for _, p := range []Params{
		{},
		{Noise: -0.5},
		{Arch: "skylake", Seed: 42, Trials: 3, Noise: 0.08},
	} {
		once, err := r.Resolve("aes", p)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := r.Resolve("aes", once)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(once)
		b, _ := json.Marshal(twice)
		if !bytes.Equal(a, b) {
			t.Errorf("Resolve not idempotent: %s vs %s", a, b)
		}
	}
	p, _ := r.Resolve("aes", Params{Noise: -3})
	if p.Noise != -1 {
		t.Errorf("negative noise canonicalizes to -1, got %g", p.Noise)
	}
	if p.EffectiveNoise() != 0 {
		t.Errorf("EffectiveNoise(-1) = %g, want 0", p.EffectiveNoise())
	}
}
