package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// registerBlocker adds an experiment that parks until released or
// cancelled, reporting each start on the started channel.
func registerBlocker(t *testing.T, reg *Registry, name string, started chan struct{}, release chan struct{}) {
	t.Helper()
	err := reg.Register(Experiment{
		Name:        name,
		Description: "test: parks until released or cancelled",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			if started != nil {
				started <- struct{}{}
			}
			select {
			case <-release:
				return map[string]string{"outcome": "released"}, cpu.Counters{}, nil
			case <-ctx.Done():
				return nil, cpu.Counters{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func shutdown(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// metricValue extracts one sample value from a Prometheus text exposition.
func metricValue(t *testing.T, exposition, sample string) int {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v int
			if _, err := fmt.Sscanf(line[len(sample)+1:], "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q missing from exposition:\n%s", sample, exposition)
	return 0
}

// TestBatchSweepAcrossArchs is the acceptance scenario: a ≥16-job Figure 4
// sweep across both 194-doublet microarchitectures submitted through the
// HTTP API, executed by the worker pool, with one in-flight job cancelled
// via the API and /metrics scraped for consistent state counts.
func TestBatchSweepAcrossArchs(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, DefaultTimeout: time.Minute})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A blocking job to cancel while it is genuinely in flight.
	started := make(chan struct{}, 1)
	registerBlocker(t, s.Registry(), "block", started, make(chan struct{}))
	status, body := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Experiment: "block"})
	if status != http.StatusAccepted {
		t.Fatalf("submit block: status %d: %s", status, body)
	}
	var blocked JobView
	if err := json.Unmarshal(body, &blocked); err != nil {
		t.Fatal(err)
	}
	<-started // the job is running on a worker now

	// The 16-job sweep: 8 seeds × both µarch configs.
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	status, body = postJSON(t, srv.URL+"/v1/batch", BatchRequest{
		Experiment: "fig4",
		Params:     Params{Doublets: 2},
		Sweep:      &Sweep{Archs: []string{"alderlake", "raptorlake"}, Seeds: seeds},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit batch: status %d: %s", status, body)
	}
	var batchResp struct {
		Batch string    `json:"batch"`
		Total int       `json:"total"`
		Jobs  []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &batchResp); err != nil {
		t.Fatal(err)
	}
	if batchResp.Total != 16 {
		t.Fatalf("batch admitted %d jobs, want 16", batchResp.Total)
	}

	// Cancel the in-flight blocker through the API.
	status, body = postJSON(t, srv.URL+"/v1/jobs/"+blocked.ID+"/cancel", struct{}{})
	if status != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", status, body)
	}
	waitFor(t, 10*time.Second, "blocker to reach cancelled", func() bool {
		v, err := s.Get(blocked.ID)
		return err == nil && v.State == StateCancelled
	})

	// All sweep jobs complete.
	waitFor(t, 120*time.Second, "sweep completion", func() bool {
		c := s.StateCounts()
		return c[StatePending] == 0 && c[StateRunning] == 0
	})

	// Every job is done, carries simulator counters, and its result matches
	// a direct driver invocation with the same (arch, seed).
	for _, jv := range batchResp.Jobs {
		status, body = getBody(t, srv.URL+"/v1/jobs/"+jv.ID)
		if status != http.StatusOK {
			t.Fatalf("get %s: status %d", jv.ID, status)
		}
		var got JobView
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.State != StateDone {
			t.Fatalf("job %s (%+v): state %s, err %q", got.ID, got.Params, got.State, got.Error)
		}
		if got.SimStats == nil || got.SimStats.CondBranches == 0 {
			t.Fatalf("job %s: missing aggregated simulator counters", got.ID)
		}
		var rep harness.Fig4Report
		if err := json.Unmarshal(got.Result, &rep); err != nil {
			t.Fatalf("job %s result: %v", got.ID, err)
		}
		arch, err := ArchConfig(got.Params.Arch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := harness.Fig4ReadDoublet(context.Background(),
			harness.Options{Arch: arch, Seed: got.Params.Seed}, got.Params.Doublets)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != len(want.Rows) {
			t.Fatalf("job %s: %d rows, want %d", got.ID, len(rep.Rows), len(want.Rows))
		}
		for i := range rep.Rows {
			if rep.Rows[i] != want.Rows[i] {
				t.Fatalf("job %s row %d: got %+v, want %+v", got.ID, i, rep.Rows[i], want.Rows[i])
			}
		}
	}

	// Batch rollup agrees.
	status, body = getBody(t, srv.URL+"/v1/batch/"+batchResp.Batch)
	if status != http.StatusOK {
		t.Fatalf("get batch: status %d", status)
	}
	var bv BatchView
	if err := json.Unmarshal(body, &bv); err != nil {
		t.Fatal(err)
	}
	if bv.Total != 16 || bv.ByState[StateDone] != 16 {
		t.Fatalf("batch rollup: %+v", bv)
	}

	// /metrics state counts are consistent with the job table: 16 sweep jobs
	// done, the blocker cancelled, nothing pending or running.
	status, body = getBody(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	exposition := string(body)
	checks := map[string]int{
		`pathfinderd_jobs{state="pending"}`:                                     0,
		`pathfinderd_jobs{state="running"}`:                                     0,
		`pathfinderd_jobs{state="done"}`:                                        16,
		`pathfinderd_jobs{state="failed"}`:                                      0,
		`pathfinderd_jobs{state="cancelled"}`:                                   1,
		`pathfinderd_jobs_submitted_total{experiment="fig4"}`:                   16,
		`pathfinderd_jobs_finished_total{experiment="fig4",state="done"}`:       16,
		`pathfinderd_jobs_finished_total{experiment="block",state="cancelled"}`: 1,
		`pathfinderd_job_duration_seconds_count{experiment="fig4"}`:             16,
	}
	for sample, want := range checks {
		if got := metricValue(t, exposition, sample); got != want {
			t.Errorf("%s = %d, want %d", sample, got, want)
		}
	}
	if v := metricValue(t, exposition, `pathfinderd_sim_events_total{event="mispredicts"}`); v == 0 {
		t.Errorf("aggregated mispredict counter is zero after 16 experiments")
	}

	// Obs1 through the service: Raptor Lake and Alder Lake results agree for
	// equal seeds (identical PHR structure).
	for _, seed := range seeds {
		var byArch [2]json.RawMessage
		for i, arch := range []string{"alderlake", "raptorlake"} {
			jobs := s.List(ListFilter{Batch: batchResp.Batch})
			for _, j := range jobs {
				if j.Params.Arch == arch && j.Params.Seed == seed {
					byArch[i] = j.Result
				}
			}
		}
		var a, b harness.Fig4Report
		if err := json.Unmarshal(byArch[0], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(byArch[1], &b); err != nil {
			t.Fatal(err)
		}
		for i := range a.Rows {
			if a.Rows[i] != b.Rows[i] {
				t.Errorf("seed %d doublet %d: alderlake %+v != raptorlake %+v (Observation 1)",
					seed, i, a.Rows[i], b.Rows[i])
			}
		}
	}
}

// TestParallelExecution proves the pool genuinely runs jobs concurrently:
// four blocking jobs must all be resident on workers at the same time.
func TestParallelExecution(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 16})
	defer shutdown(t, s)

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	registerBlocker(t, s.Registry(), "block", started, release)
	for i := 0; i < 4; i++ {
		if _, err := s.Submit("block", Params{}, "", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/4 jobs running concurrently", i)
		}
	}
	if got := s.StateCounts()[StateRunning]; got != 4 {
		t.Fatalf("running = %d, want 4", got)
	}
	close(release)
	waitFor(t, 10*time.Second, "all jobs done", func() bool {
		return s.StateCounts()[StateDone] == 4
	})
}

// TestQueueBacklogAndPendingCancel exercises the bounded queue and
// cancellation of a job that never reached a worker.
func TestQueueBacklogAndPendingCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer shutdown(t, s)

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlocker(t, s.Registry(), "block", started, release)

	if _, err := s.Submit("block", Params{}, "", time.Minute); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied

	queued, err := s.Submit("table1", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("table1", Params{}, "", time.Minute); err != nil {
		t.Fatal(err)
	}
	// Queue (depth 2) is full now.
	if _, err := s.Submit("table1", Params{}, "", time.Minute); err != ErrQueueFull {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	// Cancel one still-pending job; it must never run.
	v, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Fatalf("pending cancel state = %s", v.State)
	}
	close(release)
	waitFor(t, 10*time.Second, "backlog to drain", func() bool {
		c := s.StateCounts()
		return c[StateDone] == 2 && c[StateCancelled] == 1
	})
	got, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled || got.Result != nil {
		t.Fatalf("cancelled pending job ran anyway: %+v", got)
	}
}

// TestJobTimeout verifies the per-job deadline reaches the runner's context.
func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	registerBlocker(t, s.Registry(), "block", nil, make(chan struct{}))

	v, err := s.Submit("block", Params{}, "", 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "timeout to fire", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State == StateFailed
	})
	got, _ := s.Get(v.ID)
	if !strings.Contains(got.Error, "timeout") {
		t.Fatalf("error = %q, want a timeout message", got.Error)
	}
}

// TestPanicRecovery verifies a panicking experiment fails its job without
// killing the worker.
func TestPanicRecovery(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)
	if err := s.Registry().Register(Experiment{
		Name:        "panic",
		Description: "test: panics",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			panic("boom")
		},
	}); err != nil {
		t.Fatal(err)
	}

	v, err := s.Submit("panic", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "panic job to fail", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State == StateFailed
	})
	got, _ := s.Get(v.ID)
	if !strings.Contains(got.Error, "boom") {
		t.Fatalf("error = %q, want the panic payload", got.Error)
	}

	// The worker survived: the next job still runs.
	v2, err := s.Submit("table1", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "follow-up job", func() bool {
		got, err := s.Get(v2.ID)
		return err == nil && got.State == StateDone
	})
}

// TestShutdownDrains verifies graceful drain: queued jobs finish, new
// submissions are refused.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		v, err := s.Submit("table1", Params{}, "", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		got, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateDone {
			t.Fatalf("job %s not drained: %s", id, got.State)
		}
	}
	if _, err := s.Submit("table1", Params{}, "", time.Minute); err != ErrDraining {
		t.Fatalf("submit after drain: err = %v, want ErrDraining", err)
	}
}

// TestRegistryValidation covers fail-fast submission errors and default
// filling.
func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Resolve("no-such-experiment", Params{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := reg.Resolve("fig4", Params{Arch: "pentium4"}); err == nil {
		t.Fatal("unknown arch accepted")
	}
	p, err := reg.Resolve("fig7", Params{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size != 16 || p.Quality != 80 || p.Images != 2 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	names := make(map[string]bool)
	for _, e := range reg.List() {
		names[e.Name] = true
	}
	for _, want := range []string{"table1", "obs2", "fig4", "readphr", "fig5", "fig6", "table2", "fig7", "aes", "aes_grid", "mitigations"} {
		if !names[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

// TestAESGridExperiment: aes_grid resolves grid defaults, rejects unknown
// grid archs, and a small 2×2×1 grid runs to completion with one report
// point per cell in arch-major order.
func TestAESGridExperiment(t *testing.T) {
	reg := NewRegistry()
	p, err := reg.Resolve("aes_grid", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Archs) != 1 || p.Archs[0] != "alderlake" || len(p.Seeds) != 1 || len(p.Noises) != 1 {
		t.Fatalf("grid defaults not applied: %+v", p)
	}
	if _, err := reg.Resolve("aes_grid", Params{Archs: []string{"alderlake", "pentium4"}}); err == nil {
		t.Fatal("unknown grid arch accepted")
	}

	s := New(Config{Workers: 1, QueueDepth: 4})
	v, err := s.Submit("aes_grid", Params{
		Trials: 2,
		Archs:  []string{"alderlake", "skylake"},
		Seeds:  []int64{1, 2},
	}, "", 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, s)
	got, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("aes_grid job ended %s: %s", got.State, got.Error)
	}
	var rep struct {
		Points []struct {
			Arch string `json:"arch"`
			Seed int64  `json:"seed"`
		} `json:"points"`
	}
	if err := json.Unmarshal(got.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("grid produced %d points, want 4", len(rep.Points))
	}
	if rep.Points[0].Arch != "Alder Lake" || rep.Points[0].Seed != 1 ||
		rep.Points[3].Arch != "Skylake" || rep.Points[3].Seed != 2 {
		t.Fatalf("grid order wrong: %+v", rep.Points)
	}
}

// TestEndpointsSmall covers the remaining endpoints: experiments listing,
// job listing filters, healthz, and error mapping.
func TestEndpointsSmall(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	defer shutdown(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	status, body := getBody(t, srv.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", status, body)
	}

	status, body = getBody(t, srv.URL+"/v1/experiments")
	if status != http.StatusOK || !strings.Contains(string(body), `"table2"`) {
		t.Fatalf("experiments: %d %s", status, body)
	}

	status, _ = getBody(t, srv.URL+"/v1/jobs/job-999999")
	if status != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", status)
	}

	status, body = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Experiment: "bogus"})
	if status != http.StatusBadRequest {
		t.Fatalf("bogus experiment: status %d %s", status, body)
	}

	// Explicit job-list batches work too.
	status, body = postJSON(t, srv.URL+"/v1/batch", BatchRequest{Jobs: []SubmitRequest{
		{Experiment: "table1"},
		{Experiment: "readphr", Params: Params{Trials: 1, Doublets: 8}},
	}})
	if status != http.StatusAccepted {
		t.Fatalf("job-list batch: status %d %s", status, body)
	}
	var batchResp struct {
		Batch string `json:"batch"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(body, &batchResp); err != nil {
		t.Fatal(err)
	}
	if batchResp.Total != 2 {
		t.Fatalf("batch total = %d, want 2", batchResp.Total)
	}
	waitFor(t, 30*time.Second, "batch completion", func() bool {
		c := s.StateCounts()
		return c[StateDone] == 2
	})

	status, body = getBody(t, srv.URL+"/v1/jobs?experiment=table1")
	if status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	var list struct {
		Total int       `json:"total"`
		Jobs  []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 1 || list.Jobs[0].Experiment != "table1" {
		t.Fatalf("filtered list: %+v", list)
	}
}
