package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pathfinder/internal/cpu"
)

// Sentinel errors surfaced to API handlers.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 503.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by Submit after Shutdown began.
	ErrDraining = errors.New("service: shutting down, not accepting jobs")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("service: no such job")
	// ErrFinished is returned by Cancel on an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
)

// Config tunes a Service. The zero value is usable: GOMAXPROCS workers, a
// 256-deep queue, a 2-minute default per-job timeout, the standard
// experiment registry, and a discarding logger.
type Config struct {
	Workers        int              // worker goroutines; <=0 means GOMAXPROCS
	QueueDepth     int              // bounded queue capacity; <=0 means 256
	DefaultTimeout time.Duration    // per-job timeout when the submission names none
	Registry       *Registry        // experiment registry; nil means NewRegistry()
	Logger         *slog.Logger     // structured logger; nil discards
	Clock          func() time.Time // test hook; nil means time.Now
}

// Service owns the job table, the bounded queue, and the worker pool. All
// experiment execution flows through it; the HTTP layer in server.go is a
// thin translation onto these methods.
type Service struct {
	cfg     Config
	reg     *Registry
	log     *slog.Logger
	metrics *Metrics
	now     func() time.Time

	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for stable listings
	seq      uint64
	draining bool
}

// New builds a Service and starts its worker pool.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Registry,
		log:     cfg.Logger,
		metrics: newMetrics(cfg.Workers),
		now:     cfg.Clock,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	s.log.Info("service started", "workers", cfg.Workers, "queue_depth", cfg.QueueDepth)
	return s
}

// Registry exposes the experiment registry (tests register extra specs).
func (s *Service) Registry() *Registry { return s.reg }

// Workers returns the pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueDepth returns the number of jobs waiting in the queue right now.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Submit validates, records, and enqueues one job. timeout <= 0 selects the
// service default. The returned view is the job's pending snapshot.
func (s *Service) Submit(experiment string, p Params, batch string, timeout time.Duration) (JobView, error) {
	resolved, err := s.reg.Resolve(experiment, p)
	if err != nil {
		return JobView{}, err
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: experiment,
		params:     resolved,
		batch:      batch,
		timeout:    timeout,
		state:      StatePending,
		submitted:  s.now(),
	}
	// Reserve queue space while holding the lock so the job table and the
	// queue can't disagree about admission.
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	v := j.view()
	s.mu.Unlock()

	s.metrics.jobSubmitted(experiment)
	s.log.Info("job submitted", "job", j.id, "experiment", experiment, "batch", batch)
	return v, nil
}

// SubmitSweep expands a parameter sweep — the cross product of the given
// microarchitectures and seeds over a base Params — into one job per point,
// all tagged with the same batch ID. Empty sweep axes default to the base
// value, so a sweep over only seeds or only archs works naturally.
func (s *Service) SubmitSweep(experiment string, base Params, archs []string, seeds []int64, timeout time.Duration) (string, []JobView, error) {
	if len(archs) == 0 {
		archs = []string{base.Arch}
	}
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	// Validate every axis value up front: a sweep admits all points or none.
	for _, a := range archs {
		if _, err := ArchConfig(a); err != nil {
			return "", nil, err
		}
	}
	if _, err := s.reg.Resolve(experiment, base); err != nil {
		return "", nil, err
	}
	if n, cap := len(archs)*len(seeds), s.cfg.QueueDepth; n > cap {
		return "", nil, fmt.Errorf("%w: sweep of %d jobs exceeds queue depth %d", ErrQueueFull, n, cap)
	}

	s.mu.Lock()
	s.seq++
	batch := fmt.Sprintf("batch-%06d", s.seq)
	s.mu.Unlock()

	views := make([]JobView, 0, len(archs)*len(seeds))
	for _, a := range archs {
		for _, seed := range seeds {
			p := base
			p.Arch = a
			p.Seed = seed
			v, err := s.Submit(experiment, p, batch, timeout)
			if err != nil {
				return batch, views, err
			}
			views = append(views, v)
		}
	}
	s.log.Info("batch submitted", "batch", batch, "experiment", experiment, "jobs", len(views))
	return batch, views, nil
}

// Get returns a job snapshot.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// ListFilter narrows List output; zero fields match everything.
type ListFilter struct {
	State      State
	Batch      string
	Experiment string
}

// List returns snapshots of matching jobs in submission order.
func (s *Service) List(f ListFilter) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Batch != "" && j.batch != f.Batch {
			continue
		}
		if f.Experiment != "" && j.experiment != f.Experiment {
			continue
		}
		out = append(out, j.view())
	}
	return out
}

// StateCounts tallies jobs by state. The five counts always sum to the
// total ever submitted, which is what /metrics exposes and what the batch
// status endpoint reports.
func (s *Service) StateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, 5)
	for _, st := range States() {
		out[st] = 0
	}
	for _, j := range s.jobs {
		out[j.state]++
	}
	return out
}

// Cancel aborts a job. A pending job is finalized immediately (workers skip
// it when it surfaces from the queue); a running job has its context
// cancelled and reaches the cancelled state when the runner unwinds.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	if j.state.terminal() {
		v := j.view()
		s.mu.Unlock()
		return v, ErrFinished
	}
	j.cancelRequested = true
	var cancel func()
	if j.state == StatePending {
		j.state = StateCancelled
		j.finished = s.now()
		j.started = j.finished
		s.metrics.jobFinished(j.experiment, StateCancelled, 0, j.stats)
	} else if j.cancel != nil {
		cancel = j.cancel
	}
	v := j.view()
	s.mu.Unlock()

	if cancel != nil {
		cancel()
	}
	s.log.Info("job cancel requested", "job", id, "state", string(v.State))
	return v, nil
}

// Shutdown stops admission, drains the queue, and waits for in-flight jobs.
// If ctx expires first, every remaining job's context is cancelled and
// Shutdown keeps waiting for the workers to unwind, so the pool never
// leaks goroutines.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Shutdown called twice")
	}
	s.draining = true
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("drain deadline hit, cancelling in-flight jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.cancel != nil {
				j.cancelRequested = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	s.log.Info("service drained")
	return err
}

// worker drains the queue until Shutdown closes it.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(id, j)
	}
}

// runJob executes one job with a per-job timeout, panic recovery, and
// metric accounting.
func (s *Service) runJob(workerID int, j *job) {
	s.mu.Lock()
	if j.state != StatePending { // cancelled while queued
		s.mu.Unlock()
		return
	}
	exp, ok := s.reg.Get(j.experiment)
	if !ok {
		// Unregistered between submit and execution; fail rather than panic.
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("experiment %q vanished from the registry", j.experiment)
		j.started = s.now()
		j.finished = j.started
		s.metrics.jobFinished(j.experiment, StateFailed, 0, j.stats)
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	j.state = StateRunning
	j.started = s.now()
	s.metrics.jobStarted(j.experiment)
	s.mu.Unlock()
	defer cancel()

	s.log.Info("job started", "job", j.id, "experiment", j.experiment, "worker", workerID)

	result, stats, err := runRecovered(ctx, exp.Run, j.params)

	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(result)
		if err != nil {
			err = fmt.Errorf("marshaling result: %w", err)
		}
	}

	s.mu.Lock()
	j.cancel = nil
	j.finished = s.now()
	j.stats = stats
	switch {
	case j.cancelRequested:
		j.state = StateCancelled
		if err == nil {
			err = context.Canceled
		}
		j.errMsg = err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("timeout after %s", j.timeout)
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
		j.result = raw
	}
	state, dur := j.state, j.finished.Sub(j.started)
	s.metrics.jobFinished(j.experiment, state, dur, stats)
	s.mu.Unlock()

	s.log.Info("job finished", "job", j.id, "experiment", j.experiment,
		"state", string(state), "duration", dur, "err", j.errMsg)
}

// runRecovered invokes the runner, converting a panic into an error so one
// bad experiment cannot take down a worker goroutine.
func runRecovered(ctx context.Context, run Runner, p Params) (result any, stats cpu.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run(ctx, p)
}
