package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"pathfinder/internal/cpu"
	"pathfinder/internal/harness"
)

// Sentinel errors surfaced to API handlers.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the HTTP layer maps it to 503.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining is returned by Submit after Shutdown began.
	ErrDraining = errors.New("service: shutting down, not accepting jobs")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("service: no such job")
	// ErrFinished is returned by Cancel on an already-terminal job.
	ErrFinished = errors.New("service: job already finished")
	// ErrBreakerOpen is returned by Submit while an experiment's circuit
	// breaker is open after repeated failures; the HTTP layer maps it to 503.
	ErrBreakerOpen = errors.New("service: circuit breaker open")
)

// Config tunes a Service. The zero value is usable: GOMAXPROCS workers, a
// 256-deep queue, a 2-minute default per-job timeout, the standard
// experiment registry, a discarding logger, no persistence, and no retries.
type Config struct {
	Workers        int              // worker goroutines; <=0 means GOMAXPROCS
	QueueDepth     int              // bounded queue capacity; <=0 means 256
	DefaultTimeout time.Duration    // per-job timeout when the submission names none
	Registry       *Registry        // experiment registry; nil means NewRegistry()
	Logger         *slog.Logger     // structured logger; nil discards
	Clock          func() time.Time // test hook; nil means time.Now

	// DataDir enables durability: every job transition is appended to
	// <DataDir>/journal.jsonl before it is acknowledged, and Open replays
	// the journal on startup, re-queuing jobs that were pending or running
	// when the previous process died. Empty keeps the service in-memory.
	DataDir string

	// MaxAttempts is the per-job attempt budget: a job whose runner fails is
	// re-queued with backoff until the budget is spent. <=0 means 1 — every
	// failure is terminal, the historical behavior.
	MaxAttempts int

	// RetryBackoff is the base delay before a failed job re-enters the
	// queue; attempt N waits ~2^(N-1) times this, with deterministic jitter,
	// capped at 8x. <=0 means 500ms.
	RetryBackoff time.Duration

	// BreakerThreshold is the number of consecutive terminal failures after
	// which an experiment's circuit breaker opens and submissions are
	// rejected with ErrBreakerOpen. <=0 means 5.
	BreakerThreshold int

	// BreakerCooldown is how long an open breaker waits before admitting a
	// probe submission. <=0 means 30s.
	BreakerCooldown time.Duration

	// JournalCompactBytes triggers startup compaction: when the journal at
	// Open time is at least this many bytes, it is rewritten to the minimal
	// record set that replays to the identical job table (one submit, the
	// surviving start count, and the terminal record per job) before new
	// records are appended. Intermediate retry chatter and corrupt tails
	// are dropped; replaying the compacted journal yields byte-identical
	// state. <=0 means 4 MiB.
	JournalCompactBytes int64

	// ResultCacheSize bounds the in-memory result cache: finished results
	// are kept in an LRU keyed by (experiment, canonical resolved params),
	// and an identical later job is served from the cache — or deduplicated
	// onto an identical in-flight run — instead of re-simulated. The
	// drivers are deterministic functions of their resolved parameters, so
	// a cached result is byte-identical to a fresh run's. Journal replay
	// repopulates the cache on startup. <=0 disables caching, the
	// historical behavior.
	ResultCacheSize int
}

// Service owns the job table, the bounded queue, and the worker pool. All
// experiment execution flows through it; the HTTP layer in server.go is a
// thin translation onto these methods.
type Service struct {
	cfg     Config
	reg     *Registry
	log     *slog.Logger
	metrics *Metrics
	now     func() time.Time
	breaker *KeyedBreaker
	retry   harness.Retry
	journal *journal     // nil when Config.DataDir is empty
	results *resultCache // nil when Config.ResultCacheSize <= 0

	queue chan *job
	wg    sync.WaitGroup

	mu          sync.Mutex
	jobs        map[string]*job
	order       []string // submission order, for stable listings
	seq         uint64
	draining    bool
	retryTimers map[string]*time.Timer // pending re-enqueues, by job ID
}

// New builds an in-memory Service and starts its worker pool. Durability
// requires Open; New panics if Config.DataDir is set, because silently
// dropping persistence would be worse.
func New(cfg Config) *Service {
	if cfg.DataDir != "" {
		panic("service: New cannot open a data directory, use Open")
	}
	s, err := Open(cfg)
	if err != nil {
		panic(err) // unreachable: every error path needs a DataDir
	}
	return s
}

// Open builds a Service and starts its worker pool. With Config.DataDir
// set, it first replays <DataDir>/journal.jsonl: jobs that already finished
// are restored terminal (ID, state, result and error intact), and jobs that
// were pending or running when the previous process died are re-queued —
// unless their journaled starts already spent the attempt budget, in which
// case they are finalized failed rather than crash-looped. Job and batch
// sequence numbers resume past the highest replayed ID, so restarts never
// reuse an ID.
func Open(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 500 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}

	var (
		replayed []*replayedJob
		maxSeq   uint64
		jr       *journal
	)
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: creating data dir: %w", err)
		}
		path := filepath.Join(cfg.DataDir, "journal.jsonl")
		var err error
		replayed, maxSeq, err = replayJournal(path, cfg.Logger)
		if err != nil {
			return nil, err
		}
		// Startup compaction: once the journal crosses the size trigger,
		// rewrite it from the replayed state before appending anything new.
		// Compaction failure is logged, not fatal — the oversized journal
		// still replays, and the next restart tries again.
		compactAt := cfg.JournalCompactBytes
		if compactAt <= 0 {
			compactAt = 4 << 20
		}
		if fi, serr := os.Stat(path); serr == nil && fi.Size() >= compactAt {
			if cerr := compactJournal(path, replayed); cerr != nil {
				cfg.Logger.Warn("journal compaction failed", "err", cerr)
			} else if after, aerr := os.Stat(path); aerr == nil {
				cfg.Logger.Info("journal compacted",
					"before_bytes", fi.Size(), "after_bytes", after.Size(), "jobs", len(replayed))
			}
		}
		if jr, err = openJournal(path); err != nil {
			return nil, err
		}
	}

	// The queue must be able to hold every recovered pending job even when
	// the configured depth is smaller than the backlog the crash left.
	pending := 0
	for _, r := range replayed {
		if !r.finished && r.starts < cfg.MaxAttempts {
			pending++
		}
	}
	depth := cfg.QueueDepth
	if pending > depth {
		depth = pending
	}

	s := &Service{
		cfg:         cfg,
		reg:         cfg.Registry,
		log:         cfg.Logger,
		metrics:     newMetrics(cfg.Workers),
		now:         cfg.Clock,
		breaker:     newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock),
		retry:       harness.Retry{Attempts: cfg.MaxAttempts, Backoff: cfg.RetryBackoff},
		journal:     jr,
		results:     newResultCache(cfg.ResultCacheSize),
		queue:       make(chan *job, depth),
		jobs:        make(map[string]*job),
		retryTimers: make(map[string]*time.Timer),
	}
	s.seq = maxSeq
	recovered := s.install(replayed)

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	s.log.Info("service started", "workers", cfg.Workers, "queue_depth", depth,
		"data_dir", cfg.DataDir, "recovered", recovered, "replayed", len(replayed))
	return s, nil
}

// install rebuilds the job table from replayed journal state and re-queues
// the unfinished jobs, returning how many were re-queued. Called before the
// workers start, so no locking is needed yet.
func (s *Service) install(replayed []*replayedJob) int {
	recovered := 0
	// Successes re-seed the result cache in finish order, not submission
	// order: the live process stored each result when its job finished, so
	// when the journal holds more successes than the cache holds entries,
	// the restart must keep the most recently *finished* ones — the same
	// survivors the LRU had before the crash — not the most recently
	// submitted. Oldest-first puts reproduce that order exactly.
	var reseed []*job
	for _, r := range replayed {
		j := &job{
			id:         r.id,
			experiment: r.experiment,
			params:     r.params,
			batch:      r.batch,
			timeout:    r.timeout,
			submitted:  r.submitted,
			attempts:   r.starts,
		}
		if j.timeout <= 0 {
			j.timeout = s.cfg.DefaultTimeout
		}
		switch {
		case r.finished:
			j.state = r.finState
			j.errMsg = r.finErr
			j.result = r.result
			j.stats = r.stats
			j.started = r.lastStart
			j.finished = r.finTime
			if j.started.IsZero() {
				j.started = j.finished
			}
			if s.results != nil && j.state == StateDone && len(j.result) > 0 {
				reseed = append(reseed, j)
			}
		case r.starts >= s.cfg.MaxAttempts:
			// The crash consumed the last attempt; re-running would loop a
			// crashing job forever.
			j.state = StateFailed
			j.errMsg = fmt.Sprintf("recovered after crash: %d journaled start(s) exhausted the attempt budget of %d",
				r.starts, s.cfg.MaxAttempts)
			j.started = r.lastStart
			j.finished = s.now()
			if j.started.IsZero() {
				j.started = j.finished
			}
			s.appendJournal(journalRecord{Op: opFinish, Job: j.id, Time: j.finished, State: j.state, Error: j.errMsg})
			s.log.Warn("job finalized on recovery", "job", j.id, "reason", j.errMsg)
		default:
			j.state = StatePending
			s.queue <- j // capacity reserved above
			recovered++
			s.log.Info("job re-queued on recovery", "job", j.id, "experiment", j.experiment, "attempts_used", j.attempts)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	sort.SliceStable(reseed, func(i, k int) bool {
		if !reseed[i].finished.Equal(reseed[k].finished) {
			return reseed[i].finished.Before(reseed[k].finished)
		}
		return reseed[i].id < reseed[k].id // total order even with equal stamps
	})
	for _, j := range reseed {
		if key, ok := resultKeyFor(j.experiment, j.params); ok {
			s.results.put(key, &resultEntry{result: j.result, stats: j.stats})
		}
	}
	s.metrics.jobsRecovered(recovered)
	return recovered
}

// appendJournal writes one record, logging rather than failing on error: a
// full disk must not take the in-memory service down with it.
func (s *Service) appendJournal(rec journalRecord) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.log.Warn("journal append failed", "op", rec.Op, "job", rec.Job, "err", err)
	}
}

// Registry exposes the experiment registry (tests register extra specs).
func (s *Service) Registry() *Registry { return s.reg }

// Workers returns the pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueDepth returns the number of jobs waiting in the queue right now.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Submit validates, records, and enqueues one job. timeout <= 0 selects the
// service default. The returned view is the job's pending snapshot.
func (s *Service) Submit(experiment string, p Params, batch string, timeout time.Duration) (JobView, error) {
	resolved, err := s.reg.Resolve(experiment, p)
	if err != nil {
		return JobView{}, err
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if err := s.breaker.allow(experiment); err != nil {
		return JobView{}, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobView{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:         fmt.Sprintf("job-%06d", s.seq),
		experiment: experiment,
		params:     resolved,
		batch:      batch,
		timeout:    timeout,
		state:      StatePending,
		submitted:  s.now(),
	}
	// Reserve queue space while holding the lock so the job table and the
	// queue can't disagree about admission.
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		return JobView{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.appendJournal(journalRecord{
		Op: opSubmit, Job: j.id, Time: j.submitted,
		Experiment: experiment, Params: &resolved, Batch: batch,
		TimeoutMS: timeout.Milliseconds(),
	})
	v := j.view()
	s.mu.Unlock()

	s.metrics.jobSubmitted(experiment)
	s.log.Info("job submitted", "job", j.id, "experiment", experiment, "batch", batch)
	return v, nil
}

// SubmitSweep expands a parameter sweep — the cross product of the given
// microarchitectures and seeds over a base Params — into one job per point,
// all tagged with the same batch ID. Empty sweep axes default to the base
// value, so a sweep over only seeds or only archs works naturally.
func (s *Service) SubmitSweep(experiment string, base Params, archs []string, seeds []int64, timeout time.Duration) (string, []JobView, error) {
	if len(archs) == 0 {
		archs = []string{base.Arch}
	}
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	// Validate every axis value up front: a sweep admits all points or none.
	for _, a := range archs {
		if _, err := ArchConfig(a); err != nil {
			return "", nil, err
		}
	}
	if _, err := s.reg.Resolve(experiment, base); err != nil {
		return "", nil, err
	}
	if n, cap := len(archs)*len(seeds), s.cfg.QueueDepth; n > cap {
		return "", nil, fmt.Errorf("%w: sweep of %d jobs exceeds queue depth %d", ErrQueueFull, n, cap)
	}

	s.mu.Lock()
	s.seq++
	batch := fmt.Sprintf("batch-%06d", s.seq)
	s.mu.Unlock()

	views := make([]JobView, 0, len(archs)*len(seeds))
	for _, a := range archs {
		for _, seed := range seeds {
			p := base
			p.Arch = a
			p.Seed = seed
			v, err := s.Submit(experiment, p, batch, timeout)
			if err != nil {
				return batch, views, err
			}
			views = append(views, v)
		}
	}
	s.log.Info("batch submitted", "batch", batch, "experiment", experiment, "jobs", len(views))
	return batch, views, nil
}

// Get returns a job snapshot.
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// ListFilter narrows List output; zero fields match everything.
type ListFilter struct {
	State      State
	Batch      string
	Experiment string
}

// List returns snapshots of matching jobs in submission order.
func (s *Service) List(f ListFilter) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Batch != "" && j.batch != f.Batch {
			continue
		}
		if f.Experiment != "" && j.experiment != f.Experiment {
			continue
		}
		out = append(out, j.view())
	}
	return out
}

// StateCounts tallies jobs by state. The five counts always sum to the
// total ever submitted, which is what /metrics exposes and what the batch
// status endpoint reports.
func (s *Service) StateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, 5)
	for _, st := range States() {
		out[st] = 0
	}
	for _, j := range s.jobs {
		out[j.state]++
	}
	return out
}

// Cancel aborts a job. A pending job is finalized immediately (workers skip
// it when it surfaces from the queue); a running job has its context
// cancelled and reaches the cancelled state when the runner unwinds.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	if j.state.terminal() {
		v := j.view()
		s.mu.Unlock()
		return v, ErrFinished
	}
	j.cancelRequested = true
	var cancel func()
	if j.state == StatePending {
		// A pending job may be sitting in the queue or waiting on a retry
		// timer; either way it finalizes here and the worker/timer skips it.
		if t := s.retryTimers[id]; t != nil {
			t.Stop()
			delete(s.retryTimers, id)
		}
		j.state = StateCancelled
		j.finished = s.now()
		j.started = j.finished
		s.appendJournal(journalRecord{Op: opFinish, Job: id, Time: j.finished, State: StateCancelled})
		s.metrics.jobFinished(j.experiment, StateCancelled, 0, j.stats)
	} else if j.cancel != nil {
		cancel = j.cancel
	}
	v := j.view()
	s.mu.Unlock()

	if cancel != nil {
		cancel()
	}
	s.log.Info("job cancel requested", "job", id, "state", string(v.State))
	return v, nil
}

// Shutdown stops admission, drains the queue, and waits for in-flight jobs.
// If ctx expires first, every remaining job's context is cancelled and
// Shutdown keeps waiting for the workers to unwind, so the pool never
// leaks goroutines.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: Shutdown called twice")
	}
	s.draining = true
	// Jobs parked on retry timers would otherwise dangle pending forever:
	// stop the timers and finalize them with their last error. The journal
	// records them failed, so a later restart does not resurrect them.
	for id, t := range s.retryTimers {
		t.Stop()
		delete(s.retryTimers, id)
		if j := s.jobs[id]; j != nil && j.state == StatePending {
			s.finalizeLocked(j, StateFailed, "shutdown before retry: "+j.lastErr)
		}
	}
	s.mu.Unlock()
	close(s.queue)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("drain deadline hit, cancelling in-flight jobs")
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.cancel != nil {
				j.cancelRequested = true
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.log.Info("service drained")
	return err
}

// finalizeLocked moves a non-terminal job to a terminal state outside the
// worker path (cancel-on-shutdown, retry-timer teardown). Caller holds s.mu.
func (s *Service) finalizeLocked(j *job, st State, msg string) {
	j.state = st
	j.errMsg = msg
	j.finished = s.now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	s.appendJournal(journalRecord{Op: opFinish, Job: j.id, Time: j.finished, State: st, Error: msg})
	s.metrics.jobFinished(j.experiment, st, 0, j.stats)
}

// worker drains the queue until Shutdown closes it.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(id, j)
	}
}

// runJob executes one job with a per-job timeout, panic recovery, and
// metric accounting.
func (s *Service) runJob(workerID int, j *job) {
	s.mu.Lock()
	if j.state != StatePending { // cancelled while queued
		s.mu.Unlock()
		return
	}
	exp, ok := s.reg.Get(j.experiment)
	if !ok {
		// Unregistered between submit and execution; fail rather than panic.
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("experiment %q vanished from the registry", j.experiment)
		j.started = s.now()
		j.finished = j.started
		s.appendJournal(journalRecord{Op: opFinish, Job: j.id, Time: j.finished, State: StateFailed, Error: j.errMsg})
		s.metrics.jobFinished(j.experiment, StateFailed, 0, j.stats)
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	j.cancel = cancel
	j.state = StateRunning
	j.started = s.now()
	j.attempts++
	attempt := j.attempts
	s.appendJournal(journalRecord{Op: opStart, Job: j.id, Time: j.started, Attempt: attempt})
	s.metrics.jobStarted(j.experiment)
	s.mu.Unlock()
	defer cancel()

	s.log.Info("job started", "job", j.id, "experiment", j.experiment, "worker", workerID, "attempt", attempt)

	raw, stats, err := s.execute(ctx, exp.Run, j)

	s.mu.Lock()
	j.cancel = nil
	j.finished = s.now()
	j.stats = stats
	switch {
	case j.cancelRequested:
		j.state = StateCancelled
		if err == nil {
			err = context.Canceled
		}
		j.errMsg = err.Error()
	case err != nil && j.attempts < s.cfg.MaxAttempts && !s.draining:
		// Attempt budget left: back to pending, re-enqueued after a backoff
		// with deterministic jitter. The journal's retry record plus the
		// next start record keep the attempt count recoverable.
		s.scheduleRetryLocked(j, err)
		s.mu.Unlock()
		return
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("timeout after %s", j.timeout)
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
		j.result = raw
	}
	state, dur := j.state, j.finished.Sub(j.started)
	s.appendJournal(journalRecord{
		Op: opFinish, Job: j.id, Time: j.finished,
		State: state, Error: j.errMsg, Result: j.result, Stats: statsPtr(stats),
	})
	s.metrics.jobFinished(j.experiment, state, dur, stats)
	s.mu.Unlock()

	switch state {
	case StateDone:
		s.breaker.record(j.experiment, true)
	case StateFailed:
		s.breaker.record(j.experiment, false)
		s.metrics.jobFailed(j.experiment, classifyFailure(err, j.errMsg))
	}

	s.log.Info("job finished", "job", j.id, "experiment", j.experiment,
		"state", string(state), "duration", dur, "attempts", j.attempts, "err", j.errMsg)
}

// execute produces one job's marshaled result: served from the result
// cache on a key hit, adopted from an identical in-flight job (dedup), or
// computed by running the experiment. Only clean successes enter the cache;
// a cancelled run is not cached even when the runner managed to finish, so
// a cancelled-but-complete result can never masquerade as a success for the
// next submitter.
func (s *Service) execute(ctx context.Context, run Runner, j *job) (json.RawMessage, cpu.Counters, error) {
	key, keyOK := resultKey{}, false
	if s.results != nil {
		key, keyOK = resultKeyFor(j.experiment, j.params)
	}
	if !keyOK {
		result, stats, err := runRecovered(ctx, run, j.params)
		return marshalResult(result, stats, err)
	}
	if e, ok := s.results.get(key); ok {
		s.metrics.resultCacheHit(j.experiment)
		return e.result, e.stats, nil
	}
	s.metrics.resultCacheMiss(j.experiment)
	deduped := false
	for {
		flight, leader := s.results.begin(key)
		if leader {
			result, stats, err := runRecovered(ctx, run, j.params)
			raw, stats, err := marshalResult(result, stats, err)
			var entry *resultEntry
			if err == nil && !s.cancelRequested(j) {
				entry = &resultEntry{result: raw, stats: stats}
			}
			s.results.finish(key, flight, entry)
			return raw, stats, err
		}
		if !deduped {
			deduped = true
			s.metrics.resultCacheDedup(j.experiment)
		}
		select {
		case <-flight.done:
			if flight.entry != nil {
				return flight.entry.result, flight.entry.stats, nil
			}
			// The leader failed or was cancelled; loop and run for real
			// (possibly becoming the next leader).
		case <-ctx.Done():
			return nil, cpu.Counters{}, ctx.Err()
		}
	}
}

// cancelRequested reads the job's cancellation flag under the lock.
func (s *Service) cancelRequested(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.cancelRequested
}

// marshalResult serializes a successful runner outcome.
func marshalResult(result any, stats cpu.Counters, err error) (json.RawMessage, cpu.Counters, error) {
	if err != nil {
		return nil, stats, err
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return nil, stats, fmt.Errorf("marshaling result: %w", err)
	}
	return raw, stats, nil
}

// scheduleRetryLocked parks a failed job as pending and arms the timer that
// re-enqueues it. Caller holds s.mu.
func (s *Service) scheduleRetryLocked(j *job, cause error) {
	j.state = StatePending
	j.lastErr = cause.Error()
	j.finished = time.Time{}
	delay := s.retry.Delay(j.attempts, retrySeed(j.id))
	s.appendJournal(journalRecord{Op: opRetry, Job: j.id, Time: s.now(), Attempt: j.attempts, Error: j.lastErr})
	s.metrics.jobRetried(j.experiment)
	id := j.id
	s.retryTimers[id] = time.AfterFunc(delay, func() { s.requeue(id) })
	s.log.Warn("job retry scheduled", "job", id, "experiment", j.experiment,
		"attempt", j.attempts, "of", s.cfg.MaxAttempts, "delay", delay, "err", j.lastErr)
}

// requeue moves a retry-parked job back into the queue when its backoff
// timer fires. The draining check under the lock makes the send safe:
// Shutdown flips draining before closing the queue, also under the lock.
func (s *Service) requeue(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.retryTimers, id)
	j := s.jobs[id]
	if j == nil || j.state != StatePending {
		return // cancelled (or otherwise finalized) while waiting
	}
	if s.draining {
		s.finalizeLocked(j, StateFailed, "shutdown before retry: "+j.lastErr)
		return
	}
	select {
	case s.queue <- j:
	default:
		s.finalizeLocked(j, StateFailed, "queue full on retry: "+j.lastErr)
	}
}

// retrySeed derives the deterministic backoff-jitter seed from a job ID.
func retrySeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// classifyFailure buckets a terminal failure for the metrics surface.
func classifyFailure(err error, msg string) failureClass {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return failTimeout
	case strings.HasPrefix(msg, "experiment panicked"):
		return failPanic
	default:
		return failError
	}
}

// statsPtr boxes non-zero counters for the journal's omitempty field.
func statsPtr(c cpu.Counters) *cpu.Counters {
	if c == (cpu.Counters{}) {
		return nil
	}
	return &c
}

// runRecovered invokes the runner, converting a panic into an error so one
// bad experiment cannot take down a worker goroutine.
func runRecovered(ctx context.Context, run Runner, p Params) (result any, stats cpu.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return run(ctx, p)
}
