package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Experiment string `json:"experiment"`
	Params     Params `json:"params"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
}

// BatchRequest is the POST /v1/batch body: either an explicit job list or a
// sweep (cross product of archs × seeds over the base params). Exactly one
// of Jobs and Sweep must be used.
type BatchRequest struct {
	Experiment string          `json:"experiment,omitempty"`
	Params     Params          `json:"params,omitempty"`
	Sweep      *Sweep          `json:"sweep,omitempty"`
	Jobs       []SubmitRequest `json:"jobs,omitempty"`
	TimeoutMS  int64           `json:"timeout_ms,omitempty"`
}

// Sweep is the parameter grid of a batch submission.
type Sweep struct {
	Archs []string `json:"archs,omitempty"`
	Seeds []int64  `json:"seeds,omitempty"`
}

// BatchView summarizes a batch.
type BatchView struct {
	Batch   string        `json:"batch"`
	Total   int           `json:"total"`
	ByState map[State]int `json:"by_state"`
	Jobs    []JobView     `json:"jobs"`
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz               liveness + drain status
//	GET  /readyz                readiness: admission state + per-experiment breakers
//	GET  /metrics               Prometheus text exposition
//	GET  /v1/experiments        registry listing with per-experiment defaults
//	POST /v1/jobs               submit one job
//	GET  /v1/jobs               list jobs (?state=, ?batch=, ?experiment=)
//	GET  /v1/jobs/{id}          one job with its result
//	POST /v1/jobs/{id}/cancel   cancel a pending or running job
//	POST /v1/batch              submit a sweep or an explicit job list
//	GET  /v1/batch/{id}         batch rollup
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		status := http.StatusOK
		if draining {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"status":  map[bool]string{false: "ok", true: "draining"}[draining],
			"workers": s.Workers(),
			"queue":   s.QueueDepth(),
		})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		breakers := s.breaker.snapshot()
		// Ready means Submit would be admitted: not draining and queue has
		// room. An open breaker degrades a single experiment, not the whole
		// service, so it is reported but does not flip readiness.
		ready := !draining && s.QueueDepth() < cap(s.queue)
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"ready":    ready,
			"draining": draining,
			"queue":    s.QueueDepth(),
			"capacity": cap(s.queue),
			"breakers": breakers,
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, s.metrics.Expose(s.StateCounts(), s.QueueDepth(), s.breaker.snapshot(), s.results.len()))
	})

	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"experiments": s.reg.List()})
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if !readJSON(w, r, &req) {
			return
		}
		v, err := s.Submit(req.Experiment, req.Params, "", time.Duration(req.TimeoutMS)*time.Millisecond)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		jobs := s.List(ListFilter{
			State:      State(q.Get("state")),
			Batch:      q.Get("batch"),
			Experiment: q.Get("experiment"),
		})
		writeJSON(w, http.StatusOK, map[string]any{"total": len(jobs), "jobs": jobs})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		v, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !readJSON(w, r, &req) {
			return
		}
		timeout := time.Duration(req.TimeoutMS) * time.Millisecond
		var (
			batch string
			views []JobView
			err   error
		)
		switch {
		case len(req.Jobs) > 0 && req.Sweep != nil:
			writeJSON(w, http.StatusBadRequest, errorBody{"use either jobs or sweep, not both"})
			return
		case len(req.Jobs) > 0:
			s.mu.Lock()
			s.seq++
			batch = fmt.Sprintf("batch-%06d", s.seq)
			s.mu.Unlock()
			for _, jr := range req.Jobs {
				jt := timeout
				if jr.TimeoutMS > 0 {
					jt = time.Duration(jr.TimeoutMS) * time.Millisecond
				}
				var v JobView
				v, err = s.Submit(jr.Experiment, jr.Params, batch, jt)
				if err != nil {
					break
				}
				views = append(views, v)
			}
		default:
			var archs []string
			var seeds []int64
			if req.Sweep != nil {
				archs, seeds = req.Sweep.Archs, req.Sweep.Seeds
			}
			batch, views, err = s.SubmitSweep(req.Experiment, req.Params, archs, seeds, timeout)
		}
		if err != nil && len(views) == 0 {
			writeError(w, err)
			return
		}
		resp := map[string]any{"batch": batch, "total": len(views), "jobs": views}
		if err != nil {
			// Partial admission (e.g. the queue filled mid-batch): report
			// what was accepted plus the error that stopped expansion.
			resp["error"] = err.Error()
		}
		writeJSON(w, http.StatusAccepted, resp)
	})

	mux.HandleFunc("GET /v1/batch/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		jobs := s.List(ListFilter{Batch: id})
		if len(jobs) == 0 {
			writeError(w, ErrNotFound)
			return
		}
		ServeReport(w, BuildReport(jobs))
	})

	mux.HandleFunc("GET /v1/batch/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		jobs := s.List(ListFilter{Batch: id})
		if len(jobs) == 0 {
			writeError(w, ErrNotFound)
			return
		}
		byState := make(map[State]int, 5)
		for _, st := range States() {
			byState[st] = 0
		}
		for _, j := range jobs {
			byState[j.State]++
		}
		writeJSON(w, http.StatusOK, BatchView{Batch: id, Total: len(jobs), ByState: byState, Jobs: jobs})
	})

	return mux
}

// ServeReport writes a canonical batch report: its exact Render bytes when
// complete, 409 with the state rollup while jobs are still pending or
// running. The cluster coordinator serves reports through this same helper,
// which is what pins standalone and cluster responses to identical bytes.
func ServeReport(w http.ResponseWriter, rep Report) {
	if !rep.Complete() {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":    "batch not finished",
			"by_state": rep.ByState,
		})
		return
	}
	raw, err := rep.Render()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// jsonBufPool recycles the encode buffers of writeJSON. Every response on
// the API passes through here — job polling clients hit /v1/jobs at a few
// hertz per job — so encoding into a pooled buffer instead of a fresh
// per-response one keeps handler allocations flat. Buffers that ballooned
// on a large batch report are dropped rather than pinned in the pool.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledJSONBuf is the largest buffer worth keeping; bigger ones are
// one-off report payloads.
const maxPooledJSONBuf = 1 << 20

func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	err := enc.Encode(body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err == nil {
		_, _ = w.Write(buf.Bytes())
	}
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining), errors.Is(err, ErrBreakerOpen):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrFinished):
		status = http.StatusConflict
	default:
		status = http.StatusBadRequest // validation errors from Resolve/ArchConfig
	}
	writeJSON(w, status, errorBody{err.Error()})
}
