package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeJournalLines(t *testing.T, dir string, lines ...string) string {
	t.Helper()
	path := filepath.Join(dir, "journal.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	p := Params{Seed: 7, Trials: 3}
	records := []journalRecord{
		{Op: opSubmit, Job: "job-000001", Time: now, Experiment: "echo", Params: &p, TimeoutMS: 60000},
		{Op: opStart, Job: "job-000001", Time: now, Attempt: 1},
		{Op: opFinish, Job: "job-000001", Time: now, State: StateDone, Result: json.RawMessage(`{"n":1}`)},
		{Op: opSubmit, Job: "job-000002", Time: now, Experiment: "echo", Params: &p, Batch: "batch-000003"},
		{Op: opStart, Job: "job-000002", Time: now, Attempt: 1},
		{Op: opRetry, Job: "job-000002", Time: now, Attempt: 1, Error: "transient"},
		{Op: opStart, Job: "job-000002", Time: now, Attempt: 2},
	}
	for _, rec := range records {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	jobs, maxSeq, err := replayJournal(filepath.Join(dir, "journal.jsonl"), slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if maxSeq != 3 {
		t.Fatalf("maxSeq = %d, want 3 (the batch ID outranks both job IDs)", maxSeq)
	}
	j1, j2 := jobs[0], jobs[1]
	if !j1.finished || j1.finState != StateDone || string(j1.result) != `{"n":1}` {
		t.Fatalf("job 1 replay = %+v, want finished done with its result", j1)
	}
	if j1.params.Seed != 7 || j1.params.Trials != 3 || j1.timeout != time.Minute {
		t.Fatalf("job 1 params/timeout not preserved: %+v", j1)
	}
	if j2.finished || j2.starts != 2 || j2.batch != "batch-000003" {
		t.Fatalf("job 2 replay = %+v, want unfinished with 2 starts", j2)
	}
}

func TestJournalReplayMissingFileIsEmpty(t *testing.T) {
	jobs, maxSeq, err := replayJournal(filepath.Join(t.TempDir(), "journal.jsonl"), slog.New(slog.DiscardHandler))
	if err != nil || len(jobs) != 0 || maxSeq != 0 {
		t.Fatalf("missing journal: jobs=%v maxSeq=%d err=%v, want empty", jobs, maxSeq, err)
	}
}

// TestJournalReplaySkipsCorruptTail covers the crash-mid-append case: the
// torn last line must be skipped with a logged warning while every record
// before it replays normally.
func TestJournalReplaySkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := writeJournalLines(t, dir,
		`{"op":"submit","job":"job-000001","experiment":"echo","time":"2026-08-06T12:00:00Z"}`,
		`{"op":"start","job":"job-000001","attempt":1,"time":"2026-08-06T12:00:01Z"}`,
		`{"op":"finish","job":"job-000001","state":"done","time":"2026-08-06T12:00:02Z"}`,
		`{"op":"submit","job":"job-000002","experiment":"ec`, // torn mid-append
	)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	jobs, maxSeq, err := replayJournal(path, logger)
	if err != nil {
		t.Fatalf("corrupt tail surfaced as an error: %v", err)
	}
	if len(jobs) != 1 || !jobs[0].finished {
		t.Fatalf("replayed %d jobs, want only the intact finished one", len(jobs))
	}
	if maxSeq != 1 {
		t.Fatalf("maxSeq = %d, want 1 (torn submit must not count)", maxSeq)
	}
	if !strings.Contains(buf.String(), "skipping corrupt record") {
		t.Fatalf("corrupt tail skipped without a logged warning; log:\n%s", buf.String())
	}
}

// TestJournalReplaySkipsStrayRecords: records referencing unknown jobs,
// duplicate submits, and unknown ops are all warnings, never errors.
func TestJournalReplaySkipsStrayRecords(t *testing.T) {
	dir := t.TempDir()
	path := writeJournalLines(t, dir,
		`{"op":"start","job":"job-000009","attempt":1}`,
		`{"op":"submit","job":"job-000001","experiment":"echo"}`,
		`{"op":"submit","job":"job-000001","experiment":"echo"}`,
		`{"op":"finish","job":"job-000007","state":"done"}`,
		`{"op":"warp","job":"job-000001"}`,
		`{"op":"finish","job":"job-000001","state":"running"}`,
	)
	var buf bytes.Buffer
	jobs, _, err := replayJournal(path, slog.New(slog.NewTextHandler(&buf, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].finished || jobs[0].starts != 0 {
		t.Fatalf("stray records leaked into replay state: %+v", jobs)
	}
	for _, want := range []string{"stray start", "duplicate submit", "stray finish", "unknown op", "non-terminal state"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("log missing %q warning; log:\n%s", want, buf.String())
		}
	}
}

// FuzzJournalReplay is the satellite fuzz target: no journal content —
// corrupt, truncated, adversarial, or enormous — may panic the replay path.
// Corrupt tails are skipped with a warning; replay must always return.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"op":"submit","job":"job-000001","experiment":"echo"}` + "\n"))
	f.Add([]byte(`{"op":"submit","job":"job-000001","experiment":"echo"}` + "\n" +
		`{"op":"start","job":"job-000001","attempt":1}` + "\n" +
		`{"op":"finish","job":"job-000001","state":"done","result":{"n":1}}` + "\n"))
	f.Add([]byte(`{"op":"finish","job":"job-000001","state":"done"}` + "\n" + `{"op":"sub`))
	f.Add([]byte(`{"op":"submit","job":"job-00000000000000000000001","experiment":"e"}` + "\n"))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		jobs, _, err := replayJournal(path, slog.New(slog.DiscardHandler))
		if err != nil {
			t.Fatalf("replay returned an error for on-disk content: %v", err)
		}
		// Whatever replayed must be internally consistent: unique IDs, and
		// finished jobs carry terminal states.
		seen := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			if seen[j.id] {
				t.Fatalf("duplicate job %s in replay", j.id)
			}
			seen[j.id] = true
			if j.finished && !j.finState.terminal() {
				t.Fatalf("job %s finished with non-terminal state %q", j.id, j.finState)
			}
		}
	})
}
