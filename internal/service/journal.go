package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"pathfinder/internal/cpu"
)

// journalRecord is one JSONL line of the write-ahead job journal. Every
// job-state transition appends exactly one record before the transition is
// acknowledged, so a crash at any instant leaves a journal from which the
// full job table — and the set of jobs that must be re-queued — can be
// reconstructed.
type journalRecord struct {
	Op   string    `json:"op"` // submit | start | retry | finish
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// submit
	Experiment string  `json:"experiment,omitempty"`
	Params     *Params `json:"params,omitempty"`
	Batch      string  `json:"batch,omitempty"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`

	// start | retry
	Attempt int `json:"attempt,omitempty"`

	// finish
	State  State           `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Stats  *cpu.Counters   `json:"stats,omitempty"`
}

// Journal record operations.
const (
	opSubmit = "submit"
	opStart  = "start"
	opRetry  = "retry"
	opFinish = "finish"
)

// journal is the append-only JSONL writer. Appends are serialized by its
// own mutex; the Service additionally appends while holding its job-table
// lock, so journal order always matches state-transition order.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening journal: %w", err)
	}
	return &journal{f: f}, nil
}

func (j *journal) append(rec journalRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(raw, '\n'))
	return err
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// compactJournal rewrites the journal at path to the minimal record set
// that replays to the same job table: per job, one submit, the surviving
// start count, and the finish record if the job is terminal. Retry chatter,
// corrupt lines and stray records vanish. The rewrite goes through a temp
// file in the same directory and an atomic rename, so a crash mid-compaction
// leaves either the old journal or the new one — never a torn mixture.
//
// The input is the already-replayed state, which is exactly the fixpoint
// property the replay-equality test pins down: replay(compact(J)) ==
// replay(J) for every journal J, because compaction serializes what replay
// reconstructed.
func compactJournal(path string, jobs []*replayedJob) error {
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	w := bufio.NewWriter(f)
	write := func(rec journalRecord) error {
		raw, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		_, err = w.Write(raw)
		return err
	}
	for _, r := range jobs {
		p := r.params
		rec := journalRecord{
			Op: opSubmit, Job: r.id, Time: r.submitted,
			Experiment: r.experiment, Params: &p, Batch: r.batch,
			TimeoutMS: r.timeout.Milliseconds(),
		}
		if err := write(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("service: compacting journal: %w", err)
		}
		// Start records survive as a count: the attempt budget replays from
		// them, and the last one carries the started timestamp.
		for i := 0; i < r.starts; i++ {
			if err := write(journalRecord{Op: opStart, Job: r.id, Time: r.lastStart, Attempt: i + 1}); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("service: compacting journal: %w", err)
			}
		}
		if r.finished {
			var stats *cpu.Counters
			if r.stats != (cpu.Counters{}) {
				st := r.stats
				stats = &st
			}
			fin := journalRecord{
				Op: opFinish, Job: r.id, Time: r.finTime,
				State: r.finState, Error: r.finErr, Result: r.result, Stats: stats,
			}
			if err := write(fin); err != nil {
				f.Close()
				os.Remove(tmp)
				return fmt.Errorf("service: compacting journal: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: compacting journal: %w", err)
	}
	return nil
}

// replayedJob is the reconstruction of one job from its journal records.
type replayedJob struct {
	id         string
	experiment string
	params     Params
	batch      string
	timeout    time.Duration
	submitted  time.Time

	starts    int // attempts consumed before the crash
	lastStart time.Time

	finished bool
	finState State
	finErr   string
	result   json.RawMessage
	stats    cpu.Counters
	finTime  time.Time
}

// replayJournal reads the journal at path and reconstructs every job it
// describes, in submission order, together with the highest sequence number
// any job or batch ID used. A missing file is an empty journal. Corrupt or
// truncated lines — the tail a crash mid-append leaves behind — are skipped
// with a logged warning, never an error: the journal is the recovery path,
// and refusing to start over one torn record would turn a crash into an
// outage.
func replayJournal(path string, log *slog.Logger) (jobs []*replayedJob, maxSeq uint64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: reading journal: %w", err)
	}
	defer f.Close()

	byID := make(map[string]*replayedJob)
	bumpSeq := func(id, prefix string) {
		var n uint64
		if _, err := fmt.Sscanf(id, prefix+"-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			log.Warn("journal: skipping corrupt record", "line", line, "err", err)
			continue
		}
		switch rec.Op {
		case opSubmit:
			if rec.Job == "" || rec.Experiment == "" {
				log.Warn("journal: skipping submit record without job or experiment", "line", line)
				continue
			}
			if _, dup := byID[rec.Job]; dup {
				log.Warn("journal: skipping duplicate submit", "line", line, "job", rec.Job)
				continue
			}
			r := &replayedJob{
				id:         rec.Job,
				experiment: rec.Experiment,
				batch:      rec.Batch,
				timeout:    time.Duration(rec.TimeoutMS) * time.Millisecond,
				submitted:  rec.Time,
			}
			if rec.Params != nil {
				r.params = *rec.Params
			}
			byID[rec.Job] = r
			jobs = append(jobs, r)
			bumpSeq(rec.Job, "job")
			if rec.Batch != "" {
				bumpSeq(rec.Batch, "batch")
			}
		case opStart:
			r := byID[rec.Job]
			if r == nil || r.finished {
				log.Warn("journal: skipping stray start record", "line", line, "job", rec.Job)
				continue
			}
			r.starts++
			r.lastStart = rec.Time
		case opRetry:
			// Informational: the attempt count is derived from start records,
			// so a retry record needs no replay action beyond existing.
			if byID[rec.Job] == nil {
				log.Warn("journal: skipping stray retry record", "line", line, "job", rec.Job)
			}
		case opFinish:
			r := byID[rec.Job]
			if r == nil || r.finished {
				log.Warn("journal: skipping stray finish record", "line", line, "job", rec.Job)
				continue
			}
			if !rec.State.terminal() {
				log.Warn("journal: skipping finish record with non-terminal state", "line", line, "job", rec.Job, "state", string(rec.State))
				continue
			}
			r.finished = true
			r.finState = rec.State
			r.finErr = rec.Error
			r.result = rec.Result
			r.finTime = rec.Time
			if rec.Stats != nil {
				r.stats = *rec.Stats
			}
		default:
			log.Warn("journal: skipping record with unknown op", "line", line, "op", rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		// An oversized or unreadable tail: everything parsed so far is still
		// a valid prefix of the history.
		log.Warn("journal: stopped before end of file", "line", line, "err", err)
	}
	return jobs, maxSeq, nil
}
