package service

import (
	"encoding/json"
	"sort"
)

// The canonical batch report: the cluster's determinism contract made
// concrete. A report contains, for every job of a batch, only what the work
// itself determines — experiment, canonical resolved parameters, terminal
// state, marshaled result, error — and none of what the execution path
// determines (job IDs, timestamps, attempt counts, which worker ran it).
// Rows are sorted by (experiment, canonical params), so the same sweep
// renders byte-identical whether it ran standalone, on one worker, or
// sharded across a cluster. CI diffs these bytes directly.

// ReportRow is one job's canonical outcome.
type ReportRow struct {
	Experiment string          `json:"experiment"`
	Params     Params          `json:"params"`
	State      State           `json:"state"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`

	// sortKey is the canonical params JSON, precomputed for ordering.
	sortKey string
}

// Report is the canonical projection of a finished batch.
type Report struct {
	Total   int           `json:"total"`
	ByState map[State]int `json:"by_state"`
	Rows    []ReportRow   `json:"rows"`
}

// BuildReport projects job views into the canonical report. Params are
// canonicalized the same way the result cache keys them (microarchitecture
// aliases collapse to the config name), so aliased submissions of the same
// work land on identical rows.
func BuildReport(jobs []JobView) Report {
	rep := Report{Total: len(jobs), ByState: make(map[State]int, 5)}
	for _, st := range States() {
		rep.ByState[st] = 0
	}
	for _, j := range jobs {
		rep.ByState[j.State]++
		p := j.Params
		if cfg, err := ArchConfig(p.Arch); err == nil {
			p.Arch = cfg.Name
		}
		key, _ := json.Marshal(p)
		rep.Rows = append(rep.Rows, ReportRow{
			Experiment: j.Experiment,
			Params:     p,
			State:      j.State,
			Result:     j.Result,
			Error:      j.Error,
			sortKey:    string(key),
		})
	}
	// The order is total — state, error and result bytes break ties between
	// duplicate submissions of the same work — so rendering never depends on
	// the order jobs were listed in.
	sort.Slice(rep.Rows, func(i, k int) bool {
		a, b := &rep.Rows[i], &rep.Rows[k]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.sortKey != b.sortKey {
			return a.sortKey < b.sortKey
		}
		if a.State != b.State {
			return a.State < b.State
		}
		if a.Error != b.Error {
			return a.Error < b.Error
		}
		return string(a.Result) < string(b.Result)
	})
	return rep
}

// Complete reports whether every row reached a terminal state — only a
// complete report is canonical, so the HTTP surface withholds incomplete
// ones with 409.
func (r Report) Complete() bool {
	return r.ByState[StatePending] == 0 && r.ByState[StateRunning] == 0
}

// Render marshals the report to its canonical bytes (indented JSON plus a
// trailing newline). Both the standalone service and the cluster
// coordinator serve exactly these bytes, which is what makes "diff the two
// reports" a meaningful test.
func (r Report) Render() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}
