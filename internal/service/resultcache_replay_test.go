package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/cpu"
)

// TestReplayRepopulationRespectsLRUOrder: when the journal holds more
// successes than the result cache has capacity, the restart must keep the
// most recently finished results — the survivors the live LRU held — and
// must do so deterministically, regardless of submission order.
func TestReplayRepopulationRespectsLRUOrder(t *testing.T) {
	dir := t.TempDir()
	// Five finished echo jobs; finish times deliberately out of submission
	// order (job 2 finished last, job 5 first).
	finishes := []string{
		"2026-08-06T12:10:05Z", // job 1
		"2026-08-06T12:10:09Z", // job 2 — newest
		"2026-08-06T12:10:03Z", // job 3
		"2026-08-06T12:10:04Z", // job 4
		"2026-08-06T12:10:01Z", // job 5 — oldest
	}
	var lines []string
	for i, fin := range finishes {
		id := fmt.Sprintf("job-%06d", i+1)
		lines = append(lines,
			fmt.Sprintf(`{"op":"submit","job":%q,"experiment":"echo","params":{"seed":%d},"time":"2026-08-06T12:00:0%dZ"}`, id, i+1, i),
			fmt.Sprintf(`{"op":"start","job":%q,"attempt":1,"time":"2026-08-06T12:05:00Z"}`, id),
			fmt.Sprintf(`{"op":"finish","job":%q,"state":"done","result":{"seed":%d},"time":%q}`, id, i+1, fin),
		)
	}
	writeJournalLines(t, dir, lines...)

	var runs atomic.Int64
	reg := NewRegistry()
	registerCounter(t, reg, "echo", &runs)
	s, err := Open(Config{
		Workers: 1, QueueDepth: 16, DataDir: dir,
		Registry: reg, ResultCacheSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	if n := s.results.len(); n != 2 {
		t.Fatalf("cache holds %d entries after replay, want capacity 2", n)
	}
	// The two newest finishes (jobs 2 and 1) survive; resubmitting them hits
	// the cache — the runner must not fire.
	for _, seed := range []int64{2, 1} {
		v, err := s.Submit("echo", Params{Seed: seed}, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		got := awaitState(t, s, v.ID, StateDone)
		if got.Error != "" {
			t.Fatalf("seed %d: %s", seed, got.Error)
		}
	}
	if n := runs.Load(); n != 0 {
		t.Errorf("runner fired %d times for the two newest replayed results, want 0 (cache hits)", n)
	}
	// The oldest (job 5) was deterministically evicted: its resubmission runs.
	v, err := s.Submit("echo", Params{Seed: 5}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s, v.ID, StateDone)
	if n := runs.Load(); n != 1 {
		t.Errorf("runner fired %d times for the evicted oldest result, want exactly 1", n)
	}
}

// TestDuplicatePutRefreshesRecency: a second store under an existing key is
// a use — it must move the entry to the front so eviction order depends
// only on the access history, not on which writer got there first.
func TestDuplicatePutRefreshesRecency(t *testing.T) {
	c := newResultCache(2)
	ka := resultKey{experiment: "a"}
	kb := resultKey{experiment: "b"}
	kc := resultKey{experiment: "c"}
	c.put(ka, &resultEntry{})
	c.put(kb, &resultEntry{})
	c.put(ka, &resultEntry{}) // duplicate: refreshes a, so b is now oldest
	c.put(kc, &resultEntry{}) // evicts b
	if _, ok := c.get(ka); !ok {
		t.Error("a evicted despite its duplicate-put refresh")
	}
	if _, ok := c.get(kb); ok {
		t.Error("b survived; the duplicate put did not refresh a's recency")
	}
	if _, ok := c.get(kc); !ok {
		t.Error("c missing")
	}
}

// TestEvictionUnderConcurrentIdenticalAndDistinctJobs floods a tiny cache
// with a mix of identical submissions (which must singleflight onto one
// run each) and enough distinct work to force evictions, then verifies the
// accounting: every job done, one run per distinct key, and the cache
// bounded at capacity throughout.
func TestEvictionUnderConcurrentIdenticalAndDistinctJobs(t *testing.T) {
	var runs atomic.Int64
	reg := NewRegistry()
	err := reg.Register(Experiment{
		Name:        "slowcount",
		Description: "test: counts invocations, slow enough to overlap",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			runs.Add(1)
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return nil, cpu.Counters{}, ctx.Err()
			}
			return map[string]int64{"seed": p.Seed}, cpu.Counters{Runs: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, QueueDepth: 128, Registry: reg, ResultCacheSize: 3})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	const distinct = 8
	const dupsPerSeed = 4
	var wg sync.WaitGroup
	ids := make(chan string, distinct*dupsPerSeed)
	for seed := 1; seed <= distinct; seed++ {
		for d := 0; d < dupsPerSeed; d++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				v, err := s.Submit("slowcount", Params{Seed: seed}, "", 0)
				if err != nil {
					t.Error(err)
					return
				}
				ids <- v.ID
			}(int64(seed))
		}
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		v := awaitState(t, s, id, StateDone)
		if v.Error != "" {
			t.Fatalf("job %s: %s", id, v.Error)
		}
	}
	// Identical concurrent jobs singleflight; identical later jobs hit the
	// cache while their key survives. Distinct keys outnumber capacity 8:3,
	// so evicted seeds may legitimately re-run — but never more than once
	// per submission, and the total is bounded by the submission count.
	if n := runs.Load(); n < distinct || n > distinct*dupsPerSeed {
		t.Errorf("runner fired %d times for %d distinct seeds (%d submissions)", n, distinct, distinct*dupsPerSeed)
	}
	if got := s.results.len(); got > 3 {
		t.Errorf("cache holds %d entries, capacity 3", got)
	}
}
