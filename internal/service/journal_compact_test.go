package service

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestCompactJournalReplayEquality is the compaction fixpoint property:
// replay(compact(J)) == replay(J) for a journal holding every record shape —
// finished jobs, mid-run jobs, queued jobs, retry chatter, corrupt lines and
// stray records.
func TestCompactJournalReplayEquality(t *testing.T) {
	dir := t.TempDir()
	path := writeJournalLines(t, dir,
		`{"op":"submit","job":"job-000001","experiment":"echo","params":{"seed":11},"timeout_ms":60000,"time":"2026-08-06T12:00:00Z"}`,
		`{"op":"start","job":"job-000001","attempt":1,"time":"2026-08-06T12:00:01Z"}`,
		`{"op":"finish","job":"job-000001","state":"done","result":{"seed":11},"stats":{"runs":1},"time":"2026-08-06T12:00:02Z"}`,
		// Mid-run job: two starts with a retry between them.
		`{"op":"submit","job":"job-000002","experiment":"echo","params":{"seed":22},"timeout_ms":60000,"time":"2026-08-06T12:00:03Z"}`,
		`{"op":"start","job":"job-000002","attempt":1,"time":"2026-08-06T12:00:04Z"}`,
		`{"op":"retry","job":"job-000002","attempt":1,"error":"transient","time":"2026-08-06T12:00:05Z"}`,
		`{"op":"start","job":"job-000002","attempt":2,"time":"2026-08-06T12:00:06Z"}`,
		// Queued job, never started.
		`{"op":"submit","job":"job-000003","experiment":"echo","params":{"seed":33},"batch":"batch-000004","time":"2026-08-06T12:00:07Z"}`,
		// Failed job with an error message.
		`{"op":"submit","job":"job-000005","experiment":"echo","params":{"seed":55},"time":"2026-08-06T12:00:08Z"}`,
		`{"op":"start","job":"job-000005","attempt":1,"time":"2026-08-06T12:00:09Z"}`,
		`{"op":"finish","job":"job-000005","state":"failed","error":"boom","time":"2026-08-06T12:00:10Z"}`,
		// Noise replay already ignores: stray records and a torn tail.
		`{"op":"start","job":"job-999999","attempt":1,"time":"2026-08-06T12:00:11Z"}`,
		`{"op":"submit","job":"job-0000`,
	)
	log := slog.New(slog.DiscardHandler)

	before, beforeSeq, err := replayJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}
	origSize := fileSize(t, path)
	if err := compactJournal(path, before); err != nil {
		t.Fatal(err)
	}
	after, afterSeq, err := replayJournal(path, log)
	if err != nil {
		t.Fatal(err)
	}

	if beforeSeq != afterSeq {
		t.Errorf("maxSeq changed across compaction: %d -> %d", beforeSeq, afterSeq)
	}
	if len(after) != len(before) {
		t.Fatalf("job count changed across compaction: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if !reflect.DeepEqual(*before[i], *after[i]) {
			t.Errorf("job %s replays differently after compaction:\nbefore: %+v\nafter:  %+v",
				before[i].id, *before[i], *after[i])
		}
	}
	if sz := fileSize(t, path); sz >= origSize {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", origSize, sz)
	}
}

// TestOpenCompactsOversizedJournal: a service restarted over a journal past
// the size trigger compacts it on startup and still serves every job —
// terminal results intact, sequence numbers resuming.
func TestOpenCompactsOversizedJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, QueueDepth: 16, DataDir: dir,
		Registry: echoRegistry(t), MaxAttempts: 2,
		RetryBackoff: time.Millisecond,
	}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		v, err := s1.Submit("echo", Params{Seed: int64(i + 1)}, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitTerminal(t, s1, id)
	}
	wantViews := map[string]JobView{}
	for _, id := range ids {
		v, err := s1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		wantViews[id] = v
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	path := filepath.Join(dir, "journal.jsonl")
	// Append replay-ignored retry chatter so compaction has something
	// measurable to reclaim (the trigger below fires on any non-empty file).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fmt.Fprintf(f, `{"op":"retry","job":%q,"attempt":1,"error":"padding"}`+"\n", ids[0])
	}
	f.Close()
	fat := fileSize(t, path)

	cfg.JournalCompactBytes = 1 // any non-empty journal compacts
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()

	if sz := fileSize(t, path); sz >= fat {
		t.Errorf("startup did not compact the journal: %d -> %d bytes", fat, sz)
	}
	for id, want := range wantViews {
		got, err := s2.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across compacting restart: %v", id, err)
		}
		if got.State != want.State || string(got.Result) != string(want.Result) || got.Error != want.Error {
			t.Errorf("job %s differs across compacting restart:\ngot:  %+v\nwant: %+v", id, got, want)
		}
	}
	// New submissions resume the sequence past the compacted history.
	v, err := s2.Submit("echo", Params{Seed: 99}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "job-000006" {
		t.Errorf("post-compaction submit got %s, want job-000006", v.ID)
	}
	waitTerminal(t, s2, v.ID)

	// A third replay of the now-compacted, re-appended journal still agrees.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	cancel2()
	jobs, _, err := replayJournal(path, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Errorf("final journal replays %d jobs, want 6", len(jobs))
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// waitTerminal polls a job on the service until it is terminal.
func waitTerminal(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}
