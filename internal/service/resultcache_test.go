package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pathfinder/internal/cpu"
)

// registerCounter adds an instant experiment whose runner counts its
// invocations, so tests can tell a real run from a cache hit.
func registerCounter(t *testing.T, reg *Registry, name string, runs *atomic.Int64) {
	t.Helper()
	err := reg.Register(Experiment{
		Name:        name,
		Description: "test: counts runner invocations",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			n := runs.Add(1)
			return map[string]any{"run": n, "seed": p.Seed}, cpu.Counters{Runs: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func awaitState(t *testing.T, s *Service, id string, want State) JobView {
	t.Helper()
	var v JobView
	waitFor(t, 10*time.Second, fmt.Sprintf("job %s to reach %s", id, want), func() bool {
		var err error
		v, err = s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		return v.State == want
	})
	return v
}

func TestResultKeyCanonicalizesDefaults(t *testing.T) {
	reg := NewRegistry()
	// One submission spells the defaults out, the other leaves them zero;
	// after Resolve both must produce the same cache key.
	explicit, err := reg.Resolve("aes", Params{Arch: "alderlake", Trials: 24, Noise: 0.015})
	if err != nil {
		t.Fatal(err)
	}
	defaulted, err := reg.Resolve("aes", Params{})
	if err != nil {
		t.Fatal(err)
	}
	ka, ok := resultKeyFor("aes", explicit)
	if !ok {
		t.Fatal("explicit params did not produce a key")
	}
	kb, ok := resultKeyFor("aes", defaulted)
	if !ok {
		t.Fatal("defaulted params did not produce a key")
	}
	if ka != kb {
		t.Fatalf("equivalent submissions keyed differently:\n%+v\n%+v", ka, kb)
	}
	if kc, _ := resultKeyFor("aes", explicitWithSeed(explicit, 99)); kc == ka {
		t.Fatal("different seeds produced the same key")
	}
}

func explicitWithSeed(p Params, seed int64) Params {
	p.Seed = seed
	return p
}

func TestResultCacheServesRepeatJobs(t *testing.T) {
	var runs atomic.Int64
	reg := NewRegistry()
	registerCounter(t, reg, "counted", &runs)
	s := New(Config{Workers: 2, Registry: reg, ResultCacheSize: 8})
	defer shutdown(t, s)

	first, err := s.Submit("counted", Params{Seed: 5}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := awaitState(t, s, first.ID, StateDone)

	second, err := s.Submit("counted", Params{Seed: 5}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	v2 := awaitState(t, s, second.ID, StateDone)

	if got := runs.Load(); got != 1 {
		t.Fatalf("runner ran %d times, want 1 (second job should hit the cache)", got)
	}
	if string(v1.Result) != string(v2.Result) {
		t.Fatalf("cached result differs:\nfirst:  %s\nsecond: %s", v1.Result, v2.Result)
	}
	if v1.SimStats == nil || v2.SimStats == nil || *v1.SimStats != *v2.SimStats {
		t.Fatalf("cached sim stats differ: %+v vs %+v", v1.SimStats, v2.SimStats)
	}

	// A different seed is different work: it must miss and run.
	third, err := s.Submit("counted", Params{Seed: 6}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s, third.ID, StateDone)
	if got := runs.Load(); got != 2 {
		t.Fatalf("runner ran %d times after a distinct submission, want 2", got)
	}

	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if got := metricValue(t, exp, `pathfinderd_result_cache_hits_total{experiment="counted"}`); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := metricValue(t, exp, `pathfinderd_result_cache_misses_total{experiment="counted"}`); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := metricValue(t, exp, `pathfinderd_result_cache_entries`); got != 2 {
		t.Errorf("entries gauge = %d, want 2", got)
	}
}

// TestResultCacheDedupsConcurrentJobs is the acceptance scenario for the
// singleflight: identical jobs submitted together run the experiment once —
// the followers adopt the leader's result — and the dedup metric counts
// them.
func TestResultCacheDedupsConcurrentJobs(t *testing.T) {
	var starts atomic.Int64
	release := make(chan struct{})
	reg := NewRegistry()
	err := reg.Register(Experiment{
		Name:        "parked",
		Description: "test: parks until released, counting starts",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			starts.Add(1)
			select {
			case <-release:
				return map[string]string{"outcome": "released"}, cpu.Counters{Runs: 1}, nil
			case <-ctx.Done():
				return nil, cpu.Counters{}, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, Registry: reg, ResultCacheSize: 8})
	defer shutdown(t, s)

	const n = 3
	ids := make([]string, n)
	for i := range ids {
		v, err := s.Submit("parked", Params{Seed: 1}, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}

	// One leader runs; the other two workers park as followers on its
	// flight. Only then release, so the dedup path is genuinely concurrent.
	waitFor(t, 10*time.Second, "both followers to join the flight", func() bool {
		exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
		return metricSample(exp, `pathfinderd_result_cache_dedup_total{experiment="parked"}`) == n-1
	})
	close(release)

	var want string
	for i, id := range ids {
		v := awaitState(t, s, id, StateDone)
		if i == 0 {
			want = string(v.Result)
		} else if string(v.Result) != want {
			t.Fatalf("job %s result %s differs from leader's %s", id, v.Result, want)
		}
	}
	if got := starts.Load(); got != 1 {
		t.Fatalf("runner started %d times for %d identical jobs, want 1", got, n)
	}
	exp := s.metrics.Expose(s.StateCounts(), s.QueueDepth(), nil, s.results.len())
	if got := metricValue(t, exp, `pathfinderd_result_cache_misses_total{experiment="parked"}`); got != n {
		t.Errorf("misses = %d, want %d", got, n)
	}
	if got := metricSample(exp, `pathfinderd_result_cache_hits_total{experiment="parked"}`); got > 0 {
		t.Errorf("hits = %d, want none", got)
	}
}

// metricSample is metricValue without the fatal-on-absent behavior, for
// polling a counter that may not have been emitted yet; absent is -1.
func metricSample(exposition, sample string) int {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v int
			if _, err := fmt.Sscanf(line[len(sample)+1:], "%d", &v); err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func TestResultCacheRepopulatedFromJournal(t *testing.T) {
	var runs atomic.Int64
	reg := NewRegistry()
	registerCounter(t, reg, "counted", &runs)
	dir := t.TempDir()

	s1, err := Open(Config{Workers: 1, Registry: reg, ResultCacheSize: 8, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit("counted", Params{Seed: 9}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	first := awaitState(t, s1, v.ID, StateDone)
	shutdown(t, s1)

	// The restarted daemon replays the journal; the replayed success must
	// land back in the cache so the repeat below never re-simulates.
	s2, err := Open(Config{Workers: 1, Registry: reg, ResultCacheSize: 8, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s2)
	v2, err := s2.Submit("counted", Params{Seed: 9}, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	repeat := awaitState(t, s2, v2.ID, StateDone)
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner ran %d times across the restart, want 1", got)
	}
	if string(repeat.Result) != string(first.Result) {
		t.Fatalf("replayed cache served %s, original was %s", repeat.Result, first.Result)
	}
	exp := s2.metrics.Expose(s2.StateCounts(), s2.QueueDepth(), nil, s2.results.len())
	if got := metricValue(t, exp, `pathfinderd_result_cache_hits_total{experiment="counted"}`); got != 1 {
		t.Errorf("hits after restart = %d, want 1", got)
	}
}

func TestResultCacheDisabledByDefault(t *testing.T) {
	var runs atomic.Int64
	reg := NewRegistry()
	registerCounter(t, reg, "counted", &runs)
	s := New(Config{Workers: 1, Registry: reg}) // zero ResultCacheSize
	defer shutdown(t, s)
	if s.results != nil {
		t.Fatal("zero config built a result cache")
	}
	for i := 0; i < 2; i++ {
		v, err := s.Submit("counted", Params{Seed: 5}, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		awaitState(t, s, v.ID, StateDone)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("runner ran %d times with the cache disabled, want 2", got)
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) resultKey { return resultKey{experiment: "e", params: fmt.Sprint(i)} }
	e := func(i int) *resultEntry { return &resultEntry{result: json.RawMessage(fmt.Sprint(i))} }
	c.put(k(1), e(1))
	c.put(k(2), e(2))
	if _, ok := c.get(k(1)); !ok { // refresh 1; 2 becomes least recent
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), e(3))
	if _, ok := c.get(k(2)); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently-used entry was evicted")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}
