package service

import (
	"fmt"
	"sync"
	"time"
)

// failureClass buckets terminal failures for the breaker and the metrics
// surface: a timeout, a panic, and an ordinary error are different diseases
// even though all three land the job in StateFailed.
type failureClass string

const (
	failTimeout failureClass = "timeout"
	failPanic   failureClass = "panic"
	failError   failureClass = "error"
)

// Breaker states, exposed as gauge values on /metrics and /readyz.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a per-experiment circuit breaker. An experiment that fails
// `threshold` consecutive times stops accepting submissions (open) until
// `cooldown` passes; the first submission after the cooldown is admitted as
// a probe (half-open), and its outcome decides between closing the circuit
// and re-opening it. Cancellations are not failures — they say nothing
// about the experiment — and only terminal outcomes move the state.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	exps      map[string]*expBreaker
}

type expBreaker struct {
	state       int
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		exps:      make(map[string]*expBreaker),
	}
}

// allow admits or rejects a submission for the experiment.
func (b *breaker) allow(experiment string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.exps[experiment]
	if e == nil {
		return nil
	}
	switch e.state {
	case breakerOpen:
		if wait := b.cooldown - b.now().Sub(e.openedAt); wait > 0 {
			return fmt.Errorf("%w: experiment %q has failed %d consecutive runs, retry in %s",
				ErrBreakerOpen, experiment, e.consecutive, wait.Round(time.Millisecond))
		}
		// Cooldown over: admit this one submission as the probe.
		e.state = breakerHalfOpen
		return nil
	case breakerHalfOpen:
		return fmt.Errorf("%w: experiment %q is probing after repeated failures, retry shortly",
			ErrBreakerOpen, experiment)
	}
	return nil
}

// record feeds one terminal job outcome into the breaker.
func (b *breaker) record(experiment string, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.exps[experiment]
	if success {
		if e != nil {
			delete(b.exps, experiment)
		}
		return
	}
	if e == nil {
		e = &expBreaker{}
		b.exps[experiment] = e
	}
	e.consecutive++
	if e.state == breakerHalfOpen || e.consecutive >= b.threshold {
		e.state = breakerOpen
		e.openedAt = b.now()
	}
}

// snapshot returns the state gauge of every experiment the breaker tracks.
func (b *breaker) snapshot() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.exps))
	for exp, e := range b.exps {
		out[exp] = e.state
	}
	return out
}
