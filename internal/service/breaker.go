package service

import (
	"fmt"
	"sync"
	"time"
)

// failureClass buckets terminal failures for the breaker and the metrics
// surface: a timeout, a panic, and an ordinary error are different diseases
// even though all three land the job in StateFailed.
type failureClass string

const (
	failTimeout failureClass = "timeout"
	failPanic   failureClass = "panic"
	failError   failureClass = "error"
)

// Breaker states, exposed as gauge values on /metrics and /readyz. The
// cluster layer reuses the same encoding for per-peer breakers.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// Unexported aliases keep the service-internal spelling stable.
const (
	breakerClosed   = BreakerClosed
	breakerHalfOpen = BreakerHalfOpen
	breakerOpen     = BreakerOpen
)

// KeyedBreaker is a map of independent circuit breakers sharing one
// threshold and cooldown. The service pool keys it by experiment name; the
// cluster keys it by peer. A key that fails `threshold` consecutive times
// stops being admitted (open) until `cooldown` passes; the first admission
// after the cooldown is the probe (half-open), and its outcome decides
// between closing the circuit and re-opening it. Only terminal outcomes
// move the state — cancellations say nothing about the key's health.
type KeyedBreaker struct {
	mu        sync.Mutex
	noun      string // what a key names in error messages ("experiment", "peer")
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	keys      map[string]*keyBreaker
}

type keyBreaker struct {
	state       int
	consecutive int
	openedAt    time.Time
}

// NewKeyedBreaker builds a breaker map. noun appears in rejection messages
// so callers read "peer w0 has failed..." rather than a generic key.
func NewKeyedBreaker(noun string, threshold int, cooldown time.Duration, now func() time.Time) *KeyedBreaker {
	if now == nil {
		now = time.Now
	}
	return &KeyedBreaker{
		noun:      noun,
		threshold: threshold,
		cooldown:  cooldown,
		now:       now,
		keys:      make(map[string]*keyBreaker),
	}
}

// newBreaker keeps the pool's original per-experiment constructor spelling.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *KeyedBreaker {
	return NewKeyedBreaker("experiment", threshold, cooldown, now)
}

// Allow admits or rejects the key, wrapping ErrBreakerOpen on rejection.
func (b *KeyedBreaker) Allow(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.keys[key]
	if e == nil {
		return nil
	}
	switch e.state {
	case BreakerOpen:
		if wait := b.cooldown - b.now().Sub(e.openedAt); wait > 0 {
			return fmt.Errorf("%w: %s %q has failed %d consecutive times, retry in %s",
				ErrBreakerOpen, b.noun, key, e.consecutive, wait.Round(time.Millisecond))
		}
		// Cooldown over: admit this one submission as the probe.
		e.state = BreakerHalfOpen
		return nil
	case BreakerHalfOpen:
		return fmt.Errorf("%w: %s %q is probing after repeated failures, retry shortly",
			ErrBreakerOpen, b.noun, key)
	}
	return nil
}

// Record feeds one terminal outcome into the key's breaker.
func (b *KeyedBreaker) Record(key string, success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.keys[key]
	if success {
		if e != nil {
			delete(b.keys, key)
		}
		return
	}
	if e == nil {
		e = &keyBreaker{}
		b.keys[key] = e
	}
	e.consecutive++
	if e.state == BreakerHalfOpen || e.consecutive >= b.threshold {
		e.state = BreakerOpen
		e.openedAt = b.now()
	}
}

// State returns the key's current breaker state gauge.
func (b *KeyedBreaker) State(key string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.keys[key]; e != nil {
		return e.state
	}
	return BreakerClosed
}

// Snapshot returns the state gauge of every key the breaker tracks.
func (b *KeyedBreaker) Snapshot() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.keys))
	for key, e := range b.keys {
		out[key] = e.state
	}
	return out
}

// Unexported method shims preserve the pool's call sites.
func (b *KeyedBreaker) allow(key string) error          { return b.Allow(key) }
func (b *KeyedBreaker) record(key string, success bool) { b.Record(key, success) }
func (b *KeyedBreaker) snapshot() map[string]int        { return b.Snapshot() }
