package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pathfinder/internal/cpu"
)

// TestCancelWhilePending covers the pending→cancelled edge: with the only
// worker occupied, a queued job is cancelled before pickup. It must
// finalize immediately, never run, and stay cancelled after the worker
// drains the queue entry it was skipped from.
func TestCancelWhilePending(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 16})
	defer shutdown(t, s)
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	registerBlocker(t, s.Registry(), "blocker", started, release)

	blocker, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now parked inside the blocker

	pending, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Cancel(pending.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCancelled {
		t.Fatalf("cancel-while-pending state = %s, want cancelled", v.State)
	}

	close(release) // let the worker finish the blocker and drain the queue
	waitFor(t, 5*time.Second, "blocker to finish", func() bool {
		got, err := s.Get(blocker.ID)
		return err == nil && got.State == StateDone
	})
	// The worker has cycled past the cancelled job; it must not have run
	// (no second start signal) and must still be cancelled.
	select {
	case <-started:
		t.Fatal("cancelled pending job was executed")
	default:
	}
	got, err := s.Get(pending.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("terminal state overwritten: %s", got.State)
	}
}

// TestCancelWhileRunning covers running→cancelled: the runner observes
// ctx.Done and unwinds; the job must land in cancelled and stay there.
func TestCancelWhileRunning(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	defer shutdown(t, s)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	registerBlocker(t, s.Registry(), "blocker", started, release)

	v, err := s.Submit("blocker", Params{}, "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "job to reach cancelled", func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State == StateCancelled
	})
	// A second cancel on the terminal job must refuse, not re-finalize.
	if _, err := s.Cancel(v.ID); err != ErrFinished {
		t.Fatalf("cancel on terminal job: err = %v, want ErrFinished", err)
	}
	got, _ := s.Get(v.ID)
	if got.State != StateCancelled {
		t.Fatalf("terminal state overwritten by second cancel: %s", got.State)
	}
	close(release)
}

// TestCancelPinsStateAgainstCompletion races Cancel against a runner that
// ignores its context and completes successfully: whenever Cancel wins the
// admission race (returns without ErrFinished), the job must terminate
// cancelled even though the runner produced a result — the cancelRequested
// pin — and whenever the runner wins, the job stays done. Run under -race
// this also exercises the job-table locking on both paths.
func TestCancelPinsStateAgainstCompletion(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 128})
	err := s.Registry().Register(Experiment{
		Name:        "oblivious",
		Description: "test: finishes successfully, never checks ctx",
		Run: func(ctx context.Context, p Params) (any, cpu.Counters, error) {
			return map[string]int{"n": 1}, cpu.Counters{Runs: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 64
	ids := make([]string, jobs)
	for i := range ids {
		v, err := s.Submit("oblivious", Params{}, "", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	cancelWon := make([]bool, jobs)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, err := s.Cancel(id)
			cancelWon[i] = err == nil
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		id := id
		waitFor(t, 10*time.Second, fmt.Sprintf("job %s terminal", id), func() bool {
			got, err := s.Get(id)
			return err == nil && got.State != StatePending && got.State != StateRunning
		})
		got, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		first := got.State
		switch {
		case cancelWon[i] && first != StateCancelled:
			t.Errorf("job %s: cancel was admitted but state = %s, want cancelled", id, first)
		case !cancelWon[i] && first != StateDone:
			t.Errorf("job %s: cancel refused (already finished) but state = %s, want done", id, first)
		}
	}
	// After every in-flight runner has unwound, no terminal state may have
	// been rewritten by a late-finishing runner.
	final := make(map[string]State, jobs)
	for _, id := range ids {
		got, _ := s.Get(id)
		final[id] = got.State
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, _ := s.Get(id)
		if got.State != final[id] {
			t.Errorf("job %s: terminal state overwritten after drain: %s -> %s", id, final[id], got.State)
		}
	}
}
