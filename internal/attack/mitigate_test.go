package attack

import "testing"

func TestMitigations(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	results, err := EvaluateMitigations()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MitigationResult{}
	for _, r := range results {
		byName[r.Name] = r
		t.Logf("%-40s cost=%-8d defeated=%v", r.Name, r.CostInstructions, r.Defeated)
	}
	if byName["none (baseline)"].Defeated {
		t.Fatal("baseline must leak")
	}
	if !byName["phr-flush (194 uncond branches)"].Defeated {
		t.Fatal("PHR flush must defeat the leak")
	}
	if !byName["phr-randomize (16 random branches)"].Defeated {
		t.Fatal("PHR randomization must defeat the leak")
	}
	// §10.1: PHT-focused defenses leave the PHR readable.
	if byName["pht-flush-sw (leaves PHR readable)"].Defeated {
		t.Fatal("software PHT flush must NOT stop Read PHR")
	}
	// §10.2: the software wash costs on the order of 100k instructions.
	if c := byName["pht-flush-sw (leaves PHR readable)"].CostInstructions; c < 50_000 {
		t.Fatalf("software PHT flush cost %d, expected ~100k", c)
	}
}
