package attack

import (
	"strings"
	"testing"
)

func TestAttackSurfaceMatchesTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	cells, err := AttackSurface()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	// Table 2 of the paper: everything works except PHR primitives across
	// SMT (each logical core has a private PHR).
	for _, p := range []string{"Read PHR", "Write PHR", "Read PHT", "Write PHT"} {
		for _, b := range []string{"User/Kernel Enter", "User/Kernel Exit", "SGX Enter", "SGX Exit", "SMT", "IBPB", "IBRS"} {
			works := true
			if b == "SMT" && strings.Contains(p, "PHR") {
				works = false
			}
			want[p+"|"+b] = works
		}
	}
	got := map[string]bool{}
	for _, c := range cells {
		got[c.Primitive+"|"+c.Boundary] = c.Works
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing cell %s", k)
			continue
		}
		if g != w {
			t.Errorf("cell %s: got %v want %v", k, g, w)
		}
	}
	table := FormatSurface(cells)
	if !strings.Contains(table, "Read PHR") {
		t.Fatal("table formatting broken")
	}
	t.Logf("\n%s", table)
}
