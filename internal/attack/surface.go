package attack

import (
	"fmt"
	"strings"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
	"pathfinder/internal/victim"
)

// SurfaceCell is one entry of Table 2.
type SurfaceCell struct {
	Primitive string
	Boundary  string
	Works     bool
}

// secretAddr is where the boundary victims keep their secret bit.
const secretAddr = 0x00d0_0000

// AttackSurface re-derives Table 2 of the paper by running each primitive
// across each protection boundary on a fresh machine and reporting whether
// it still works. The model encodes the hardware behaviour the paper
// measured (shared PHTs, per-hart PHRs, no flush on ring or enclave
// transitions, IBPB/IBRS restricted to indirect predictors); these
// experiments observe that behaviour through the primitives alone.
func AttackSurface() ([]SurfaceCell, error) {
	var out []SurfaceCell
	add := func(primitive, boundary string, works bool) {
		out = append(out, SurfaceCell{Primitive: primitive, Boundary: boundary, Works: works})
	}

	type boundary struct {
		name  string
		build func() (*cpu.Machine, core.Victim)
	}
	boundaries := []boundary{
		{"User/Kernel Enter", kernelVictim},
		{"User/Kernel Exit", kernelVictim},
		{"SGX Enter", enclaveVictim},
		{"SGX Exit", enclaveVictim},
		{"IBPB", ibpbVictim},
		{"IBRS", ibrsVictim},
	}
	for _, b := range boundaries {
		m, v := b.build()
		phrWorks, phtWorks, err := boundaryLeaks(m, v)
		if err != nil {
			return nil, fmt.Errorf("attack: %s: %w", b.name, err)
		}
		add("Read PHR", b.name, phrWorks)
		add("Write PHR", b.name, phrWorks) // Read PHR is built from Write PHR; they stand or fall together
		add("Read PHT", b.name, phtWorks)
		add("Write PHT", b.name, phtWorks)
	}

	// SMT: co-resident harts share the PHTs but not the PHR (§7.3).
	phrShared, phtShared, err := smtLeaks()
	if err != nil {
		return nil, fmt.Errorf("attack: SMT: %w", err)
	}
	add("Read PHR", "SMT", phrShared)
	add("Write PHR", "SMT", phrShared)
	add("Read PHT", "SMT", phtShared)
	add("Write PHT", "SMT", phtShared)
	return out, nil
}

// boundaryLeaks runs the PHR and PHT leak tests against a victim whose
// secret-dependent branch executes across the given boundary.
func boundaryLeaks(m *cpu.Machine, v core.Victim) (phrWorks, phtWorks bool, err error) {
	// PHR channel: the recovered PHR must distinguish the two secrets.
	m.Mem.Write8(secretAddr, 0)
	r0, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: 24})
	if err != nil {
		return false, false, err
	}
	m.Mem.Write8(secretAddr, 1)
	r1, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: 24})
	if err != nil {
		return false, false, err
	}
	phrWorks = !r0.Equal(r1)

	// PHT channel: prime the secret branch's entry to not-taken, run the
	// victim, read the counter back; it moves iff the secret bit is 1.
	prog, err := v.Build()
	if err != nil {
		return false, false, err
	}
	pc := prog.MustSymbol("sbit_branch")
	read := func(bit byte) (int, error) {
		m.Mem.Write8(secretAddr, bit)
		target, err := phrAtBranch(m, v, pc)
		if err != nil {
			return 0, err
		}
		if err := core.WritePHT(m, pc, target, false); err != nil {
			return 0, err
		}
		for i := 0; i < 2; i++ {
			if err := runCapture(m, v); err != nil {
				return 0, err
			}
		}
		return core.ReadPHT(m, pc, target, 4)
	}
	mis1, err := read(1)
	if err != nil {
		return phrWorks, false, err
	}
	mis0, err := read(0)
	if err != nil {
		return phrWorks, false, err
	}
	phtWorks = mis1 >= 1 && mis1 <= 3 && mis0 == 4
	return phrWorks, phtWorks, nil
}

// phrAtBranch computes the PHR value the victim's branch at pc sees, by
// recovering the victim's control flow like the real attack does.
func phrAtBranch(m *cpu.Machine, v core.Victim, pc uint64) (*phr.Reg, error) {
	rec, err := core.ExtendedReadPHR(m, v, core.ExtendedOptions{})
	if err != nil {
		return nil, err
	}
	reg := phr.New(m.Arch().PHRSize)
	for _, s := range rec.Path.Steps {
		if s.Addr == pc {
			return reg, nil
		}
		if s.Taken {
			reg.UpdateBranch(s.Addr, s.Target)
		}
	}
	return nil, fmt.Errorf("attack: branch %#x not on recovered path", pc)
}

// runCapture runs the victim in the canonical capture context.
func runCapture(m *cpu.Machine, v core.Victim) error {
	_, err := core.CaptureVictimPHR(m, v)
	return err
}

// kernelVictim returns a victim whose secret branch lives in a syscall
// handler: reaching it crosses user->kernel, and observing the result
// crosses kernel->user.
func kernelVictim() (*cpu.Machine, core.Victim) {
	m := cpu.New(cpu.Options{Seed: 71})
	m.RegisterKernelStub(1, "__kernel_leak")
	v := core.Victim{
		Entry: "kv_entry",
		Emit: func(a *isa.Assembler) {
			a.Label("kv_entry")
			a.Label("kv_sys")
			a.Syscall(1)
			a.Ret()
			victim.EmitKernelStub(a, "__kernel_leak", secretBranchPayload)
		},
		Transfers: map[string]string{"kv_sys": "__kernel_leak"},
	}
	return m, v
}

// enclaveVictim puts the secret branch inside an SGX enclave stub.
func enclaveVictim() (*cpu.Machine, core.Victim) {
	m := cpu.New(cpu.Options{Seed: 72})
	m.RegisterEnclaveStub(1, "__enclave_leak")
	v := core.Victim{
		Entry: "ev_entry",
		Emit: func(a *isa.Assembler) {
			a.Label("ev_entry")
			a.Label("ev_sys")
			a.EEnter(1)
			a.Ret()
			victim.EmitEnclaveStub(a, "__enclave_leak", secretBranchPayload)
		},
		Transfers: map[string]string{"ev_sys": "__enclave_leak"},
	}
	return m, v
}

// ibpbVictim issues an IBPB barrier after the secret branch; the
// conditional predictor state must survive it (§7.4).
func ibpbVictim() (*cpu.Machine, core.Victim) {
	m := cpu.New(cpu.Options{Seed: 73})
	v := core.Victim{
		Entry: "bv_entry",
		Emit: func(a *isa.Assembler) {
			a.Label("bv_entry")
			secretBranchPayload(a)
			a.Ibpb()
			a.Ret()
		},
	}
	return m, v
}

// ibrsVictim runs the kernel victim with IBRS active.
func ibrsVictim() (*cpu.Machine, core.Victim) {
	m, v := kernelVictim()
	m.IBRS = true
	return m, v
}

// secretBranchPayload emits the canonical secret-dependent branch.
func secretBranchPayload(a *isa.Assembler) {
	a.MovI(isa.R1, secretAddr)
	a.LdB(isa.R2, isa.R1, 0)
	a.MovI(isa.R3, 1)
	a.Align(0x1_0000, 0x5c80)
	a.Label("sbit_branch")
	a.Br(isa.EQ, isa.R2, isa.R3, "sbit_after")
	a.Label("sbit_after")
	a.Nop()
}

// smtLeaks checks which structures cross SMT harts: the victim runs on
// hart 1, the attacker observes from hart 0.
func smtLeaks() (phrShared, phtShared bool, err error) {
	m := cpu.New(cpu.Options{Seed: 74, Harts: 2})
	v := victim.SecretBitVictim(secretAddr, 0x3c40)
	prog, err := v.Build()
	if err != nil {
		return false, false, err
	}
	pc := prog.MustSymbol("sbit_branch")

	// The victim enters with a cleared PHR on its own hart; its branch sees
	// an all-zero history.
	target := phr.New(m.Arch().PHRSize)

	// PHT channel: prime from hart 0, run the victim once on hart 1 (its
	// first run sees the all-zero PHR), probe from hart 0. Any counter
	// movement proves the tables are shared.
	m.Mem.Write8(secretAddr, 1)
	if err := core.WritePHT(m, pc, target, false); err != nil {
		return false, false, err
	}
	if err := m.RunOn(1, prog, v.Entry); err != nil {
		return false, false, err
	}
	mis, err := core.ReadPHT(m, pc, target, 4)
	if err != nil {
		return false, false, err
	}
	phtShared = mis < 4

	// PHR channel: the victim's taken branch must appear in the attacker
	// hart's PHR for Read PHR to work across SMT. Harts have private PHRs,
	// observable directly in the model.
	hart0 := m.Hart(0).PHR.Clone()
	if err := m.RunOn(1, prog, v.Entry); err != nil {
		return false, false, err
	}
	phrShared = !m.Hart(0).PHR.Equal(hart0) // victim activity visible on hart 0?
	return phrShared, phtShared, nil
}

// FormatSurface renders Table 2.
func FormatSurface(cells []SurfaceCell) string {
	prims := []string{"Read PHR", "Write PHR", "Read PHT", "Write PHT"}
	bounds := []string{"User/Kernel Enter", "User/Kernel Exit", "SGX Enter", "SGX Exit", "SMT", "IBPB", "IBRS"}
	lookup := map[string]bool{}
	for _, c := range cells {
		lookup[c.Primitive+"|"+c.Boundary] = c.Works
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, bd := range bounds {
		fmt.Fprintf(&b, " %-18s", bd)
	}
	b.WriteByte('\n')
	for _, p := range prims {
		fmt.Fprintf(&b, "%-10s", p)
		for _, bd := range bounds {
			mark := "?"
			if w, ok := lookup[p+"|"+bd]; ok {
				if w {
					mark = "yes"
				} else {
					mark = "no"
				}
			}
			fmt.Fprintf(&b, " %-18s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
