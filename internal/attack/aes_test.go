package attack

import (
	"bytes"
	"testing"

	"pathfinder/internal/aes"
	"pathfinder/internal/cpu"
	"pathfinder/internal/victim"
)

func newAESAttack(t *testing.T, noise float64, seed int64) *AESAttack {
	t.Helper()
	m := cpu.New(cpu.Options{Seed: seed, Noise: noise})
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c} // FIPS-197 example key
	a, err := NewAESAttack(m, key)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAESVictimComputesAES(t *testing.T) {
	a := newAESAttack(t, 0, 1)
	prog, err := a.victim().Build()
	if err != nil {
		t.Fatal(err)
	}
	pt := aes.Block{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	if err := victim.VerifyAESProgram(a.M, prog, a.Ctx, pt); err != nil {
		t.Fatal(err)
	}
}

func TestAESControlFlowRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	a := newAESAttack(t, 0, 2)
	if err := a.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	// Figure 6: AES-128 runs its aesenc loop nine times; the loop branch
	// executes 9 times (8 taken back-edges + the exit).
	if got := a.LoopIterations(); got != 9 {
		t.Fatalf("recovered loop iterations %d, want 9", got)
	}
	if got := a.Rec.Path.TakenCount(a.loopBrPC); got != 8 {
		t.Fatalf("taken back-edges %d, want 8", got)
	}
}

func TestAESLeakEveryIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	a := newAESAttack(t, 0, 3)
	if err := a.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	pt := aes.Block{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	// §9 evaluation: speculatively terminate the loop at every possible
	// point: the skip-loop bypass (n=0) and every loop iteration 1..8.
	for n := 0; n <= 8; n++ {
		leak, ok, err := a.LeakReducedRound(pt, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := a.GroundTruthReduced(pt, n)
		if err != nil {
			t.Fatal(err)
		}
		match := 0
		for i := 0; i < 16; i++ {
			if ok[i] && leak[i] == want[i] {
				match++
			}
		}
		if match != 16 {
			t.Fatalf("n=%d: %d/16 bytes stolen correctly (leak % x want % x)", n, match, leak, want)
		}
	}
}

func TestAESKeyRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	a := newAESAttack(t, 0, 4)
	if err := a.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	key, used, err := a.RecoverKey(32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key[:], a.Ctx.Key) {
		t.Fatalf("recovered wrong key % x", key)
	}
	if used > 16 {
		t.Fatalf("noise-free recovery used %d queries", used)
	}
}

func TestAESKeyRecoveryUnderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("long mode only")
	}
	a := newAESAttack(t, 0.05, 5)
	if err := a.RecoverControlFlow(); err != nil {
		t.Fatal(err)
	}
	key, _, err := a.RecoverKey(64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key[:], a.Ctx.Key) {
		t.Fatalf("recovered wrong key under noise % x", key)
	}
}

func TestAESLeakRejectsBadRound(t *testing.T) {
	a := newAESAttack(t, 0, 6)
	a.Rec = nil
	if _, _, err := a.LeakReducedRound(aes.Block{}, 1); err == nil {
		t.Fatal("leak without recovery accepted")
	}
}
