package attack

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/victim"
)

// MitigationResult reports one §10 mitigation evaluation.
type MitigationResult struct {
	Name string
	// CostInstructions is the per-context-switch instruction overhead.
	CostInstructions uint64
	// Defeated reports whether the PHR leak experiment stopped working.
	Defeated bool
}

// EvaluateMitigations runs the §10 software mitigations against the
// canonical secret-bit PHR leak and reports their cost and effectiveness:
//
//   - phr-flush: 194 unconditional branches on the return path (§10.1),
//   - phr-randomize: a handful of random taken branches (§10.1),
//   - pht-flush-sw: ~100k branch executions washing the tables (§10.2),
//   - pht-flush-hw: a hypothetical architectural flush instruction (§10.2).
//
// The PHT mitigations do not stop the plain Read PHR leak — the register is
// not a table — which is the paper's §10.1 observation that PHT-focused
// defenses leave the PHR exposed.
func EvaluateMitigations() ([]MitigationResult, error) {
	var out []MitigationResult

	// Baseline: the leak works.
	base, cost0, err := phrLeakWorks(plainSecretVictim(), 0)
	if err != nil {
		return nil, err
	}
	if !base {
		return nil, fmt.Errorf("attack: baseline PHR leak does not work; mitigation results meaningless")
	}
	out = append(out, MitigationResult{Name: "none (baseline)", CostInstructions: cost0, Defeated: false})

	// PHR flush: Clear_PHR on the boundary.
	works, cost, err := phrLeakWorks(flushedSecretVictim(), cost0)
	if err != nil {
		return nil, err
	}
	out = append(out, MitigationResult{Name: "phr-flush (194 uncond branches)", CostInstructions: cost, Defeated: !works})

	// PHR randomization: non-deterministic branches on the boundary.
	works, cost, err = phrLeakWorks(randomizedSecretVictim(16), cost0)
	if err != nil {
		return nil, err
	}
	out = append(out, MitigationResult{Name: "phr-randomize (16 random branches)", CostInstructions: cost, Defeated: !works})

	// PHT flushes leave the PHR readable.
	m := cpu.New(cpu.Options{Seed: 81})
	swCost, err := SoftwarePHTFlush(m)
	if err != nil {
		return nil, err
	}
	works, _, err = phrLeakWorks(plainSecretVictim(), 0)
	if err != nil {
		return nil, err
	}
	out = append(out, MitigationResult{Name: "pht-flush-sw (leaves PHR readable)", CostInstructions: swCost, Defeated: !works})
	out = append(out, MitigationResult{Name: "pht-flush-hw (leaves PHR readable)", CostInstructions: 1, Defeated: !works})
	return out, nil
}

// phrLeakWorks measures whether Read_PHR distinguishes the two secrets, and
// the victim's per-call instruction cost.
func phrLeakWorks(v core.Victim, baselineCost uint64) (works bool, cost uint64, err error) {
	m := cpu.New(cpu.Options{Seed: 82})
	prog, err := v.Build()
	if err != nil {
		return false, 0, err
	}
	m.Mem.Write8(secretAddr, 0)
	m.ResetStats()
	if err := m.Run(prog, v.Entry); err != nil {
		return false, 0, err
	}
	cost = m.Stats().Instructions

	read := func(bit byte) (string, error) {
		m.Mem.Write8(secretAddr, bit)
		r, err := core.ReadPHR(m, v, core.ReadPHROptions{MaxDoublets: 16})
		if err != nil {
			return "", nil // unreadable PHR: the mitigation broke the primitive itself
		}
		return r.String(), nil
	}
	s0, err := read(0)
	if err != nil {
		return false, cost, err
	}
	s1, err := read(1)
	if err != nil {
		return false, cost, err
	}
	if s0 == "" || s1 == "" {
		return false, cost, nil
	}
	return s0 != s1, cost, nil
}

// plainSecretVictim is the unprotected leak target.
func plainSecretVictim() core.Victim {
	return victim.SecretBitVictim(secretAddr, 0x5c80)
}

// flushedSecretVictim appends Clear_PHR to the victim's return path: the
// §10.1 flush mitigation.
func flushedSecretVictim() core.Victim {
	v := plainSecretVictim()
	emit := v.Emit
	v.Emit = func(a *isa.Assembler) {
		// Rebuild the victim body without its RET, then flush and return.
		_ = emit
		a.Label("sbit_entry")
		a.MovI(isa.R1, secretAddr)
		a.LdB(isa.R2, isa.R1, 0)
		a.MovI(isa.R3, 1)
		a.Align(0x1_0000, 0x5c80)
		a.Label("sbit_branch")
		a.Br(isa.EQ, isa.R2, isa.R3, "sbit_after")
		a.Label("sbit_after")
		core.EmitClearPHR(a, "mflush", 194, "mflush_done")
		a.Align(0x40, 0)
		a.Label("mflush_done")
		a.Ret()
	}
	return v
}

// randomizedSecretVictim adds n random-direction taken branches after the
// secret branch: the §10.1 randomization mitigation.
func randomizedSecretVictim(n int) core.Victim {
	v := plainSecretVictim()
	v.Emit = func(a *isa.Assembler) {
		a.Label("sbit_entry")
		a.MovI(isa.R1, secretAddr)
		a.LdB(isa.R2, isa.R1, 0)
		a.MovI(isa.R3, 1)
		a.Align(0x1_0000, 0x5c80)
		a.Label("sbit_branch")
		a.Br(isa.EQ, isa.R2, isa.R3, "sbit_after")
		a.Label("sbit_after")
		for i := 0; i < n; i++ {
			a.Rand(isa.R4)
			a.And(isa.R4, isa.R4, isa.R3)
			a.Br(isa.EQ, isa.R4, isa.R3, fmt.Sprintf("mr_a%d", i))
			a.Jmp(fmt.Sprintf("mr_b%d", i))
			a.Label(fmt.Sprintf("mr_a%d", i))
			a.Nop()
			a.Label(fmt.Sprintf("mr_b%d", i))
			a.Nop()
		}
		a.Ret()
	}
	return v
}

// SoftwarePHTFlush executes the §10.2 software table wash: conditional
// branches covering every base-predictor index with alternating outcomes
// and churning path histories, costing on the order of 100k instructions.
// It returns the instruction count.
func SoftwarePHTFlush(m *cpu.Machine) (uint64, error) {
	a := isa.NewAssembler()
	a.Org(0x6000_0000)
	a.Label("flush_main")
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, 8) // passes
	a.Label("flush_pass")
	// 8192 branch sites, one per base-predictor index, each conditional on
	// the pass parity so counters see both directions.
	a.MovI(isa.R3, 1)
	a.And(isa.R4, isa.R1, isa.R3)
	for slot := 0; slot < 1<<13; slot++ {
		a.Align(0x4000, uint64(slot))
		a.Br(isa.EQ, isa.R4, isa.R3, fmt.Sprintf("flush_t%d", slot))
		a.Label(fmt.Sprintf("flush_t%d", slot))
		a.Nop()
	}
	a.AddI(isa.R1, isa.R1, 1)
	a.Br(isa.LT, isa.R1, isa.R2, "flush_pass")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		return 0, err
	}
	m.ResetStats()
	if err := m.Run(p, "flush_main"); err != nil {
		return 0, err
	}
	return m.Stats().Instructions, nil
}
