// Package attack composes the core primitives into the paper's end-to-end
// case studies: the high-resolution Spectre attack on looped AES that leaks
// reduced-round ciphertexts and recovers the key (§9), the libjpeg-style
// secret-image recovery (§8), the attack-surface analysis across protection
// boundaries (§7, Table 2), and the mitigation evaluations (§10).
package attack

import (
	"fmt"

	"pathfinder/internal/aes"
	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/phr"
	"pathfinder/internal/victim"
)

// AESAttack drives the §9 case study against one oracle instance.
type AESAttack struct {
	M   *cpu.Machine
	Ctx *victim.AESContext

	// Recovered control-flow state (phase 1).
	Rec *core.ExtendedResult

	loopBrPC  uint64
	entryBrPC uint64

	// lastPoison remembers the previously poisoned entry so the next query
	// can re-train it to its architectural direction first; a stale poison
	// would fire a second transient leak and garble the probe decode.
	lastPoison *poison
}

type poison struct {
	pc      uint64
	target  *phr.Reg
	correct bool
}

// NewAESAttack builds the victim oracle on the machine and prepares the
// attack. The attacker knows the binary (§3) but not the key.
func NewAESAttack(m *cpu.Machine, key []byte) (*AESAttack, error) {
	ctx, err := victim.NewAESContext(key)
	if err != nil {
		return nil, err
	}
	ctx.Install(m)
	return &AESAttack{M: m, Ctx: ctx}, nil
}

// Fork binds the attack to a fresh machine for an independent oracle query,
// sharing the immutable victim context and the control flow recovered by a
// completed RecoverControlFlow on the original machine. The fork installs
// the victim state on the new machine and starts with no poison history.
// Forks never touch each other's machines, so queries on distinct forks can
// run concurrently.
func (a *AESAttack) Fork(m *cpu.Machine) (*AESAttack, error) {
	if a.Rec == nil {
		return nil, fmt.Errorf("attack: fork requires a completed RecoverControlFlow")
	}
	a.Ctx.Install(m)
	return &AESAttack{M: m, Ctx: a.Ctx, Rec: a.Rec, loopBrPC: a.loopBrPC, entryBrPC: a.entryBrPC}, nil
}

// Warm runs the capture program the given number of times without poisoning,
// training every branch to its architectural direction. Phase 1 leaves the
// original machine in that state as a side effect; a fork on a fresh machine
// calls Warm before its first poisoned query so the poisoned instance is the
// only misprediction in a leak run (stray mispredictions open extra
// transient windows that garble the probe decode).
func (a *AESAttack) Warm(runs int) error {
	if a.Rec == nil {
		return fmt.Errorf("attack: run RecoverControlFlow first")
	}
	for i := 0; i < runs; i++ {
		if err := a.M.Run(a.Rec.CaptureProgram, "cap_main"); err != nil {
			return err
		}
	}
	return nil
}

func (a *AESAttack) victim() core.Victim {
	v := victim.AESVictim()
	setup := v.Setup
	v.Setup = func(m *cpu.Machine) {
		if setup != nil {
			setup(m)
		}
		a.Ctx.Install(m)
	}
	return v
}

// RecoverControlFlow is phase 1 (§9.2 "Mistraining"): Extended Read PHR
// plus Pathfinder recover the victim's complete control flow, giving the
// exact PHR value at every loop iteration.
func (a *AESAttack) RecoverControlFlow() error {
	a.Ctx.SetPlaintext(a.M, aes.Block{}) // any fixed input; flow is constant-time
	rec, err := core.ExtendedReadPHR(a.M, a.victim(), core.ExtendedOptions{})
	if err != nil {
		return fmt.Errorf("attack: control-flow recovery: %w", err)
	}
	if !rec.Path.Complete {
		return fmt.Errorf("attack: recovered path incomplete")
	}
	a.Rec = rec
	a.loopBrPC = rec.CaptureProgram.MustSymbol("aes_loopbr")
	a.entryBrPC = rec.CaptureProgram.MustSymbol("aes_entrycheck")
	return nil
}

// AdoptRecovery installs a phase-1 recovery completed elsewhere — typically
// replayed from the harness warm-state cache alongside a machine-snapshot
// restore — exactly as if this attack's own RecoverControlFlow had produced
// it. The result is shared, not copied; it is immutable after recovery
// (Fork relies on the same property). Any poison bookkeeping is cleared:
// adopting a recovery only makes sense on a machine whose predictor state
// matches the recovery's post-phase-1 checkpoint, which has no live poison.
func (a *AESAttack) AdoptRecovery(rec *core.ExtendedResult) error {
	if rec == nil || !rec.Path.Complete {
		return fmt.Errorf("attack: adopting an incomplete control-flow recovery")
	}
	a.Rec = rec
	a.loopBrPC = rec.CaptureProgram.MustSymbol("aes_loopbr")
	a.entryBrPC = rec.CaptureProgram.MustSymbol("aes_entrycheck")
	a.lastPoison = nil
	return nil
}

// LoopIterations returns the recovered trip count of the encryption loop —
// the Figure 6 readout (9 for AES-128).
func (a *AESAttack) LoopIterations() int {
	return a.Rec.Path.VisitCount(a.loopBrPC)
}

// phrBeforeInstance replays the recovered path to compute the PHR value the
// predictor sees at the given execution instance (1-based) of the branch at
// pc. The path starts at the cleared call site, so the replay starts from
// an all-zero register.
func (a *AESAttack) phrBeforeInstance(pc uint64, instance int) (*phr.Reg, error) {
	reg := phr.New(a.M.Arch().PHRSize)
	seen := 0
	for _, s := range a.Rec.Path.Steps {
		if s.Addr == pc {
			seen++
			if seen == instance {
				return reg, nil
			}
		}
		if s.Taken {
			reg.UpdateBranch(s.Addr, s.Target)
		}
	}
	return nil, fmt.Errorf("attack: branch %#x has only %d instances, want %d", pc, seen, instance)
}

// LeakReducedRound runs one oracle query poisoned to speculatively exit the
// encryption loop after n full rounds (n = 0 bypasses the loop entirely via
// the BB1 bounds check). It returns the bytes recovered through
// Flush+Reload and a mask of positions that decoded unambiguously.
func (a *AESAttack) LeakReducedRound(pt aes.Block, n int) (leak aes.Block, okMask [16]bool, err error) {
	if a.Rec == nil {
		return leak, okMask, fmt.Errorf("attack: run RecoverControlFlow first")
	}
	rounds := len(a.Ctx.RoundKeys) - 1
	if n < 0 || n >= rounds {
		return leak, okMask, fmt.Errorf("attack: reduced round count %d out of range [0,%d)", n, rounds)
	}
	// Poison the PHT entry of the branch instance that must mispredict.
	var pc uint64
	var instance int
	var direction bool
	if n == 0 {
		pc, instance, direction = a.entryBrPC, 1, true // predict "jbe" taken
	} else {
		pc, instance, direction = a.loopBrPC, n, false // predict loop exit
	}
	target, err := a.phrBeforeInstance(pc, instance)
	if err != nil {
		return leak, okMask, err
	}
	if p := a.lastPoison; p != nil {
		if err := core.WritePHT(a.M, p.pc, p.target, p.correct); err != nil {
			return leak, okMask, err
		}
		a.lastPoison = nil
	}
	if err := core.WritePHT(a.M, pc, target, direction); err != nil {
		return leak, okMask, err
	}
	a.lastPoison = &poison{pc: pc, target: target, correct: !direction}

	// Query the oracle with the transient window widened and the probe
	// pages cold.
	a.Ctx.SetPlaintext(a.M, pt)
	victim.FlushProbe(a.M)
	a.M.Data.Flush(victim.AESRounds)
	if err := a.M.Run(a.Rec.CaptureProgram, "cap_main"); err != nil {
		return leak, okMask, err
	}
	trueCT := a.Ctx.Ciphertext(a.M)

	// Decode: each probe region holds the architectural ciphertext byte
	// plus (when the transient leak fired and differs) the reduced-round
	// byte.
	vals, counts := probeHits(a.M)
	for pos := 0; pos < 16; pos++ {
		if counts[pos] > len(vals[pos]) {
			// Noise lit more probe lines than the decoder tracks; the
			// position is hopelessly ambiguous, not a reason to crash.
			okMask[pos] = false
			continue
		}
		others := 0
		var other byte
		for _, v := range vals[pos][:counts[pos]] {
			if v != trueCT[pos] {
				others++
				other = v
			}
		}
		switch others {
		case 0:
			// Only the architectural byte hit: the leaked byte equals it.
			leak[pos], okMask[pos] = trueCT[pos], counts[pos] >= 1
		case 1:
			leak[pos], okMask[pos] = other, true
		default:
			okMask[pos] = false
		}
	}
	return leak, okMask, nil
}

// probeHits collects up to 4 hit values per byte position.
func probeHits(m *cpu.Machine) (vals [16][4]byte, counts [16]int) {
	for pos := 0; pos < 16; pos++ {
		for v := 0; v < 256; v++ {
			if m.Data.Contains(victim.ProbeSlot(pos, byte(v))) {
				if counts[pos] < 4 {
					vals[pos][counts[pos]] = byte(v)
				}
				counts[pos]++
			}
		}
	}
	return vals, counts
}

// GroundTruthReduced returns what the early exit after n rounds computes,
// obtained by calling the reference implementation with a reduced round
// count — the paper's ground-truth protocol for the §9 evaluation.
func (a *AESAttack) GroundTruthReduced(pt aes.Block, n int) (aes.Block, error) {
	return aes.ReducedEncrypt(a.Ctx.RoundKeys, pt, n)
}

// RecoverKey recovers the full AES-128 key from skip-loop leaks (n = 0) for
// a handful of known plaintexts, verifying against the oracle's true
// ciphertext. It retries noisy leaks until `queries` oracle calls are
// spent.
func (a *AESAttack) RecoverKey(queries int) (aes.Block, int, error) {
	if len(a.Ctx.Key) != 16 {
		return aes.Block{}, 0, fmt.Errorf("attack: key recovery implemented for AES-128")
	}
	var obs []aes.LeakedPair
	var cts []aes.Block
	used := 0
	rng := newSplitMix(0x5eed)
	for used < queries {
		var pt aes.Block
		for i := range pt {
			pt[i] = byte(rng.next())
		}
		leak, ok, err := a.LeakReducedRound(pt, 0)
		used++
		if err != nil {
			return aes.Block{}, used, err
		}
		if !allOK(ok) {
			continue // ambiguous decode; retry with a fresh plaintext
		}
		obs = append(obs, aes.LeakedPair{Plaintext: pt, Leak: leak})
		cts = append(cts, a.Ctx.Ciphertext(a.M))
		if len(obs) < 4 {
			continue
		}
		key, err := aes.RecoverKeyFromLeaks(obs, cts[0], true)
		if err == nil {
			return key, used, nil
		}
		// A silent transient failure poisoned the set (the decode saw only
		// the architectural ciphertext); drop the oldest observation and
		// keep querying.
		obs = obs[1:]
		cts = cts[1:]
	}
	return aes.Block{}, used, fmt.Errorf("attack: key not recovered within %d oracle queries", queries)
}

func allOK(ok [16]bool) bool {
	for _, v := range ok {
		if !v {
			return false
		}
	}
	return true
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}
