package attack

import (
	"testing"

	"pathfinder/internal/cpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
	"pathfinder/internal/victim"
)

func TestIDCTVictimControlFlowMatchesPredicates(t *testing.T) {
	// Architectural check: the victim's simple/complex decisions equal the
	// jpeg package's Constant* predicates.
	img := media.QRLike(16, 16, 42)
	enc, err := jpeg.Encode(img.Pix, img.W, img.H, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, blocks, err := jpeg.DecodeBlocks(enc)
	if err != nil {
		t.Fatal(err)
	}
	v := victim.IDCTVictim(len(blocks), blocks)
	prog, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(cpu.Options{})
	v.Setup(m)
	if err := m.Run(prog, "idct_entry"); err != nil {
		t.Fatal(err)
	}
	// R8 counts simple paths, R9 counts 2 per complex path.
	wantSimple := 0
	for b := range blocks {
		wantSimple += jpeg.ConstantCount(&blocks[b])
	}
	if got := int(m.Hart(0).Reg(isa.R8)); got != wantSimple {
		t.Fatalf("simple-path count %d, want %d", got, wantSimple)
	}
	wantComplex := 16*len(blocks) - wantSimple
	if got := int(m.Hart(0).Reg(isa.R9)); got != 2*wantComplex {
		t.Fatalf("complex-path marker %d, want %d", got, 2*wantComplex)
	}
}

func TestImageRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("image recovery in long mode only")
	}
	img := media.QRLike(24, 24, 7)
	enc, err := jpeg.Encode(img.Pix, img.W, img.H, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, blocks, err := jpeg.DecodeBlocks(enc)
	if err != nil {
		t.Fatal(err)
	}

	ir := &ImageRecovery{M: cpu.New(cpu.Options{Seed: 9})}
	res, err := ir.Recover(enc)
	if err != nil {
		t.Fatal(err)
	}
	wantCols, wantRows := GroundTruthFlags(blocks)
	for b := range blocks {
		if res.ConstCols[b] != wantCols[b] {
			t.Fatalf("block %d: cols %v, want %v", b, res.ConstCols[b], wantCols[b])
		}
		if res.ConstRows[b] != wantRows[b] {
			t.Fatalf("block %d: rows %v, want %v", b, res.ConstRows[b], wantRows[b])
		}
	}
	if res.TakenBranches < 194 {
		t.Fatalf("victim history only %d taken branches; test should exceed the PHR window", res.TakenBranches)
	}
	if err := res.Score(img); err != nil {
		t.Fatal(err)
	}
	t.Logf("taken branches %d, edge correlation %.2f", res.TakenBranches, res.EdgeCorrelation)
}
