package attack

import (
	"fmt"

	"pathfinder/internal/core"
	"pathfinder/internal/cpu"
	"pathfinder/internal/jpeg"
	"pathfinder/internal/media"
	"pathfinder/internal/victim"
)

// ImageRecovery is the §8 case study: the attacker captures the complete
// control flow of the victim's IDCT over a secret image and reconstructs
// the image's block-complexity map, which resembles an edge detection of
// the original.
type ImageRecovery struct {
	M *cpu.Machine
	// ExtOpts tunes the Extended Read PHR phase.
	ExtOpts core.ExtendedOptions
}

// ImageResult reports one recovered image.
type ImageResult struct {
	// ConstCols/ConstRows hold the recovered fast-path decisions per block.
	ConstCols, ConstRows [][8]bool
	// Recovered is the block-complexity image, 8×8-upsampled: bright where
	// the block is complex (few constant rows/columns) — edge-like.
	Recovered *media.Gray
	// TakenBranches is the length of the recovered control-flow history.
	TakenBranches int
	// EdgeCorrelation is the Pearson correlation between the recovered
	// block values and the original's edge map (when the original is given
	// to Score).
	EdgeCorrelation float64
}

// Recover runs the attack against the encoded secret image. The attacker
// sees only the victim binary and the shared predictor state — the encoded
// bytes are used solely to set up the victim's own memory.
func (ir *ImageRecovery) Recover(enc []byte) (*ImageResult, error) {
	hdr, blocks, err := jpeg.DecodeBlocks(enc)
	if err != nil {
		return nil, err
	}
	v := victim.IDCTVictim(len(blocks), blocks)
	rec, err := core.ExtendedReadPHR(ir.M, v, ir.ExtOpts)
	if err != nil {
		return nil, fmt.Errorf("attack: image control-flow recovery: %w", err)
	}
	if !rec.Path.Complete {
		return nil, fmt.Errorf("attack: image path incomplete")
	}
	taken := 0
	for _, s := range rec.Path.Steps {
		if s.Taken {
			taken++
		}
	}
	cols, rows, err := interpretIDCTPath(rec, len(blocks))
	if err != nil {
		return nil, err
	}
	res := &ImageResult{
		ConstCols:     cols,
		ConstRows:     rows,
		TakenBranches: taken,
	}
	res.Recovered = renderComplexity(cols, rows, hdr.BlocksW, hdr.BlocksH)
	return res, nil
}

// interpretIDCTPath converts the recovered branch-outcome stream into
// per-block constant-column/row decisions by replaying Listing 2's control
// structure: per column/row, outcomes of checks k=1.. are consumed until
// one is taken (non-constant) or all seven fall through (constant).
func interpretIDCTPath(rec *core.ExtendedResult, nblocks int) (cols, rows [][8]bool, err error) {
	colLabels, rowLabels := victim.IDCTCheckLabels()
	addrK := make(map[uint64]struct {
		pass, k int
	})
	for k := 0; k < 7; k++ {
		addrK[rec.CaptureProgram.MustSymbol(colLabels[k])] = struct{ pass, k int }{0, k + 1}
		addrK[rec.CaptureProgram.MustSymbol(rowLabels[k])] = struct{ pass, k int }{1, k + 1}
	}
	type ev struct {
		pass, k int
		taken   bool
	}
	var evs []ev
	for _, s := range rec.Path.Outcomes() {
		if info, ok := addrK[s.Addr]; ok {
			evs = append(evs, ev{info.pass, info.k, s.Taken})
		}
	}
	cols = make([][8]bool, nblocks)
	rows = make([][8]bool, nblocks)
	pos := 0
	for b := 0; b < nblocks; b++ {
		for pass := 0; pass < 2; pass++ {
			for idx := 0; idx < 8; idx++ {
				constant := true
				for k := 1; k <= 7; k++ {
					if pos >= len(evs) {
						return nil, nil, fmt.Errorf("attack: branch stream ended at block %d pass %d idx %d", b, pass, idx)
					}
					e := evs[pos]
					if e.pass != pass || e.k != k {
						return nil, nil, fmt.Errorf("attack: branch stream out of order at block %d: got pass %d k %d, want pass %d k %d", b, e.pass, e.k, pass, k)
					}
					pos++
					if e.taken { // a nonzero coefficient: complex path
						constant = false
						break
					}
				}
				if pass == 0 {
					cols[b][idx] = constant
				} else {
					rows[b][idx] = constant
				}
			}
		}
	}
	if pos != len(evs) {
		return nil, nil, fmt.Errorf("attack: %d unconsumed check-branch outcomes", len(evs)-pos)
	}
	return cols, rows, nil
}

// renderComplexity paints each block with its complexity (16 − constant
// rows/cols, scaled), upsampled to pixels.
func renderComplexity(cols, rows [][8]bool, bw, bh int) *media.Gray {
	g := media.NewGray(bw*8, bh*8)
	for b := range cols {
		n := 0
		for i := 0; i < 8; i++ {
			if cols[b][i] {
				n++
			}
			if rows[b][i] {
				n++
			}
		}
		v := byte((16 - n) * 255 / 16)
		bx, by := b%bw, b/bw
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				g.Set(bx*8+x, by*8+y, v)
			}
		}
	}
	return g
}

// Score fills EdgeCorrelation by comparing the recovered complexity map
// with the original image's edge map at block granularity.
func (r *ImageResult) Score(original *media.Gray) error {
	corr, err := media.Pearson(media.BlockMean(r.Recovered), media.BlockMean(media.EdgeMap(original)))
	if err != nil {
		return err
	}
	r.EdgeCorrelation = corr
	return nil
}

// GroundTruthFlags computes the true constant flags from the coefficients,
// for evaluation.
func GroundTruthFlags(blocks []jpeg.Block) (cols, rows [][8]bool) {
	cols = make([][8]bool, len(blocks))
	rows = make([][8]bool, len(blocks))
	for b := range blocks {
		for i := 0; i < 8; i++ {
			cols[b][i] = jpeg.ConstantColumn(&blocks[b], i)
			rows[b][i] = jpeg.ConstantRow(&blocks[b], i)
		}
	}
	return cols, rows
}
