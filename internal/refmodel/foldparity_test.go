package refmodel

import (
	"testing"

	"pathfinder/internal/phr"
)

// TestFoldCacheRefModelParity replays >100k random taken branches through
// the production packed register (whose Fold results come from the
// incremental FoldCache) and the naive reference PHR side by side, comparing
// every Table 1 fold after every branch. The production register is
// additionally churned with exact ReverseUpdate/Update undo-redo pairs and
// occasional SetDoublet writes mirrored to the reference — both exercise the
// reverse incremental formula and the cache invalidation paths while keeping
// the two histories equal.
func TestFoldCacheRefModelParity(t *testing.T) {
	type win struct{ histLen, width int }
	for _, cfg := range []struct {
		size int
		wins []win
	}{
		{194, []win{{34, 8}, {66, 8}, {194, 8}, {194, 16}, {34, 12}, {66, 12}, {194, 12}}},
		{93, []win{{24, 8}, {46, 8}, {93, 8}, {93, 16}}},
	} {
		prod := phr.New(cfg.size)
		ref := NewPHR(cfg.size)
		rng := uint64(0xfeed + cfg.size)
		next := func() uint64 {
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
			z = (z ^ z>>27) * 0x94d049bb133111eb
			return z ^ z>>31
		}
		steps := 110000 / len(cfg.wins)
		if testing.Short() {
			steps = 5000
		}
		for step := 0; step < steps; step++ {
			br, tgt := next(), next()
			switch step % 50 {
			case 17:
				// Structural write, mirrored on both sides: invalidates the
				// production fold cache.
				i := int(next() % uint64(cfg.size))
				v := phr.Doublet(next()) & 3
				prod.SetDoublet(i, v)
				ref.SetDoublet(i, v)
			case 33:
				// Exact undo-redo churn on the production register only:
				// net identity, but it runs the reverse incremental path.
				fp := phr.Footprint(br, tgt)
				top := prod.Doublet(cfg.size - 1)
				prod.Update(fp)
				_ = prod.Fold(cfg.wins[0].histLen, cfg.wins[0].width)
				prod.ReverseUpdate(fp, top)
			default:
				prod.UpdateBranch(br, tgt)
				ref.UpdateBranch(br, tgt)
			}
			for _, w := range cfg.wins {
				if got, want := prod.Fold(w.histLen, w.width), ref.Fold(w.histLen, w.width); got != want {
					t.Fatalf("size=%d step=%d Fold(%d,%d): production %#x, refmodel %#x",
						cfg.size, step, w.histLen, w.width, got, want)
				}
				if got, want := prod.FoldMix(w.histLen, w.width), ref.FoldMix(w.histLen, w.width); got != want {
					t.Fatalf("size=%d step=%d FoldMix(%d,%d): production %#x, refmodel %#x",
						cfg.size, step, w.histLen, w.width, got, want)
				}
			}
		}
	}
}
