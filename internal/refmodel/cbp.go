package refmodel

import (
	"fmt"
	"strings"

	"pathfinder/internal/bpu"
	"pathfinder/internal/phr"
)

// CBP is the reference conditional branch predictor: the naive base and
// tagged tables composed under the TAGE discipline of Figure 3. It
// satisfies bpu.Predictor, so it can back internal/cpu and the harness
// drivers in place of the production bpu.CBP, and internal/trace replays
// branch streams through both to detect divergence.
type CBP struct {
	cfg     bpu.Config
	Base    *BaseTable
	Tables  []*TaggedTable
	updates uint64
}

var _ bpu.Predictor = (*CBP)(nil)

// New builds an empty reference predictor for the given microarchitecture.
func New(cfg bpu.Config) *CBP {
	c := &CBP{cfg: cfg, Base: NewBase()}
	for _, h := range cfg.TableHists {
		c.Tables = append(c.Tables, NewTagged(h))
	}
	return c
}

// NewPredictor is New with the bpu.Predictor return type, the shape
// cpu.Options.NewPredictor and harness.Options expect.
func NewPredictor(cfg bpu.Config) bpu.Predictor { return New(cfg) }

// Config returns the modeled microarchitecture.
func (c *CBP) Config() bpu.Config { return c.cfg }

// Predict walks every component in ascending history order; the last hit
// provides the prediction, the previous best becomes the alternate.
func (c *CBP) Predict(pc uint64, h phr.History) bpu.Prediction {
	base := c.Base.Predict(pc)
	p := bpu.Prediction{Provider: -1, Taken: base, AltTaken: base}
	for i, t := range c.Tables {
		if taken, hit := t.Predict(pc, h); hit {
			p.AltTaken = p.Taken
			p.Taken = taken
			p.Provider = i
		}
	}
	return p
}

// Update resolves one conditional branch, mirroring the update discipline
// of the production model step for step: periodic usefulness decay first,
// then provider training (with usefulness bookkeeping only when provider
// and alternate disagreed), then on a misprediction an allocation sweep
// through the longer-history tables.
func (c *CBP) Update(pc uint64, h phr.History, taken bool, p bpu.Prediction) {
	c.updates++
	if c.updates%bpu.UsefulResetPeriod == 0 {
		for _, t := range c.Tables {
			t.DecayUseful()
		}
	}
	if p.Provider < 0 {
		c.Base.Update(pc, taken)
	} else if e, hit := c.Tables[p.Provider].lookup(pc, h); hit {
		e.ctr = ctrUpdate(e.ctr, taken)
		if p.Taken != p.AltTaken {
			if p.Taken == taken {
				if e.useful < usefulMax {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	}
	if p.Taken != taken {
		for i := p.Provider + 1; i < len(c.Tables); i++ {
			if c.Tables[i].Allocate(pc, h, taken) {
				break
			}
		}
	}
}

// Flush clears every structure.
func (c *CBP) Flush() {
	c.Base.Reset()
	for _, t := range c.Tables {
		t.Reset()
	}
}

// DumpState renders the full predictor state for divergence reports, in
// the same shape as the production CBP's dump.
func (c *CBP) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RefCBP %s (updates=%d)\n", c.cfg.Name, c.updates)
	b.WriteString(c.Base.Dump())
	for i, t := range c.Tables {
		fmt.Fprintf(&b, "table %d (hist %d):\n", i, t.HistLen)
		b.WriteString(t.Dump())
	}
	return b.String()
}
