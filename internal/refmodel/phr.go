// Package refmodel is a slow, deliberately naive reference implementation
// ("oracle") of the three microarchitectural structures the Pathfinder
// attacks model: the path history register (§2.2.1, Figure 2), the base and
// tagged pattern history tables (Figure 3), and the TAGE-style conditional
// branch predictor composing them.
//
// Everything here is written for obviousness, not speed: the PHR is a plain
// doublet slice that literally shifts all 194 elements per taken branch and
// recomputes every fold bit by bit, and the tables are maps with explicit
// provider/allocate/useful bookkeeping. None of the production model's
// bit-packing, memoization, or fast paths appear. The two implementations
// share the phr.History and bpu.Predictor interfaces, so either can back
// internal/cpu and internal/harness, and internal/trace replays identical
// branch streams through both to pin the fast model to this one. Future
// performance work on internal/phr, internal/pht, or internal/bpu is
// verified against this package; keep it boring.
package refmodel

import (
	"fmt"
	"strings"

	"pathfinder/internal/phr"
)

// footprintSpec is the Figure 2 bit layout, listed from output bit 15 down
// to output bit 0. Each output bit is one branch-address bit, optionally
// XORed with one target-address bit (target < 0 means no target bit).
var footprintSpec = [16]struct{ branch, target int }{
	{12, -1}, // bit 15
	{13, -1}, // bit 14
	{5, -1},  // bit 13
	{6, -1},  // bit 12
	{7, -1},  // bit 11
	{8, -1},  // bit 10
	{9, -1},  // bit 9
	{10, -1}, // bit 8
	{0, 2},   // bit 7
	{1, 3},   // bit 6
	{2, 4},   // bit 5
	{11, 5},  // bit 4
	{14, -1}, // bit 3
	{15, -1}, // bit 2
	{3, 0},   // bit 1
	{4, 1},   // bit 0
}

// Footprint recomputes the 16-bit Figure 2 branch footprint directly from
// the layout table, independently of phr.Footprint's shift-and-or form.
func Footprint(branchAddr, targetAddr uint64) uint16 {
	var f uint16
	for i, spec := range footprintSpec {
		bit := uint16(branchAddr>>uint(spec.branch)) & 1
		if spec.target >= 0 {
			bit ^= uint16(targetAddr>>uint(spec.target)) & 1
		}
		out := 15 - i
		f |= bit << uint(out)
	}
	return f
}

// PHR is the reference path history register: a plain slice of two-bit
// doublets, index 0 most recent. It satisfies phr.History and mirrors the
// mutating surface of phr.Reg that the replayer and the CPU model drive.
type PHR struct {
	d   []uint8
	gen uint64
}

var _ phr.History = (*PHR)(nil)

// NewPHR returns an all-zero reference register of the given doublet count.
func NewPHR(size int) *PHR {
	if size < phr.FootprintDoublets {
		panic(fmt.Sprintf("refmodel: unsupported PHR size %d", size))
	}
	return &PHR{d: make([]uint8, size)}
}

// Size returns the register length in doublets.
func (p *PHR) Size() int { return len(p.d) }

// Gen returns the mutation counter.
func (p *PHR) Gen() uint64 { return p.gen }

// Doublet returns doublet i (0 = most recent).
func (p *PHR) Doublet(i int) phr.Doublet { return p.d[i] }

// SetDoublet sets doublet i to v (low two bits used).
func (p *PHR) SetDoublet(i int, v phr.Doublet) {
	p.d[i] = v & 3
	p.gen++
}

// Clear zeroes every doublet.
func (p *PHR) Clear() {
	for i := range p.d {
		p.d[i] = 0
	}
	p.gen++
}

// Update applies one taken-branch update the way §2.2.1 describes it:
// every doublet literally moves one position older, the newest doublet
// becomes zero, and the footprint is XORed into the low eight doublets.
func (p *PHR) Update(footprint uint16) {
	for i := len(p.d) - 1; i >= 1; i-- {
		p.d[i] = p.d[i-1]
	}
	p.d[0] = 0
	for j := 0; j < phr.FootprintDoublets; j++ {
		p.d[j] ^= uint8(footprint>>uint(2*j)) & 3
	}
	p.gen++
}

// UpdateBranch is Update with the footprint recomputed from the addresses.
func (p *PHR) UpdateBranch(branchAddr, targetAddr uint64) {
	p.Update(Footprint(branchAddr, targetAddr))
}

// bit returns packed history bit i: doublet i/2 contributes its low bit at
// even positions and its high bit at odd positions, matching the packed
// layout of phr.Reg.
func (p *PHR) bit(i int) uint32 {
	return uint32(p.d[i/2]>>uint(i%2)) & 1
}

// Fold XOR-folds the lowest histLen doublets into width bits, assembling
// every chunk bit by bit (LSB-first chunks, exactly the spec in
// phr.Reg.Fold but with none of its fast paths).
func (p *PHR) Fold(histLen, width int) uint32 {
	if histLen > len(p.d) {
		histLen = len(p.d)
	}
	if width <= 0 || width > 32 {
		panic("refmodel: fold width out of range")
	}
	bits := 2 * histLen
	var acc uint32
	for o := 0; o < bits; o += width {
		acc ^= p.chunk(o, width, bits)
	}
	return acc & (uint32(1)<<uint(width) - 1)
}

// FoldMix is the tag fold: between chunks the accumulator rotates left by
// three within the fold width.
func (p *PHR) FoldMix(histLen, width int) uint32 {
	if histLen > len(p.d) {
		histLen = len(p.d)
	}
	if width <= 2 || width > 32 {
		panic("refmodel: fold width out of range")
	}
	bits := 2 * histLen
	mask := uint32(1)<<uint(width) - 1
	var acc uint32
	for o := 0; o < bits; o += width {
		acc = ((acc<<3 | acc>>uint(width-3)) & mask) ^ p.chunk(o, width, bits)
	}
	return acc & mask
}

// chunk gathers the width history bits starting at offset o, clipped at
// limit, one bit at a time.
func (p *PHR) chunk(o, width, limit int) uint32 {
	var v uint32
	for k := 0; k < width && o+k < limit; k++ {
		v |= p.bit(o+k) << uint(k)
	}
	return v
}

// Matches reports whether this register and h hold identical histories.
func (p *PHR) Matches(h phr.History) bool {
	if h.Size() != len(p.d) {
		return false
	}
	for i := range p.d {
		if h.Doublet(i) != p.d[i] {
			return false
		}
	}
	return true
}

// String renders the register oldest-doublet first with zero runs
// compressed, the same shape phr.Reg.String uses, so divergence reports
// from either implementation read alike.
func (p *PHR) String() string {
	var sb strings.Builder
	sb.WriteString("PHR[")
	zeros := 0
	for i := len(p.d) - 1; i >= 0; i-- {
		v := p.d[i]
		if v == 0 {
			zeros++
			continue
		}
		if zeros > 0 {
			fmt.Fprintf(&sb, "0*%d ", zeros)
			zeros = 0
		}
		fmt.Fprintf(&sb, "%d", v)
		if i > 0 {
			sb.WriteByte(' ')
		}
	}
	if zeros > 0 {
		fmt.Fprintf(&sb, "0*%d", zeros)
	}
	sb.WriteString("]")
	return sb.String()
}
