package refmodel

import (
	"strings"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/phr"
)

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// TestFootprintMatchesProduction cross-checks the table-driven Figure 2
// reading against the production shift-and-or form on random addresses and
// on the corner cases the attack macros rely on.
func TestFootprintMatchesProduction(t *testing.T) {
	cases := []struct{ b, tgt uint64 }{
		{0, 0},
		{0xffff, 0x3f},
		{0x1_0000, 0x40}, // low bits clear: zero footprint
		{0x8000, 0},
		{0, 1}, {0, 2}, {0, 3}, // T0/T1 choose doublet 0
	}
	g := &rng{s: 11}
	for i := 0; i < 5000; i++ {
		cases = append(cases, struct{ b, tgt uint64 }{g.next(), g.next()})
	}
	for _, c := range cases {
		if got, want := Footprint(c.b, c.tgt), phr.Footprint(c.b, c.tgt); got != want {
			t.Fatalf("Footprint(%#x, %#x) = %#x, production says %#x", c.b, c.tgt, got, want)
		}
	}
	if Footprint(0x1_0000, 0x40) != 0 {
		t.Fatal("aligned branch must have a zero footprint")
	}
}

// TestPHRMatchesProduction drives a mixed op sequence through both
// registers and compares doublets and all fold shapes after every step.
func TestPHRMatchesProduction(t *testing.T) {
	for _, size := range []int{93, 194} {
		ref, prod := NewPHR(size), phr.New(size)
		g := &rng{s: uint64(size)}
		for step := 0; step < 3000; step++ {
			switch g.next() % 8 {
			case 0:
				ref.Clear()
				prod.Clear()
			case 1:
				i, v := int(g.next()%uint64(size)), phr.Doublet(g.next()&3)
				ref.SetDoublet(i, v)
				prod.SetDoublet(i, v)
			default:
				b, tgt := g.next(), g.next()
				ref.UpdateBranch(b, tgt)
				prod.UpdateBranch(b, tgt)
			}
			if !ref.Matches(prod) {
				t.Fatalf("size %d step %d: registers differ\nref:  %s\nprod: %s", size, step, ref, prod)
			}
			for _, fold := range []struct{ hist, width int }{
				{34, 8}, {66, 8}, {size, 8}, {34, 12}, {66, 12}, {size, 12}, {size, 5}, {size, 32}, {size + 40, 8},
			} {
				if got, want := ref.Fold(fold.hist, fold.width), prod.Fold(fold.hist, fold.width); got != want {
					t.Fatalf("size %d step %d: Fold(%d,%d) = %#x, production %#x", size, step, fold.hist, fold.width, got, want)
				}
				if fold.width > 2 {
					if got, want := ref.FoldMix(fold.hist, fold.width), prod.FoldMix(fold.hist, fold.width); got != want {
						t.Fatalf("size %d step %d: FoldMix(%d,%d) = %#x, production %#x", size, step, fold.hist, fold.width, got, want)
					}
				}
			}
		}
	}
}

// TestPHRLiteralShift spells out the §2.2.1 semantics on a tiny case: each
// taken branch moves every doublet one slot older and lands the footprint
// in the low eight doublets.
func TestPHRLiteralShift(t *testing.T) {
	p := NewPHR(93)
	p.Update(0x0003) // doublet 0 = 3
	if p.Doublet(0) != 3 {
		t.Fatalf("doublet 0 = %d, want 3", p.Doublet(0))
	}
	p.Update(0x0001) // shifts the 3 to slot 1, writes 1 at slot 0
	if p.Doublet(0) != 1 || p.Doublet(1) != 3 {
		t.Fatalf("doublets = %d,%d, want 1,3", p.Doublet(0), p.Doublet(1))
	}
	for i := 0; i < 91; i++ {
		p.Update(0)
	}
	if p.Doublet(91) != 1 || p.Doublet(92) != 3 {
		t.Fatalf("old history misplaced: %d,%d", p.Doublet(91), p.Doublet(92))
	}
	p.Update(0) // the 3 falls off the end
	if p.Doublet(92) != 1 {
		t.Fatalf("doublet 92 = %d, want 1", p.Doublet(92))
	}
	for i := 0; i < 92; i++ {
		if p.Doublet(i) != 0 {
			t.Fatalf("doublet %d = %d, want 0", i, p.Doublet(i))
		}
	}
}

func TestPHRStringAndGen(t *testing.T) {
	p := NewPHR(93)
	g0 := p.Gen()
	p.SetDoublet(0, 2)
	if p.Gen() == g0 {
		t.Fatal("Gen did not advance on mutation")
	}
	if s := p.String(); !strings.HasPrefix(s, "PHR[") || !strings.Contains(s, "2") {
		t.Fatalf("unexpected String: %s", s)
	}
}

// TestBaseTableDiscipline checks the map-backed base predictor implements
// the 3-bit saturating counter spec, including the reset default.
func TestBaseTableDiscipline(t *testing.T) {
	b := NewBase()
	pc := uint64(0xabcd)
	if b.Predict(pc) {
		t.Fatal("reset state must predict not-taken")
	}
	b.Update(pc, true) // 3 -> 4
	if !b.Predict(pc) {
		t.Fatal("one taken update must flip the weak boundary")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if b.counter(pc) != counterMax {
		t.Fatalf("counter did not saturate: %d", b.counter(pc))
	}
	// PC aliasing: only the low 13 bits index the table.
	if !b.Predict(pc | 0xf0000) {
		t.Fatal("base table must alias across PC[63:13]")
	}
	b.Reset()
	if b.Predict(pc) {
		t.Fatal("Reset must restore weak not-taken")
	}
}

// TestTaggedAllocatePolicy fills one set and checks the explicit TAGE
// bookkeeping: invalid-first, then useful==0, then decrement-all-and-fail.
func TestTaggedAllocatePolicy(t *testing.T) {
	tt := NewTagged(34)
	h := NewPHR(194)
	// Four distinct (pc) values sharing a set: vary only tag-affecting bits.
	pcs := []uint64{0x0000, 0x0100, 0x0200, 0x0300}
	for _, pc := range pcs {
		if !tt.Allocate(pc, h, true) {
			t.Fatalf("allocation failed with free ways (pc %#x)", pc)
		}
	}
	if tt.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", tt.Occupancy())
	}
	// Pin every way useful, then a fifth allocation must fail and age them.
	idx := tt.Index(pcs[0], h)
	s := tt.set(idx)
	for w := range s {
		s[w].useful = 1
	}
	if tt.Allocate(0x0400, h, false) {
		t.Fatal("allocation must fail when every way is useful")
	}
	for w := range s {
		if s[w].useful != 0 {
			t.Fatalf("way %d usefulness not decremented: %d", w, s[w].useful)
		}
	}
	if !tt.Allocate(0x0400, h, false) {
		t.Fatal("allocation must succeed after the aging pass")
	}
	tt.DecayUseful()
	tt.Reset()
	if tt.Occupancy() != 0 {
		t.Fatal("Reset left valid entries")
	}
}

// TestCBPProviderSemantics checks the longest-hit-wins provider rule and
// the alternate prediction bookkeeping.
func TestCBPProviderSemantics(t *testing.T) {
	c := New(bpu.AlderLake)
	h := NewPHR(194)
	pc := uint64(0x00ab_3c40)
	p := c.Predict(pc, h)
	if p.Provider != -1 || p.Taken {
		t.Fatalf("empty predictor must fall to the weak not-taken base: %+v", p)
	}
	// Mispredict: taken outcome against a not-taken prediction allocates in
	// the shortest table.
	c.Update(pc, h, true, p)
	if c.Tables[0].Occupancy() != 1 {
		t.Fatalf("mispredict did not allocate in table 0: %d", c.Tables[0].Occupancy())
	}
	p = c.Predict(pc, h)
	if p.Provider != 0 || !p.Taken {
		t.Fatalf("provider must be table 0 predicting taken: %+v", p)
	}
	// The mispredicted update also trained the base (3 -> 4), so the
	// alternate — the next-longest component — now predicts taken too.
	if !p.AltTaken {
		t.Fatalf("alternate must reflect the trained base: %+v", p)
	}
	c.Flush()
	if c.Tables[0].Occupancy() != 0 {
		t.Fatal("Flush left tagged entries")
	}
	if got := c.Predict(pc, h); got.Provider != -1 {
		t.Fatalf("post-flush provider = %d", got.Provider)
	}
}

func TestDumpStateShape(t *testing.T) {
	c := New(bpu.Skylake)
	h := NewPHR(93)
	p := c.Predict(5, h)
	c.Update(5, h, true, p)
	dump := c.DumpState()
	for _, want := range []string{"RefCBP Skylake", "table 0 (hist 34)", "base["} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// FuzzPHRUpdate feeds fuzzer-chosen footprint/shift sequences through both
// register implementations and requires identical doublets and identical
// index/tag folds afterwards. Run locally with:
//
//	go test ./internal/refmodel -run='^$' -fuzz=FuzzPHRUpdate -fuzztime=30s
func FuzzPHRUpdate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(0))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x12, 0x34}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, sizeSel uint8) {
		size := 194
		if sizeSel%2 == 1 {
			size = 93
		}
		if len(data) > 4096 {
			return
		}
		ref, prod := NewPHR(size), phr.New(size)
		for i := 0; i+1 < len(data); i += 2 {
			fp := uint16(data[i])<<8 | uint16(data[i+1])
			if fp == 0xffff {
				ref.Clear()
				prod.Clear()
				continue
			}
			ref.Update(fp)
			prod.Update(fp)
		}
		if !ref.Matches(prod) {
			t.Fatalf("registers differ\nref:  %s\nprod: %s", ref, prod)
		}
		for _, hist := range []int{34, 66, size} {
			if ref.Fold(hist, 8) != prod.Fold(hist, 8) {
				t.Fatalf("index fold over %d doublets differs", hist)
			}
			if ref.FoldMix(hist, 12) != prod.FoldMix(hist, 12) {
				t.Fatalf("tag fold over %d doublets differs", hist)
			}
		}
	})
}
