package refmodel

import (
	"fmt"
	"sort"
	"strings"

	"pathfinder/internal/phr"
)

// The Figure 3 geometry, restated here (not imported from internal/pht) so
// the oracle stays an independent reading of the paper.
const (
	counterBits   = 3   // Observation 2: 3-bit saturating counters
	counterMax    = 7   // 2^3 - 1
	weakTaken     = 4   // weakest counter still predicting taken
	weakNotTaken  = 3   // weakest counter predicting not-taken
	baseIndexBits = 13  // base predictor indexed by PC[12:0]
	numSets       = 512 // tagged tables: 512 sets x 4 ways
	numWays       = 4
	tagBits       = 12
	usefulMax     = 3 // 2-bit usefulness counter
)

// ctrTaken is the prediction of an n-bit saturating counter: taken in the
// upper half of its range.
func ctrTaken(c uint8) bool { return c >= 1<<(counterBits-1) }

// ctrUpdate moves a counter one step toward the observed outcome,
// saturating at both ends.
func ctrUpdate(c uint8, taken bool) uint8 {
	if taken {
		if c < counterMax {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

// weakFor is the initial counter for a freshly allocated entry.
func weakFor(taken bool) uint8 {
	if taken {
		return weakTaken
	}
	return weakNotTaken
}

// BaseTable is the reference base (local) predictor: a map from the 13-bit
// PC index to its counter. A missing key is the reset state, the weak
// not-taken boundary value.
type BaseTable struct {
	ctr map[uint32]uint8
}

// NewBase returns an empty reference base table.
func NewBase() *BaseTable { return &BaseTable{ctr: make(map[uint32]uint8)} }

// index maps a branch PC to its slot, PC[12:0].
func (b *BaseTable) index(pc uint64) uint32 {
	return uint32(pc) & (1<<baseIndexBits - 1)
}

// counter returns the slot's counter, defaulting to weak not-taken.
func (b *BaseTable) counter(pc uint64) uint8 {
	if c, ok := b.ctr[b.index(pc)]; ok {
		return c
	}
	return weakNotTaken
}

// Predict returns the base direction prediction for pc.
func (b *BaseTable) Predict(pc uint64) bool { return ctrTaken(b.counter(pc)) }

// Update trains the counter for pc with one outcome.
func (b *BaseTable) Update(pc uint64, taken bool) {
	b.ctr[b.index(pc)] = ctrUpdate(b.counter(pc), taken)
}

// Reset returns every counter to the reset state.
func (b *BaseTable) Reset() { b.ctr = make(map[uint32]uint8) }

// Dump renders every counter that has moved off the reset value.
func (b *BaseTable) Dump() string {
	idx := make([]uint32, 0, len(b.ctr))
	for i, c := range b.ctr {
		if c != weakNotTaken {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, z int) bool { return idx[a] < idx[z] })
	var sb strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&sb, "  base[%#x] ctr=%d\n", i, b.ctr[i])
	}
	return sb.String()
}

// entry is one way of a reference tagged table.
type entry struct {
	valid  bool
	tag    uint32
	ctr    uint8
	useful uint8
}

// TaggedTable is a reference history-indexed component: a map from set
// index to its four ways, allocated lazily.
type TaggedTable struct {
	HistLen int
	sets    map[uint32]*[numWays]entry
}

// NewTagged returns an empty reference tagged table over histLen doublets.
func NewTagged(histLen int) *TaggedTable {
	if histLen <= 0 {
		panic(fmt.Sprintf("refmodel: non-positive history length %d", histLen))
	}
	return &TaggedTable{HistLen: histLen, sets: make(map[uint32]*[numWays]entry)}
}

// Index is the 9-bit set index: eight folded history bits plus PC bit 5.
func (t *TaggedTable) Index(pc uint64, h phr.History) uint32 {
	return h.Fold(t.HistLen, 8) | (uint32(pc>>5)&1)<<8
}

// Tag is the 12-bit entry tag: the rotating fold mixed with PC[15:0].
func (t *TaggedTable) Tag(pc uint64, h phr.History) uint32 {
	p := uint32(pc) & 0xffff
	return (h.FoldMix(t.HistLen, tagBits) ^ p ^ p>>7) & (1<<tagBits - 1)
}

// set returns the ways for idx, allocating the zero state on first touch.
func (t *TaggedTable) set(idx uint32) *[numWays]entry {
	s := t.sets[idx%numSets]
	if s == nil {
		s = &[numWays]entry{}
		t.sets[idx%numSets] = s
	}
	return s
}

// lookup returns the first way whose valid entry matches the tag.
func (t *TaggedTable) lookup(pc uint64, h phr.History) (*entry, bool) {
	s := t.set(t.Index(pc, h))
	tag := t.Tag(pc, h)
	for w := range s {
		if s[w].valid && s[w].tag == tag {
			return &s[w], true
		}
	}
	return nil, false
}

// Predict returns the table's direction prediction for (pc, h), if it hits.
func (t *TaggedTable) Predict(pc uint64, h phr.History) (taken, hit bool) {
	e, ok := t.lookup(pc, h)
	if !ok {
		return false, false
	}
	return ctrTaken(e.ctr), true
}

// Allocate inserts a fresh weak entry for (pc, h), following the same TAGE
// replacement discipline as the production table: the lowest invalid way,
// else the lowest way with useful == 0, else decrement every way's
// usefulness and insert nothing. Reports whether an entry was inserted.
func (t *TaggedTable) Allocate(pc uint64, h phr.History, taken bool) bool {
	s := t.set(t.Index(pc, h))
	victim := -1
	for w := range s {
		if !s[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		for w := range s {
			if s[w].useful == 0 {
				victim = w
				break
			}
		}
	}
	if victim < 0 {
		for w := range s {
			if s[w].useful > 0 {
				s[w].useful--
			}
		}
		return false
	}
	s[victim] = entry{valid: true, tag: t.Tag(pc, h), ctr: weakFor(taken)}
	return true
}

// DecayUseful halves every usefulness counter.
func (t *TaggedTable) DecayUseful() {
	for _, s := range t.sets {
		for w := range s {
			s[w].useful >>= 1
		}
	}
}

// Reset invalidates every entry.
func (t *TaggedTable) Reset() { t.sets = make(map[uint32]*[numWays]entry) }

// Occupancy counts valid entries.
func (t *TaggedTable) Occupancy() int {
	n := 0
	for _, s := range t.sets {
		for w := range s {
			if s[w].valid {
				n++
			}
		}
	}
	return n
}

// Dump renders every valid entry in set order.
func (t *TaggedTable) Dump() string {
	idx := make([]uint32, 0, len(t.sets))
	for i := range t.sets {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, z int) bool { return idx[a] < idx[z] })
	var sb strings.Builder
	for _, i := range idx {
		s := t.sets[i]
		for w := range s {
			if s[w].valid {
				fmt.Fprintf(&sb, "  set %3d way %d tag=%#03x ctr=%d useful=%d\n", i, w, s[w].tag, s[w].ctr, s[w].useful)
			}
		}
	}
	return sb.String()
}
