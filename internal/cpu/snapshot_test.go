package cpu

import (
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/faultinject"
	"pathfinder/internal/isa"
	"pathfinder/internal/refmodel"
)

// snapWorkload is a branchy, noisy, memory-touching program: a loop whose
// inner branch direction is data-dependent on the RAND stream, with loads,
// stores, flushes and a call in the body, so every snapshot-captured
// structure (PHTs, BTB, cache, PHR, per-branch stats, hart rng) moves.
func snapWorkload(t *testing.T) *isa.Program {
	t.Helper()
	return mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)      // i
		a.MovI(isa.R2, 0)      // acc
		a.MovI(isa.R7, 0x9000) // buffer base
		a.MovI(isa.R9, 1)
		a.MovI(isa.R10, 64)
		a.Label("loop")
		a.Rand(isa.R3)
		a.And(isa.R4, isa.R3, isa.R9) // low bit decides the data branch
		a.Br(isa.EQ, isa.R4, isa.R9, "odd")
		a.St(isa.R7, 0, isa.R3)
		a.Jmp("merge")
		a.Org(0x1f00)
		a.Label("odd")
		a.Ld(isa.R5, isa.R7, 0)
		a.Add(isa.R2, isa.R2, isa.R5)
		a.Clflush(isa.R7, 0)
		a.Call("leaf")
		a.Label("merge")
		a.AddI(isa.R7, isa.R7, 64)
		a.AddI(isa.R1, isa.R1, 1)
		a.Br(isa.LT, isa.R1, isa.R10, "loop")
		a.Halt()
		a.Org(0x4000)
		a.Label("leaf")
		a.AddI(isa.R2, isa.R2, 3)
		a.Ret()
	})
}

// observe collects everything a snapshot promises to preserve.
type observation struct {
	stats   Counters
	regs    [isa.NumRegs]uint64
	phr     [7]uint64
	loopBr  BranchStat
	cacheH  uint64
	cacheM  uint64
	cacheF  uint64
	snapSum uint64
}

func observeMachine(m *Machine, p *isa.Program) observation {
	h, ms, f := m.Data.Stats()
	return observation{
		stats:   m.Stats(),
		regs:    m.Hart(0).regs,
		phr:     m.Hart(0).PHR.Words(),
		loopBr:  m.Branch(p.MustSymbol("loop") + 8), // the trailing loop branch
		cacheH:  h,
		cacheM:  ms,
		cacheF:  f,
		snapSum: m.Snapshot().Hash(),
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, noise := range []float64{0, 0.3} {
		p := snapWorkload(t)
		opts := Options{Arch: bpu.RaptorLake, Seed: 11, Noise: noise}
		m := New(opts)
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		snap := m.Snapshot()
		if snap.Hash() != m.Snapshot().Hash() {
			t.Fatalf("noise=%v: re-snapshotting an untouched machine changed the hash", noise)
		}

		// Continuation A from the checkpoint.
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		want := observeMachine(m, p)

		// Rewind and run the identical continuation.
		m.RestoreFrom(snap)
		if got := m.Snapshot().Hash(); got != snap.Hash() {
			t.Fatalf("noise=%v: restored state hash %#x, want %#x", noise, got, snap.Hash())
		}
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		if got := observeMachine(m, p); got != want {
			t.Fatalf("noise=%v: continuation after restore diverged:\n got %+v\nwant %+v", noise, got, want)
		}
	}
}

func TestSnapshotRestoreIntoFreshMachine(t *testing.T) {
	p := snapWorkload(t)
	opts := Options{Arch: bpu.AlderLake, Seed: 23, Noise: 0.2}
	m1 := New(opts)
	if err := m1.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	snap := m1.Snapshot()
	if err := m1.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	want := observeMachine(m1, p)

	// A brand-new machine adopting the snapshot must continue identically.
	// Memory is not captured, so the driver (this test) re-establishes the
	// bytes the continuation reads — here, the buffer the loop stores to.
	m2 := New(opts)
	m2.RestoreFrom(snap)
	for addr := uint64(0x9000); addr < 0x9000+64*64; addr += 8 {
		m2.Mem.Write64(addr, m1.Mem.Read64(addr))
	}
	if err := m2.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got := observeMachine(m2, p); got != want {
		t.Fatalf("fresh machine after restore diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotHashDiscriminates(t *testing.T) {
	p := snapWorkload(t)
	run := func(seed int64) *Snapshot {
		m := New(Options{Seed: seed})
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	if run(1).Hash() != run(1).Hash() {
		t.Fatal("identical runs produced different snapshot hashes")
	}
	if run(1).Hash() == run(2).Hash() {
		t.Fatal("different seeds produced identical snapshot hashes")
	}
}

func TestSnapshotWithFaultsRoundTrip(t *testing.T) {
	p := snapWorkload(t)
	prof := faultinject.Default()
	opts := Options{Seed: 7, Faults: &prof}
	m := New(opts)
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	want := observeMachine(m, p)
	m.RestoreFrom(snap)
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got := observeMachine(m, p); got != want {
		t.Fatalf("faulted continuation after restore diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestReseedMatchesFreshMachine(t *testing.T) {
	p := snapWorkload(t)
	fresh := New(Options{Seed: 99, Noise: 0.3})
	if err := fresh.Run(p, "main"); err != nil {
		t.Fatal(err)
	}

	reseeded := New(Options{Seed: 5, Noise: 0.3})
	reseeded.Reseed(99)
	if err := reseeded.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got, want := observeMachine(reseeded, p), observeMachine(fresh, p); got != want {
		t.Fatalf("reseeded machine diverged from fresh machine:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}

	snap := New(Options{Arch: bpu.RaptorLake}).Snapshot()
	mustPanic("arch mismatch", func() {
		New(Options{Arch: bpu.Skylake}).RestoreFrom(snap)
	})
	mustPanic("hart mismatch", func() {
		New(Options{Arch: bpu.RaptorLake, Harts: 2}).RestoreFrom(snap)
	})
	prof := faultinject.Default()
	mustPanic("fault armament mismatch", func() {
		New(Options{Arch: bpu.RaptorLake, Faults: &prof}).RestoreFrom(snap)
	})
	oracle := refmodel.NewPredictor
	mustPanic("snapshot with custom predictor", func() {
		New(Options{NewPredictor: oracle}).Snapshot()
	})
	mustPanic("restore with custom predictor", func() {
		m := New(Options{Arch: bpu.RaptorLake, NewPredictor: oracle})
		m.RestoreFrom(snap)
	})
}
