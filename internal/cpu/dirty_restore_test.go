package cpu

import (
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/faultinject"
)

// dirtyConfigs are the machine shapes the dirty-restore contract must hold
// under: quiet, noisy (transient windows collapse nondeterministically per
// the noise PRNG) and fault-armed (PHR pollution, training drops, cache
// eviction pressure all mutate state outside the architectural path).
func dirtyConfigs() map[string]Options {
	prof := faultinject.Default()
	return map[string]Options{
		"quiet":   {Arch: bpu.RaptorLake, Seed: 11},
		"noisy":   {Arch: bpu.AlderLake, Seed: 23, Noise: 0.3},
		"faulted": {Arch: bpu.RaptorLake, Seed: 7, Faults: &prof},
	}
}

// TestDirtyRestoreMatchesFullRestore is the bit-exactness differential for
// the tentpole fast path: a machine rewound via the dirty-only copies must
// be indistinguishable — full content hash and continuation behavior — from
// one rewound via the flat full copy, across repeated trials that each
// leave a different footprint.
func TestDirtyRestoreMatchesFullRestore(t *testing.T) {
	for name, opts := range dirtyConfigs() {
		t.Run(name, func(t *testing.T) {
			p := snapWorkload(t)
			fast := New(opts)
			full := New(opts)
			if err := fast.Run(p, "main"); err != nil {
				t.Fatal(err)
			}
			if err := full.Run(p, "main"); err != nil {
				t.Fatal(err)
			}
			snap := fast.Snapshot()
			if got := full.Snapshot().Hash(); got != snap.Hash() {
				t.Fatalf("identical warmups diverged before the experiment: %#x vs %#x", got, snap.Hash())
			}

			for trial := 0; trial < 6; trial++ {
				seed := int64(1000 + trial*31)
				fast.Reseed(seed)
				full.Reseed(seed)
				if err := fast.Run(p, "main"); err != nil {
					t.Fatal(err)
				}
				if err := full.Run(p, "main"); err != nil {
					t.Fatal(err)
				}

				// fast is in restore-sync with snap (it was snapshotted into /
				// restored from it and only instrumented mutators ran since),
				// so this takes the dirty-only path; full is forced flat.
				// Assert the predicate so the comparison can never silently
				// degrade into full-vs-full.
				if !fast.syncOK || fast.syncHash != snap.Hash() {
					t.Fatalf("trial %d: restore-sync lost; the dirty path would not fire", trial)
				}
				fast.RestoreFrom(snap)
				full.ForgetRestoreSync()
				full.RestoreFrom(snap)

				if got := fast.Snapshot().Hash(); got != snap.Hash() {
					t.Fatalf("trial %d: dirty restore hash %#x, want %#x", trial, got, snap.Hash())
				}
				// The hash covers captured state; run a continuation to catch
				// divergence in derived state (fold memos, decoded programs).
				fast.Reseed(seed + 1)
				full.Reseed(seed + 1)
				if err := fast.Run(p, "main"); err != nil {
					t.Fatal(err)
				}
				if err := full.Run(p, "main"); err != nil {
					t.Fatal(err)
				}
				if got, want := observeMachine(fast, p), observeMachine(full, p); got != want {
					t.Fatalf("trial %d: continuation after dirty restore diverged:\n got %+v\nwant %+v", trial, got, want)
				}
				fast.RestoreFrom(snap)
				full.ForgetRestoreSync()
				full.RestoreFrom(snap)
			}
		})
	}
}

// TestDirtyRestoreCoversDirectMutators drives every exported mutator that
// bypasses Run — the surfaces the dirty bitmaps must instrument — then
// rewinds via the fast path and requires the full content hash back.
func TestDirtyRestoreCoversDirectMutators(t *testing.T) {
	p := snapWorkload(t)
	m := New(Options{Arch: bpu.RaptorLake, Seed: 3})
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	mutations := []func(){
		func() { m.Data.Access(0x1234560) },
		func() { m.Data.Flush(0x9000) },
		func() { m.Data.EvictNth(0xdeadbeef00000007) },
		func() { m.Data.FlushAll() },
		func() { m.BPU.BTB.Insert(0x4242, 0x9999) },
		func() { m.BPU.IBP.Insert(0x4242, m.Hart(0).PHR, 0x7777) },
		func() { m.BPU.IBPB() },
		func() { m.BPU.CBP.Base.Update(0x1f04, true) },
		func() {
			h := m.Hart(0).PHR
			pred := m.BPU.CBP.Predict(0x1f04, h)
			m.BPU.CBP.Update(0x1f04, h, !pred.Taken, pred) // mispredict: trains + allocates
		},
		func() { m.BPU.CBP.Flush() },
		func() {
			for _, tbl := range m.BPU.CBP.Tables {
				tbl.DecayUseful()
			}
		},
	}
	for i, mut := range mutations {
		mut()
		m.RestoreFrom(snap) // fast path: sync held since the last restore
		if got := m.Snapshot().Hash(); got != snap.Hash() {
			t.Fatalf("mutation %d: dirty restore missed state: hash %#x, want %#x", i, got, snap.Hash())
		}
	}
}

// TestRecycleRestoreMatchesRecycleThenRestore pins the fused per-trial
// operation against the sequential pair it replaces, including the paths
// Recycle owns outright (options swap, memory reset, injector rebuild, stub
// clearing) and across trials whose options differ in seed and noise.
func TestRecycleRestoreMatchesRecycleThenRestore(t *testing.T) {
	for name, opts := range dirtyConfigs() {
		t.Run(name, func(t *testing.T) {
			p := snapWorkload(t)
			seq := New(opts)
			fused := New(opts)
			if err := seq.Run(p, "main"); err != nil {
				t.Fatal(err)
			}
			if err := fused.Run(p, "main"); err != nil {
				t.Fatal(err)
			}
			snap := seq.Snapshot()
			fused.SnapshotInto(&Snapshot{}) // establish fused's own sync point

			for trial := 0; trial < 5; trial++ {
				trialOpts := opts
				trialOpts.Seed = int64(500 + trial*17)
				trialOpts.Noise = opts.Noise / 2

				seq.Recycle(trialOpts)
				seq.RestoreFrom(snap)
				fused.RecycleRestore(trialOpts, snap)

				if got, want := fused.Snapshot().Hash(), seq.Snapshot().Hash(); got != want {
					t.Fatalf("trial %d: fused hash %#x, sequential %#x", trial, got, want)
				}
				seq.Reseed(trialOpts.Seed)
				fused.Reseed(trialOpts.Seed)
				if err := seq.Run(p, "main"); err != nil {
					t.Fatal(err)
				}
				if err := fused.Run(p, "main"); err != nil {
					t.Fatal(err)
				}
				if got, want := observeMachine(fused, p), observeMachine(seq, p); got != want {
					t.Fatalf("trial %d: fused continuation diverged:\n got %+v\nwant %+v", trial, got, want)
				}
			}
		})
	}
}

// TestBatchDirtyRestoreInvariance runs the batch drivers' exact per-group
// sequence — RecycleRestore each lane, run a trial, repeat — and requires
// every lane to keep reproducing the single-machine result.
func TestBatchDirtyRestoreInvariance(t *testing.T) {
	p := snapWorkload(t)
	opts := Options{Arch: bpu.AlderLake, Seed: 5, Noise: 0.2}

	ref := New(opts)
	if err := ref.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	snap := ref.Snapshot()

	bat := NewBatch(opts, 4)
	for trial := 0; trial < 8; trial++ {
		trialOpts := opts
		trialOpts.Seed = int64(2000 + trial)

		ref.Recycle(trialOpts)
		ref.RestoreFrom(snap)
		ref.Reseed(trialOpts.Seed)
		if err := ref.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		want := ref.Snapshot().Hash()

		for lane := 0; lane < bat.K(); lane++ {
			m := bat.Lane(lane)
			m.RecycleRestore(trialOpts, snap)
			m.Reseed(trialOpts.Seed)
			if err := m.Run(p, "main"); err != nil {
				t.Fatal(err)
			}
			if got := m.Snapshot().Hash(); got != want {
				t.Fatalf("trial %d lane %d: hash %#x, want %#x", trial, lane, got, want)
			}
		}
	}
}
