package cpu

import (
	"fmt"

	"pathfinder/internal/aes"
	"pathfinder/internal/isa"
)

// This file is the dense execution engine: a flattened-dispatch interpreter
// over a predecoded instruction stream, used automatically for every run
// that carries no observation hooks. It must be observationally identical
// to the scalar interpreter in cpu.go — same architectural state, same
// predictor and cache state, same counters, same error strings. The
// differential suite (FuzzBatchVsScalar, the engine parity tests and the
// golden end-to-end reports) pins that equivalence; when touching either
// engine, change both.
//
// What makes it faster than exec:
//
//   - denseInstr is 40 bytes against isa.Instr's 72 and drops the Sym
//     string, so the dispatch loop walks a compact, pointer-free stream.
//   - Direct control transfers are pre-resolved to program indices at
//     decode time (exec re-resolves hand-built instructions per execution).
//   - The predictor calls are the concrete bpu.CBP fast paths (PredictReg,
//     UpdateReg), which devirtualize the fold and memo probes all the way
//     down to *phr.Reg; exec goes through the bpu.Predictor interface.
//   - Instruction and cycle counts accumulate in locals and are flushed to
//     m.stats only around the cold paths that observe them.
type denseInstr struct {
	addr      uint64
	imm       int64
	target    uint64
	targetIdx int32 // pre-resolved program index; -1 = unresolvable hole
	op        isa.Op
	cond      isa.Cond
	rd, rs    uint8
	rt, vd    uint8
}

// denseEligible reports whether runs on this machine may use the dense
// engine. Any observation or substitution hook forces the scalar
// interpreter: fault injection and taken-branch tracing observe execution
// at points the dense loop compiles away, and a custom predictor defeats
// the concrete-CBP specialization.
func (m *Machine) denseEligible() bool {
	return !m.opts.Scalar && m.inj == nil && m.TraceTaken == nil && m.opts.NewPredictor == nil
}

// denseFor returns the predecoded stream for prog, rebuilding it when the
// program's version moved (Reindex bumps it after in-place mutation).
func (m *Machine) denseFor(ps *progState, prog *isa.Program) []denseInstr {
	if ps.denseOK && ps.denseVersion == prog.Version() && len(ps.dense) == len(prog.Instrs) {
		return ps.dense
	}
	if cap(ps.dense) < len(prog.Instrs) {
		ps.dense = make([]denseInstr, len(prog.Instrs))
	}
	ps.dense = ps.dense[:len(prog.Instrs)]
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		d := &ps.dense[i]
		*d = denseInstr{
			addr:      in.Addr,
			imm:       in.Imm,
			target:    in.Target,
			targetIdx: in.TargetIdx,
			op:        in.Op,
			cond:      in.Cond,
			rd:        uint8(in.Rd),
			rs:        uint8(in.Rs),
			rt:        uint8(in.Rt),
			vd:        uint8(in.Vd),
		}
		if d.targetIdx < 0 && (in.Op == isa.BR || in.Op == isa.JMP || in.Op == isa.CALL) {
			// Hand-built instructions: resolve through the address map once
			// at decode time instead of per execution. A hole stays -1 and
			// errors at execution time, exactly when exec would.
			if ti, ok := prog.IndexOf(in.Target); ok {
				d.targetIdx = int32(ti)
			}
		}
	}
	ps.denseVersion = prog.Version()
	ps.denseOK = true
	return ps.dense
}

// execDense is the dense-engine counterpart of exec. See the file comment
// for the equivalence contract.
func (m *Machine) execDense(h *Hart, prog *isa.Program, idx int) error {
	ps := m.progState(prog)
	code := m.denseFor(ps, prog)
	cbp := m.BPU.CBP
	steps := uint64(0)
	limit := m.opts.StepLimit
	// Local counter images; flushStats writes them back before any cold
	// path that reads m.stats (speculate, RDCYCLE) and before returning.
	instrs, cycles := m.stats.Instructions, m.stats.Cycles
	flushStats := func() {
		m.stats.Instructions, m.stats.Cycles = instrs, cycles
	}
	for {
		if idx < 0 || idx >= len(code) {
			flushStats()
			return fmt.Errorf("cpu: execution ran off the program (index %d)", idx)
		}
		if steps >= limit {
			flushStats()
			return fmt.Errorf("cpu: step limit %d exceeded at %#x", limit, code[idx].addr)
		}
		steps++
		instrs++
		cycles++
		in := &code[idx]

		switch in.op {
		case isa.NOP:
		case isa.HALT:
			flushStats()
			return nil

		case isa.MOVI:
			h.regs[in.rd] = uint64(in.imm)
			h.ready[in.rd] = cycles
		case isa.MOV:
			h.regs[in.rd] = h.regs[in.rs]
			h.ready[in.rd] = maxu(cycles, h.ready[in.rs])
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL:
			h.regs[in.rd] = alu(in.op, h.regs[in.rs], h.regs[in.rt])
			h.ready[in.rd] = maxu(cycles, maxu(h.ready[in.rs], h.ready[in.rt]))
		case isa.ADDI:
			h.regs[in.rd] = h.regs[in.rs] + uint64(in.imm)
			h.ready[in.rd] = maxu(cycles, h.ready[in.rs])
		case isa.XORI:
			h.regs[in.rd] = h.regs[in.rs] ^ uint64(in.imm)
			h.ready[in.rd] = maxu(cycles, h.ready[in.rs])
		case isa.SHLI:
			h.regs[in.rd] = h.regs[in.rs] << uint64(in.imm)
			h.ready[in.rd] = maxu(cycles, h.ready[in.rs])
		case isa.SHRI:
			h.regs[in.rd] = h.regs[in.rs] >> uint64(in.imm)
			h.ready[in.rd] = maxu(cycles, h.ready[in.rs])

		case isa.LD, isa.LDB, isa.TIMEDLD:
			addr := h.regs[in.rs] + uint64(in.imm)
			lat, _ := m.Data.Access(addr)
			switch in.op {
			case isa.LD:
				h.regs[in.rd] = m.Mem.Read64(addr)
			case isa.LDB:
				h.regs[in.rd] = uint64(m.Mem.Read8(addr))
			case isa.TIMEDLD:
				h.regs[in.rd] = uint64(lat)
			}
			h.ready[in.rd] = cycles + uint64(lat)
		case isa.ST:
			m.Data.Access(h.regs[in.rs] + uint64(in.imm))
			m.Mem.Write64(h.regs[in.rs]+uint64(in.imm), h.regs[in.rt])
		case isa.STB:
			m.Data.Access(h.regs[in.rs] + uint64(in.imm))
			m.Mem.Write8(h.regs[in.rs]+uint64(in.imm), byte(h.regs[in.rt]))
		case isa.CLFLUSH:
			m.Data.Flush(h.regs[in.rs] + uint64(in.imm))

		case isa.RAND:
			h.regs[in.rd] = h.rng.next()
			h.ready[in.rd] = cycles
		case isa.RDCYCLE:
			h.regs[in.rd] = cycles
			h.ready[in.rd] = cycles

		case isa.VLD:
			addr := h.regs[in.rs] + uint64(in.imm)
			m.Data.Access(addr)
			h.vregs[in.vd] = m.Mem.Read128(addr)
		case isa.VST:
			addr := h.regs[in.rs] + uint64(in.imm)
			m.Data.Access(addr)
			m.Mem.Write128(addr, h.vregs[in.vd])
		case isa.VXOR:
			addr := h.regs[in.rs] + uint64(in.imm)
			m.Data.Access(addr)
			h.vregs[in.vd] = aes.XorBlocks(h.vregs[in.vd], m.Mem.Read128(addr))
		case isa.AESENC:
			addr := h.regs[in.rs] + uint64(in.imm)
			m.Data.Access(addr)
			h.vregs[in.vd] = aes.EncRound(h.vregs[in.vd], m.Mem.Read128(addr))
		case isa.AESENCLAST:
			addr := h.regs[in.rs] + uint64(in.imm)
			m.Data.Access(addr)
			h.vregs[in.vd] = aes.EncLastRound(h.vregs[in.vd], m.Mem.Read128(addr))

		case isa.BR:
			taken := in.cond.Eval(h.regs[in.rs], h.regs[in.rt])
			pred := cbp.PredictReg(in.addr, h.PHR)
			ref := &ps.stats[idx]
			if ref.s == nil || ref.addr != in.addr {
				ref.addr, ref.s = in.addr, m.branchStat(in.addr)
			}
			st := ref.s
			st.Executed++
			m.stats.CondBranches++
			if taken {
				st.Taken++
			}
			if pred.Taken != taken {
				st.Mispredicted++
				m.stats.Mispredicts++
				flushStats()
				m.speculate(h, prog, idx, pred.Taken)
				cycles = m.stats.Cycles + uint64(m.opts.MispredictPenalty)
			}
			cbp.UpdateReg(in.addr, h.PHR, taken, pred)
			if taken {
				h.PHR.UpdateBranch(in.addr, in.target)
				m.stats.TakenBranches++
				m.BPU.BTB.Insert(in.addr, in.target)
				if in.targetIdx < 0 {
					flushStats()
					return fmt.Errorf("cpu: branch at %#x to hole %#x", in.addr, in.target)
				}
				idx = int(in.targetIdx)
				continue
			}

		case isa.JMP:
			h.PHR.UpdateBranch(in.addr, in.target)
			m.stats.TakenBranches++
			m.BPU.BTB.Insert(in.addr, in.target)
			if in.targetIdx < 0 {
				flushStats()
				return fmt.Errorf("cpu: jmp at %#x to hole %#x", in.addr, in.target)
			}
			idx = int(in.targetIdx)
			continue

		case isa.CALL:
			if idx+1 >= len(code) {
				flushStats()
				return fmt.Errorf("cpu: call at %#x has no return point", in.addr)
			}
			h.stack = append(h.stack, frame{retIdx: idx + 1})
			h.PHR.UpdateBranch(in.addr, in.target)
			m.stats.TakenBranches++
			m.BPU.BTB.Insert(in.addr, in.target)
			if in.targetIdx < 0 {
				flushStats()
				return fmt.Errorf("cpu: call at %#x to hole %#x", in.addr, in.target)
			}
			idx = int(in.targetIdx)
			continue

		case isa.RET:
			if len(h.stack) == 0 {
				flushStats()
				return nil // return from the entry frame ends the run
			}
			f := h.stack[len(h.stack)-1]
			h.stack = h.stack[:len(h.stack)-1]
			if f.restoreDomain {
				h.Domain = f.prevDomain
			}
			if f.retIdx < 0 || f.retIdx >= len(code) {
				flushStats()
				return nil
			}
			target := code[f.retIdx].addr
			h.PHR.UpdateBranch(in.addr, target)
			m.stats.TakenBranches++
			m.BPU.IBP.Insert(in.addr, h.PHR, target)
			idx = f.retIdx
			continue

		case isa.JR:
			target := h.regs[in.rs]
			ti, ok := prog.IndexOf(target)
			if !ok {
				flushStats()
				return fmt.Errorf("cpu: jr at %#x to hole %#x", in.addr, target)
			}
			h.PHR.UpdateBranch(in.addr, target)
			m.stats.TakenBranches++
			m.BPU.IBP.Insert(in.addr, h.PHR, target)
			idx = ti
			continue

		case isa.SYSCALL, isa.EENTER:
			ti, err := m.enterStub(h, prog, idx, in.op, in.imm, in.addr)
			if err != nil {
				flushStats()
				return err
			}
			idx = ti
			continue

		case isa.IBPB:
			m.BPU.IBPB()

		default:
			flushStats()
			return fmt.Errorf("cpu: unimplemented op %v at %#x", in.op, in.addr)
		}
		idx++
	}
}
