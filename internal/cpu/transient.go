package cpu

import (
	"pathfinder/internal/aes"
	"pathfinder/internal/isa"
)

// speculate models the wrong-path execution that follows a mispredicted
// conditional branch at prog.Instrs[idx]. The transient window — how many
// wrong-path instructions execute before the squash — equals the branch's
// resolution delay: at least the pipeline depth (the mispredict penalty),
// and longer when an operand of the branch is still in flight from a cache
// miss. The §9 attack flushes the victim's round count precisely to widen
// this window.
func (m *Machine) speculate(h *Hart, prog *isa.Program, idx int, predictedTaken bool) {
	in := &prog.Instrs[idx]
	window := m.opts.MispredictPenalty
	if resolveAt := maxu(h.ready[in.Rs], h.ready[in.Rt]); resolveAt > m.stats.Cycles {
		if d := int(resolveAt - m.stats.Cycles); d > window {
			window = d
		}
	}
	if window > m.opts.MaxTransientWindow {
		window = m.opts.MaxTransientWindow
	}
	if m.opts.Noise > 0 && m.noise.float() < m.opts.Noise {
		// Noise model: occasionally the branch resolves before any
		// wrong-path work issues (competing execution, replay, partial
		// pipeline flushes); this is what keeps end-to-end success rates
		// below 100% as in the paper's evaluation.
		return
	}

	start := idx + 1
	if predictedTaken {
		ti, ok := transientTarget(prog, in)
		if !ok {
			return
		}
		start = ti
	}
	m.runTransient(h, prog, start, window)
}

// transientTarget resolves a direct transfer on the wrong path: TargetIdx
// when pre-resolved by the assembler, address map otherwise. A hole simply
// stalls speculation rather than erroring.
func transientTarget(prog *isa.Program, in *isa.Instr) (int, bool) {
	if ti := int(in.TargetIdx); ti >= 0 {
		return ti, true
	}
	return prog.IndexOf(in.Target)
}

// transientState is the sandboxed copy of architectural state used on the
// wrong path. Stores land in a private buffer (a store queue that will be
// squashed); loads see the buffer first, then memory. Cache state is shared
// with architectural execution — that is the covert channel.
type transientState struct {
	regs  [isa.NumRegs]uint64
	vregs [isa.NumVRegs][16]byte
	stack []frame
	rng   splitmix64
	store map[uint64]byte
}

func (t *transientState) read8(m *Memory, addr uint64) byte {
	if v, ok := t.store[addr]; ok {
		return v
	}
	return m.Read8(addr)
}

func (t *transientState) read64(m *Memory, addr uint64) uint64 {
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(t.read8(m, addr+i)) << (8 * i)
	}
	return v
}

func (t *transientState) read128(m *Memory, addr uint64) [16]byte {
	var b [16]byte
	for i := range b {
		b[i] = t.read8(m, addr+uint64(i))
	}
	return b
}

func (t *transientState) write(addr uint64, bs ...byte) {
	for i, b := range bs {
		t.store[addr+uint64(i)] = b
	}
}

// runTransient executes up to window instructions starting at startIdx on a
// sandboxed state. Only the shared cache observes the execution. The sandbox
// itself (m.tscr) is reused across mispredicts: exec is not reentrant, and a
// nested transient BR only consults the predictor — it never speculates — so
// a single scratch state per machine suffices.
func (m *Machine) runTransient(h *Hart, prog *isa.Program, startIdx, window int) {
	ts := &m.tscr
	ts.regs = h.regs
	ts.vregs = h.vregs
	ts.stack = append(ts.stack[:0], h.stack...)
	ts.rng = h.rng
	if ts.store == nil {
		ts.store = make(map[uint64]byte, 16)
	} else {
		clear(ts.store)
	}
	idx := startIdx
	for n := 0; n < window; n++ {
		if idx < 0 || idx >= len(prog.Instrs) {
			return
		}
		in := &prog.Instrs[idx]
		m.stats.TransientInstrs++
		switch in.Op {
		case isa.NOP:
		case isa.HALT, isa.SYSCALL, isa.EENTER, isa.IBPB, isa.CLFLUSH:
			// Serializing or privileged operations do not execute
			// speculatively; the wrong path stalls here until the squash.
			return

		case isa.MOVI:
			ts.regs[in.Rd] = uint64(in.Imm)
		case isa.MOV:
			ts.regs[in.Rd] = ts.regs[in.Rs]
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL:
			ts.regs[in.Rd] = alu(in.Op, ts.regs[in.Rs], ts.regs[in.Rt])
		case isa.ADDI:
			ts.regs[in.Rd] = ts.regs[in.Rs] + uint64(in.Imm)
		case isa.XORI:
			ts.regs[in.Rd] = ts.regs[in.Rs] ^ uint64(in.Imm)
		case isa.SHLI:
			ts.regs[in.Rd] = ts.regs[in.Rs] << uint64(in.Imm)
		case isa.SHRI:
			ts.regs[in.Rd] = ts.regs[in.Rs] >> uint64(in.Imm)

		case isa.LD:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr) // the covert channel
			ts.regs[in.Rd] = ts.read64(m.Mem, addr)
		case isa.LDB:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.regs[in.Rd] = uint64(ts.read8(m.Mem, addr))
		case isa.TIMEDLD:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			lat := m.access(addr)
			ts.regs[in.Rd] = uint64(lat)
		case isa.ST:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			v := ts.regs[in.Rt]
			ts.write(addr, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		case isa.STB:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.write(addr, byte(ts.regs[in.Rt]))

		case isa.RAND:
			ts.regs[in.Rd] = ts.rng.next()
		case isa.RDCYCLE:
			ts.regs[in.Rd] = m.stats.Cycles

		case isa.VLD:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.vregs[in.Vd] = ts.read128(m.Mem, addr)
		case isa.VST:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.write(addr, ts.vregs[in.Vd][:]...)
		case isa.VXOR:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.vregs[in.Vd] = aes.XorBlocks(ts.vregs[in.Vd], ts.read128(m.Mem, addr))
		case isa.AESENC:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.vregs[in.Vd] = aes.EncRound(ts.vregs[in.Vd], ts.read128(m.Mem, addr))
		case isa.AESENCLAST:
			addr := ts.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			ts.vregs[in.Vd] = aes.EncLastRound(ts.vregs[in.Vd], ts.read128(m.Mem, addr))

		case isa.BR:
			// Nested speculation follows the predictor without updating it.
			pred := m.cbp.Predict(in.Addr, h.PHR)
			if pred.Taken {
				ti, ok := transientTarget(prog, in)
				if !ok {
					return
				}
				idx = ti
				continue
			}
		case isa.JMP:
			ti, ok := transientTarget(prog, in)
			if !ok {
				return
			}
			idx = ti
			continue
		case isa.CALL:
			ti, ok := transientTarget(prog, in)
			if !ok || idx+1 >= len(prog.Instrs) {
				return
			}
			ts.stack = append(ts.stack, frame{retIdx: idx + 1})
			idx = ti
			continue
		case isa.RET:
			if len(ts.stack) == 0 {
				return
			}
			f := ts.stack[len(ts.stack)-1]
			ts.stack = ts.stack[:len(ts.stack)-1]
			if f.retIdx < 0 || f.retIdx >= len(prog.Instrs) {
				return
			}
			idx = f.retIdx
			continue
		case isa.JR:
			ti, ok := prog.IndexOf(ts.regs[in.Rs])
			if !ok {
				return
			}
			idx = ti
			continue
		default:
			return
		}
		idx++
	}
}
