package cpu

import (
	"fmt"

	"pathfinder/internal/wire"
)

// The snapshot wire codec: a stable, versioned binary encoding of Snapshot
// for the cluster's content-addressed snapshot exchange. Encode→decode is
// lossless for everything Snapshot captures, so a decoded snapshot hashes
// identically to its source and RestoreFrom behaves exactly as with the
// original — that equivalence is what lets one worker train warm state and
// every peer restore it.
//
// The envelope is [magic "PFSN"][version u16][hash u64][body]; the hash is
// the snapshot's own FNV-1a content hash and doubles as an integrity check:
// UnmarshalBinary recomputes the hash of the decoded body and rejects the
// blob on mismatch, so a corrupt or mis-addressed CAS object can never be
// restored into a machine.

// snapshotMagic and snapshotVersion pin the envelope. Bump the version on
// any change to the body layout; decoders reject other versions outright —
// cluster peers must run the same build to exchange snapshots.
const (
	snapshotMagic   = "PFSN"
	snapshotVersion = 1
)

// MarshalBinary encodes the snapshot into a fresh byte slice.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(make([]byte, 0, 1<<16))
}

// AppendBinary appends the encoding to buf and returns the extended slice —
// the pooled-buffer path of MarshalBinary. The snapshot store and the
// cluster worker's snapshot-serve path reuse encode buffers across calls,
// so the ~1 MiB encoding does not allocate per spill or per fetch.
func (s *Snapshot) AppendBinary(buf []byte) ([]byte, error) {
	w := wire.NewWriterBuf(buf)
	w.Raw([]byte(snapshotMagic))
	w.U16(snapshotVersion)
	w.U64(s.hash)

	w.String(s.arch)
	w.U32(uint32(s.phrSize))
	s.unit.EncodeWire(w)
	s.data.EncodeWire(w)
	w.Bool(s.ibrs)
	w.U64(s.noise)
	w.Bool(s.injOK)
	w.U64(s.inj)

	w.U64(s.stats.Instructions)
	w.U64(s.stats.Cycles)
	w.U64(s.stats.CondBranches)
	w.U64(s.stats.TakenBranches)
	w.U64(s.stats.Mispredicts)
	w.U64(s.stats.TransientInstrs)
	w.U64(s.stats.Runs)

	w.U32(uint32(len(s.perPC)))
	for i := range s.perPC {
		p := &s.perPC[i]
		w.U64(p.pc)
		w.U64(p.s.Executed)
		w.U64(p.s.Taken)
		w.U64(p.s.Mispredicted)
	}

	w.U32(uint32(len(s.harts)))
	for i := range s.harts {
		hs := &s.harts[i]
		hs.phr.EncodeWire(w)
		w.U8(uint8(hs.domain))
		for _, r := range hs.regs {
			w.U64(r)
		}
		for _, v := range hs.vregs {
			w.Raw(v[:])
		}
		for _, r := range hs.ready {
			w.U64(r)
		}
		w.U32(uint32(len(hs.stack)))
		for _, f := range hs.stack {
			w.I64(int64(f.retIdx))
			w.Bool(f.restoreDomain)
			w.U8(uint8(f.prevDomain))
		}
		w.U64(hs.rng)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes an encoded snapshot into s, replacing its
// contents. The decoded state's recomputed content hash must match the
// envelope's, or the blob is rejected.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("cpu: snapshot wire data lacks %q magic", snapshotMagic)
	}
	r := wire.NewReader(data[len(snapshotMagic):])
	if v := r.U16(); v != snapshotVersion {
		return fmt.Errorf("cpu: snapshot wire version %d, this build speaks %d", v, snapshotVersion)
	}
	wantHash := r.U64()

	s.arch = r.String()
	s.phrSize = int(r.U32())
	s.unit.DecodeWire(r)
	s.data.DecodeWire(r)
	s.ibrs = r.Bool()
	s.noise = r.U64()
	s.injOK = r.Bool()
	s.inj = r.U64()

	s.stats.Instructions = r.U64()
	s.stats.Cycles = r.U64()
	s.stats.CondBranches = r.U64()
	s.stats.TakenBranches = r.U64()
	s.stats.Mispredicts = r.U64()
	s.stats.TransientInstrs = r.U64()
	s.stats.Runs = r.U64()

	nPC := r.Len(1 << 24)
	s.perPC = s.perPC[:0]
	for i := 0; i < nPC; i++ {
		var p pcStat
		p.pc = r.U64()
		p.s.Executed = r.U64()
		p.s.Taken = r.U64()
		p.s.Mispredicted = r.U64()
		s.perPC = append(s.perPC, p)
	}

	nHarts := r.Len(1 << 16)
	if len(s.harts) != nHarts {
		s.harts = make([]hartState, nHarts)
	}
	for i := 0; i < nHarts && r.Err() == nil; i++ {
		hs := &s.harts[i]
		hs.phr.DecodeWire(r)
		hs.domain = Domain(r.U8())
		for j := range hs.regs {
			hs.regs[j] = r.U64()
		}
		for j := range hs.vregs {
			for k := range hs.vregs[j] {
				hs.vregs[j][k] = r.U8()
			}
		}
		for j := range hs.ready {
			hs.ready[j] = r.U64()
		}
		nStack := r.Len(1 << 20)
		hs.stack = hs.stack[:0]
		for j := 0; j < nStack; j++ {
			var f frame
			f.retIdx = int(r.I64())
			f.restoreDomain = r.Bool()
			f.prevDomain = Domain(r.U8())
			hs.stack = append(hs.stack, f)
		}
		hs.rng = r.U64()
	}

	if err := r.Err(); err != nil {
		return fmt.Errorf("cpu: decoding snapshot: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("cpu: snapshot wire data has %d trailing bytes", r.Remaining())
	}
	s.hash = s.computeHash()
	if s.hash != wantHash {
		return fmt.Errorf("cpu: snapshot content hash %016x does not match envelope %016x (corrupt or mis-addressed blob)",
			s.hash, wantHash)
	}
	return nil
}

// DecodeSnapshot is the allocation path of UnmarshalBinary.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := s.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return s, nil
}
