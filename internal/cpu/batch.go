package cpu

import (
	"fmt"

	"pathfinder/internal/phr"
)

// Batch is a group of K independent trial machines ("lanes") whose hot
// per-trial state is laid out structure-of-arrays in shared arenas: all K
// lanes' path history registers (with their fold caches) sit in one
// contiguous []phr.Reg, their hart records in one []Hart, and the Machine
// headers in one []Machine. Trials share no state, so any execution
// interleaving of lanes is observationally identical; the harness drivers
// run one batch per claimed index group, recycling lanes between groups so
// the steady state allocates nothing.
//
// Lanes are full Machines — Snapshot, RestoreFrom, Recycle and the dense
// engine all work per lane — plus batch-grain operations: RecycleAll,
// RestoreAll (warm-cache restore for every lane from one shared snapshot)
// and Each.
type Batch struct {
	opts  Options
	machs []Machine
	harts []Hart
	phrs  []phr.Reg
	lanes []*Machine
}

// NewBatch builds K lane machines over shared arenas. Every lane starts
// exactly as New(opts) would; per-trial seeds are applied by recycling or
// reseeding individual lanes.
func NewBatch(opts Options, k int) *Batch {
	if k <= 0 {
		panic(fmt.Sprintf("cpu: non-positive batch size %d", k))
	}
	opts = normalizeOptions(opts)
	b := &Batch{
		opts:  opts,
		machs: make([]Machine, k),
		harts: make([]Hart, k*opts.Harts),
		phrs:  make([]phr.Reg, k*opts.Harts),
		lanes: make([]*Machine, k),
	}
	for i := 0; i < k; i++ {
		initMachine(&b.machs[i], opts,
			b.harts[i*opts.Harts:(i+1)*opts.Harts],
			b.phrs[i*opts.Harts:(i+1)*opts.Harts])
		b.lanes[i] = &b.machs[i]
	}
	return b
}

// K returns the number of lanes.
func (b *Batch) K() int { return len(b.lanes) }

// Lane returns lane i's machine.
func (b *Batch) Lane(i int) *Machine { return b.lanes[i] }

// Options returns the (normalized) options the batch was built with.
func (b *Batch) Options() Options { return b.opts }

// RecycleAll recycles every lane to the state NewBatch(opts, K) would
// produce, reusing all arena and table storage. The same compatibility
// rules as Machine.Recycle apply.
func (b *Batch) RecycleAll(opts Options) {
	for _, m := range b.lanes {
		m.Recycle(opts)
	}
}

// RestoreAll rewinds every lane to the same snapshot — the batch-grain warm
// start: one shared warm snapshot fans out to K trial lanes, which are then
// individually Reseeded with their trial seeds.
func (b *Batch) RestoreAll(s *Snapshot) {
	for _, m := range b.lanes {
		m.RestoreFrom(s)
	}
}

// Each calls fn for every lane in lane order and returns the first error.
// It is the batch-step linearization point: because lanes are disjoint,
// running them in lane order is bit-identical to any other schedule, and
// keeping one lane's tables hot through its whole trial is what the data
// cache prefers.
func (b *Batch) Each(fn func(lane int, m *Machine) error) error {
	for i, m := range b.lanes {
		if err := fn(i, m); err != nil {
			return err
		}
	}
	return nil
}
