package cpu

import (
	"testing"

	"pathfinder/internal/isa"
)

// allOpsProgram touches every ISA mnemonic the machine implements — scalar
// ALU, byte/word/vector memory, AES rounds, timed loads around a flush, all
// control-transfer kinds (conditional both ways, Brz, Jmp, Call/Ret, Jr,
// Syscall, EEnter) and IBPB — so the dense engine's dispatch and the scalar
// interpreter can be compared arm by arm on one run.
func allOpsProgram(t testing.TB) *isa.Program {
	t.Helper()
	a := isa.NewAssembler()
	a.Label("main")
	a.MovI(isa.R1, 5)
	a.Mov(isa.R2, isa.R1)
	a.Add(isa.R3, isa.R1, isa.R2)
	a.Sub(isa.R4, isa.R3, isa.R1)
	a.And(isa.R5, isa.R3, isa.R1)
	a.Or(isa.R6, isa.R3, isa.R1)
	a.Xor(isa.R7, isa.R3, isa.R1)
	a.XorI(isa.R7, isa.R7, 0x5a)
	a.ShlI(isa.R8, isa.R1, 3)
	a.ShrI(isa.R9, isa.R8, 2)
	a.Mul(isa.R10, isa.R1, isa.R2)
	a.AddI(isa.R11, isa.R10, -3)
	a.MovI(isa.R12, 0x8000)
	a.St(isa.R12, 0, isa.R10)
	a.Ld(isa.R13, isa.R12, 0)
	a.StB(isa.R12, 64, isa.R7)
	a.LdB(isa.R14, isa.R12, 64)
	a.TimedLd(isa.R15, isa.R12, 0)
	a.Clflush(isa.R12, 0)
	a.TimedLd(isa.Reg(16), isa.R12, 0)
	a.Rand(isa.Reg(17))
	a.RdCycle(isa.Reg(18))
	a.VLd(isa.V0, isa.R12, 0)
	a.VXor(isa.V0, isa.R12, 16)
	a.AesEnc(isa.V1, isa.R12, 0)
	a.AesEncLast(isa.V1, isa.R12, 16)
	a.VSt(isa.R12, 32, isa.V1)
	// Conditional branch taken and (on exit) not taken, then Brz against the
	// never-written R20 == R31 == 0.
	a.MovI(isa.Reg(19), 0)
	a.Label("loop")
	a.AddI(isa.Reg(19), isa.Reg(19), 1)
	a.Br(isa.LT, isa.Reg(19), isa.R1, "loop")
	a.Brz(isa.Reg(20), "brz_taken")
	a.Halt() // dead: Brz above always fires
	a.Label("brz_taken")
	a.Call("leaf")
	// Indirect jump through a target the driver plants at 0x9000.
	a.MovI(isa.Reg(21), 0x9000)
	a.Ld(isa.Reg(22), isa.Reg(21), 0)
	a.Jr(isa.Reg(22))
	a.Halt() // dead: jr above always fires
	a.Align(64, 0)
	a.Label("after_jr")
	a.Syscall(1)
	a.EEnter(2)
	a.Ibpb()
	a.Nop()
	a.Jmp("end")
	a.Halt() // dead: jmp above skips it
	a.Label("end")
	a.Halt()
	a.Label("leaf")
	a.AddI(isa.Reg(23), isa.Reg(23), 7)
	a.Ret()
	a.Label("kstub")
	a.AddI(isa.Reg(24), isa.Reg(24), 1)
	a.Ret()
	a.Label("estub")
	a.AddI(isa.Reg(25), isa.Reg(25), 1)
	a.Ret()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllOpcodesDenseMatchesScalar runs the all-mnemonic program on the
// dense engine and the scalar interpreter and requires identical
// architectural and predictor-visible state: every dispatch arm of the
// flattened dense switch must be observationally equal to its scalar twin,
// including the cold paths (stub transfers under IBRS, IBPB, indirect jumps).
func TestAllOpcodesDenseMatchesScalar(t *testing.T) {
	p := allOpsProgram(t)
	run := func(scalar bool) *Machine {
		m := New(Options{Seed: 42, Scalar: scalar})
		m.IBRS = true // exercise the IBRS predictor flush inside enterStub
		m.Mem.Write64(0x9000, p.MustSymbol("after_jr"))
		m.RegisterKernelStub(1, "kstub")
		m.RegisterEnclaveStub(2, "estub")
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
		return m
	}
	den := run(false)
	sc := run(true)
	if !den.denseEligible() {
		t.Fatal("dense machine fell back to the scalar interpreter")
	}
	compareLanes(t, "dense-vs-scalar", 0, den, sc)
	for v := 0; v < isa.NumVRegs; v++ {
		if got, want := den.Hart(0).VReg(isa.VReg(v)), sc.Hart(0).VReg(isa.VReg(v)); got != want {
			t.Errorf("V%d: dense %x, scalar %x", v, got, want)
		}
	}
	if got, want := den.Snapshot().Hash(), sc.Snapshot().Hash(); got != want {
		t.Errorf("snapshot hash: dense %#x, scalar %#x", got, want)
	}
	// The stub handlers really ran, in their own domains, and returned.
	h := den.Hart(0)
	if h.Reg(isa.Reg(23)) != 7 || h.Reg(isa.Reg(24)) != 1 || h.Reg(isa.Reg(25)) != 1 {
		t.Errorf("leaf/kstub/estub side effects missing: R23=%d R24=%d R25=%d",
			h.Reg(isa.Reg(23)), h.Reg(isa.Reg(24)), h.Reg(isa.Reg(25)))
	}
	if h.Domain != User {
		t.Errorf("domain after stub returns = %v, want %v", h.Domain, User)
	}
}

func TestDomainString(t *testing.T) {
	cases := map[Domain]string{
		User:      "user",
		Kernel:    "kernel",
		Enclave:   "enclave",
		Domain(9): "domain(9)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Domain(%d).String() = %q, want %q", uint8(d), got, want)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	m := New(Options{Seed: 1})
	if m.NumHarts() != 1 {
		t.Fatalf("NumHarts = %d, want 1", m.NumHarts())
	}
	if m.Predictor() == nil {
		t.Fatal("Predictor returned nil")
	}
	h := m.Hart(0)
	h.SetReg(isa.R1, 99)
	if h.Reg(isa.R1) != 99 {
		t.Errorf("SetReg/Reg round trip lost the value")
	}
	var v [16]byte
	v[3] = 7
	h.SetVReg(isa.V2, v)
	if h.VReg(isa.V2) != v {
		t.Errorf("SetVReg/VReg round trip lost the value")
	}

	p := allOpsProgram(t)
	m.Mem.Write64(0x9000, p.MustSymbol("after_jr"))
	m.RegisterKernelStub(1, "kstub")
	m.RegisterEnclaveStub(2, "estub")
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	loop := p.MustSymbol("loop")
	// The loop branch lives one instruction after the label (the AddI).
	br, ok := p.At(loop + 4)
	if !ok || !br.IsCondBranch() {
		// Address stride may differ; find the back edge by scanning.
		for i := range p.Instrs {
			if p.Instrs[i].IsCondBranch() && p.Instrs[i].Target == loop {
				br = &p.Instrs[i]
				break
			}
		}
	}
	st := m.Branch(br.Addr)
	if st.Executed == 0 {
		t.Fatalf("no stats recorded for the loop branch at %#x", br.Addr)
	}
	if r := st.MispredictRate(); r < 0 || r > 1 {
		t.Errorf("MispredictRate = %v, want within [0,1]", r)
	}
	if (BranchStat{}).MispredictRate() != 0 {
		t.Error("MispredictRate of an unexecuted branch should be 0")
	}
	m.ResetStats()
	if s := m.Stats(); s.Instructions != 0 || s.CondBranches != 0 {
		t.Errorf("ResetStats left counters behind: %+v", s)
	}
	if st := m.Branch(br.Addr); st.Executed != 0 {
		t.Errorf("ResetStats left per-branch stats behind: %+v", st)
	}

	src := []byte("pathfinder")
	m.Mem.WriteBytes(0x4000, src)
	dst := make([]byte, len(src))
	m.Mem.ReadBytes(0x4000, dst)
	if string(dst) != string(src) {
		t.Errorf("ReadBytes = %q, want %q", dst, src)
	}
	m.Mem.Reset()
	m.Mem.ReadBytes(0x4000, dst)
	for _, b := range dst {
		if b != 0 {
			t.Fatalf("memory survived Reset: %q", dst)
		}
	}
}
