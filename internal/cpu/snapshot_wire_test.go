package cpu

import (
	"strings"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/faultinject"
)

// wireSnapshot builds a trained, state-heavy snapshot for codec tests.
func wireSnapshot(t *testing.T, opts Options) (*Snapshot, *Machine) {
	t.Helper()
	p := snapWorkload(t)
	m := New(opts)
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), m
}

// TestSnapshotWireRoundTripHash is the codec acceptance criterion:
// encode→decode→Hash must equal the source hash, across archs, noise and
// fault-injection configurations.
func TestSnapshotWireRoundTripHash(t *testing.T) {
	prof := faultinject.Default()
	cases := []struct {
		name string
		opts Options
	}{
		{"alderlake", Options{Arch: bpu.AlderLake, Seed: 7}},
		{"raptorlake-noise", Options{Arch: bpu.RaptorLake, Seed: 11, Noise: 0.3}},
		{"skylake", Options{Arch: bpu.Skylake, Seed: 5}},
		{"faulted", Options{Arch: bpu.AlderLake, Seed: 9, Faults: &prof}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, _ := wireSnapshot(t, tc.opts)
			blob, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeSnapshot(blob)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Hash() != snap.Hash() {
				t.Fatalf("decoded hash %#x, want %#x", dec.Hash(), snap.Hash())
			}
			if dec.Arch() != snap.Arch() {
				t.Fatalf("decoded arch %q, want %q", dec.Arch(), snap.Arch())
			}
			// Re-encoding the decoded snapshot must be byte-identical: the
			// codec is canonical, which is what makes the blob itself a
			// content-addressable object.
			blob2, err := dec.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(blob) != string(blob2) {
				t.Fatal("re-encoding a decoded snapshot changed the bytes")
			}
		})
	}
}

// TestSnapshotWireRestoreEquivalence: restoring a decoded snapshot must be
// observationally identical to restoring the original — the continuation
// runs land in the same state.
func TestSnapshotWireRestoreEquivalence(t *testing.T) {
	opts := Options{Arch: bpu.RaptorLake, Seed: 31, Noise: 0.25}
	p := snapWorkload(t)
	m := New(opts)
	if err := m.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}

	// Continuation from the original snapshot.
	a := New(opts)
	a.RestoreFrom(snap)
	if err := a.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	want := observeMachine(a, p)

	// Continuation from the decoded snapshot on another fresh machine.
	b := New(opts)
	b.RestoreFrom(dec)
	if err := b.Run(p, "main"); err != nil {
		t.Fatal(err)
	}
	if got := observeMachine(b, p); got != want {
		t.Fatalf("decoded-snapshot continuation diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotWireRejectsCorruption: flipped body bytes must fail the hash
// check — a corrupt CAS blob can never be restored.
func TestSnapshotWireRejectsCorruption(t *testing.T) {
	snap, _ := wireSnapshot(t, Options{Arch: bpu.AlderLake, Seed: 3})
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] ^= 0xff
		if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want magic rejection", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[4] ^= 0xff
		if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v, want version rejection", err)
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-9] ^= 0x01 // inside the last hart's payload
		_, err := DecodeSnapshot(bad)
		if err == nil {
			t.Fatal("corrupt body decoded cleanly")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeSnapshot(blob[:len(blob)/2]); err == nil {
			t.Fatal("truncated blob decoded cleanly")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), blob...), 0xaa)
		if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("err = %v, want trailing-bytes rejection", err)
		}
	})
}

// TestSnapshotWireDeterministicBytes: two snapshots of identical machine
// histories encode to identical bytes — the property the content-addressed
// store keys on.
func TestSnapshotWireDeterministicBytes(t *testing.T) {
	opts := Options{Arch: bpu.AlderLake, Seed: 17, Noise: 0.1}
	s1, _ := wireSnapshot(t, opts)
	s2, _ := wireSnapshot(t, opts)
	b1, err := s1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("identical machine histories encoded to different bytes")
	}
}
