package cpu

import (
	"strconv"
	"testing"

	"pathfinder/internal/isa"
)

// benchProgram is a tight counted loop: one data-dependent add, one counter
// increment, one conditional back edge per iteration. Per-op cost here is the
// per-instruction cost of the decode/dispatch path plus one predicted branch
// (PHR update, CBP predict/update, branch-stat bump) per three instructions —
// the inner loop every experiment in the harness spends its time in.
func benchProgram(b *testing.B, iters int64) *isa.Program {
	b.Helper()
	a := isa.NewAssembler()
	a.Label("main")
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, iters)
	a.MovI(isa.R3, 0)
	a.Label("loop")
	a.Add(isa.R1, isa.R1, isa.R3)
	a.AddI(isa.R3, isa.R3, 1)
	a.Br(isa.LT, isa.R3, isa.R2, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRunBranchLoop measures steady-state interpreter throughput: the
// program is predecoded on the first Run and served from the decoded-program
// cache afterwards, so the loop body dominates.
func BenchmarkRunBranchLoop(b *testing.B) {
	p := benchProgram(b, 4096)
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(p, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchStep measures the harness's actual steady state: a K-lane
// batch whose lanes are recycled to per-trial seeds and run to completion,
// one group per iteration, exactly as the sharded drivers drive it. The
// ns/instr metric is the per-simulated-instruction cost the ≤20 ns/instr
// budget in BENCH_hotpath.json gates; allocs/op must be 0 once the decoded
// program cache and lane arenas are warm.
func BenchmarkBatchStep(b *testing.B) {
	const iters = 4096
	p := benchProgram(b, iters)
	for _, k := range []int{1, 8} {
		b.Run("K="+strconv.Itoa(k), func(b *testing.B) {
			bat := NewBatch(Options{}, k)
			warm := func(seedBase int64) {
				for i := 0; i < bat.K(); i++ {
					m := bat.Lane(i)
					m.Recycle(Options{Seed: seedBase + int64(i)})
					if err := m.Run(p, "main"); err != nil {
						b.Fatal(err)
					}
				}
			}
			warm(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				warm(int64(i) * int64(k))
			}
			b.StopTimer()
			instrs := float64(iters)*3 + 4 // loop body ×3 + prologue/halt
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(k)*instrs), "ns/instr")
		})
	}
}

// BenchmarkSnapshot measures capturing full predictor-visible state into a
// reused Snapshot — the once-per-configuration cost of priming the harness
// warm-state cache after training.
func BenchmarkSnapshot(b *testing.B) {
	p := benchProgram(b, 256)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	var snap Snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SnapshotInto(&snap)
	}
}

// BenchmarkRestore measures rewinding a machine to a warm snapshot via the
// flat full-copy path — the cost every trial paid before dirty tracking,
// and still the cost when restore-sync cannot be established (first restore
// on a lane, cross-snapshot hops). ForgetRestoreSync pins the full path;
// BenchmarkDirtyRestore measures the tracked one.
func BenchmarkRestore(b *testing.B) {
	p := benchProgram(b, 256)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	snap := m.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForgetRestoreSync()
		m.RestoreFrom(snap)
	}
}

// BenchmarkDirtyRestore measures the dirty-tracked restore on the warm
// per-trial path: each iteration runs a trial-sized workload (untimed) and
// times only the rewind, which copies just the regions the trial touched.
// The gap between this and BenchmarkRestore is the tentpole speedup
// BENCH_delta.json pins on the real AES path.
func BenchmarkDirtyRestore(b *testing.B) {
	p := benchProgram(b, 256)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	snap := m.Snapshot()
	m.RestoreFrom(snap) // establish restore-sync
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.Reseed(int64(i))
		if err := m.Run(p, "main"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		m.RestoreFrom(snap)
	}
}

// BenchmarkRecycle measures resetting a machine to power-on state, the
// per-trial overhead the harness machine pools pay instead of cpu.New.
func BenchmarkRecycle(b *testing.B) {
	p := benchProgram(b, 64)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Recycle(Options{Seed: int64(i)})
	}
}
