package cpu

import (
	"testing"

	"pathfinder/internal/isa"
)

// benchProgram is a tight counted loop: one data-dependent add, one counter
// increment, one conditional back edge per iteration. Per-op cost here is the
// per-instruction cost of the decode/dispatch path plus one predicted branch
// (PHR update, CBP predict/update, branch-stat bump) per three instructions —
// the inner loop every experiment in the harness spends its time in.
func benchProgram(b *testing.B, iters int64) *isa.Program {
	b.Helper()
	a := isa.NewAssembler()
	a.Label("main")
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, iters)
	a.MovI(isa.R3, 0)
	a.Label("loop")
	a.Add(isa.R1, isa.R1, isa.R3)
	a.AddI(isa.R3, isa.R3, 1)
	a.Br(isa.LT, isa.R3, isa.R2, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRunBranchLoop measures steady-state interpreter throughput: the
// program is predecoded on the first Run and served from the decoded-program
// cache afterwards, so the loop body dominates.
func BenchmarkRunBranchLoop(b *testing.B) {
	p := benchProgram(b, 4096)
	m := New(Options{})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(p, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot measures capturing full predictor-visible state into a
// reused Snapshot — the once-per-configuration cost of priming the harness
// warm-state cache after training.
func BenchmarkSnapshot(b *testing.B) {
	p := benchProgram(b, 256)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	var snap Snapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SnapshotInto(&snap)
	}
}

// BenchmarkRestore measures rewinding a machine to a warm snapshot — the
// per-trial cost that replaces re-running the training loop when the
// warm-state cache hits.
func BenchmarkRestore(b *testing.B) {
	p := benchProgram(b, 256)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	snap := m.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RestoreFrom(snap)
	}
}

// BenchmarkRecycle measures resetting a machine to power-on state, the
// per-trial overhead the harness machine pools pay instead of cpu.New.
func BenchmarkRecycle(b *testing.B) {
	p := benchProgram(b, 64)
	m := New(Options{Seed: 1})
	if err := m.Run(p, "main"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Recycle(Options{Seed: int64(i)})
	}
}
