package cpu

import "encoding/binary"

const pageSize = 4096

// Memory is a sparse, paged, byte-addressable physical memory. Multi-byte
// accesses are little-endian and may span pages. A one-entry MRU page cache
// keeps the table-walk loops of the attack programs off the page map.
type Memory struct {
	pages map[uint64]*[pageSize]byte
	mruPN uint64
	mru   *[pageSize]byte
}

// NewMemory returns empty memory; reads of untouched addresses yield zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr / pageSize
	if m.mru != nil && m.mruPN == pn {
		return m.mru
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.mruPN, m.mru = pn, p
	}
	return p
}

// Reset zeroes all of memory. Existing pages are scrubbed in place rather
// than dropped: a zeroed page and an absent page read identically, and
// keeping them lets recycled machines rewrite their working set without
// re-faulting pages.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = [pageSize]byte{}
	}
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr%pageSize]
	}
	return 0
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v byte) {
	m.page(addr, true)[addr%pageSize] = v
}

// Read64 returns the little-endian uint64 at addr.
func (m *Memory) Read64(addr uint64) uint64 {
	if off := addr % pageSize; off <= pageSize-8 {
		if p := m.page(addr, false); p != nil {
			return binary.LittleEndian.Uint64(p[off:])
		}
		return 0
	}
	var b [8]byte
	m.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Write64 stores a little-endian uint64.
func (m *Memory) Write64(addr uint64, v uint64) {
	if off := addr % pageSize; off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.WriteBytes(addr, b[:])
}

// Read128 returns 16 bytes at addr.
func (m *Memory) Read128(addr uint64) [16]byte {
	var b [16]byte
	if off := addr % pageSize; off <= pageSize-16 {
		if p := m.page(addr, false); p != nil {
			copy(b[:], p[off:off+16])
		}
		return b
	}
	m.ReadBytes(addr, b[:])
	return b
}

// Write128 stores 16 bytes at addr.
func (m *Memory) Write128(addr uint64, v [16]byte) {
	if off := addr % pageSize; off <= pageSize-16 {
		copy(m.page(addr, true)[off:], v[:])
		return
	}
	m.WriteBytes(addr, v[:])
}

// ReadBytes fills dst from memory starting at addr.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for i := range dst {
		dst[i] = m.Read8(addr + uint64(i))
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for i, v := range src {
		m.Write8(addr+uint64(i), v)
	}
}
