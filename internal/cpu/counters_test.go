package cpu

import "testing"

// TestCountersAdd pins the field-by-field aggregation the service layer's
// /metrics exposition depends on; previously it was only exercised
// incidentally through the daemon smoke test.
func TestCountersAdd(t *testing.T) {
	one := Counters{Instructions: 1, Cycles: 2, CondBranches: 3, TakenBranches: 4,
		Mispredicts: 5, TransientInstrs: 6, Runs: 7}
	big := Counters{Instructions: 1 << 60, Cycles: 1 << 61, CondBranches: 1 << 50,
		TakenBranches: 1 << 51, Mispredicts: 1 << 40, TransientInstrs: 1 << 41, Runs: 1 << 30}
	cases := []struct {
		name    string
		acc, in Counters
		want    Counters
	}{
		{"zero plus zero", Counters{}, Counters{}, Counters{}},
		{"zero identity", one, Counters{}, one},
		{"into zero", Counters{}, one, one},
		{"all fields", one, one, Counters{Instructions: 2, Cycles: 4, CondBranches: 6,
			TakenBranches: 8, Mispredicts: 10, TransientInstrs: 12, Runs: 14}},
		{"disjoint fields", Counters{Instructions: 9}, Counters{Runs: 4},
			Counters{Instructions: 9, Runs: 4}},
		{"large values", big, big, Counters{Instructions: 1 << 61, Cycles: 1 << 62,
			CondBranches: 1 << 51, TakenBranches: 1 << 52, Mispredicts: 1 << 41,
			TransientInstrs: 1 << 42, Runs: 1 << 31}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			acc := c.acc
			acc.Add(c.in)
			if acc != c.want {
				t.Errorf("Add: got %+v, want %+v", acc, c.want)
			}
		})
	}
	// Repeated accumulation, the shape every driver loop uses.
	var acc Counters
	for i := 0; i < 10; i++ {
		acc.Add(one)
	}
	if acc.Runs != 70 || acc.Instructions != 10 {
		t.Errorf("10x accumulate: %+v", acc)
	}
}
