package cpu

import (
	"fmt"
	"testing"

	"pathfinder/internal/bpu"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
	"pathfinder/internal/refmodel"
	"pathfinder/internal/trace"
)

// This file is the differential harness pinning the batch/dense engine to the
// scalar interpreter and the refmodel oracle: a byte-directed program
// generator, a three-way per-trial comparison (dense batch lanes vs
// Options.Scalar vs refmodel-backed machines), and a stimulus recorder that
// replays every branch the program executed through trace.Diff for
// first-divergence state dumps.

// fuzzRd dispenses generator decisions from fuzzer bytes, cycling so short
// (or empty) inputs still drive a full program.
type fuzzRd struct {
	data []byte
	i    int
}

func (r *fuzzRd) next() byte {
	if len(r.data) == 0 {
		return 0
	}
	b := r.data[r.i%len(r.data)]
	r.i++
	return b
}

// fuzzProgram builds a deterministic, always-terminating program from fuzzer
// bytes: a counted outer loop whose body is a byte-directed mix of ALU ops,
// loads and stores, RAND-driven coin branches (the mispredict + transient
// fodder), counter-dependent forward branches, leaf calls, jumps and address
// scatters. The counted loop branch is the only backward edge, so every
// generated program halts on its own.
func fuzzProgram(data []byte) (*isa.Program, error) {
	rd := &fuzzRd{data: data}
	a := isa.NewAssembler()
	scratch := []isa.Reg{isa.R5, isa.R6, isa.R7, isa.R8, isa.R9}
	reg := func() isa.Reg { return scratch[int(rd.next())%len(scratch)] }
	nfn := 1 + int(rd.next()%3)

	a.Label("main")
	a.MovI(isa.R1, 0)                       // loop counter
	a.MovI(isa.R2, int64(2+int(rd.next()%14))) // trip count
	a.MovI(isa.R3, 0x8000)                  // data base
	a.MovI(isa.R4, 1)
	for i, r := range scratch {
		a.MovI(r, int64(i*7+1))
	}
	a.Label("loop")
	lbl := 0
	nseg := 1 + int(rd.next()%12)
	for s := 0; s < nseg; s++ {
		switch rd.next() % 10 {
		case 0:
			a.Add(reg(), reg(), reg())
		case 1:
			a.Xor(reg(), reg(), reg())
		case 2:
			a.AddI(reg(), reg(), int64(rd.next()))
		case 3:
			a.ShlI(reg(), reg(), int64(rd.next()%8))
		case 4:
			a.St(isa.R3, int64(rd.next()%32)*8, reg())
			a.Ld(reg(), isa.R3, int64(rd.next()%32)*8)
		case 5:
			// Coin branch: deterministic per machine seed, unpredictable to
			// the CBP — the program's mispredict and transient-window source.
			l := fmt.Sprintf("c%d", lbl)
			lbl++
			a.Rand(isa.R10)
			a.And(isa.R10, isa.R10, isa.R4)
			a.Br(isa.EQ, isa.R10, isa.R4, l)
			a.AddI(reg(), reg(), 1)
			a.Label(l)
		case 6:
			// Counter-parity branch: data-dependent but CBP-learnable.
			l := fmt.Sprintf("d%d", lbl)
			lbl++
			a.And(isa.R11, isa.R1, isa.R4)
			a.Br(isa.EQ, isa.R11, isa.R4, l)
			a.Xor(reg(), reg(), reg())
			a.Label(l)
		case 7:
			a.Call(fmt.Sprintf("fn%d", int(rd.next())%nfn))
		case 8:
			l := fmt.Sprintf("j%d", lbl)
			lbl++
			a.Jmp(l)
			a.Nop()
			a.Label(l)
		case 9:
			// Address scatter: vary the PC bits feeding PHR footprints and
			// PHT index/tag folds without changing control flow.
			a.Align(1<<(4+uint(rd.next()%8)), 0)
		}
	}
	a.AddI(isa.R1, isa.R1, 1)
	a.Br(isa.LT, isa.R1, isa.R2, "loop")
	a.Halt()
	for i := 0; i < nfn; i++ {
		a.Label(fmt.Sprintf("fn%d", i))
		a.AddI(isa.R12, isa.R12, int64(i+1))
		a.Ret()
	}
	return a.Assemble()
}

// fuzzKs are the batch widths the differential suite exercises: the scalar
// degenerate, tiny, odd (partial final arena group) and wide cases.
var fuzzKs = [...]int{1, 2, 7, 64}

const fuzzStepLimit = 1 << 20

// machineDump renders the state a divergence report needs: counters, the
// PHR, and every trained predictor entry.
func machineDump(m *Machine) string {
	return fmt.Sprintf("stats: %+v\nPHR: %v\n%s", m.Stats(), m.Hart(0).PHR, m.BPU.CBP.DumpState())
}

// compareLanes fails the test at the first architectural divergence between
// two machines that executed the same trial.
func compareLanes(t *testing.T, label string, lane int, got, want *Machine) {
	t.Helper()
	fail := func(reason string) {
		t.Helper()
		t.Fatalf("lane %d: %s: %s\n--- got ---\n%s\n--- want ---\n%s",
			lane, label, reason, machineDump(got), machineDump(want))
	}
	if got.Stats() != want.Stats() {
		fail(fmt.Sprintf("counters differ: %+v vs %+v", got.Stats(), want.Stats()))
	}
	for r := 0; r < isa.NumRegs; r++ {
		if g, w := got.Hart(0).Reg(isa.Reg(r)), want.Hart(0).Reg(isa.Reg(r)); g != w {
			fail(fmt.Sprintf("R%d = %#x, want %#x", r, g, w))
		}
	}
	if !got.Hart(0).PHR.Equal(want.Hart(0).PHR) {
		fail("history registers differ")
	}
}

// recordingPred wraps the production CBP and logs every committed
// conditional branch. Predictions pass through unchanged, so the recording
// run executes exactly like a production scalar run.
type recordingPred struct {
	bpu.Predictor
	log *[]trace.Branch
}

func (r recordingPred) Update(pc uint64, h phr.History, taken bool, p bpu.Prediction) {
	*r.log = append(*r.log, trace.Branch{PC: pc, Cond: true, Taken: taken})
	r.Predictor.Update(pc, h, taken, p)
}

// recordStream replays the program on an instrumented scalar machine and
// returns the full branch stimulus it committed: conditional branches from
// the predictor's Update stream, targets and unconditional transfers from
// the TraceTaken hook. Transient execution never calls Update or TraceTaken,
// so the stream holds exactly the architectural branches.
func recordStream(t *testing.T, prog *isa.Program, o Options) []trace.Branch {
	t.Helper()
	var log []trace.Branch
	o.NewPredictor = func(c bpu.Config) bpu.Predictor {
		return recordingPred{Predictor: bpu.NewCBP(c), log: &log}
	}
	m := New(o)
	m.TraceTaken = func(pc, tgt uint64) {
		if n := len(log); n > 0 && log[n-1].Cond && log[n-1].PC == pc && log[n-1].Taken && log[n-1].Target == 0 {
			log[n-1].Target = tgt // the taken conditional Update just logged
			return
		}
		log = append(log, trace.Branch{PC: pc, Target: tgt, Taken: true})
	}
	if err := m.Run(prog, "main"); err != nil {
		t.Logf("recording run ended with %v (stream kept: engines must agree on the error)", err)
	}
	return log
}

// diffBatchVsScalar is the core differential check: K batch lanes on the
// dense engine against per-trial scalar-interpreter and refmodel-oracle
// machines, plus a trace.Diff replay of lane 0's recorded stimulus.
func diffBatchVsScalar(t *testing.T, data []byte, archSel, kSel uint8) {
	t.Helper()
	cfg := bpu.Configs()[int(archSel)%3]
	k := fuzzKs[int(kSel)%len(fuzzKs)]
	prog, err := fuzzProgram(data)
	if err != nil {
		t.Fatalf("generator produced an unassemblable program: %v", err)
	}
	laneOpts := func(scalar bool, lane int) Options {
		return Options{Arch: cfg, Seed: 1000 + int64(lane), StepLimit: fuzzStepLimit, Scalar: scalar}
	}

	// Dense side: all K trials on one batch's arena lanes.
	b := NewBatch(Options{Arch: cfg, StepLimit: fuzzStepLimit}, k)
	denseErrs := make([]string, k)
	denseHash := make([]uint64, k)
	for i := 0; i < k; i++ {
		m := b.Lane(i)
		m.Recycle(laneOpts(false, i))
		if !m.denseEligible() {
			t.Fatal("hookless lane not eligible for the dense engine")
		}
		if err := m.Run(prog, "main"); err != nil {
			denseErrs[i] = err.Error()
		}
		denseHash[i] = m.Snapshot().Hash()
	}

	for i := 0; i < k; i++ {
		// Scalar interpreter oracle.
		sm := New(laneOpts(true, i))
		var serr string
		if err := sm.Run(prog, "main"); err != nil {
			serr = err.Error()
		}
		if serr != denseErrs[i] {
			t.Fatalf("lane %d: dense error %q, scalar error %q", i, denseErrs[i], serr)
		}
		compareLanes(t, "dense vs scalar", i, b.Lane(i), sm)
		if h := sm.Snapshot().Hash(); h != denseHash[i] {
			t.Fatalf("lane %d: snapshot hash %#x (dense) != %#x (scalar) with identical architectural state:\n--- dense ---\n%s\n--- scalar ---\n%s",
				i, denseHash[i], h, machineDump(b.Lane(i)), machineDump(sm))
		}

		// Refmodel oracle: bit-by-bit folds, map-backed tables. No snapshot
		// (custom predictors cannot snapshot); architectural compare only.
		ro := laneOpts(true, i)
		ro.NewPredictor = refmodel.NewPredictor
		rm := New(ro)
		var rerr string
		if err := rm.Run(prog, "main"); err != nil {
			rerr = err.Error()
		}
		if rerr != denseErrs[i] {
			t.Fatalf("lane %d: dense error %q, refmodel error %q", i, denseErrs[i], rerr)
		}
		if rm.Stats() != b.Lane(i).Stats() {
			t.Fatalf("lane %d: dense vs refmodel counters differ: %+v vs %+v",
				i, b.Lane(i).Stats(), rm.Stats())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if g, w := b.Lane(i).Hart(0).Reg(isa.Reg(r)), rm.Hart(0).Reg(isa.Reg(r)); g != w {
				t.Fatalf("lane %d: dense vs refmodel R%d = %#x, want %#x", i, r, g, w)
			}
		}
		if !b.Lane(i).Hart(0).PHR.Equal(rm.Hart(0).PHR) {
			t.Fatalf("lane %d: dense vs refmodel history registers differ", i)
		}
	}

	// Replay lane 0's exact branch stimulus through the lockstep
	// differential: on divergence trace.Diff dumps the first bad step with
	// full predictor state from both implementations.
	stream := recordStream(t, prog, laneOpts(true, 0))
	if d := trace.Diff(trace.NewModel(cfg), trace.NewOracle(cfg), stream); d != nil {
		t.Fatalf("production model diverged from refmodel oracle on the recorded stimulus:\n%s", d)
	}
}

// TestBatchVsScalarParity runs the differential over a fixed corpus at every
// batch width, so the equivalence contract is checked on every plain `go
// test` run, not only under the fuzzer.
func TestBatchVsScalarParity(t *testing.T) {
	corpus := [][]byte{
		nil,
		{5, 1, 5, 0, 5, 1},
		{7, 3, 9, 250, 4, 4, 5, 6, 7, 8, 9, 0, 1, 2},
		{200, 199, 198, 5, 5, 5, 6, 6, 6, 9, 9, 9, 7, 7},
		{13, 42, 99, 5, 250, 17, 6, 88, 3, 1, 4, 1, 5, 9, 2, 6},
	}
	for ci, data := range corpus {
		for kSel := range fuzzKs {
			t.Run(fmt.Sprintf("corpus%d/K%d", ci, fuzzKs[kSel]), func(t *testing.T) {
				diffBatchVsScalar(t, data, uint8(ci), uint8(kSel))
			})
		}
	}
}

// TestMidBatchSnapshotRoundTrip pins snapshot semantics at batch grain: a
// lane captured mid-batch (its trial half run, earlier lanes complete, later
// lanes untouched) must restore onto the same lane, a fresh standalone
// machine, a lane of a different-width batch, and a machine rebuilt from the
// wire codec — and every restoree must finish the trial bit-identically.
// Arena placement (structure-of-arrays PHRs) must be unobservable.
func TestMidBatchSnapshotRoundTrip(t *testing.T) {
	data := []byte{13, 42, 99, 5, 250, 17, 6, 88, 3, 1, 4, 1, 5, 9, 2, 6}
	cases := []struct {
		name string
		k    int
		lane int // capture at trial `lane` of k
	}{
		{"K4/first", 4, 0},
		{"K4/mid", 4, 2},
		{"K7/last", 7, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := fuzzProgram(data)
			if err != nil {
				t.Fatal(err)
			}
			opts := func(lane int) Options {
				return Options{Seed: 7000 + int64(lane), StepLimit: fuzzStepLimit}
			}
			finish := func(m *Machine) uint64 {
				t.Helper()
				if err := m.Run(prog, "main"); err != nil {
					t.Fatal(err)
				}
				return m.Snapshot().Hash()
			}

			b := NewBatch(Options{StepLimit: fuzzStepLimit}, tc.k)
			// Earlier lanes complete their trials (two runs each) so the
			// capture happens inside a genuinely in-progress batch.
			for i := 0; i < tc.lane; i++ {
				m := b.Lane(i)
				m.Recycle(opts(i))
				finish(m)
				finish(m)
			}
			m := b.Lane(tc.lane)
			m.Recycle(opts(tc.lane))
			finish(m) // half the trial: trained, not yet measured
			var snap Snapshot
			m.SnapshotInto(&snap)
			want := finish(m) // the trial's true final state

			// Rewind the same lane.
			m.RestoreFrom(&snap)
			if got := finish(m); got != want {
				t.Fatalf("same-lane rewind finished at %#x, want %#x", got, want)
			}

			// A standalone machine.
			fresh := New(opts(tc.lane))
			fresh.RestoreFrom(&snap)
			if got := finish(fresh); got != want {
				t.Fatalf("standalone restore finished at %#x, want %#x", got, want)
			}

			// A lane of a different-width batch.
			other := NewBatch(opts(tc.lane), 2)
			om := other.Lane(1)
			om.RestoreFrom(&snap)
			if got := finish(om); got != want {
				t.Fatalf("cross-batch restore finished at %#x, want %#x", got, want)
			}

			// Wire codec round-trip of the mid-batch capture.
			wire, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeSnapshot(wire)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Hash() != snap.Hash() {
				t.Fatalf("wire round-trip hash %#x, want %#x", dec.Hash(), snap.Hash())
			}
			wm := New(opts(tc.lane))
			wm.RestoreFrom(dec)
			if got := finish(wm); got != want {
				t.Fatalf("wire-restored machine finished at %#x, want %#x", got, want)
			}

			// The restore games must not have disturbed arena neighbours:
			// later lanes still run their trials exactly like standalone
			// machines.
			for i := tc.lane + 1; i < tc.k; i++ {
				lm := b.Lane(i)
				lm.Recycle(opts(i))
				finish(lm)
				got := finish(lm)
				sm := New(opts(i))
				finish(sm)
				if wantLane := finish(sm); got != wantLane {
					t.Fatalf("lane %d after restores finished at %#x, standalone %#x", i, got, wantLane)
				}
			}
		})
	}
}

// FuzzBatchVsScalar lets the fuzzer choose the program, microarchitecture
// and batch width, then requires the dense batch engine, the scalar
// interpreter and the refmodel oracle to agree on every trial. Run locally
// with:
//
//	go test ./internal/cpu -run='^$' -fuzz=FuzzBatchVsScalar -fuzztime=30s
func FuzzBatchVsScalar(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{5, 1, 5, 0, 5, 1}, uint8(1), uint8(1))
	f.Add([]byte{7, 3, 9, 250, 4, 4, 5, 6, 7, 8, 9, 0, 1, 2}, uint8(2), uint8(2))
	f.Add([]byte{13, 42, 99, 5, 250, 17, 6, 88, 3, 1, 4, 1, 5, 9, 2, 6}, uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, archSel, kSel uint8) {
		if len(data) > 1<<12 {
			return // bound per-input work; program shape saturates well before this
		}
		diffBatchVsScalar(t, data, archSel, kSel)
	})
}

// TestBatchGroupOperations pins the batch-grain API the harness drivers lean
// on: RecycleAll resets every lane to one option set, RestoreAll fans one
// warm snapshot out to all lanes, and Each linearizes over lanes in order —
// after which every lane must be indistinguishable from a standalone machine
// given the same history.
func TestBatchGroupOperations(t *testing.T) {
	prog, err := fuzzProgram([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 11, StepLimit: fuzzStepLimit}
	b := NewBatch(opts, 3)
	if b.K() != 3 {
		t.Fatalf("K() = %d, want 3", b.K())
	}
	if got := b.Options(); got.Seed != opts.Seed || got.StepLimit != opts.StepLimit {
		t.Fatalf("Options() = %+v, want Seed/StepLimit of %+v", got, opts)
	}

	// Dirty every lane, then RecycleAll back to a common power-on state.
	if err := b.Each(func(lane int, m *Machine) error {
		m.Recycle(Options{Seed: int64(100 + lane), StepLimit: fuzzStepLimit})
		return m.Run(prog, "main")
	}); err != nil {
		t.Fatal(err)
	}
	b.RecycleAll(opts)

	// Warm one reference machine, fan its snapshot out, and let every lane
	// finish the program; each must land exactly where a standalone machine
	// restored from the same snapshot does.
	ref := New(opts)
	if err := ref.Run(prog, "main"); err != nil {
		t.Fatal(err)
	}
	snap := ref.Snapshot()
	b.RestoreAll(snap)
	if err := ref.Run(prog, "main"); err != nil {
		t.Fatal(err)
	}
	want := ref.Snapshot().Hash()
	if err := b.Each(func(lane int, m *Machine) error {
		return m.Run(prog, "main")
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.K(); i++ {
		if got := b.Lane(i).Snapshot().Hash(); got != want {
			t.Errorf("lane %d finished at %#x, standalone restore finished at %#x", i, got, want)
		}
	}

	// Each stops at the first error and reports it.
	sentinel := fmt.Errorf("lane 1 boom")
	ran := 0
	if err := b.Each(func(lane int, m *Machine) error {
		ran++
		if lane == 1 {
			return sentinel
		}
		return nil
	}); err != sentinel {
		t.Errorf("Each returned %v, want sentinel", err)
	}
	if ran != 2 {
		t.Errorf("Each visited %d lanes after an error at lane 1, want 2", ran)
	}
}
