package cpu

import (
	"testing"

	"pathfinder/internal/faultinject"
	"pathfinder/internal/isa"
)

// faultProg is a workload that exercises every injector hook: run-boundary
// PHR events (each Run), data-dependent conditional branches (PHT training
// filter), and loads whose latency feeds a register (cache/jitter noise).
func faultProg(t *testing.T) *isa.Program {
	return mustAssemble(t, func(a *isa.Assembler) {
		a.Label("main")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, 64)
		a.MovI(isa.R5, 0x9000)
		a.Label("loop")
		a.Rand(isa.R3)
		a.MovI(isa.R4, 1)
		a.And(isa.R3, isa.R3, isa.R4)
		a.Br(isa.EQ, isa.R3, isa.R4, "odd")
		a.TimedLd(isa.R6, isa.R5, 0)
		a.Label("odd")
		a.AddI(isa.R1, isa.R1, 1)
		a.AddI(isa.R5, isa.R5, 64)
		a.Br(isa.LT, isa.R1, isa.R2, "loop")
		a.Halt()
	})
}

func runFaulted(t *testing.T, opts Options) (Counters, uint64) {
	t.Helper()
	m := New(opts)
	p := faultProg(t)
	for r := 0; r < 8; r++ {
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
	}
	return m.Stats(), m.Hart(0).PHR.Words()[0]
}

// TestFaultedRunDeterminism: same seed + profile ⇒ identical counters and
// final PHR; a recycled machine matches a fresh one; distinct seeds diverge.
func TestFaultedRunDeterminism(t *testing.T) {
	prof := faultinject.Default().WithPollution(0.2, 8)
	opts := Options{Seed: 42, Faults: &prof}
	s1, w1 := runFaulted(t, opts)
	s2, w2 := runFaulted(t, opts)
	if s1 != s2 || w1 != w2 {
		t.Fatalf("faulted runs diverge:\n%+v %x\n%+v %x", s1, w1, s2, w2)
	}

	m := New(opts)
	p := faultProg(t)
	for r := 0; r < 3; r++ {
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
	}
	m.Recycle(opts)
	for r := 0; r < 8; r++ {
		if err := m.Run(p, "main"); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats(); got != s1 {
		t.Fatalf("recycled faulted machine diverges from fresh:\n%+v\n%+v", got, s1)
	}

	s3, _ := runFaulted(t, Options{Seed: 43, Faults: &prof})
	if s1 == s3 {
		t.Fatal("distinct seeds produced identical faulted counters")
	}
}

// TestDisabledProfileIsNoProfile: a nil profile and an all-zero profile are
// indistinguishable — the zero value must leave golden reports untouched.
func TestDisabledProfileIsNoProfile(t *testing.T) {
	base, wb := runFaulted(t, Options{Seed: 42})
	zero, wz := runFaulted(t, Options{Seed: 42, Faults: &faultinject.Profile{}})
	if base != zero || wb != wz {
		t.Fatalf("zero fault profile perturbed execution:\n%+v %x\n%+v %x", base, wb, zero, wz)
	}
}

// TestFaultsPerturbExecution: the default profile at full pollution strength
// must actually change predictor-visible behavior versus a clean machine.
func TestFaultsPerturbExecution(t *testing.T) {
	prof := faultinject.Default().WithPollution(1, 12)
	clean, _ := runFaulted(t, Options{Seed: 42})
	faulted, _ := runFaulted(t, Options{Seed: 42, Faults: &prof})
	if clean == faulted {
		t.Fatal("full-strength fault profile left counters identical to a clean run")
	}
}
