// Package cpu executes ISA programs on a modeled machine that couples a
// functional interpreter to the microarchitectural state the Pathfinder
// attacks exploit: the per-hart path history register, the shared
// conditional branch predictor and BTB/IBP (package bpu), and a shared data
// cache (package cache).
//
// The execution model is functional-first with a speculation side model:
// architectural execution always follows correct outcomes, while every
// conditional branch is also predicted, counted, and — when mispredicted —
// followed by a bounded *transient* execution of the predicted wrong path.
// Transient instructions run on a sandboxed copy of the architectural
// state; their loads perturb the shared cache (the Spectre channel) and
// everything else is squashed. The transient window length equals the
// branch's resolution delay, which is dominated by cache misses feeding its
// operands — flushing a value a branch depends on therefore widens the
// window, exactly as in §9 of the paper.
package cpu

import (
	"fmt"

	"pathfinder/internal/aes"
	"pathfinder/internal/bpu"
	"pathfinder/internal/cache"
	"pathfinder/internal/faultinject"
	"pathfinder/internal/isa"
	"pathfinder/internal/phr"
)

// Domain is a security domain for the attack-surface experiments (§7).
type Domain uint8

// Security domains.
const (
	User Domain = iota
	Kernel
	Enclave
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case User:
		return "user"
	case Kernel:
		return "kernel"
	case Enclave:
		return "enclave"
	}
	return fmt.Sprintf("domain(%d)", uint8(d))
}

// splitmix64 is a tiny cloneable PRNG driving the RAND instruction and the
// noise model; cloneability keeps transient execution from perturbing the
// architectural random stream.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *splitmix64) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Hart is one logical core: private architectural registers and a private
// PHR (§7.3: SMT harts do not share the PHR).
type Hart struct {
	ID     int
	PHR    *phr.Reg
	Domain Domain

	regs    [isa.NumRegs]uint64
	vregs   [isa.NumVRegs][16]byte
	ready   [isa.NumRegs]uint64 // cycle at which each register's value is available
	stack   []frame
	rng     splitmix64
	machine *Machine
}

type frame struct {
	retIdx        int // program index to resume at; -1 ends the run
	restoreDomain bool
	prevDomain    Domain
}

// Reg returns a scalar register value.
func (h *Hart) Reg(r isa.Reg) uint64 { return h.regs[r] }

// SetReg writes a scalar register.
func (h *Hart) SetReg(r isa.Reg, v uint64) { h.regs[r] = v }

// VReg returns a vector register value.
func (h *Hart) VReg(v isa.VReg) [16]byte { return h.vregs[v] }

// SetVReg writes a vector register.
func (h *Hart) SetVReg(v isa.VReg, val [16]byte) { h.vregs[v] = val }

// BranchStat accumulates per-branch-address outcomes; the model's stand-in
// for per-branch performance-counter measurements.
type BranchStat struct {
	Executed     uint64
	Taken        uint64
	Mispredicted uint64
}

// MispredictRate returns mispredictions per execution.
func (s BranchStat) MispredictRate() float64 {
	if s.Executed == 0 {
		return 0
	}
	return float64(s.Mispredicted) / float64(s.Executed)
}

// Counters are machine-wide event counts since the last ResetStats. The
// JSON form is consumed by the experiment-orchestration service, which
// aggregates counters across every machine a job builds.
type Counters struct {
	Instructions    uint64 `json:"instructions"`
	Cycles          uint64 `json:"cycles"`
	CondBranches    uint64 `json:"cond_branches"`
	TakenBranches   uint64 `json:"taken_branches"` // all taken branches, conditional or not
	Mispredicts     uint64 `json:"mispredicts"`
	TransientInstrs uint64 `json:"transient_instrs"`
	Runs            uint64 `json:"runs"`
}

// Add accumulates o into c. Harness drivers build many short-lived machines
// per experiment; Add lets them report one aggregate to callers (the service
// layer feeds these into its /metrics exposition).
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.CondBranches += o.CondBranches
	c.TakenBranches += o.TakenBranches
	c.Mispredicts += o.Mispredicts
	c.TransientInstrs += o.TransientInstrs
	c.Runs += o.Runs
}

// Options configure a Machine.
type Options struct {
	Arch               bpu.Config // microarchitecture; zero value means Alder Lake
	Harts              int        // logical cores; default 1, max 2 per physical core
	Seed               int64      // deterministic seed for RAND and the noise model
	Noise              float64    // probability a mispredict resolves with no transient window
	MispredictPenalty  int        // cycles added per misprediction (default 15)
	MaxTransientWindow int        // cap on transient instructions per mispredict (default 400)
	StepLimit          uint64     // per-Run instruction budget (default 100M)

	// NewPredictor, when non-nil, builds the conditional branch predictor
	// backing this machine instead of the default bpu.CBP — the hook the
	// differential-verification harness uses to run whole experiments on
	// the internal/refmodel oracle. It is a constructor, not an instance,
	// so every Machine gets private predictor state.
	NewPredictor func(bpu.Config) bpu.Predictor

	// Faults arms the deterministic fault-injection layer: PHR pollution
	// and misalignment at run boundaries, PHT training drop/aliasing,
	// cache-eviction pressure and latency jitter on memory accesses. The
	// injector is seeded from Seed (plus the profile's Salt), so faulted
	// runs keep the machine's determinism contract. A nil or disabled
	// profile leaves every hot path untouched.
	Faults *faultinject.Profile

	// Scalar forces the reference scalar interpreter even when a run is
	// eligible for the dense engine (see dense.go). The differential tests
	// use it as the oracle side of batch-vs-scalar comparisons; production
	// callers leave it false.
	Scalar bool
}

// Machine is a physical core: shared branch prediction unit, shared cache
// and memory, one or two harts.
type Machine struct {
	BPU  *bpu.Unit
	Mem  *Memory
	Data *cache.Cache

	IBRS bool // when set, entering the kernel flushes indirect predictors

	// TraceTaken, when non-nil, observes every architecturally taken branch
	// (pc, target) in execution order. Experiments use it to compute
	// ground-truth path history; attacks never do.
	TraceTaken func(pc, target uint64)

	// Aux is an opaque slot for higher layers to attach per-machine caches
	// (internal/core keeps its reusable attack-program templates here). The
	// simulator itself never touches it.
	Aux any

	cbp    bpu.Predictor // conditional predictor in use: BPU.CBP or an Options-supplied oracle
	inj    *faultinject.Injector // nil unless Options.Faults is enabled
	harts  []*Hart
	opts   Options
	noise  splitmix64
	stats  Counters
	perPC  map[uint64]*BranchStat
	progs  map[*isa.Program]*progState
	tscr   transientState   // reused wrong-path sandbox (exec is not reentrant)
	kstubs map[int64]string // syscall number -> entry label
	estubs map[int64]string // enclave number -> entry label

	// Restore-sync marker: when syncOK is set, every BPU/cache region whose
	// dirty bit is clear is bit-identical to the snapshot whose content hash
	// is syncHash (the machine was last restored to, or snapshotted into,
	// that state and the dirty bitmaps have recorded every mutation since).
	// RestoreFrom uses it to rewind via the dirty-only copies — restore cost
	// proportional to the trial's footprint instead of table geometry.
	// Recycle clears it; anything it cannot account for must.
	syncOK   bool
	syncHash uint64
}

// progState is decoded per-(machine, program) interpreter state: the
// per-instruction branch-stat references that replace the per-execution
// map probe, and the dense predecoded stream the fast engine dispatches
// over. A stat reference is validated against the instruction's current
// address, so program templates that re-address instructions in place
// (internal/core's patched attack programs) self-heal on first use; the
// dense stream is validated against Program.Version, which Reindex bumps
// after every in-place mutation.
type progState struct {
	stats        []statRef
	dense        []denseInstr
	denseVersion uint64
	denseOK      bool
}

type statRef struct {
	addr uint64
	s    *BranchStat
}

// progCacheCap bounds the per-machine decoded-program cache; when a machine
// churns through more distinct programs than this, the cache is dropped
// wholesale and rebuilt on demand.
const progCacheCap = 64

func (m *Machine) progState(p *isa.Program) *progState {
	ps := m.progs[p]
	if ps == nil || len(ps.stats) != len(p.Instrs) {
		if len(m.progs) >= progCacheCap {
			m.progs = make(map[*isa.Program]*progState, progCacheCap)
		}
		ps = &progState{stats: make([]statRef, len(p.Instrs))}
		m.progs[p] = ps
	}
	return ps
}

// normalizeOptions applies the documented defaults; New, Recycle and
// NewBatch share it so a recycled or batch-arena machine defaults exactly
// like a fresh one.
func normalizeOptions(opts Options) Options {
	if opts.Arch.PHRSize == 0 {
		opts.Arch = bpu.AlderLake
	}
	if opts.Harts <= 0 {
		opts.Harts = 1
	}
	if opts.MispredictPenalty == 0 {
		opts.MispredictPenalty = 15
	}
	if opts.MaxTransientWindow == 0 {
		opts.MaxTransientWindow = 400
	}
	if opts.StepLimit == 0 {
		opts.StepLimit = 100_000_000
	}
	return opts
}

// New builds a machine.
func New(opts Options) *Machine {
	m := &Machine{}
	initMachine(m, opts, nil, nil)
	return m
}

// initMachine builds a machine in place. When harts and phrs are non-nil
// they provide arena-backed storage for the hart records and their path
// history registers (NewBatch lays K lanes' hot state out contiguously);
// otherwise each is allocated individually.
func initMachine(m *Machine, opts Options, harts []Hart, phrs []phr.Reg) {
	opts = normalizeOptions(opts)
	if opts.Harts > 2 {
		panic("cpu: at most two SMT harts per core")
	}
	*m = Machine{
		BPU:    bpu.NewUnit(opts.Arch),
		Mem:    NewMemory(),
		Data:   cache.NewDefault(),
		opts:   opts,
		noise:  splitmix64{s: uint64(opts.Seed)*2654435761 + 1},
		perPC:  make(map[uint64]*BranchStat),
		progs:  make(map[*isa.Program]*progState),
		kstubs: make(map[int64]string),
		estubs: make(map[int64]string),
	}
	m.cbp = m.BPU.CBP
	if opts.NewPredictor != nil {
		m.cbp = opts.NewPredictor(opts.Arch)
	}
	if opts.Faults != nil && opts.Faults.Enabled() {
		m.inj = faultinject.NewInjector(*opts.Faults, opts.Seed)
	}
	for i := 0; i < opts.Harts; i++ {
		h := &Hart{}
		if harts != nil {
			h = &harts[i]
			*h = Hart{}
		}
		reg := phr.New(opts.Arch.PHRSize)
		if phrs != nil {
			phrs[i] = *reg
			reg = &phrs[i]
		}
		h.ID = i
		h.PHR = reg
		h.rng = splitmix64{s: uint64(opts.Seed) + uint64(i)*0x632be59bd9b4e019 + 7}
		h.machine = m
		m.harts = append(m.harts, h)
	}
}

// Recycle resets the machine to the state New(opts) would produce while
// reusing its large allocations: cache arrays, predictor tables, memory
// pages, decoded-program state and any attack templates attached to Aux.
// The sharded harness drivers run one short-lived machine per trial;
// recycling a worker's machine between trials keeps that steady state
// allocation-free without weakening the determinism contract — a recycled
// machine must be observationally identical to a fresh one (the golden and
// Parallelism-invariance tests pin exactly that).
//
// opts must describe the same microarchitecture and hart count the machine
// was built with, and neither the machine nor opts may use a custom
// NewPredictor (an oracle's state cannot be reset generically); Recycle
// panics otherwise.
func (m *Machine) Recycle(opts Options) {
	opts = normalizeOptions(opts)
	if opts.Arch.Name != m.opts.Arch.Name || opts.Arch.PHRSize != m.opts.Arch.PHRSize {
		panic("cpu: recycle across microarchitectures")
	}
	if opts.Harts != len(m.harts) {
		panic("cpu: recycle with a different hart count")
	}
	if opts.NewPredictor != nil || m.opts.NewPredictor != nil {
		panic("cpu: recycle with a custom predictor")
	}
	m.opts = opts
	m.syncOK = false
	m.BPU.Reset()
	m.Mem.Reset()
	m.Data.Reset()
	m.IBRS = false
	m.TraceTaken = nil
	m.noise = splitmix64{s: uint64(opts.Seed)*2654435761 + 1}
	// Rebuild the injector rather than diffing profiles: it is two words of
	// state, and a rebuilt injector is exactly what New would have produced.
	m.inj = nil
	if opts.Faults != nil && opts.Faults.Enabled() {
		m.inj = faultinject.NewInjector(*opts.Faults, opts.Seed)
	}
	m.stats = Counters{}
	// Zero branch stats in place: decoded-program statRefs keep pointing at
	// live objects, and a zeroed stat reads the same as an absent one.
	for _, s := range m.perPC {
		*s = BranchStat{}
	}
	clear(m.kstubs)
	clear(m.estubs)
	for i, h := range m.harts {
		h.PHR.Clear()
		h.Domain = User
		h.regs = [isa.NumRegs]uint64{}
		h.vregs = [isa.NumVRegs][16]byte{}
		h.ready = [isa.NumRegs]uint64{}
		h.stack = h.stack[:0]
		h.rng = splitmix64{s: uint64(opts.Seed) + uint64(i)*0x632be59bd9b4e019 + 7}
	}
}

// RecycleRestore is Recycle(opts) followed by RestoreFrom(s), fused so the
// intermediate power-on reset is skipped: every structure Recycle would
// reset and RestoreFrom would then overwrite (predictors, cache, hart
// state, stats, noise, IBRS) is written once by the restore, and — the
// point of the fusion — the predictor/cache dirty bitmaps keep describing
// only the previous trial's footprint, so a machine in restore-sync with s
// rewinds via the dirty-only copies instead of a full-table pass. The
// batch drivers' per-trial path is exactly this pair; the equivalence test
// pins that the fused result is bit-identical to the sequential one.
//
// Validation and panics match Recycle plus RestoreFrom. As with the pair,
// follow with Reseed to move the PRNG streams to the trial's seed.
func (m *Machine) RecycleRestore(opts Options, s *Snapshot) {
	opts = normalizeOptions(opts)
	if opts.Arch.Name != m.opts.Arch.Name || opts.Arch.PHRSize != m.opts.Arch.PHRSize {
		panic("cpu: recycle across microarchitectures")
	}
	if opts.Harts != len(m.harts) {
		panic("cpu: recycle with a different hart count")
	}
	if opts.NewPredictor != nil || m.opts.NewPredictor != nil {
		panic("cpu: recycle with a custom predictor")
	}
	// Only the state RestoreFrom does not cover: options, memory, the trace
	// hook, the injector rebuild and the stub registrations. Everything else
	// Recycle resets is overwritten wholesale by RestoreFrom.
	m.opts = opts
	m.Mem.Reset()
	m.TraceTaken = nil
	m.inj = nil
	if opts.Faults != nil && opts.Faults.Enabled() {
		m.inj = faultinject.NewInjector(*opts.Faults, opts.Seed)
	}
	clear(m.kstubs)
	clear(m.estubs)
	m.RestoreFrom(s)
}

// ForgetRestoreSync drops the restore-sync marker, forcing the next
// RestoreFrom onto the full-copy path (which re-establishes sync).
// Benchmarks use it to measure the flat restore against the dirty one.
func (m *Machine) ForgetRestoreSync() { m.syncOK = false }

// Hart returns logical core i.
func (m *Machine) Hart(i int) *Hart { return m.harts[i] }

// NumHarts returns the hart count.
func (m *Machine) NumHarts() int { return len(m.harts) }

// Arch returns the modeled microarchitecture.
func (m *Machine) Arch() bpu.Config { return m.opts.Arch }

// Predictor returns the conditional branch predictor this machine drives:
// the shared Unit's CBP unless Options.NewPredictor substituted another
// implementation.
func (m *Machine) Predictor() bpu.Predictor { return m.cbp }

// Stats returns the counters accumulated since the last ResetStats.
func (m *Machine) Stats() Counters { return m.stats }

// Branch returns the accumulated stats for the branch at pc.
func (m *Machine) Branch(pc uint64) BranchStat {
	if s := m.perPC[pc]; s != nil {
		return *s
	}
	return BranchStat{}
}

// ResetStats clears counters and per-branch stats. Predictor and cache
// state — the microarchitectural attack surface — is deliberately left
// untouched. Existing BranchStat values are zeroed in place rather than
// dropped so the decoded-program stat references stay valid across the
// frequent reset/run/measure cycles of the attack primitives.
func (m *Machine) ResetStats() {
	m.stats = Counters{}
	for _, s := range m.perPC {
		*s = BranchStat{}
	}
}

// RegisterKernelStub maps a syscall number to the label of its handler in
// the program. The handler runs in the kernel domain and returns with RET.
func (m *Machine) RegisterKernelStub(num int64, label string) { m.kstubs[num] = label }

// RegisterEnclaveStub maps an enclave call number to its handler label.
func (m *Machine) RegisterEnclaveStub(num int64, label string) { m.estubs[num] = label }

// Run executes prog from entry on hart 0 until HALT or a return from the
// entry frame.
func (m *Machine) Run(prog *isa.Program, entry string) error {
	return m.RunOn(0, prog, entry)
}

// RunOn executes prog from the entry label on the given hart. The entry is
// treated as a call: a RET with an empty stack ends the run like HALT.
func (m *Machine) RunOn(hartID int, prog *isa.Program, entry string) error {
	h := m.harts[hartID]
	addr, ok := prog.SymbolAddr(entry)
	if !ok {
		return fmt.Errorf("cpu: no symbol %q", entry)
	}
	idx, ok := prog.IndexOf(addr)
	if !ok {
		return fmt.Errorf("cpu: symbol %q resolves to a gap", entry)
	}
	m.stats.Runs++
	h.stack = h.stack[:0]
	if m.inj != nil {
		// Run boundaries are where context switches land: the injector may
		// fold an attacker-invisible branch burst or a one-doublet slip into
		// the hart's history before the first instruction executes.
		m.inj.RunBoundary(h.PHR)
	}
	if m.denseEligible() {
		return m.execDense(h, prog, idx)
	}
	return m.exec(h, prog, idx)
}

// access routes one data-cache access through the fault-injection layer:
// eviction pressure may knock out a pseudo-random line afterwards, and the
// observed latency may jitter by a few cycles. Without an armed injector it
// is exactly m.Data.Access.
func (m *Machine) access(addr uint64) int {
	lat, _ := m.Data.Access(addr)
	if m.inj != nil {
		if r, ok := m.inj.CacheEvict(); ok {
			m.Data.EvictNth(r)
		}
		lat = m.inj.JitterLatency(lat)
	}
	return lat
}

func (m *Machine) branchStat(pc uint64) *BranchStat {
	s := m.perPC[pc]
	if s == nil {
		s = &BranchStat{}
		m.perPC[pc] = s
	}
	return s
}

// takenBranch applies the PHR update shared by every taken branch and
// keeps the BTB warm for direct branches.
func (m *Machine) takenBranch(h *Hart, pc, target uint64, direct bool) {
	if m.TraceTaken != nil {
		m.TraceTaken(pc, target)
	}
	h.PHR.UpdateBranch(pc, target)
	if m.inj != nil {
		// Context switches land at asynchronous points during execution: the
		// injector may fold a burst of attacker-invisible branches into the
		// PHR right here, between this branch and the next.
		m.inj.BranchEvent(h.PHR)
	}
	m.stats.TakenBranches++
	if direct {
		m.BPU.BTB.Insert(pc, target)
	} else {
		m.BPU.IBP.Insert(pc, h.PHR, target)
	}
}

func (m *Machine) exec(h *Hart, prog *isa.Program, idx int) error {
	ps := m.progState(prog)
	steps := uint64(0)
	for {
		if idx < 0 || idx >= len(prog.Instrs) {
			return fmt.Errorf("cpu: execution ran off the program (index %d)", idx)
		}
		if steps >= m.opts.StepLimit {
			return fmt.Errorf("cpu: step limit %d exceeded at %#x", m.opts.StepLimit, prog.Instrs[idx].Addr)
		}
		steps++
		m.stats.Instructions++
		m.stats.Cycles++
		in := &prog.Instrs[idx]

		switch in.Op {
		case isa.NOP:
		case isa.HALT:
			return nil

		case isa.MOVI:
			h.regs[in.Rd] = uint64(in.Imm)
			h.ready[in.Rd] = m.stats.Cycles
		case isa.MOV:
			h.regs[in.Rd] = h.regs[in.Rs]
			h.ready[in.Rd] = maxu(m.stats.Cycles, h.ready[in.Rs])
		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL:
			h.regs[in.Rd] = alu(in.Op, h.regs[in.Rs], h.regs[in.Rt])
			h.ready[in.Rd] = maxu(m.stats.Cycles, maxu(h.ready[in.Rs], h.ready[in.Rt]))
		case isa.ADDI:
			h.regs[in.Rd] = h.regs[in.Rs] + uint64(in.Imm)
			h.ready[in.Rd] = maxu(m.stats.Cycles, h.ready[in.Rs])
		case isa.XORI:
			h.regs[in.Rd] = h.regs[in.Rs] ^ uint64(in.Imm)
			h.ready[in.Rd] = maxu(m.stats.Cycles, h.ready[in.Rs])
		case isa.SHLI:
			h.regs[in.Rd] = h.regs[in.Rs] << uint64(in.Imm)
			h.ready[in.Rd] = maxu(m.stats.Cycles, h.ready[in.Rs])
		case isa.SHRI:
			h.regs[in.Rd] = h.regs[in.Rs] >> uint64(in.Imm)
			h.ready[in.Rd] = maxu(m.stats.Cycles, h.ready[in.Rs])

		case isa.LD, isa.LDB, isa.TIMEDLD:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			lat := m.access(addr)
			switch in.Op {
			case isa.LD:
				h.regs[in.Rd] = m.Mem.Read64(addr)
			case isa.LDB:
				h.regs[in.Rd] = uint64(m.Mem.Read8(addr))
			case isa.TIMEDLD:
				h.regs[in.Rd] = uint64(lat)
			}
			h.ready[in.Rd] = m.stats.Cycles + uint64(lat)
		case isa.ST:
			m.access(h.regs[in.Rs] + uint64(in.Imm))
			m.Mem.Write64(h.regs[in.Rs]+uint64(in.Imm), h.regs[in.Rt])
		case isa.STB:
			m.access(h.regs[in.Rs] + uint64(in.Imm))
			m.Mem.Write8(h.regs[in.Rs]+uint64(in.Imm), byte(h.regs[in.Rt]))
		case isa.CLFLUSH:
			m.Data.Flush(h.regs[in.Rs] + uint64(in.Imm))

		case isa.RAND:
			h.regs[in.Rd] = h.rng.next()
			h.ready[in.Rd] = m.stats.Cycles
		case isa.RDCYCLE:
			h.regs[in.Rd] = m.stats.Cycles
			h.ready[in.Rd] = m.stats.Cycles

		case isa.VLD:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			h.vregs[in.Vd] = m.Mem.Read128(addr)
		case isa.VST:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			m.Mem.Write128(addr, h.vregs[in.Vd])
		case isa.VXOR:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			h.vregs[in.Vd] = aes.XorBlocks(h.vregs[in.Vd], m.Mem.Read128(addr))
		case isa.AESENC:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			h.vregs[in.Vd] = aes.EncRound(h.vregs[in.Vd], m.Mem.Read128(addr))
		case isa.AESENCLAST:
			addr := h.regs[in.Rs] + uint64(in.Imm)
			m.access(addr)
			h.vregs[in.Vd] = aes.EncLastRound(h.vregs[in.Vd], m.Mem.Read128(addr))

		case isa.BR:
			taken := in.Cond.Eval(h.regs[in.Rs], h.regs[in.Rt])
			pred := m.cbp.Predict(in.Addr, h.PHR)
			ref := &ps.stats[idx]
			if ref.s == nil || ref.addr != in.Addr {
				ref.addr, ref.s = in.Addr, m.branchStat(in.Addr)
			}
			st := ref.s
			st.Executed++
			m.stats.CondBranches++
			if taken {
				st.Taken++
			}
			if pred.Taken != taken {
				st.Mispredicted++
				m.stats.Mispredicts++
				m.speculate(h, prog, idx, pred.Taken)
				m.stats.Cycles += uint64(m.opts.MispredictPenalty)
			}
			if m.inj == nil {
				m.cbp.Update(in.Addr, h.PHR, taken, pred)
			} else if pc, ok := m.inj.TrainingTarget(in.Addr); ok {
				// The injector may drop the training update (counter decay)
				// or land it on an aliased PC (destructive interference).
				m.cbp.Update(pc, h.PHR, taken, pred)
			}
			if taken {
				m.takenBranch(h, in.Addr, in.Target, true)
				ti := int(in.TargetIdx)
				if ti < 0 {
					var err error
					if ti, err = targetIndex(prog, in, "branch"); err != nil {
						return err
					}
				}
				idx = ti
				continue
			}

		case isa.JMP:
			m.takenBranch(h, in.Addr, in.Target, true)
			ti := int(in.TargetIdx)
			if ti < 0 {
				var err error
				if ti, err = targetIndex(prog, in, "jmp"); err != nil {
					return err
				}
			}
			idx = ti
			continue

		case isa.CALL:
			if idx+1 >= len(prog.Instrs) {
				return fmt.Errorf("cpu: call at %#x has no return point", in.Addr)
			}
			h.stack = append(h.stack, frame{retIdx: idx + 1})
			m.takenBranch(h, in.Addr, in.Target, true)
			ti := int(in.TargetIdx)
			if ti < 0 {
				var err error
				if ti, err = targetIndex(prog, in, "call"); err != nil {
					return err
				}
			}
			idx = ti
			continue

		case isa.RET:
			if len(h.stack) == 0 {
				return nil // return from the entry frame ends the run
			}
			f := h.stack[len(h.stack)-1]
			h.stack = h.stack[:len(h.stack)-1]
			if f.restoreDomain {
				h.Domain = f.prevDomain
			}
			if f.retIdx < 0 || f.retIdx >= len(prog.Instrs) {
				return nil
			}
			m.takenBranch(h, in.Addr, prog.Instrs[f.retIdx].Addr, false)
			idx = f.retIdx
			continue

		case isa.JR:
			target := h.regs[in.Rs]
			ti, ok := prog.IndexOf(target)
			if !ok {
				return fmt.Errorf("cpu: jr at %#x to hole %#x", in.Addr, target)
			}
			m.takenBranch(h, in.Addr, target, false)
			idx = ti
			continue

		case isa.SYSCALL, isa.EENTER:
			ti, err := m.enterStub(h, prog, idx, in.Op, in.Imm, in.Addr)
			if err != nil {
				return err
			}
			idx = ti
			continue

		case isa.IBPB:
			m.BPU.IBPB()

		default:
			return fmt.Errorf("cpu: unimplemented op %v at %#x", in.Op, in.Addr)
		}
		idx++
	}
}

// enterStub performs a SYSCALL/EENTER domain transfer: it resolves the
// registered stub, pushes a domain-restoring frame and switches the hart's
// domain. Both the scalar and the dense engine call it, so the (cold)
// transfer semantics and error strings cannot drift between them. It
// returns the stub's program index.
func (m *Machine) enterStub(h *Hart, prog *isa.Program, idx int, op isa.Op, imm int64, pc uint64) (int, error) {
	stubs, dom := m.kstubs, Kernel
	if op == isa.EENTER {
		stubs, dom = m.estubs, Enclave
	}
	label, ok := stubs[imm]
	if !ok {
		return 0, fmt.Errorf("cpu: no stub registered for %s %d", op, imm)
	}
	addr, ok := prog.SymbolAddr(label)
	if !ok {
		return 0, fmt.Errorf("cpu: stub label %q missing from program", label)
	}
	ti, ok := prog.IndexOf(addr)
	if !ok {
		return 0, fmt.Errorf("cpu: stub label %q resolves to a hole", label)
	}
	if idx+1 >= len(prog.Instrs) {
		return 0, fmt.Errorf("cpu: %s at %#x has no return point", op, pc)
	}
	h.stack = append(h.stack, frame{retIdx: idx + 1, restoreDomain: true, prevDomain: h.Domain})
	if op == isa.SYSCALL && m.IBRS {
		// IBRS restricts indirect speculation in the more privileged
		// mode; modeled as flushing indirect predictors on entry.
		// The CBP and PHR are untouched (§7.4).
		m.BPU.IBP.Flush()
		m.BPU.BTB.Flush()
	}
	h.Domain = dom
	// The transfer itself is not PHR-visible; the stub's branches are.
	return ti, nil
}

// targetIndex resolves a direct control transfer to its program index using
// the assembler's pre-resolved TargetIdx, falling back to the address map
// for hand-built Instr values.
// targetIndex resolves a direct transfer's program index. The TargetIdx
// fast path is duplicated at the call sites so the hot dispatch stays
// inlinable; this slow path covers hand-built Instr values only.
func targetIndex(prog *isa.Program, in *isa.Instr, kind string) (int, error) {
	if ti := int(in.TargetIdx); ti >= 0 {
		return ti, nil
	}
	ti, ok := prog.IndexOf(in.Target)
	if !ok {
		return 0, fmt.Errorf("cpu: %s at %#x to hole %#x", kind, in.Addr, in.Target)
	}
	return ti, nil
}

func alu(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.MUL:
		return a * b
	}
	panic("cpu: not an ALU op")
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
